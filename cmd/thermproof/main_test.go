package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"thermbal/internal/store"
)

// buildSealedStore populates a tiny store, seals it, and returns the
// directory, a saved proof document, the body it commits to, and the
// chain head — the same kit runSmokeProof leaves for the Makefile.
func buildSealedStore(t *testing.T) (dir, proofPath, bodyPath, chainHead string) {
	t.Helper()
	dir = t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true, Version: "test-engine/1"})
	if err != nil {
		t.Fatal(err)
	}
	body := []byte(`{"result":"thermproof-test"}`)
	if err := st.Put("aaaa1111", body); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("bbbb2222", []byte("second body")); err != nil {
		t.Fatal(err)
	}
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}
	p, err := st.Proof("aaaa1111")
	if err != nil {
		t.Fatal(err)
	}
	chainHead = st.Stats().ChainHead
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	proofPath = filepath.Join(dir, "proof.json")
	bodyPath = filepath.Join(dir, "body.json")
	if err := os.WriteFile(proofPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bodyPath, body, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, proofPath, bodyPath, chainHead
}

func TestVerifyProofModes(t *testing.T) {
	dir, proofPath, bodyPath, chainHead := buildSealedStore(t)

	if !verifyProof(proofPath, "", "", false) {
		t.Error("bare proof should verify")
	}
	if !verifyProof(proofPath, bodyPath, chainHead, true) {
		t.Error("proof + body + pinned chain should verify")
	}

	wrongBody := filepath.Join(dir, "wrong.json")
	if err := os.WriteFile(wrongBody, []byte("not the committed bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if verifyProof(proofPath, wrongBody, "", true) {
		t.Error("proof must not commit to different bytes")
	}
	if verifyProof(proofPath, "", "deadbeef", true) {
		t.Error("wrong pinned chain value should fail")
	}
	if verifyProof(filepath.Join(dir, "missing.json"), "", "", true) {
		t.Error("missing proof file should fail")
	}
	if verifyProof(proofPath, filepath.Join(dir, "missing-body.json"), "", true) {
		t.Error("missing body file should fail")
	}
	garbled := filepath.Join(dir, "garbled.json")
	if err := os.WriteFile(garbled, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if verifyProof(garbled, "", "", true) {
		t.Error("malformed proof JSON should fail")
	}

	// A tampered proof document: valid JSON, broken hash linkage.
	raw, err := os.ReadFile(proofPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	doc["root"] = "0000000000000000000000000000000000000000000000000000000000000000"
	forged, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	forgedPath := filepath.Join(dir, "forged.json")
	if err := os.WriteFile(forgedPath, forged, 0o644); err != nil {
		t.Fatal(err)
	}
	if verifyProof(forgedPath, "", "", true) {
		t.Error("proof with a forged root should fail")
	}
}

func TestVerifyStoreModes(t *testing.T) {
	dir, _, _, chainHead := buildSealedStore(t)

	if !verifyStore(dir, "", false) {
		t.Error("clean store should verify")
	}
	if !verifyStore(dir, chainHead, true) {
		t.Error("clean store should verify against its own chain head")
	}
	if verifyStore(dir, "ffffffff", true) {
		t.Error("wrong pinned chain head should fail")
	}
	if verifyStore(filepath.Join(dir, "no-such-dir"), "", true) {
		t.Error("unreadable directory should fail")
	}

	// Flip one body byte (CRC fixed up) in the sealed segment: the
	// scan must localize it and fail.
	if _, err := store.TamperForTest(dir, 1, 0); err != nil {
		t.Fatal(err)
	}
	if verifyStore(dir, "", false) {
		t.Error("tampered store must fail verification")
	}
}
