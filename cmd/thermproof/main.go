// Command thermproof verifies run provenance offline: no server, no
// network, nothing but the files on disk and SHA-256.
//
// Two modes, combinable:
//
//	thermproof -data-dir /var/lib/thermbal
//	    Full store scan: re-read every record of every segment,
//	    recompute every sealed Merkle root and every link of the root
//	    hash chain, and localize the first divergent record if any
//	    byte changed since sealing.
//
//	thermproof -proof proof.json [-body result.json]
//	    Verify one inclusion proof document (the body of GET /proof,
//	    saved verbatim): leaf hash → Merkle root → chain link. With
//	    -body, additionally require the proof to commit to exactly
//	    those result bytes.
//
// Either mode accepts -chain-head <hex>, a chain value pinned
// out-of-band (for example logged at seal time, or published). For a
// store scan it must equal the recomputed chain head, which defeats
// whole-manifest truncation: a verifier holding the pinned head
// cannot be satisfied by a shortened-but-internally-consistent chain.
// For a single proof it must equal the proof's chain value at its
// position.
//
// Exit status: 0 when everything verifies, 1 on any mismatch, 2 on
// usage errors. Mismatches are reported on stderr with the segment,
// record index and key when the failure can be localized.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"thermbal/internal/provenance"
	"thermbal/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("thermproof: ")

	var (
		dataDir   = flag.String("data-dir", "", "store directory to verify end to end (read-only)")
		proofFile = flag.String("proof", "", "inclusion-proof JSON document to verify (a saved GET /proof body)")
		bodyFile  = flag.String("body", "", "result body the -proof must commit to (optional)")
		chainHead = flag.String("chain-head", "", "pinned chain value (hex) the store's chain head — or the proof's chain link — must equal")
		quiet     = flag.Bool("q", false, "suppress the ok-summary on success (failures always print)")
	)
	flag.Parse()

	if *dataDir == "" && *proofFile == "" {
		fmt.Fprintln(os.Stderr, "thermproof: nothing to verify; pass -data-dir and/or -proof")
		flag.Usage()
		os.Exit(2)
	}
	if *bodyFile != "" && *proofFile == "" {
		fmt.Fprintln(os.Stderr, "thermproof: -body is only meaningful with -proof")
		os.Exit(2)
	}

	ok := true
	if *proofFile != "" {
		ok = verifyProof(*proofFile, *bodyFile, *chainHead, *quiet) && ok
	}
	if *dataDir != "" {
		ok = verifyStore(*dataDir, *chainHead, *quiet) && ok
	}
	if !ok {
		os.Exit(1)
	}
}

// verifyProof checks one saved proof document, optionally against the
// result bytes it should commit to and a pinned chain value.
func verifyProof(path, bodyPath, pinnedChain string, quiet bool) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Printf("FAIL: %v", err)
		return false
	}
	// GET /proof wraps the proof with a schema_version sibling; a bare
	// provenance.Proof decodes identically since unknown fields are
	// ignored here (the proof is self-authenticating — every field that
	// matters is hashed).
	var p provenance.Proof
	if err := json.Unmarshal(raw, &p); err != nil {
		log.Printf("FAIL: %s: %v", path, err)
		return false
	}
	if err := p.Verify(); err != nil {
		log.Printf("FAIL: %s: %v", path, err)
		return false
	}
	if bodyPath != "" {
		body, err := os.ReadFile(bodyPath)
		if err != nil {
			log.Printf("FAIL: %v", err)
			return false
		}
		if err := p.VerifyBody(body); err != nil {
			log.Printf("FAIL: %s does not commit to %s: %v", path, bodyPath, err)
			return false
		}
	}
	if pinnedChain != "" && p.Chain != pinnedChain {
		log.Printf("FAIL: %s: chain value %s at pos %d differs from the pinned %s",
			path, p.Chain, p.ChainPos, pinnedChain)
		return false
	}
	if !quiet {
		extra := ""
		if bodyPath != "" {
			extra = ", commits to " + bodyPath
		}
		log.Printf("ok: proof for key %s verifies (engine %q, segment %08d, leaf %d of %d, chain pos %d%s)",
			p.Leaf.Key, p.Leaf.Version, p.Segment, p.Index, p.TreeSize, p.ChainPos, extra)
	}
	return true
}

// verifyStore rescans a store directory against its sealed roots.
func verifyStore(dir, pinnedChain string, quiet bool) bool {
	rep, err := store.VerifyDir(dir)
	for _, bad := range rep.Bad {
		log.Printf("FAIL: %s", bad)
	}
	if err != nil && len(rep.Bad) == 0 {
		// Not a verification verdict but an inability to verify at all
		// (unreadable directory, I/O error).
		log.Printf("FAIL: %v", err)
		return false
	}
	if pinnedChain != "" && rep.ChainHead != pinnedChain {
		log.Printf("FAIL: %s: chain head %s differs from the pinned %s (possible manifest truncation)",
			dir, rep.ChainHead, pinnedChain)
		return false
	}
	if err != nil {
		return false
	}
	if !quiet {
		note := ""
		if rep.UnsealedRecords > 0 {
			note = fmt.Sprintf("; %d records in the unsealed tail are not yet covered", rep.UnsealedRecords)
		}
		if rep.TailTruncated > 0 {
			note += fmt.Sprintf("; %d torn tail bytes (benign kill artifact)", rep.TailTruncated)
		}
		log.Printf("ok: %s verifies — %d records across %d segments, %d sealed under a %d-link chain (head %s)%s",
			dir, rep.Records, rep.Segments, rep.SealedRecords, rep.ChainLen, rep.ChainHead, note)
	}
	return true
}
