// Command thermload is the open-loop load generator for thermservd: it
// fires fixed-rate arrivals from a declarative request mix with
// Zipf-skewed key repetition, measures p50/p95/p99 per endpoint and per
// X-Timing stage plus shed/quota/error rates, and emits both a human
// table and the schema-versioned LOAD_<date>.json trajectory document
// that cmd/loaddiff compares across commits.
//
// Usage:
//
//	thermload -addr http://localhost:8080 -rps 50 -duration 30s
//	thermload -addr ... -mix mix.json -tenant team-a -out .
//	                                 # -out a directory: writes
//	                                 # LOAD_<date>.json into it
//	thermload -self                  # smoke mode: start an in-process
//	                                 # server on an ephemeral port, run
//	                                 # a short load against it, and
//	                                 # fail unless the report parses,
//	                                 # quantiles are nonzero, and no
//	                                 # unexpected errors occurred
//
// Open-loop means arrivals are scheduled by the clock, not by response
// completion: when the server saturates, latency grows and is measured
// rather than silently throttling the offered load. A -max-inflight
// client-side cap (default 4x rps) bounds the damage of a wedged
// server; skipped arrivals are reported, never hidden.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"thermbal/internal/loadgen"
	"thermbal/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("thermload: ")

	var (
		addr        = flag.String("addr", "", "target server base URL, e.g. http://localhost:8080")
		rps         = flag.Float64("rps", 50, "open-loop arrival rate in requests/second")
		warmup      = flag.Duration("warmup", 2*time.Second, "warmup window: arrivals sent but excluded from the report")
		duration    = flag.Duration("duration", 10*time.Second, "measurement window after warmup")
		mixPath     = flag.String("mix", "", "request-mix JSON file (default: built-in run-dominated mix)")
		seed        = flag.Int64("seed", 1, "random seed for the arrival schedule's mix and key draws")
		maxInflight = flag.Int("max-inflight", 0, "client-side cap on outstanding requests (default 4x rps, min 64)")
		tenant      = flag.String("tenant", "", "X-Tenant header stamped on every request (quota accounting)")
		out         = flag.String("out", "", "write the JSON report here (a directory gets LOAD_<date>.json inside it)")
		self        = flag.Bool("self", false, "smoke mode: run a short load against an in-process server and assert the report is sane")
	)
	flag.Parse()

	mix := loadgen.DefaultMix()
	if *mixPath != "" {
		b, err := os.ReadFile(*mixPath)
		if err != nil {
			log.Fatal(err)
		}
		mix = loadgen.Mix{}
		if err := json.Unmarshal(b, &mix); err != nil {
			log.Fatalf("parse %s: %v", *mixPath, err)
		}
	}

	cfg := loadgen.Config{
		BaseURL:     strings.TrimSuffix(*addr, "/"),
		RPS:         *rps,
		Warmup:      *warmup,
		Duration:    *duration,
		Mix:         mix,
		Seed:        *seed,
		MaxInflight: *maxInflight,
		Tenant:      *tenant,
		Logf:        log.Printf,
	}

	if *self {
		if err := runSelf(cfg, *out); err != nil {
			log.Fatalf("self: FAIL: %v", err)
		}
		log.Print("self: PASS")
		return
	}

	if cfg.BaseURL == "" {
		log.Fatal("either -addr or -self is required")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Table())
	if err := writeReport(rep, *out); err != nil {
		log.Fatal(err)
	}
}

// writeReport writes the JSON document when -out is given.
func writeReport(rep *loadgen.Report, out string) error {
	if out == "" {
		return nil
	}
	if info, err := os.Stat(out); err == nil && info.IsDir() {
		out = filepath.Join(out, rep.Filename())
	}
	b, err := rep.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, b, 0o644); err != nil {
		return err
	}
	log.Printf("report written to %s", out)
	return nil
}

// runSelf is the `make smoke-load` body: an in-process server on an
// ephemeral port, a short open-loop run against it, and assertions
// that the measurement loop itself works — the report parses under its
// schema gate, quantiles are nonzero, the cache tiers were exercised,
// and nothing errored unexpectedly.
func runSelf(cfg loadgen.Config, out string) error {
	svc := service.New(service.Config{})
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	cfg.BaseURL = "http://" + ln.Addr().String()
	// Short but real: enough arrivals for stable quantiles, small
	// enough to keep `make check` fast.
	cfg.RPS = 40
	cfg.Warmup = time.Second
	cfg.Duration = 3 * time.Second
	log.Printf("self: in-process server on %s", cfg.BaseURL)

	rep, err := loadgen.Run(context.Background(), cfg)
	if err != nil {
		return err
	}
	fmt.Print(rep.Table())

	// The report must survive its own schema gate.
	b, err := rep.Encode()
	if err != nil {
		return err
	}
	back, err := loadgen.DecodeReport(b)
	if err != nil {
		return fmt.Errorf("report does not round-trip: %w", err)
	}
	if back.Measured == 0 {
		return fmt.Errorf("no measured samples")
	}
	run := rep.Endpoints["run"]
	if run == nil || run.Count == 0 {
		return fmt.Errorf("no /run samples in the report")
	}
	if run.Latency.P50Ms <= 0 || run.Latency.P99Ms <= 0 {
		return fmt.Errorf("run quantiles are zero: %+v", run.Latency)
	}
	for name, ep := range rep.Endpoints {
		if ep.Errors > 0 {
			return fmt.Errorf("%d unexpected errors on %s", ep.Errors, name)
		}
		if ep.Shed > 0 || ep.Quota > 0 {
			return fmt.Errorf("%s reports shed %d / quota %d against an unloaded default config", name, ep.Shed, ep.Quota)
		}
	}
	if rep.Outcomes["hit"] == 0 {
		return fmt.Errorf("outcomes %v: the Zipf skew produced no cache hits", rep.Outcomes)
	}
	if len(rep.Stages) == 0 {
		return fmt.Errorf("no per-stage quantiles parsed from X-Timing")
	}
	log.Printf("self: report sane (%d measured, run p99 %.2f ms, %d cache hits)",
		rep.Measured, run.Latency.P99Ms, rep.Outcomes["hit"])
	return writeReport(rep, out)
}
