// Command benchdiff compares two bench2json documents and fails when
// any benchmark matching a name filter regressed beyond a threshold —
// in ns/op, or in allocs/op when both documents were recorded with
// -benchmem (a zero-alloc baseline is a hard floor: one new
// allocation per op fails the gate).
// `make bench-diff` uses it to compare a fresh run against the newest
// committed BENCH_<date>.json, so Sweep-benchmark regressions surface
// in CI instead of silently accumulating.
//
// Usage:
//
//	benchdiff -base BENCH_2026-07-29.json -new fresh.json \
//	          -match 'BenchmarkSweep' -max-regress 0.15
//	benchdiff -base "$(git ls-files 'BENCH_*.json' | paste -sd, -)" \
//	          -new fresh.json
//
// -base accepts one document or a comma/whitespace-separated list of
// candidates; the baseline is the candidate with the newest `date`
// field. Selecting by the recorded date rather than by filename means
// a same-day follow-up point (BENCH_2026-07-29_2.json) is never
// shadowed by its older sibling's lexically-equal date prefix.
//
// Exit status 1 means at least one matched benchmark regressed by more
// than the threshold; missing counterparts are reported but do not
// fail the comparison (benchmarks come and go across commits).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"strings"
	"time"

	"thermbal/internal/benchparse"
)

// document mirrors cmd/bench2json's output shape; only the fields the
// comparison needs are decoded.
type document struct {
	Date       string              `json:"date"`
	Benchmarks []benchparse.Result `json:"benchmarks"`
}

// procsSuffix is the "-<GOMAXPROCS>" tail `go test -bench` appends to
// benchmark names on multi-core machines. Baselines and fresh runs may
// come from machines with different core counts, so names are compared
// with the suffix stripped.
var procsSuffix = regexp.MustCompile(`-\d+$`)

func stripProcs(name string) string {
	return procsSuffix.ReplaceAllString(name, "")
}

func load(path string) (document, error) {
	var doc document
	f, err := os.Open(path)
	if err != nil {
		return doc, err
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(&doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return doc, fmt.Errorf("%s: no benchmarks", path)
	}
	return doc, nil
}

// docDate parses a document's recorded date. bench2json stamps
// RFC3339; a document without a parseable date sorts oldest so it can
// never shadow a properly stamped one.
func docDate(doc document) time.Time {
	t, err := time.Parse(time.RFC3339, doc.Date)
	if err != nil {
		return time.Time{}
	}
	return t
}

// pickBaseline loads every candidate path and returns the one whose
// `date` field is newest (ties keep the later-listed candidate, so a
// fully unstamped set still degrades to "last one named"). A candidate
// that fails to load is warned about and skipped — one legacy or
// malformed committed point must not break the gate while a good
// newest baseline exists; only an empty surviving set is an error.
func pickBaseline(paths []string) (document, string, error) {
	var (
		best     document
		bestPath string
		bestTime time.Time
		found    bool
		loadErrs []error
	)
	for _, path := range paths {
		doc, err := load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: skipping baseline candidate: %v\n", err)
			loadErrs = append(loadErrs, err)
			continue
		}
		when := docDate(doc)
		if !found || !when.Before(bestTime) {
			best, bestPath, bestTime, found = doc, path, when, true
		}
	}
	if !found {
		if len(loadErrs) > 0 {
			return document{}, "", fmt.Errorf("no loadable baseline candidate (first error: %w)", loadErrs[0])
		}
		return document{}, "", fmt.Errorf("no baseline candidates")
	}
	return best, bestPath, nil
}

// splitBases splits the -base flag value on commas and whitespace.
func splitBases(spec string) []string {
	return strings.FieldsFunc(spec, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t' || r == '\n'
	})
}

// gate compares one fresh benchmark against its baseline and returns
// the report lines plus the number of budget violations. ns/op uses
// the fractional budget. allocs/op (present when both documents were
// recorded with -benchmem) uses the same fractional budget, except
// that a zero-alloc baseline is a hard floor: any new allocation per
// op is a regression — the zero-alloc hot loops are a correctness
// property of the integrators, not a soft perf number. Documents
// recorded before -benchmem skip the allocation gate.
func gate(prev, b benchparse.Result, maxRegress float64) (lines []string, regressions int) {
	was := prev.NsPerOp
	delta := (b.NsPerOp - was) / was
	verdict := "ok"
	if delta > maxRegress {
		verdict = "REGRESSED"
		regressions++
	}
	lines = append(lines, fmt.Sprintf("  %-34s %12.0f -> %12.0f ns/op  %+6.1f%%  %s",
		b.Name, was, b.NsPerOp, 100*delta, verdict))

	wasAllocs, baseHas := prev.Extra["allocs/op"]
	nowAllocs, freshHas := b.Extra["allocs/op"]
	if !baseHas || !freshHas {
		return lines, regressions
	}
	switch {
	case wasAllocs == 0 && nowAllocs > 0:
		regressions++
		lines = append(lines, fmt.Sprintf("  %-34s %12.0f -> %12.0f allocs/op  REGRESSED (was zero-alloc)",
			b.Name, wasAllocs, nowAllocs))
	case wasAllocs > 0 && (nowAllocs-wasAllocs)/wasAllocs > maxRegress:
		regressions++
		lines = append(lines, fmt.Sprintf("  %-34s %12.0f -> %12.0f allocs/op  %+6.1f%%  REGRESSED",
			b.Name, wasAllocs, nowAllocs, 100*(nowAllocs-wasAllocs)/wasAllocs))
	}
	return lines, regressions
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	var (
		baseSpec   = flag.String("base", "", "baseline bench2json document, or a comma/whitespace-separated candidate list (newest `date` wins)")
		newPath    = flag.String("new", "", "fresh bench2json document")
		match      = flag.String("match", ".", "regexp selecting benchmark names to gate on")
		maxRegress = flag.Float64("max-regress", 0.15, "maximum allowed ns/op increase as a fraction of the baseline")
	)
	flag.Parse()
	basePaths := splitBases(*baseSpec)
	if len(basePaths) == 0 || *newPath == "" {
		log.Fatal("both -base and -new are required")
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		log.Fatalf("bad -match: %v", err)
	}
	base, basePath, err := pickBaseline(basePaths)
	if err != nil {
		log.Fatal(err)
	}
	fresh, err := load(*newPath)
	if err != nil {
		log.Fatal(err)
	}

	baseline := make(map[string]benchparse.Result, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[stripProcs(b.Name)] = b
	}
	if len(basePaths) > 1 {
		fmt.Printf("baseline %s (%s), newest of %d candidates\n", basePath, base.Date, len(basePaths))
	} else {
		fmt.Printf("baseline %s (%s)\n", basePath, base.Date)
	}
	regressed := 0
	compared := 0
	for _, b := range fresh.Benchmarks {
		if !re.MatchString(b.Name) {
			continue
		}
		prev, ok := baseline[stripProcs(b.Name)]
		if !ok {
			fmt.Printf("  %-34s %12.0f ns/op  (new benchmark, no baseline)\n", b.Name, b.NsPerOp)
			continue
		}
		compared++
		lines, bad := gate(prev, b, *maxRegress)
		regressed += bad
		for _, l := range lines {
			fmt.Println(l)
		}
	}
	if compared == 0 {
		log.Fatalf("no benchmarks matched %q in both documents", *match)
	}
	if regressed > 0 {
		log.Fatalf("%d regressions across %d matched benchmarks (budget %.0f%%)", regressed, compared, 100**maxRegress)
	}
	fmt.Printf("%d matched benchmarks within the %.0f%% budget\n", compared, 100**maxRegress)
}
