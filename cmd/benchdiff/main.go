// Command benchdiff compares two bench2json documents and fails when
// any benchmark matching a name filter regressed beyond a threshold.
// `make bench-diff` uses it to compare a fresh run against the latest
// committed BENCH_<date>.json, so Sweep-benchmark regressions surface
// in CI instead of silently accumulating.
//
// Usage:
//
//	benchdiff -base BENCH_2026-07-29.json -new fresh.json \
//	          -match 'BenchmarkSweep' -max-regress 0.15
//
// Exit status 1 means at least one matched benchmark regressed by more
// than the threshold; missing counterparts are reported but do not
// fail the comparison (benchmarks come and go across commits).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"

	"thermbal/internal/benchparse"
)

// document mirrors cmd/bench2json's output shape; only the fields the
// comparison needs are decoded.
type document struct {
	Date       string              `json:"date"`
	Benchmarks []benchparse.Result `json:"benchmarks"`
}

// procsSuffix is the "-<GOMAXPROCS>" tail `go test -bench` appends to
// benchmark names on multi-core machines. Baselines and fresh runs may
// come from machines with different core counts, so names are compared
// with the suffix stripped.
var procsSuffix = regexp.MustCompile(`-\d+$`)

func stripProcs(name string) string {
	return procsSuffix.ReplaceAllString(name, "")
}

func load(path string) (document, error) {
	var doc document
	f, err := os.Open(path)
	if err != nil {
		return doc, err
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(&doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return doc, fmt.Errorf("%s: no benchmarks", path)
	}
	return doc, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	var (
		basePath   = flag.String("base", "", "baseline bench2json document")
		newPath    = flag.String("new", "", "fresh bench2json document")
		match      = flag.String("match", ".", "regexp selecting benchmark names to gate on")
		maxRegress = flag.Float64("max-regress", 0.15, "maximum allowed ns/op increase as a fraction of the baseline")
	)
	flag.Parse()
	if *basePath == "" || *newPath == "" {
		log.Fatal("both -base and -new are required")
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		log.Fatalf("bad -match: %v", err)
	}
	base, err := load(*basePath)
	if err != nil {
		log.Fatal(err)
	}
	fresh, err := load(*newPath)
	if err != nil {
		log.Fatal(err)
	}

	baseline := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[stripProcs(b.Name)] = b.NsPerOp
	}
	fmt.Printf("baseline %s (%s)\n", *basePath, base.Date)
	regressed := 0
	compared := 0
	for _, b := range fresh.Benchmarks {
		if !re.MatchString(b.Name) {
			continue
		}
		was, ok := baseline[stripProcs(b.Name)]
		if !ok {
			fmt.Printf("  %-34s %12.0f ns/op  (new benchmark, no baseline)\n", b.Name, b.NsPerOp)
			continue
		}
		compared++
		delta := (b.NsPerOp - was) / was
		verdict := "ok"
		if delta > *maxRegress {
			verdict = "REGRESSED"
			regressed++
		}
		fmt.Printf("  %-34s %12.0f -> %12.0f ns/op  %+6.1f%%  %s\n", b.Name, was, b.NsPerOp, 100*delta, verdict)
	}
	if compared == 0 {
		log.Fatalf("no benchmarks matched %q in both documents", *match)
	}
	if regressed > 0 {
		log.Fatalf("%d of %d matched benchmarks regressed more than %.0f%%", regressed, compared, 100**maxRegress)
	}
	fmt.Printf("%d matched benchmarks within the %.0f%% budget\n", compared, 100**maxRegress)
}
