package main

import (
	"os"
	"path/filepath"
	"testing"

	"thermbal/internal/benchparse"
)

func writeDoc(t *testing.T, dir, name, date string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	body := `{"date":"` + date + `","benchmarks":[{"name":"BenchmarkSweepSerial","iterations":1,"ns_per_op":100}]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestPickBaselineNewestByDate is the regression test for same-day
// trajectory points: BENCH_2026-07-29_2.json carries a later recorded
// date than BENCH_2026-07-29.json and must win regardless of the
// order the candidates are listed in.
func TestPickBaselineNewestByDate(t *testing.T) {
	dir := t.TempDir()
	older := writeDoc(t, dir, "BENCH_2026-07-29.json", "2026-07-29T17:37:39Z")
	newer := writeDoc(t, dir, "BENCH_2026-07-29_2.json", "2026-07-29T18:45:14Z")
	for _, paths := range [][]string{
		{older, newer},
		{newer, older},
	} {
		_, got, err := pickBaseline(paths)
		if err != nil {
			t.Fatal(err)
		}
		if got != newer {
			t.Errorf("pickBaseline(%v) chose %s, want %s", paths, got, newer)
		}
	}
}

func TestPickBaselineUnstampedSortsOldest(t *testing.T) {
	dir := t.TempDir()
	stamped := writeDoc(t, dir, "stamped.json", "2026-07-29T00:00:00Z")
	unstamped := writeDoc(t, dir, "unstamped.json", "not-a-date")
	_, got, err := pickBaseline([]string{unstamped, stamped})
	if err != nil {
		t.Fatal(err)
	}
	if got != stamped {
		t.Errorf("unstamped candidate shadowed the stamped one (%s)", got)
	}
	// An all-unstamped set still resolves (last named wins).
	_, got, err = pickBaseline([]string{unstamped})
	if err != nil || got != unstamped {
		t.Errorf("single unstamped candidate: %s, %v", got, err)
	}
}

func TestSplitBases(t *testing.T) {
	got := splitBases("a.json,b.json c.json\nd.json,")
	want := []string{"a.json", "b.json", "c.json", "d.json"}
	if len(got) != len(want) {
		t.Fatalf("splitBases = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("splitBases[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestPickBaselineSkipsUnloadableCandidates(t *testing.T) {
	dir := t.TempDir()
	good := writeDoc(t, dir, "good.json", "2026-07-29T00:00:00Z")
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, got, err := pickBaseline([]string{bad, good})
	if err != nil || got != good {
		t.Errorf("one bad candidate broke selection: %s, %v", got, err)
	}
	if _, _, err := pickBaseline([]string{bad}); err == nil {
		t.Error("all-unloadable candidate set must error")
	}
}

// TestGateAllocs covers the allocation budget: a zero-alloc baseline
// is a hard floor, non-zero baselines get the fractional budget, and
// documents without allocs/op skip the gate entirely.
func TestGateAllocs(t *testing.T) {
	res := func(ns float64, allocs float64, has bool) benchparse.Result {
		r := benchparse.Result{Name: "BenchmarkX", NsPerOp: ns}
		if has {
			r.Extra = map[string]float64{"allocs/op": allocs}
		}
		return r
	}
	cases := []struct {
		name        string
		prev, now   benchparse.Result
		regressions int
	}{
		{"ns-ok-no-allocs", res(100, 0, false), res(100, 0, false), 0},
		{"ns-regressed", res(100, 0, false), res(200, 0, false), 1},
		{"zero-alloc-held", res(100, 0, true), res(100, 0, true), 0},
		{"zero-alloc-broken", res(100, 0, true), res(100, 1, true), 1},
		{"alloc-within-budget", res(100, 100, true), res(100, 110, true), 0},
		{"alloc-over-budget", res(100, 100, true), res(100, 200, true), 1},
		{"both-regressed", res(100, 0, true), res(200, 5, true), 2},
		{"baseline-missing-allocs", res(100, 0, false), res(100, 7, true), 0},
	}
	for _, c := range cases {
		if _, got := gate(c.prev, c.now, 0.15); got != c.regressions {
			t.Errorf("%s: gate() = %d regressions, want %d", c.name, got, c.regressions)
		}
	}
}
