package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeDoc(t *testing.T, dir, name, date string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	body := `{"date":"` + date + `","benchmarks":[{"name":"BenchmarkSweepSerial","iterations":1,"ns_per_op":100}]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestPickBaselineNewestByDate is the regression test for same-day
// trajectory points: BENCH_2026-07-29_2.json carries a later recorded
// date than BENCH_2026-07-29.json and must win regardless of the
// order the candidates are listed in.
func TestPickBaselineNewestByDate(t *testing.T) {
	dir := t.TempDir()
	older := writeDoc(t, dir, "BENCH_2026-07-29.json", "2026-07-29T17:37:39Z")
	newer := writeDoc(t, dir, "BENCH_2026-07-29_2.json", "2026-07-29T18:45:14Z")
	for _, paths := range [][]string{
		{older, newer},
		{newer, older},
	} {
		_, got, err := pickBaseline(paths)
		if err != nil {
			t.Fatal(err)
		}
		if got != newer {
			t.Errorf("pickBaseline(%v) chose %s, want %s", paths, got, newer)
		}
	}
}

func TestPickBaselineUnstampedSortsOldest(t *testing.T) {
	dir := t.TempDir()
	stamped := writeDoc(t, dir, "stamped.json", "2026-07-29T00:00:00Z")
	unstamped := writeDoc(t, dir, "unstamped.json", "not-a-date")
	_, got, err := pickBaseline([]string{unstamped, stamped})
	if err != nil {
		t.Fatal(err)
	}
	if got != stamped {
		t.Errorf("unstamped candidate shadowed the stamped one (%s)", got)
	}
	// An all-unstamped set still resolves (last named wins).
	_, got, err = pickBaseline([]string{unstamped})
	if err != nil || got != unstamped {
		t.Errorf("single unstamped candidate: %s, %v", got, err)
	}
}

func TestSplitBases(t *testing.T) {
	got := splitBases("a.json,b.json c.json\nd.json,")
	want := []string{"a.json", "b.json", "c.json", "d.json"}
	if len(got) != len(want) {
		t.Fatalf("splitBases = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("splitBases[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestPickBaselineSkipsUnloadableCandidates(t *testing.T) {
	dir := t.TempDir()
	good := writeDoc(t, dir, "good.json", "2026-07-29T00:00:00Z")
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, got, err := pickBaseline([]string{bad, good})
	if err != nil || got != good {
		t.Errorf("one bad candidate broke selection: %s, %v", got, err)
	}
	if _, _, err := pickBaseline([]string{bad}); err == nil {
		t.Error("all-unloadable candidate set must error")
	}
}
