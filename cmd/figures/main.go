// Command figures regenerates every table and figure of the paper's
// evaluation section in one shot (Tables 1-2, Figures 2 and 7-11), plus
// the Section 5 narrative checks. Use -only to restrict to a single
// artifact.
//
// Usage:
//
//	figures              # everything (~10 s)
//	figures -only fig7   # a single figure
//	figures -only narrative
//	figures -only matrix # scenario x policy cross product
//	figures -scenario pipeline-d8 -only fig7
//	figures -scenario-file my.json -only fig7
//	figures -workers 8 -integrator rk4
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"thermbal/internal/cliutil"
	"thermbal/internal/experiment"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	only := flag.String("only", "", "table1|table2|fig2|fig7|fig8|fig9|fig10|fig11|narrative|ablations|scale|matrix (empty = all paper artifacts)")
	workers := flag.Int("workers", 0, "worker pool size (default GOMAXPROCS)")
	integrator := flag.String("integrator", "euler", "thermal integrator: euler | rk4 | rk4-adaptive | expm")
	scenarioFl := flag.String("scenario", "", "registered scenario for the sweep figures (default sdr-radio)")
	scenFile := flag.String("scenario-file", "", "declarative scenario spec JSON file for the sweep figures (mutually exclusive with -scenario)")
	flag.Parse()

	thermalCfg, err := cliutil.ParseIntegrator(*integrator)
	if err != nil {
		log.Fatal(err)
	}
	sc, sp, err := cliutil.ResolveScenarioArg(*scenarioFl, *scenFile)
	if err != nil {
		log.Fatal(err)
	}
	opt := experiment.Options{
		Runner:  experiment.Runner{Workers: *workers},
		Thermal: thermalCfg,
		Spec:    sp,
	}
	if sp == nil {
		opt.Scenario = sc.Name
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	want := func(key string) bool { return *only == "" || *only == key }

	if want("table1") {
		fmt.Print(experiment.FormatTable1())
		fmt.Println()
	}
	if want("table2") {
		rows, err := experiment.Table2With(ctx, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiment.FormatTable2Rows(rows))
		fmt.Println()
	}
	if want("fig2") {
		rows, err := experiment.Fig2With(ctx, opt, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiment.FormatFig2(rows))
		fmt.Println()
	}

	needMobile := want("fig7") || want("fig8") || want("fig11")
	needHP := want("fig9") || want("fig10") || want("fig11")
	var mob, hp []experiment.SweepPoint
	if needMobile {
		mob, err = experiment.SweepWith(ctx, opt, experiment.Mobile, nil)
		if err != nil {
			log.Fatal(err)
		}
	}
	if needHP {
		hp, err = experiment.SweepWith(ctx, opt, experiment.HighPerf, nil)
		if err != nil {
			log.Fatal(err)
		}
	}
	if want("fig7") {
		fmt.Print(experiment.FormatStdDevFigure("Figure 7", experiment.Mobile, mob, nil))
		fmt.Println()
	}
	if want("fig8") {
		fmt.Print(experiment.FormatMissFigure("Figure 8", experiment.Mobile, mob, nil))
		fmt.Println()
	}
	if want("fig9") {
		fmt.Print(experiment.FormatStdDevFigure("Figure 9", experiment.HighPerf, hp, nil))
		fmt.Println()
	}
	if want("fig10") {
		fmt.Print(experiment.FormatMissFigure("Figure 10", experiment.HighPerf, hp, nil))
		fmt.Println()
	}
	if want("fig11") {
		fmt.Print(experiment.FormatFig11(experiment.Fig11(mob, hp, nil)))
		fmt.Println()
	}

	if want("narrative") {
		if err := narrative(); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	if want("ablations") {
		out, err := experiment.AllAblationsWith(ctx, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
		fmt.Println()
	}

	if want("scale") {
		rows, err := experiment.ScaleWith(ctx, opt, nil, 11)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiment.FormatScale(rows))
	}

	// The cross product over every registered scenario and policy is
	// opt-in: it is far larger than the paper's evaluation. -scenario
	// restricts it (comma list or 'all'), matching thermsim -matrix.
	if *only == "matrix" {
		if *scenFile != "" {
			log.Fatal("-scenario-file does not apply to -only matrix (matrix axes are registered names)")
		}
		var mcfg experiment.MatrixConfig
		if *scenarioFl != "" {
			mcfg.Scenarios, err = cliutil.ResolveScenarios(*scenarioFl)
			if err != nil {
				log.Fatal(err)
			}
		}
		cells, err := experiment.MatrixWith(ctx, opt, mcfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiment.FormatMatrix(cells))
	}
}

// narrative reproduces the Section 5 prose claims: the 12.5 s warm-up
// gradient, balance within about a second, bounded overshoot, and the
// 64 KB-per-migration overhead arithmetic.
func narrative() error {
	fmt.Println("Section 5 narrative checks")

	// Warm-up gradient.
	res, eng, err := experiment.Run(experiment.RunConfig{
		Policy: experiment.EnergyBalance, Package: experiment.Mobile, MeasureS: 0.1,
	})
	if err != nil {
		return err
	}
	t1 := eng.Platform().CoreTemp(0)
	t3 := eng.Platform().CoreTemp(2)
	fmt.Printf("  warm-up gradient after 12.5 s: %.1f °C between core1 (%.1f) and core3 (%.1f)\n",
		t1-t3, t1, t3)
	_ = res

	// Balancing transient with the operating threshold.
	resTB, engTB, err := experiment.Run(experiment.RunConfig{
		Policy: experiment.ThermalBalance, Delta: 3, Package: experiment.Mobile, MeasureS: 10, Trace: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  after balancing: mean gradient %.2f °C, %d misses, over-threshold time %.2f s\n",
		resTB.MeanGradient, resTB.DeadlineMisses, resTB.OverThresholdS)
	fmt.Printf("  migration overhead: %d migrations x 64 KB = %.0f KB over %.0f s (%.1f KB/s)\n",
		resTB.Migrations, resTB.MigratedBytes/1024, resTB.MeasuredS, resTB.BytesPerSec/1024)
	_ = engTB

	// Queue sizing: the paper's 11-frame minimum.
	for _, cap := range []int{5, 8, 11} {
		r, _, err := experiment.Run(experiment.RunConfig{
			Policy: experiment.ThermalBalance, Delta: 3, Package: experiment.Mobile,
			MeasureS: 15, QueueCap: cap,
		})
		if err != nil {
			return err
		}
		fmt.Printf("  queue capacity %2d frames -> %d deadline misses\n", cap, r.DeadlineMisses)
	}
	return nil
}
