// Command thermsim runs thermal-management experiments on the emulated
// streaming MPSoC: one (scenario, policy) run with a full report, a
// side-by-side policy comparison, or the whole scenario × policy matrix.
// Scenarios and policies are resolved by name through the registries;
// -list prints the catalogue.
//
// Usage:
//
//	thermsim -list                                   # discovery
//	thermsim -scenario sdr-radio -policy thermal-balance -delta 3
//	thermsim -scenario pipeline-d8 -policy all       # compare every policy
//	thermsim -matrix                                 # full cross product
//	thermsim -matrix -scenario sdr-radio,fanout-w4 -policy eb,tb
//	thermsim -policy stop-go -delta 2 -package highperf -measure 30
//	thermsim -policy thermal-balance -trace run.csv -events ev.csv
//	thermsim -policy tb -delta 3 -json      # the service's /run document
//	thermsim -scenario-file custom.json -policy tb   # declarative spec file
//	thermsim -scenario video-decoder -dump-spec      # export a builtin as a spec
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"thermbal/internal/cliutil"
	"thermbal/internal/experiment"
	"thermbal/internal/migrate"
	"thermbal/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("thermsim: ")

	var (
		list       = flag.Bool("list", false, "list registered scenarios and policies, then exit")
		matrix     = flag.Bool("matrix", false, "run the scenario x policy cross product")
		scenarioFl = flag.String("scenario", "", "scenario name (default sdr-radio; comma list or 'all' with -matrix)")
		scenFile   = flag.String("scenario-file", "", "declarative scenario spec JSON file (mutually exclusive with -scenario)")
		dumpSpec   = flag.Bool("dump-spec", false, "print the selected scenario's declarative spec as JSON and exit")
		policyName = flag.String("policy", "", "policy name or alias, 'all' to compare every registered policy (default: the scenario's)")
		delta      = flag.Float64("delta", 0, "threshold distance from mean temperature in °C (default: the scenario's)")
		pkgName    = flag.String("package", "mobile", "thermal package: mobile | highperf")
		warmup     = flag.Float64("warmup", 0, "warm-up before the policy engages (s; default: the scenario's)")
		measure    = flag.Float64("measure", 0, "measurement window (s; default: the scenario's)")
		queueCap   = flag.Int("queue", 0, "inter-task queue capacity in frames (default 11)")
		recreate   = flag.Bool("recreation", false, "use task-recreation instead of task-replication")
		integrator = flag.String("integrator", "euler", "thermal integrator: euler | rk4 | rk4-adaptive | expm")
		workers    = flag.Int("workers", 0, "worker pool size for -policy all / -matrix (default GOMAXPROCS)")
		noFastPath = flag.Bool("no-fastpath", false, "disable the engine's event-horizon fast path (results are bit-for-bit identical; for A/B validation)")
		jsonOut    = flag.Bool("json", false, "emit the run as the versioned JSON schema document the service serves (single run only)")
		traceOut   = flag.String("trace", "", "write the temperature/frequency timeline CSV to this file")
		eventsOut  = flag.String("events", "", "write the event log CSV to this file")
	)
	flag.Parse()

	if *list {
		fmt.Print(cliutil.ListText())
		return
	}

	if *dumpSpec {
		sc, _, err := cliutil.ResolveScenarioArg(*scenarioFl, *scenFile)
		if err != nil {
			log.Fatal(err)
		}
		out, err := cliutil.SpecJSON(sc)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(out)
		return
	}

	thermalCfg, err := cliutil.ParseIntegrator(*integrator)
	if err != nil {
		log.Fatal(err)
	}
	pkg, err := cliutil.ParsePackage(*pkgName)
	if err != nil {
		log.Fatal(err)
	}
	opt := experiment.Options{
		Runner:  experiment.Runner{Workers: *workers},
		Thermal: thermalCfg,
	}

	if *matrix {
		if *traceOut != "" || *eventsOut != "" {
			log.Fatal("-trace/-events require a single run, not -matrix")
		}
		if *scenFile != "" {
			log.Fatal("-scenario-file requires a single run, not -matrix (matrix axes are registered names)")
		}
		if *jsonOut {
			log.Fatal("-json requires a single run, not -matrix")
		}
		mech := migrate.Replication
		if *recreate {
			mech = migrate.Recreation
		}
		runMatrix(opt, *scenarioFl, *policyName, *delta, pkg, *warmup, *measure, *queueCap, mech)
		return
	}

	if *jsonOut {
		// One encoder, two consumers: the run goes through the same
		// canonicalization and schema document as the service's /run
		// endpoint, so for equal configurations the emitted bytes equal
		// the server's response body.
		if *policyName == "all" {
			log.Fatal("-json requires a single policy")
		}
		if *traceOut != "" || *eventsOut != "" {
			log.Fatal("-json cannot be combined with -trace/-events")
		}
		mech := ""
		if *recreate {
			mech = "task-recreation"
		}
		req := service.Request{
			Scenario: *scenarioFl, Policy: *policyName, Delta: *delta,
			Package: *pkgName, WarmupS: *warmup, MeasureS: *measure,
			QueueCap: *queueCap, Mechanism: mech, Integrator: *integrator,
		}
		if *scenFile != "" {
			sp, err := cliutil.LoadSpec(*scenFile)
			if err != nil {
				log.Fatal(err)
			}
			req.Spec = &sp
		}
		canon, rc, err := service.Canonicalize(req)
		if err != nil {
			log.Fatal(err)
		}
		// The fast-path switch is execution-only: results are
		// bit-for-bit identical either way, so it is not part of the
		// request identity and A/B runs emit the same document.
		rc.NoFastPath = *noFastPath
		res, _, err := experiment.Run(rc)
		if err != nil {
			log.Fatal(err)
		}
		body, err := service.EncodeDoc(service.NewRunDoc(canon, res))
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(body)
		return
	}

	sc, sp, err := cliutil.ResolveScenarioArg(*scenarioFl, *scenFile)
	if err != nil {
		log.Fatal(err)
	}
	if *delta == 0 {
		*delta = sc.DefaultDelta
	}
	rc := experiment.RunConfig{
		Spec:       sp,
		Delta:      *delta,
		Package:    pkg,
		WarmupS:    *warmup,
		MeasureS:   *measure,
		QueueCap:   *queueCap,
		Trace:      *traceOut != "" || *eventsOut != "",
		Thermal:    thermalCfg,
		NoFastPath: *noFastPath,
	}
	if sp == nil {
		rc.Scenario = sc.Name
	}
	if *recreate {
		rc.Mechanism = migrate.Recreation
	}

	polSpec := *policyName
	if polSpec == "" {
		polSpec = sc.DefaultPolicy
	}
	if polSpec == "all" {
		if rc.Trace {
			log.Fatal("-trace/-events require a single policy")
		}
		comparePolicies(sc.Name, rc, opt)
		return
	}
	rc.PolicyName, err = cliutil.ResolvePolicy(polSpec)
	if err != nil {
		log.Fatal(err)
	}

	res, eng, err := experiment.Run(rc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scenario         %s (%s)\n", sc.Name, sc.Topology)
	fmt.Printf("policy           %s\n", res.PolicyName)
	fmt.Printf("package          %s\n", rc.Package)
	fmt.Printf("threshold        ±%.1f °C around the mean\n", rc.Delta)
	fmt.Printf("window           %.1f s\n", res.MeasuredS)
	fmt.Println()
	fmt.Printf("temperature std  %.3f °C pooled (spatial %.3f, temporal %.3f)\n",
		res.PooledStdDev, res.SpatialStdDev, res.MeanTemporalStdDev)
	fmt.Printf("mean gradient    %.2f °C (hottest-coolest)\n", res.MeanGradient)
	fmt.Printf("max temperature  %.2f °C\n", res.MaxTemp)
	fmt.Println()
	fmt.Printf("deadline misses  %d of %d deadlines (%.2f%%)\n",
		res.DeadlineMisses, res.DeadlineMisses+res.FramesConsumed, res.MissRatePct)
	fmt.Printf("migrations       %d (%.2f/s, %.1f KB/s, mean freeze %.1f ms)\n",
		res.Migrations, res.MigrationsPerSec, res.BytesPerSec/1024, res.MeanFreezeS*1e3)
	fmt.Printf("energy           %.3f J total\n", res.TotalEnergyJ)
	fmt.Printf("DVFS switches    %d\n", res.DVFSSwitches)
	if res.OverThresholdS > 0 {
		fmt.Printf("over threshold   %.2f s total above mean+delta\n", res.OverThresholdS)
	}

	for c := 0; c < eng.Platform().NumCores(); c++ {
		fmt.Printf("core%d            %.2f °C @ %.0f MHz\n",
			c+1, eng.Platform().CoreTemp(c), eng.Platform().Frequency(c)/1e6)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.Recorder().WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written    %s (%d samples)\n", *traceOut, len(eng.Recorder().Samples()))
	}
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.Recorder().WriteEventsCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("events written   %s (%d events)\n", *eventsOut, len(eng.Recorder().Events()))
	}
}

// comparePolicies runs every registered policy under the same scenario
// and configuration across the worker pool and prints a side-by-side
// summary.
func comparePolicies(scName string, rc experiment.RunConfig, opt experiment.Options) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	policies, err := cliutil.ResolvePolicies("all")
	if err != nil {
		log.Fatal(err)
	}
	cfgs := make([]experiment.RunConfig, len(policies))
	for i, pol := range policies {
		cfgs[i] = rc
		cfgs[i].PolicyName = pol
	}
	results, err := experiment.RunAll(ctx, opt.Runner, cfgs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %s, package %s, threshold ±%.1f °C, integrator %s\n\n",
		scName, rc.Package, rc.Delta, opt.Thermal.Scheme)
	fmt.Println("policy           std[°C]  spatial  misses  rate%   migr  mig/s  energy[J]")
	for i, pol := range policies {
		r := results[i]
		fmt.Printf("%-16s %7.3f  %7.3f  %6d  %5.2f  %5d  %5.2f  %9.3f\n",
			pol, r.PooledStdDev, r.SpatialStdDev, r.DeadlineMisses, r.MissRatePct,
			r.Migrations, r.MigrationsPerSec, r.TotalEnergyJ)
	}
}

// runMatrix executes the scenario x policy cross product.
func runMatrix(opt experiment.Options, scSpec, polSpec string, delta float64, pkg experiment.PackageSel, warmup, measure float64, queueCap int, mech migrate.Mechanism) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	mc := experiment.MatrixConfig{
		Delta:     delta,
		Package:   pkg,
		WarmupS:   warmup,
		MeasureS:  measure,
		QueueCap:  queueCap,
		Mechanism: mech,
	}
	var err error
	if scSpec != "" {
		if mc.Scenarios, err = cliutil.ResolveScenarios(scSpec); err != nil {
			log.Fatal(err)
		}
	}
	if polSpec != "" {
		if mc.Policies, err = cliutil.ResolvePolicies(polSpec); err != nil {
			log.Fatal(err)
		}
	}
	cells, err := experiment.MatrixWith(ctx, opt, mc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiment.FormatMatrix(cells))
}
