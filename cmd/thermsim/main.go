// Command thermsim runs one thermal-management experiment on the
// emulated 3-core streaming MPSoC and prints a full report: the
// reproduction's equivalent of one run on the paper's FPGA framework.
//
// Usage:
//
//	thermsim -policy thermal-balance -delta 3 -package mobile
//	thermsim -policy stop-go -delta 2 -package highperf -measure 30
//	thermsim -policy thermal-balance -delta 3 -trace run.csv -events ev.csv
//	thermsim -policy all -delta 3 -workers 3    # compare all policies in parallel
//	thermsim -policy thermal-balance -integrator rk4
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"thermbal/internal/experiment"
	"thermbal/internal/migrate"
	"thermbal/internal/thermal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("thermsim: ")

	var (
		policyName = flag.String("policy", "thermal-balance", "policy: energy-balance | stop-go | thermal-balance | all")
		delta      = flag.Float64("delta", 3, "threshold distance from mean temperature (°C)")
		pkgName    = flag.String("package", "mobile", "thermal package: mobile | highperf")
		warmup     = flag.Float64("warmup", experiment.DefaultWarmupS, "warm-up before the policy engages (s)")
		measure    = flag.Float64("measure", experiment.DefaultMeasureS, "measurement window (s)")
		queueCap   = flag.Int("queue", 0, "inter-task queue capacity in frames (default 11)")
		recreate   = flag.Bool("recreation", false, "use task-recreation instead of task-replication")
		integrator = flag.String("integrator", "euler", "thermal integrator: euler | rk4 | rk4-adaptive")
		workers    = flag.Int("workers", 0, "worker pool size for -policy all (default GOMAXPROCS)")
		traceOut   = flag.String("trace", "", "write the temperature/frequency timeline CSV to this file")
		eventsOut  = flag.String("events", "", "write the event log CSV to this file")
	)
	flag.Parse()

	scheme, err := thermal.ParseScheme(*integrator)
	if err != nil {
		log.Fatal(err)
	}
	rc := experiment.RunConfig{
		Delta:    *delta,
		WarmupS:  *warmup,
		MeasureS: *measure,
		QueueCap: *queueCap,
		Trace:    *traceOut != "" || *eventsOut != "",
		Thermal:  thermal.Config{Scheme: scheme},
	}
	switch *pkgName {
	case "mobile", "embedded":
		rc.Package = experiment.Mobile
	case "highperf", "high-performance", "hp":
		rc.Package = experiment.HighPerf
	default:
		log.Fatalf("unknown package %q", *pkgName)
	}
	if *recreate {
		rc.Mechanism = migrate.Recreation
	}
	switch *policyName {
	case "energy-balance", "eb":
		rc.Policy = experiment.EnergyBalance
	case "stop-go", "stopgo", "stop&go", "sg":
		rc.Policy = experiment.StopGo
	case "thermal-balance", "tb", "migra":
		rc.Policy = experiment.ThermalBalance
	case "all":
		if rc.Trace {
			log.Fatal("-trace/-events require a single policy")
		}
		comparePolicies(rc, *workers)
		return
	default:
		log.Fatalf("unknown policy %q", *policyName)
	}

	res, eng, err := experiment.Run(rc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("policy           %s\n", res.PolicyName)
	fmt.Printf("package          %s\n", rc.Package)
	fmt.Printf("threshold        ±%.1f °C around the mean\n", rc.Delta)
	fmt.Printf("window           %.1f s (after %.1f s warm-up)\n", res.MeasuredS, rc.WarmupS)
	fmt.Println()
	fmt.Printf("temperature std  %.3f °C pooled (spatial %.3f, temporal %.3f)\n",
		res.PooledStdDev, res.SpatialStdDev, res.MeanTemporalStdDev)
	fmt.Printf("mean gradient    %.2f °C (hottest-coolest)\n", res.MeanGradient)
	fmt.Printf("max temperature  %.2f °C\n", res.MaxTemp)
	fmt.Println()
	fmt.Printf("deadline misses  %d of %d deadlines (%.2f%%)\n",
		res.DeadlineMisses, res.DeadlineMisses+res.FramesConsumed, res.MissRatePct)
	fmt.Printf("migrations       %d (%.2f/s, %.1f KB/s, mean freeze %.1f ms)\n",
		res.Migrations, res.MigrationsPerSec, res.BytesPerSec/1024, res.MeanFreezeS*1e3)
	fmt.Printf("energy           %.3f J total\n", res.TotalEnergyJ)
	fmt.Printf("DVFS switches    %d\n", res.DVFSSwitches)
	if res.OverThresholdS > 0 {
		fmt.Printf("over threshold   %.2f s total above mean+delta\n", res.OverThresholdS)
	}

	for c := 0; c < eng.Platform().NumCores(); c++ {
		fmt.Printf("core%d            %.2f °C @ %.0f MHz\n",
			c+1, eng.Platform().CoreTemp(c), eng.Platform().Frequency(c)/1e6)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.Recorder().WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written    %s (%d samples)\n", *traceOut, len(eng.Recorder().Samples()))
	}
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.Recorder().WriteEventsCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("events written   %s (%d events)\n", *eventsOut, len(eng.Recorder().Events()))
	}
}

// comparePolicies runs all three policies under the same configuration
// across the worker pool and prints a side-by-side summary.
func comparePolicies(rc experiment.RunConfig, workers int) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	policies := []experiment.PolicySel{
		experiment.EnergyBalance, experiment.StopGo, experiment.ThermalBalance,
	}
	cfgs := make([]experiment.RunConfig, len(policies))
	for i, pol := range policies {
		cfgs[i] = rc
		cfgs[i].Policy = pol
	}
	results, err := experiment.RunAll(ctx, experiment.Runner{Workers: workers}, cfgs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("package %s, threshold ±%.1f °C, %.1f s window, integrator %s\n\n",
		rc.Package, rc.Delta, rc.MeasureS, rc.Thermal.Scheme)
	fmt.Println("policy           std[°C]  spatial  misses  rate%   migr  mig/s  energy[J]")
	for i, pol := range policies {
		r := results[i]
		fmt.Printf("%-16s %7.3f  %7.3f  %6d  %5.2f  %5d  %5.2f  %9.3f\n",
			pol, r.PooledStdDev, r.SpatialStdDev, r.DeadlineMisses, r.MissRatePct,
			r.Migrations, r.MigrationsPerSec, r.TotalEnergyJ)
	}
}
