// Command sweep runs the paper's threshold sweep (Figures 7-11) for one
// or both thermal packages and prints the resulting series. The swept
// workload is any registered scenario (-scenario, default the paper's
// SDR radio).
//
// Usage:
//
//	sweep                        # both packages, thresholds 2..5
//	sweep -package mobile        # one package
//	sweep -deltas 2,3,4,5,6      # custom thresholds
//	sweep -scenario pipeline-d8  # sweep a synthetic scenario
//	sweep -scenario-file my.json # sweep a declarative scenario spec
//	sweep -workers 8             # spread the runs over 8 workers
//	sweep -integrator rk4        # higher-order thermal integration
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"thermbal/internal/cliutil"
	"thermbal/internal/experiment"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	var (
		pkgName    = flag.String("package", "both", "mobile | highperf | both")
		deltaStr   = flag.String("deltas", "", "comma-separated thresholds (default 2,3,4,5)")
		scenarioFl = flag.String("scenario", "", "registered scenario to sweep (default sdr-radio)")
		scenFile   = flag.String("scenario-file", "", "declarative scenario spec JSON file (mutually exclusive with -scenario)")
		workers    = flag.Int("workers", 0, "worker pool size (default GOMAXPROCS)")
		integrator = flag.String("integrator", "euler", "thermal integrator: euler | rk4 | rk4-adaptive | expm")
	)
	flag.Parse()

	deltas, err := cliutil.ParseDeltas(*deltaStr)
	if err != nil {
		log.Fatal(err)
	}
	thermalCfg, err := cliutil.ParseIntegrator(*integrator)
	if err != nil {
		log.Fatal(err)
	}
	sc, sp, err := cliutil.ResolveScenarioArg(*scenarioFl, *scenFile)
	if err != nil {
		log.Fatal(err)
	}
	opt := experiment.Options{
		Runner:  experiment.Runner{Workers: *workers},
		Thermal: thermalCfg,
		Spec:    sp,
	}
	if sp == nil {
		opt.Scenario = sc.Name
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	useDeltas := deltas
	if useDeltas == nil {
		useDeltas = experiment.Deltas
	}
	// Fig11 formatting relies on the shared default axis; extend it when
	// the user supplies a custom one.
	experiment.Deltas = useDeltas

	wantMobile := *pkgName == "both" || *pkgName == "mobile"
	wantHP := *pkgName == "both" || *pkgName == "highperf" || *pkgName == "hp"
	if !wantMobile && !wantHP {
		log.Fatalf("unknown package %q", *pkgName)
	}

	if *scenarioFl != "" || *scenFile != "" {
		fmt.Printf("scenario: %s (%s)\n\n", sc.Name, sc.Topology)
	}
	var mob, hp []experiment.SweepPoint
	if wantMobile {
		mob, err = experiment.SweepWith(ctx, opt, experiment.Mobile, useDeltas)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiment.FormatStdDevFigure("Figure 7", experiment.Mobile, mob, useDeltas))
		fmt.Println()
		fmt.Print(experiment.FormatMissFigure("Figure 8", experiment.Mobile, mob, useDeltas))
		fmt.Println()
	}
	if wantHP {
		hp, err = experiment.SweepWith(ctx, opt, experiment.HighPerf, useDeltas)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiment.FormatStdDevFigure("Figure 9", experiment.HighPerf, hp, useDeltas))
		fmt.Println()
		fmt.Print(experiment.FormatMissFigure("Figure 10", experiment.HighPerf, hp, useDeltas))
		fmt.Println()
	}
	if wantMobile && wantHP {
		fmt.Print(experiment.FormatFig11(experiment.Fig11(mob, hp, useDeltas)))
	}
}
