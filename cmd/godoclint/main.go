// Command godoclint is the repository's documentation gate: it fails
// when the thermbal facade package exports a symbol without a doc
// comment, or when any checked package lacks a package-level doc
// comment. `make doclint` (wired into `make check` and CI) runs it as
//
//	godoclint -exported . -pkgdoc ./internal/... ./cmd/...
//
// The -exported rule is strict on purpose for the facade alone: that
// package is the repo's public API surface, and an undocumented export
// there is a missing contract, not a style nit. Internal packages only
// need the package comment stating their role; their exported symbols
// are library-internal and churn too much to gate one by one.
//
// Test files and generated files are skipped. Exit status 1 means at
// least one violation.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("godoclint: ")
	var (
		exported multiFlag
		pkgdoc   multiFlag
	)
	flag.Var(&exported, "exported", "package directory whose exported symbols must all carry doc comments (repeatable)")
	flag.Var(&pkgdoc, "pkgdoc", "package directory (or ./dir/... tree) that must carry a package doc comment (repeatable)")
	flag.Parse()
	if len(exported) == 0 && len(pkgdoc) == 0 {
		log.Fatal("nothing to check: pass -exported and/or -pkgdoc")
	}

	violations := 0
	for _, dir := range expand(exported) {
		violations += checkDir(dir, true)
	}
	for _, dir := range expand(pkgdoc) {
		violations += checkDir(dir, false)
	}
	if violations > 0 {
		log.Fatalf("%d violations", violations)
	}
	fmt.Println("godoclint: ok")
}

// multiFlag collects repeated flag values.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// expand resolves each spec to package directories: a plain directory
// stays itself, a `dir/...` spec walks the tree for every directory
// containing .go files.
func expand(specs []string) []string {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, spec := range specs {
		root, recursive := strings.CutSuffix(spec, "/...")
		if !recursive {
			add(spec)
			continue
		}
		filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil || !d.IsDir() {
				return nil
			}
			if base := d.Name(); strings.HasPrefix(base, ".") && path != root {
				return filepath.SkipDir
			}
			if entries, err := filepath.Glob(filepath.Join(path, "*.go")); err == nil && len(entries) > 0 {
				add(path)
			}
			return nil
		})
	}
	sort.Strings(dirs)
	return dirs
}

// checkDir parses one package directory. With wantExported, every
// exported top-level symbol needs a doc comment; either way, the
// package itself needs a package doc comment on exactly one file.
func checkDir(dir string, wantExported bool) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(info os.FileInfo) bool {
		return !strings.HasSuffix(info.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Printf("%s: parse: %v\n", dir, err)
		return 1
	}
	violations := 0
	for name, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			fmt.Printf("%s: package %s has no package doc comment\n", dir, name)
			violations++
		}
		if !wantExported {
			continue
		}
		for _, f := range pkg.Files {
			violations += checkFile(fset, f)
		}
	}
	return violations
}

// checkFile reports every exported top-level symbol in one file that
// carries no doc comment.
func checkFile(fset *token.FileSet, f *ast.File) int {
	violations := 0
	report := func(pos token.Pos, kind, name string) {
		fmt.Printf("%s: exported %s %s has no doc comment\n", fset.Position(pos), kind, name)
		violations++
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					// Methods on unexported receivers are not part of
					// the public surface.
					if !receiverExported(d.Recv) {
						continue
					}
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
						report(sp.Pos(), "type", sp.Name.Name)
					}
				case *ast.ValueSpec:
					// A documented const/var block covers its members;
					// an inline comment on the spec also counts.
					if d.Doc != nil || sp.Doc != nil || sp.Comment != nil {
						continue
					}
					for _, n := range sp.Names {
						if n.IsExported() {
							report(n.Pos(), "const/var", n.Name)
						}
					}
				}
			}
		}
	}
	return violations
}

// receiverExported reports whether a method's receiver type is
// exported.
func receiverExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
