package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writePkg(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "pkg.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestCheckDirExported(t *testing.T) {
	// Five violations: no package doc, undocumented exported type,
	// function, const, and method on an exported receiver. The
	// unexported symbols and the documented block are clean.
	dir := writePkg(t, `package p

type Exported struct{}

func (Exported) Method() {}

func (hidden) Visible() {} // method on unexported receiver: not public surface

type hidden struct{}

func Func() {}

const Answer = 42

// Documented group covers its members.
const (
	A = 1
	B = 2
)

func private() {}
`)
	if got := checkDir(dir, true); got != 5 {
		t.Errorf("checkDir(exported) = %d violations, want 5", got)
	}
}

func TestCheckDirPkgDocOnly(t *testing.T) {
	bad := writePkg(t, `package p

func Undocumented() {}
`)
	// Without -exported the only requirement is the package comment.
	if got := checkDir(bad, false); got != 1 {
		t.Errorf("checkDir(pkgdoc, missing) = %d, want 1", got)
	}
	good := writePkg(t, `// Package p does something.
package p

func Undocumented() {}
`)
	if got := checkDir(good, false); got != 0 {
		t.Errorf("checkDir(pkgdoc, present) = %d, want 0", got)
	}
}

func TestExpandRecursive(t *testing.T) {
	root := t.TempDir()
	sub := filepath.Join(root, "a", "b")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "x.go"), []byte("package b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// root has no .go files, so only the leaf is returned.
	dirs := expand([]string{root + "/..."})
	if len(dirs) != 1 || dirs[0] != sub {
		t.Errorf("expand = %v, want [%s]", dirs, sub)
	}
}
