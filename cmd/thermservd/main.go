// Command thermservd serves thermal-balancing simulations over
// HTTP/JSON: a long-running job server with a content-addressed result
// cache, request coalescing and an optional durable result store on
// top of the deterministic experiment engine (see internal/service and
// internal/store).
//
// Usage:
//
//	thermservd                       # serve on :8080, memory-only
//	thermservd -data-dir /var/lib/thermbal
//	                                 # durable store: results survive
//	                                 # restarts, sweeps resume
//	thermservd -addr 127.0.0.1:0     # ephemeral port (printed on start)
//	thermservd -cache 2048 -job-workers 4 -queue-depth 128
//	thermservd -timing-log timings.csv
//	                                 # append one CSV timing record per
//	                                 # /run//matrix request
//	thermservd -smoke                # self-check: start on an ephemeral
//	                                 # port, exercise /scenarios, a
//	                                 # cached-vs-fresh /run pair (with
//	                                 # X-Timing parsing), the /metrics
//	                                 # surface against /stats, and a
//	                                 # kill + restart-and-rehit pass on
//	                                 # a durable store; exit 0/1
//	thermservd -smoke-proof DIR      # provenance self-check: populate a
//	                                 # store under DIR over HTTP, seal
//	                                 # it, verify inclusion proofs
//	                                 # across a restart, and leave
//	                                 # artifacts (data/, a tampered
//	                                 # copy, proof.json) for offline
//	                                 # verification with cmd/thermproof
//
// Endpoints: GET /scenarios, GET /policies, POST /run, POST /matrix,
// POST/GET /jobs, GET|DELETE /jobs/{id}, GET /proof, POST /seal,
// GET /stats, GET /metrics, GET /healthz. /run and /matrix responses
// carry an X-Timing header (compact stage=µs pairs) and an
// X-Content-Key header (the content address to pass to /proof). The
// server shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"thermbal/internal/experiment"
	"thermbal/internal/obs"
	"thermbal/internal/policy"
	"thermbal/internal/provenance"
	"thermbal/internal/scenario"
	"thermbal/internal/service"
	"thermbal/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("thermservd: ")

	var (
		addr       = flag.String("addr", ":8080", "listen address (use 127.0.0.1:0 for an ephemeral port)")
		cacheSize  = flag.Int("cache", 0, "result-cache capacity in bodies (default 512)")
		jobWorkers = flag.Int("job-workers", 0, "async job workers (default GOMAXPROCS)")
		queueDepth = flag.Int("queue-depth", 0, "pending-job queue bound (default 64)")
		jobRetain  = flag.Int("job-retention", 0, "finished jobs kept pollable before pruning (default 256)")
		workers    = flag.Int("workers", 0, "experiment worker pool for /matrix sweeps (default GOMAXPROCS)")
		maxSims    = flag.Int("max-sims", 0, "concurrent simulation executions across all endpoints (default 2xGOMAXPROCS)")
		maxSync    = flag.Float64("max-sync", 0, "max simulated seconds a synchronous /run accepts (default 600)")
		maxPending = flag.Float64("max-pending-sim-s", 0, "pending simulated-seconds budget before load shedding with 503 + Retry-After (default 20x max-sync; negative: unbounded)")
		quotaRPS   = flag.Float64("quota-rps", 0, "per-tenant request quota in requests/second on /run, /matrix and POST /jobs; 0 disables quotas")
		quotaBurst = flag.Float64("quota-burst", 0, "per-tenant burst allowance in requests (default 2x quota-rps, min 1)")
		tenantHdr  = flag.String("tenant-header", "", "header naming the tenant for quota accounting (default X-Tenant; absent header falls back to the remote IP)")
		dataDir    = flag.String("data-dir", "", "durable result-store directory (empty: memory-only; results and job resumability are lost on restart)")
		storeMax   = flag.Int64("store-max-bytes", 0, "on-disk store size budget in bytes; exceeding it compacts the log and evicts the oldest results (default 256 MiB)")
		storeSeg   = flag.Int64("store-segment-bytes", 0, "segment rotation threshold in bytes; each rotation seals the filled segment under a Merkle root (default 8 MiB)")
		timingLog  = flag.String("timing-log", "", "append one CSV timing record per /run and /matrix request to this file (header written when the file is new)")
		smoke      = flag.Bool("smoke", false, "run the self-check against an ephemeral instance and exit")
		smokeProof = flag.String("smoke-proof", "", "run the provenance self-check, leaving verification artifacts under this directory, and exit")
	)
	flag.Parse()

	cfg := service.Config{
		CacheEntries:   *cacheSize,
		JobWorkers:     *jobWorkers,
		QueueDepth:     *queueDepth,
		JobRetention:   *jobRetain,
		MaxSims:        *maxSims,
		MaxSyncSimS:    *maxSync,
		MaxPendingSimS: *maxPending,
		QuotaRPS:       *quotaRPS,
		QuotaBurst:     *quotaBurst,
		TenantHeader:   *tenantHdr,
	}
	cfg.Runner.Workers = *workers

	if *smoke {
		if err := runSmoke(cfg); err != nil {
			log.Fatalf("smoke: FAIL: %v", err)
		}
		log.Print("smoke: PASS")
		return
	}

	if *smokeProof != "" {
		if err := runSmokeProof(cfg, *smokeProof); err != nil {
			log.Fatalf("smoke-proof: FAIL: %v", err)
		}
		log.Print("smoke-proof: PASS")
		return
	}

	if *timingLog != "" {
		f, err := os.OpenFile(*timingLog, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		info, err := f.Stat()
		if err != nil {
			log.Fatal(err)
		}
		// Write the column header only on a fresh file; appending to an
		// existing log must not interleave a second header mid-stream.
		cfg.TimingLog = obs.NewCSVLogger(f, info.Size() == 0)
		log.Printf("timing log: %s", *timingLog)
	}

	if *dataDir != "" {
		st, err := store.Open(*dataDir, store.Options{
			MaxBytes:     *storeMax,
			SegmentBytes: *storeSeg,
			Pinned:       service.JournalPinned,
			Version:      experiment.EngineVersion,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		cfg.Store = st
		sst := st.Stats()
		log.Printf("store: %s (%d records, %d segments, %d bytes)", *dataDir, sst.Records, sst.Segments, sst.Bytes)
		if sst.ChainLen > 0 {
			// The chain head is the one value worth pinning out-of-band:
			// a verifier holding it can detect manifest truncation.
			log.Printf("store: provenance chain %d roots, head %s", sst.ChainLen, sst.ChainHead)
		}
		if sst.TailTruncated > 0 || sst.CorruptSegments > 0 {
			log.Printf("store: recovered from unclean shutdown (%d tail bytes truncated, %d segments with corrupt records)",
				sst.TailTruncated, sst.CorruptSegments)
		}
	}

	svc := service.New(cfg)
	defer svc.Close()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on http://%s", hostURL(ln.Addr()))
	log.Printf("serving %d scenarios x %d policies (GET /scenarios, /policies; POST /run, /matrix, /jobs)",
		len(scenario.Names()), len(policy.Names()))

	httpSrv := &http.Server{Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
}

// hostURL renders a listener address as something curl-able
// (":8080" and unspecified hosts become localhost).
func hostURL(a net.Addr) string {
	s := a.String()
	if host, port, err := net.SplitHostPort(s); err == nil {
		if host == "" || host == "::" || host == "0.0.0.0" {
			return net.JoinHostPort("localhost", port)
		}
	}
	return s
}

// smokeInstance is one ephemeral server under smoke test.
type smokeInstance struct {
	svc  *service.Server
	http *http.Server
	base string
}

func startInstance(cfg service.Config) (*smokeInstance, error) {
	svc := service.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		svc.Close()
		return nil, err
	}
	inst := &smokeInstance{
		svc:  svc,
		http: &http.Server{Handler: svc.Handler()},
		base: "http://" + ln.Addr().String(),
	}
	go inst.http.Serve(ln)
	return inst, nil
}

// shutdown stops the instance gracefully (kill-equivalence for the
// store comes from never syncing or closing it, which the restart
// pass arranges separately).
func (i *smokeInstance) shutdown() error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := i.http.Shutdown(ctx)
	i.svc.Close()
	return err
}

func (i *smokeInstance) get(path string) ([]byte, error) {
	resp, err := http.Get(i.base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %d: %s", path, resp.StatusCode, b)
	}
	return b, nil
}

// getStatus is get without the 200-only policy: the proof pass needs
// to assert specific refusal codes (409 before a seal).
func (i *smokeInstance) getStatus(path string) (int, []byte, error) {
	resp, err := http.Get(i.base + path)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

func (i *smokeInstance) post(path, body string) ([]byte, http.Header, error) {
	resp, err := http.Post(i.base+path, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, nil, fmt.Errorf("POST %s: %d: %s", path, resp.StatusCode, b)
	}
	return b, resp.Header, nil
}

// checkTiming asserts a /run response's X-Timing header parses, names
// every stage plus total, and matches the executed-vs-cached shape:
// an executed (miss) response spent measurable time in the engine, a
// cached one must not claim any.
func checkTiming(h http.Header, wantExecuted bool) error {
	v := h.Get("X-Timing")
	if v == "" {
		return fmt.Errorf("X-Timing header absent")
	}
	pairs, err := obs.ParseHeaderValue(v)
	if err != nil {
		return fmt.Errorf("X-Timing %q: %w", v, err)
	}
	for _, name := range obs.StageNames {
		if _, ok := pairs[name]; !ok {
			return fmt.Errorf("X-Timing %q missing stage %q", v, name)
		}
	}
	total, ok := pairs["total"]
	if !ok {
		return fmt.Errorf("X-Timing %q missing total", v)
	}
	if total <= 0 {
		return fmt.Errorf("X-Timing %q: total %d µs, want > 0", v, total)
	}
	if wantExecuted && pairs["execute"] <= 0 {
		return fmt.Errorf("X-Timing %q: executed run reports %d µs in the engine", v, pairs["execute"])
	}
	if !wantExecuted && pairs["execute"] != 0 {
		return fmt.Errorf("X-Timing %q: cached run claims %d µs in the engine", v, pairs["execute"])
	}
	return nil
}

// metricValue extracts one series value from a Prometheus text
// exposition: the line starting `series value`.
func metricValue(text, series string) (float64, bool) {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

func (i *smokeInstance) stats() (service.StatsDoc, error) {
	var stats service.StatsDoc
	b, err := i.get("/stats")
	if err != nil {
		return stats, err
	}
	if err := json.Unmarshal(b, &stats); err != nil {
		return stats, fmt.Errorf("decode /stats: %w", err)
	}
	return stats, nil
}

// waitJob polls /jobs/{id} until the job finishes.
func (i *smokeInstance) waitJob(id string) (service.JobStatus, error) {
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st service.JobStatus
		b, err := i.get("/jobs/" + id)
		if err != nil {
			return st, err
		}
		if err := json.Unmarshal(b, &st); err != nil {
			return st, fmt.Errorf("decode job status: %w", err)
		}
		switch st.State {
		case service.JobDone:
			return st, nil
		case service.JobFailed, service.JobCancelled:
			return st, fmt.Errorf("job %s ended %s: %s", id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// runSmoke is the CI self-check, driven over real TCP against real
// instances on ephemeral ports: the catalogue endpoint, a cold /run
// with a byte-identical cached rerun, the stats counters, and then the
// persistence pass — populate a durable store via /run and a matrix
// job, stop without closing the store (a SIGKILL leaves exactly those
// files), restart on the same data dir and verify the re-request is a
// store hit with identical bytes and that the re-submitted sweep
// executes nothing.
func runSmoke(cfg service.Config) error {
	inst, err := startInstance(cfg)
	if err != nil {
		return err
	}
	defer inst.svc.Close()
	log.Printf("smoke: serving on %s", inst.base)

	b, err := inst.get("/scenarios")
	if err != nil {
		return err
	}
	var scDoc struct {
		Scenarios []scenario.Info `json:"scenarios"`
	}
	if err := json.Unmarshal(b, &scDoc); err != nil {
		return fmt.Errorf("decode /scenarios: %w", err)
	}
	if len(scDoc.Scenarios) == 0 {
		return fmt.Errorf("/scenarios returned an empty catalogue")
	}
	log.Printf("smoke: /scenarios ok (%d scenarios)", len(scDoc.Scenarios))

	const run = `{"scenario":"sdr-radio","policy":"tb","delta":3,"warmup_s":0.5,"measure_s":1}`
	cold, hdr, err := inst.post("/run", run)
	if err != nil {
		return err
	}
	if state := hdr.Get("X-Cache"); state != "miss" {
		return fmt.Errorf("cold /run X-Cache = %q, want miss", state)
	}
	if err := checkTiming(hdr, true); err != nil {
		return fmt.Errorf("cold /run: %w", err)
	}
	cached, hdr, err := inst.post("/run", run)
	if err != nil {
		return err
	}
	if state := hdr.Get("X-Cache"); state != "hit" {
		return fmt.Errorf("second /run X-Cache = %q, want hit", state)
	}
	if err := checkTiming(hdr, false); err != nil {
		return fmt.Errorf("cached /run: %w", err)
	}
	if !bytes.Equal(cold, cached) {
		return fmt.Errorf("cached /run body differs from the cold run")
	}
	log.Printf("smoke: /run cold-vs-cached ok (%d bytes, byte-identical, X-Timing parses on both)", len(cold))

	stats, err := inst.stats()
	if err != nil {
		return err
	}
	if stats.Executions != 1 || stats.Cache.Hits != 1 || stats.Cache.Misses != 1 {
		return fmt.Errorf("/stats counters = executions %d, hits %d, misses %d; want 1, 1, 1",
			stats.Executions, stats.Cache.Hits, stats.Cache.Misses)
	}
	log.Printf("smoke: /stats ok (executions %d, hits %d, misses %d)", stats.Executions, stats.Cache.Hits, stats.Cache.Misses)

	if err := checkMetrics(inst, stats); err != nil {
		return err
	}

	if err := inst.shutdown(); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Print("smoke: clean shutdown")

	return smokeRestart(cfg)
}

// checkMetrics scrapes /metrics after the run pair and fails unless
// the stage histograms are present and their counts reconcile with the
// /stats counters — the gate that keeps the metrics surface truthful.
func checkMetrics(inst *smokeInstance, stats service.StatsDoc) error {
	b, err := inst.get("/metrics")
	if err != nil {
		return err
	}
	text := string(b)
	// Every stage histogram family member must be present.
	for _, stage := range obs.StageNames {
		series := fmt.Sprintf("thermbal_stage_duration_seconds_count{stage=%q}", stage)
		if _, ok := metricValue(text, series); !ok {
			return fmt.Errorf("/metrics missing %s", series)
		}
	}
	// Counts must reconcile with /stats: one engine run means one
	// execute-stage observation, and the cache counters match the
	// outcome-labelled request counters.
	reconcile := []struct {
		series string
		want   float64
	}{
		{`thermbal_stage_duration_seconds_count{stage="execute"}`, float64(stats.Executions)},
		{`thermbal_executions_total`, float64(stats.Executions)},
		{`thermbal_requests_total{endpoint="run",outcome="miss"}`, float64(stats.Executions)},
		{`thermbal_requests_total{endpoint="run",outcome="hit"}`, float64(stats.Cache.Hits)},
		{`thermbal_cache_hits_total`, float64(stats.Cache.Hits)},
		{`thermbal_cache_misses_total`, float64(stats.Cache.Misses)},
	}
	for _, rc := range reconcile {
		got, ok := metricValue(text, rc.series)
		if !ok {
			return fmt.Errorf("/metrics missing %s", rc.series)
		}
		if got != rc.want {
			return fmt.Errorf("/metrics %s = %g, inconsistent with /stats %g", rc.series, got, rc.want)
		}
	}
	// The request-latency histogram must have observed both requests of
	// the pair, and /stats must report quantiles computed from it.
	pairCount, ok := metricValue(text, `thermbal_request_duration_seconds_count{endpoint="run",outcome="miss"}`)
	if !ok || pairCount != 1 {
		return fmt.Errorf("/metrics run/miss request histogram count = %g, want 1", pairCount)
	}
	if stats.Latency.Run.Count != 2 {
		return fmt.Errorf("/stats latency.run.count = %d, want 2 (fresh + cached)", stats.Latency.Run.Count)
	}
	if stats.Latency.Execute.Count != uint64(stats.Executions) {
		return fmt.Errorf("/stats latency.execute.count = %d, want %d", stats.Latency.Execute.Count, stats.Executions)
	}
	if stats.Latency.Execute.P50Ms <= 0 {
		return fmt.Errorf("/stats latency.execute.p50_ms = %g, want > 0", stats.Latency.Execute.P50Ms)
	}
	log.Printf("smoke: /metrics ok (stage histograms present, counts reconcile with /stats, run p95 %.2f ms)",
		stats.Latency.Run.P95Ms)
	return nil
}

// smokeRestart is the restart-and-rehit pass on a throwaway data dir.
func smokeRestart(cfg service.Config) error {
	dir, err := os.MkdirTemp("", "thermservd-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	openStore := func() (*store.Store, error) {
		return store.Open(dir, store.Options{
			Pinned:  service.JournalPinned,
			Version: experiment.EngineVersion,
		})
	}

	// First life: populate the store through /run and a matrix job.
	st1, err := openStore()
	if err != nil {
		return err
	}
	cfg1 := cfg
	cfg1.Store = st1
	inst, err := startInstance(cfg1)
	if err != nil {
		return err
	}
	const run = `{"scenario":"sdr-radio","policy":"tb","delta":3,"warmup_s":0.5,"measure_s":1}`
	const sweep = `{"matrix":{"scenarios":["sdr-radio"],"policies":["eb","tb"],"delta":3,"warmup_s":0.5,"measure_s":1}}`
	cold, hdr, err := inst.post("/run", run)
	if err != nil {
		return err
	}
	if state := hdr.Get("X-Cache"); state != "miss" {
		return fmt.Errorf("restart pass: cold /run X-Cache = %q, want miss", state)
	}
	b, _, err := inst.post("/jobs", sweep)
	if err != nil {
		return err
	}
	var submitted service.JobStatus
	if err := json.Unmarshal(b, &submitted); err != nil {
		return fmt.Errorf("decode job submit: %w", err)
	}
	jobDone, err := inst.waitJob(submitted.ID)
	if err != nil {
		return err
	}
	if p := jobDone.Progress; p == nil || p.CompletedCells != 2 {
		return fmt.Errorf("restart pass: sweep progress = %+v, want 2 completed cells", jobDone.Progress)
	}
	// Stop the HTTP server but deliberately abandon the store — no
	// Close, no fsync. The directory now holds exactly what a SIGKILL
	// would have left behind.
	if err := inst.shutdown(); err != nil {
		return fmt.Errorf("restart pass: first shutdown: %w", err)
	}
	log.Printf("smoke: store populated (/run + 2-cell sweep), first instance stopped without closing it")

	// Second life: same data dir, fresh everything else.
	st2, err := openStore()
	if err != nil {
		return fmt.Errorf("restart pass: reopen store: %w", err)
	}
	defer st2.Close()
	cfg2 := cfg
	cfg2.Store = st2
	inst2, err := startInstance(cfg2)
	if err != nil {
		return err
	}
	defer inst2.svc.Close()
	warm, hdr, err := inst2.post("/run", run)
	if err != nil {
		return err
	}
	if state := hdr.Get("X-Cache"); state != "store" {
		return fmt.Errorf("restart pass: rehit /run X-Cache = %q, want store", state)
	}
	// A store hit skips the engine entirely, and its X-Timing must say so.
	if err := checkTiming(hdr, false); err != nil {
		return fmt.Errorf("restart pass: store-hit /run: %w", err)
	}
	if !bytes.Equal(cold, warm) {
		return fmt.Errorf("restart pass: rehit body differs from the pre-restart run")
	}
	b, _, err = inst2.post("/jobs", sweep)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(b, &submitted); err != nil {
		return fmt.Errorf("decode job resubmit: %w", err)
	}
	jobDone, err = inst2.waitJob(submitted.ID)
	if err != nil {
		return err
	}
	if p := jobDone.Progress; p == nil || p.CompletedCells != 2 || p.ExecutedCells != 0 {
		return fmt.Errorf("restart pass: resubmitted sweep progress = %+v, want 2 completed / 0 executed", jobDone.Progress)
	}
	stats, err := inst2.stats()
	if err != nil {
		return err
	}
	if stats.Executions != 0 {
		return fmt.Errorf("restart pass: restarted instance executed %d simulations, want 0", stats.Executions)
	}
	if stats.Store == nil || stats.Store.Serves == 0 || stats.Store.Records == 0 {
		return fmt.Errorf("restart pass: store stats = %+v", stats.Store)
	}
	log.Printf("smoke: restart-and-rehit ok (store served %d responses, %d records on disk, 0 executions)",
		stats.Store.Serves, stats.Store.Records)
	if err := inst2.shutdown(); err != nil {
		return fmt.Errorf("restart pass: shutdown: %w", err)
	}
	return nil
}

// runSmokeProof is the provenance self-check behind `make smoke-proof`:
// populate a durable store over HTTP (a /run plus a two-cell /matrix
// sweep), seal it, fetch and verify inclusion proofs, restart on the
// same directory and require the proofs bit-identical, then leave a
// verification kit under dir for cmd/thermproof to check offline:
//
//	dir/data/            the sealed store, verified clean in-process
//	dir/proof.json       the /run body's proof document, verbatim
//	dir/body.json        the body that proof commits to
//	dir/chain-head.txt   the chain head to pin with -chain-head
//	dir/tampered/        a copy with ONE body byte flipped (CRC fixed
//	                     up, so only the Merkle layer can catch it)
//	dir/tampered-key.txt the key whose record was tampered
func runSmokeProof(cfg service.Config, dir string) error {
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	dataDir := filepath.Join(dir, "data")
	openStore := func() (*store.Store, error) {
		return store.Open(dataDir, store.Options{
			Pinned:  service.JournalPinned,
			Version: experiment.EngineVersion,
		})
	}

	// First life: populate and seal.
	st1, err := openStore()
	if err != nil {
		return err
	}
	cfg1 := cfg
	cfg1.Store = st1
	inst, err := startInstance(cfg1)
	if err != nil {
		return err
	}
	defer inst.svc.Close()
	const run = `{"scenario":"sdr-radio","policy":"tb","delta":3,"warmup_s":0.5,"measure_s":1}`
	const sweep = `{"scenarios":["sdr-radio"],"policies":["eb","tb"],"delta":3,"warmup_s":0.5,"measure_s":1}`
	runBody, hdr, err := inst.post("/run", run)
	if err != nil {
		return err
	}
	runKey := hdr.Get("X-Content-Key")
	if len(runKey) != 64 {
		return fmt.Errorf("/run X-Content-Key = %q, want a 64-hex content address", runKey)
	}
	matrixBody, hdr, err := inst.post("/matrix", sweep)
	if err != nil {
		return err
	}
	matrixKey := hdr.Get("X-Content-Key")
	if len(matrixKey) != 64 || matrixKey == runKey {
		return fmt.Errorf("/matrix X-Content-Key = %q (run key %q)", matrixKey, runKey)
	}
	log.Printf("smoke-proof: store populated (/run + 2-cell sweep), keys stamped on both responses")

	// Unsealed records must be refused, not unprovable-silently.
	if code, _, err := inst.getStatus("/proof?key=" + runKey); err != nil || code != http.StatusConflict {
		return fmt.Errorf("pre-seal /proof = %d (err %v), want 409", code, err)
	}
	if _, _, err := inst.post("/seal", ""); err != nil {
		return err
	}
	proofRaw, err := inst.get("/proof?key=" + runKey)
	if err != nil {
		return err
	}
	var runProof provenance.Proof
	if err := json.Unmarshal(proofRaw, &runProof); err != nil {
		return fmt.Errorf("decode /proof: %w", err)
	}
	if err := runProof.VerifyBody(runBody); err != nil {
		return fmt.Errorf("run proof does not verify against the served body: %w", err)
	}
	if runProof.Leaf.Version != experiment.EngineVersion {
		return fmt.Errorf("run proof engine version = %q, want %q", runProof.Leaf.Version, experiment.EngineVersion)
	}
	matrixProofRaw, err := inst.get("/proof?key=" + matrixKey)
	if err != nil {
		return err
	}
	var matrixProof provenance.Proof
	if err := json.Unmarshal(matrixProofRaw, &matrixProof); err != nil {
		return fmt.Errorf("decode matrix /proof: %w", err)
	}
	if err := matrixProof.VerifyBody(matrixBody); err != nil {
		return fmt.Errorf("matrix proof does not verify against the sweep body: %w", err)
	}
	log.Printf("smoke-proof: sealed; both proofs verify (root %s, chain pos %d)", runProof.Root, runProof.ChainPos)

	// Kill-equivalent stop: the HTTP server goes away, the store is
	// never closed. The reopened store must reconcile its manifest and
	// serve bit-identical proofs.
	if err := inst.shutdown(); err != nil {
		return fmt.Errorf("first shutdown: %w", err)
	}
	st2, err := openStore()
	if err != nil {
		return fmt.Errorf("reopen store: %w", err)
	}
	cfg2 := cfg
	cfg2.Store = st2
	inst2, err := startInstance(cfg2)
	if err != nil {
		st2.Close()
		return err
	}
	defer inst2.svc.Close()
	warm, hdr, err := inst2.post("/run", run)
	if err != nil {
		return err
	}
	if state := hdr.Get("X-Cache"); state != "store" {
		return fmt.Errorf("restarted /run X-Cache = %q, want store", state)
	}
	if got := hdr.Get("X-Content-Key"); got != runKey {
		return fmt.Errorf("restarted X-Content-Key = %q, want %q", got, runKey)
	}
	if !bytes.Equal(warm, runBody) {
		return fmt.Errorf("restarted /run body differs from the sealed one")
	}
	proofRaw2, err := inst2.get("/proof?key=" + runKey)
	if err != nil {
		return err
	}
	var runProof2 provenance.Proof
	if err := json.Unmarshal(proofRaw2, &runProof2); err != nil {
		return fmt.Errorf("decode restarted /proof: %w", err)
	}
	if runProof2.Root != runProof.Root || runProof2.Chain != runProof.Chain || runProof2.Index != runProof.Index {
		return fmt.Errorf("restarted proof differs: root %s chain %s, want %s %s",
			runProof2.Root, runProof2.Chain, runProof.Root, runProof.Chain)
	}
	stats, err := inst2.stats()
	if err != nil {
		return err
	}
	if stats.Store == nil || stats.Store.SealedSegments < 1 || stats.Store.TaintedSegments != 0 {
		return fmt.Errorf("restarted store stats = %+v, want sealed segments and no taint", stats.Store)
	}
	chainHead := stats.Store.ChainHead
	if err := inst2.shutdown(); err != nil {
		return fmt.Errorf("second shutdown: %w", err)
	}
	if err := st2.Close(); err != nil {
		return err
	}
	log.Printf("smoke-proof: restart ok (proof bit-identical, chain head %s)", chainHead)

	// Leave the offline-verification kit.
	if err := os.WriteFile(filepath.Join(dir, "proof.json"), proofRaw2, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "body.json"), runBody, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "chain-head.txt"), []byte(chainHead+"\n"), 0o644); err != nil {
		return err
	}
	tamperedDir := filepath.Join(dir, "tampered")
	if err := copyDir(dataDir, tamperedDir); err != nil {
		return err
	}
	// Flip one body byte in the first sealed record and fix up the
	// frame CRC, so nothing but the Merkle layer can notice.
	tamperedKey, err := store.TamperForTest(tamperedDir, 1, 0)
	if err != nil {
		return fmt.Errorf("tamper: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "tampered-key.txt"), []byte(tamperedKey+"\n"), 0o644); err != nil {
		return err
	}

	// In-process cross-check of what thermproof will assert offline:
	// the pristine store verifies, the tampered copy must not.
	if _, err := store.VerifyDir(dataDir); err != nil {
		return fmt.Errorf("pristine store fails verification: %w", err)
	}
	rep, err := store.VerifyDir(tamperedDir)
	if err == nil {
		return fmt.Errorf("tampered store verified clean")
	}
	if len(rep.Bad) == 0 || rep.Bad[0].Key != tamperedKey {
		return fmt.Errorf("tamper not localized to key %s: %v", tamperedKey, err)
	}
	log.Printf("smoke-proof: artifacts under %s (tampered key %s localized in-process)", dir, tamperedKey)
	return nil
}

// copyDir copies a flat directory of regular files (a store data dir:
// segments, sidecars, the manifest).
func copyDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			return err
		}
	}
	return nil
}
