// Command thermservd serves thermal-balancing simulations over
// HTTP/JSON: a long-running job server with a content-addressed result
// cache and request coalescing on top of the deterministic experiment
// engine (see internal/service).
//
// Usage:
//
//	thermservd                       # serve on :8080
//	thermservd -addr 127.0.0.1:0     # ephemeral port (printed on start)
//	thermservd -cache 2048 -job-workers 4 -queue-depth 128
//	thermservd -smoke                # self-check: start on an ephemeral
//	                                 # port, exercise /scenarios and a
//	                                 # cached-vs-fresh /run pair, shut
//	                                 # down cleanly; exit 0/1
//
// Endpoints: GET /scenarios, GET /policies, POST /run, POST /matrix,
// POST/GET /jobs, GET|DELETE /jobs/{id}, GET /stats, GET /healthz.
// The server shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"thermbal/internal/policy"
	"thermbal/internal/scenario"
	"thermbal/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("thermservd: ")

	var (
		addr       = flag.String("addr", ":8080", "listen address (use 127.0.0.1:0 for an ephemeral port)")
		cacheSize  = flag.Int("cache", 0, "result-cache capacity in bodies (default 512)")
		jobWorkers = flag.Int("job-workers", 0, "async job workers (default GOMAXPROCS)")
		queueDepth = flag.Int("queue-depth", 0, "pending-job queue bound (default 64)")
		jobRetain  = flag.Int("job-retention", 0, "finished jobs kept pollable before pruning (default 256)")
		workers    = flag.Int("workers", 0, "experiment worker pool for /matrix sweeps (default GOMAXPROCS)")
		maxSims    = flag.Int("max-sims", 0, "concurrent simulation executions across all endpoints (default 2xGOMAXPROCS)")
		maxSync    = flag.Float64("max-sync", 0, "max simulated seconds a synchronous /run accepts (default 600)")
		smoke      = flag.Bool("smoke", false, "run the self-check against an ephemeral instance and exit")
	)
	flag.Parse()

	cfg := service.Config{
		CacheEntries: *cacheSize,
		JobWorkers:   *jobWorkers,
		QueueDepth:   *queueDepth,
		JobRetention: *jobRetain,
		MaxSims:      *maxSims,
		MaxSyncSimS:  *maxSync,
	}
	cfg.Runner.Workers = *workers

	if *smoke {
		if err := runSmoke(cfg); err != nil {
			log.Fatalf("smoke: FAIL: %v", err)
		}
		log.Print("smoke: PASS")
		return
	}

	svc := service.New(cfg)
	defer svc.Close()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on http://%s", hostURL(ln.Addr()))
	log.Printf("serving %d scenarios x %d policies (GET /scenarios, /policies; POST /run, /matrix, /jobs)",
		len(scenario.Names()), len(policy.Names()))

	httpSrv := &http.Server{Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
}

// hostURL renders a listener address as something curl-able
// (":8080" and unspecified hosts become localhost).
func hostURL(a net.Addr) string {
	s := a.String()
	if host, port, err := net.SplitHostPort(s); err == nil {
		if host == "" || host == "::" || host == "0.0.0.0" {
			return net.JoinHostPort("localhost", port)
		}
	}
	return s
}

// runSmoke is the CI self-check: a real instance on an ephemeral port,
// driven over real TCP — the catalogue endpoint, then a cold /run, a
// cached rerun that must be byte-identical, and the stats counters —
// followed by a clean shutdown.
func runSmoke(cfg service.Config) error {
	svc := service.New(cfg)
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	log.Printf("smoke: serving on %s", base)

	get := func(path string) ([]byte, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: %d: %s", path, resp.StatusCode, b)
		}
		return b, nil
	}
	post := func(path, body string) ([]byte, string, error) {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			return nil, "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, "", err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, "", fmt.Errorf("POST %s: %d: %s", path, resp.StatusCode, b)
		}
		return b, resp.Header.Get("X-Cache"), nil
	}

	b, err := get("/scenarios")
	if err != nil {
		return err
	}
	var scDoc struct {
		Scenarios []scenario.Info `json:"scenarios"`
	}
	if err := json.Unmarshal(b, &scDoc); err != nil {
		return fmt.Errorf("decode /scenarios: %w", err)
	}
	if len(scDoc.Scenarios) == 0 {
		return fmt.Errorf("/scenarios returned an empty catalogue")
	}
	log.Printf("smoke: /scenarios ok (%d scenarios)", len(scDoc.Scenarios))

	const run = `{"scenario":"sdr-radio","policy":"tb","delta":3,"warmup_s":0.5,"measure_s":1}`
	cold, state, err := post("/run", run)
	if err != nil {
		return err
	}
	if state != "miss" {
		return fmt.Errorf("cold /run X-Cache = %q, want miss", state)
	}
	cached, state, err := post("/run", run)
	if err != nil {
		return err
	}
	if state != "hit" {
		return fmt.Errorf("second /run X-Cache = %q, want hit", state)
	}
	if !bytes.Equal(cold, cached) {
		return fmt.Errorf("cached /run body differs from the cold run")
	}
	log.Printf("smoke: /run cold-vs-cached ok (%d bytes, byte-identical)", len(cold))

	b, err = get("/stats")
	if err != nil {
		return err
	}
	var stats service.StatsDoc
	if err := json.Unmarshal(b, &stats); err != nil {
		return fmt.Errorf("decode /stats: %w", err)
	}
	if stats.Executions != 1 || stats.Cache.Hits != 1 || stats.Cache.Misses != 1 {
		return fmt.Errorf("/stats counters = executions %d, hits %d, misses %d; want 1, 1, 1",
			stats.Executions, stats.Cache.Hits, stats.Cache.Misses)
	}
	log.Printf("smoke: /stats ok (executions %d, hits %d, misses %d)", stats.Executions, stats.Cache.Hits, stats.Cache.Misses)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Print("smoke: clean shutdown")
	return nil
}
