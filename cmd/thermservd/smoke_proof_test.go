package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"thermbal/internal/service"
	"thermbal/internal/store"
)

// TestRunSmokeProof drives the -smoke-proof self-check in-process: it
// is the same pass `make smoke-proof` runs before handing the
// verification kit to cmd/thermproof, so the full populate → seal →
// restart → prove cycle is covered by `go test` alone.
func TestRunSmokeProof(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two server lifecycles with real simulations")
	}
	dir := filepath.Join(t.TempDir(), "kit")
	if err := runSmokeProof(service.Config{}, dir); err != nil {
		t.Fatalf("runSmokeProof: %v", err)
	}

	// The kit must be complete for the offline verifier.
	for _, name := range []string{"proof.json", "body.json", "chain-head.txt", "tampered-key.txt"} {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("kit artifact %s: %v", name, err)
		}
		if info.Size() == 0 {
			t.Fatalf("kit artifact %s is empty", name)
		}
	}

	// The clean data dir verifies; the tampered copy must not, and the
	// first bad record must carry the advertised key.
	if rep, err := store.VerifyDir(filepath.Join(dir, "data")); err != nil || len(rep.Bad) != 0 {
		t.Fatalf("kit data dir failed verification: %v (%d bad)", err, len(rep.Bad))
	}
	rep, err := store.VerifyDir(filepath.Join(dir, "tampered"))
	if err == nil || len(rep.Bad) == 0 {
		t.Fatalf("tampered copy verified clean (err %v, %d bad)", err, len(rep.Bad))
	}
	wantKey, readErr := os.ReadFile(filepath.Join(dir, "tampered-key.txt"))
	if readErr != nil {
		t.Fatal(readErr)
	}
	if got := rep.Bad[0].Key; got != strings.TrimSpace(string(wantKey)) {
		t.Fatalf("tampered key localized as %q, kit advertises %q", got, wantKey)
	}
}
