// Command bench2json converts `go test -bench` text output on stdin to
// a JSON document on stdout, so benchmark trajectories can be tracked
// in version control and CI artifacts (`make bench-json`).
//
// Usage:
//
//	go test -bench . -run '^$' . | bench2json > BENCH.json
package main

import (
	"encoding/json"
	"log"
	"os"
	"runtime"
	"time"

	"thermbal/internal/benchparse"
)

// document is the emitted JSON shape.
type document struct {
	Date       string              `json:"date"`
	GoVersion  string              `json:"go_version"`
	GOOS       string              `json:"goos"`
	GOARCH     string              `json:"goarch"`
	Benchmarks []benchparse.Result `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench2json: ")
	results, err := benchparse.Parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no benchmark lines on stdin")
	}
	doc := document{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: results,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
}
