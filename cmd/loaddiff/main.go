// Command loaddiff compares two LOAD_<date>.json documents produced by
// cmd/thermload and fails when the fresh run's latency or refusal
// rates regressed beyond a threshold — the load-trajectory analogue of
// cmd/benchdiff gating BENCH_<date>.json.
//
// Usage:
//
//	loaddiff -base LOAD_2026-08-08.json -new fresh.json
//	loaddiff -base "$(git ls-files 'LOAD_*.json' | paste -sd, -)" \
//	         -new fresh.json -max-regress 0.5
//
// -base accepts one document or a comma/whitespace-separated candidate
// list; the baseline is the candidate with the newest `date` field, so
// the committed trajectory can simply be globbed.
//
// Gates, per endpoint present in both documents:
//
//   - p95 and p99 may grow by at most -max-regress as a fraction of
//     the baseline (with -min-ms noise floor: quantiles below it are
//     never compared — sub-millisecond jitter is not a regression).
//   - the error count must be zero if the baseline's was zero.
//
// Shed/quota counts are reported but never gated: they are policy
// outcomes of the configured quotas and budget, not regressions.
// Exit status 1 means at least one gate failed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"thermbal/internal/loadgen"
)

func load(path string) (*loadgen.Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep, err := loadgen.DecodeReport(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// docDate parses a report's date ("2006-01-02"); unparseable dates
// sort oldest so they never shadow a stamped document.
func docDate(r *loadgen.Report) time.Time {
	t, err := time.Parse("2006-01-02", r.Date)
	if err != nil {
		return time.Time{}
	}
	return t
}

// pickBaseline returns the loadable candidate with the newest date
// (ties keep the later-listed candidate). Unloadable candidates are
// warned about and skipped so one malformed committed point cannot
// break the gate.
func pickBaseline(paths []string) (*loadgen.Report, string, error) {
	var (
		best     *loadgen.Report
		bestPath string
		bestTime time.Time
	)
	for _, path := range paths {
		rep, err := load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loaddiff: skipping baseline candidate: %v\n", err)
			continue
		}
		when := docDate(rep)
		if best == nil || !when.Before(bestTime) {
			best, bestPath, bestTime = rep, path, when
		}
	}
	if best == nil {
		return nil, "", fmt.Errorf("no loadable baseline candidate")
	}
	return best, bestPath, nil
}

func splitBases(spec string) []string {
	return strings.FieldsFunc(spec, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t' || r == '\n'
	})
}

// gateQuantile compares one quantile pair under the fractional budget
// and the noise floor.
func gateQuantile(name, which string, base, fresh, maxRegress, minMs float64) (string, bool) {
	if base < minMs && fresh < minMs {
		return fmt.Sprintf("  %-10s %-4s %8.2f -> %8.2f ms  (below %.1f ms noise floor)", name, which, base, fresh, minMs), false
	}
	delta := 0.0
	if base > 0 {
		delta = (fresh - base) / base
	} else if fresh >= minMs {
		delta = maxRegress + 1 // zero baseline, material fresh latency
	}
	verdict := "ok"
	bad := delta > maxRegress
	if bad {
		verdict = "REGRESSED"
	}
	return fmt.Sprintf("  %-10s %-4s %8.2f -> %8.2f ms  %+6.1f%%  %s", name, which, base, fresh, 100*delta, verdict), bad
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loaddiff: ")
	var (
		baseSpec   = flag.String("base", "", "baseline LOAD json document, or a comma/whitespace-separated candidate list (newest `date` wins)")
		newPath    = flag.String("new", "", "fresh LOAD json document")
		maxRegress = flag.Float64("max-regress", 0.5, "maximum allowed p95/p99 increase as a fraction of the baseline")
		minMs      = flag.Float64("min-ms", 2, "noise floor in ms: quantile pairs both below it are never gated")
	)
	flag.Parse()
	basePaths := splitBases(*baseSpec)
	if len(basePaths) == 0 || *newPath == "" {
		log.Fatal("both -base and -new are required")
	}
	base, basePath, err := pickBaseline(basePaths)
	if err != nil {
		log.Fatal(err)
	}
	fresh, err := load(*newPath)
	if err != nil {
		log.Fatal(err)
	}
	if len(basePaths) > 1 {
		fmt.Printf("baseline %s (%s), newest of %d candidates\n", basePath, base.Date, len(basePaths))
	} else {
		fmt.Printf("baseline %s (%s)\n", basePath, base.Date)
	}
	if base.TargetRPS != fresh.TargetRPS {
		fmt.Printf("note: target rps differs (%g baseline vs %g fresh) — quantiles compared anyway\n",
			base.TargetRPS, fresh.TargetRPS)
	}

	regressed, compared := 0, 0
	for name, freshEp := range fresh.Endpoints {
		baseEp, ok := base.Endpoints[name]
		if !ok {
			fmt.Printf("  %-10s (new endpoint, no baseline)\n", name)
			continue
		}
		compared++
		for _, q := range []struct {
			which       string
			base, fresh float64
		}{
			{"p95", baseEp.Latency.P95Ms, freshEp.Latency.P95Ms},
			{"p99", baseEp.Latency.P99Ms, freshEp.Latency.P99Ms},
		} {
			line, bad := gateQuantile(name, q.which, q.base, q.fresh, *maxRegress, *minMs)
			fmt.Println(line)
			if bad {
				regressed++
			}
		}
		if baseEp.Errors == 0 && freshEp.Errors > 0 {
			fmt.Printf("  %-10s errors  %d -> %d  REGRESSED (baseline was clean)\n", name, baseEp.Errors, freshEp.Errors)
			regressed++
		}
		if freshEp.Shed+freshEp.Quota > 0 {
			fmt.Printf("  %-10s refusals: %d shed, %d quota (policy outcome, not gated)\n", name, freshEp.Shed, freshEp.Quota)
		}
	}
	if compared == 0 {
		log.Fatal("no endpoint present in both documents")
	}
	if regressed > 0 {
		log.Fatalf("%d gate failures across %d endpoints (budget %.0f%%, floor %.1f ms)", regressed, compared, 100**maxRegress, *minMs)
	}
	fmt.Printf("%d endpoints within the %.0f%% budget\n", compared, 100**maxRegress)
}
