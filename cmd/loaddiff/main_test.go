package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeLoad(t *testing.T, dir, name, date string, p95, p99 float64, errors int) string {
	t.Helper()
	path := filepath.Join(dir, name)
	body := fmt.Sprintf(`{
  "load_schema_version": 1,
  "date": %q,
  "target_rps": 50,
  "endpoints": {
    "run": {"count": 100, "errors": %d, "latency": {"count": 100, "p50_ms": 1, "p95_ms": %g, "p99_ms": %g}}
  }
}`, date, errors, p95, p99)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestPickBaselineNewestByDate mirrors benchdiff's same-day rule: the
// candidate with the newest recorded date wins regardless of listing
// order.
func TestPickBaselineNewestByDate(t *testing.T) {
	dir := t.TempDir()
	older := writeLoad(t, dir, "LOAD_2026-08-01.json", "2026-08-01", 10, 20, 0)
	newer := writeLoad(t, dir, "LOAD_2026-08-08.json", "2026-08-08", 10, 20, 0)
	for _, paths := range [][]string{{older, newer}, {newer, older}} {
		_, got, err := pickBaseline(paths)
		if err != nil {
			t.Fatal(err)
		}
		if got != newer {
			t.Errorf("pickBaseline(%v) chose %s, want %s", paths, got, newer)
		}
	}
}

func TestPickBaselineSkipsMalformed(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	good := writeLoad(t, dir, "good.json", "2026-08-08", 10, 20, 0)
	_, got, err := pickBaseline([]string{bad, good})
	if err != nil || got != good {
		t.Errorf("pickBaseline = %s, %v; want the loadable candidate", got, err)
	}
	if _, _, err := pickBaseline([]string{bad}); err == nil {
		t.Error("all-malformed candidate set accepted")
	}
}

func TestGateQuantile(t *testing.T) {
	// Within budget.
	line, bad := gateQuantile("run", "p95", 10, 12, 0.5, 2)
	if bad {
		t.Errorf("20%% growth under a 50%% budget flagged: %s", line)
	}
	// Beyond budget.
	line, bad = gateQuantile("run", "p95", 10, 16, 0.5, 2)
	if !bad || !strings.Contains(line, "REGRESSED") {
		t.Errorf("60%% growth under a 50%% budget passed: %s", line)
	}
	// Both under the noise floor: never gated, whatever the ratio.
	_, bad = gateQuantile("run", "p99", 0.1, 1.9, 0.5, 2)
	if bad {
		t.Error("sub-floor jitter gated")
	}
	// Zero baseline with material fresh latency is a regression.
	_, bad = gateQuantile("run", "p99", 0, 50, 0.5, 2)
	if !bad {
		t.Error("zero-baseline jump to 50ms passed")
	}
}
