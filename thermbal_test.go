package thermbal

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunFacade(t *testing.T) {
	res, err := Run(Config{
		Policy:   ThermalBalance,
		Delta:    3,
		Package:  MobileEmbedded,
		WarmupS:  12.5,
		MeasureS: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PolicyName != "thermal-balance" {
		t.Errorf("policy name = %q", res.PolicyName)
	}
	if res.Migrations == 0 {
		t.Error("no migrations at delta 3")
	}
	if res.PooledStdDev <= 0 {
		t.Error("no deviation measured")
	}
}

func TestRunFacadeRecreation(t *testing.T) {
	res, err := Run(Config{
		Policy:     ThermalBalance,
		Delta:      2,
		Recreation: true,
		WarmupS:    12.5,
		MeasureS:   6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Recreation moves state+code per migration.
	if res.Migrations > 0 && res.MigratedBytes <= float64(res.Migrations)*64*1024 {
		t.Errorf("recreation moved only %g bytes over %d migrations", res.MigratedBytes, res.Migrations)
	}
}

func TestKindStrings(t *testing.T) {
	if EnergyBalance.String() != "energy-balance" ||
		StopGo.String() != "stop&go" ||
		ThermalBalance.String() != "thermal-balance" {
		t.Error("policy kind names wrong")
	}
	if MobileEmbedded.String() != "mobile-embedded" ||
		HighPerformance.String() != "high-performance" {
		t.Error("package kind names wrong")
	}
}

func TestDeltasCopy(t *testing.T) {
	d := Deltas()
	if len(d) != 4 || d[0] != 2 || d[3] != 5 {
		t.Errorf("Deltas = %v", d)
	}
	d[0] = 99
	if Deltas()[0] != 2 {
		t.Error("Deltas returned shared slice")
	}
}

func TestTables(t *testing.T) {
	if !strings.Contains(Table1(), "0.500 W") {
		t.Errorf("Table1:\n%s", Table1())
	}
	t2, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t2, "BPF2") {
		t.Errorf("Table2:\n%s", t2)
	}
}

func TestFigure2Renders(t *testing.T) {
	f2, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f2, "task-recreation") {
		t.Errorf("Figure2:\n%s", f2)
	}
}

func TestRunSummarySchema(t *testing.T) {
	sum, err := RunSummary(Config{
		Policy:   ThermalBalance,
		Delta:    3,
		WarmupS:  0.5,
		MeasureS: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Policy != "thermal-balance" || sum.MeasuredS != 1 {
		t.Errorf("summary header = %q, %g", sum.Policy, sum.MeasuredS)
	}
	if sum.Temperature.PooledStdDevC <= 0 {
		t.Error("no pooled deviation in summary")
	}
	// The summary is a pure view: it must agree with Run's raw result.
	res, err := Run(Config{Policy: ThermalBalance, Delta: 3, WarmupS: 0.5, MeasureS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := Summarize(res); got != sum {
		t.Errorf("Summarize(Run()) = %+v, want %+v (determinism or view mismatch)", got, sum)
	}
	b, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"pooled_stddev_c"`, `"deadline_misses"`, `"per_sec"`, `"total_energy_j"`} {
		if !strings.Contains(string(b), field) {
			t.Errorf("schema JSON missing %s: %s", field, b)
		}
	}
	if SchemaVersion != 1 {
		t.Errorf("SchemaVersion = %d", SchemaVersion)
	}
}

func TestStoreFacade(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Policy: ThermalBalance, Delta: 3, WarmupS: 0.5, MeasureS: 1}
	cold, hit, err := st.RunSummary(cfg)
	if err != nil || hit {
		t.Fatalf("cold RunSummary: hit=%v err=%v", hit, err)
	}
	warm, hit, err := st.RunSummary(cfg)
	if err != nil || !hit {
		t.Fatalf("warm RunSummary: hit=%v err=%v", hit, err)
	}
	if warm != cold {
		t.Errorf("stored summary differs: %+v vs %+v", warm, cold)
	}
	if s := st.Stats(); s.Records != 1 || s.Bytes == 0 {
		t.Errorf("store stats = %+v", s)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// A new process (store handle) over the same directory serves the
	// persisted result without re-running, and spelling the same run
	// through different vocabulary (policy alias via PolicyName) hits
	// the same record.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	again, hit, err := st2.RunSummary(Config{PolicyName: "tb", Delta: 3, WarmupS: 0.5, MeasureS: 1})
	if err != nil || !hit {
		t.Fatalf("reopened RunSummary: hit=%v err=%v", hit, err)
	}
	if again != cold {
		t.Errorf("reopened summary differs: %+v vs %+v", again, cold)
	}
}
