# Tier-1 verification is one command: `make` (or `make check`).

GO ?= go

.PHONY: check build vet test bench bench-thermal clean

check: vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Wall-clock comparison of the serial vs parallel experiment runner.
bench:
	$(GO) test -bench 'BenchmarkSweep(Serial|Parallel)' -run '^$$' -benchtime 3x .

# Integrator stepping cost on the high-performance package.
bench-thermal:
	$(GO) test -bench BenchmarkStep -run '^$$' ./internal/thermal

clean:
	$(GO) clean ./...
