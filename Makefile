# Tier-1 verification is one command: `make` (or `make check`).
# `make check` mirrors CI's gate steps (.github/workflows/ci.yml); CI
# additionally records a bench-json artifact.

GO ?= go
BENCH_DATE := $(shell date -u +%F)
BENCH_OUT ?= BENCH_$(BENCH_DATE).json

.PHONY: check build vet fmt-check lint doclint print-staticcheck-version vulncheck print-govulncheck-version test race cover cover-check serve smoke-serve smoke-proof smoke-load bench bench-smoke bench-thermal bench-json bench-diff load-json load-diff smoke-expm smoke-spec fuzz-smoke clean

check: fmt-check vet lint doclint build race bench-smoke smoke-expm smoke-spec smoke-serve smoke-proof smoke-load fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. CI installs the pinned version; locally
# the target degrades to a skip-with-hint when the binary is absent, so
# `make check` works in offline sandboxes.
STATICCHECK ?= staticcheck
STATICCHECK_VERSION ?= 2025.1

# Single source of truth for the pinned version; CI installs
# `@$(make -s print-staticcheck-version)` so the workflow cannot drift.
print-staticcheck-version:
	@echo $(STATICCHECK_VERSION)

lint:
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	else \
		echo "lint: staticcheck not found; skipping (install: go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

# Known-vulnerability scan over the dependency graph (trivially small
# here — the module is stdlib-only — but the gate keeps it that way).
# Pinned like staticcheck; degrades to a skip-with-hint offline. CI
# runs it warn-only: a new CVE in the toolchain must not block
# unrelated work, only annotate it.
GOVULNCHECK ?= govulncheck
GOVULNCHECK_VERSION ?= v1.1.4

print-govulncheck-version:
	@echo $(GOVULNCHECK_VERSION)

vulncheck:
	@if command -v $(GOVULNCHECK) >/dev/null 2>&1; then \
		$(GOVULNCHECK) ./...; \
	else \
		echo "vulncheck: govulncheck not found; skipping (install: go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION))"; \
	fi

# Documentation gate: the thermbal facade must document every exported
# symbol; every internal and cmd package must carry a package doc
# comment (commands render it as their usage block).
doclint:
	$(GO) run ./cmd/godoclint -exported . -pkgdoc ./internal/... -pkgdoc ./cmd/...

# Fails when any tracked Go file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Coverage profile + per-function summary. cover-check compares the
# total against the floor; CI enforces it as a hard gate on the go.mod
# leg and warn-only on the stable leg (a new toolchain must not turn a
# coverage wobble into a red build). The floor trails the measured
# total by about a point — raise it as coverage grows.
COVER_FLOOR ?= 74.8
COVER_OUT ?= coverage.out
COVER_FLAGS ?=

cover:
	$(GO) test $(COVER_FLAGS) -coverprofile=$(COVER_OUT) ./...
	@$(GO) tool cover -func=$(COVER_OUT) | tail -1

# Reads an existing $(COVER_OUT) (run `make cover` first; CI does).
cover-check:
	@test -f $(COVER_OUT) || { echo "cover-check: $(COVER_OUT) missing; run 'make cover' first"; exit 1; }
	@total=$$($(GO) tool cover -func=$(COVER_OUT) | awk '/^total:/ { gsub("%",""); print $$NF }'); \
	echo "coverage: total $${total}% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage: below the $(COVER_FLOOR)% floor"; exit 1; }

# Long-running simulation server (SERVE_ADDR=127.0.0.1:0 for an
# ephemeral port; ^C shuts it down gracefully).
SERVE_ADDR ?= :8080

serve:
	$(GO) run ./cmd/thermservd -addr $(SERVE_ADDR)

# End-to-end server self-check: thermservd starts on an ephemeral
# port, exercises /scenarios and a cached-vs-fresh /run pair over real
# TCP (bodies byte-identical, X-Timing headers parse and match the
# executed-vs-cached shape), verifies /metrics reconciles with the
# /stats counters, and runs the durable-store restart pass.
smoke-serve:
	$(GO) run ./cmd/thermservd -smoke

# Provenance end to end. thermservd populates a store over HTTP (a
# /run plus a two-cell sweep), seals it, verifies inclusion proofs
# across a kill + restart, and leaves a verification kit (data dir,
# proof.json + the body it commits to, the pinned chain head, and a
# copy with one body byte flipped and the CRC fixed up). thermproof
# then re-verifies everything offline — and MUST reject the tampered
# copy with a nonzero exit naming the tampered record's key.
SMOKE_PROOF_DIR ?= .smoke-proof.tmp

smoke-proof:
	$(GO) run ./cmd/thermservd -smoke-proof $(SMOKE_PROOF_DIR)
	$(GO) run ./cmd/thermproof -data-dir $(SMOKE_PROOF_DIR)/data \
		-chain-head "$$(tr -d '\n' < $(SMOKE_PROOF_DIR)/chain-head.txt)"
	$(GO) run ./cmd/thermproof -proof $(SMOKE_PROOF_DIR)/proof.json -body $(SMOKE_PROOF_DIR)/body.json
	@if $(GO) run ./cmd/thermproof -data-dir $(SMOKE_PROOF_DIR)/tampered >$(SMOKE_PROOF_DIR)/tamper.log 2>&1; then \
		echo "smoke-proof: tampered store verified clean"; exit 1; \
	fi
	@grep -q "$$(tr -d '\n' < $(SMOKE_PROOF_DIR)/tampered-key.txt)" $(SMOKE_PROOF_DIR)/tamper.log || \
		{ echo "smoke-proof: thermproof did not localize the tampered key:"; cat $(SMOKE_PROOF_DIR)/tamper.log; exit 1; }
	@echo "smoke-proof: tamper rejected and localized: $$(head -1 $(SMOKE_PROOF_DIR)/tamper.log)"
	@rm -rf $(SMOKE_PROOF_DIR)

# Load-harness self-check: thermload starts an in-process server on an
# ephemeral port, runs a short fixed-RPS open-loop load against it, and
# fails unless the JSON report parses under its schema gate, the
# latency quantiles are nonzero, the Zipf skew produced cache hits, and
# no request errored or was refused.
smoke-load:
	$(GO) run ./cmd/thermload -self

# Full load-trajectory point: a dated LOAD_<date>.json next to the
# BENCH_<date>.json series. Refuses to overwrite a committed point, so
# a same-day rerun needs an explicit LOAD_OUT.
LOAD_OUT ?= LOAD_$(BENCH_DATE).json

load-json:
	@if git ls-files --error-unmatch $(LOAD_OUT) >/dev/null 2>&1; then \
		echo "load-json: $(LOAD_OUT) is already a committed trajectory point;"; \
		echo "           pass LOAD_OUT=LOAD_$(BENCH_DATE)_2.json (or similar) to add a new one"; \
		exit 1; \
	fi
	$(GO) run ./cmd/thermload -self -out $(LOAD_OUT)
	@echo "wrote $(LOAD_OUT)"

# Compare a fresh load run against the newest committed LOAD_*.json
# (picked by the JSON `date` field, like bench-diff). Set LOAD_NEW to
# an existing report to skip the fresh run.
LOAD_BASE = $$(git ls-files 'LOAD_*.json' | paste -sd, -)

load-diff:
ifdef LOAD_NEW
	$(GO) run ./cmd/loaddiff -base "$(LOAD_BASE)" -new $(LOAD_NEW)
else
	$(GO) run ./cmd/thermload -self -out .load-new.json
	$(GO) run ./cmd/loaddiff -base "$(LOAD_BASE)" -new .load-new.json
	@rm -f .load-new.json
endif

# Wall-clock comparison of the serial vs parallel experiment runner.
bench:
	$(GO) test -bench 'BenchmarkSweep(Serial|Parallel)' -run '^$$' -benchtime 3x .

# One-iteration pass over every benchmark: catches bitrot, not perf.
bench-smoke:
	$(GO) test -bench . -run '^$$' -benchtime 1x ./...

# Integrator stepping cost on the high-performance package.
bench-thermal:
	$(GO) test -bench BenchmarkStep -run '^$$' ./internal/thermal

# End-to-end exercise of the exact matrix-exponential scheme: a paper
# scenario plus a tiled manycore die through the full CLI with
# -integrator expm, and the zero-allocation hot-loop assertions run
# without -race (race instrumentation allocates, so `make race` skips
# them).
smoke-expm:
	$(GO) run ./cmd/thermsim -scenario sdr-radio -integrator expm -warmup 1 -measure 2
	$(GO) run ./cmd/thermsim -scenario manycore-64 -integrator expm -warmup 1 -measure 1
	$(GO) test -run 'ZeroAllocs' ./internal/thermal

# Declarative-spec round trip through the real CLI: export a builtin
# as a spec, run it back through -scenario-file, and require the run
# document — content address included — byte-identical to the named
# run's. This is the end-to-end form of the coalescing guarantee: both
# spellings of one workload share one key.
smoke-spec:
	$(GO) run ./cmd/thermsim -scenario sdr-radio -dump-spec > .spec.tmp.json
	$(GO) run ./cmd/thermsim -scenario-file .spec.tmp.json -policy tb -delta 3 -warmup 0.5 -measure 1 -json > .spec-run-a.json
	$(GO) run ./cmd/thermsim -scenario sdr-radio -policy tb -delta 3 -warmup 0.5 -measure 1 -json > .spec-run-b.json
	cmp .spec-run-a.json .spec-run-b.json
	@rm -f .spec.tmp.json .spec-run-a.json .spec-run-b.json
	@echo "smoke-spec: inline-spec run is byte-identical to the named run"

# 20-second coverage-guided fuzz pass over the spec validator: no
# panics, stable accept/reject verdicts, byte-stable round trips.
fuzz-smoke:
	$(GO) test ./internal/scenario -run '^$$' -fuzz '^FuzzSpecValidate$$' -fuzztime 20s

# Machine-readable ns/op for the Sweep and Step benchmarks, so the perf
# trajectory is tracked commit over commit. Each bench run is a separate
# recipe line so a failure aborts the target instead of being masked by
# the pipeline's exit status.
bench-json:
	@if git ls-files --error-unmatch $(BENCH_OUT) >/dev/null 2>&1; then \
		echo "bench-json: $(BENCH_OUT) is already a committed trajectory point;"; \
		echo "            pass BENCH_OUT=BENCH_$(BENCH_DATE)_2.json (or similar) to add a new one"; \
		exit 1; \
	fi
	$(GO) test -bench 'BenchmarkSweep(Serial|SerialExpm|Parallel)' -run '^$$' -benchtime 1x -benchmem . > .bench.tmp
	$(GO) test -bench BenchmarkStep -run '^$$' -benchtime 1x -benchmem ./internal/thermal >> .bench.tmp
	$(GO) run ./cmd/bench2json < .bench.tmp > $(BENCH_OUT)
	@rm -f .bench.tmp
	@echo "wrote $(BENCH_OUT)"

# Compare Sweep-benchmark numbers against the latest committed
# trajectory point; fails when any Sweep benchmark is >15% slower.
# Set BENCH_NEW to an existing bench2json document (CI reuses the
# bench-json artifact it just produced) to skip the fresh run.
# Every *committed* trajectory point is offered as a baseline
# candidate and benchdiff picks the newest by the JSON `date` field —
# not by filename — so a same-day `_2`-suffixed point is never
# shadowed, and a BENCH_<date>.json freshly written by `make
# bench-json` cannot become its own baseline.
BENCH_BASE = $$(git ls-files 'BENCH_*.json' | paste -sd, -)

bench-diff:
ifdef BENCH_NEW
	$(GO) run ./cmd/benchdiff -base "$(BENCH_BASE)" -new $(BENCH_NEW) -match 'BenchmarkSweep' -max-regress 0.15
else
	$(GO) test -bench 'BenchmarkSweep(Serial|SerialExpm|Parallel)' -run '^$$' -benchtime 3x -benchmem . > .bench.tmp
	$(GO) run ./cmd/bench2json < .bench.tmp > .bench-new.json
	@rm -f .bench.tmp
	$(GO) run ./cmd/benchdiff -base "$(BENCH_BASE)" -new .bench-new.json -match 'BenchmarkSweep' -max-regress 0.15
	@rm -f .bench-new.json
endif

# Removes everything .gitignore names: bench intermediates, CI's
# bench/coverage outputs, and stray compiled test binaries
# (`go test -c` artifacts like thermbal.test).
clean:
	@rm -f .bench.tmp .bench-new.json bench-ci.json coverage*.out .spec.tmp.json .spec-run-a.json .spec-run-b.json .load-new.json load-ci.json
	@rm -rf .smoke-proof.tmp
	@find . -name '*.test' -type f -delete
	$(GO) clean ./...
