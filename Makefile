# Tier-1 verification is one command: `make` (or `make check`).
# `make check` mirrors CI's gate steps (.github/workflows/ci.yml); CI
# additionally records a bench-json artifact.

GO ?= go
BENCH_DATE := $(shell date -u +%F)
BENCH_OUT ?= BENCH_$(BENCH_DATE).json

.PHONY: check build vet fmt-check test race bench bench-smoke bench-thermal bench-json clean

check: fmt-check vet build race bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails when any tracked Go file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Wall-clock comparison of the serial vs parallel experiment runner.
bench:
	$(GO) test -bench 'BenchmarkSweep(Serial|Parallel)' -run '^$$' -benchtime 3x .

# One-iteration pass over every benchmark: catches bitrot, not perf.
bench-smoke:
	$(GO) test -bench . -run '^$$' -benchtime 1x ./...

# Integrator stepping cost on the high-performance package.
bench-thermal:
	$(GO) test -bench BenchmarkStep -run '^$$' ./internal/thermal

# Machine-readable ns/op for the Sweep and Step benchmarks, so the perf
# trajectory is tracked commit over commit. Each bench run is a separate
# recipe line so a failure aborts the target instead of being masked by
# the pipeline's exit status.
bench-json:
	$(GO) test -bench 'BenchmarkSweep(Serial|Parallel)' -run '^$$' -benchtime 1x . > .bench.tmp
	$(GO) test -bench BenchmarkStep -run '^$$' -benchtime 1x ./internal/thermal >> .bench.tmp
	$(GO) run ./cmd/bench2json < .bench.tmp > $(BENCH_OUT)
	@rm -f .bench.tmp
	@echo "wrote $(BENCH_OUT)"

clean:
	@rm -f .bench.tmp
	$(GO) clean ./...
