// custom_policy shows how to plug a user-defined thermal policy into the
// emulation framework: it implements a naive "greedy" balancer that
// always moves the largest task from the hottest to the coolest core —
// without the paper's candidate conditions, cost function or rate
// limiting — and compares it against the paper's policy. The greedy
// variant migrates far more often for no additional thermal benefit,
// which is exactly why the paper bounds migration costs.
//
//	go run ./examples/custom_policy
package main

import (
	"fmt"
	"log"

	"thermbal/internal/core"
	"thermbal/internal/mpsoc"
	"thermbal/internal/policy"
	"thermbal/internal/sim"
	"thermbal/internal/stream"
	"thermbal/internal/thermal"
)

// greedy is a deliberately naive thermal balancer.
type greedy struct {
	delta float64
}

// Name implements policy.Policy.
func (g *greedy) Name() string { return "greedy" }

// Decide implements policy.Policy: hottest core sheds its biggest task
// to the coolest core whenever the spread exceeds the threshold.
func (g *greedy) Decide(s *policy.Snapshot) []policy.Action {
	if s.MigrationsPending > 0 {
		return nil
	}
	hot, cold := 0, 0
	for c := 1; c < s.NumCores(); c++ {
		if s.Temp[c] > s.Temp[hot] {
			hot = c
		}
		if s.Temp[c] < s.Temp[cold] {
			cold = c
		}
	}
	if s.Temp[hot]-s.Temp[cold] < g.delta || hot == cold {
		return nil
	}
	best := -1
	for _, tv := range s.TasksOn(hot) {
		if tv.Migrating {
			continue
		}
		if best < 0 || tv.FSE > s.Tasks[best].FSE {
			best = tv.Index
		}
	}
	if best < 0 {
		return nil
	}
	return []policy.Action{policy.Migrate{Task: best, Dst: cold}}
}

func run(pol policy.Policy) sim.Result {
	graph := stream.MustBuildSDR(stream.SDRConfig{})
	plat, err := mpsoc.New(mpsoc.Config{Package: thermal.MobileEmbedded()})
	if err != nil {
		log.Fatal(err)
	}
	engine, err := sim.New(sim.Config{PolicyStartS: 12.5, MeasureStartS: 12.5}, plat, graph, pol)
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Run(42.5); err != nil {
		log.Fatal(err)
	}
	return engine.Summarize()
}

func main() {
	log.SetFlags(0)
	paper := run(core.New(core.Params{Delta: 3}))
	naive := run(&greedy{delta: 3})

	fmt.Println("Custom policy vs the paper's thermal balancer (±3 °C, 30 s)")
	fmt.Println()
	fmt.Printf("%-24s %12s %12s\n", "", "paper", "greedy")
	fmt.Printf("%-24s %12.3f %12.3f\n", "temp std dev [°C]", paper.PooledStdDev, naive.PooledStdDev)
	fmt.Printf("%-24s %12d %12d\n", "deadline misses", paper.DeadlineMisses, naive.DeadlineMisses)
	fmt.Printf("%-24s %12d %12d\n", "migrations", paper.Migrations, naive.Migrations)
	fmt.Printf("%-24s %12.1f %12.1f\n", "migrated KB/s", paper.BytesPerSec/1024, naive.BytesPerSec/1024)
	fmt.Println()
	if naive.Migrations > paper.Migrations {
		fmt.Printf("The greedy policy needed %.1fx the migrations (and bus traffic) of the\n",
			float64(naive.Migrations)/float64(max(paper.Migrations, 1)))
		fmt.Println("paper's policy — the candidate conditions and Eq. 1 cost bound pay off.")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
