// thermal_model uses the RC thermal substrate directly: it builds a
// custom 4-core floorplan, solves the steady state for an unbalanced
// power map, then watches the transient after the hot spot moves —
// the experiment an architect would run before trusting any policy
// results. It also demonstrates the two package presets.
//
//	go run ./examples/thermal_model
package main

import (
	"fmt"
	"log"

	"thermbal/internal/floorplan"
	"thermbal/internal/thermal"
)

func main() {
	log.SetFlags(0)

	// A 4-core variant of the streaming MPSoC floorplan.
	fp := floorplan.StreamingMPSoC(4)
	fmt.Printf("floorplan: %d blocks, %d adjacencies, die %.1f x %.1f mm\n",
		len(fp.Blocks), len(fp.Adjacencies), dieMM(fp, true), dieMM(fp, false))

	model, err := thermal.NewModel(fp, thermal.MobileEmbedded())
	if err != nil {
		log.Fatal(err)
	}

	// Unbalanced power: core 1 hot, the rest nearly idle.
	power := make([]float64, len(fp.Blocks))
	setCorePower(fp, power, 0, 0.40)
	for c := 1; c < 4; c++ {
		setCorePower(fp, power, c, 0.06)
	}

	if err := model.Settle(power); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsteady state with core1 hot:")
	printCores(model, 4)

	// Move the hot spot to core 4 and watch the transient.
	setCorePower(fp, power, 0, 0.06)
	setCorePower(fp, power, 3, 0.40)
	fmt.Println("\ntransient after moving the load to core4 (mobile package):")
	for _, dt := range []float64{0.1, 0.5, 1, 2, 4, 8} {
		if err := model.Step(dt, power); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  t+%4.1fs:", cum(dt))
		for c := 0; c < 4; c++ {
			fmt.Printf("  core%d %6.2f", c+1, model.CoreTemp(c))
		}
		fmt.Println()
	}

	// The high-performance package reaches the same steady state 6x
	// faster.
	hp, err := thermal.NewModel(fp, thermal.HighPerformance())
	if err != nil {
		log.Fatal(err)
	}
	if err := hp.Step(2.0, power); err != nil { // 2 s ≈ 12 s of mobile time
		log.Fatal(err)
	}
	fmt.Println("\nhigh-performance package after only 2 s from ambient:")
	printCores(hp, 4)
	fmt.Printf("\nspeed ratio between packages: %.1fx\n",
		thermal.HighPerformance().SpeedupVs(thermal.MobileEmbedded()))
}

var elapsed float64

func cum(dt float64) float64 {
	elapsed += dt
	return elapsed
}

func setCorePower(fp *floorplan.Floorplan, p []float64, coreID int, watts float64) {
	for _, bi := range fp.BlocksOfCore(coreID) {
		switch fp.Blocks[bi].Kind {
		case floorplan.KindCore:
			p[bi] = watts
		case floorplan.KindICache:
			p[bi] = watts * 0.02
		case floorplan.KindDCache:
			p[bi] = watts * 0.07
		}
	}
}

func printCores(m *thermal.Model, n int) {
	for c := 0; c < n; c++ {
		fmt.Printf("  core%d: %6.2f °C\n", c+1, m.CoreTemp(c))
	}
}

func dieMM(fp *floorplan.Floorplan, width bool) float64 {
	_, _, w, h := fp.DieExtent()
	if width {
		return w * 1e3
	}
	return h * 1e3
}
