// sdr_radio drives the full Software-Defined FM Radio experiment at the
// substrate level: it assembles the platform and streaming graph by
// hand, runs warm-up plus a balanced phase, exports the temperature
// timeline as CSV, and dumps per-queue and per-task statistics — the
// kind of inspection the paper's PowerPC statistics sniffers provided.
//
//	go run ./examples/sdr_radio            # report to stdout
//	go run ./examples/sdr_radio -csv t.csv # plus timeline export
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"thermbal/internal/core"
	"thermbal/internal/mpsoc"
	"thermbal/internal/sim"
	"thermbal/internal/stream"
	"thermbal/internal/thermal"
)

func main() {
	log.SetFlags(0)
	csvPath := flag.String("csv", "", "write the temperature/frequency timeline to this CSV file")
	delta := flag.Float64("delta", 3, "balancing threshold (°C)")
	flag.Parse()

	// The SDR pipeline of the paper's Figure 6 with Table 2 loads:
	// LPF -> DEMOD -> {BPF1, BPF2, BPF3} -> SUM, 50 frames/s.
	graph := stream.MustBuildSDR(stream.SDRConfig{})

	// The 3-core MPSoC with the mobile-embedded thermal package.
	plat, err := mpsoc.New(mpsoc.Config{Package: thermal.MobileEmbedded()})
	if err != nil {
		log.Fatal(err)
	}

	balancer := core.New(core.Params{Delta: *delta})
	engine, err := sim.New(sim.Config{
		PolicyStartS:  12.5, // the paper's first execution phase
		MeasureStartS: 12.5,
		RecordTrace:   true,
	}, plat, graph, balancer)
	if err != nil {
		log.Fatal(err)
	}
	engine.SetOvershootDelta(*delta)

	if err := engine.Run(42.5); err != nil {
		log.Fatal(err)
	}
	res := engine.Summarize()

	fmt.Printf("SDR radio, thermal balancing at ±%.0f °C (%.0f s measured)\n\n", *delta, res.MeasuredS)
	fmt.Printf("temperature: pooled std %.3f °C, gradient %.2f °C, max %.2f °C\n",
		res.PooledStdDev, res.MeanGradient, res.MaxTemp)
	fmt.Printf("QoS: %d misses over %d deadlines (%.2f%%)\n",
		res.DeadlineMisses, res.DeadlineMisses+res.FramesConsumed, res.MissRatePct)
	fmt.Printf("migrations: %d (%.2f/s), %.0f KB moved, mean freeze %.0f ms\n\n",
		res.Migrations, res.MigrationsPerSec, res.MigratedBytes/1024, res.MeanFreezeS*1e3)

	fmt.Println("per-task statistics:")
	for _, name := range stream.SDRTaskNames {
		ti, _ := graph.TaskIndex(name)
		t := graph.Task(ti)
		fmt.Printf("  %-6s core%d  %6d frames  %2d migrations\n",
			t.Name, t.Core+1, t.FramesCompleted, t.Migrations)
	}

	fmt.Println("\nper-queue statistics:")
	for qi := 0; qi < graph.NumQueues(); qi++ {
		s := graph.Queue(qi).Stats()
		fmt.Printf("  %-14s cap %2d  mean level %5.2f  max %2d  overruns %d\n",
			s.Name, s.Cap, s.MeanLevel, s.MaxLevel, s.Overruns)
	}

	migr := engine.Migrations().Stats()
	fmt.Println("\nmigration breakdown:")
	for _, name := range stream.SDRTaskNames {
		if n := migr.PerTask[name]; n > 0 {
			fmt.Printf("  %-6s moved %d times\n", name, n)
		}
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := engine.Recorder().WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntimeline written to %s (%d samples)\n", *csvPath, len(engine.Recorder().Samples()))
	}
}
