// service is a client for the thermservd simulation server: discover
// the catalogue, run one simulation twice to show the content-addressed
// cache (the second response is served from the LRU, byte-identical to
// the cold run), fire concurrent identical requests to show coalescing,
// and read the /stats counters.
//
// Start a server, then point the client at it:
//
//	go run ./cmd/thermservd -addr 127.0.0.1:8080 &
//	go run ./examples/service -addr 127.0.0.1:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"sync"
)

// The wire shapes, mirroring the server's versioned schema (see
// internal/service and the README's "Serving simulations" section).
type runRequest struct {
	Scenario string  `json:"scenario,omitempty"`
	Policy   string  `json:"policy,omitempty"`
	Delta    float64 `json:"delta,omitempty"`
	WarmupS  float64 `json:"warmup_s,omitempty"`
	MeasureS float64 `json:"measure_s,omitempty"`
}

type runDoc struct {
	SchemaVersion int    `json:"schema_version"`
	Key           string `json:"key"`
	Result        struct {
		Policy      string `json:"policy"`
		Temperature struct {
			PooledStdDevC float64 `json:"pooled_stddev_c"`
		} `json:"temperature"`
		QoS struct {
			DeadlineMisses int64 `json:"deadline_misses"`
		} `json:"qos"`
		Migration struct {
			PerSec float64 `json:"per_sec"`
		} `json:"migration"`
	} `json:"result"`
}

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "127.0.0.1:8080", "thermservd address")
	flag.Parse()
	base := "http://" + *addr

	// Catalogue discovery.
	var catalogue struct {
		Scenarios []struct {
			Name     string `json:"name"`
			Topology string `json:"topology"`
		} `json:"scenarios"`
	}
	mustGet(base+"/scenarios", &catalogue)
	fmt.Printf("%d scenarios served, e.g. %s (%s)\n",
		len(catalogue.Scenarios), catalogue.Scenarios[0].Name, catalogue.Scenarios[0].Topology)

	// A cold run, then the same request again: the second response
	// comes from the content-addressed cache, byte-identical.
	req, _ := json.Marshal(runRequest{Policy: "tb", Delta: 3, WarmupS: 2, MeasureS: 5})
	cold, state1 := post(base+"/run", req)
	cached, state2 := post(base+"/run", req)
	var doc runDoc
	if err := json.Unmarshal(cold, &doc); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run %s: std %.3f °C, %d misses, %.2f migrations/s\n",
		doc.Result.Policy, doc.Result.Temperature.PooledStdDevC,
		doc.Result.QoS.DeadlineMisses, doc.Result.Migration.PerSec)
	fmt.Printf("cache: %s then %s, byte-identical=%v, key=%s…\n",
		state1, state2, bytes.Equal(cold, cached), doc.Key[:12])

	// Concurrent identical requests coalesce onto one execution.
	other, _ := json.Marshal(runRequest{Policy: "stop-go", Delta: 4, WarmupS: 2, MeasureS: 5})
	var wg sync.WaitGroup
	states := make([]string, 8)
	for i := range states {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, states[i] = post(base+"/run", other)
		}(i)
	}
	wg.Wait()
	fmt.Printf("8 concurrent identical runs: %s\n", strings.Join(states, " "))

	var stats struct {
		Executions int64 `json:"executions"`
		Coalesced  int64 `json:"coalesced"`
		Cache      struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
	}
	mustGet(base+"/stats", &stats)
	fmt.Printf("stats: %d executions, %d coalesced, %d hits / %d misses\n",
		stats.Executions, stats.Coalesced, stats.Cache.Hits, stats.Cache.Misses)
}

func mustGet(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
}

func post(url string, body []byte) ([]byte, string) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: %d: %s", url, resp.StatusCode, b)
	}
	return b, resp.Header.Get("X-Cache")
}
