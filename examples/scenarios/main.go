// scenarios shows the scenario and policy registries: enumerate the
// catalogue, instantiate a synthetic scenario by name, and run a
// head-to-head comparison across registered policies — the same
// machinery behind `thermsim -list` and `thermsim -matrix`.
//
//	go run ./examples/scenarios
package main

import (
	"context"
	"fmt"
	"log"

	_ "thermbal/internal/core" // register the thermal-balance policy
	"thermbal/internal/experiment"
	"thermbal/internal/policy"
	"thermbal/internal/scenario"
)

func main() {
	log.SetFlags(0)

	fmt.Println("Registered scenarios:")
	for _, s := range scenario.All() {
		fmt.Printf("  %-14s %2d cores, %2d tasks  %s\n", s.Name, s.Cores, s.Tasks, s.Topology)
	}
	fmt.Printf("\nRegistered policies: %v\n\n", policy.Names())

	// Head-to-head on a deep pipeline: every stage sits on the critical
	// path, so migration freezes are maximally visible.
	cells, err := experiment.MatrixWith(context.Background(), experiment.Options{},
		experiment.MatrixConfig{
			Scenarios: []string{"pipeline-d8", "bursty-sdr"},
			Policies:  []string{"energy-balance", "thermal-balance"},
			WarmupS:   5,
			MeasureS:  15,
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiment.FormatMatrix(cells))
}
