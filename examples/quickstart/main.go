// Quickstart: run the paper's headline experiment through the public
// facade — the SDR benchmark on the 3-core MPSoC, thermal balancing at
// the ±3 °C operating threshold — and compare it with the
// energy-balanced baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"thermbal"
)

func main() {
	log.SetFlags(0)

	baseline, err := thermbal.Run(thermbal.Config{
		Policy:   thermbal.EnergyBalance,
		Package:  thermbal.MobileEmbedded,
		MeasureS: 20,
	})
	if err != nil {
		log.Fatal(err)
	}

	balanced, err := thermbal.Run(thermbal.Config{
		Policy:   thermbal.ThermalBalance,
		Delta:    3, // the paper's operating threshold
		Package:  thermbal.MobileEmbedded,
		MeasureS: 20,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Software-Defined Radio on the 3-core streaming MPSoC (20 s window)")
	fmt.Println()
	fmt.Printf("%-22s %14s %14s\n", "", "energy-balance", "thermal-balance")
	fmt.Printf("%-22s %14.3f %14.3f\n", "temp std dev [°C]", baseline.PooledStdDev, balanced.PooledStdDev)
	fmt.Printf("%-22s %14.2f %14.2f\n", "mean gradient [°C]", baseline.MeanGradient, balanced.MeanGradient)
	fmt.Printf("%-22s %14.2f %14.2f\n", "max temperature [°C]", baseline.MaxTemp, balanced.MaxTemp)
	fmt.Printf("%-22s %14d %14d\n", "deadline misses", baseline.DeadlineMisses, balanced.DeadlineMisses)
	fmt.Printf("%-22s %14d %14d\n", "migrations", baseline.Migrations, balanced.Migrations)
	fmt.Printf("%-22s %14.1f %14.1f\n", "migrated KB/s", baseline.BytesPerSec/1024, balanced.BytesPerSec/1024)
	fmt.Println()
	fmt.Printf("Thermal balancing cut the temperature deviation by %.0f%% with zero QoS cost.\n",
		100*(1-balanced.PooledStdDev/baseline.PooledStdDev))
}
