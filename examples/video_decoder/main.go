// video_decoder runs the second streaming benchmark — a software video
// decoder pipeline (VLD → IQ → IDCT×2 → MC → OUT at 25 fps) — under the
// three policies and prints the comparison, demonstrating that the
// thermal balancer generalises beyond the paper's SDR workload.
//
//	go run ./examples/video_decoder
package main

import (
	"fmt"
	"log"

	"thermbal/internal/core"
	"thermbal/internal/mpsoc"
	"thermbal/internal/policy"
	"thermbal/internal/sim"
	"thermbal/internal/stream"
	"thermbal/internal/thermal"
)

func run(pol policy.Policy) sim.Result {
	g, err := stream.BuildVideo(stream.SDRConfig{})
	if err != nil {
		log.Fatal(err)
	}
	plat, err := mpsoc.New(mpsoc.Config{Package: thermal.MobileEmbedded()})
	if err != nil {
		log.Fatal(err)
	}
	e, err := sim.New(sim.Config{PolicyStartS: 12.5, MeasureStartS: 12.5}, plat, g, pol)
	if err != nil {
		log.Fatal(err)
	}
	if err := e.Run(42.5); err != nil {
		log.Fatal(err)
	}
	return e.Summarize()
}

func main() {
	log.SetFlags(0)
	results := []sim.Result{
		run(policy.EnergyBalance{}),
		run(policy.NewStopGo(3)),
		run(core.New(core.Params{Delta: 3})),
	}

	fmt.Println("Video decoder pipeline (25 fps) on the 3-core MPSoC, 30 s window")
	fmt.Println()
	fmt.Printf("%-18s %10s %10s %10s %8s\n", "policy", "std[°C]", "grad[°C]", "misses", "migr")
	for _, r := range results {
		fmt.Printf("%-18s %10.3f %10.2f %10d %8d\n",
			r.PolicyName, r.PooledStdDev, r.MeanGradient, r.DeadlineMisses, r.Migrations)
	}
	fmt.Println()
	fmt.Println("The balancing policy carries over: lower deviation than the static")
	fmt.Println("mapping with bounded migration cost, on a workload the paper never ran.")
}
