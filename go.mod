module thermbal

go 1.24
