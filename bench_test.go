package thermbal

import (
	"context"
	"runtime"
	"strings"
	"testing"

	"thermbal/internal/experiment"
	"thermbal/internal/thermal"
)

// The benchmarks below regenerate, one per table/figure, every result of
// the paper's evaluation section. `go test -bench=. -benchmem` prints
// the headline metric of each experiment via b.ReportMetric, so the full
// evaluation is reproduced by the standard benchmark invocation.

// BenchmarkTable1PowerModel regenerates the component power table.
func BenchmarkTable1PowerModel(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiment.FormatTable1()
	}
	if !strings.Contains(out, "RISC32-streaming") {
		b.Fatal("table 1 malformed")
	}
}

// BenchmarkTable2Mapping regenerates the static energy-balanced mapping.
func BenchmarkTable2Mapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFig2MigrationCost regenerates the migration cost curves for
// task-replication and task-recreation. Reported metrics: the cost in
// Mcycles for a 64 KB task under each mechanism.
func BenchmarkFig2MigrationCost(b *testing.B) {
	var rows []experiment.Fig2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.Fig2(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.TaskSizeKB == 64 {
			b.ReportMetric(r.Replication/1e6, "Mcycles-repl-64KB")
			b.ReportMetric(r.Recreation/1e6, "Mcycles-recr-64KB")
		}
	}
}

// sweep runs the full three-policy threshold sweep for one package.
func sweep(b *testing.B, pkg experiment.PackageSel) []experiment.SweepPoint {
	b.Helper()
	var points []experiment.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiment.Sweep(pkg, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	return points
}

func metricAt(points []experiment.SweepPoint, pol experiment.PolicySel, delta float64,
	f func(experiment.SweepPoint) float64) float64 {
	for _, p := range points {
		if p.Policy == pol && p.Delta == delta {
			return f(p)
		}
	}
	return -1
}

// BenchmarkFig7StdDevMobile regenerates Figure 7: temperature standard
// deviation vs threshold, mobile package. Reported metrics: pooled std
// dev at the paper's ±3 °C operating point for the three policies.
func BenchmarkFig7StdDevMobile(b *testing.B) {
	points := sweep(b, experiment.Mobile)
	std := func(p experiment.SweepPoint) float64 { return p.Result.PooledStdDev }
	b.ReportMetric(metricAt(points, experiment.ThermalBalance, 3, std), "std-TB-d3")
	b.ReportMetric(metricAt(points, experiment.StopGo, 3, std), "std-SG-d3")
	b.ReportMetric(metricAt(points, experiment.EnergyBalance, 3, std), "std-EB-d3")
}

// BenchmarkFig8MissesMobile regenerates Figure 8: deadline misses vs
// threshold, mobile package.
func BenchmarkFig8MissesMobile(b *testing.B) {
	points := sweep(b, experiment.Mobile)
	miss := func(p experiment.SweepPoint) float64 { return float64(p.Result.DeadlineMisses) }
	b.ReportMetric(metricAt(points, experiment.ThermalBalance, 2, miss), "miss-TB-d2")
	b.ReportMetric(metricAt(points, experiment.ThermalBalance, 3, miss), "miss-TB-d3")
	b.ReportMetric(metricAt(points, experiment.StopGo, 3, miss), "miss-SG-d3")
}

// BenchmarkFig9StdDevHighPerf regenerates Figure 9: temperature standard
// deviation vs threshold, high-performance package.
func BenchmarkFig9StdDevHighPerf(b *testing.B) {
	points := sweep(b, experiment.HighPerf)
	std := func(p experiment.SweepPoint) float64 { return p.Result.PooledStdDev }
	spatial := func(p experiment.SweepPoint) float64 { return p.Result.SpatialStdDev }
	b.ReportMetric(metricAt(points, experiment.ThermalBalance, 3, std), "std-TB-d3")
	b.ReportMetric(metricAt(points, experiment.StopGo, 3, std), "std-SG-d3")
	b.ReportMetric(metricAt(points, experiment.EnergyBalance, 3, std), "std-EB-d3")
	b.ReportMetric(metricAt(points, experiment.ThermalBalance, 3, spatial), "spatial-TB-d3")
	b.ReportMetric(metricAt(points, experiment.StopGo, 3, spatial), "spatial-SG-d3")
}

// BenchmarkFig10MissesHighPerf regenerates Figure 10: deadline misses vs
// threshold, high-performance package.
func BenchmarkFig10MissesHighPerf(b *testing.B) {
	points := sweep(b, experiment.HighPerf)
	miss := func(p experiment.SweepPoint) float64 { return float64(p.Result.DeadlineMisses) }
	b.ReportMetric(metricAt(points, experiment.ThermalBalance, 2, miss), "miss-TB-d2")
	b.ReportMetric(metricAt(points, experiment.ThermalBalance, 5, miss), "miss-TB-d5")
	b.ReportMetric(metricAt(points, experiment.StopGo, 3, miss), "miss-SG-d3")
}

// BenchmarkFig11MigrationRate regenerates Figure 11: migrations per
// second vs threshold for both packages. Reported metrics: rates at the
// operating point plus the KB/s the paper quotes (~192 KB/s at 3/s).
func BenchmarkFig11MigrationRate(b *testing.B) {
	var mob, hp []experiment.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		mob, err = experiment.Sweep(experiment.Mobile, nil)
		if err != nil {
			b.Fatal(err)
		}
		hp, err = experiment.Sweep(experiment.HighPerf, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	pts := experiment.Fig11(mob, hp, nil)
	for _, p := range pts {
		if p.Delta != 3 {
			continue
		}
		if p.Package == experiment.Mobile {
			b.ReportMetric(p.PerSec, "mobile-mig/s-d3")
		} else {
			b.ReportMetric(p.PerSec, "hp-mig/s-d3")
			b.ReportMetric(p.KBps, "hp-KB/s-d3")
		}
	}
}

// benchSweepWorkers runs a reduced threshold sweep (both packages,
// thermal-balance at every threshold, short windows) across the given
// worker count — the wall-clock comparison for the parallel Runner.
func benchSweepWorkers(b *testing.B, workers int, th thermal.Config) {
	b.Helper()
	var cfgs []experiment.RunConfig
	for _, pkg := range []experiment.PackageSel{experiment.Mobile, experiment.HighPerf} {
		for _, d := range experiment.Deltas {
			cfgs = append(cfgs, experiment.RunConfig{
				Policy: experiment.ThermalBalance, Delta: d, Package: pkg,
				WarmupS: 2, MeasureS: 3, Thermal: th,
			})
		}
	}
	r := experiment.Runner{Workers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := experiment.RunAll(context.Background(), r, cfgs)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(cfgs) {
			b.Fatalf("got %d results", len(results))
		}
	}
}

// BenchmarkSweepSerial is the pre-refactor behavior: one run at a time.
func BenchmarkSweepSerial(b *testing.B) { benchSweepWorkers(b, 1, thermal.Config{}) }

// BenchmarkSweepSerialExpm is the same sweep under the exact
// matrix-exponential scheme: memoized dense propagators replace the
// Euler substep loop and the engine batches span accounting exactly.
func BenchmarkSweepSerialExpm(b *testing.B) {
	benchSweepWorkers(b, 1, thermal.Config{Scheme: thermal.Expm})
}

// BenchmarkSweepParallel spreads the same runs over GOMAXPROCS workers;
// the wall-clock ratio to BenchmarkSweepSerial is the Runner's speedup.
func BenchmarkSweepParallel(b *testing.B) {
	benchSweepWorkers(b, runtime.GOMAXPROCS(0), thermal.Config{})
}

// BenchmarkEngineTick measures raw simulation throughput: simulated
// seconds per wall second of the full platform (scheduler + thermal +
// policy), the emulation-speed figure of merit of the framework itself.
func BenchmarkEngineTick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{Policy: ThermalBalance, Delta: 3, WarmupS: 1, MeasureS: 4})
		if err != nil {
			b.Fatal(err)
		}
		if res.MeasuredS <= 0 {
			b.Fatal("no measurement window")
		}
	}
}

// benchManycore32 runs the 32-core tiled scenario under the balancing
// policy for a short window — the scale point where per-tick cost grows
// linearly with cores and the event-horizon fast path matters most.
func benchManycore32(b *testing.B, noFastPath bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, _, err := experiment.Run(experiment.RunConfig{
			Scenario: "manycore-32", PolicyName: "thermal-balance", Delta: 2,
			WarmupS: 1, MeasureS: 2, NoFastPath: noFastPath,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.MeasuredS <= 0 {
			b.Fatal("no measurement window")
		}
	}
}

// BenchmarkManycore32 is the scaling figure of merit with the fast path
// enabled (the default).
func BenchmarkManycore32(b *testing.B) { benchManycore32(b, false) }

// BenchmarkManycore32TickStepped disables the fast path; the ratio to
// BenchmarkManycore32 is the macro-stepping speedup at 32 cores
// (results are bit-for-bit identical either way).
func BenchmarkManycore32TickStepped(b *testing.B) { benchManycore32(b, true) }

// BenchmarkManycore256 is the interactivity headline: the 256-core
// tiled die (1539 thermal nodes) under the balancing policy. At this
// size the expm cost model keeps the thermal side on sparse Euler
// substeps, so the figure tracks the engine's event-horizon and
// span-accounting work.
func BenchmarkManycore256(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiment.Run(experiment.RunConfig{
			Scenario: "manycore-256", PolicyName: "thermal-balance", Delta: 2,
			WarmupS: 1, MeasureS: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.MeasuredS <= 0 {
			b.Fatal("no measurement window")
		}
	}
}

// BenchmarkAblations runs the design-choice ablation suite (daemon
// period, TopK, cost filter, mechanism, queue sizing).
func BenchmarkAblations(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = experiment.AllAblations()
		if err != nil {
			b.Fatal(err)
		}
	}
	if !strings.Contains(out, "Ablation A5") {
		b.Fatal("ablation output truncated")
	}
}

// BenchmarkScalability runs generated workloads on 2/4/8-core platforms
// under the balancing policy (the framework "can be scaled to any number
// of cores sub-systems", paper Section 4).
func BenchmarkScalability(b *testing.B) {
	var rows []experiment.ScaleRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.Scale(nil, 11)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Cores == 8 {
			b.ReportMetric(r.PooledStdDev, "std-8core")
			b.ReportMetric(float64(r.Migrations), "migr-8core")
		}
	}
}
