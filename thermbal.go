// Package thermbal is a full reproduction of "Thermal Balancing Policy
// for Streaming Computing on Multiprocessor Architectures" (Mulas et
// al., DATE 2008): a thermal-aware MPSoC emulation framework, a
// MiGra-style migration-based thermal balancing policy, the baseline
// policies the paper compares against, and the Software Defined Radio
// streaming benchmark the evaluation uses.
//
// The package is the public facade: it exposes experiment configuration
// and execution without leaking the internal substrate packages. A
// typical use:
//
//	res, err := thermbal.Run(thermbal.Config{
//	    Policy:  thermbal.ThermalBalance,
//	    Delta:   3,
//	    Package: thermbal.MobileEmbedded,
//	})
//	fmt.Printf("std dev %.2f °C, %d misses, %.1f migrations/s\n",
//	    res.PooledStdDev, res.DeadlineMisses, res.MigrationsPerSec)
//
// Every table and figure of the paper can be regenerated through the
// Table*/Figure* helpers or the cmd/figures binary.
package thermbal

import (
	"encoding/json"
	"fmt"
	"io"

	"thermbal/internal/experiment"
	"thermbal/internal/migrate"
	"thermbal/internal/policy"
	"thermbal/internal/scenario"
	"thermbal/internal/service"
	"thermbal/internal/sim"
	"thermbal/internal/store"
	"thermbal/internal/thermal"
)

// PolicyKind selects the run-time management policy.
type PolicyKind int

const (
	// EnergyBalance is the static energy-balancing baseline: the
	// Table 2 mapping plus per-core DVFS, no run-time actions.
	EnergyBalance PolicyKind = iota
	// StopGo is the modified Stop&Go baseline: gate the core at the
	// upper threshold, restart at the lower one.
	StopGo
	// ThermalBalance is the paper's migration-based thermal balancing
	// policy.
	ThermalBalance
)

// String names the policy.
func (p PolicyKind) String() string { return p.sel().String() }

func (p PolicyKind) sel() experiment.PolicySel {
	switch p {
	case StopGo:
		return experiment.StopGo
	case ThermalBalance:
		return experiment.ThermalBalance
	default:
		return experiment.EnergyBalance
	}
}

// PackageKind selects the thermal package.
type PackageKind int

const (
	// MobileEmbedded has seconds-scale thermal dynamics (paper [6]).
	MobileEmbedded PackageKind = iota
	// HighPerformance has 6x faster temperature variations.
	HighPerformance
)

// String names the package.
func (p PackageKind) String() string { return p.sel().String() }

func (p PackageKind) sel() experiment.PackageSel {
	if p == HighPerformance {
		return experiment.HighPerf
	}
	return experiment.Mobile
}

// IntegratorKind selects the thermal integration scheme.
type IntegratorKind int

const (
	// EulerIntegrator is explicit forward Euler (default; the stability
	// bound forces the smallest substeps).
	EulerIntegrator IntegratorKind = iota
	// RK4Integrator is classical 4th-order Runge-Kutta: wider stability
	// region, fewer substeps per sensor period, far higher accuracy.
	RK4Integrator
	// AdaptiveRK4Integrator is RK4 under a step-doubling error
	// controller.
	AdaptiveRK4Integrator
	// ExpmIntegrator is the exact matrix-exponential scheme: the RC
	// network is linear time-invariant, so one memoized dense
	// propagator pair replaces the whole substep loop with zero
	// truncation error; spans below a cost crossover fall back to
	// explicit Euler bit-for-bit.
	ExpmIntegrator
)

// String names the integrator.
func (k IntegratorKind) String() string { return k.cfg().Scheme.String() }

func (k IntegratorKind) cfg() thermal.Config {
	switch k {
	case RK4Integrator:
		return thermal.Config{Scheme: thermal.RK4}
	case AdaptiveRK4Integrator:
		return thermal.Config{Scheme: thermal.RK4Adaptive}
	case ExpmIntegrator:
		return thermal.Config{Scheme: thermal.Expm}
	default:
		return thermal.Config{Scheme: thermal.Euler}
	}
}

// Config describes one experiment. The default scenario is the SDR
// benchmark on the 3-core streaming MPSoC; any registered scenario can
// be selected by name.
type Config struct {
	// Scenario names a registered scenario ("sdr-radio",
	// "video-decoder", "pipeline-d8", ...). Empty selects "sdr-radio".
	// Scenarios returns the catalogue.
	Scenario string
	// PolicyName, when non-empty, selects any registered policy by name
	// or alias and takes precedence over Policy.
	PolicyName string
	// Policy is the management policy (default EnergyBalance).
	Policy PolicyKind
	// Delta is the threshold distance from the mean temperature in °C
	// (used by StopGo and ThermalBalance; the paper sweeps 2..5).
	Delta float64
	// Package selects the thermal package (default MobileEmbedded).
	Package PackageKind
	// WarmupS is the initial phase before the policy engages
	// (default 12.5 s, the paper's first execution phase).
	WarmupS float64
	// MeasureS is the measurement window (default 30 s).
	MeasureS float64
	// QueueCap is the inter-task queue capacity in frames (default 11,
	// the paper's minimum sustainable size).
	QueueCap int
	// Recreation selects the task-recreation migration mechanism
	// instead of the default task-replication.
	Recreation bool
	// Integrator selects the thermal integration scheme (default
	// EulerIntegrator, the paper-equivalent explicit scheme).
	Integrator IntegratorKind
}

// Result is the outcome of a run over its measurement window.
// It mirrors the metrics of the paper's Section 5: temperature
// deviation, QoS (deadline misses) and migration overhead.
type Result = sim.Result

// SchemaVersion is the version of the JSON result schema shared by
// the simulation service (cmd/thermservd), `thermsim -json` and
// Summarize. Breaking field changes bump it; additions do not.
const SchemaVersion = experiment.SchemaVersion

// Summary is the versioned JSON view of a Result: the paper's
// Section 5 statistics (spatial/temporal temperature variance,
// deadline misses, migration counts, energy) grouped into wire-stable
// blocks with stable field names.
type Summary = experiment.Summary

// Summarize converts a Result into the versioned JSON schema view.
func Summarize(r Result) Summary { return experiment.Summarize(r) }

// RunSummary executes one experiment and returns its result in the
// versioned JSON schema — the same document body the simulation
// service caches and serves.
func RunSummary(cfg Config) (Summary, error) {
	res, err := Run(cfg)
	if err != nil {
		return Summary{}, err
	}
	return Summarize(res), nil
}

// ScenarioSpec is the declarative scenario description (schema v1):
// the task graph with rates and loads, the platform (core count or
// asymmetric core tiles, DVFS ladder, power coefficients, ambient) and
// optional load modulation. Specs validate hard (cycles, dangling
// edges, nonphysical values are structured errors) and have a frozen
// canonical serialization, so equal specs share one content address.
type ScenarioSpec = scenario.Spec

// GenerateScenario returns the deterministic scenario spec for a seed.
// The spec is a pure function of the seed, so generated workloads
// cache, persist and coalesce like built-ins.
func GenerateScenario(seed int64) ScenarioSpec { return scenario.Generate(seed) }

// RunSpec executes one experiment on a declarative scenario spec
// instead of a registered name. cfg.Scenario must be empty; every
// other Config field applies as in Run.
func RunSpec(sp ScenarioSpec, cfg Config) (Result, error) {
	if cfg.Scenario != "" {
		return Result{}, fmt.Errorf("thermbal: RunSpec with Scenario %q: the spec and a scenario name are mutually exclusive", cfg.Scenario)
	}
	mech := migrate.Replication
	if cfg.Recreation {
		mech = migrate.Recreation
	}
	res, _, err := experiment.Run(experiment.RunConfig{
		Spec:       &sp,
		PolicyName: cfg.PolicyName,
		Policy:     cfg.Policy.sel(),
		Delta:      cfg.Delta,
		Package:    cfg.Package.sel(),
		WarmupS:    cfg.WarmupS,
		MeasureS:   cfg.MeasureS,
		QueueCap:   cfg.QueueCap,
		Mechanism:  mech,
		Thermal:    cfg.Integrator.cfg(),
	})
	return res, err
}

// Run executes one experiment.
func Run(cfg Config) (Result, error) {
	mech := migrate.Replication
	if cfg.Recreation {
		mech = migrate.Recreation
	}
	res, _, err := experiment.Run(experiment.RunConfig{
		Scenario:   cfg.Scenario,
		PolicyName: cfg.PolicyName,
		Policy:     cfg.Policy.sel(),
		Delta:      cfg.Delta,
		Package:    cfg.Package.sel(),
		WarmupS:    cfg.WarmupS,
		MeasureS:   cfg.MeasureS,
		QueueCap:   cfg.QueueCap,
		Mechanism:  mech,
		Thermal:    cfg.Integrator.cfg(),
	})
	return res, err
}

// Store is a durable, content-addressed cache of run results on local
// disk: the same append-only segment-log store cmd/thermservd serves
// from (internal/store), behind the facade's Config vocabulary. Runs
// are keyed by the canonical request (the thermbal/run/v1 SHA-256
// scheme), so a result computed once — by this process, an earlier
// process, or a thermservd pointed at the same directory — is served
// from disk byte-for-byte instead of recomputed.
type Store struct {
	st *store.Store
}

// OpenStore opens (or creates) a result store rooted at dir,
// recovering cleanly from a previous process kill (a partial final
// record is truncated away; intact records all survive). Records are
// stamped with the engine version and sealed under Merkle roots as
// segments rotate, so results written here are verifiable offline
// with cmd/thermproof.
func OpenStore(dir string) (*Store, error) {
	st, err := store.Open(dir, store.Options{
		Pinned:  service.JournalPinned,
		Version: experiment.EngineVersion,
	})
	if err != nil {
		return nil, err
	}
	return &Store{st: st}, nil
}

// Close flushes and closes the store.
func (s *Store) Close() error { return s.st.Close() }

// StoreStats summarises the store's on-disk state.
type StoreStats struct {
	// Segments and Records describe the log; Bytes is its on-disk size.
	Segments int
	Records  int
	Bytes    int64
	// SealedSegments counts segments sealed under a Merkle root;
	// ChainLen and ChainHead describe the hash chain those roots form
	// (pin ChainHead out-of-band to make truncation detectable).
	SealedSegments int
	ChainLen       int
	ChainHead      string
}

// Stats snapshots the store.
func (s *Store) Stats() StoreStats {
	st := s.st.Stats()
	return StoreStats{
		Segments: st.Segments, Records: st.Records, Bytes: st.Bytes,
		SealedSegments: st.SealedSegments, ChainLen: st.ChainLen, ChainHead: st.ChainHead,
	}
}

// Seal rotates the active segment, sealing everything written so far
// under a Merkle root in the provenance chain. Results are provable
// (and offline-verifiable) only once sealed; the store also seals
// automatically whenever a segment fills.
func (s *Store) Seal() error { return s.st.Seal() }

// Verify rescans every record on disk against the sealed Merkle roots
// and the root hash chain, returning nil when everything checks out
// and an error naming the first divergent record otherwise. Purely
// read-only; see cmd/thermproof for the out-of-process form.
func (s *Store) Verify() error {
	_, err := s.st.Verify()
	return err
}

// request maps a facade Config onto the service's wire request, whose
// canonicalization defines the persistent cache identity.
func (c Config) request() service.Request {
	polName := c.PolicyName
	if polName == "" {
		polName = c.Policy.sel().String()
	}
	mech := ""
	if c.Recreation {
		mech = migrate.Recreation.String()
	}
	return service.Request{
		Scenario:   c.Scenario,
		Policy:     polName,
		Delta:      c.Delta,
		Package:    c.Package.sel().String(),
		WarmupS:    c.WarmupS,
		MeasureS:   c.MeasureS,
		QueueCap:   c.QueueCap,
		Mechanism:  mech,
		Integrator: c.Integrator.cfg().Scheme.String(),
	}
}

// RunSummary executes one experiment through the store: a request
// whose canonical form is already on disk is served from it (hit =
// true) without running the engine; otherwise the run executes and its
// document is persisted before returning. The summary bytes a hit
// decodes are exactly the bytes the original run encoded.
func (s *Store) RunSummary(cfg Config) (Summary, bool, error) {
	canon, rc, err := service.Canonicalize(cfg.request())
	if err != nil {
		return Summary{}, false, err
	}
	key := canon.Key()
	if body, ok, err := s.st.Get(key); err == nil && ok {
		var doc service.RunDoc
		if err := json.Unmarshal(body, &doc); err == nil {
			return doc.Result, true, nil
		}
		// An undecodable stored document falls through to recompute
		// (and overwrite) rather than failing the run.
	}
	res, _, err := experiment.Run(rc)
	if err != nil {
		return Summary{}, false, err
	}
	doc := service.NewRunDoc(canon, res)
	body, err := service.EncodeDoc(doc)
	if err == nil {
		err = s.st.Put(key, body)
	}
	if err != nil {
		return doc.Result, false, fmt.Errorf("run succeeded but persisting it failed: %w", err)
	}
	return doc.Result, false, nil
}

// Scenarios returns the names of every registered scenario.
func Scenarios() []string { return scenario.Names() }

// Policies returns the canonical names of every registered policy.
func Policies() []string { return policy.Names() }

// Deltas is the paper's threshold sweep (2..5 °C).
func Deltas() []float64 {
	return append([]float64(nil), experiment.Deltas...)
}

// Table1 renders the component power table (paper Table 1).
func Table1() string { return experiment.FormatTable1() }

// Table2 renders the application mapping (paper Table 2).
func Table2() (string, error) { return experiment.FormatTable2() }

// Figure2 renders the migration cost curves (paper Figure 2).
func Figure2() (string, error) {
	rows, err := experiment.Fig2(nil)
	if err != nil {
		return "", err
	}
	return experiment.FormatFig2(rows), nil
}

// WriteAllFigures regenerates every table and figure of the paper's
// evaluation and writes them to w. This runs the full sweeps (both
// packages, three policies, four thresholds) and takes a few seconds.
func WriteAllFigures(w io.Writer) error {
	fmt.Fprint(w, Table1())
	fmt.Fprintln(w)
	t2, err := Table2()
	if err != nil {
		return err
	}
	fmt.Fprint(w, t2)
	fmt.Fprintln(w)
	f2, err := Figure2()
	if err != nil {
		return err
	}
	fmt.Fprint(w, f2)
	fmt.Fprintln(w)

	mob, err := experiment.Sweep(experiment.Mobile, nil)
	if err != nil {
		return err
	}
	hp, err := experiment.Sweep(experiment.HighPerf, nil)
	if err != nil {
		return err
	}
	fmt.Fprint(w, experiment.FormatStdDevFigure("Figure 7", experiment.Mobile, mob, nil))
	fmt.Fprintln(w)
	fmt.Fprint(w, experiment.FormatMissFigure("Figure 8", experiment.Mobile, mob, nil))
	fmt.Fprintln(w)
	fmt.Fprint(w, experiment.FormatStdDevFigure("Figure 9", experiment.HighPerf, hp, nil))
	fmt.Fprintln(w)
	fmt.Fprint(w, experiment.FormatMissFigure("Figure 10", experiment.HighPerf, hp, nil))
	fmt.Fprintln(w)
	fmt.Fprint(w, experiment.FormatFig11(experiment.Fig11(mob, hp, nil)))
	return nil
}
