package thermbal

import (
	"math"
	"testing"

	"thermbal/internal/scenario"
	"thermbal/internal/thermal"
)

// The expm scheme's correctness contract, checked on every registered
// scenario's thermal network: where dense propagation is affordable the
// exact step must agree with Euler-at-vanishing-dt within 1e-6 °C, and
// where the cost model keeps dense propagation out (very large tiled
// dies) the scheme must be bit-for-bit the Euler fallback.

// expmDenseMaxNodes bounds the networks we force through the dense
// path: a propagator build is O(n³), so the largest tiled dies (771+
// nodes, where the cost crossover keeps dense propagation out anyway)
// are validated through the fallback property instead. 400 covers
// manycore-64, the largest network whose auto crossover still picks
// dense propagation at the sensor cadence.
const expmDenseMaxNodes = 400

// scenarioNet instantiates the scenario's platform and returns its
// thermal network with the given integrator scheme installed.
func scenarioNet(t *testing.T, sc scenario.Scenario, cfg thermal.Config) *thermal.Network {
	t.Helper()
	inst, err := sc.Instantiate(scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	net := inst.Platform.Thermal.Net
	net.SetIntegrator(thermal.NewIntegrator(cfg))
	return net
}

// scenarioPower is a deterministic, non-uniform power vector exciting
// the first nodes of the network (the core/cache blocks in every
// floorplan layout).
func scenarioPower(n int) []float64 {
	p := make([]float64, n)
	for i := 0; i < n && i < 9; i++ {
		p[i] = 0.4 - 0.03*float64(i)
	}
	return p
}

// tinyStepEuler is the "Euler at vanishing dt" reference: explicit
// Euler on the network's own Deriv at steps h, h/2, h/4 with two
// Richardson extrapolation levels, cancelling the O(h) and O(h²) error
// terms. All three grids integrate exactly the same span.
func tinyStepEuler(v thermal.View, start []float64, total, h float64, power []float64) []float64 {
	base := int(math.Ceil(total / h))
	run := func(steps int) []float64 {
		h := total / float64(steps)
		temps := append([]float64(nil), start...)
		d := make([]float64, len(start))
		for s := 0; s < steps; s++ {
			v.Deriv(temps, power, d)
			for i := range temps {
				temps[i] += h * d[i]
			}
		}
		return temps
	}
	full := run(base)
	half := run(2 * base)
	quarter := run(4 * base)
	out := make([]float64, len(full))
	for i := range out {
		r1 := 2*half[i] - full[i]
		r2 := 2*quarter[i] - half[i]
		out[i] = (4*r2 - r1) / 3
	}
	return out
}

func TestExpmValidAcrossScenarios(t *testing.T) {
	for _, name := range Scenarios() {
		sc, err := scenario.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			probe, err := sc.Instantiate(scenario.Options{})
			if err != nil {
				t.Fatal(err)
			}
			n := probe.Platform.Thermal.Net.NumNodes()
			power := scenarioPower(n)
			const window, windows = 0.01, 20

			if n <= expmDenseMaxNodes {
				// Force every span through the dense propagator and
				// compare against the extrapolated tiny-step reference.
				net := scenarioNet(t, sc, thermal.Config{Scheme: thermal.Expm, ExpmMinSubsteps: 1})
				start := net.Temperatures(nil)
				for w := 0; w < windows; w++ {
					if err := net.Step(window, power); err != nil {
						t.Fatal(err)
					}
				}
				ref := tinyStepEuler(net.View(), start, window*windows, net.MaxStableStep()/200, power)
				var worst float64
				for i := 0; i < n; i++ {
					if d := math.Abs(net.Temperature(i) - ref[i]); d > worst {
						worst = d
					}
				}
				t.Logf("%d nodes, dense: max |expm - tiny-step Euler| = %.3g °C", n, worst)
				if worst > 1e-6 {
					t.Errorf("max |expm - tiny-step Euler| = %.3g °C, want <= 1e-6", worst)
				}
				return
			}

			// Too large for an O(n³) build: the auto crossover must keep
			// the scheme on its Euler fallback, bit-for-bit.
			ne := scenarioNet(t, sc, thermal.Config{Scheme: thermal.Expm})
			nr := scenarioNet(t, sc, thermal.Config{Scheme: thermal.Euler})
			for w := 0; w < windows; w++ {
				if err := ne.Step(window, power); err != nil {
					t.Fatal(err)
				}
				if err := nr.Step(window, power); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < n; i++ {
				if ne.Temperature(i) != nr.Temperature(i) {
					t.Fatalf("node %d: expm fallback %v != euler %v (not bit-identical)",
						i, ne.Temperature(i), nr.Temperature(i))
				}
			}
			t.Logf("%d nodes: expm fell back to Euler bit-for-bit", n)
		})
	}
}
