package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"thermbal/internal/cliutil"
	"thermbal/internal/experiment"
	"thermbal/internal/migrate"
	"thermbal/internal/policy"
	"thermbal/internal/scenario"
	"thermbal/internal/sim"
	"thermbal/internal/stream"
)

// Request is the wire form of one simulation request (POST /run, run
// jobs). Every field is optional: zero values select the scenario's or
// the paper's defaults, exactly as the CLIs do. Canonicalize resolves
// aliases and fills defaults, so two requests that mean the same run
// hash to the same cache key regardless of spelling or which fields
// were spelled out.
type Request struct {
	// Scenario names a registered scenario (empty: "sdr-radio").
	Scenario string `json:"scenario"`
	// Spec is an inline declarative scenario, mutually exclusive with
	// Scenario. A spec identical to a builtin's canonicalizes onto the
	// builtin's name, so both spellings share one content address;
	// anything else is keyed by the spec's canonical hash. The pointer
	// is omitted empty so pre-spec documents and keys are unchanged.
	Spec *scenario.Spec `json:"spec,omitempty"`
	// Policy is a registered policy name or alias (empty: the
	// scenario's default policy).
	Policy string `json:"policy"`
	// Delta is the threshold distance from the mean temperature in °C
	// (0: the scenario's default).
	Delta float64 `json:"delta"`
	// Package is "mobile-embedded" or "high-performance" (aliases
	// "mobile", "embedded", "highperf", "hp"; empty: mobile-embedded).
	Package string `json:"package"`
	// WarmupS is the phase before the policy engages (<= 0: the
	// scenario's default, else the paper's 12.5 s).
	WarmupS float64 `json:"warmup_s"`
	// MeasureS is the measurement window (<= 0: the scenario's
	// default, else the paper's 30 s).
	MeasureS float64 `json:"measure_s"`
	// QueueCap is the inter-task queue capacity in frames (<= 0: 11).
	QueueCap int `json:"queue_cap"`
	// Mechanism is "task-replication" or "task-recreation" (short
	// forms "replication"/"recreation"; empty: task-replication).
	Mechanism string `json:"mechanism"`
	// Integrator is "euler", "rk4", "rk4-adaptive" or "expm" (empty:
	// euler).
	Integrator string `json:"integrator"`
}

// parsePackage resolves a package spelling; empty selects the mobile
// package, mirroring the CLIs' flag default.
func parsePackage(name string) (experiment.PackageSel, error) {
	if name == "" {
		return experiment.Mobile, nil
	}
	return cliutil.ParsePackage(name)
}

// ParseMechanism resolves a migration-mechanism spelling.
func ParseMechanism(name string) (migrate.Mechanism, error) {
	switch name {
	case "", "replication", "task-replication":
		return migrate.Replication, nil
	case "recreation", "task-recreation":
		return migrate.Recreation, nil
	}
	return migrate.Replication, fmt.Errorf("unknown mechanism %q (task-replication | task-recreation)", name)
}

// Canonicalize resolves req against the registries into its canonical
// form — aliases replaced by canonical names, every default made
// explicit — plus the experiment configuration that executes it. The
// canonical form is the cache identity: requests differing only in
// spelling or omitted defaults canonicalize identically.
func Canonicalize(req Request) (Request, experiment.RunConfig, error) {
	var c Request
	var sc scenario.Scenario
	var err error
	switch {
	case req.Spec != nil && req.Scenario != "":
		return Request{}, experiment.RunConfig{}, fmt.Errorf(`"spec" and "scenario" are mutually exclusive`)
	case req.Spec != nil:
		if name, ok := scenario.BuiltinNameForSpec(*req.Spec); ok {
			// The spec IS a builtin: rewrite to the named request and
			// recurse, so both spellings canonicalize — cache, coalesce
			// and persist — to one content address. The spec's own
			// defaults fill in first so its semantics survive the
			// rewrite even when its labels differ from the builtin's.
			n, nerr := req.Spec.Normalize()
			if nerr != nil {
				return Request{}, experiment.RunConfig{}, nerr
			}
			named := req
			named.Spec = nil
			named.Scenario = name
			if named.Policy == "" {
				named.Policy = n.DefaultPolicy
			}
			if named.Delta == 0 {
				named.Delta = n.DefaultDelta
			}
			if named.WarmupS <= 0 {
				named.WarmupS = n.WarmupS
			}
			if named.MeasureS <= 0 {
				named.MeasureS = n.MeasureS
			}
			return Canonicalize(named)
		}
		sc, err = scenario.FromSpec(*req.Spec)
		if err != nil {
			return Request{}, experiment.RunConfig{}, err
		}
		// FromSpec stores the normalized spec; that is the canonical
		// inline form (defaults explicit, field order frozen).
		c.Spec = sc.Spec
	default:
		sc, err = cliutil.ResolveScenario(req.Scenario)
		if err != nil {
			return Request{}, experiment.RunConfig{}, err
		}
		c.Scenario = sc.Name
	}
	polSpec := req.Policy
	if polSpec == "" {
		polSpec = sc.DefaultPolicy
	}
	c.Policy, err = cliutil.ResolvePolicy(polSpec)
	if err != nil {
		return Request{}, experiment.RunConfig{}, err
	}
	if req.Delta < 0 {
		return Request{}, experiment.RunConfig{}, fmt.Errorf("negative threshold delta %g", req.Delta)
	}
	c.Delta = req.Delta
	if c.Delta == 0 {
		c.Delta = sc.DefaultDelta
	}
	pkg, err := parsePackage(req.Package)
	if err != nil {
		return Request{}, experiment.RunConfig{}, err
	}
	c.Package = pkg.String()
	// Phase defaulting is experiment.Run's own cascade, so the cache
	// identity always matches what executes.
	c.WarmupS, c.MeasureS = experiment.Phases(sc, req.WarmupS, req.MeasureS)
	c.QueueCap = req.QueueCap
	if c.QueueCap <= 0 {
		c.QueueCap = stream.DefaultQueueCap
	}
	mech, err := ParseMechanism(req.Mechanism)
	if err != nil {
		return Request{}, experiment.RunConfig{}, err
	}
	c.Mechanism = mech.String()
	thermalCfg, err := cliutil.ParseIntegrator(req.Integrator)
	if err != nil {
		return Request{}, experiment.RunConfig{}, err
	}
	c.Integrator = thermalCfg.Scheme.String()

	rc := experiment.RunConfig{
		Scenario:   c.Scenario,
		Spec:       c.Spec,
		PolicyName: c.Policy,
		Delta:      c.Delta,
		Package:    pkg,
		WarmupS:    c.WarmupS,
		MeasureS:   c.MeasureS,
		QueueCap:   c.QueueCap,
		Mechanism:  mech,
		Thermal:    thermalCfg,
	}
	return c, rc, nil
}

// fnum formats a float for the key string: shortest round-trip form,
// deterministic across processes and platforms.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// keyString serializes a canonical request field by field in a fixed
// order. It is the hash pre-image, so its layout is frozen: any change
// must bump the leading version tag.
func (c Request) keyString() string {
	scenarioID := c.Scenario
	if c.Spec != nil {
		// Inline specs are identified by their canonical hash. The
		// "spec:" prefix cannot collide with a registered name (names
		// never contain ':'), so the v1 scheme accommodates both.
		scenarioID = "spec:" + c.Spec.Hash()
	}
	return strings.Join([]string{
		"thermbal/run/v1",
		"scenario=" + scenarioID,
		"policy=" + c.Policy,
		"delta=" + fnum(c.Delta),
		"package=" + c.Package,
		"warmup_s=" + fnum(c.WarmupS),
		"measure_s=" + fnum(c.MeasureS),
		"queue_cap=" + strconv.Itoa(c.QueueCap),
		"mechanism=" + c.Mechanism,
		"integrator=" + c.Integrator,
	}, "|")
}

// Key returns the content address of a canonical request: the SHA-256
// of its fixed-order serialization, hex-encoded. Stable across
// processes, platforms and restarts, so keys are valid persistent
// identities for results. Call only on Canonicalize output — raw wire
// requests with distinct spellings would hash apart.
func (c Request) Key() string {
	sum := sha256.Sum256([]byte(c.keyString()))
	return hex.EncodeToString(sum[:])
}

// MatrixRequest is the wire form of a batched scenarios × policies
// sweep (POST /matrix, matrix jobs). Empty axes select every
// registered name.
type MatrixRequest struct {
	// Scenarios lists registered scenario names (empty: all).
	Scenarios []string `json:"scenarios"`
	// Policies lists registered policy names or aliases (empty: all).
	Policies []string `json:"policies"`
	// Delta is the threshold for every cell (0: each scenario's
	// default).
	Delta float64 `json:"delta"`
	// Package, Mechanism and Integrator follow Request's spellings.
	Package    string `json:"package"`
	Mechanism  string `json:"mechanism"`
	Integrator string `json:"integrator"`
	// WarmupS / MeasureS override every cell's phases when positive;
	// 0 keeps each scenario's defaults.
	WarmupS  float64 `json:"warmup_s"`
	MeasureS float64 `json:"measure_s"`
	// QueueCap overrides the queue capacity when positive (<= 0: 11).
	QueueCap int `json:"queue_cap"`
}

// CanonicalizeMatrix resolves a matrix request into its canonical form
// plus the experiment configuration that executes it.
func CanonicalizeMatrix(req MatrixRequest) (MatrixRequest, experiment.MatrixConfig, error) {
	var c MatrixRequest
	if len(req.Scenarios) == 0 {
		c.Scenarios = scenario.Names()
	} else {
		seen := map[string]bool{}
		for _, name := range req.Scenarios {
			sc, err := cliutil.ResolveScenario(strings.TrimSpace(name))
			if err != nil {
				return MatrixRequest{}, experiment.MatrixConfig{}, err
			}
			if !seen[sc.Name] {
				seen[sc.Name] = true
				c.Scenarios = append(c.Scenarios, sc.Name)
			}
		}
	}
	if len(req.Policies) == 0 {
		c.Policies = policy.Names()
	} else {
		seen := map[string]bool{}
		for _, name := range req.Policies {
			canon, err := cliutil.ResolvePolicy(strings.TrimSpace(name))
			if err != nil {
				return MatrixRequest{}, experiment.MatrixConfig{}, err
			}
			if !seen[canon] {
				seen[canon] = true
				c.Policies = append(c.Policies, canon)
			}
		}
	}
	if req.Delta < 0 {
		return MatrixRequest{}, experiment.MatrixConfig{}, fmt.Errorf("negative threshold delta %g", req.Delta)
	}
	c.Delta = req.Delta
	pkg, err := parsePackage(req.Package)
	if err != nil {
		return MatrixRequest{}, experiment.MatrixConfig{}, err
	}
	c.Package = pkg.String()
	mech, err := ParseMechanism(req.Mechanism)
	if err != nil {
		return MatrixRequest{}, experiment.MatrixConfig{}, err
	}
	c.Mechanism = mech.String()
	thermalCfg, err := cliutil.ParseIntegrator(req.Integrator)
	if err != nil {
		return MatrixRequest{}, experiment.MatrixConfig{}, err
	}
	c.Integrator = thermalCfg.Scheme.String()
	c.WarmupS = max(req.WarmupS, 0)
	c.MeasureS = max(req.MeasureS, 0)
	c.QueueCap = req.QueueCap
	if c.QueueCap <= 0 {
		c.QueueCap = stream.DefaultQueueCap
	}

	mc := experiment.MatrixConfig{
		Scenarios: c.Scenarios,
		Policies:  c.Policies,
		Delta:     c.Delta,
		Package:   pkg,
		WarmupS:   c.WarmupS,
		MeasureS:  c.MeasureS,
		QueueCap:  c.QueueCap,
		Mechanism: mech,
	}
	return c, mc, nil
}

// simSeconds returns the total simulated time of the sweep — each
// cell's warmup + measure phases (the request's overrides where
// positive, otherwise the scenario's or the paper's defaults), summed
// over the scenarios × policies cross product. The sync /matrix
// endpoint bounds this like /run bounds a single request. Call on
// canonical requests, whose scenario names always resolve.
func (c MatrixRequest) simSeconds() float64 {
	var total float64
	for _, name := range c.Scenarios {
		sc, err := scenario.Lookup(name)
		if err != nil {
			continue
		}
		w, m := experiment.Phases(sc, c.WarmupS, c.MeasureS)
		total += (w + m) * float64(len(c.Policies))
	}
	return total
}

// thermal reconstructs the integrator configuration of a canonical
// matrix request (for the experiment Options).
func (c MatrixRequest) thermal() experiment.Options {
	cfg, err := cliutil.ParseIntegrator(c.Integrator)
	if err != nil {
		// Canonical requests always carry a valid scheme name.
		panic(fmt.Sprintf("service: canonical integrator %q: %v", c.Integrator, err))
	}
	return experiment.Options{Thermal: cfg}
}

// keyString is the matrix hash pre-image; layout frozen like
// Request.keyString.
func (c MatrixRequest) keyString() string {
	return strings.Join([]string{
		"thermbal/matrix/v1",
		"scenarios=" + strings.Join(c.Scenarios, ","),
		"policies=" + strings.Join(c.Policies, ","),
		"delta=" + fnum(c.Delta),
		"package=" + c.Package,
		"warmup_s=" + fnum(c.WarmupS),
		"measure_s=" + fnum(c.MeasureS),
		"queue_cap=" + strconv.Itoa(c.QueueCap),
		"mechanism=" + c.Mechanism,
		"integrator=" + c.Integrator,
	}, "|")
}

// Key returns the content address of a canonical matrix request.
func (c MatrixRequest) Key() string {
	sum := sha256.Sum256([]byte(c.keyString()))
	return hex.EncodeToString(sum[:])
}

// ---------------------------------------------------------------------
// Response documents.

// RunDoc is the /run response and `thermsim -json` output: the
// versioned schema document for one run.
type RunDoc struct {
	SchemaVersion int `json:"schema_version"`
	// Kind is "run".
	Kind string `json:"kind"`
	// Key is the content address of the canonical request.
	Key string `json:"key"`
	// Request is the canonical request: every alias resolved, every
	// default explicit.
	Request Request `json:"request"`
	// Result is the versioned run summary.
	Result experiment.Summary `json:"result"`
}

// NewRunDoc builds the schema document for one executed run.
func NewRunDoc(canon Request, res sim.Result) RunDoc {
	return RunDoc{
		SchemaVersion: experiment.SchemaVersion,
		Kind:          "run",
		Key:           canon.Key(),
		Request:       canon,
		Result:        experiment.Summarize(res),
	}
}

// MatrixCellDoc is one (scenario, policy) outcome of a matrix sweep.
// Result holds the encoded experiment.Summary as raw JSON: matrix
// bodies are assembled both from fresh sweeps and from individually
// persisted per-cell run documents, and splicing the stored bytes
// verbatim is what keeps the two assembly paths byte-identical.
type MatrixCellDoc struct {
	Scenario string          `json:"scenario"`
	Policy   string          `json:"policy"`
	Result   json.RawMessage `json:"result"`
}

// MatrixDoc is the /matrix response document.
type MatrixDoc struct {
	SchemaVersion int           `json:"schema_version"`
	Kind          string        `json:"kind"` // "matrix"
	Key           string        `json:"key"`
	Request       MatrixRequest `json:"request"`
	// Cells are scenario-major, in the canonical axis order.
	Cells []MatrixCellDoc `json:"cells"`
}

// NewMatrixDoc builds the schema document for one executed sweep.
func NewMatrixDoc(canon MatrixRequest, cells []experiment.MatrixCell) (MatrixDoc, error) {
	doc := MatrixDoc{
		SchemaVersion: experiment.SchemaVersion,
		Kind:          "matrix",
		Key:           canon.Key(),
		Request:       canon,
		Cells:         make([]MatrixCellDoc, len(cells)),
	}
	for i, c := range cells {
		raw, err := json.Marshal(experiment.Summarize(c.Result))
		if err != nil {
			return MatrixDoc{}, err
		}
		doc.Cells[i] = MatrixCellDoc{Scenario: c.Scenario, Policy: c.Policy, Result: raw}
	}
	return doc, nil
}

// matrixCells decomposes a canonical matrix request into its cells:
// one fully canonical run request (plus its execution configuration)
// per (scenario, policy) pair, scenario-major in the canonical axis
// order. Each cell's key is the same content address a direct /run of
// that configuration uses, which is what lets sweep results persist —
// and restart-resume — cell by cell.
func matrixCells(canon MatrixRequest) ([]cellTask, error) {
	cells := make([]cellTask, 0, len(canon.Scenarios)*len(canon.Policies))
	for _, sn := range canon.Scenarios {
		for _, pn := range canon.Policies {
			req, rc, err := Canonicalize(Request{
				Scenario:   sn,
				Policy:     pn,
				Delta:      canon.Delta,
				Package:    canon.Package,
				WarmupS:    canon.WarmupS,
				MeasureS:   canon.MeasureS,
				QueueCap:   canon.QueueCap,
				Mechanism:  canon.Mechanism,
				Integrator: canon.Integrator,
			})
			if err != nil {
				return nil, err
			}
			cells = append(cells, cellTask{req: req, rc: rc})
		}
	}
	return cells, nil
}

// assembleMatrixDoc splices individually persisted per-cell run bodies
// into the whole-sweep document. Each cell body is the encoded RunDoc
// the cell's execution produced (or a store/cache hit of it); its raw
// result block is lifted verbatim, so the assembled bytes equal what a
// monolithic sweep of the same canonical request would encode.
func assembleMatrixDoc(canon MatrixRequest, cells []cellTask, bodies [][]byte) (MatrixDoc, error) {
	doc := MatrixDoc{
		SchemaVersion: experiment.SchemaVersion,
		Kind:          "matrix",
		Key:           canon.Key(),
		Request:       canon,
		Cells:         make([]MatrixCellDoc, len(cells)),
	}
	for i, cell := range cells {
		var run struct {
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(bodies[i], &run); err != nil {
			return MatrixDoc{}, fmt.Errorf("cell %s/%s: %w", cell.req.Scenario, cell.req.Policy, err)
		}
		doc.Cells[i] = MatrixCellDoc{
			Scenario: cell.req.Scenario,
			Policy:   cell.req.Policy,
			Result:   run.Result,
		}
	}
	return doc, nil
}

// EncodeDoc is the one encoder every schema document goes through —
// the service handlers, job results and `thermsim -json` alike — so
// equal documents are equal bytes everywhere: compact JSON plus a
// trailing newline.
func EncodeDoc(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
