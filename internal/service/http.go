package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"thermbal/internal/experiment"
	"thermbal/internal/obs"
	"thermbal/internal/policy"
	"thermbal/internal/provenance"
	"thermbal/internal/scenario"
	"thermbal/internal/store"
)

// maxBodyBytes bounds request bodies; simulation requests are tiny.
const maxBodyBytes = 1 << 20

// Handler returns the HTTP API. All responses are JSON; schema
// documents go through EncodeDoc so cached, coalesced and fresh
// responses for the same canonical request are byte-identical.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /scenarios", s.handleScenarios)
	mux.HandleFunc("GET /policies", s.handlePolicies)
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("POST /matrix", s.handleMatrix)
	mux.HandleFunc("GET /proof", s.handleProof)
	mux.HandleFunc("POST /seal", s.handleSeal)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /jobs", s.handleJobList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleJobCancel)
	return mux
}

// writeJSON marshals v through the shared encoder.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := EncodeDoc(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// writeBody writes a pre-encoded schema document with its cache state.
func writeBody(w http.ResponseWriter, body []byte, cacheState string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheState)
	w.Write(body)
}

// writeTimedBody finalizes the request's timing record and writes the
// body with its X-Cache and X-Timing headers. Total is stamped here —
// just before the first response byte — so the header can carry it;
// the per-stage pairs are the record the request accumulated on its
// way through the cache/flight/execute ladder.
func writeTimedBody(w http.ResponseWriter, body []byte, cacheState string, rec *obs.TimingRecord) {
	rec.Outcome = cacheState
	rec.Total = time.Since(rec.Start)
	var buf [128]byte
	w.Header().Set("X-Timing", string(rec.AppendHeaderValue(buf[:0])))
	writeBody(w, body, cacheState)
}

// finishRequest observes a finished request into the metrics and the
// timing log. Deferred by the /run and /matrix handlers so error
// responses (outcome "error") are recorded too; a record whose
// outcome was never set by a successful write keeps that default.
func (s *Server) finishRequest(ep int, rec *obs.TimingRecord) {
	if rec.Total == 0 {
		rec.Total = time.Since(rec.Start)
	}
	s.metrics.observeRequest(ep, rec)
	if s.cfg.TimingLog != nil {
		s.cfg.TimingLog.Log(rec)
	}
}

// errorDoc is the JSON error envelope.
type errorDoc struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorDoc{Error: err.Error()})
}

// decodeJSON reads one JSON value; an empty body decodes to the zero
// value so `curl -X POST .../run` with no payload runs the defaults.
// Decoding is strict — unknown fields, trailing data and oversized
// bodies are all rejected: on a content-addressed cache a silently
// dropped misspelled key ("polcy", "measure") or truncated byte would
// run — and cache — a different simulation than the client intended.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		return err
	}
	if len(body) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("unexpected data after the request object")
	}
	return nil
}

// writeRequestError maps a decodeJSON failure to its status: 413 for
// an over-limit body, 400 otherwise.
func writeRequestError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
		return
	}
	writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{"ok"})
}

// scenariosDoc is the /scenarios response.
type scenariosDoc struct {
	SchemaVersion int             `json:"schema_version"`
	Scenarios     []scenario.Info `json:"scenarios"`
}

// scenarioSpecEntry is one /scenarios?spec=1 entry: the catalogue info
// plus the scenario's declarative spec, ready to edit and POST back as
// an inline "spec" request.
type scenarioSpecEntry struct {
	scenario.Info
	Spec *scenario.Spec `json:"spec,omitempty"`
}

// scenariosSpecDoc is the /scenarios?spec=1 response.
type scenariosSpecDoc struct {
	SchemaVersion int                 `json:"schema_version"`
	Scenarios     []scenarioSpecEntry `json:"scenarios"`
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("spec") == "1" {
		all := scenario.All()
		entries := make([]scenarioSpecEntry, len(all))
		for i, sc := range all {
			entries[i] = scenarioSpecEntry{Info: sc.Info(), Spec: sc.Spec}
		}
		writeJSON(w, http.StatusOK, scenariosSpecDoc{
			SchemaVersion: experiment.SchemaVersion,
			Scenarios:     entries,
		})
		return
	}
	writeJSON(w, http.StatusOK, scenariosDoc{
		SchemaVersion: experiment.SchemaVersion,
		Scenarios:     scenario.Infos(),
	})
}

// policiesDoc is the /policies response.
type policiesDoc struct {
	SchemaVersion int            `json:"schema_version"`
	Policies      []policy.Entry `json:"policies"`
}

func (s *Server) handlePolicies(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, policiesDoc{
		SchemaVersion: experiment.SchemaVersion,
		Policies:      policy.Entries(),
	})
}

// writeOverloadError maps an execute-ladder failure: a shed decision
// becomes 503 + Retry-After (the shed counter was incremented at the
// shed site), anything else 500.
func writeOverloadError(w http.ResponseWriter, err error) {
	var shed *shedError
	if errors.As(err, &shed) {
		setRetryAfter(w, shed.retryAfter)
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeError(w, http.StatusInternalServerError, err)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	rec := obs.TimingRecord{Start: time.Now(), Endpoint: "run", Outcome: "error"}
	defer s.finishRequest(epRun, &rec)
	if !s.checkQuota(w, r) {
		return
	}
	var req Request
	if err := decodeJSON(w, r, &req); err != nil {
		writeRequestError(w, err)
		return
	}
	canon, rc, err := Canonicalize(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if sim := canon.WarmupS + canon.MeasureS; sim > s.cfg.MaxSyncSimS {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("%.0f simulated seconds exceeds the synchronous limit of %.0f; submit it to /jobs instead", sim, s.cfg.MaxSyncSimS))
		return
	}
	// The content address is stamped on the response so a client can
	// later ask /proof for this exact body without re-deriving the
	// canonical hash.
	key := canon.Key()
	w.Header().Set("X-Content-Key", key)
	// The request context cancels on client disconnect: this waiter
	// aborts, while the execution itself is detached so coalesced
	// requests and the cache still get the result.
	cls := execClass{prio: prioInteractive, cost: canon.WarmupS + canon.MeasureS}
	body, cacheState, err := s.executeRun(r.Context(), key, cls, canon, rc, &rec)
	if err != nil {
		if r.Context().Err() != nil {
			return // client gone; nobody to answer
		}
		writeOverloadError(w, err)
		return
	}
	writeTimedBody(w, body, cacheState, &rec)
}

func (s *Server) handleMatrix(w http.ResponseWriter, r *http.Request) {
	rec := obs.TimingRecord{Start: time.Now(), Endpoint: "matrix", Outcome: "error"}
	defer s.finishRequest(epMatrix, &rec)
	if !s.checkQuota(w, r) {
		return
	}
	var req MatrixRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeRequestError(w, err)
		return
	}
	canon, mc, err := CanonicalizeMatrix(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The sync endpoint is bounded like /run, but over the whole cross
	// product: a bare full-catalogue sweep must go through /jobs.
	if sim := canon.simSeconds(); sim > s.cfg.MaxSyncSimS {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("%.0f simulated seconds across %d cells exceeds the synchronous limit of %.0f; submit it to /jobs instead",
				sim, len(canon.Scenarios)*len(canon.Policies), s.cfg.MaxSyncSimS))
		return
	}
	opt := canon.thermal()
	opt.Runner = s.cfg.Runner
	key := canon.Key()
	w.Header().Set("X-Content-Key", key)
	body, cacheState, err := s.executeMatrix(r.Context(), key, canon, mc, opt, &rec)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		writeOverloadError(w, err)
		return
	}
	writeTimedBody(w, body, cacheState, &rec)
}

// proofDoc is the /proof response: a Merkle inclusion proof binding
// one stored result body into the store's sealed, hash-chained
// manifest (see internal/provenance for the wire fields and the
// offline verification procedure; cmd/thermproof consumes this
// document verbatim).
type proofDoc struct {
	SchemaVersion int `json:"schema_version"`
	provenance.Proof
}

// handleProof serves GET /proof?key=<content-address>. Status maps
// the store's refusals: 404 when the key holds no record (or the
// server runs memory-only), 409 when the record still sits in the
// unsealed active segment (POST /seal or wait for rotation, then
// retry), 500 when its segment is tainted — sealed evidence no
// longer matches the log, which a proof must never paper over.
func (s *Server) handleProof(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("no durable store configured; provenance proofs need thermservd -data-dir"))
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing ?key= (the X-Content-Key of a /run or /matrix response)"))
		return
	}
	t := time.Now()
	p, err := s.cfg.Store.Proof(key)
	s.metrics.observeProof(time.Since(t))
	if err != nil {
		s.proofErrors.Add(1)
		switch {
		case errors.Is(err, store.ErrNotFound):
			writeError(w, http.StatusNotFound, err)
		case errors.Is(err, store.ErrUnsealed):
			writeError(w, http.StatusConflict, err)
		default: // store.ErrTainted and anything unforeseen
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	s.proofsServed.Add(1)
	writeJSON(w, http.StatusOK, proofDoc{SchemaVersion: experiment.SchemaVersion, Proof: p})
}

// handleSeal rotates the active segment early (POST /seal), sealing
// everything written so far into the Merkle chain so /proof can serve
// it immediately instead of waiting for the size-based rotation.
// Idempotent: an empty active segment seals nothing.
func (s *Server) handleSeal(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Store == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("no durable store configured; sealing needs thermservd -data-dir"))
		return
	}
	if err := s.cfg.Store.Seal(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleMetrics serves the Prometheus text exposition of every
// registered instrument.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// A write error here means the scraper disconnected; there is
	// nobody left to report it to.
	_ = s.metrics.reg.WritePrometheus(w)
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.checkQuota(w, r) {
		return
	}
	var jr JobRequest
	if err := decodeJSON(w, r, &jr); err != nil {
		writeRequestError(w, err)
		return
	}
	j, err := s.jobs.submit(jr, false)
	if err != nil {
		var shed *shedError
		switch {
		case errors.Is(err, errQueueFull):
			s.shed[shedQueueFull].Add(1)
			setRetryAfter(w, shedRetryAfter(s.budget.pendingSimS(), s.cfg.MaxSims))
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.As(err, &shed):
			setRetryAfter(w, shed.retryAfter)
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	w.Header().Set("Location", "/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, s.jobs.status(j))
}

// jobsDoc is the /jobs listing.
type jobsDoc struct {
	SchemaVersion int         `json:"schema_version"`
	Jobs          []JobStatus `json:"jobs"`
}

func (s *Server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.jobs.list()
	doc := jobsDoc{SchemaVersion: experiment.SchemaVersion, Jobs: make([]JobStatus, len(jobs))}
	for i, j := range jobs {
		st := s.jobs.status(j)
		st.Result = nil // result bodies only on /jobs/{id}
		doc.Jobs[i] = st
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.jobs.status(j))
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok, cancelled := s.jobs.cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	if !cancelled {
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s is %s; only pending jobs can be cancelled", j.id, j.state))
		return
	}
	writeJSON(w, http.StatusOK, s.jobs.status(j))
}
