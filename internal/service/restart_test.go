package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"thermbal/internal/experiment"
	"thermbal/internal/sim"
	"thermbal/internal/store"
)

// openTestStore opens a store on dir with the journal pinned, the way
// cmd/thermservd does.
func openTestStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{Pinned: JournalPinned, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRestartServesStoreHitByteIdentical is the acceptance restart
// test for /run: populate the store, kill the server (no Close on the
// store — the file state a SIGKILL leaves), restart on the same data
// dir and expect the re-request to be a store hit with a
// byte-identical body and no execution.
func TestRestartServesStoreHitByteIdentical(t *testing.T) {
	dir := t.TempDir()
	st1 := openTestStore(t, dir)
	_, ts1 := newTestServer(t, Config{Store: st1})
	resp, cold := do(t, http.MethodPost, ts1.URL+"/run", shortRun)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("cold run: %d, X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	// SIGKILL-equivalent stop: the HTTP server goes away and the store
	// is never Closed or synced; its appends are simply left on disk.
	ts1.Close()

	st2 := openTestStore(t, dir)
	defer st2.Close()
	s2, ts2 := newTestServer(t, Config{Store: st2})
	resp, warm := do(t, http.MethodPost, ts2.URL+"/run", shortRun)
	if got := resp.Header.Get("X-Cache"); got != "store" {
		t.Errorf("restarted /run X-Cache = %q, want store", got)
	}
	if !bytes.Equal(cold, warm) {
		t.Errorf("restarted body differs from the pre-kill body:\n%s\nvs\n%s", warm, cold)
	}
	stats := s2.Stats()
	if stats.Executions != 0 {
		t.Errorf("restarted server executed %d simulations, want 0", stats.Executions)
	}
	if stats.Store == nil || stats.Store.Serves != 1 || stats.Store.Records == 0 {
		t.Errorf("store stats after restart = %+v", stats.Store)
	}
	// And a second request is now a pure memory hit.
	resp, again := do(t, http.MethodPost, ts2.URL+"/run", shortRun)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second restarted /run X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(again, cold) {
		t.Error("memory-hit body differs")
	}
}

// TestMatrixJobResumesFromCompletedCells is the acceptance restart
// test for sweeps, on the real engine: one cell of a 2-cell sweep is
// populated via /run before a kill; after restart the matrix job
// executes only the missing cell (asserted via the /stats execution
// counter) and still assembles the full, cacheable sweep document.
func TestMatrixJobResumesFromCompletedCells(t *testing.T) {
	dir := t.TempDir()
	st1 := openTestStore(t, dir)
	_, ts1 := newTestServer(t, Config{Store: st1})
	// This /run is exactly the energy-balance cell of the sweep below:
	// same canonical form, same content address.
	resp, _ := do(t, http.MethodPost, ts1.URL+"/run",
		`{"scenario":"sdr-radio","policy":"eb","warmup_s":0.3,"measure_s":0.5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("populate cell: %d", resp.StatusCode)
	}
	ts1.Close() // kill: no store Close

	st2 := openTestStore(t, dir)
	defer st2.Close()
	s2, ts2 := newTestServer(t, Config{Store: st2})
	resp, b := do(t, http.MethodPost, ts2.URL+"/jobs",
		`{"matrix":{"scenarios":["sdr-radio"],"policies":["eb","tb"],"warmup_s":0.3,"measure_s":0.5}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit sweep: %d %s", resp.StatusCode, b)
	}
	var submitted JobStatus
	if err := json.Unmarshal(b, &submitted); err != nil {
		t.Fatal(err)
	}
	if submitted.Progress == nil || submitted.Progress.TotalCells != 2 {
		t.Fatalf("submit echo progress = %+v", submitted.Progress)
	}
	done := waitState(t, ts2, submitted.ID, JobDone)
	if p := done.Progress; p == nil ||
		p.CompletedCells != 2 || p.ExecutedCells != 1 || p.CachedCells != 1 {
		t.Errorf("resumed sweep progress = %+v, want 2 completed / 1 executed / 1 cached", done.Progress)
	}
	stats := s2.Stats()
	if stats.Executions != 1 {
		t.Errorf("resumed sweep executed %d cells, want only the missing 1", stats.Executions)
	}

	// The assembled document equals a synchronous /matrix of the same
	// canonical sweep — which is now a pure hit.
	resp, syncBody := do(t, http.MethodPost, ts2.URL+"/matrix",
		`{"scenarios":["sdr-radio"],"policies":["eb","tb"],"warmup_s":0.3,"measure_s":0.5}`)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("sync sweep after job X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(bytes.TrimRight(syncBody, "\n"), bytes.TrimRight(done.Result, "\n")) {
		t.Error("assembled sweep document differs from the sync /matrix body")
	}
	var doc MatrixDoc
	if err := json.Unmarshal(done.Result, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Cells) != 2 || doc.Cells[0].Policy != "energy-balance" || doc.Cells[1].Policy != "thermal-balance" {
		t.Errorf("assembled cells = %+v", doc.Cells)
	}
	var sum experiment.Summary
	if err := json.Unmarshal(doc.Cells[0].Result, &sum); err != nil || sum.MeasuredS <= 0 {
		t.Errorf("cell result block: %v (%+v)", err, sum)
	}

	// The hit comparison above reads the job's own assembled bytes
	// back; the invariant is stronger — splicing persisted cell bodies
	// must equal what a cold monolithic sweep encodes. A fresh
	// memory-only server runs the sweep through experiment.MatrixWith
	// with nothing cached.
	_, tsFresh := newTestServer(t, Config{})
	resp, freshBody := do(t, http.MethodPost, tsFresh.URL+"/matrix",
		`{"scenarios":["sdr-radio"],"policies":["eb","tb"],"warmup_s":0.3,"measure_s":0.5}`)
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("fresh sweep X-Cache = %q, want miss", got)
	}
	if !bytes.Equal(bytes.TrimRight(freshBody, "\n"), bytes.TrimRight(done.Result, "\n")) {
		t.Error("assembled sweep document differs from a cold monolithic /matrix sweep")
	}
}

// TestKilledMatrixJobAutoResumesAfterRestart covers the journal: a
// sweep killed mid-flight (one of two cells completed) is re-submitted
// automatically by the next process and executes only the missing
// cell.
func TestKilledMatrixJobAutoResumesAfterRestart(t *testing.T) {
	dir := t.TempDir()
	block := make(chan struct{})
	// The stub finishes energy-balance cells instantly and blocks
	// thermal-balance ones: a deterministic "kill arrived mid-sweep".
	stub := func(rc experiment.RunConfig) (sim.Result, error) {
		if rc.PolicyName == "thermal-balance" {
			<-block
		}
		return sim.Result{PolicyName: rc.PolicyName, MeasuredS: rc.MeasureS}, nil
	}
	st1 := openTestStore(t, dir)
	s1, ts1 := newTestServer(t, Config{Store: st1, runSim: stub})
	_, b := do(t, http.MethodPost, ts1.URL+"/jobs",
		`{"matrix":{"scenarios":["sdr-radio"],"policies":["eb","tb"],"warmup_s":0.3,"measure_s":0.5}}`)
	var submitted JobStatus
	if err := json.Unmarshal(b, &submitted); err != nil {
		t.Fatal(err)
	}
	// Wait until the first cell's result is persisted, then "kill":
	// abandon the server and store with the second cell still blocked.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := waitState(t, ts1, submitted.ID, JobRunning)
		if st.Progress != nil && st.Progress.CompletedCells >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first cell never completed: %+v", st.Progress)
		}
		time.Sleep(time.Millisecond)
	}
	ts1.Close()

	st2 := openTestStore(t, dir)
	var execs2 int64
	s2 := New(Config{
		Store: st2,
		runSim: func(rc experiment.RunConfig) (sim.Result, error) {
			execs2++
			return sim.Result{PolicyName: rc.PolicyName, MeasuredS: rc.MeasureS}, nil
		},
	})
	// The journaled sweep was re-submitted at New; find it and wait.
	jobs := s2.jobs.list()
	if len(jobs) != 1 || !jobs[0].recovered || jobs[0].kind != "matrix" {
		t.Fatalf("recovered jobs = %d", len(jobs))
	}
	select {
	case <-jobs[0].done:
	case <-time.After(10 * time.Second):
		t.Fatal("recovered sweep never finished")
	}
	st := s2.jobs.status(jobs[0])
	if st.State != JobDone || !st.Recovered {
		t.Fatalf("recovered job = %+v", st)
	}
	if p := st.Progress; p == nil || p.ExecutedCells != 1 || p.CachedCells != 1 {
		t.Errorf("recovered sweep progress = %+v, want 1 executed / 1 cached", st.Progress)
	}
	if s2.Stats().Jobs.Recovered != 1 {
		t.Errorf("jobs.recovered = %d, want 1", s2.Stats().Jobs.Recovered)
	}
	// Once done, the journal record is tombstoned: a third process
	// recovers nothing.
	s2.Close()
	if keys := st2.Keys(JournalPrefix); len(keys) != 0 {
		t.Errorf("journal not cleared after completion: %v", keys)
	}
	st2.Close()
	s3 := New(Config{Store: openTestStore(t, dir)})
	if n := len(s3.jobs.list()); n != 0 {
		t.Errorf("third process recovered %d jobs, want 0", n)
	}
	s3.Close()
	s1.Close()
	close(block) // release the abandoned first process's blocked cell
	if execs2 != 1 {
		t.Errorf("restarted process executed %d cells, want only the missing 1", execs2)
	}
}

// TestDuplicateJobCancelKeepsSharedJournal: two submissions of the
// same canonical request share one journal record; cancelling one
// duplicate must not strip crash recovery from the other. Only the
// last live duplicate to finish clears the record.
func TestDuplicateJobCancelKeepsSharedJournal(t *testing.T) {
	dir := t.TempDir()
	block := make(chan struct{})
	st := openTestStore(t, dir)
	defer st.Close()
	_, ts := newTestServer(t, Config{
		Store:      st,
		JobWorkers: 1,
		runSim: func(rc experiment.RunConfig) (sim.Result, error) {
			<-block
			return sim.Result{PolicyName: rc.PolicyName, MeasuredS: rc.MeasureS}, nil
		},
	})
	// A starts running (and blocks); B is the pending duplicate.
	_, b := do(t, http.MethodPost, ts.URL+"/jobs", `{"run":{"delta":3}}`)
	var a JobStatus
	if err := json.Unmarshal(b, &a); err != nil {
		t.Fatal(err)
	}
	waitState(t, ts, a.ID, JobRunning)
	_, b = do(t, http.MethodPost, ts.URL+"/jobs", `{"run":{"delta":3}}`)
	var dup JobStatus
	if err := json.Unmarshal(b, &dup); err != nil {
		t.Fatal(err)
	}
	if dup.Key != a.Key {
		t.Fatalf("duplicate keys differ: %s vs %s", dup.Key, a.Key)
	}

	// Cancelling the pending duplicate leaves the shared record: the
	// running job still needs it to survive a kill.
	resp, _ := do(t, http.MethodDelete, ts.URL+"/jobs/"+dup.ID, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel duplicate: %d", resp.StatusCode)
	}
	if keys := st.Keys(JournalPrefix); len(keys) != 1 {
		t.Fatalf("journal after duplicate cancel = %v, want the shared record kept", keys)
	}

	// Once the last live holder finishes, the record is cleared.
	close(block)
	waitState(t, ts, a.ID, JobDone)
	if keys := st.Keys(JournalPrefix); len(keys) != 0 {
		t.Errorf("journal after last holder finished = %v, want empty", keys)
	}
}

// TestMatrixJobCoalescesWithSyncSweep: a matrix job submitted while an
// identical sync /matrix is in flight joins that execution instead of
// re-running every cell.
func TestMatrixJobCoalescesWithSyncSweep(t *testing.T) {
	release := make(chan struct{})
	var cellExecs atomic.Int64
	s, ts := newTestServer(t, Config{
		runMatrix: func(ctx context.Context, mc experiment.MatrixConfig, opt experiment.Options) ([]experiment.MatrixCell, error) {
			<-release
			var cells []experiment.MatrixCell
			for _, sn := range mc.Scenarios {
				for _, pn := range mc.Policies {
					cells = append(cells, experiment.MatrixCell{Scenario: sn, Policy: pn})
				}
			}
			return cells, nil
		},
		runSim: func(rc experiment.RunConfig) (sim.Result, error) {
			cellExecs.Add(1)
			return sim.Result{PolicyName: rc.PolicyName}, nil
		},
	})
	const sweep = `{"scenarios":["sdr-radio"],"policies":["eb","tb"],"warmup_s":0.3,"measure_s":0.5}`
	// Plain client call: t.Fatal is not legal off the test goroutine,
	// and the flight-count poll below is the actual synchronization.
	go http.Post(ts.URL+"/matrix", "application/json", strings.NewReader(sweep))
	deadline := time.Now().Add(10 * time.Second)
	for {
		if inflight, _ := s.flight.counts(); inflight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sync sweep never took flight")
		}
		time.Sleep(time.Millisecond)
	}

	_, b := do(t, http.MethodPost, ts.URL+"/jobs", `{"matrix":`+sweep+`}`)
	var submitted JobStatus
	if err := json.Unmarshal(b, &submitted); err != nil {
		t.Fatal(err)
	}
	// The job's worker must join the sync flight, not start cells.
	deadline = time.Now().Add(10 * time.Second)
	for {
		if _, coalesced := s.flight.counts(); coalesced == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("matrix job never joined the in-flight sync sweep")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	done := waitState(t, ts, submitted.ID, JobDone)
	if got := cellExecs.Load(); got != 0 {
		t.Errorf("coalesced matrix job executed %d cells, want 0", got)
	}
	if p := done.Progress; p == nil || p.CompletedCells != 2 || p.CachedCells != 2 || p.ExecutedCells != 0 {
		t.Errorf("coalesced sweep progress = %+v, want 2 completed / 2 cached / 0 executed", done.Progress)
	}
}
