package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"thermbal/internal/experiment"
	"thermbal/internal/sim"
)

// Overload e2e tests: drive the server into each admission-control
// refusal over real HTTP and assert the deliberate behavior — 429s and
// 503s carry Retry-After, quotas isolate tenants, interactive work
// overtakes queued bulk work, and every shed decision is counted
// exactly once in /stats and /metrics.

// retryAfterSecs asserts the response carries an integer-seconds
// Retry-After of at least 1 and returns it.
func retryAfterSecs(t *testing.T, resp *http.Response) int {
	t.Helper()
	v := resp.Header.Get("Retry-After")
	if v == "" {
		t.Fatalf("status %d response has no Retry-After header", resp.StatusCode)
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", v)
	}
	return secs
}

// scrapeMetric fetches /metrics and returns the named series' value.
func scrapeMetric(t *testing.T, ts *httptest.Server, series string) float64 {
	t.Helper()
	resp, b := do(t, http.MethodGet, ts.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	for _, line := range strings.Split(string(b), "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parse %s value %q: %v", series, rest, err)
			}
			return v
		}
	}
	t.Fatalf("/metrics has no series %s", series)
	return 0
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQuotaExhaustion429 exhausts one tenant's token bucket and
// asserts the 429 carries Retry-After while a second tenant's traffic
// is untouched, with the denial counted in /stats and /metrics.
func TestQuotaExhaustion429(t *testing.T) {
	s, ts := newTestServer(t, Config{
		QuotaRPS:   1,
		QuotaBurst: 2,
		runSim: func(rc experiment.RunConfig) (sim.Result, error) {
			return sim.Result{PolicyName: rc.PolicyName, MeasuredS: rc.MeasureS}, nil
		},
	})
	// Freeze the quota clock so buckets cannot refill mid-test.
	frozen := time.Now()
	s.quota.now = func() time.Time { return frozen }

	asTenant := func(tenant string) (*http.Response, []byte) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/run", strings.NewReader(shortRun))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, b
	}

	// Tenant A's burst of 2 is admitted; the third request is denied.
	for i := 0; i < 2; i++ {
		resp, b := asTenant("tenant-a")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tenant-a request %d: status %d: %s", i, resp.StatusCode, b)
		}
	}
	resp, b := asTenant("tenant-a")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("tenant-a over-quota request: status %d, want 429: %s", resp.StatusCode, b)
	}
	retryAfterSecs(t, resp)

	// Tenant B is isolated: its own bucket is full.
	resp, b = asTenant("tenant-b")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant-b request: status %d, want 200: %s", resp.StatusCode, b)
	}

	st := s.Stats()
	if st.Admission.Quota == nil {
		t.Fatal("/stats admission.quota absent with quotas enabled")
	}
	if st.Admission.Quota.Denied != 1 {
		t.Errorf("/stats quota.denied = %d, want 1", st.Admission.Quota.Denied)
	}
	if st.Admission.Quota.Tenants != 2 {
		t.Errorf("/stats quota.tenants = %d, want 2", st.Admission.Quota.Tenants)
	}
	if got := scrapeMetric(t, ts, "thermbal_quota_denied_total"); got != 1 {
		t.Errorf("thermbal_quota_denied_total = %g, want 1", got)
	}
	if got := scrapeMetric(t, ts, "thermbal_quota_tenants"); got != 2 {
		t.Errorf("thermbal_quota_tenants = %g, want 2", got)
	}
}

// TestInteractiveOvertakesBulk saturates a single execution slot,
// queues a bulk sweep's cells behind it, then arrives an interactive
// /run and asserts the freed slot goes to the interactive request
// ahead of every already-waiting bulk cell.
func TestInteractiveOvertakesBulk(t *testing.T) {
	var (
		mu      sync.Mutex
		order   []string
		release = make(chan struct{})
	)
	s, ts := newTestServer(t, Config{
		MaxSims: 1,
		// Runs are told apart by their distinct measure_s: the holder
		// measures 1, the sweep cells 2, the late interactive run 3.
		runSim: func(rc experiment.RunConfig) (sim.Result, error) {
			mu.Lock()
			order = append(order, fmt.Sprintf("%g", rc.MeasureS))
			mu.Unlock()
			<-release
			return sim.Result{PolicyName: rc.PolicyName, MeasuredS: rc.MeasureS}, nil
		},
	})

	executed := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(order)
	}

	// 1. An interactive run takes the only slot and parks in the engine.
	const holder = `{"scenario":"sdr-radio","policy":"tb","delta":3,"warmup_s":0.5,"measure_s":1}`
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, b := do(t, http.MethodPost, ts.URL+"/run", holder)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("holder /run: status %d: %s", resp.StatusCode, b)
		}
	}()
	waitFor(t, "holder to enter the engine", func() bool { return executed() == 1 })

	// 2. A bulk sweep's cells queue behind it at bulk priority.
	const sweep = `{"matrix":{"scenarios":["sdr-radio"],"policies":["eb","tb"],"delta":3,"warmup_s":0.5,"measure_s":2}}`
	resp, b := do(t, http.MethodPost, ts.URL+"/jobs", sweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job submit: status %d: %s", resp.StatusCode, b)
	}
	var submitted JobStatus
	if err := json.Unmarshal(b, &submitted); err != nil {
		t.Fatalf("decode job submit: %v", err)
	}
	waitFor(t, "sweep cells to wait for a slot", func() bool {
		waiting, _ := s.slots.depths()
		return waiting[prioBulk] >= 1
	})

	// 3. A new interactive run arrives after the bulk cells are queued.
	const interactive = `{"scenario":"sdr-radio","policy":"tb","delta":3,"warmup_s":0.5,"measure_s":3}`
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, b := do(t, http.MethodPost, ts.URL+"/run", interactive)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("interactive /run: status %d: %s", resp.StatusCode, b)
		}
	}()
	waitFor(t, "interactive run to wait for a slot", func() bool {
		waiting, _ := s.slots.depths()
		return waiting[prioInteractive] == 1
	})

	// Saturation is visible in /stats before anything is released.
	st := s.Stats()
	if st.Admission.ExecQueue.Free != 0 || st.Admission.ExecQueue.WaitingInteractive != 1 {
		t.Errorf("/stats exec_queue = %+v, want 0 free and 1 interactive waiter", st.Admission.ExecQueue)
	}

	// 4. Free the slot: it must be handed to the interactive waiter even
	// though bulk cells were queued first.
	release <- struct{}{}
	waitFor(t, "the freed slot's next execution", func() bool { return executed() == 2 })
	mu.Lock()
	second := order[1]
	mu.Unlock()
	if second != "3" {
		t.Fatalf("second execution measures %s s, want the interactive run (3 s) ahead of the bulk cells (order %v)", second, order)
	}

	// 5. Drain everything: the interactive run, then both sweep cells.
	release <- struct{}{}
	release <- struct{}{}
	release <- struct{}{}
	wg.Wait()
	waitFor(t, "sweep job to finish", func() bool {
		resp, b := do(t, http.MethodGet, ts.URL+"/jobs/"+submitted.ID, "")
		if resp.StatusCode != http.StatusOK {
			return false
		}
		var jst JobStatus
		if err := json.Unmarshal(b, &jst); err != nil {
			return false
		}
		return jst.State == JobDone
	})
	if got := executed(); got != 4 {
		t.Errorf("executions = %d (%v), want 4 (holder, interactive, 2 cells)", got, order)
	}
}

// TestShedByCost fills the pending simulated-seconds budget and
// asserts new work is refused with 503 + Retry-After while cached keys
// are still served, and that shed counts reconcile across /stats and
// /metrics.
func TestShedByCost(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{
		MaxSims:        1,
		MaxPendingSimS: 2,
		runSim: func(rc experiment.RunConfig) (sim.Result, error) {
			<-release
			return sim.Result{PolicyName: rc.PolicyName, MeasuredS: rc.MeasureS}, nil
		},
	})

	// Each of these costs warmup+measure = 1.5 simulated seconds, so a
	// second admission would need 3.0 against the budget of 2.
	const runA = `{"scenario":"sdr-radio","policy":"tb","delta":3,"warmup_s":0.5,"measure_s":1}`
	const runB = `{"scenario":"sdr-radio","policy":"eb","delta":3,"warmup_s":0.5,"measure_s":1}`
	const runC = `{"scenario":"sdr-radio","policy":"tb","delta":4,"warmup_s":0.5,"measure_s":1}`

	var wg sync.WaitGroup
	start := func(body string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, b := do(t, http.MethodPost, ts.URL+"/run", body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("admitted /run: status %d: %s", resp.StatusCode, b)
			}
		}()
	}

	// runA is admitted (idle budget) and parks in the engine holding its
	// 1.5s reservation.
	start(runA)
	waitFor(t, "runA's cost reservation", func() bool { return s.budget.pendingSimS() == 1.5 })

	// runB would overflow the budget: shed, with Retry-After.
	resp, b := do(t, http.MethodPost, ts.URL+"/run", runB)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-budget /run: status %d, want 503: %s", resp.StatusCode, b)
	}
	retryAfterSecs(t, resp)

	// Let runA finish; its result is now cached and its reservation
	// released.
	release <- struct{}{}
	wg.Wait()
	waitFor(t, "runA's reservation release", func() bool { return s.budget.pendingSimS() == 0 })

	// Fill the budget again with runC, then assert the shed applies only
	// to work that would execute: fresh runB is refused, cached runA is
	// served.
	start(runC)
	waitFor(t, "runC's cost reservation", func() bool { return s.budget.pendingSimS() == 1.5 })
	resp, _ = do(t, http.MethodPost, ts.URL+"/run", runB)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second over-budget /run: status %d, want 503", resp.StatusCode)
	}
	retryAfterSecs(t, resp)
	resp, _ = do(t, http.MethodPost, ts.URL+"/run", runA)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("cached /run under full budget: status %d, X-Cache %q; want 200 hit",
			resp.StatusCode, resp.Header.Get("X-Cache"))
	}

	// Both refusals are counted, once each, in /stats and /metrics.
	st := s.Stats()
	if st.Admission.Shed.Cost != 2 {
		t.Errorf("/stats shed.cost = %d, want 2", st.Admission.Shed.Cost)
	}
	if st.Admission.PendingSimS != 1.5 {
		t.Errorf("/stats pending_sim_s = %g, want 1.5", st.Admission.PendingSimS)
	}
	if st.Admission.MaxPendingSimS != 2 {
		t.Errorf("/stats max_pending_sim_s = %g, want 2", st.Admission.MaxPendingSimS)
	}
	if got := scrapeMetric(t, ts, `thermbal_shed_total{reason="cost"}`); got != 2 {
		t.Errorf(`thermbal_shed_total{reason="cost"} = %g, want 2`, got)
	}
	if got := scrapeMetric(t, ts, "thermbal_pending_sim_seconds"); got != 1.5 {
		t.Errorf("thermbal_pending_sim_seconds = %g, want 1.5", got)
	}

	release <- struct{}{}
	wg.Wait()
}

// TestJobQueueFullRetryAfter fills the async job queue and asserts the
// structural 503 also carries Retry-After and increments the
// queue_full shed counter.
func TestJobQueueFullRetryAfter(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{
		JobWorkers: 1,
		QueueDepth: 1,
		MaxSims:    1,
		runSim: func(rc experiment.RunConfig) (sim.Result, error) {
			<-release
			return sim.Result{PolicyName: rc.PolicyName, MeasuredS: rc.MeasureS}, nil
		},
	})

	submit := func(delta int) (*http.Response, []byte) {
		body := fmt.Sprintf(`{"run":{"scenario":"sdr-radio","policy":"tb","delta":%d,"warmup_s":0.5,"measure_s":1}}`, delta)
		return do(t, http.MethodPost, ts.URL+"/jobs", body)
	}

	// Job 1 is claimed by the single worker and parks in the engine.
	resp, b := submit(1)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: status %d: %s", resp.StatusCode, b)
	}
	waitFor(t, "job 1 to start running", func() bool {
		return s.jobs.stats(1).Running == 1
	})

	// Job 2 fills the queue; job 3 is refused with Retry-After.
	resp, b = submit(2)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: status %d: %s", resp.StatusCode, b)
	}
	resp, b = submit(3)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("job 3: status %d, want 503: %s", resp.StatusCode, b)
	}
	retryAfterSecs(t, resp)

	st := s.Stats()
	if st.Admission.Shed.QueueFull != 1 {
		t.Errorf("/stats shed.queue_full = %d, want 1", st.Admission.Shed.QueueFull)
	}
	if st.Jobs.QueueCap != 1 {
		t.Errorf("/stats jobs.queue_cap = %d, want 1", st.Jobs.QueueCap)
	}
	if got := scrapeMetric(t, ts, `thermbal_shed_total{reason="queue_full"}`); got != 1 {
		t.Errorf(`thermbal_shed_total{reason="queue_full"} = %g, want 1`, got)
	}

	// Drain both accepted jobs.
	release <- struct{}{}
	release <- struct{}{}
	waitFor(t, "accepted jobs to finish", func() bool {
		js := s.jobs.stats(1)
		return js.Done == 2
	})
}
