package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"thermbal/internal/experiment"
	"thermbal/internal/obs"
	"thermbal/internal/store"
)

// openProvStore opens a store the way cmd/thermservd does for a
// provenance-enabled server: journal pinned and the engine version
// stamped into every record.
func openProvStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{
		Pinned:  JournalPinned,
		NoSync:  true,
		Version: experiment.EngineVersion,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

var keyRE = regexp.MustCompile(`^[0-9a-f]{64}$`)

// getProof fetches /proof?key= and decodes the document on 200.
func getProof(t *testing.T, base, key string) (int, proofDoc, []byte) {
	t.Helper()
	resp, body := do(t, http.MethodGet, base+"/proof?key="+key, "")
	var doc proofDoc
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("proof body: %v\n%s", err, body)
		}
	}
	return resp.StatusCode, doc, body
}

// TestProofEndpointEndToEnd is the acceptance test for the /proof
// surface: a /run body's X-Content-Key yields a verifiable inclusion
// proof once sealed, the 409/404 refusals map correctly, the /stats
// and /metrics counters reconcile, and everything survives a restart
// byte-identically.
func TestProofEndpointEndToEnd(t *testing.T) {
	dir := t.TempDir()
	st1 := openProvStore(t, dir)
	s1, ts1 := newTestServer(t, Config{Store: st1})

	resp, runBody := do(t, http.MethodPost, ts1.URL+"/run", shortRun)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/run: %d: %s", resp.StatusCode, runBody)
	}
	key := resp.Header.Get("X-Content-Key")
	if !keyRE.MatchString(key) {
		t.Fatalf("X-Content-Key = %q, want 64 hex chars", key)
	}

	// Before any seal the record sits in the active segment: 409.
	if code, _, body := getProof(t, ts1.URL, key); code != http.StatusConflict {
		t.Fatalf("pre-seal /proof = %d, want 409: %s", code, body)
	}

	if resp, body := do(t, http.MethodPost, ts1.URL+"/seal", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("/seal: %d: %s", resp.StatusCode, body)
	}

	code, doc, raw := getProof(t, ts1.URL, key)
	if code != http.StatusOK {
		t.Fatalf("post-seal /proof = %d: %s", code, raw)
	}
	if doc.SchemaVersion != experiment.SchemaVersion {
		t.Errorf("proof schema_version = %d, want %d", doc.SchemaVersion, experiment.SchemaVersion)
	}
	if doc.Leaf.Key != key {
		t.Errorf("proof leaf key = %q, want %q", doc.Leaf.Key, key)
	}
	if doc.Leaf.Version != experiment.EngineVersion {
		t.Errorf("proof engine_version = %q, want %q", doc.Leaf.Version, experiment.EngineVersion)
	}
	if err := doc.Proof.VerifyBody(runBody); err != nil {
		t.Errorf("proof does not verify against the served body: %v", err)
	}
	// A proof for a different body must fail.
	if err := doc.Proof.VerifyBody(append([]byte(nil), raw...)); err == nil {
		t.Error("proof verified a body it does not commit to")
	}

	// Unknown key → 404; missing key → 400 (before the store is asked).
	if code, _, _ := getProof(t, ts1.URL, strings.Repeat("0", 64)); code != http.StatusNotFound {
		t.Errorf("unknown key /proof = %d, want 404", code)
	}
	if resp, _ := do(t, http.MethodGet, ts1.URL+"/proof", ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("keyless /proof = %d, want 400", resp.StatusCode)
	}

	stats := s1.Stats()
	if stats.Store == nil {
		t.Fatal("store stats absent")
	}
	if stats.Store.ProofsServed != 1 || stats.Store.ProofErrors != 2 {
		t.Errorf("proofs_served/proof_errors = %d/%d, want 1/2",
			stats.Store.ProofsServed, stats.Store.ProofErrors)
	}
	if stats.Store.SealedSegments < 1 || stats.Store.ChainLen < 1 {
		t.Errorf("sealed_segments %d / chain_len %d, want >= 1", stats.Store.SealedSegments, stats.Store.ChainLen)
	}
	if stats.Store.UnsealedRecords != 0 {
		t.Errorf("unsealed_records = %d, want 0 after seal", stats.Store.UnsealedRecords)
	}

	_, mbody := do(t, http.MethodGet, ts1.URL+"/metrics", "")
	text := string(mbody)
	for series, want := range map[string]float64{
		"thermbal_proofs_served_total":          1,
		"thermbal_proof_errors_total":           2,
		"thermbal_proof_duration_seconds_count": 3, // 409 + 200 + 404 lookups
		"thermbal_store_sealed_segments":        float64(stats.Store.SealedSegments),
		"thermbal_store_seals_total":            float64(stats.Store.Seals),
		"thermbal_store_unsealed_records":       0,
		"thermbal_store_tainted_segments":       0,
	} {
		if got := promValue(t, text, series); got != want {
			t.Errorf("%s = %g, want %g", series, got, want)
		}
	}

	// Restart on the same data dir (no store close: kill semantics).
	// The store-served body must carry the same key, and the proof must
	// come back bit-identical — same root, same chain position.
	ts1.Close()
	st2 := openProvStore(t, dir)
	defer st2.Close()
	s2, ts2 := newTestServer(t, Config{Store: st2})
	resp, warmBody := do(t, http.MethodPost, ts2.URL+"/run", shortRun)
	if got := resp.Header.Get("X-Cache"); got != "store" {
		t.Fatalf("restarted X-Cache = %q, want store", got)
	}
	if got := resp.Header.Get("X-Content-Key"); got != key {
		t.Errorf("restarted X-Content-Key = %q, want %q", got, key)
	}
	code, doc2, raw2 := getProof(t, ts2.URL, key)
	if code != http.StatusOK {
		t.Fatalf("restarted /proof = %d: %s", code, raw2)
	}
	if doc2.Root != doc.Root || doc2.Chain != doc.Chain || doc2.Index != doc.Index {
		t.Errorf("restarted proof differs: root %s chain %s index %d, want %s/%s/%d",
			doc2.Root, doc2.Chain, doc2.Index, doc.Root, doc.Chain, doc.Index)
	}
	if err := doc2.Proof.VerifyBody(warmBody); err != nil {
		t.Errorf("restarted proof does not verify: %v", err)
	}
	if st := s2.Stats().Store; st.TaintedSegments != 0 {
		t.Errorf("restart tainted %d segments on clean data", st.TaintedSegments)
	}
}

// TestMatrixContentKeyAndProof: /matrix responses carry their sweep
// key, and the assembled sweep body itself is provable after a seal.
func TestMatrixContentKeyAndProof(t *testing.T) {
	st := openProvStore(t, t.TempDir())
	t.Cleanup(func() { st.Close() })
	_, ts := newTestServer(t, Config{Store: st})

	matrixReq := `{"scenarios":["sdr-radio"],"policies":["none","tb"],"delta":3,"warmup_s":0.2,"measure_s":0.4}`
	resp, body := do(t, http.MethodPost, ts.URL+"/matrix", matrixReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/matrix: %d: %s", resp.StatusCode, body)
	}
	key := resp.Header.Get("X-Content-Key")
	if !keyRE.MatchString(key) {
		t.Fatalf("matrix X-Content-Key = %q, want 64 hex chars", key)
	}
	if resp, b := do(t, http.MethodPost, ts.URL+"/seal", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("/seal: %d: %s", resp.StatusCode, b)
	}
	code, doc, raw := getProof(t, ts.URL, key)
	if code != http.StatusOK {
		t.Fatalf("matrix /proof = %d: %s", code, raw)
	}
	if err := doc.Proof.VerifyBody(body); err != nil {
		t.Errorf("matrix proof does not verify against the sweep body: %v", err)
	}
}

// TestProofRefusedMemoryOnly: without a store, /proof and /seal are
// 404s, and /metrics renders no proof or store families at all.
func TestProofRefusedMemoryOnly(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if resp, _ := do(t, http.MethodGet, ts.URL+"/proof?key="+strings.Repeat("0", 64), ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("memory-only /proof = %d, want 404", resp.StatusCode)
	}
	if resp, _ := do(t, http.MethodPost, ts.URL+"/seal", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("memory-only /seal = %d, want 404", resp.StatusCode)
	}
	_, body := do(t, http.MethodGet, ts.URL+"/metrics", "")
	if text := string(body); strings.Contains(text, "thermbal_proof") {
		t.Error("/metrics renders proof series on a store-less server")
	}
}

// failWriter fails every write, driving the CSV logger's sticky error.
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

// TestDropCountersInMetrics: the always-on trace-drop families render
// on every server, and a failed timing log surfaces as the failed
// gauge plus a dropped-records counter instead of failing requests.
func TestDropCountersInMetrics(t *testing.T) {
	log := obs.NewCSVLogger(failWriter{}, true) // header write trips the sticky error
	_, ts := newTestServer(t, Config{TimingLog: log})
	do(t, http.MethodPost, ts.URL+"/run", shortRun)
	do(t, http.MethodPost, ts.URL+"/run", shortRun)

	_, body := do(t, http.MethodGet, ts.URL+"/metrics", "")
	text := string(body)
	// Process-wide totals: other tests in the package may have dropped
	// trace samples, so presence and non-negativity are the contract.
	if v := promValue(t, text, `thermbal_trace_dropped_total{kind="samples"}`); v < 0 {
		t.Errorf("trace samples dropped = %g", v)
	}
	if v := promValue(t, text, `thermbal_trace_dropped_total{kind="events"}`); v < 0 {
		t.Errorf("trace events dropped = %g", v)
	}
	if v := promValue(t, text, "thermbal_timing_log_failed"); v != 1 {
		t.Errorf("timing_log_failed = %g, want 1", v)
	}
	if v := promValue(t, text, "thermbal_timing_log_dropped_total"); v != 2 {
		t.Errorf("timing_log_dropped_total = %g, want 2 (both /run records)", v)
	}
}

// TestObserveProofZeroAllocs: proof bookkeeping on the serving path —
// one histogram observation — allocates nothing, like the request
// path it rides next to.
func TestObserveProofZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	st := openProvStore(t, t.TempDir())
	defer st.Close()
	s := New(Config{Store: st})
	defer s.Close()
	allocs := testing.AllocsPerRun(1000, func() {
		s.metrics.observeProof(3 * time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("observeProof allocates %.1f times per call, want 0", allocs)
	}
}
