package service

import (
	"bytes"
	"testing"
)

func TestLRUCacheEvictsLeastRecentlyUsed(t *testing.T) {
	c := newLRUCache(2)
	c.Add("a", []byte("A"))
	c.Add("b", []byte("B"))
	if _, ok := c.Get("a"); !ok { // refresh a; b is now LRU
		t.Fatal("a missing")
	}
	c.Add("c", []byte("C")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b survived past capacity")
	}
	if body, ok := c.Get("a"); !ok || !bytes.Equal(body, []byte("A")) {
		t.Errorf("a = %q, %v", body, ok)
	}
	if body, ok := c.Get("c"); !ok || !bytes.Equal(body, []byte("C")) {
		t.Errorf("c = %q, %v", body, ok)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Capacity != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 3/1", st.Hits, st.Misses)
	}
}

func TestLRUCacheRefreshExistingKey(t *testing.T) {
	c := newLRUCache(2)
	c.Add("a", []byte("A"))
	c.Add("b", []byte("B"))
	c.Add("a", []byte("A2")) // refresh, no growth
	c.Add("c", []byte("C"))  // evicts b, not a
	if _, ok := c.Get("b"); ok {
		t.Error("b survived; refresh did not update recency")
	}
	if body, ok := c.Get("a"); !ok || string(body) != "A2" {
		t.Errorf("a = %q, %v", body, ok)
	}
}
