// Package service is the simulation-serving layer: a long-running
// HTTP/JSON job server over the deterministic experiment engine.
//
// The design leans entirely on the engine's bit-for-bit determinism
// (the integer-tick clock and event-horizon fast path): because the
// same fully-resolved configuration always produces the same bytes,
// results are content-addressed. Every request is canonicalized —
// aliases resolved, defaults filled — and hashed into a stable cache
// key; responses are stored as fully-encoded bodies in a bounded LRU,
// so a cache hit is byte-identical to the cold run that populated it.
// Identical in-flight requests are coalesced singleflight-style: N
// concurrent identical requests execute the simulation once and all
// receive the same body.
//
// Endpoints: /scenarios and /policies (registry catalogues), /run
// (synchronous, small jobs), /matrix (batched scenarios × policies
// sweep), /jobs + /jobs/{id} (bounded async queue: submit, poll,
// cancel), /proof (a Merkle inclusion proof for one stored result,
// see internal/provenance), /stats (cache/coalescing/job counters
// plus per-stage latency quantiles), /metrics (Prometheus text
// exposition of the same histograms) and /healthz. Every /run and
// /matrix response carries an X-Timing header with its per-stage
// timings (see internal/obs) and an X-Content-Key header with the
// canonical content address — the key to pass to /proof.
// cmd/thermservd is the binary; `thermsim -json` emits the same
// versioned result schema through the same encoder.
package service

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"thermbal/internal/experiment"
	"thermbal/internal/obs"
	"thermbal/internal/sim"
	"thermbal/internal/store"
)

// Config parameterises a Server. The zero value is ready to use.
type Config struct {
	// CacheEntries bounds the result cache (default 512 bodies).
	CacheEntries int
	// JobWorkers bounds concurrently executing async jobs
	// (default GOMAXPROCS).
	JobWorkers int
	// QueueDepth bounds submitted-but-not-started jobs; a full queue
	// rejects submissions with 503 (default 64).
	QueueDepth int
	// JobRetention bounds how many finished (done/failed/cancelled)
	// jobs stay pollable; older ones are pruned with their result
	// bodies so the job table cannot grow without bound (default 256).
	JobRetention int
	// MaxSims bounds single-run simulations executing concurrently
	// across the sync endpoints and the job workers (default
	// 2×GOMAXPROCS). Detached sync executions are otherwise unbounded
	// in number — every distinct canonical config starts one — so
	// without a cap a burst of distinct requests could exhaust the
	// machine; beyond the cap, executions queue for a slot. Matrix
	// jobs decompose into per-cell runs that hold MaxSims slots like
	// any other; synchronous /matrix sweeps are bounded separately —
	// they execute one at a time (each saturates its own Runner pool),
	// so total engine concurrency is at most MaxSims + Runner workers.
	MaxSims int
	// Runner is the worker pool /matrix sweeps and matrix jobs run on
	// (zero value: GOMAXPROCS workers).
	Runner experiment.Runner
	// MaxSyncSimS bounds the simulated seconds (warmup + measure) a
	// synchronous /run accepts; longer runs must go through the async
	// /jobs queue (default 600).
	MaxSyncSimS float64
	// MaxPendingSimS bounds the total estimated simulated seconds of
	// admitted-but-unfinished work — executing sync requests plus the
	// whole remaining cost of accepted jobs. Work that would push the
	// backlog past the bound is shed with 503 + Retry-After instead of
	// queueing unboundedly; cache and store hits are never shed. The
	// default is 20×MaxSyncSimS; negative disables the bound.
	MaxPendingSimS float64
	// QuotaRPS enables per-tenant token-bucket quotas: each tenant
	// (TenantHeader value, else remote IP) may sustain QuotaRPS
	// requests per second on the costed endpoints (/run, /matrix,
	// POST /jobs) with bursts up to QuotaBurst; beyond that the
	// request is refused with 429 + Retry-After. 0 disables quotas.
	QuotaRPS float64
	// QuotaBurst is the token-bucket depth (default ceil(2×QuotaRPS),
	// minimum 1).
	QuotaBurst float64
	// TenantHeader names the request header that identifies the
	// tenant for quota accounting (default "X-Tenant"); requests
	// without it fall back to the remote IP.
	TenantHeader string
	// TimingLog, when non-nil, receives one CSV record per /run and
	// /matrix request (cmd/thermservd's -timing-log flag). Logging is
	// off the measured path: the record is appended after the response
	// is written.
	TimingLog *obs.CSVLogger
	// Store, when non-nil, is the durable content-addressed result
	// store layered under the in-memory cache: cache misses fall
	// through to it before executing, every executed result is
	// appended to it, and unfinished jobs journaled in it are
	// re-submitted on New — so a warm restart serves byte-identical
	// bodies and resumes sweeps from their completed cells. The caller
	// owns the store and closes it after Close. Pass store.Options
	// with Pinned: service.JournalPinned when opening it, so size
	// eviction cannot drop the job journal.
	Store *store.Store

	// runSim / runMatrix substitute the execution seams. In-package
	// tests inject blocking or counting stubs here — before New spawns
	// any goroutine, so no synchronization is needed — to observe
	// coalescing deterministically. nil selects the real engine.
	runSim    func(rc experiment.RunConfig) (sim.Result, error)
	runMatrix func(ctx context.Context, mc experiment.MatrixConfig, opt experiment.Options) ([]experiment.MatrixCell, error)
}

func (c Config) fill() Config {
	if c.CacheEntries <= 0 {
		c.CacheEntries = 512
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 256
	}
	if c.MaxSims <= 0 {
		c.MaxSims = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxSyncSimS <= 0 {
		c.MaxSyncSimS = 600
	}
	if c.MaxPendingSimS == 0 {
		c.MaxPendingSimS = 20 * c.MaxSyncSimS
	}
	if c.MaxPendingSimS < 0 {
		c.MaxPendingSimS = 0 // explicit "unbounded"
	}
	if c.TenantHeader == "" {
		c.TenantHeader = "X-Tenant"
	}
	return c
}

// Server executes canonicalized simulation requests behind a
// content-addressed cache, an in-flight coalescing layer and a bounded
// async job queue. Create with New, expose with Handler, stop with
// Close.
type Server struct {
	cfg       Config
	cache     *lruCache
	flight    flightGroup
	jobs      jobManager
	slots     *prioSlots    // single-run execution slots (MaxSims), priority-classed
	sweepSlot chan struct{} // matrix executions, serialized (cap 1)
	budget    costBudget    // admitted-but-unfinished simulated seconds
	quota     *tenantQuotas // per-tenant token buckets; nil when disabled
	base      context.Context
	stop      context.CancelFunc
	start     time.Time
	metrics   *serverMetrics

	// shed counts overload refusals by reason (see shedReasonNames);
	// every one of them was answered with 503 + Retry-After.
	shed [numShedReasons]atomic.Int64

	// executions counts actual engine runs (one per coalesced group;
	// cache and store hits execute nothing).
	executions atomic.Int64
	// storeServes counts responses served straight from the durable
	// store (a warm restart's first requests); storeErrors counts
	// store read/write failures, which degrade to memory-only service
	// instead of failing the request.
	storeServes atomic.Int64
	storeErrors atomic.Int64
	// proofsServed / proofErrors count /proof outcomes: served is a
	// 200 with an inclusion proof, errors is everything the store
	// refused (unknown key, unsealed tail, tainted segment). Together
	// they reconcile with the /proof request count.
	proofsServed atomic.Int64
	proofErrors  atomic.Int64

	// runSim / runMatrix are the execution seams; tests substitute
	// them to observe or control execution counts deterministically.
	runSim    func(rc experiment.RunConfig) (sim.Result, error)
	runMatrix func(ctx context.Context, mc experiment.MatrixConfig, opt experiment.Options) ([]experiment.MatrixCell, error)
}

// New builds a Server and starts its job workers.
func New(cfg Config) *Server {
	cfg = cfg.fill()
	s := &Server{
		cfg:       cfg,
		cache:     newLRUCache(cfg.CacheEntries),
		slots:     newPrioSlots(cfg.MaxSims),
		sweepSlot: make(chan struct{}, 1),
		start:     time.Now(),
		runSim:    cfg.runSim,
		runMatrix: cfg.runMatrix,
	}
	s.budget.max = cfg.MaxPendingSimS
	if cfg.QuotaRPS > 0 {
		s.quota = newTenantQuotas(cfg.QuotaRPS, cfg.QuotaBurst)
	}
	if s.runSim == nil {
		s.runSim = func(rc experiment.RunConfig) (sim.Result, error) {
			res, _, err := experiment.Run(rc)
			return res, err
		}
	}
	if s.runMatrix == nil {
		s.runMatrix = func(ctx context.Context, mc experiment.MatrixConfig, opt experiment.Options) ([]experiment.MatrixCell, error) {
			return experiment.MatrixWith(ctx, opt, mc)
		}
	}
	s.base, s.stop = context.WithCancel(context.Background())
	s.metrics = newServerMetrics(s)
	s.jobs.init(cfg.QueueDepth, cfg.JobRetention)
	// The job manager reserves a job's whole estimated cost against
	// the pending budget at submit and releases it at any final state;
	// journal-recovered jobs reserve unconditionally (force) — they
	// were admitted by a previous process and must not be stranded.
	s.jobs.reserveCost = func(j *job, force bool) error {
		if force {
			s.budget.forceReserve(j.cost)
			return nil
		}
		if !s.budget.admit(j.cost) {
			s.shed[shedCost].Add(1)
			return &shedError{retryAfter: shedRetryAfter(s.budget.pendingSimS(), s.cfg.MaxSims)}
		}
		return nil
	}
	s.jobs.releaseCost = func(j *job) { s.budget.release(j.cost) }
	s.initJournal()
	// Journaled jobs from a previous process are re-enqueued before the
	// workers start; their completed cells are already in the store, so
	// a resumed sweep executes only what is missing.
	s.recoverJobs()
	for i := 0; i < cfg.JobWorkers; i++ {
		go s.jobWorker()
	}
	return s
}

// Close stops the job workers and abandons queued jobs. In-flight
// simulations run to completion (they are not interruptible) but no
// new job starts.
func (s *Server) Close() { s.stop() }

// execute serves one canonical request's encoded body: in-memory
// cache first, then the durable store, then the coalescing layer,
// then build — an actual engine execution plus encoding — whose
// result is cached under key and appended to the store. cls carries
// the execution's admission parameters: its cost in estimated
// simulated seconds (reserved against the pending budget before the
// engine is touched; a reservation the budget refuses sheds the
// request with 503 instead of queueing it) and its slot priority —
// sweeps hold the dedicated serialized sweep slot, everything else
// queues for a MaxSims slot at its class, interactive ahead of bulk.
// Only work that would actually execute pays any of this: cache hits,
// store hits and coalesced waiters reserve nothing and are never
// shed. Distinct keys only — identical requests are coalesced and
// never queue twice. The returned cache state is "hit" (memory),
// "store" (durable store, after a restart), "miss" (this caller
// executed) or "coalesced" (another caller's execution was shared).
// ctx bounds only this caller's wait: the execution itself is
// detached, so one disconnecting client neither starves the coalesced
// others nor wastes the result — it still lands in the cache and the
// store.
//
// rec is the caller's timing record. The execution stamps its own
// stage boundaries (queue wait, execute, encode, store append) into a
// record owned by the detached goroutine — never the caller's, which
// may have abandoned its wait — and observes them into the stage
// histograms itself; the caller's rec inherits the stamps only when it
// was the leader that saw the execution through (flight.Do copies
// them). A coalesced waiter's rec instead carries its coalesce wait.
func (s *Server) execute(ctx context.Context, key string, cls execClass, rec *obs.TimingRecord, build func(er *obs.TimingRecord) ([]byte, error)) ([]byte, string, error) {
	if body, state, ok := s.lookup(key, false); ok {
		return body, state, nil
	}
	// leaderState records how the leader's closure actually served the
	// key: the re-check under the flight can find the body without
	// executing, and reporting that as "miss" would miscount a matrix
	// cell as executed. Reading it is safe exactly when this caller was
	// the (uncancelled) leader — the closure completed-before Do
	// returned.
	leaderState := "miss"
	body, shared, err := s.flight.Do(ctx, key, rec, func(er *obs.TimingRecord) ([]byte, error) {
		// Re-check under the flight: a previous leader for this key may
		// have cached the body between our lookup and becoming leader,
		// and the engine run is far too expensive to duplicate.
		if body, state, ok := s.lookup(key, true); ok {
			leaderState = state
			return body, nil
		}
		// Cost admission precedes the slot queue: a backlogged server
		// refuses new work up front (bounded Retry-After) rather than
		// parking it behind an unbounded line of predecessors.
		if !s.budget.admit(cls.cost) {
			s.shed[shedCost].Add(1)
			return nil, &shedError{retryAfter: shedRetryAfter(s.budget.pendingSimS(), s.cfg.MaxSims)}
		}
		defer s.budget.release(cls.cost)
		qStart := time.Now()
		if cls.prio < 0 {
			// The serialized sweep slot: sync /matrix bodies, one at a
			// time (each saturates its own Runner pool).
			s.sweepSlot <- struct{}{}
			defer func() { <-s.sweepSlot }()
		} else {
			if err := s.slots.acquire(s.base, cls.prio); err != nil {
				return nil, err // server closing
			}
			defer s.slots.release()
		}
		er.D[obs.StageQueue] = time.Since(qStart)
		s.executions.Add(1)
		body, err := build(er)
		stored := false
		if err == nil {
			s.cache.Add(key, body)
			if s.cfg.Store != nil {
				pStart := time.Now()
				s.storePut(key, body)
				er.D[obs.StageStore] = time.Since(pStart)
				stored = true
			}
		}
		// Observed here, by the detached execution itself, so the stage
		// histogram counts equal the executions counter even when every
		// waiter has disconnected.
		s.metrics.observeExecution(er, stored)
		if err != nil {
			return nil, err
		}
		return body, nil
	})
	if err != nil {
		return nil, "", err
	}
	state := leaderState
	if shared {
		state = "coalesced"
		s.metrics.stages[obs.StageCoalesce].Observe(rec.D[obs.StageCoalesce])
	}
	return body, state, nil
}

// lookup is the shared read ladder every serving path goes through:
// the in-memory cache first, then the durable store — a store hit is
// re-cached and counted as a serve. state is "hit" or "store". recheck
// selects the flight leader's variant, whose cache probe must not
// count a second miss (the caller's original lookup already did).
func (s *Server) lookup(key string, recheck bool) ([]byte, string, bool) {
	var body []byte
	var ok bool
	if recheck {
		body, ok = s.cache.peek(key)
	} else {
		body, ok = s.cache.Get(key)
	}
	if ok {
		return body, "hit", true
	}
	if body, ok := s.storeGet(key); ok {
		s.cache.Add(key, body)
		s.storeServes.Add(1)
		return body, "store", true
	}
	return nil, "", false
}

// storeGet reads key from the durable store, if one is configured. A
// store read error is counted and treated as a miss: the request can
// still be served by executing.
func (s *Server) storeGet(key string) ([]byte, bool) {
	if s.cfg.Store == nil {
		return nil, false
	}
	body, ok, err := s.cfg.Store.Get(key)
	if err != nil {
		s.storeErrors.Add(1)
		return nil, false
	}
	return body, ok
}

// storePut appends key's body to the durable store, if one is
// configured. A write error is counted but does not fail the request:
// the result is still served (and cached in memory); it is just not
// durable.
func (s *Server) storePut(key string, body []byte) {
	if s.cfg.Store == nil {
		return
	}
	if err := s.cfg.Store.Put(key, body); err != nil {
		s.storeErrors.Add(1)
	}
}

// executeRun serves one canonical run request on the MaxSims slots at
// the given admission class (sync /run is interactive; job runs and
// decomposed sweep cells are bulk). key is canon.Key(), computed once
// by the caller so the handler can stamp it into the X-Content-Key
// header without hashing twice.
func (s *Server) executeRun(ctx context.Context, key string, cls execClass, canon Request, rc experiment.RunConfig, rec *obs.TimingRecord) ([]byte, string, error) {
	return s.execute(ctx, key, cls, rec, func(er *obs.TimingRecord) ([]byte, error) {
		t := time.Now()
		res, err := s.runSim(rc)
		er.D[obs.StageExecute] = time.Since(t)
		if err != nil {
			return nil, err
		}
		t = time.Now()
		body, err := EncodeDoc(NewRunDoc(canon, res))
		er.D[obs.StageEncode] = time.Since(t)
		return body, err
	})
}

// executeMatrix serves one canonical scenarios × policies sweep. The
// sweep runs under the server's base context (detached from any one
// caller, cancelled on Close) across the configured Runner pool; it
// holds the dedicated sweep slot, not a MaxSims one — a sweep fans out
// over its whole pool, so running them one at a time keeps total
// engine concurrency bounded by MaxSims + Runner workers. Its whole
// cross-product cost is reserved against the pending budget.
func (s *Server) executeMatrix(ctx context.Context, key string, canon MatrixRequest, mc experiment.MatrixConfig, opt experiment.Options, rec *obs.TimingRecord) ([]byte, string, error) {
	return s.execute(ctx, key, execClass{prio: prioSweep, cost: canon.simSeconds()}, rec, func(er *obs.TimingRecord) ([]byte, error) {
		t := time.Now()
		cells, err := s.runMatrix(s.base, mc, opt)
		er.D[obs.StageExecute] = time.Since(t)
		if err != nil {
			return nil, err
		}
		t = time.Now()
		doc, err := NewMatrixDoc(canon, cells)
		if err != nil {
			return nil, err
		}
		body, err := EncodeDoc(doc)
		er.D[obs.StageEncode] = time.Since(t)
		return body, err
	})
}

// StatsDoc is the /stats response: the cache, coalescing and job
// counters.
type StatsDoc struct {
	SchemaVersion int `json:"schema_version"`
	// UptimeS is the seconds since the server was created.
	UptimeS float64 `json:"uptime_s"`
	// Executions counts actual engine runs (cache hits and coalesced
	// waiters execute nothing).
	Executions int64 `json:"executions"`
	// Inflight is the number of distinct executions running (or
	// waiting for an execution slot) right now.
	Inflight int `json:"inflight"`
	// MaxSims is the concurrent-execution cap Inflight queues behind.
	MaxSims int `json:"max_sims"`
	// Coalesced is the total number of requests served by waiting on
	// another request's identical in-flight execution.
	Coalesced uint64 `json:"coalesced"`
	// Cache holds the result-cache counters. Misses count lookups that
	// fell through to the store/execution/coalescing layers, so a
	// store-served or coalesced request counts one miss and no
	// execution.
	Cache CacheStats `json:"cache"`
	// Store holds the durable-store counters; absent when the server
	// runs memory-only.
	Store *StoreStats `json:"store,omitempty"`
	// Jobs holds the async-queue counters.
	Jobs JobStats `json:"jobs"`
	// Latency holds per-endpoint and per-stage p50/p95/p99, estimated
	// from the same fixed-bucket histograms /metrics exposes.
	Latency LatencyStats `json:"latency"`
	// Admission holds the overload-control counters: the pending
	// simulated-seconds backlog against its budget, per-priority
	// execution-queue depth, cumulative shed counts by reason, and the
	// per-tenant quota table (when quotas are enabled).
	Admission AdmissionStats `json:"admission"`
}

// AdmissionStats is the /stats admission block — what a dashboard
// needs to see saturation directly instead of inferring it from 503
// rates.
type AdmissionStats struct {
	// MaxPendingSimS is the simulated-seconds budget (0: unbounded);
	// PendingSimS is the backlog currently reserved against it.
	MaxPendingSimS float64 `json:"max_pending_sim_s"`
	PendingSimS    float64 `json:"pending_sim_s"`
	// ExecQueue is the MaxSims execution-slot queue: free slots and
	// waiters per priority class.
	ExecQueue ExecQueueStats `json:"exec_queue"`
	// Shed counts overload refusals (503 + Retry-After) by reason.
	Shed ShedStats `json:"shed"`
	// Quota is the per-tenant token-bucket state; absent when quotas
	// are disabled.
	Quota *QuotaStats `json:"quota,omitempty"`
}

// ExecQueueStats is the execution-slot queue: capacity, free slots and
// per-priority waiter depth.
type ExecQueueStats struct {
	MaxSims            int `json:"max_sims"`
	Free               int `json:"free"`
	WaitingInteractive int `json:"waiting_interactive"`
	WaitingBulk        int `json:"waiting_bulk"`
}

// ShedStats counts load-shedding decisions by reason: "cost" is the
// simulated-seconds budget refusing new work, "queue_full" is the
// structural pending-job bound.
type ShedStats struct {
	Cost      int64 `json:"cost"`
	QueueFull int64 `json:"queue_full"`
}

// QuotaStats is the per-tenant quota block of /stats.
type QuotaStats struct {
	// RPS and Burst are the configured token-bucket parameters.
	RPS   float64 `json:"rps"`
	Burst float64 `json:"burst"`
	// Tenants is the number of live buckets (tenants seen recently
	// enough that their bucket has not fully refilled and been pruned).
	Tenants int `json:"tenants"`
	// Denied is the cumulative 429 count.
	Denied int64 `json:"denied"`
}

// StoreStats is the /stats durable-store block: the store's own
// segment/record/recovery counters plus the service-level ones.
type StoreStats struct {
	store.Stats
	// Serves counts responses served straight from the durable store —
	// a warm restart's cache misses that executed nothing.
	Serves int64 `json:"serves"`
	// Errors counts store read/write failures (requests still succeed,
	// degraded to memory-only).
	Errors int64 `json:"errors"`
	// ProofsServed counts /proof responses carrying an inclusion
	// proof; ProofErrors counts /proof requests the store refused
	// (unknown key, record still in the unsealed active segment, or a
	// tainted segment).
	ProofsServed int64 `json:"proofs_served"`
	ProofErrors  int64 `json:"proof_errors"`
}

// Stats snapshots the server counters.
func (s *Server) Stats() StatsDoc {
	inflight, coalesced := s.flight.counts()
	doc := StatsDoc{
		SchemaVersion: experiment.SchemaVersion,
		UptimeS:       time.Since(s.start).Seconds(),
		Executions:    s.executions.Load(),
		Inflight:      inflight,
		MaxSims:       s.cfg.MaxSims,
		Coalesced:     coalesced,
		Cache:         s.cache.Stats(),
		Jobs:          s.jobs.stats(s.cfg.JobWorkers),
		Latency:       s.metrics.latency(),
		Admission:     s.admissionStats(),
	}
	if s.cfg.Store != nil {
		doc.Store = &StoreStats{
			Stats:        s.cfg.Store.Stats(),
			Serves:       s.storeServes.Load(),
			Errors:       s.storeErrors.Load(),
			ProofsServed: s.proofsServed.Load(),
			ProofErrors:  s.proofErrors.Load(),
		}
	}
	return doc
}

// admissionStats assembles the /stats admission block.
func (s *Server) admissionStats() AdmissionStats {
	waiting, free := s.slots.depths()
	st := AdmissionStats{
		MaxPendingSimS: s.cfg.MaxPendingSimS,
		PendingSimS:    s.budget.pendingSimS(),
		ExecQueue: ExecQueueStats{
			MaxSims:            s.cfg.MaxSims,
			Free:               free,
			WaitingInteractive: waiting[prioInteractive],
			WaitingBulk:        waiting[prioBulk],
		},
		Shed: ShedStats{
			Cost:      s.shed[shedCost].Load(),
			QueueFull: s.shed[shedQueueFull].Load(),
		},
	}
	if s.quota != nil {
		tenants, denied := s.quota.stats()
		st.Quota = &QuotaStats{
			RPS:     s.quota.rps,
			Burst:   s.quota.burst,
			Tenants: tenants,
			Denied:  denied,
		}
	}
	return st
}

var errQueueFull = fmt.Errorf("job queue full; retry later")
