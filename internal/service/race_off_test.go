//go:build !race

package service

// raceEnabled reports that this binary was built with -race.
const raceEnabled = false
