package service

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent executions of the same key
// (singleflight): the first caller executes fn, every concurrent
// caller with the same key waits for that execution and shares its
// result, so N identical in-flight requests cost one simulation.
type flightGroup struct {
	mu        sync.Mutex
	calls     map[string]*flightCall
	coalesced uint64 // total waiters served by another caller's run
}

type flightCall struct {
	done chan struct{}
	body []byte
	err  error
}

// Do returns the body for key, executing fn at most once across all
// concurrent callers of the key. fn runs in its own goroutine,
// detached from any single caller's context: one client disconnecting
// neither starves the coalesced others nor discards the result. ctx
// bounds only how long this caller waits. shared reports whether this
// caller attached to an execution another caller started.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() ([]byte, error)) (body []byte, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = map[string]*flightCall{}
	}
	if c, ok := g.calls[key]; ok {
		g.coalesced++
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.body, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()
	go func() {
		c.body, c.err = fn()
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()
	select {
	case <-c.done:
		return c.body, false, c.err
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// counts snapshots the in-flight call count and the cumulative
// coalesced-waiter count.
func (g *flightGroup) counts() (inflight int, coalesced uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls), g.coalesced
}
