package service

import (
	"context"
	"sync"
	"time"

	"thermbal/internal/obs"
)

// flightGroup coalesces concurrent executions of the same key
// (singleflight): the first caller executes fn, every concurrent
// caller with the same key waits for that execution and shares its
// result, so N identical in-flight requests cost one simulation.
type flightGroup struct {
	mu        sync.Mutex
	calls     map[string]*flightCall
	coalesced uint64 // total waiters served by another caller's run
}

type flightCall struct {
	done chan struct{}
	body []byte
	err  error
	// rec is the execution's own timing record: fn stamps its stage
	// boundaries here, never into any caller's record — callers can
	// abandon their wait while the detached execution keeps running.
	// Written only by the execution goroutine before done closes, so
	// reading it after <-done is race-free.
	rec obs.TimingRecord
}

// Do returns the body for key, executing fn at most once across all
// concurrent callers of the key. fn runs in its own goroutine,
// detached from any single caller's context: one client disconnecting
// neither starves the coalesced others nor discards the result. ctx
// bounds only how long this caller waits. shared reports whether this
// caller attached to an execution another caller started.
//
// rec carries the caller's per-request timing: a leader that saw its
// execution complete inherits the execution's stage stamps; a waiter
// (shared) gets its coalesce wait stamped instead — that is the stage
// the waiter actually spent its time in, whether or not the leader's
// execution finished in time for it.
func (g *flightGroup) Do(ctx context.Context, key string, rec *obs.TimingRecord, fn func(er *obs.TimingRecord) ([]byte, error)) (body []byte, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = map[string]*flightCall{}
	}
	if c, ok := g.calls[key]; ok {
		g.coalesced++
		g.mu.Unlock()
		wait := time.Now()
		select {
		case <-c.done:
			rec.D[obs.StageCoalesce] = time.Since(wait)
			return c.body, true, c.err
		case <-ctx.Done():
			rec.D[obs.StageCoalesce] = time.Since(wait)
			return nil, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()
	go func() {
		c.body, c.err = fn(&c.rec)
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()
	select {
	case <-c.done:
		// The uncancelled leader inherits the execution's stage stamps
		// (fn completed before done closed, so this read is ordered).
		rec.D = c.rec.D
		return c.body, false, c.err
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// counts snapshots the in-flight call count and the cumulative
// coalesced-waiter count.
func (g *flightGroup) counts() (inflight int, coalesced uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls), g.coalesced
}
