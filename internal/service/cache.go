package service

import (
	"container/list"
	"sync"
)

// CacheStats is a snapshot of the result cache's counters.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// lruCache is a bounded, mutex-guarded LRU keyed by content address.
// Values are fully-encoded response bodies: a hit serves exactly the
// bytes the populating run produced, which together with the engine's
// determinism makes cached and fresh responses indistinguishable.
type lruCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key  string
	body []byte
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the body cached under key, refreshing its recency.
func (c *lruCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry).body, true
}

// peek is Get for the flight leader's re-check: a find counts a hit,
// but falling through does not count a second miss — the client's
// original lookup already did.
func (c *lruCache) peek(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry).body, true
}

// Add inserts (or refreshes) key's body, evicting least-recently-used
// entries beyond capacity.
func (c *lruCache) Add(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Stats snapshots the counters.
func (c *lruCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Capacity:  c.cap,
	}
}
