//go:build race

package service

// raceEnabled reports that this binary was built with -race; the
// allocation assertions skip themselves under it (the race runtime
// instruments allocations and breaks AllocsPerRun counts).
const raceEnabled = true
