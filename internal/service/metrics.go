package service

import (
	"time"

	"thermbal/internal/obs"
	"thermbal/internal/trace"
)

// Cache outcomes, indexed for allocation-free lookup on the hot path.
// The spellings match the X-Cache header values.
const (
	outHit = iota
	outStore
	outMiss
	outCoalesced
	outError
	numOutcomes
)

var outcomeNames = [numOutcomes]string{"hit", "store", "miss", "coalesced", "error"}

func outcomeIndex(state string) int {
	switch state {
	case "hit":
		return outHit
	case "store":
		return outStore
	case "miss":
		return outMiss
	case "coalesced":
		return outCoalesced
	default:
		return outError
	}
}

// Endpoints with per-request timing records.
const (
	epRun = iota
	epMatrix
	numEndpoints
)

var endpointNames = [numEndpoints]string{"run", "matrix"}

// serverMetrics holds the server's pre-registered instruments. Every
// histogram and counter the request path touches is resolved to a
// pointer here at startup, so recording is array indexing plus atomic
// adds — no name lookups, no label formatting, no allocation — cheap
// enough for the cached-request path.
//
// Counts are designed to reconcile with /stats exactly:
// thermbal_stage_duration_seconds_count{stage="execute"} equals the
// /stats executions counter (both increment once per engine run,
// matrix cells included), and thermbal_requests_total sums the serving
// outcomes the X-Cache header reports.
type serverMetrics struct {
	reg *obs.Registry
	// stages is one histogram per timed stage; execution-side stages
	// (queue, execute, encode, store) are observed once per engine run
	// by the detached execution itself, the coalesce stage once per
	// waiter that attached to another caller's run.
	stages [obs.NumStages]*obs.Histogram
	// requests / requestsTotal split whole-request latency by endpoint
	// and cache outcome ("cache hit vs store hit vs executed" are
	// distinct labels, plus coalesced and error).
	requests      [numEndpoints][numOutcomes]*obs.Histogram
	requestsTotal [numEndpoints][numOutcomes]*obs.Counter
	// jobQueueWait is submit-to-claim wait in the async job queue;
	// jobDuration is claim-to-finish, labelled by job kind.
	jobQueueWait *obs.Histogram
	jobDuration  [numEndpoints]*obs.Histogram
	// proofDuration times /proof store lookups (building the Merkle
	// path). nil on a memory-only server, which has no proofs to time.
	proofDuration *obs.Histogram
}

// newServerMetrics registers every instrument. Registration order is
// render order on /metrics.
func newServerMetrics(s *Server) *serverMetrics {
	r := obs.NewRegistry()
	m := &serverMetrics{reg: r}
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		m.stages[st] = r.NewHistogram("thermbal_stage_duration_seconds",
			"Time spent in each request stage, observed once per occurrence.",
			obs.DefBuckets, obs.L("stage", obs.StageNames[st]))
	}
	for ep := 0; ep < numEndpoints; ep++ {
		for o := 0; o < numOutcomes; o++ {
			m.requests[ep][o] = r.NewHistogram("thermbal_request_duration_seconds",
				"Whole-request latency by endpoint and cache outcome.",
				obs.DefBuckets, obs.L("endpoint", endpointNames[ep]), obs.L("outcome", outcomeNames[o]))
		}
	}
	for ep := 0; ep < numEndpoints; ep++ {
		for o := 0; o < numOutcomes; o++ {
			m.requestsTotal[ep][o] = r.NewCounter("thermbal_requests_total",
				"Requests served by endpoint and cache outcome.",
				obs.L("endpoint", endpointNames[ep]), obs.L("outcome", outcomeNames[o]))
		}
	}
	m.jobQueueWait = r.NewHistogram("thermbal_job_queue_wait_seconds",
		"Async job wait from submission to a worker claiming it.", obs.DefBuckets)
	for ep := 0; ep < numEndpoints; ep++ {
		m.jobDuration[ep] = r.NewHistogram("thermbal_job_duration_seconds",
			"Async job run time from claim to finish, by kind.",
			obs.DefBuckets, obs.L("kind", endpointNames[ep]))
	}

	// Scrape-time mirrors of the /stats counters, so a Prometheus
	// scraper can reconcile the latency series against the same
	// counts /stats reports without a second bookkeeping path.
	r.NewCounterFunc("thermbal_executions_total",
		"Engine runs executed (cache, store and coalesced serves excluded).",
		func() float64 { return float64(s.executions.Load()) })
	r.NewCounterFunc("thermbal_coalesced_total",
		"Requests served by waiting on another caller's identical in-flight execution.",
		func() float64 { _, coalesced := s.flight.counts(); return float64(coalesced) })
	r.NewCounterFunc("thermbal_cache_hits_total", "Result-cache hits.",
		func() float64 { return float64(s.cache.Stats().Hits) })
	r.NewCounterFunc("thermbal_cache_misses_total", "Result-cache misses.",
		func() float64 { return float64(s.cache.Stats().Misses) })
	r.NewCounterFunc("thermbal_cache_evictions_total", "Result-cache evictions.",
		func() float64 { return float64(s.cache.Stats().Evictions) })
	r.NewGaugeFunc("thermbal_cache_entries", "Result-cache bodies held.",
		func() float64 { return float64(s.cache.Stats().Entries) })
	r.NewGaugeFunc("thermbal_inflight", "Distinct executions in flight.",
		func() float64 { inflight, _ := s.flight.counts(); return float64(inflight) })
	r.NewGaugeFunc("thermbal_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	if s.cfg.Store != nil {
		r.NewCounterFunc("thermbal_store_serves_total",
			"Responses served straight from the durable store.",
			func() float64 { return float64(s.storeServes.Load()) })
		r.NewCounterFunc("thermbal_store_errors_total",
			"Durable-store read/write failures (requests degrade to memory-only).",
			func() float64 { return float64(s.storeErrors.Load()) })
		r.NewGaugeFunc("thermbal_store_bytes", "Durable-store size on disk.",
			func() float64 { return float64(s.cfg.Store.Stats().Bytes) })
		// The provenance families: seal events, the sealed/unsealed
		// record split (unsealed records are provable only after the
		// next rotation), taint, and /proof serving. Scrape-time
		// mirrors of the same counters /stats reports under "store".
		m.proofDuration = r.NewHistogram("thermbal_proof_duration_seconds",
			"Time to build one Merkle inclusion proof for /proof.", obs.DefBuckets)
		r.NewCounterFunc("thermbal_proofs_served_total",
			"Inclusion proofs served by /proof.",
			func() float64 { return float64(s.proofsServed.Load()) })
		r.NewCounterFunc("thermbal_proof_errors_total",
			"/proof requests the store refused (unknown key, unsealed tail, tainted segment).",
			func() float64 { return float64(s.proofErrors.Load()) })
		r.NewCounterFunc("thermbal_store_seals_total",
			"Segments sealed into the Merkle chain (rotation, compaction, retro-seal).",
			func() float64 { return float64(s.cfg.Store.Stats().Seals) })
		r.NewCounterFunc("thermbal_store_seal_errors_total",
			"Failed seal attempts (the segment stays unsealed; records remain servable).",
			func() float64 { return float64(s.cfg.Store.Stats().SealErrors) })
		r.NewGaugeFunc("thermbal_store_sealed_segments",
			"Segments sealed under a Merkle root in the provenance manifest.",
			func() float64 { return float64(s.cfg.Store.Stats().SealedSegments) })
		r.NewGaugeFunc("thermbal_store_unsealed_records",
			"Records in the active segment, not yet provable (sealed at the next rotation).",
			func() float64 { return float64(s.cfg.Store.Stats().UnsealedRecords) })
		r.NewGaugeFunc("thermbal_store_tainted_segments",
			"Sealed segments whose recomputed root no longer matches the manifest.",
			func() float64 { return float64(s.cfg.Store.Stats().TaintedSegments) })
	}
	// Recorder drops are engine-side truncation: a capped trace means a
	// run's CSV timeline is incomplete, which an operator should see
	// without grepping logs.
	r.NewCounterFunc("thermbal_trace_dropped_total",
		"Trace samples discarded at recorder buffer caps, process-wide.",
		func() float64 { return float64(trace.TotalDroppedSamples()) },
		obs.L("kind", "samples"))
	r.NewCounterFunc("thermbal_trace_dropped_total",
		"Trace events discarded at recorder buffer caps, process-wide.",
		func() float64 { return float64(trace.TotalDroppedEvents()) },
		obs.L("kind", "events"))
	if s.cfg.TimingLog != nil {
		r.NewGaugeFunc("thermbal_timing_log_failed",
			"1 when the timing log hit its sticky write error and stopped recording.",
			func() float64 {
				if s.cfg.TimingLog.Err() != nil {
					return 1
				}
				return 0
			})
		r.NewCounterFunc("thermbal_timing_log_dropped_total",
			"Timing records discarded after the log's sticky write error.",
			func() float64 { return float64(s.cfg.TimingLog.Dropped()) })
	}
	for _, state := range []JobState{JobPending, JobRunning, JobDone, JobFailed, JobCancelled} {
		state := state
		r.NewGaugeFunc("thermbal_jobs", "Async jobs by lifecycle state.",
			func() float64 { return float64(s.jobs.countState(state)) },
			obs.L("state", string(state)))
	}
	// Admission-control families: scrape-time mirrors of the /stats
	// admission block, so shed counts reconcile exactly between the two.
	for reason := 0; reason < numShedReasons; reason++ {
		reason := reason
		r.NewCounterFunc("thermbal_shed_total",
			"Requests refused with 503 + Retry-After, by shed reason.",
			func() float64 { return float64(s.shed[reason].Load()) },
			obs.L("reason", shedReasonNames[reason]))
	}
	r.NewGaugeFunc("thermbal_pending_sim_seconds",
		"Estimated simulated seconds admitted but not yet finished.",
		func() float64 { return s.budget.pendingSimS() })
	for prio := 0; prio < numPriorities; prio++ {
		prio := prio
		r.NewGaugeFunc("thermbal_exec_queue_depth",
			"Goroutines waiting for an execution slot, by priority class.",
			func() float64 { w, _ := s.slots.depths(); return float64(w[prio]) },
			obs.L("priority", prioNames[prio]))
	}
	r.NewGaugeFunc("thermbal_exec_slots_free",
		"Execution slots currently free (of -max-sims).",
		func() float64 { _, free := s.slots.depths(); return float64(free) })
	if s.quota != nil {
		r.NewCounterFunc("thermbal_quota_denied_total",
			"Requests refused with 429 + Retry-After by per-tenant quotas.",
			func() float64 { _, denied := s.quota.stats(); return float64(denied) })
		r.NewGaugeFunc("thermbal_quota_tenants",
			"Tenants with a live token bucket (idle tenants are pruned).",
			func() float64 { tenants, _ := s.quota.stats(); return float64(tenants) })
	}
	return m
}

// observeExecution records the execution-side stages of one engine
// run. Called by the detached execution goroutine after the run (and
// its store append, when one happened), so the stage counts equal the
// executions counter whether or not the originating caller is still
// waiting. stored selects whether the store-append stage occurred; a
// memory-only server never feeds zeros into the store histogram.
func (m *serverMetrics) observeExecution(er *obs.TimingRecord, stored bool) {
	m.stages[obs.StageQueue].Observe(er.D[obs.StageQueue])
	m.stages[obs.StageExecute].Observe(er.D[obs.StageExecute])
	m.stages[obs.StageEncode].Observe(er.D[obs.StageEncode])
	if stored {
		m.stages[obs.StageStore].Observe(er.D[obs.StageStore])
	}
}

// observeProof records one /proof store lookup. Guarded because the
// histogram is registered only on stores-backed servers; handleProof
// rejects before the lookup when there is no store, so a nil here is
// unreachable in practice.
func (m *serverMetrics) observeProof(d time.Duration) {
	if m.proofDuration != nil {
		m.proofDuration.Observe(d)
	}
}

// observeRequest records one finished request: the total-latency
// histogram and counter for its endpoint and outcome. This is the
// entire recording cost of a cache hit — two atomic adds on
// pre-registered instruments — and is asserted allocation-free.
func (m *serverMetrics) observeRequest(ep int, rec *obs.TimingRecord) {
	o := outcomeIndex(rec.Outcome)
	m.requests[ep][o].Observe(rec.Total)
	m.requestsTotal[ep][o].Inc()
}

// StageQuantiles is one latency summary in the /stats latency block:
// observation count plus p50/p95/p99 estimated from the fixed-bucket
// histograms (interpolated within buckets, so they are estimates with
// bucket-width resolution, not exact order statistics).
type StageQuantiles struct {
	Count uint64  `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// LatencyStats is the /stats latency block: whole-request quantiles
// per endpoint (merged across cache outcomes) and per-stage quantiles.
type LatencyStats struct {
	Run      StageQuantiles `json:"run"`
	Matrix   StageQuantiles `json:"matrix"`
	Queue    StageQuantiles `json:"queue"`
	Coalesce StageQuantiles `json:"coalesce"`
	Execute  StageQuantiles `json:"execute"`
	Encode   StageQuantiles `json:"encode"`
	Store    StageQuantiles `json:"store"`
}

func quantilesOf(hs []*obs.Histogram) StageQuantiles {
	toMs := func(s float64) float64 { return s * 1e3 }
	return StageQuantiles{
		Count: obs.MergedCount(hs),
		P50Ms: toMs(obs.MergedQuantile(hs, 0.50)),
		P95Ms: toMs(obs.MergedQuantile(hs, 0.95)),
		P99Ms: toMs(obs.MergedQuantile(hs, 0.99)),
	}
}

// latency assembles the /stats latency block from the histograms.
func (m *serverMetrics) latency() LatencyStats {
	one := func(h *obs.Histogram) StageQuantiles { return quantilesOf([]*obs.Histogram{h}) }
	return LatencyStats{
		Run:      quantilesOf(m.requests[epRun][:]),
		Matrix:   quantilesOf(m.requests[epMatrix][:]),
		Queue:    one(m.stages[obs.StageQueue]),
		Coalesce: one(m.stages[obs.StageCoalesce]),
		Execute:  one(m.stages[obs.StageExecute]),
		Encode:   one(m.stages[obs.StageEncode]),
		Store:    one(m.stages[obs.StageStore]),
	}
}
