package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"thermbal/internal/experiment"
	"thermbal/internal/obs"
)

// JobState enumerates a job's lifecycle. Pending jobs sit in the
// bounded queue and are the only cancellable state: once a job is
// running its execution is atomic (DELETE returns 409).
type JobState string

const (
	JobPending   JobState = "pending"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// JobRequest is the wire body of POST /jobs: one run or one matrix
// sweep. Kind defaults to "matrix" when only the matrix block is set,
// "run" otherwise (an entirely empty body is a valid default run).
type JobRequest struct {
	Kind   string         `json:"kind"`
	Run    *Request       `json:"run,omitempty"`
	Matrix *MatrixRequest `json:"matrix,omitempty"`
}

// JobProgress is the per-cell progress of a matrix job: the sweep is
// decomposed into one task per (scenario, policy) cell, each persisted
// individually, so a poll shows how far the sweep has advanced and how
// much of it was already on disk.
type JobProgress struct {
	// TotalCells is the size of the scenarios × policies cross product.
	TotalCells int `json:"total_cells"`
	// CompletedCells counts cells whose result body is settled.
	CompletedCells int `json:"completed_cells"`
	// ExecutedCells counts cells this job actually ran on the engine;
	// CachedCells counts cells served from the cache, the durable
	// store (a resumed sweep) or another request's in-flight execution.
	ExecutedCells int `json:"executed_cells"`
	CachedCells   int `json:"cached_cells"`
}

// JobStatus is the wire view of one job. Result is embedded once the
// job is done and is byte-identical to the synchronous response for
// the same canonical request (both come out of the shared cache).
type JobStatus struct {
	SchemaVersion int      `json:"schema_version"`
	ID            string   `json:"id"`
	Kind          string   `json:"kind"`
	State         JobState `json:"state"`
	// Key is the content address of the canonical request.
	Key string `json:"key"`
	// Run / Matrix is the canonical request (one of the two, by Kind).
	Run    *Request       `json:"run,omitempty"`
	Matrix *MatrixRequest `json:"matrix,omitempty"`
	Error  string         `json:"error,omitempty"`
	// Recovered marks a job re-submitted from the durable job journal
	// after a restart.
	Recovered bool `json:"recovered,omitempty"`
	// Progress is the per-cell progress (matrix jobs only).
	Progress *JobProgress `json:"progress,omitempty"`
	// SubmittedAt / StartedAt / FinishedAt are wall-clock stamps.
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
	// Result is the schema document, present when State is "done".
	Result json.RawMessage `json:"result,omitempty"`
}

// JobStats is the /stats job block.
type JobStats struct {
	Workers   int `json:"workers"`
	QueueCap  int `json:"queue_cap"`
	Pending   int `json:"pending"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	// Recovered counts jobs re-submitted from the durable job journal
	// at startup (also counted in their lifecycle state above).
	Recovered int `json:"recovered,omitempty"`
}

// cellTask is one (scenario, policy) cell of a decomposed matrix
// sweep: a fully canonical run request plus its execution
// configuration. Its content address (req.Key()) is identical to a
// direct /run of the same configuration.
type cellTask struct {
	req Request
	rc  experiment.RunConfig
}

// job is the manager-internal record; its mutable fields are guarded
// by the owning jobManager's mutex.
type job struct {
	id        string
	kind      string
	key       string
	recovered bool
	// cost is the job's estimated simulated seconds (warmup + measure,
	// summed over a sweep's cells), reserved against the server's
	// pending budget from acceptance until any final state.
	cost float64

	run    *Request
	matrix *MatrixRequest
	rc     experiment.RunConfig
	cells  []cellTask // matrix jobs: the decomposed sweep

	state     JobState
	errText   string
	body      []byte
	progress  JobProgress
	submitted time.Time
	started   time.Time
	finished  time.Time
	done      chan struct{} // closed when the job reaches a final state
}

// jobManager owns the job table and the bounded pending queue.
type jobManager struct {
	mu        sync.Mutex
	byID      map[string]*job
	order     []*job
	queue     chan *job
	seq       int
	retain    int // finished jobs kept for polling; older ones are pruned
	recovered int // jobs re-submitted from the journal at startup; survives pruning

	// journalPut / journalClear persist and tombstone a job's journal
	// record (nil when the server runs memory-only). Both are invoked
	// while m.mu is held, which is what keeps the journal consistent
	// with the job table: a record exists from the moment a job is
	// accepted until no live job shares its canonical identity — no
	// window where a fast-finishing job's clear can race its own put,
	// or where a duplicate's put interleaves with a sibling's clear.
	// The cost of that guarantee is store I/O under m.mu: while the
	// store compacts (a whole-log rewrite when it crosses its size
	// budget), a journal write blocks and the job API stalls with it.
	// Accepted deliberately — the alternative (async journal writes)
	// would let an accepted job miss the journal across a crash.
	journalPut   func(j *job)
	journalClear func(j *job)

	// reserveCost / releaseCost hook the server's pending
	// simulated-seconds budget (nil in manager-only tests). reserveCost
	// runs at submit, before the job is registered: a refusal sheds the
	// submission with 503 + Retry-After. force bypasses the shed
	// decision for journal-recovered jobs — they were admitted by a
	// previous process, and recovery must not strand them — while still
	// reserving their cost so the budget stays truthful. releaseCost
	// runs when the job reaches any final state.
	reserveCost func(j *job, force bool) error
	releaseCost func(j *job)
}

func (m *jobManager) init(queueDepth, retain int) {
	m.byID = map[string]*job{}
	m.queue = make(chan *job, queueDepth)
	m.retain = retain
}

// maybeClearJournalLocked tombstones j's journal record unless another
// live job shares it: duplicate submissions of the same canonical
// request coexist in the job table but have one journal record, and
// removing it while a duplicate is still pending/running would strip
// that job's crash recovery. The last of the duplicates to finish (or
// be cancelled) clears the record. Callers hold m.mu.
func (m *jobManager) maybeClearJournalLocked(j *job) {
	if m.journalClear == nil {
		return
	}
	for _, other := range m.order {
		if other != j && other.kind == j.kind && other.key == j.key &&
			(other.state == JobPending || other.state == JobRunning) {
			return
		}
	}
	m.journalClear(j)
}

// pruneLocked drops the oldest finished jobs beyond the retention
// bound so the long-running server's job table (and the result bodies
// it holds) stays bounded like the result cache. Pending and running
// jobs are never pruned. Callers hold m.mu.
func (m *jobManager) pruneLocked() {
	finished := 0
	for _, j := range m.order {
		if j.state != JobPending && j.state != JobRunning {
			finished++
		}
	}
	if finished <= m.retain {
		return
	}
	kept := m.order[:0]
	for _, j := range m.order {
		if finished > m.retain && j.state != JobPending && j.state != JobRunning {
			delete(m.byID, j.id)
			finished--
			continue
		}
		kept = append(kept, j)
	}
	// Zero the freed tail so pruned jobs are collectable.
	for i := len(kept); i < len(m.order); i++ {
		m.order[i] = nil
	}
	m.order = kept
}

// submit canonicalizes jr, registers the job and enqueues it; a full
// queue rejects with errQueueFull before anything is registered.
// Matrix jobs are decomposed at submit time into per-cell run tasks,
// so every name resolves (or fails) before the job is accepted.
func (m *jobManager) submit(jr JobRequest, recovered bool) (*job, error) {
	kind := jr.Kind
	if kind == "" {
		if jr.Matrix != nil && jr.Run == nil {
			kind = "matrix"
		} else {
			kind = "run"
		}
	}
	j := &job{kind: kind, recovered: recovered, state: JobPending, submitted: time.Now(), done: make(chan struct{})}
	switch kind {
	case "run":
		var req Request
		if jr.Run != nil {
			req = *jr.Run
		}
		canon, rc, err := Canonicalize(req)
		if err != nil {
			return nil, err
		}
		j.run, j.rc, j.key = &canon, rc, canon.Key()
		j.cost = canon.WarmupS + canon.MeasureS
	case "matrix":
		var req MatrixRequest
		if jr.Matrix != nil {
			req = *jr.Matrix
		}
		canon, _, err := CanonicalizeMatrix(req)
		if err != nil {
			return nil, err
		}
		cells, err := matrixCells(canon)
		if err != nil {
			return nil, err
		}
		j.matrix, j.cells, j.key = &canon, cells, canon.Key()
		j.progress = JobProgress{TotalCells: len(cells)}
		j.cost = canon.simSeconds()
	default:
		return nil, fmt.Errorf("unknown job kind %q (run | matrix)", kind)
	}
	// The whole job's cost is reserved before it can enter the queue:
	// a backlog already at its simulated-seconds budget sheds new jobs
	// here instead of letting the pending queue grow unboundedly in
	// work (the flat queue depth below remains as a structural
	// backstop).
	if m.reserveCost != nil {
		if err := m.reserveCost(j, recovered); err != nil {
			return nil, err
		}
	}
	m.mu.Lock()
	m.seq++
	j.id = "j" + strconv.Itoa(m.seq)
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		if m.releaseCost != nil {
			m.releaseCost(j)
		}
		return nil, errQueueFull
	}
	if recovered {
		m.recovered++
	}
	m.byID[j.id] = j
	m.order = append(m.order, j)
	// Journaled before m.mu is released: a worker that receives j off
	// the queue cannot claim — let alone finish — it until this lock is
	// dropped, so the record always exists by the time any final-state
	// transition could try to clear it.
	if m.journalPut != nil {
		m.journalPut(j)
	}
	m.mu.Unlock()
	return j, nil
}

// get returns the job by id.
func (m *jobManager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.byID[id]
	return j, ok
}

// list returns the jobs in submission order.
func (m *jobManager) list() []*job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*job(nil), m.order...)
}

// claim transitions a queued job to running; it reports false when the
// job was cancelled while pending.
func (m *jobManager) claim(j *job) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j.state != JobPending {
		return false
	}
	j.state = JobRunning
	j.started = time.Now()
	return true
}

// finish records a job's outcome and clears its journal record (when
// no duplicate still relies on it).
func (m *jobManager) finish(j *job, body []byte, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j.finished = time.Now()
	switch {
	case err != nil:
		j.state = JobFailed
		j.errText = err.Error()
	default:
		j.state = JobDone
		j.body = body
	}
	close(j.done)
	if m.releaseCost != nil {
		m.releaseCost(j)
	}
	m.maybeClearJournalLocked(j)
	m.pruneLocked()
}

// cancel cancels a pending job. Running jobs cannot be interrupted
// (the engine is atomic per run); finished jobs are immutable. It
// returns the job's state after the attempt and whether the cancel
// took effect.
func (m *jobManager) cancel(id string) (*job, bool, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.byID[id]
	if !ok {
		return nil, false, false
	}
	if j.state != JobPending {
		return j, true, false
	}
	j.state = JobCancelled
	j.errText = "cancelled before start"
	j.finished = time.Now()
	close(j.done)
	if m.releaseCost != nil {
		m.releaseCost(j)
	}
	m.maybeClearJournalLocked(j)
	m.pruneLocked()
	return j, true, true
}

// status snapshots a job's wire view.
func (m *jobManager) status(j *job) JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := JobStatus{
		SchemaVersion: experiment.SchemaVersion,
		ID:            j.id,
		Kind:          j.kind,
		State:         j.state,
		Key:           j.key,
		Run:           j.run,
		Matrix:        j.matrix,
		Error:         j.errText,
		Recovered:     j.recovered,
		SubmittedAt:   j.submitted,
		StartedAt:     j.started,
		FinishedAt:    j.finished,
	}
	if j.kind == "matrix" {
		p := j.progress
		st.Progress = &p
	}
	if j.state == JobDone {
		st.Result = json.RawMessage(j.body)
	}
	return st
}

// cellDone records one settled cell of a matrix job. state is the
// cache state its executeRun returned: "miss" means this job ran the
// engine for the cell; anything else ("hit", "store", "coalesced")
// means the result already existed or was shared.
func (m *jobManager) cellDone(j *job, state string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j.progress.CompletedCells++
	if state == "miss" {
		j.progress.ExecutedCells++
	} else {
		j.progress.CachedCells++
	}
}

// allCellsCached marks a matrix job whose whole-sweep body was already
// cached or stored: every cell is settled without executing anything.
func (m *jobManager) allCellsCached(j *job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j.progress.CompletedCells = j.progress.TotalCells
	j.progress.CachedCells = j.progress.TotalCells
}

// countState counts jobs currently in one lifecycle state (the
// /metrics per-state gauges).
func (m *jobManager) countState(state JobState) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, j := range m.order {
		if j.state == state {
			n++
		}
	}
	return n
}

// stats counts jobs by state.
func (m *jobManager) stats(workers int) JobStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	js := JobStats{Workers: workers, QueueCap: cap(m.queue), Recovered: m.recovered}
	for _, j := range m.order {
		switch j.state {
		case JobPending:
			js.Pending++
		case JobRunning:
			js.Running++
		case JobDone:
			js.Done++
		case JobFailed:
			js.Failed++
		case JobCancelled:
			js.Cancelled++
		}
	}
	return js
}

// jobWorker drains the pending queue until the server closes.
func (s *Server) jobWorker() {
	for {
		select {
		case <-s.base.Done():
			return
		case j := <-s.jobs.queue:
			if !s.jobs.claim(j) {
				continue // cancelled while queued
			}
			// claim stamped j.started under the manager lock; reading
			// the stamps after it returned is ordered. The queue-wait
			// histogram is the job-path analogue of the request path's
			// queue stage: time the work sat accepted-but-unstarted.
			s.metrics.jobQueueWait.Observe(j.started.Sub(j.submitted))
			kind := epRun
			if j.kind == "matrix" {
				kind = epMatrix
			}
			var body []byte
			var err error
			switch j.kind {
			case "matrix":
				body, err = s.executeMatrixJob(j)
			default:
				var rec obs.TimingRecord
				// Bulk class, cost 0: the job reserved its cost at
				// submit, and async work never overtakes interactive
				// requests in the slot queue.
				body, _, err = s.executeRun(s.base, j.key, execClass{prio: prioBulk}, *j.run, j.rc, &rec)
			}
			if err != nil && s.base.Err() != nil {
				// The server is shutting down mid-job, not the job
				// failing: leave the journal record (and the job
				// "running" in this dying process) so the next process
				// resumes it from its completed cells.
				continue
			}
			s.jobs.finish(j, body, err)
			s.metrics.jobDuration[kind].Observe(j.finished.Sub(j.started))
		}
	}
}

// executeMatrixJob runs one decomposed sweep: every (scenario, policy)
// cell goes through the standard execute path — cache, durable store,
// coalescing, engine — so each cell's result persists individually
// the moment it completes. A job interrupted by a kill therefore
// resumes from its completed cells on the next submission: those are
// store hits, and only the missing cells execute. Cells fan out
// across the configured Runner worker count; total engine concurrency
// stays bounded by MaxSims, since every cell execution holds a
// MaxSims slot like any other run.
func (s *Server) executeMatrixJob(j *job) ([]byte, error) {
	// The assembled whole-sweep body may itself be cached or stored
	// (an identical sweep already completed): nothing to decompose.
	if body, _, ok := s.lookup(j.key, false); ok {
		s.jobs.allCellsCached(j)
		return body, nil
	}
	// The sweep runs under the flight group on the matrix key, like the
	// sync /matrix path: an identical sweep in flight — either form —
	// is joined, not duplicated. The job's timing surfaces through the
	// job histograms (queue wait, duration), not a request record, so
	// the record here is a local scratch for the flight plumbing.
	var rec obs.TimingRecord
	ranCells := false
	body, _, err := s.flight.Do(s.base, j.key, &rec, func(_ *obs.TimingRecord) ([]byte, error) {
		if body, _, ok := s.lookup(j.key, true); ok {
			return body, nil
		}
		ranCells = true
		return s.executeMatrixCells(j)
	})
	if err != nil {
		return nil, err
	}
	if !ranCells {
		// Served by the cache, the store or another request's
		// execution: every cell settled without this job running any.
		s.jobs.allCellsCached(j)
	}
	return body, nil
}

// executeMatrixCells is the decomposed sweep execution itself (the
// flight leader's body in executeMatrixJob).
func (s *Server) executeMatrixCells(j *job) ([]byte, error) {
	workers := s.cfg.Runner.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ctx, cancel := context.WithCancel(s.base)
	defer cancel()
	var (
		wg      sync.WaitGroup
		sem     = make(chan struct{}, workers)
		bodies  = make([][]byte, len(j.cells))
		errOnce sync.Once
		jobErr  error
	)
	for i, cell := range j.cells {
		if ctx.Err() != nil {
			break // a cell failed or the server is closing
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, cell cellTask) {
			defer wg.Done()
			defer func() { <-sem }()
			var cellRec obs.TimingRecord
			// Cells ride the job's submit-time cost reservation (cost
			// 0) and queue at bulk priority, behind any interactive
			// /run waiting for a slot.
			body, state, err := s.executeRun(ctx, cell.req.Key(), execClass{prio: prioBulk}, cell.req, cell.rc, &cellRec)
			if err != nil {
				errOnce.Do(func() {
					jobErr = fmt.Errorf("cell %s/%s: %w", cell.req.Scenario, cell.req.Policy, err)
					cancel()
				})
				return
			}
			bodies[i] = body
			s.jobs.cellDone(j, state)
		}(i, cell)
	}
	wg.Wait()
	if jobErr != nil {
		return nil, jobErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sweep interrupted: %w", err)
	}
	doc, err := assembleMatrixDoc(*j.matrix, j.cells, bodies)
	if err != nil {
		return nil, err
	}
	body, err := EncodeDoc(doc)
	if err != nil {
		return nil, err
	}
	// The assembled sweep is cached and persisted under the matrix key
	// like any monolithic result, so re-submitting the identical sweep
	// — or POSTing it to /matrix — is a pure hit.
	s.cache.Add(j.key, body)
	s.storePut(j.key, body)
	return body, nil
}

// ---------------------------------------------------------------------
// The durable job journal.
//
// Unfinished jobs are journaled in the store under a reserved key
// namespace: a record is put at submit and deleted (tombstoned) when
// the job reaches any final state. On New, surviving journal records
// are re-submitted, so a kill mid-sweep resumes after restart — the
// recovered job's completed cells are store hits and only the missing
// cells execute.

// JournalPrefix is the reserved key namespace of the job journal.
const JournalPrefix = "job/"

// JournalPinned is the store pin predicate for the job journal: pass
// it in store.Options so size-budget eviction can never drop journal
// records (result records are all evictable — they can be recomputed;
// a journal record is the only trace of an accepted job).
func JournalPinned(key string) bool { return strings.HasPrefix(key, JournalPrefix) }

// journalKey is the store key of one job's journal record. It is
// derived from the canonical content address, not the job ID: two
// submissions of the same sweep are the same work, and recovery
// re-submits it once.
func journalKey(j *job) string { return JournalPrefix + j.kind + "/" + j.key }

// initJournal wires the job manager's journal hooks onto the durable
// store. The hooks run under the manager's mutex (see jobManager), so
// the journal can never disagree with the job table about which work
// is still live.
func (s *Server) initJournal() {
	if s.cfg.Store == nil {
		return
	}
	s.jobs.journalPut = func(j *job) {
		entry, err := EncodeDoc(JobRequest{Kind: j.kind, Run: j.run, Matrix: j.matrix})
		if err == nil {
			err = s.cfg.Store.Put(journalKey(j), entry)
		}
		if err != nil {
			s.storeErrors.Add(1) // accepted, but will not survive a restart
		}
	}
	s.jobs.journalClear = func(j *job) {
		if err := s.cfg.Store.Delete(journalKey(j)); err != nil {
			s.storeErrors.Add(1)
		}
	}
}

// recoverJobs re-submits every journaled job that never reached a
// final state in a previous process. Runs from New before the workers
// start. Undecodable journal records are dropped (and counted as
// store errors); a full queue leaves the remaining records journaled
// for the next restart.
func (s *Server) recoverJobs() {
	if s.cfg.Store == nil {
		return
	}
	for _, key := range s.cfg.Store.Keys(JournalPrefix) {
		entry, ok, err := s.cfg.Store.Get(key)
		if err != nil || !ok {
			if err != nil {
				s.storeErrors.Add(1)
			}
			continue
		}
		var jr JobRequest
		if err := json.Unmarshal(entry, &jr); err != nil {
			// A journal record that no longer decodes (schema drift,
			// manual edits) cannot be resumed; drop it rather than
			// retrying it forever on every restart.
			s.storeErrors.Add(1)
			s.cfg.Store.Delete(key)
			continue
		}
		if _, err := s.jobs.submit(jr, true); err != nil {
			if errors.Is(err, errQueueFull) {
				// Queue pressure is transient: leave the record for
				// the next restart.
				continue
			}
			// Anything else is permanent — the request names
			// scenarios/policies this build no longer registers, so it
			// can never resume; retrying it on every restart forever
			// (pinned against eviction, invisible to the operator)
			// helps nobody. Drop the record and count it.
			s.storeErrors.Add(1)
			s.cfg.Store.Delete(key)
			continue
		}
	}
}
