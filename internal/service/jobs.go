package service

import (
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"time"

	"thermbal/internal/experiment"
)

// JobState enumerates a job's lifecycle. Pending jobs sit in the
// bounded queue and are the only cancellable state: once a job is
// running its execution is atomic (DELETE returns 409).
type JobState string

const (
	JobPending   JobState = "pending"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// JobRequest is the wire body of POST /jobs: one run or one matrix
// sweep. Kind defaults to "matrix" when only the matrix block is set,
// "run" otherwise (an entirely empty body is a valid default run).
type JobRequest struct {
	Kind   string         `json:"kind"`
	Run    *Request       `json:"run,omitempty"`
	Matrix *MatrixRequest `json:"matrix,omitempty"`
}

// JobStatus is the wire view of one job. Result is embedded once the
// job is done and is byte-identical to the synchronous response for
// the same canonical request (both come out of the shared cache).
type JobStatus struct {
	SchemaVersion int      `json:"schema_version"`
	ID            string   `json:"id"`
	Kind          string   `json:"kind"`
	State         JobState `json:"state"`
	// Key is the content address of the canonical request.
	Key string `json:"key"`
	// Run / Matrix is the canonical request (one of the two, by Kind).
	Run    *Request       `json:"run,omitempty"`
	Matrix *MatrixRequest `json:"matrix,omitempty"`
	Error  string         `json:"error,omitempty"`
	// SubmittedAt / StartedAt / FinishedAt are wall-clock stamps.
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
	// Result is the schema document, present when State is "done".
	Result json.RawMessage `json:"result,omitempty"`
}

// JobStats is the /stats job block.
type JobStats struct {
	Workers   int `json:"workers"`
	QueueCap  int `json:"queue_cap"`
	Pending   int `json:"pending"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
}

// job is the manager-internal record; its mutable fields are guarded
// by the owning jobManager's mutex.
type job struct {
	id   string
	kind string
	key  string

	run    *Request
	matrix *MatrixRequest
	rc     experiment.RunConfig
	mc     experiment.MatrixConfig

	state     JobState
	errText   string
	body      []byte
	submitted time.Time
	started   time.Time
	finished  time.Time
	done      chan struct{} // closed when the job reaches a final state
}

// jobManager owns the job table and the bounded pending queue.
type jobManager struct {
	mu     sync.Mutex
	byID   map[string]*job
	order  []*job
	queue  chan *job
	seq    int
	retain int // finished jobs kept for polling; older ones are pruned
}

func (m *jobManager) init(queueDepth, retain int) {
	m.byID = map[string]*job{}
	m.queue = make(chan *job, queueDepth)
	m.retain = retain
}

// pruneLocked drops the oldest finished jobs beyond the retention
// bound so the long-running server's job table (and the result bodies
// it holds) stays bounded like the result cache. Pending and running
// jobs are never pruned. Callers hold m.mu.
func (m *jobManager) pruneLocked() {
	finished := 0
	for _, j := range m.order {
		if j.state != JobPending && j.state != JobRunning {
			finished++
		}
	}
	if finished <= m.retain {
		return
	}
	kept := m.order[:0]
	for _, j := range m.order {
		if finished > m.retain && j.state != JobPending && j.state != JobRunning {
			delete(m.byID, j.id)
			finished--
			continue
		}
		kept = append(kept, j)
	}
	// Zero the freed tail so pruned jobs are collectable.
	for i := len(kept); i < len(m.order); i++ {
		m.order[i] = nil
	}
	m.order = kept
}

// submit canonicalizes jr, registers the job and enqueues it; a full
// queue rejects with errQueueFull before anything is registered.
func (m *jobManager) submit(jr JobRequest) (*job, error) {
	kind := jr.Kind
	if kind == "" {
		if jr.Matrix != nil && jr.Run == nil {
			kind = "matrix"
		} else {
			kind = "run"
		}
	}
	j := &job{kind: kind, state: JobPending, submitted: time.Now(), done: make(chan struct{})}
	switch kind {
	case "run":
		var req Request
		if jr.Run != nil {
			req = *jr.Run
		}
		canon, rc, err := Canonicalize(req)
		if err != nil {
			return nil, err
		}
		j.run, j.rc, j.key = &canon, rc, canon.Key()
	case "matrix":
		var req MatrixRequest
		if jr.Matrix != nil {
			req = *jr.Matrix
		}
		canon, mc, err := CanonicalizeMatrix(req)
		if err != nil {
			return nil, err
		}
		j.matrix, j.mc, j.key = &canon, mc, canon.Key()
	default:
		return nil, fmt.Errorf("unknown job kind %q (run | matrix)", kind)
	}
	m.mu.Lock()
	m.seq++
	j.id = "j" + strconv.Itoa(m.seq)
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		return nil, errQueueFull
	}
	m.byID[j.id] = j
	m.order = append(m.order, j)
	m.mu.Unlock()
	return j, nil
}

// get returns the job by id.
func (m *jobManager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.byID[id]
	return j, ok
}

// list returns the jobs in submission order.
func (m *jobManager) list() []*job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*job(nil), m.order...)
}

// claim transitions a queued job to running; it reports false when the
// job was cancelled while pending.
func (m *jobManager) claim(j *job) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j.state != JobPending {
		return false
	}
	j.state = JobRunning
	j.started = time.Now()
	return true
}

// finish records a job's outcome.
func (m *jobManager) finish(j *job, body []byte, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j.finished = time.Now()
	switch {
	case err != nil:
		j.state = JobFailed
		j.errText = err.Error()
	default:
		j.state = JobDone
		j.body = body
	}
	close(j.done)
	m.pruneLocked()
}

// cancel cancels a pending job. Running jobs cannot be interrupted
// (the engine is atomic per run); finished jobs are immutable. It
// returns the job's state after the attempt and whether the cancel
// took effect.
func (m *jobManager) cancel(id string) (*job, bool, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.byID[id]
	if !ok {
		return nil, false, false
	}
	if j.state != JobPending {
		return j, true, false
	}
	j.state = JobCancelled
	j.errText = "cancelled before start"
	j.finished = time.Now()
	close(j.done)
	m.pruneLocked()
	return j, true, true
}

// status snapshots a job's wire view.
func (m *jobManager) status(j *job) JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := JobStatus{
		SchemaVersion: experiment.SchemaVersion,
		ID:            j.id,
		Kind:          j.kind,
		State:         j.state,
		Key:           j.key,
		Run:           j.run,
		Matrix:        j.matrix,
		Error:         j.errText,
		SubmittedAt:   j.submitted,
		StartedAt:     j.started,
		FinishedAt:    j.finished,
	}
	if j.state == JobDone {
		st.Result = json.RawMessage(j.body)
	}
	return st
}

// stats counts jobs by state.
func (m *jobManager) stats(workers int) JobStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	js := JobStats{Workers: workers, QueueCap: cap(m.queue)}
	for _, j := range m.order {
		switch j.state {
		case JobPending:
			js.Pending++
		case JobRunning:
			js.Running++
		case JobDone:
			js.Done++
		case JobFailed:
			js.Failed++
		case JobCancelled:
			js.Cancelled++
		}
	}
	return js
}

// jobWorker drains the pending queue until the server closes.
func (s *Server) jobWorker() {
	for {
		select {
		case <-s.base.Done():
			return
		case j := <-s.jobs.queue:
			if !s.jobs.claim(j) {
				continue // cancelled while queued
			}
			var body []byte
			var err error
			switch j.kind {
			case "matrix":
				opt := j.matrix.thermal()
				opt.Runner = s.cfg.Runner
				body, _, err = s.executeMatrix(s.base, *j.matrix, j.mc, opt)
			default:
				body, _, err = s.executeRun(s.base, *j.run, j.rc)
			}
			s.jobs.finish(j, body, err)
		}
	}
}
