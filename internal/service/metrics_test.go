package service

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"thermbal/internal/experiment"
	"thermbal/internal/obs"
	"thermbal/internal/sim"
)

// promValue extracts one series value from a Prometheus text
// exposition (the line `series value`).
func promValue(t *testing.T, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s absent from /metrics", series)
	return 0
}

// TestMetricsAndXTiming drives a fresh-vs-cached /run pair on the real
// engine and checks the whole observability surface agrees with
// itself: X-Timing parses and matches the executed-vs-cached shape,
// /metrics carries the stage histograms with counts that reconcile
// with /stats, and the /stats latency block reports the same
// observations as quantiles.
func TestMetricsAndXTiming(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	resp, _ := do(t, http.MethodPost, ts.URL+"/run", shortRun)
	if st := resp.Header.Get("X-Cache"); st != "miss" {
		t.Fatalf("cold X-Cache = %q, want miss", st)
	}
	coldPairs, err := obs.ParseHeaderValue(resp.Header.Get("X-Timing"))
	if err != nil {
		t.Fatalf("cold X-Timing %q: %v", resp.Header.Get("X-Timing"), err)
	}
	for _, name := range obs.StageNames {
		if _, ok := coldPairs[name]; !ok {
			t.Errorf("cold X-Timing missing stage %q", name)
		}
	}
	if coldPairs["execute"] <= 0 {
		t.Errorf("cold X-Timing execute = %d µs, want > 0", coldPairs["execute"])
	}
	if coldPairs["total"] < coldPairs["execute"] {
		t.Errorf("cold X-Timing total %d µs < execute %d µs", coldPairs["total"], coldPairs["execute"])
	}

	resp, _ = do(t, http.MethodPost, ts.URL+"/run", shortRun)
	if st := resp.Header.Get("X-Cache"); st != "hit" {
		t.Fatalf("second X-Cache = %q, want hit", st)
	}
	hitPairs, err := obs.ParseHeaderValue(resp.Header.Get("X-Timing"))
	if err != nil {
		t.Fatalf("cached X-Timing: %v", err)
	}
	// A cache hit never entered the engine, and its header must not
	// claim otherwise.
	if hitPairs["execute"] != 0 || hitPairs["queue"] != 0 {
		t.Errorf("cached X-Timing claims execute=%d queue=%d µs, want 0/0",
			hitPairs["execute"], hitPairs["queue"])
	}
	if hitPairs["total"] <= 0 {
		t.Errorf("cached X-Timing total = %d µs, want > 0", hitPairs["total"])
	}

	resp, body := do(t, http.MethodGet, ts.URL+"/metrics", "")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	text := string(body)
	for series, want := range map[string]float64{
		`thermbal_stage_duration_seconds_count{stage="execute"}`:                 1,
		`thermbal_stage_duration_seconds_count{stage="encode"}`:                  1,
		`thermbal_stage_duration_seconds_count{stage="queue"}`:                   1,
		`thermbal_request_duration_seconds_count{endpoint="run",outcome="miss"}`: 1,
		`thermbal_request_duration_seconds_count{endpoint="run",outcome="hit"}`:  1,
		`thermbal_requests_total{endpoint="run",outcome="miss"}`:                 1,
		`thermbal_requests_total{endpoint="run",outcome="hit"}`:                  1,
		`thermbal_executions_total`:                                              1,
		`thermbal_cache_hits_total`:                                              1,
		`thermbal_cache_misses_total`:                                            1,
	} {
		if got := promValue(t, text, series); got != want {
			t.Errorf("%s = %g, want %g", series, got, want)
		}
	}
	// A memory-only server must not render store families.
	if strings.Contains(text, "thermbal_store_") {
		t.Error("/metrics renders store series on a store-less server")
	}

	lat := s.Stats().Latency
	if lat.Run.Count != 2 {
		t.Errorf("latency.run.count = %d, want 2", lat.Run.Count)
	}
	if lat.Execute.Count != 1 || lat.Execute.P50Ms <= 0 {
		t.Errorf("latency.execute = %+v, want count 1, p50 > 0", lat.Execute)
	}
	if lat.Run.P99Ms < lat.Run.P50Ms {
		t.Errorf("latency.run p99 %g < p50 %g", lat.Run.P99Ms, lat.Run.P50Ms)
	}
	if lat.Matrix.Count != 0 {
		t.Errorf("latency.matrix.count = %d, want 0 (no matrix requests)", lat.Matrix.Count)
	}
}

// TestErrorRequestsRecorded: a request that fails canonicalization is
// still observed, under the error outcome — the metrics must not lose
// the failures.
func TestErrorRequestsRecorded(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := do(t, http.MethodPost, ts.URL+"/run", `{"scenario":"nope-xyz"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad scenario: status %d", resp.StatusCode)
	}
	_, body := do(t, http.MethodGet, ts.URL+"/metrics", "")
	if got := promValue(t, string(body), `thermbal_requests_total{endpoint="run",outcome="error"}`); got != 1 {
		t.Errorf(`requests_total{outcome="error"} = %g, want 1`, got)
	}
}

// TestTimingLogCSV: with a timing log configured, every /run request
// appends one CSV record whose outcome and stage columns match what
// the response headers said.
func TestTimingLogCSV(t *testing.T) {
	var sb strings.Builder
	cfg := Config{TimingLog: obs.NewCSVLogger(&sb, true)}
	_, ts := newTestServer(t, cfg)
	do(t, http.MethodPost, ts.URL+"/run", shortRun)
	do(t, http.MethodPost, ts.URL+"/run", shortRun)

	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("timing log has %d lines, want header + 2 records:\n%s", len(lines), sb.String())
	}
	if lines[0] != obs.CSVHeader {
		t.Errorf("header = %q, want %q", lines[0], obs.CSVHeader)
	}
	for i, wantOutcome := range []string{"miss", "hit"} {
		f := strings.Split(lines[i+1], ",")
		if len(f) != 9 {
			t.Fatalf("record %d has %d fields: %q", i, len(f), lines[i+1])
		}
		if f[1] != "run" || f[2] != wantOutcome {
			t.Errorf("record %d = endpoint %q outcome %q, want run/%s", i, f[1], f[2], wantOutcome)
		}
		execUs, err := strconv.Atoi(f[5])
		if err != nil {
			t.Fatalf("record %d execute_us %q: %v", i, f[5], err)
		}
		if wantOutcome == "miss" && execUs <= 0 {
			t.Errorf("miss record execute_us = %d, want > 0", execUs)
		}
		if wantOutcome == "hit" && execUs != 0 {
			t.Errorf("hit record execute_us = %d, want 0", execUs)
		}
		if total, _ := strconv.Atoi(f[8]); total <= 0 {
			t.Errorf("record %d total_us = %q, want > 0", i, f[8])
		}
	}
}

// TestObserveRequestZeroAllocs asserts the entire per-request
// recording cost on the cached path — outcome lookup, histogram
// observe, counter increment — allocates nothing. This is the
// invariant that lets the observability layer sit on the hot path.
func TestObserveRequestZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	s := New(Config{})
	defer s.Close()
	rec := obs.TimingRecord{Outcome: "hit", Total: 5 * time.Millisecond}
	allocs := testing.AllocsPerRun(1000, func() {
		s.metrics.observeRequest(epRun, &rec)
	})
	if allocs != 0 {
		t.Errorf("observeRequest allocates %.1f times per call, want 0", allocs)
	}
}

// BenchmarkCachedRun measures the full cached-/run path through the
// handler — decode, canonicalize, cache hit, X-Timing header, metrics
// recording — the path the observability work must not regress.
func BenchmarkCachedRun(b *testing.B) {
	s := New(Config{
		runSim: func(rc experiment.RunConfig) (sim.Result, error) {
			return sim.Result{PolicyName: rc.PolicyName, MeasuredS: rc.MeasureS}, nil
		},
	})
	defer s.Close()
	h := s.Handler()

	warm := httptest.NewRecorder()
	h.ServeHTTP(warm, httptest.NewRequest(http.MethodPost, "/run", strings.NewReader(shortRun)))
	if st := warm.Header().Get("X-Cache"); st != "miss" {
		b.Fatalf("warm-up X-Cache = %q, want miss", st)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/run", strings.NewReader(shortRun)))
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}
