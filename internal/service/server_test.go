package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"thermbal/internal/experiment"
	"thermbal/internal/sim"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func do(t *testing.T, method, url, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// shortRun is a sub-second real-time request exercising the real
// engine.
const shortRun = `{"scenario":"sdr-radio","policy":"tb","delta":3,"warmup_s":0.3,"measure_s":0.7}`

// TestConcurrentIdenticalRunsCoalesce is the acceptance check for
// request coalescing: M concurrent identical /run requests execute
// exactly one simulation and every client receives bit-for-bit equal
// bodies. The injected runSim blocks until all waiters are attached,
// so the coalescing window is deterministic; the test runs under
// `go test -race` in CI (make race).
func TestConcurrentIdenticalRunsCoalesce(t *testing.T) {
	release := make(chan struct{})
	var execs atomic.Int64
	s, ts := newTestServer(t, Config{
		runSim: func(rc experiment.RunConfig) (sim.Result, error) {
			execs.Add(1)
			<-release
			return sim.Result{PolicyName: rc.PolicyName, MeasuredS: rc.MeasureS}, nil
		},
	})

	const m = 12
	bodies := make([][]byte, m)
	states := make([]string, m)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, b := do(t, http.MethodPost, ts.URL+"/run", shortRun)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, b)
				return
			}
			bodies[i] = b
			states[i] = resp.Header.Get("X-Cache")
		}(i)
	}

	// Wait until every follower is attached to the leader's call, then
	// let the single execution finish.
	deadline := time.Now().Add(10 * time.Second)
	for {
		inflight, coalesced := s.flight.counts()
		if inflight == 1 && coalesced == m-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coalescing never converged: inflight=%d coalesced=%d", inflight, coalesced)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Errorf("simulations executed = %d, want exactly 1", got)
	}
	var misses, coalesced int
	for i := 1; i < m; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("body %d differs from body 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	for _, st := range states {
		switch st {
		case "miss":
			misses++
		case "coalesced":
			coalesced++
		default:
			t.Errorf("unexpected X-Cache %q", st)
		}
	}
	if misses != 1 || coalesced != m-1 {
		t.Errorf("cache states: %d miss / %d coalesced, want 1 / %d", misses, coalesced, m-1)
	}

	// The result is now cached: one more request is a pure hit with
	// the same bytes and no new execution.
	resp, b := do(t, http.MethodPost, ts.URL+"/run", shortRun)
	if st := resp.Header.Get("X-Cache"); st != "hit" {
		t.Errorf("follow-up X-Cache = %q, want hit", st)
	}
	if !bytes.Equal(b, bodies[0]) {
		t.Error("cached body differs from the coalesced bodies")
	}
	stats := s.Stats()
	if stats.Executions != 1 || stats.Coalesced != m-1 || stats.Cache.Hits != 1 {
		t.Errorf("stats = executions %d, coalesced %d, hits %d; want 1, %d, 1",
			stats.Executions, stats.Coalesced, stats.Cache.Hits, m-1)
	}
}

// TestCachedResponseByteIdenticalToColdRun is the other acceptance
// check: a cached response must be byte-identical to a cold run of the
// same request — here both against the same server (hit vs miss) and
// across two fresh server instances (cold vs cold), all on the real
// engine.
func TestCachedResponseByteIdenticalToColdRun(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp1, cold := do(t, http.MethodPost, ts.URL+"/run", shortRun)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("cold run: status %d: %s", resp1.StatusCode, cold)
	}
	if st := resp1.Header.Get("X-Cache"); st != "miss" {
		t.Errorf("cold X-Cache = %q, want miss", st)
	}
	resp2, cached := do(t, http.MethodPost, ts.URL+"/run", shortRun)
	if st := resp2.Header.Get("X-Cache"); st != "hit" {
		t.Errorf("second X-Cache = %q, want hit", st)
	}
	if !bytes.Equal(cold, cached) {
		t.Errorf("cached body differs from cold body:\n%s\nvs\n%s", cached, cold)
	}

	// A different process would produce the same bytes too; the
	// closest in-test proxy is a brand-new server instance.
	_, ts2 := newTestServer(t, Config{})
	_, cold2 := do(t, http.MethodPost, ts2.URL+"/run", shortRun)
	if !bytes.Equal(cold, cold2) {
		t.Error("cold runs on two server instances differ")
	}

	var doc RunDoc
	if err := json.Unmarshal(cold, &doc); err != nil {
		t.Fatalf("decode run doc: %v", err)
	}
	if doc.SchemaVersion != experiment.SchemaVersion || doc.Kind != "run" {
		t.Errorf("doc header = %d/%q", doc.SchemaVersion, doc.Kind)
	}
	if doc.Request.Policy != "thermal-balance" || doc.Request.Scenario != "sdr-radio" {
		t.Errorf("canonical request = %+v", doc.Request)
	}
	if doc.Key != doc.Request.Key() {
		t.Errorf("doc key %s != request key %s", doc.Key, doc.Request.Key())
	}
	if doc.Result.Policy != "thermal-balance" || doc.Result.MeasuredS <= 0 {
		t.Errorf("result block = %+v", doc.Result)
	}
}

func TestCatalogueAndStatsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, b := do(t, http.MethodGet, ts.URL+"/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d %s", resp.StatusCode, b)
	}

	var scDoc scenariosDoc
	_, b = do(t, http.MethodGet, ts.URL+"/scenarios", "")
	if err := json.Unmarshal(b, &scDoc); err != nil {
		t.Fatalf("decode scenarios: %v", err)
	}
	found := false
	for _, info := range scDoc.Scenarios {
		if info.Name == "sdr-radio" && info.DefaultPolicy == "thermal-balance" {
			found = true
		}
	}
	if !found || scDoc.SchemaVersion != experiment.SchemaVersion {
		t.Errorf("scenarios doc missing sdr-radio: %s", b)
	}

	var polDoc policiesDoc
	_, b = do(t, http.MethodGet, ts.URL+"/policies", "")
	if err := json.Unmarshal(b, &polDoc); err != nil {
		t.Fatalf("decode policies: %v", err)
	}
	found = false
	for _, e := range polDoc.Policies {
		if e.Name == "thermal-balance" && len(e.Aliases) > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("policies doc missing thermal-balance with aliases: %s", b)
	}

	var stats StatsDoc
	_, b = do(t, http.MethodGet, ts.URL+"/stats", "")
	if err := json.Unmarshal(b, &stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if stats.Cache.Capacity != 512 || stats.Jobs.Workers < 1 {
		t.Errorf("stats = %+v", stats)
	}

	// Errors: unknown names get did-you-mean; oversized sync runs are
	// redirected to /jobs; bad JSON is a 400.
	resp, b = do(t, http.MethodPost, ts.URL+"/run", `{"scenario":"sdr-raido"}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(b), "did you mean") {
		t.Errorf("unknown scenario: %d %s", resp.StatusCode, b)
	}
	resp, b = do(t, http.MethodPost, ts.URL+"/run", `{"warmup_s":1e6}`)
	if resp.StatusCode != http.StatusRequestEntityTooLarge || !strings.Contains(string(b), "/jobs") {
		t.Errorf("oversized sync run: %d %s", resp.StatusCode, b)
	}
	resp, _ = do(t, http.MethodPost, ts.URL+"/run", `{"delta":`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: %d", resp.StatusCode)
	}
	// A misspelled field name must not silently run (and cache) the
	// default simulation.
	resp, b = do(t, http.MethodPost, ts.URL+"/run", `{"polcy":"eb"}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(b), "polcy") {
		t.Errorf("unknown field: %d %s", resp.StatusCode, b)
	}
	// So must trailing data — two concatenated objects would otherwise
	// silently run only the first.
	resp, _ = do(t, http.MethodPost, ts.URL+"/run", `{"policy":"tb"}{"policy":"eb"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("trailing data: %d, want 400", resp.StatusCode)
	}
	// Oversized bodies are a clean 413, never a silent truncation.
	resp, _ = do(t, http.MethodPost, ts.URL+"/run",
		`{"scenario":"`+strings.Repeat("x", maxBodyBytes)+`"}`)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: %d, want 413", resp.StatusCode)
	}
}

// TestMaxSimsBoundsConcurrentExecutions: with MaxSims=1, two distinct
// in-flight requests execute one at a time — the second holds its slot
// wait instead of running a second concurrent engine execution.
func TestMaxSimsBoundsConcurrentExecutions(t *testing.T) {
	release := make(chan struct{})
	var execs atomic.Int64
	s, ts := newTestServer(t, Config{
		MaxSims: 1,
		runSim: func(rc experiment.RunConfig) (sim.Result, error) {
			execs.Add(1)
			<-release
			return sim.Result{PolicyName: rc.PolicyName, MeasuredS: rc.MeasureS}, nil
		},
	})
	var wg sync.WaitGroup
	for _, d := range []string{"3", "4"} {
		wg.Add(1)
		go func(d string) {
			defer wg.Done()
			do(t, http.MethodPost, ts.URL+"/run", `{"delta":`+d+`}`)
		}(d)
	}
	// Both flights register, but only one may hold the execution slot.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if inflight, _ := s.flight.counts(); inflight == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flights never registered")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	if got := execs.Load(); got != 1 {
		t.Fatalf("concurrent executions with MaxSims=1 = %d, want 1", got)
	}
	close(release)
	wg.Wait()
	if got := execs.Load(); got != 2 {
		t.Errorf("total executions = %d, want 2", got)
	}
}

// TestMatrixSyncBound: the sync endpoint rejects sweeps whose summed
// simulated seconds exceed the /run limit — a bare full-catalogue
// sweep must go through /jobs.
func TestMatrixSyncBound(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSyncSimS: 10})
	resp, b := do(t, http.MethodPost, ts.URL+"/matrix",
		`{"scenarios":["sdr-radio"],"policies":["eb","tb"],"warmup_s":3,"measure_s":3}`)
	if resp.StatusCode != http.StatusRequestEntityTooLarge || !strings.Contains(string(b), "/jobs") {
		t.Errorf("oversized sync matrix: %d %s", resp.StatusCode, b)
	}
	// An empty body is the full catalogue at default phases — far over
	// any reasonable sync limit.
	resp, b = do(t, http.MethodPost, ts.URL+"/matrix", "")
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("bare full-catalogue matrix: %d %s", resp.StatusCode, b)
	}
}

func TestJobRetentionPrunesFinished(t *testing.T) {
	_, ts := newTestServer(t, Config{
		JobWorkers:   1,
		JobRetention: 2,
		runSim: func(rc experiment.RunConfig) (sim.Result, error) {
			return sim.Result{PolicyName: rc.PolicyName, MeasuredS: rc.MeasureS}, nil
		},
	})
	ids := make([]string, 4)
	for i := range ids {
		// Distinct deltas so every job is a distinct execution.
		_, b := do(t, http.MethodPost, ts.URL+"/jobs",
			`{"run":{"delta":`+string(rune('1'+i))+`}}`)
		var st JobStatus
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
		waitState(t, ts, st.ID, JobDone)
	}
	var listing jobsDoc
	_, b := do(t, http.MethodGet, ts.URL+"/jobs", "")
	if err := json.Unmarshal(b, &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 2 ||
		listing.Jobs[0].ID != ids[2] || listing.Jobs[1].ID != ids[3] {
		t.Errorf("retained jobs = %s, want the 2 newest (%s, %s)", b, ids[2], ids[3])
	}
	resp, _ := do(t, http.MethodGet, ts.URL+"/jobs/"+ids[0], "")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pruned job poll: %d, want 404", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodGet, ts.URL+"/jobs/"+ids[3], "")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("retained job poll: %d, want 200", resp.StatusCode)
	}
}

func TestMatrixEndpointCachesSweep(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"scenarios":["sdr-radio"],"policies":["eb","tb"],"warmup_s":0.3,"measure_s":0.5}`
	resp, b1 := do(t, http.MethodPost, ts.URL+"/matrix", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("matrix: %d %s", resp.StatusCode, b1)
	}
	var doc MatrixDoc
	if err := json.Unmarshal(b1, &doc); err != nil {
		t.Fatalf("decode matrix doc: %v", err)
	}
	if doc.Kind != "matrix" || len(doc.Cells) != 2 {
		t.Errorf("matrix doc = kind %q, %d cells", doc.Kind, len(doc.Cells))
	}
	if doc.Cells[0].Policy != "energy-balance" || doc.Cells[1].Policy != "thermal-balance" {
		t.Errorf("cell order: %+v", doc.Cells)
	}
	resp, b2 := do(t, http.MethodPost, ts.URL+"/matrix", body)
	if st := resp.Header.Get("X-Cache"); st != "hit" {
		t.Errorf("repeat matrix X-Cache = %q, want hit", st)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("cached matrix body differs")
	}
}

func TestJobLifecycle(t *testing.T) {
	gate := make(chan struct{})
	var execs atomic.Int64
	s, ts := newTestServer(t, Config{
		JobWorkers: 1,
		QueueDepth: 1,
		runSim: func(rc experiment.RunConfig) (sim.Result, error) {
			execs.Add(1)
			<-gate
			return sim.Result{PolicyName: rc.PolicyName, MeasuredS: rc.MeasureS}, nil
		},
	})

	// Job A occupies the single worker.
	resp, b := do(t, http.MethodPost, ts.URL+"/jobs", `{"run":{"delta":3}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit A: %d %s", resp.StatusCode, b)
	}
	var a JobStatus
	if err := json.Unmarshal(b, &a); err != nil {
		t.Fatal(err)
	}
	if a.Kind != "run" || a.Run == nil || a.Run.Policy != "thermal-balance" || a.Key == "" {
		t.Errorf("submit echo = %s", b)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+a.ID {
		t.Errorf("Location = %q", loc)
	}
	waitState(t, ts, a.ID, JobRunning)

	// Job B queues behind it; the queue (depth 1) is now full.
	_, b = do(t, http.MethodPost, ts.URL+"/jobs", `{"run":{"delta":4}}`)
	var bStat JobStatus
	if err := json.Unmarshal(b, &bStat); err != nil {
		t.Fatal(err)
	}
	resp, _ = do(t, http.MethodPost, ts.URL+"/jobs", `{"run":{"delta":5}}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit beyond queue depth: %d, want 503", resp.StatusCode)
	}

	// Cancel the pending B; cancelling again conflicts.
	resp, _ = do(t, http.MethodDelete, ts.URL+"/jobs/"+bStat.ID, "")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("cancel pending: %d", resp.StatusCode)
	}
	waitState(t, ts, bStat.ID, JobCancelled)
	resp, _ = do(t, http.MethodDelete, ts.URL+"/jobs/"+bStat.ID, "")
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("cancel cancelled: %d, want 409", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodDelete, ts.URL+"/jobs/nope", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown: %d, want 404", resp.StatusCode)
	}

	// Release the worker; A completes and embeds its result.
	close(gate)
	aDone := waitState(t, ts, a.ID, JobDone)
	if len(aDone.Result) == 0 {
		t.Fatal("done job carries no result")
	}

	// The job result and a synchronous /run of the same request are
	// the same document out of the shared cache — and execute nothing
	// new. (Embedding in the status envelope strips the framing
	// newline EncodeDoc appends, so compare modulo that.)
	resp, runBody := do(t, http.MethodPost, ts.URL+"/run", `{"delta":3}`)
	if st := resp.Header.Get("X-Cache"); st != "hit" {
		t.Errorf("sync after job X-Cache = %q, want hit", st)
	}
	if !bytes.Equal(bytes.TrimRight(runBody, "\n"), bytes.TrimRight(aDone.Result, "\n")) {
		t.Errorf("job result differs from sync body:\n%s\nvs\n%s", aDone.Result, runBody)
	}
	if got := execs.Load(); got != 1 {
		t.Errorf("executions = %d, want 1 (B cancelled, sync run cached)", got)
	}

	// The listing shows both jobs, without result bodies.
	var listing jobsDoc
	_, b = do(t, http.MethodGet, ts.URL+"/jobs", "")
	if err := json.Unmarshal(b, &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 2 {
		t.Errorf("listing has %d jobs, want 2", len(listing.Jobs))
	}
	for _, j := range listing.Jobs {
		if len(j.Result) != 0 {
			t.Errorf("listing embeds result for %s", j.ID)
		}
	}
	if st := s.Stats().Jobs; st.Done != 1 || st.Cancelled != 1 {
		t.Errorf("job stats = %+v", st)
	}

	// Unknown kind is rejected at submit time.
	resp, _ = do(t, http.MethodPost, ts.URL+"/jobs", `{"kind":"sweep"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown kind: %d, want 400", resp.StatusCode)
	}
}

// waitState polls /jobs/{id} until the job reaches want.
func waitState(t *testing.T, ts *httptest.Server, id string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, b := do(t, http.MethodGet, ts.URL+"/jobs/"+id, "")
		var st JobStatus
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatalf("decode job status: %v (%s)", err, b)
		}
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want %q", id, st.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMatrixJob runs an async matrix sweep end to end on the real
// engine and checks it matches the synchronous /matrix bytes.
func TestMatrixJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"matrix":{"scenarios":["sdr-radio"],"policies":["eb"],"warmup_s":0.3,"measure_s":0.5}}`
	resp, b := do(t, http.MethodPost, ts.URL+"/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit matrix job: %d %s", resp.StatusCode, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.Kind != "matrix" || st.Matrix == nil {
		t.Fatalf("matrix job echo = %s", b)
	}
	done := waitState(t, ts, st.ID, JobDone)
	_, syncBody := do(t, http.MethodPost, ts.URL+"/matrix",
		`{"scenarios":["sdr-radio"],"policies":["energy-balance"],"warmup_s":0.3,"measure_s":0.5}`)
	if !bytes.Equal(bytes.TrimRight(syncBody, "\n"), bytes.TrimRight(done.Result, "\n")) {
		t.Errorf("matrix job result differs from sync body")
	}
}

func TestSuggestHelper(t *testing.T) {
	// Sanity on the shared error path: close misspellings of every
	// registered scenario name canonicalize to a suggestion.
	_, _, err := Canonicalize(Request{Scenario: "pipelin-d8"})
	if err == nil || !strings.Contains(err.Error(), `"pipeline-d8"`) {
		t.Errorf("pipeline typo: %v", err)
	}
	// And far-off names fall back to the plain catalogue listing.
	_, _, err = Canonicalize(Request{Scenario: "zzzzzzzzzz"})
	if err == nil || strings.Contains(err.Error(), "did you mean") {
		t.Errorf("far-off name still suggested: %v", err)
	}
	if err != nil && !strings.Contains(err.Error(), "sdr-radio") {
		t.Errorf("catalogue missing from error: %v", err)
	}
}
