package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"thermbal/internal/experiment"
	"thermbal/internal/scenario"
	"thermbal/internal/sim"
)

// specRunBody builds a /run body carrying the given spec inline with
// the phases of shortRun, so named and inline requests mean one run.
func specRunBody(t *testing.T, sp scenario.Spec) string {
	t.Helper()
	b, err := json.Marshal(struct {
		Spec     scenario.Spec `json:"spec"`
		Policy   string        `json:"policy"`
		Delta    float64       `json:"delta"`
		WarmupS  float64       `json:"warmup_s"`
		MeasureS float64       `json:"measure_s"`
	}{sp, "tb", 3, 0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func builtinSpec(t *testing.T, name string) scenario.Spec {
	t.Helper()
	sc, err := scenario.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Spec == nil {
		t.Fatalf("%s has no spec", name)
	}
	return *sc.Spec
}

// TestInlineSpecSharesBuiltinAddress is the acceptance check for the
// spec front door: an inline-spec /run whose spec equals a builtin's
// canonicalizes to the same content address as the named request, so
// the named run's cached body serves the spec request byte-for-byte —
// even when the inline copy is relabelled.
func TestInlineSpecSharesBuiltinAddress(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, named := do(t, http.MethodPost, ts.URL+"/run", shortRun)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("named run: %d %s", resp.StatusCode, named)
	}
	if st := resp.Header.Get("X-Cache"); st != "miss" {
		t.Fatalf("named X-Cache = %q, want miss", st)
	}

	sp := builtinSpec(t, "sdr-radio")
	sp.Name = "my-local-copy" // labels are not identity
	sp.Description = "hand-rolled spelling of the paper benchmark"
	resp, inline := do(t, http.MethodPost, ts.URL+"/run", specRunBody(t, sp))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spec run: %d %s", resp.StatusCode, inline)
	}
	if st := resp.Header.Get("X-Cache"); st != "hit" {
		t.Errorf("spec X-Cache = %q, want hit (shared address with the named run)", st)
	}
	if !bytes.Equal(named, inline) {
		t.Errorf("inline-spec body differs from named body:\n%s\nvs\n%s", inline, named)
	}

	// The canonical document names the builtin — no spec echo — so the
	// identity is visible in the response itself.
	var doc RunDoc
	if err := json.Unmarshal(inline, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Request.Scenario != "sdr-radio" || doc.Request.Spec != nil {
		t.Errorf("canonical request = %+v, want the named form", doc.Request)
	}
}

// TestInlineSpecPersistsAndRestores: an inline-spec run persists under
// the shared content address, so after a restart on the same store the
// *named* spelling is a store hit with byte-identical body — cache,
// store and canonicalization all agree on one key.
func TestInlineSpecPersistsAndRestores(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{Store: openTestStore(t, dir)})
	resp, cold := do(t, http.MethodPost, ts1.URL+"/run", specRunBody(t, builtinSpec(t, "sdr-radio")))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spec run: %d %s", resp.StatusCode, cold)
	}

	_, ts2 := newTestServer(t, Config{Store: openTestStore(t, dir)})
	resp, warm := do(t, http.MethodPost, ts2.URL+"/run", shortRun)
	if st := resp.Header.Get("X-Cache"); st != "store" {
		t.Errorf("restarted named X-Cache = %q, want store", st)
	}
	if !bytes.Equal(cold, warm) {
		t.Error("restored named body differs from the inline-spec original")
	}
}

// TestMixedSpellingsCoalesce: concurrent named and inline-spec requests
// for the same run attach to one in-flight execution.
func TestMixedSpellingsCoalesce(t *testing.T) {
	release := make(chan struct{})
	var execs atomic.Int64
	s, ts := newTestServer(t, Config{
		runSim: func(rc experiment.RunConfig) (sim.Result, error) {
			execs.Add(1)
			<-release
			return sim.Result{PolicyName: rc.PolicyName, MeasuredS: rc.MeasureS}, nil
		},
	})

	bodies := [2]string{shortRun, specRunBody(t, builtinSpec(t, "sdr-radio"))}
	results := [2][]byte{}
	var wg sync.WaitGroup
	for i, body := range bodies {
		wg.Add(1)
		go func(i int, body string) {
			defer wg.Done()
			resp, b := do(t, http.MethodPost, ts.URL+"/run", body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: %d %s", i, resp.StatusCode, b)
			}
			results[i] = b
		}(i, body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		inflight, coalesced := s.flight.counts()
		if inflight == 1 && coalesced == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never coalesced: inflight=%d coalesced=%d", inflight, coalesced)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := execs.Load(); got != 1 {
		t.Errorf("executions = %d, want 1", got)
	}
	if !bytes.Equal(results[0], results[1]) {
		t.Error("named and spec spellings returned different bodies")
	}
}

// TestInlineSpecNonBuiltin: a spec that matches no builtin is keyed by
// its canonical hash, echoed in normalized form, and cached like any
// named run.
func TestInlineSpecNonBuiltin(t *testing.T) {
	sp := builtinSpec(t, "sdr-radio")
	sp.Graph.Tasks = append([]scenario.TaskSpec(nil), sp.Graph.Tasks...)
	sp.Graph.Tasks[0].FSE = 0.123
	_, ts := newTestServer(t, Config{})

	resp, b1 := do(t, http.MethodPost, ts.URL+"/run", specRunBody(t, sp))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("custom spec run: %d %s", resp.StatusCode, b1)
	}
	if st := resp.Header.Get("X-Cache"); st != "miss" {
		t.Errorf("first custom-spec X-Cache = %q, want miss", st)
	}
	var doc RunDoc
	if err := json.Unmarshal(b1, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Request.Spec == nil || doc.Request.Scenario != "" {
		t.Fatalf("canonical request should carry the spec inline: %+v", doc.Request)
	}
	if doc.Key != doc.Request.Key() {
		t.Errorf("doc key %s != request key %s", doc.Key, doc.Request.Key())
	}
	// The echoed spec is the normalized form: defaults explicit.
	if doc.Request.Spec.Graph.QueueCap != 11 || doc.Request.Spec.Platform.Cores != 3 {
		t.Errorf("echoed spec not normalized: %+v", doc.Request.Spec)
	}

	resp, b2 := do(t, http.MethodPost, ts.URL+"/run", specRunBody(t, sp))
	if st := resp.Header.Get("X-Cache"); st != "hit" {
		t.Errorf("repeat custom-spec X-Cache = %q, want hit", st)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("repeat custom-spec body differs")
	}
}

// TestInlineSpecErrors: the spec front door rejects ambiguous and
// invalid requests with structured 400s, and strict decoding covers
// nested spec fields.
func TestInlineSpecErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	body := specRunBody(t, builtinSpec(t, "sdr-radio"))
	both := strings.Replace(body, `{"spec":`, `{"scenario":"sdr-radio","spec":`, 1)
	resp, b := do(t, http.MethodPost, ts.URL+"/run", both)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(b), "mutually exclusive") {
		t.Errorf("spec+scenario: %d %s", resp.StatusCode, b)
	}

	// Validation failures surface the structured problem paths.
	sp := builtinSpec(t, "sdr-radio")
	sp.Graph.Tasks = append([]scenario.TaskSpec(nil), sp.Graph.Tasks...)
	sp.Graph.Tasks[0].FSE = 9
	resp, b = do(t, http.MethodPost, ts.URL+"/run", specRunBody(t, sp))
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(b), "graph.tasks[0].fse") {
		t.Errorf("invalid spec: %d %s", resp.StatusCode, b)
	}

	// A misspelled field nested inside the spec must 400, not silently
	// run a near-miss of the intended workload.
	resp, b = do(t, http.MethodPost, ts.URL+"/run",
		`{"spec":{"graph":{"quues":[{"name":"q"}]}}}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(b), "quues") {
		t.Errorf("unknown nested field: %d %s", resp.StatusCode, b)
	}
}

// TestScenariosSpecExport: /scenarios?spec=1 exports every builtin's
// declarative spec, and each round-trips through /run onto the same
// content address as its name.
func TestScenariosSpecExport(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, b := do(t, http.MethodGet, ts.URL+"/scenarios?spec=1", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scenarios?spec=1: %d %s", resp.StatusCode, b)
	}
	var doc scenariosSpecDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Scenarios) != len(scenario.Names()) {
		t.Fatalf("exported %d scenarios, want %d", len(doc.Scenarios), len(scenario.Names()))
	}
	for _, e := range doc.Scenarios {
		if e.Spec == nil {
			t.Errorf("%s: no spec exported", e.Name)
			continue
		}
		if e.SpecVersion != scenario.SpecVersionV1 {
			t.Errorf("%s: spec_version %d", e.Name, e.SpecVersion)
		}
		name, ok := scenario.BuiltinNameForSpec(*e.Spec)
		if !ok || name != e.Name {
			t.Errorf("%s: exported spec resolves to %q, %v", e.Name, name, ok)
		}
		canonNamed, _, err := Canonicalize(Request{Scenario: e.Name})
		if err != nil {
			t.Fatal(err)
		}
		canonSpec, _, err := Canonicalize(Request{Spec: e.Spec})
		if err != nil {
			t.Fatal(err)
		}
		if canonNamed.Key() != canonSpec.Key() {
			t.Errorf("%s: named key %s != spec key %s", e.Name, canonNamed.Key(), canonSpec.Key())
		}
	}

	// Without the flag, the catalogue stays the lean pre-spec shape
	// (plus the spec_version marker).
	var lean scenariosDoc
	_, b = do(t, http.MethodGet, ts.URL+"/scenarios", "")
	if err := json.Unmarshal(b, &lean); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte(`"graph"`)) {
		t.Error("lean catalogue embeds specs")
	}
	for _, info := range lean.Scenarios {
		if info.SpecVersion != scenario.SpecVersionV1 {
			t.Errorf("%s: catalogue spec_version %d", info.Name, info.SpecVersion)
		}
	}
}
