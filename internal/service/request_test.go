package service

import (
	"encoding/json"
	"strings"
	"testing"
)

// goldenKey is the content address of the paper's default operating
// point (sdr-radio, thermal-balance, delta 3, mobile package, 12.5 s +
// 30 s, queue 11, task-replication, Euler), computed once and frozen:
// the key derivation must stay stable across processes, platforms and
// future commits, or cached results would silently lose their
// identity. Bump only together with the keyString version tag.
const goldenKey = "481807daf47fffe75ee68176dfd76e2dd379ace340977bf79393c46d8e3e8fb9"

func mustCanon(t *testing.T, req Request) Request {
	t.Helper()
	canon, _, err := Canonicalize(req)
	if err != nil {
		t.Fatalf("Canonicalize(%+v): %v", req, err)
	}
	return canon
}

func TestCanonicalizeFillsDefaults(t *testing.T) {
	canon := mustCanon(t, Request{})
	want := Request{
		Scenario: "sdr-radio", Policy: "thermal-balance", Delta: 3,
		Package: "mobile-embedded", WarmupS: 12.5, MeasureS: 30,
		QueueCap: 11, Mechanism: "task-replication", Integrator: "euler",
	}
	if canon != want {
		t.Errorf("canonical defaults = %+v, want %+v", canon, want)
	}
}

func TestKeyGoldenStableAcrossProcesses(t *testing.T) {
	if got := mustCanon(t, Request{}).Key(); got != goldenKey {
		t.Errorf("default request key = %s, want the frozen %s", got, goldenKey)
	}
}

func TestKeyAliasAndDefaultInsensitive(t *testing.T) {
	// Every spelling of the same run must share one cache line.
	variants := []Request{
		{}, // all defaults
		{Scenario: "sdr-radio"},
		{Policy: "thermal-balance"},
		{Policy: "tb"},
		{Policy: "migra"},
		{Package: "mobile"},
		{Package: "embedded"},
		{Package: "mobile-embedded"},
		{Mechanism: "replication"},
		{Mechanism: "task-replication"},
		{Integrator: "euler"},
		{Delta: 3, WarmupS: 12.5, MeasureS: 30, QueueCap: 11},
	}
	for _, v := range variants {
		if got := mustCanon(t, v).Key(); got != goldenKey {
			t.Errorf("Key(%+v) = %s, want %s", v, got, goldenKey)
		}
	}
}

func TestKeyFieldOrderInsensitive(t *testing.T) {
	bodies := []string{
		`{"scenario":"sdr-radio","policy":"tb","delta":3,"integrator":"euler"}`,
		`{"integrator":"euler","delta":3,"policy":"thermal-balance","scenario":"sdr-radio"}`,
		`{"delta":3}`,
	}
	for _, b := range bodies {
		var req Request
		if err := json.Unmarshal([]byte(b), &req); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if got := mustCanon(t, req).Key(); got != goldenKey {
			t.Errorf("Key(%s) = %s, want %s", b, got, goldenKey)
		}
	}
}

func TestKeySeparatesDistinctRuns(t *testing.T) {
	base := mustCanon(t, Request{}).Key()
	distinct := []Request{
		{Delta: 4},
		{Policy: "stop-go"},
		{Package: "hp"},
		{Scenario: "video-decoder"},
		{MeasureS: 31},
		{QueueCap: 12},
		{Mechanism: "recreation"},
		{Integrator: "rk4"},
		{Integrator: "expm"},
	}
	seen := map[string]string{base: "default"}
	for _, req := range distinct {
		key := mustCanon(t, req).Key()
		if prev, dup := seen[key]; dup {
			t.Errorf("Key(%+v) collides with %s", req, prev)
		}
		seen[key] = "variant"
	}
}

// Every spelling of the exact scheme canonicalizes to "expm" and all
// share one content address, distinct from the Euler default's.
func TestKeyExpmAliasInsensitive(t *testing.T) {
	base := mustCanon(t, Request{Integrator: "expm"})
	if base.Integrator != "expm" {
		t.Fatalf("canonical integrator = %q, want expm", base.Integrator)
	}
	if base.Key() == goldenKey {
		t.Error("expm request collides with the Euler default key")
	}
	for _, alias := range []string{"exp", "exact"} {
		if got := mustCanon(t, Request{Integrator: alias}).Key(); got != base.Key() {
			t.Errorf("Key(integrator=%q) = %s, want the expm key %s", alias, got, base.Key())
		}
	}
}

func TestCanonicalizeRejectsUnknownWithSuggestion(t *testing.T) {
	_, _, err := Canonicalize(Request{Scenario: "sdr-raido"})
	if err == nil || !strings.Contains(err.Error(), `did you mean "sdr-radio"?`) {
		t.Errorf("unknown scenario error = %v, want a did-you-mean for sdr-radio", err)
	}
	_, _, err = Canonicalize(Request{Policy: "thermal-balanc"})
	if err == nil || !strings.Contains(err.Error(), `did you mean "thermal-balance"?`) {
		t.Errorf("unknown policy error = %v, want a did-you-mean for thermal-balance", err)
	}
	if _, _, err := Canonicalize(Request{Delta: -1}); err == nil {
		t.Error("negative delta accepted")
	}
	if _, _, err := Canonicalize(Request{Mechanism: "teleport"}); err == nil {
		t.Error("unknown mechanism accepted")
	}
}

func TestCanonicalizeMatrix(t *testing.T) {
	canon, mc, err := CanonicalizeMatrix(MatrixRequest{
		Scenarios: []string{"sdr-radio", "sdr-radio", "video-decoder"},
		Policies:  []string{"tb", "thermal-balance", "eb"},
	})
	if err != nil {
		t.Fatalf("CanonicalizeMatrix: %v", err)
	}
	if want := []string{"sdr-radio", "video-decoder"}; !equalStrings(canon.Scenarios, want) {
		t.Errorf("scenarios = %v, want %v", canon.Scenarios, want)
	}
	if want := []string{"thermal-balance", "energy-balance"}; !equalStrings(canon.Policies, want) {
		t.Errorf("policies = %v, want %v", canon.Policies, want)
	}
	if len(mc.Scenarios) != 2 || len(mc.Policies) != 2 {
		t.Errorf("matrix config axes = %v x %v", mc.Scenarios, mc.Policies)
	}

	// Alias spellings and axis defaults canonicalize to the same key.
	k1 := canon.Key()
	canon2, _, err := CanonicalizeMatrix(MatrixRequest{
		Scenarios:  []string{"sdr-radio", "video-decoder"},
		Policies:   []string{"migra", "energy-balance"},
		Package:    "mobile",
		Mechanism:  "replication",
		Integrator: "euler",
	})
	if err != nil {
		t.Fatalf("CanonicalizeMatrix: %v", err)
	}
	if k2 := canon2.Key(); k2 != k1 {
		t.Errorf("alias matrix key %s != %s", k2, k1)
	}
	// Empty axes select everything.
	all, _, err := CanonicalizeMatrix(MatrixRequest{})
	if err != nil {
		t.Fatalf("CanonicalizeMatrix(all): %v", err)
	}
	if len(all.Scenarios) < 2 || len(all.Policies) < 2 {
		t.Errorf("empty axes resolved to %v x %v", all.Scenarios, all.Policies)
	}
	if all.Key() == k1 {
		t.Error("full matrix key collides with the 2x2 slice")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
