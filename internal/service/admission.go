package service

import (
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"
	"time"
)

// Admission control: the server's deliberate overload behavior.
//
// Three mechanisms, layered in the order a request meets them:
//
//  1. Per-tenant token-bucket quotas (429 + Retry-After). Checked at
//     the front of every costed handler (/run, /matrix, POST /jobs),
//     before the body is even decoded, so one tenant's flood cannot
//     crowd out the others' share of anything — decode CPU included.
//
//  2. Load shedding by estimated simulated-seconds cost (503 +
//     Retry-After). The unit of capacity is simulated seconds, not
//     request count: a manycore sweep cell and a half-second sdr-radio
//     probe are wildly different amounts of work, so a flat queue
//     bound either over-admits sweeps or starves probes. Every piece
//     of work that would actually execute reserves its estimated cost
//     against a bounded pending budget; cache and store hits reserve
//     nothing and are never shed.
//
//  3. Priority classes on the execution slots. Interactive work (sync
//     /run) acquires a freed MaxSims slot ahead of bulk work (async
//     job runs and decomposed sweep cells), FIFO within each class, so
//     a queued catalogue sweep cannot starve the request a human is
//     waiting on.
//
// Every overload refusal carries a Retry-After header: quota denials
// compute it exactly (time until the bucket refills one token), shed
// decisions estimate it from the pending backlog.

// Execution priority classes, highest first. The spellings in
// prioNames are the /stats and /metrics label values.
const (
	prioInteractive = iota
	prioBulk
	numPriorities

	// prioSweep selects the dedicated serialized sweep slot instead of
	// the MaxSims pool (sync /matrix bodies; see executeMatrix).
	prioSweep = -1
)

var prioNames = [numPriorities]string{"interactive", "bulk"}

// execClass describes one execution's admission parameters: the slot
// priority it queues at and the estimated simulated-seconds cost it
// must reserve before executing. cost 0 means the work is already
// accounted for (a matrix job reserves its whole sweep at submit, so
// its cells ride that reservation) or free (nothing to reserve).
type execClass struct {
	prio int
	cost float64
}

// prioSlots is the MaxSims execution semaphore with priority classes:
// a bounded count of slots plus one FIFO waiter queue per class. A
// freed slot always goes to the highest non-empty class, so
// interactive waiters overtake any amount of queued bulk work while
// work within one class stays fair.
type prioSlots struct {
	mu      sync.Mutex
	free    int
	waiters [numPriorities][]chan struct{}
}

func newPrioSlots(n int) *prioSlots { return &prioSlots{free: n} }

// acquire takes one slot at the given priority, blocking until one
// frees or ctx is done. Grants are handed off directly (the releasing
// goroutine picks the successor), so a freed slot can never be stolen
// by a later, lower-priority arrival.
func (p *prioSlots) acquire(ctx context.Context, prio int) error {
	p.mu.Lock()
	if p.free > 0 {
		p.free--
		p.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	p.waiters[prio] = append(p.waiters[prio], ch)
	p.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		p.mu.Lock()
		removed := p.removeLocked(prio, ch)
		p.mu.Unlock()
		if !removed {
			// The grant raced the cancellation: release had already
			// handed this waiter the slot. Pass it on.
			p.release()
		}
		return ctx.Err()
	}
}

// removeLocked unlinks a cancelled waiter; false means release already
// granted it the slot.
func (p *prioSlots) removeLocked(prio int, ch chan struct{}) bool {
	for i, w := range p.waiters[prio] {
		if w == ch {
			p.waiters[prio] = append(p.waiters[prio][:i], p.waiters[prio][i+1:]...)
			return true
		}
	}
	return false
}

// release frees one slot, handing it to the oldest waiter of the
// highest non-empty class.
func (p *prioSlots) release() {
	p.mu.Lock()
	for prio := 0; prio < numPriorities; prio++ {
		if len(p.waiters[prio]) > 0 {
			ch := p.waiters[prio][0]
			p.waiters[prio] = p.waiters[prio][1:]
			p.mu.Unlock()
			close(ch)
			return
		}
	}
	p.free++
	p.mu.Unlock()
}

// depths snapshots the per-class waiter counts and the free slots (the
// /stats exec-queue block and the /metrics depth gauges).
func (p *prioSlots) depths() (waiting [numPriorities]int, free int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for prio := range p.waiters {
		waiting[prio] = len(p.waiters[prio])
	}
	return waiting, p.free
}

// costBudget bounds the total estimated simulated seconds of work
// admitted but not yet finished. It replaces a flat "how many things
// are queued" cap with "how much work is queued": admission compares
// the request's cost against the remaining budget.
type costBudget struct {
	mu      sync.Mutex
	max     float64 // 0 disables the bound
	pending float64
}

// admit reserves cost against the budget; false means the caller must
// shed. An idle budget (nothing pending) always admits, whatever the
// cost — otherwise a single job larger than the whole budget could
// never run at all; the bound's job is to limit the backlog, not the
// maximum job size.
func (b *costBudget) admit(cost float64) bool {
	if b.max <= 0 || cost <= 0 {
		if cost > 0 {
			b.mu.Lock()
			b.pending += cost
			b.mu.Unlock()
		}
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.pending > 0 && b.pending+cost > b.max {
		return false
	}
	b.pending += cost
	return true
}

// forceReserve reserves cost unconditionally, even past the bound.
// Journal-recovered jobs use it: a previous process already admitted
// them, so refusing now would strand durable work — but their cost
// still counts against the budget new arrivals see.
func (b *costBudget) forceReserve(cost float64) {
	if cost <= 0 {
		return
	}
	b.mu.Lock()
	b.pending += cost
	b.mu.Unlock()
}

// release returns a finished (or failed) piece of work's reservation.
func (b *costBudget) release(cost float64) {
	if cost <= 0 {
		return
	}
	b.mu.Lock()
	b.pending -= cost
	if b.pending < 0 {
		b.pending = 0
	}
	b.mu.Unlock()
}

// pendingSimS snapshots the reserved backlog.
func (b *costBudget) pendingSimS() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pending
}

// shedRetryAfter estimates how long a shed caller should back off: the
// pending backlog divided by a rough drain rate. The engine typically
// simulates tens of times faster than real time per execution slot
// (see BENCH_*.json: manycore runs ~12x, small scenarios far faster),
// so the estimate uses a conservative 20x per slot and clamps to
// [1s, 60s]. It is a hint, not a promise — the point is that every
// 503 tells the client something better than "immediately hammer me
// again".
func shedRetryAfter(pendingSimS float64, maxSims int) time.Duration {
	if maxSims < 1 {
		maxSims = 1
	}
	drainPerSec := 20 * float64(maxSims)
	s := math.Ceil(pendingSimS / drainPerSec)
	if s < 1 {
		s = 1
	}
	if s > 60 {
		s = 60
	}
	return time.Duration(s) * time.Second
}

// shedError is the typed refusal the execute ladder returns when the
// cost budget is exhausted; the handlers map it to 503 + Retry-After.
type shedError struct {
	retryAfter time.Duration
}

func (e *shedError) Error() string {
	return fmt.Sprintf("pending work exceeds the simulated-seconds budget; retry in %s", e.retryAfter)
}

// tokenBucket is one tenant's refilling budget.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// tenantQuotas is the per-tenant token-bucket table. Buckets refill at
// rps tokens per second up to burst; each admitted request spends one
// token. Tenants are created on first sight and pruned once their
// bucket has refilled completely (a full bucket is indistinguishable
// from a brand-new one, so dropping it loses nothing).
type tenantQuotas struct {
	mu        sync.Mutex
	rps       float64
	burst     float64
	m         map[string]*tokenBucket
	denied    int64
	now       func() time.Time // test seam
	maxBucket int              // prune scan threshold
}

func newTenantQuotas(rps, burst float64) *tenantQuotas {
	if burst < 1 {
		burst = math.Max(1, math.Ceil(2*rps))
	}
	return &tenantQuotas{
		rps:       rps,
		burst:     burst,
		m:         map[string]*tokenBucket{},
		now:       time.Now,
		maxBucket: 4096,
	}
}

// take spends one token from tenant's bucket. ok=false means the
// tenant is over quota; retryAfter is the exact time until the bucket
// holds one token again.
func (q *tenantQuotas) take(tenant string) (ok bool, retryAfter time.Duration) {
	now := q.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.m[tenant]
	if b == nil {
		if len(q.m) >= q.maxBucket {
			q.pruneLocked(now)
		}
		b = &tokenBucket{tokens: q.burst, last: now}
		q.m[tenant] = b
	} else {
		b.tokens = math.Min(q.burst, b.tokens+q.rps*now.Sub(b.last).Seconds())
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	q.denied++
	need := (1 - b.tokens) / q.rps
	return false, time.Duration(math.Ceil(need * float64(time.Second)))
}

// pruneLocked drops every bucket that has refilled to burst — tenants
// idle long enough that forgetting them changes nothing.
func (q *tenantQuotas) pruneLocked(now time.Time) {
	for tenant, b := range q.m {
		if math.Min(q.burst, b.tokens+q.rps*now.Sub(b.last).Seconds()) >= q.burst {
			delete(q.m, tenant)
		}
	}
}

// stats snapshots the tenant count and cumulative denials.
func (q *tenantQuotas) stats() (tenants int, denied int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.m), q.denied
}

// tenantOf identifies the requesting tenant: the configured header
// when present, else the remote IP (port stripped, so one host's
// ephemeral ports share a bucket).
func (s *Server) tenantOf(r *http.Request) string {
	if t := r.Header.Get(s.cfg.TenantHeader); t != "" {
		return t
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// Shed reasons, indexed for the /stats and /metrics counters.
const (
	shedCost = iota
	shedQueueFull
	numShedReasons
)

var shedReasonNames = [numShedReasons]string{"cost", "queue_full"}

// checkQuota enforces the per-tenant quota at the front of a costed
// handler. It writes the 429 itself and reports whether the request
// may proceed.
func (s *Server) checkQuota(w http.ResponseWriter, r *http.Request) bool {
	if s.quota == nil {
		return true
	}
	tenant := s.tenantOf(r)
	ok, retryAfter := s.quota.take(tenant)
	if ok {
		return true
	}
	setRetryAfter(w, retryAfter)
	writeError(w, http.StatusTooManyRequests,
		fmt.Errorf("tenant %q over quota (%g req/s, burst %g); retry in %s",
			tenant, s.quota.rps, s.quota.burst, retryAfter))
	return false
}

// setRetryAfter stamps the integer-seconds Retry-After header (ceil,
// minimum 1: a zero would invite an immediate identical retry).
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
}
