// Package mpsoc assembles the emulated platform: the floorplan, the
// thermal model, the power model, the shared bus, the DVFS governor and
// the per-core power state — the hardware half of the paper's emulation
// framework (Section 4). The simulation engine (internal/sim) drives it.
package mpsoc

import (
	"fmt"

	"thermbal/internal/bus"
	"thermbal/internal/dvfs"
	"thermbal/internal/floorplan"
	"thermbal/internal/power"
	"thermbal/internal/thermal"
)

// Platform is the hardware state of the emulated MPSoC.
type Platform struct {
	FP      *floorplan.Floorplan
	Thermal *thermal.Model
	Power   *power.Model
	Bus     *bus.Bus
	Gov     *dvfs.Governor

	powered []bool

	// Per-core floorplan block indices.
	coreBlk, icacheBlk, dcacheBlk []int
	memBlk                        int

	// Per-block accumulated energy over the current sensor window (J).
	energyWin []float64
	// Total energy since construction (J).
	TotalEnergyJ float64
	// Per-core busy cycles over the current sensor window.
	busyWin []float64
	// Per-core capacity cycles (freq integrated) over the window.
	capWin []float64
	// lastBusBusy snapshots bus busy-seconds to derive per-tick activity.
	lastBusBusy float64

	// powerBuf is the per-block power vector handed to the thermal model.
	powerBuf []float64
	// utilBuf backs FlushWindow's returned utilization vector (reused
	// across windows so the steady-state loop stays allocation-free).
	utilBuf []float64
}

// Config selects the platform components.
type Config struct {
	// Floorplan defaults to the paper's 3-core streaming MPSoC.
	Floorplan *floorplan.Floorplan
	// Package defaults to thermal.MobileEmbedded().
	Package thermal.Package
	// PowerParams defaults to the Conf1 streaming core model.
	PowerParams power.Params
	// BusParams defaults to the middleware-effective 4 MB/s bus.
	BusParams bus.Params
	// Ladder defaults to 533/266/133 MHz.
	Ladder *dvfs.Ladder
}

// New assembles a platform.
func New(cfg Config) (*Platform, error) {
	if cfg.Floorplan == nil {
		cfg.Floorplan = floorplan.Default3Core()
	}
	if cfg.Package.Name == "" {
		cfg.Package = thermal.MobileEmbedded()
	}
	if cfg.Ladder == nil {
		cfg.Ladder = dvfs.Default()
	}
	tm, err := thermal.NewModel(cfg.Floorplan, cfg.Package)
	if err != nil {
		return nil, fmt.Errorf("mpsoc: %w", err)
	}
	n := cfg.Floorplan.NumCores()
	if n == 0 {
		return nil, fmt.Errorf("mpsoc: floorplan has no cores")
	}
	p := &Platform{
		FP:        cfg.Floorplan,
		Thermal:   tm,
		Power:     power.NewModel(cfg.PowerParams),
		Bus:       bus.New(cfg.BusParams),
		Gov:       dvfs.NewGovernor(cfg.Ladder, n),
		powered:   make([]bool, n),
		coreBlk:   make([]int, n),
		icacheBlk: make([]int, n),
		dcacheBlk: make([]int, n),
		memBlk:    -1,
		energyWin: make([]float64, len(cfg.Floorplan.Blocks)),
		busyWin:   make([]float64, n),
		capWin:    make([]float64, n),
		powerBuf:  make([]float64, len(cfg.Floorplan.Blocks)),
	}
	for i := range p.coreBlk {
		p.coreBlk[i], p.icacheBlk[i], p.dcacheBlk[i] = -1, -1, -1
	}
	for i, blk := range cfg.Floorplan.Blocks {
		switch blk.Kind {
		case floorplan.KindCore:
			p.coreBlk[blk.CoreID] = i
		case floorplan.KindICache:
			p.icacheBlk[blk.CoreID] = i
		case floorplan.KindDCache:
			p.dcacheBlk[blk.CoreID] = i
		case floorplan.KindSharedMem:
			p.memBlk = i
		}
	}
	for c := 0; c < n; c++ {
		if p.coreBlk[c] < 0 {
			return nil, fmt.Errorf("mpsoc: core %d has no core block", c)
		}
	}
	for i := range p.powered {
		p.powered[i] = true
	}
	return p, nil
}

// NumCores returns the core count.
func (p *Platform) NumCores() int { return len(p.powered) }

// Powered reports whether core c is running (false = Stop&Go shutdown).
func (p *Platform) Powered(c int) bool { return p.powered[c] }

// SetPowered gates core c on or off. Stopping a core also drops its
// frequency to 0 in the governor; restarting restores the given level.
func (p *Platform) SetPowered(c int, on bool, restoreFSE float64) {
	if p.powered[c] == on {
		return
	}
	p.powered[c] = on
	if on {
		p.Gov.Update(c, restoreFSE)
	} else {
		// Setting frequency 0 is always valid.
		if err := p.Gov.Set(c, 0); err != nil {
			panic(err) // unreachable: 0 is accepted for any ladder
		}
	}
}

// Frequency returns the operating frequency of core c (0 when stopped).
func (p *Platform) Frequency(c int) float64 {
	if !p.powered[c] {
		return 0
	}
	return p.Gov.Frequency(c)
}

// CoreTemp returns the die temperature of core c in °C.
func (p *Platform) CoreTemp(c int) float64 {
	return p.Thermal.BlockTemp(p.coreBlk[c])
}

// CoreTemps fills dst with all core temperatures (allocating if nil).
func (p *Platform) CoreTemps(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, p.NumCores())
	}
	for c := range p.powered {
		dst[c] = p.CoreTemp(c)
	}
	return dst
}

// AccountSpan accrues a span of dt seconds of activity for core c:
// busyCycles executed out of the capacity f*dt, converting activity
// into energy on the core and cache blocks. The caller guarantees the
// core's frequency, power state and die temperature were constant over
// the span; because every component power model is affine in activity,
// one span evaluation then equals the sum of its per-tick evaluations,
// which is what lets the simulation engine account macro-steps and
// plain ticks identically.
func (p *Platform) AccountSpan(c int, dt, busyCycles float64) {
	if dt <= 0 {
		return
	}
	f := p.Frequency(c)
	capCycles := f * dt
	util := 0.0
	if capCycles > 0 {
		util = busyCycles / capCycles
		if util > 1 {
			util = 1
		}
	}
	p.busyWin[c] += busyCycles
	p.capWin[c] += capCycles

	tempC := p.CoreTemp(c)
	pw := p.Power.Core(f, util, tempC, p.powered[c])
	p.energyWin[p.coreBlk[c]] += pw * dt
	if p.icacheBlk[c] >= 0 {
		p.energyWin[p.icacheBlk[c]] += p.Power.ICache(f, util) * dt
	}
	if p.dcacheBlk[c] >= 0 {
		// Data-side activity is a fraction of instruction activity for
		// the streaming kernels.
		p.energyWin[p.dcacheBlk[c]] += p.Power.DCache(f, 0.6*util) * dt
	}
}

// AccountShared accrues shared-memory energy for a span of dt seconds
// from bus activity (the fraction of the span the bus moved data since
// the previous call). The shared-memory power model is affine in
// activity, so one call over a sensor window equals the per-tick sum.
func (p *Platform) AccountShared(dt float64) {
	if p.memBlk < 0 || dt <= 0 {
		return
	}
	busy := p.Bus.BusySeconds()
	act := (busy - p.lastBusBusy) / dt
	p.lastBusBusy = busy
	if act < 0 {
		act = 0
	} else if act > 1 {
		act = 1
	}
	p.energyWin[p.memBlk] += p.Power.SharedMem(act) * dt
}

// FlushWindow converts the accumulated window energy into the average
// power vector, advances the thermal model by windowS, and resets the
// accumulators. It returns the per-core utilization over the window;
// the returned slice is owned by the platform and overwritten by the
// next call.
func (p *Platform) FlushWindow(windowS float64) ([]float64, error) {
	for i, e := range p.energyWin {
		p.powerBuf[i] = e / windowS
		p.TotalEnergyJ += e
		p.energyWin[i] = 0
	}
	if p.utilBuf == nil {
		p.utilBuf = make([]float64, p.NumCores())
	}
	util := p.utilBuf
	for c := range util {
		if p.capWin[c] > 0 {
			util[c] = p.busyWin[c] / p.capWin[c]
		}
		p.busyWin[c] = 0
		p.capWin[c] = 0
	}
	if err := p.Thermal.Step(windowS, p.powerBuf); err != nil {
		return nil, err
	}
	return util, nil
}

// SettleThermal jumps the thermal state to the steady state for a
// constant per-core utilization/frequency operating point. Used to skip
// the warm-up transient in repeated experiments (the paper's 12.5 s
// initial phase) when the caller wants speed over fidelity.
func (p *Platform) SettleThermal(util []float64) error {
	bp := make([]float64, len(p.FP.Blocks))
	for c := 0; c < p.NumCores(); c++ {
		f := p.Frequency(c)
		u := util[c]
		// Use leakage at an estimate near the expected operating
		// temperature; one fixed-point refinement below.
		bp[p.coreBlk[c]] = p.Power.Core(f, u, 60, p.powered[c])
		if p.icacheBlk[c] >= 0 {
			bp[p.icacheBlk[c]] = p.Power.ICache(f, u)
		}
		if p.dcacheBlk[c] >= 0 {
			bp[p.dcacheBlk[c]] = p.Power.DCache(f, 0.6*u)
		}
	}
	if p.memBlk >= 0 {
		bp[p.memBlk] = p.Power.SharedMem(0.05)
	}
	if err := p.Thermal.Settle(bp); err != nil {
		return err
	}
	// Refine once with leakage at the settled temperatures.
	for c := 0; c < p.NumCores(); c++ {
		f := p.Frequency(c)
		bp[p.coreBlk[c]] = p.Power.Core(f, util[c], p.CoreTemp(c), p.powered[c])
	}
	return p.Thermal.Settle(bp)
}
