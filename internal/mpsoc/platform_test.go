package mpsoc

import (
	"math"
	"testing"

	"thermbal/internal/floorplan"
	"thermbal/internal/thermal"
)

func newPlat(t *testing.T) *Platform {
	t.Helper()
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDefaults(t *testing.T) {
	p := newPlat(t)
	if p.NumCores() != 3 {
		t.Fatalf("NumCores = %d", p.NumCores())
	}
	for c := 0; c < 3; c++ {
		if !p.Powered(c) {
			t.Errorf("core %d not powered initially", c)
		}
		if p.Frequency(c) != 133e6 {
			t.Errorf("core %d initial freq = %g, want ladder min", c, p.Frequency(c))
		}
		if p.CoreTemp(c) != 25 {
			t.Errorf("core %d initial temp = %g, want ambient", c, p.CoreTemp(c))
		}
	}
}

func TestNewRejectsCorelessFloorplan(t *testing.T) {
	fp := floorplan.MustNew([]floorplan.Block{
		{Name: "mem", Kind: floorplan.KindSharedMem, CoreID: -1, W: 1e-3, H: 1e-3},
	})
	if _, err := New(Config{Floorplan: fp}); err == nil {
		t.Error("floorplan without cores accepted")
	}
}

func TestSetPoweredGatesFrequency(t *testing.T) {
	p := newPlat(t)
	p.Gov.Update(0, 0.65)
	if p.Frequency(0) != 533e6 {
		t.Fatalf("freq = %g", p.Frequency(0))
	}
	p.SetPowered(0, false, 0)
	if p.Powered(0) || p.Frequency(0) != 0 {
		t.Error("stop did not gate the core")
	}
	// Redundant stop is a no-op.
	p.SetPowered(0, false, 0)
	p.SetPowered(0, true, 0.65)
	if !p.Powered(0) || p.Frequency(0) != 533e6 {
		t.Errorf("restart state: powered=%v freq=%g", p.Powered(0), p.Frequency(0))
	}
}

func TestCoreTempsBuffer(t *testing.T) {
	p := newPlat(t)
	ts := p.CoreTemps(nil)
	if len(ts) != 3 {
		t.Fatalf("CoreTemps len = %d", len(ts))
	}
	reuse := make([]float64, 3)
	if got := p.CoreTemps(reuse); &got[0] != &reuse[0] {
		t.Error("CoreTemps did not reuse buffer")
	}
}

func TestAccountAndFlushWindow(t *testing.T) {
	p := newPlat(t)
	p.Gov.Update(0, 0.65) // 533 MHz
	const tick = 100e-6
	const window = 10e-3
	// 100 ticks of 65% busy on core 0, idle elsewhere.
	for i := 0; i < 100; i++ {
		for c := 0; c < 3; c++ {
			busy := 0.0
			if c == 0 {
				busy = 0.65 * p.Frequency(0) * tick
			}
			p.AccountSpan(c, tick, busy)
		}
		p.AccountShared(tick)
	}
	util, err := p.FlushWindow(window)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(util[0]-0.65) > 1e-9 {
		t.Errorf("core0 window utilization = %g, want 0.65", util[0])
	}
	if util[1] != 0 {
		t.Errorf("core1 utilization = %g, want 0", util[1])
	}
	if p.TotalEnergyJ <= 0 {
		t.Error("no energy accumulated")
	}
	// The heated core must warm above ambient after the flush.
	if p.CoreTemp(0) <= 25 {
		t.Errorf("core0 temp = %g after heating window", p.CoreTemp(0))
	}
	// Window accumulators reset: an immediate flush yields zero power.
	e0 := p.TotalEnergyJ
	if _, err := p.FlushWindow(window); err != nil {
		t.Fatal(err)
	}
	if p.TotalEnergyJ != e0 {
		t.Error("energy accrued from empty window")
	}
}

func TestAccountSpanClampsUtilization(t *testing.T) {
	p := newPlat(t)
	p.Gov.Update(0, 0.65)
	// Report more busy cycles than capacity: power must not explode.
	p.AccountSpan(0, 100e-6, 1e12)
	util, err := p.FlushWindow(10e-3)
	if err != nil {
		t.Fatal(err)
	}
	_ = util
	if p.TotalEnergyJ > 1e-3 {
		t.Errorf("energy %g J from one clamped tick", p.TotalEnergyJ)
	}
}

func TestSettleThermalMatchesLongRun(t *testing.T) {
	// SettleThermal must land near the temperatures a long constant-load
	// simulation reaches.
	pA := newPlat(t)
	pB := newPlat(t)
	for _, p := range []*Platform{pA, pB} {
		p.Gov.Update(0, 0.65)
		p.Gov.Update(1, 0.335)
		p.Gov.Update(2, 0.398)
	}
	util := []float64{0.65, 0.67, 0.8}
	if err := pA.SettleThermal(util); err != nil {
		t.Fatal(err)
	}
	// Long run on pB with matching per-tick accounting.
	const tick = 1e-3
	for i := 0; i < 60000; i++ {
		for c := 0; c < 3; c++ {
			p := pB
			p.AccountSpan(c, tick, util[c]*p.Frequency(c)*tick)
		}
		if i%10 == 9 {
			if _, err := pB.FlushWindow(10 * tick); err != nil {
				t.Fatal(err)
			}
		}
	}
	for c := 0; c < 3; c++ {
		if d := math.Abs(pA.CoreTemp(c) - pB.CoreTemp(c)); d > 1.0 {
			t.Errorf("core%d: settle %g vs simulated %g", c+1, pA.CoreTemp(c), pB.CoreTemp(c))
		}
	}
}

func TestHighPerformancePlatform(t *testing.T) {
	p, err := New(Config{Package: thermal.HighPerformance()})
	if err != nil {
		t.Fatal(err)
	}
	if p.Thermal.Package().Name != "high-performance" {
		t.Errorf("package = %q", p.Thermal.Package().Name)
	}
}
