package floorplan

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewRejectsEmpty(t *testing.T) {
	if _, err := New(nil); err != ErrEmpty {
		t.Fatalf("New(nil) err = %v, want ErrEmpty", err)
	}
}

func TestNewRejectsBadBlocks(t *testing.T) {
	cases := []struct {
		name   string
		blocks []Block
		substr string
	}{
		{
			name:   "empty name",
			blocks: []Block{{Name: "", W: 1, H: 1}},
			substr: "empty name",
		},
		{
			name:   "zero width",
			blocks: []Block{{Name: "a", W: 0, H: 1}},
			substr: "non-positive size",
		},
		{
			name:   "negative height",
			blocks: []Block{{Name: "a", W: 1, H: -2}},
			substr: "non-positive size",
		},
		{
			name: "duplicate name",
			blocks: []Block{
				{Name: "a", W: 1, H: 1},
				{Name: "a", X: 5, W: 1, H: 1},
			},
			substr: "duplicate",
		},
		{
			name: "overlap",
			blocks: []Block{
				{Name: "a", W: 2, H: 2},
				{Name: "b", X: 1, Y: 1, W: 2, H: 2},
			},
			substr: "overlap",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.blocks)
			if err == nil {
				t.Fatalf("New(%v) succeeded, want error containing %q", tc.blocks, tc.substr)
			}
			if !strings.Contains(err.Error(), tc.substr) {
				t.Fatalf("New error = %q, want substring %q", err, tc.substr)
			}
		})
	}
}

func TestTouchingBlocksDoNotOverlap(t *testing.T) {
	fp, err := New([]Block{
		{Name: "a", X: 0, Y: 0, W: 1, H: 1},
		{Name: "b", X: 1, Y: 0, W: 1, H: 1},
	})
	if err != nil {
		t.Fatalf("touching blocks rejected: %v", err)
	}
	if len(fp.Adjacencies) != 1 {
		t.Fatalf("adjacencies = %d, want 1", len(fp.Adjacencies))
	}
	adj := fp.Adjacencies[0]
	if adj.SharedEdge != 1 {
		t.Errorf("shared edge = %g, want 1", adj.SharedEdge)
	}
	if math.Abs(adj.Distance-1) > 1e-12 {
		t.Errorf("distance = %g, want 1", adj.Distance)
	}
}

func TestPartialSharedEdge(t *testing.T) {
	fp, err := New([]Block{
		{Name: "a", X: 0, Y: 0, W: 1, H: 2},
		{Name: "b", X: 1, Y: 1, W: 1, H: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Adjacencies) != 1 {
		t.Fatalf("adjacencies = %d, want 1", len(fp.Adjacencies))
	}
	if got := fp.Adjacencies[0].SharedEdge; math.Abs(got-1) > 1e-12 {
		t.Errorf("shared edge = %g, want 1", got)
	}
}

func TestCornerContactIsNotAdjacent(t *testing.T) {
	fp, err := New([]Block{
		{Name: "a", X: 0, Y: 0, W: 1, H: 1},
		{Name: "b", X: 1, Y: 1, W: 1, H: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Adjacencies) != 0 {
		t.Fatalf("corner contact produced %d adjacencies, want 0", len(fp.Adjacencies))
	}
}

func TestSeparatedBlocksNotAdjacent(t *testing.T) {
	fp, err := New([]Block{
		{Name: "a", X: 0, Y: 0, W: 1, H: 1},
		{Name: "b", X: 3, Y: 0, W: 1, H: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Adjacencies) != 0 {
		t.Fatalf("separated blocks adjacency = %d, want 0", len(fp.Adjacencies))
	}
}

func TestIndexAndBlockLookup(t *testing.T) {
	fp := Default3Core()
	i, ok := fp.Index("core2")
	if !ok {
		t.Fatal("core2 not found")
	}
	if fp.Blocks[i].Name != "core2" {
		t.Errorf("Index returned wrong block %q", fp.Blocks[i].Name)
	}
	if _, ok := fp.Index("nosuch"); ok {
		t.Error("Index found nonexistent block")
	}
	b := fp.Block("sharedmem")
	if b.Kind != KindSharedMem {
		t.Errorf("sharedmem kind = %v", b.Kind)
	}
	defer func() {
		if recover() == nil {
			t.Error("Block(unknown) did not panic")
		}
	}()
	fp.Block("nosuch")
}

func TestDefault3CoreStructure(t *testing.T) {
	fp := Default3Core()
	if got := fp.NumCores(); got != 3 {
		t.Fatalf("NumCores = %d, want 3", got)
	}
	if got := len(fp.Blocks); got != 10 {
		t.Fatalf("blocks = %d, want 10 (3x(core+i$+d$) + sharedmem)", got)
	}
	cores := fp.CoreBlocks()
	if len(cores) != 3 {
		t.Fatalf("CoreBlocks = %d, want 3", len(cores))
	}
	for i, ci := range cores {
		if fp.Blocks[ci].CoreID != i {
			t.Errorf("core block %d has CoreID %d, want %d", ci, fp.Blocks[ci].CoreID, i)
		}
	}
	// Every tile owns exactly three blocks.
	for id := 0; id < 3; id++ {
		if got := len(fp.BlocksOfCore(id)); got != 3 {
			t.Errorf("BlocksOfCore(%d) = %d blocks, want 3", id, got)
		}
	}
	// The shared memory strip must touch all three tiles (it is the main
	// lateral heat-spreading path in the thermal model).
	smi, _ := fp.Index("sharedmem")
	touches := map[int]bool{}
	for _, adj := range fp.Adjacencies {
		if adj.A == smi {
			touches[fp.Blocks[adj.B].CoreID] = true
		}
		if adj.B == smi {
			touches[fp.Blocks[adj.A].CoreID] = true
		}
	}
	for id := 0; id < 3; id++ {
		if !touches[id] {
			t.Errorf("sharedmem does not touch tile %d", id)
		}
	}
}

func TestDefault3CoreChainTopology(t *testing.T) {
	fp := Default3Core()
	// core1 must reach core2's tile via the caches between them, and the
	// icache of each tile must touch its own core.
	for i := 1; i <= 3; i++ {
		ci, _ := fp.Index(blockName("core", i))
		ii, _ := fp.Index(blockName("icache", i))
		if !adjacent(fp, ci, ii) {
			t.Errorf("core%d not adjacent to icache%d", i, i)
		}
	}
	// icache1/dcache1 are adjacent to core2 (tile boundary).
	c2, _ := fp.Index("core2")
	i1, _ := fp.Index("icache1")
	d1, _ := fp.Index("dcache1")
	if !adjacent(fp, c2, i1) || !adjacent(fp, c2, d1) {
		t.Error("tile 1 caches not adjacent to core2: lateral chain broken")
	}
	// core1 and core3 are not directly adjacent.
	c1, _ := fp.Index("core1")
	c3, _ := fp.Index("core3")
	if adjacent(fp, c1, c3) {
		t.Error("core1 adjacent to core3, want separation")
	}
}

func adjacent(fp *Floorplan, a, b int) bool {
	if a > b {
		a, b = b, a
	}
	for _, adj := range fp.Adjacencies {
		if adj.A == a && adj.B == b {
			return true
		}
	}
	return false
}

func blockName(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}

func TestDieExtentAndArea(t *testing.T) {
	fp := Default3Core()
	x, y, w, h := fp.DieExtent()
	if x != 0 || y != 0 {
		t.Errorf("die origin = (%g,%g), want (0,0)", x, y)
	}
	if math.Abs(w-6*mm) > 1e-12 {
		t.Errorf("die width = %g, want %g", w, 6*mm)
	}
	if math.Abs(h-2*mm) > 1e-12 {
		t.Errorf("die height = %g, want %g", h, 2*mm)
	}
	// Blocks tile the die exactly in this floorplan.
	if got, want := fp.TotalArea(), w*h; math.Abs(got-want) > 1e-12 {
		t.Errorf("total block area = %g, want %g (die fully tiled)", got, want)
	}
}

func TestStreamingMPSoCScales(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		fp := StreamingMPSoC(n)
		if fp.NumCores() != n {
			t.Errorf("StreamingMPSoC(%d).NumCores = %d", n, fp.NumCores())
		}
		if len(fp.Blocks) != 3*n+1 {
			t.Errorf("StreamingMPSoC(%d) blocks = %d, want %d", n, len(fp.Blocks), 3*n+1)
		}
	}
}

func TestStreamingMPSoCPanicsOnZeroCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("StreamingMPSoC(0) did not panic")
		}
	}()
	StreamingMPSoC(0)
}

// Property: adjacency is symmetric in construction (A < B held) and the
// shared edge length never exceeds the smaller block perimeter dimension.
func TestAdjacencyProperties(t *testing.T) {
	fp := Default3Core()
	for _, adj := range fp.Adjacencies {
		if adj.A >= adj.B {
			t.Errorf("adjacency not ordered: %+v", adj)
		}
		a, b := fp.Blocks[adj.A], fp.Blocks[adj.B]
		maxEdge := math.Max(math.Max(a.W, a.H), math.Max(b.W, b.H))
		if adj.SharedEdge > maxEdge+1e-12 {
			t.Errorf("shared edge %g longer than any block side %g", adj.SharedEdge, maxEdge)
		}
		if adj.Distance <= 0 {
			t.Errorf("non-positive centre distance %g", adj.Distance)
		}
	}
}

// Property-based: overlapArea is symmetric and non-negative for arbitrary
// block pairs.
func TestOverlapAreaProperties(t *testing.T) {
	f := func(ax, ay, bx, by uint8, aw, ah, bw, bh uint8) bool {
		a := Block{Name: "a", X: float64(ax), Y: float64(ay), W: float64(aw%16) + 1, H: float64(ah%16) + 1}
		b := Block{Name: "b", X: float64(bx), Y: float64(by), W: float64(bw%16) + 1, H: float64(bh%16) + 1}
		o1, o2 := overlapArea(a, b), overlapArea(b, a)
		if o1 < 0 || o2 < 0 {
			return false
		}
		return math.Abs(o1-o2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property-based: sharedEdge is symmetric.
func TestSharedEdgeSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by uint8, aw, ah, bw, bh uint8) bool {
		a := Block{X: float64(ax % 8), Y: float64(ay % 8), W: float64(aw%8) + 1, H: float64(ah%8) + 1}
		b := Block{X: float64(bx % 8), Y: float64(by % 8), W: float64(bw%8) + 1, H: float64(bh%8) + 1}
		return math.Abs(sharedEdge(a, b)-sharedEdge(b, a)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockKindString(t *testing.T) {
	kinds := map[BlockKind]string{
		KindCore:         "core",
		KindICache:       "icache",
		KindDCache:       "dcache",
		KindSharedMem:    "sharedmem",
		KindInterconnect: "interconnect",
		KindOther:        "other",
		BlockKind(99):    "other",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("BlockKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
