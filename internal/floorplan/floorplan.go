// Package floorplan models the 2-D geometry of an MPSoC die: rectangular
// functional blocks, their placement, and the adjacency relation between
// them. The thermal package builds its RC network from this geometry:
// every block becomes a thermal node, and lateral heat spreading between
// two blocks is proportional to the length of their shared edge.
//
// Dimensions are in metres. The package also ships the concrete floorplan
// used throughout the reproduction: the 3-core streaming MPSoC of the
// paper's Figure 5 (three RISC tiles, each with an I-cache and a D-cache,
// plus a shared on-chip memory).
package floorplan

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// BlockKind classifies a functional block. The power model uses the kind
// to select the right component power figures (paper Table 1).
type BlockKind int

const (
	// KindCore is a RISC processor tile.
	KindCore BlockKind = iota
	// KindICache is an instruction cache.
	KindICache
	// KindDCache is a data cache.
	KindDCache
	// KindSharedMem is the on-chip shared memory.
	KindSharedMem
	// KindInterconnect is bus / NoC area.
	KindInterconnect
	// KindOther is any block with no modelled activity (pads, glue).
	KindOther
)

// String returns a human-readable name for the kind.
func (k BlockKind) String() string {
	switch k {
	case KindCore:
		return "core"
	case KindICache:
		return "icache"
	case KindDCache:
		return "dcache"
	case KindSharedMem:
		return "sharedmem"
	case KindInterconnect:
		return "interconnect"
	default:
		return "other"
	}
}

// Block is an axis-aligned rectangle on the die.
type Block struct {
	// Name uniquely identifies the block within a floorplan.
	Name string
	// Kind selects the power model for the block.
	Kind BlockKind
	// CoreID associates the block with a processor tile (caches carry
	// the ID of their core). Blocks not tied to a core use -1.
	CoreID int
	// X, Y is the lower-left corner in metres.
	X, Y float64
	// W, H are width and height in metres.
	W, H float64
}

// Area returns the block area in square metres.
func (b Block) Area() float64 { return b.W * b.H }

// CenterX returns the x coordinate of the block centre.
func (b Block) CenterX() float64 { return b.X + b.W/2 }

// CenterY returns the y coordinate of the block centre.
func (b Block) CenterY() float64 { return b.Y + b.H/2 }

// Adjacency records that two blocks share a boundary segment.
type Adjacency struct {
	// A and B are indices into Floorplan.Blocks, with A < B.
	A, B int
	// SharedEdge is the length in metres of the common boundary.
	SharedEdge float64
	// Distance is the centre-to-centre distance in metres.
	Distance float64
}

// Floorplan is a validated set of placed blocks plus the derived
// adjacency relation.
type Floorplan struct {
	Blocks      []Block
	Adjacencies []Adjacency

	byName map[string]int
}

// ErrEmpty is returned when a floorplan has no blocks.
var ErrEmpty = errors.New("floorplan: no blocks")

// geomEps absorbs floating-point noise when testing block contact and
// overlap (1 nm at die scale).
const geomEps = 1e-9

// New validates the block set and computes adjacency. It returns an error
// if blocks overlap, have non-positive dimensions, or share a name.
func New(blocks []Block) (*Floorplan, error) {
	if len(blocks) == 0 {
		return nil, ErrEmpty
	}
	byName := make(map[string]int, len(blocks))
	for i, b := range blocks {
		if b.Name == "" {
			return nil, fmt.Errorf("floorplan: block %d has empty name", i)
		}
		if b.W <= 0 || b.H <= 0 {
			return nil, fmt.Errorf("floorplan: block %q has non-positive size %gx%g", b.Name, b.W, b.H)
		}
		if j, dup := byName[b.Name]; dup {
			return nil, fmt.Errorf("floorplan: duplicate block name %q (indices %d and %d)", b.Name, j, i)
		}
		byName[b.Name] = i
	}
	for i := 0; i < len(blocks); i++ {
		for j := i + 1; j < len(blocks); j++ {
			if overlapArea(blocks[i], blocks[j]) > geomEps {
				return nil, fmt.Errorf("floorplan: blocks %q and %q overlap", blocks[i].Name, blocks[j].Name)
			}
		}
	}
	fp := &Floorplan{Blocks: append([]Block(nil), blocks...), byName: byName}
	fp.computeAdjacency()
	return fp, nil
}

// MustNew is New, panicking on error. Intended for package-level
// floorplan constructors whose geometry is fixed at compile time.
func MustNew(blocks []Block) *Floorplan {
	fp, err := New(blocks)
	if err != nil {
		panic(err)
	}
	return fp
}

// overlapArea returns the interior intersection area of two blocks.
func overlapArea(a, b Block) float64 {
	w := math.Min(a.X+a.W, b.X+b.W) - math.Max(a.X, b.X)
	h := math.Min(a.Y+a.H, b.Y+b.H) - math.Max(a.Y, b.Y)
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// sharedEdge returns the length of the boundary segment two blocks share,
// or 0 if they do not touch.
func sharedEdge(a, b Block) float64 {
	// Touching vertically (a right edge meets b left edge or vice versa).
	if math.Abs((a.X+a.W)-b.X) < geomEps || math.Abs((b.X+b.W)-a.X) < geomEps {
		lo := math.Max(a.Y, b.Y)
		hi := math.Min(a.Y+a.H, b.Y+b.H)
		if hi-lo > geomEps {
			return hi - lo
		}
	}
	// Touching horizontally.
	if math.Abs((a.Y+a.H)-b.Y) < geomEps || math.Abs((b.Y+b.H)-a.Y) < geomEps {
		lo := math.Max(a.X, b.X)
		hi := math.Min(a.X+a.W, b.X+b.W)
		if hi-lo > geomEps {
			return hi - lo
		}
	}
	return 0
}

func (fp *Floorplan) computeAdjacency() {
	fp.Adjacencies = fp.Adjacencies[:0]
	for i := 0; i < len(fp.Blocks); i++ {
		for j := i + 1; j < len(fp.Blocks); j++ {
			e := sharedEdge(fp.Blocks[i], fp.Blocks[j])
			if e <= 0 {
				continue
			}
			dx := fp.Blocks[i].CenterX() - fp.Blocks[j].CenterX()
			dy := fp.Blocks[i].CenterY() - fp.Blocks[j].CenterY()
			fp.Adjacencies = append(fp.Adjacencies, Adjacency{
				A: i, B: j,
				SharedEdge: e,
				Distance:   math.Hypot(dx, dy),
			})
		}
	}
	sort.Slice(fp.Adjacencies, func(x, y int) bool {
		ax, ay := fp.Adjacencies[x], fp.Adjacencies[y]
		if ax.A != ay.A {
			return ax.A < ay.A
		}
		return ax.B < ay.B
	})
}

// Index returns the index of the named block and whether it exists.
func (fp *Floorplan) Index(name string) (int, bool) {
	i, ok := fp.byName[name]
	return i, ok
}

// Block returns the named block. It panics if the name is unknown;
// use Index for a soft lookup.
func (fp *Floorplan) Block(name string) Block {
	i, ok := fp.byName[name]
	if !ok {
		panic(fmt.Sprintf("floorplan: unknown block %q", name))
	}
	return fp.Blocks[i]
}

// CoreBlocks returns the indices of all KindCore blocks, ordered by CoreID.
func (fp *Floorplan) CoreBlocks() []int {
	var out []int
	for i, b := range fp.Blocks {
		if b.Kind == KindCore {
			out = append(out, i)
		}
	}
	sort.Slice(out, func(x, y int) bool {
		return fp.Blocks[out[x]].CoreID < fp.Blocks[out[y]].CoreID
	})
	return out
}

// BlocksOfCore returns the indices of all blocks belonging to the given
// core tile (core + caches), in floorplan order.
func (fp *Floorplan) BlocksOfCore(coreID int) []int {
	var out []int
	for i, b := range fp.Blocks {
		if b.CoreID == coreID {
			out = append(out, i)
		}
	}
	return out
}

// NumCores returns the number of KindCore blocks.
func (fp *Floorplan) NumCores() int {
	n := 0
	for _, b := range fp.Blocks {
		if b.Kind == KindCore {
			n++
		}
	}
	return n
}

// DieExtent returns the bounding box (x, y, w, h) of the whole floorplan.
func (fp *Floorplan) DieExtent() (x, y, w, h float64) {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, b := range fp.Blocks {
		minX = math.Min(minX, b.X)
		minY = math.Min(minY, b.Y)
		maxX = math.Max(maxX, b.X+b.W)
		maxY = math.Max(maxY, b.Y+b.H)
	}
	return minX, minY, maxX - minX, maxY - minY
}

// TotalArea returns the summed block area in square metres.
func (fp *Floorplan) TotalArea() float64 {
	var a float64
	for _, b := range fp.Blocks {
		a += b.Area()
	}
	return a
}
