package floorplan

import (
	"strings"
	"testing"
)

func TestFLPRoundTrip(t *testing.T) {
	fp := Default3Core()
	var sb strings.Builder
	if err := fp.WriteFLP(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ParseFLP(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parse back failed: %v\n%s", err, sb.String())
	}
	if len(back.Blocks) != len(fp.Blocks) {
		t.Fatalf("blocks = %d, want %d", len(back.Blocks), len(fp.Blocks))
	}
	for i, b := range fp.Blocks {
		g := back.Blocks[i]
		if g.Name != b.Name || g.Kind != b.Kind || g.CoreID != b.CoreID {
			t.Errorf("block %d identity: %+v vs %+v", i, g, b)
		}
		if absDiff(g.X, b.X) > 1e-9 || absDiff(g.W, b.W) > 1e-9 {
			t.Errorf("block %d geometry drift", i)
		}
	}
	if len(back.Adjacencies) != len(fp.Adjacencies) {
		t.Errorf("adjacency count %d vs %d", len(back.Adjacencies), len(fp.Adjacencies))
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestParseFLPFormats(t *testing.T) {
	in := `
# comment line

core1	1.4e-3	1.4e-3	0	0
icache1	0.6e-3	0.6e-3	1.4e-3	0
mem	2.0e-3	0.6e-3	0	1.4e-3
weird$unit	1e-3	1e-3	2.0e-3	1.4e-3
`
	fp, err := ParseFLP(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if fp.NumCores() != 1 {
		t.Errorf("cores = %d", fp.NumCores())
	}
	b := fp.Block("core1")
	if b.Kind != KindCore || b.CoreID != 0 {
		t.Errorf("core1 = %+v", b)
	}
	if fp.Block("icache1").Kind != KindICache {
		t.Error("icache kind")
	}
	if fp.Block("mem").Kind != KindSharedMem {
		t.Error("mem kind")
	}
	if fp.Block("weird$unit").Kind != KindOther {
		t.Error("unknown name not KindOther")
	}
}

func TestParseFLPErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"short line", "core1 1 2 3\n"},
		{"bad number", "core1 x 2 3 4\n"},
		{"empty", ""},
		{"overlap", "core1 1 1 0 0\ncore2 1 1 0.5 0\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseFLP(strings.NewReader(tc.in)); err == nil {
				t.Errorf("accepted %q", tc.in)
			}
		})
	}
}

func TestInferKindAliases(t *testing.T) {
	cases := map[string]BlockKind{
		"cpu2":   KindCore,
		"proc1":  KindCore,
		"il13":   KindICache,
		"dl11":   KindDCache,
		"sram":   KindSharedMem,
		"memory": KindSharedMem,
		"noc":    KindInterconnect,
		"bus":    KindInterconnect,
		"rng":    KindOther,
	}
	for name, want := range cases {
		if got, _ := inferKind(name); got != want {
			t.Errorf("inferKind(%q) = %v, want %v", name, got, want)
		}
	}
	// 1-based numbering maps to 0-based core IDs.
	if _, id := inferKind("core3"); id != 2 {
		t.Errorf("core3 id = %d, want 2", id)
	}
	if _, id := inferKind("core"); id != -1 {
		t.Errorf("unnumbered core id = %d, want -1", id)
	}
}
