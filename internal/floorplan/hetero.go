package floorplan

import "fmt"

// TileRun is one run of identically scaled core tiles in a
// heterogeneous die.
type TileRun struct {
	// Count is the number of tiles in the run.
	Count int
	// Scale multiplies the homogeneous tile geometry (1 = the paper's
	// 2.0 x 1.4 mm tile).
	Scale float64
}

// HeteroMPSoC returns an asymmetric (big.LITTLE-style) variant of the
// streaming die: the tile runs sit left to right in a row, each tile a
// scaled copy of the homogeneous core/I-cache/D-cache tile, under one
// shared-memory strip spanning the whole die at the tallest tile's
// height. Scaled-up tiles carry more silicon area — more thermal mass
// and lateral spreading — which is what makes the big cores thermally
// slower than the LITTLE ones.
//
// Block naming and core IDs follow StreamingMPSoC: "core<i>",
// "icache<i>", "dcache<i>" for i in 1..n plus "sharedmem", with 0-based
// core IDs assigned in run order.
func HeteroMPSoC(runs []TileRun) (*Floorplan, error) {
	n := 0
	maxH := 0.0
	for i, r := range runs {
		if r.Count < 1 {
			return nil, fmt.Errorf("floorplan: tile run %d has count %d < 1", i, r.Count)
		}
		if r.Scale <= 0 {
			return nil, fmt.Errorf("floorplan: tile run %d has non-positive scale %g", i, r.Scale)
		}
		n += r.Count
		if h := coreH * r.Scale; h > maxH {
			maxH = h
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("floorplan: no tiles")
	}
	blocks := make([]Block, 0, 3*n+1)
	x0 := 0.0
	id := 0
	for _, r := range runs {
		s := r.Scale
		for j := 0; j < r.Count; j++ {
			blocks = append(blocks,
				Block{
					Name: fmt.Sprintf("core%d", id+1), Kind: KindCore, CoreID: id,
					X: x0, Y: 0, W: coreW * s, H: coreH * s,
				},
				Block{
					Name: fmt.Sprintf("icache%d", id+1), Kind: KindICache, CoreID: id,
					X: x0 + coreW*s, Y: 0, W: cacheW * s, H: icacheH * s,
				},
				Block{
					Name: fmt.Sprintf("dcache%d", id+1), Kind: KindDCache, CoreID: id,
					X: x0 + coreW*s, Y: icacheH * s, W: cacheW * s, H: dcacheH * s,
				},
			)
			x0 += tileW * s
			id++
		}
	}
	blocks = append(blocks, Block{
		Name: "sharedmem", Kind: KindSharedMem, CoreID: -1,
		X: 0, Y: maxH, W: x0, H: memH,
	})
	return New(blocks)
}
