package floorplan

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// This file implements reading and writing the HotSpot ".flp" floorplan
// format, so floorplans can be exchanged with the original HotSpot
// tooling the paper's thermal library is based on [Skadron et al.].
//
// Each non-comment line is:
//
//	<unit-name> <width-m> <height-m> <left-x-m> <bottom-y-m>
//
// Lines starting with '#' and blank lines are ignored. Block kind and
// core association are inferred from the unit name: "core3", "icache2",
// "dcache1", "sharedmem"/"mem", "bus"/"noc"; anything else is KindOther.

var nameNum = regexp.MustCompile(`^([a-zA-Z_$]+)(\d*)$`)

// inferKind derives (kind, coreID) from a HotSpot unit name.
func inferKind(name string) (BlockKind, int) {
	m := nameNum.FindStringSubmatch(name)
	if m == nil {
		return KindOther, -1
	}
	base := strings.ToLower(m[1])
	id := -1
	if m[2] != "" {
		// HotSpot names are 1-based ("core1"); CoreID is 0-based.
		if v, err := strconv.Atoi(m[2]); err == nil && v > 0 {
			id = v - 1
		}
	}
	switch base {
	case "core", "cpu", "proc":
		return KindCore, id
	case "icache", "il", "i$":
		return KindICache, id
	case "dcache", "dl", "d$":
		return KindDCache, id
	case "sharedmem", "mem", "sram", "memory":
		return KindSharedMem, -1
	case "bus", "noc", "xbar", "interconnect":
		return KindInterconnect, -1
	default:
		return KindOther, -1
	}
}

// ParseFLP reads a HotSpot-format floorplan.
func ParseFLP(r io.Reader) (*Floorplan, error) {
	sc := bufio.NewScanner(r)
	var blocks []Block
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 5 {
			return nil, fmt.Errorf("floorplan: line %d: want 5 fields, got %d", lineNo, len(fields))
		}
		vals := make([]float64, 4)
		for i := 0; i < 4; i++ {
			v, err := strconv.ParseFloat(fields[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("floorplan: line %d field %d: %w", lineNo, i+2, err)
			}
			vals[i] = v
		}
		kind, coreID := inferKind(fields[0])
		blocks = append(blocks, Block{
			Name:   fields[0],
			Kind:   kind,
			CoreID: coreID,
			W:      vals[0],
			H:      vals[1],
			X:      vals[2],
			Y:      vals[3],
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("floorplan: %w", err)
	}
	return New(blocks)
}

// WriteFLP renders the floorplan in HotSpot format.
func (fp *Floorplan) WriteFLP(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# Floorplan: %d blocks (HotSpot .flp format)\n", len(fp.Blocks))
	fmt.Fprintf(bw, "# <unit-name> <width> <height> <left-x> <bottom-y>\n")
	for _, b := range fp.Blocks {
		fmt.Fprintf(bw, "%s\t%.6e\t%.6e\t%.6e\t%.6e\n", b.Name, b.W, b.H, b.X, b.Y)
	}
	return bw.Flush()
}
