package floorplan

import "fmt"

// Geometry constants for the emulated streaming MPSoC die (the paper's
// Figure 5 equivalent). Dimensions are representative of 90 nm RISC tiles:
// each tile is 2.0 x 1.4 mm (core plus its I/D caches) and a shared-memory
// strip spans the top of the die. The three tiles sit in a row, so core 1
// and core 3 are edge tiles while core 2 sits between them: with core 1
// dissipating the most power, core 2 ends up slightly warmer than core 3
// even at the same frequency, matching the paper's observation.
const (
	mm = 1e-3 // metres per millimetre

	tileW   = 2.0 * mm // tile pitch along x
	coreW   = 1.4 * mm
	coreH   = 1.4 * mm
	cacheW  = 0.6 * mm
	icacheH = 0.6 * mm
	dcacheH = 0.8 * mm
	memH    = 0.6 * mm // shared-memory strip height
)

// StreamingMPSoC returns the floorplan of the paper's emulated platform:
// n RISC tiles in a row (core, I-cache, D-cache each) with a shared
// on-chip memory strip spanning the die above them. The paper uses n = 3.
//
// Block naming: "core<i>", "icache<i>", "dcache<i>" for i in 1..n,
// plus "sharedmem". Core IDs are 0-based.
func StreamingMPSoC(n int) *Floorplan {
	if n < 1 {
		panic(fmt.Sprintf("floorplan: StreamingMPSoC needs at least 1 core, got %d", n))
	}
	blocks := make([]Block, 0, 3*n+1)
	for i := 0; i < n; i++ {
		x0 := float64(i) * tileW
		blocks = append(blocks,
			Block{
				Name: fmt.Sprintf("core%d", i+1), Kind: KindCore, CoreID: i,
				X: x0, Y: 0, W: coreW, H: coreH,
			},
			Block{
				Name: fmt.Sprintf("icache%d", i+1), Kind: KindICache, CoreID: i,
				X: x0 + coreW, Y: 0, W: cacheW, H: icacheH,
			},
			Block{
				Name: fmt.Sprintf("dcache%d", i+1), Kind: KindDCache, CoreID: i,
				X: x0 + coreW, Y: icacheH, W: cacheW, H: dcacheH,
			},
		)
	}
	blocks = append(blocks, Block{
		Name: "sharedmem", Kind: KindSharedMem, CoreID: -1,
		X: 0, Y: coreH, W: float64(n) * tileW, H: memH,
	})
	return MustNew(blocks)
}

// Default3Core is the floorplan used by every experiment in the paper:
// three RISC tiles plus shared memory.
func Default3Core() *Floorplan { return StreamingMPSoC(3) }
