package metrics

// TempSummary is the JSON block for the paper's Section 5 temperature
// statistics. It is part of the versioned result schema the simulation
// service and `thermsim -json` emit (see internal/experiment/schema.go),
// so field names are wire-stable: rename only with a schema-version
// bump.
type TempSummary struct {
	// PooledStdDevC is the headline Figure 7/9 metric: the standard
	// deviation over every (core, time) sample.
	PooledStdDevC float64 `json:"pooled_stddev_c"`
	// SpatialStdDevC is the time-averaged across-core deviation.
	SpatialStdDevC float64 `json:"spatial_stddev_c"`
	// TemporalStdDevC averages the per-core temporal deviations.
	TemporalStdDevC float64 `json:"temporal_stddev_c"`
	// MeanGradientC is the time-averaged hottest-coldest spread.
	MeanGradientC float64 `json:"mean_gradient_c"`
	// MaxC is the hottest sample on any core.
	MaxC float64 `json:"max_c"`
}
