// Package metrics implements the statistics the paper evaluates
// (Section 5): spatial and temporal variance of core temperatures,
// deadline-miss accounting, and migration-rate summaries. Streaming
// (Welford) accumulators keep the collection O(1) per sample.
package metrics

import (
	"math"
)

// Welford is a numerically stable streaming mean/variance accumulator.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds a sample into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest sample (0 with no samples).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample (0 with no samples).
func (w *Welford) Max() float64 { return w.max }

// SpatialStdDev returns the standard deviation across the given
// per-core values at one instant (population formula, as the cores are
// the whole population).
func SpatialStdDev(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var mean float64
	for _, v := range values {
		mean += v
	}
	mean /= float64(len(values))
	var ss float64
	for _, v := range values {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(values)))
}

// Mean returns the arithmetic mean of values (0 for empty input).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var s float64
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

// TempCollector accumulates the paper's temperature metrics from
// periodic per-core samples.
type TempCollector struct {
	// Spatial tracks the instantaneous across-core standard deviation
	// over time: its Mean() is the "temperature standard deviation" of
	// Figures 7 and 9.
	Spatial Welford
	// Gradient tracks the instantaneous hottest-coldest spread.
	Gradient Welford
	// PerCore tracks each core's temperature over time; its StdDev is
	// the temporal variance metric.
	PerCore []Welford
	// Pooled folds every (core, time) sample into one accumulator: its
	// StdDev captures spatial and temporal deviation together — the
	// paper's combined "temperature standard deviation" metric
	// (Section 5: "spatial and temporal variance of the temperatures").
	Pooled Welford
	// MaxTemp is the hottest sample seen on any core.
	MaxTemp float64

	samples int64
}

// NewTempCollector creates a collector for n cores.
func NewTempCollector(n int) *TempCollector {
	return &TempCollector{PerCore: make([]Welford, n), MaxTemp: math.Inf(-1)}
}

// Sample folds one per-core temperature snapshot.
func (tc *TempCollector) Sample(temps []float64) {
	tc.Spatial.Add(SpatialStdDev(temps))
	min, max := math.Inf(1), math.Inf(-1)
	for c, t := range temps {
		tc.PerCore[c].Add(t)
		tc.Pooled.Add(t)
		if t < min {
			min = t
		}
		if t > max {
			max = t
		}
	}
	tc.Gradient.Add(max - min)
	if max > tc.MaxTemp {
		tc.MaxTemp = max
	}
	tc.samples++
}

// Samples returns the number of snapshots folded.
func (tc *TempCollector) Samples() int64 { return tc.samples }

// MeanSpatialStdDev is the time-averaged across-core deviation.
func (tc *TempCollector) MeanSpatialStdDev() float64 { return tc.Spatial.Mean() }

// PooledStdDev is the headline Figure 7/9 metric: the standard
// deviation over every (core, time) temperature sample, capturing both
// spatial imbalance and temporal swings/drift.
func (tc *TempCollector) PooledStdDev() float64 { return tc.Pooled.StdDev() }

// MeanGradient is the time-averaged hottest-coldest spread.
func (tc *TempCollector) MeanGradient() float64 { return tc.Gradient.Mean() }

// TemporalStdDev returns the temporal standard deviation of core c.
func (tc *TempCollector) TemporalStdDev(c int) float64 { return tc.PerCore[c].StdDev() }

// MeanTemporalStdDev averages the per-core temporal deviations.
func (tc *TempCollector) MeanTemporalStdDev() float64 {
	if len(tc.PerCore) == 0 {
		return 0
	}
	var s float64
	for i := range tc.PerCore {
		s += tc.PerCore[i].StdDev()
	}
	return s / float64(len(tc.PerCore))
}
