package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWelfordAgainstDirectComputation(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("mean = %g, want 5", w.Mean())
	}
	if math.Abs(w.Variance()-4) > 1e-12 {
		t.Errorf("variance = %g, want 4", w.Variance())
	}
	if math.Abs(w.StdDev()-2) > 1e-12 {
		t.Errorf("stddev = %g, want 2", w.StdDev())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %g/%g", w.Min(), w.Max())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 {
		t.Error("empty accumulator not zero")
	}
}

func TestWelfordSingle(t *testing.T) {
	var w Welford
	w.Add(42)
	if w.Mean() != 42 || w.Variance() != 0 || w.Min() != 42 || w.Max() != 42 {
		t.Error("single-sample stats wrong")
	}
}

// Property: Welford matches the two-pass formula on random data.
func TestWelfordMatchesTwoPassProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var w Welford
		var sum float64
		for _, r := range raw {
			x := float64(r) / 100
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(raw))
		var ss float64
		for _, r := range raw {
			x := float64(r) / 100
			ss += (x - mean) * (x - mean)
		}
		wantVar := ss / float64(len(raw))
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.Variance()-wantVar) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSpatialStdDev(t *testing.T) {
	if got := SpatialStdDev(nil); got != 0 {
		t.Errorf("empty = %g", got)
	}
	if got := SpatialStdDev([]float64{5, 5, 5}); got != 0 {
		t.Errorf("uniform = %g", got)
	}
	// {60, 50, 40}: mean 50, deviations {10,0,-10}: std = sqrt(200/3).
	want := math.Sqrt(200.0 / 3.0)
	if got := SpatialStdDev([]float64{60, 50, 40}); math.Abs(got-want) > 1e-12 {
		t.Errorf("spatial = %g, want %g", got, want)
	}
}

func TestMeanHelper(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Mean = %g", got)
	}
}

func TestTempCollector(t *testing.T) {
	tc := NewTempCollector(3)
	tc.Sample([]float64{62, 54, 52})
	tc.Sample([]float64{60, 55, 53})
	if tc.Samples() != 2 {
		t.Fatalf("samples = %d", tc.Samples())
	}
	if tc.MeanSpatialStdDev() <= 0 {
		t.Error("spatial stddev not positive")
	}
	if got, want := tc.MeanGradient(), (10.0+7.0)/2; math.Abs(got-want) > 1e-12 {
		t.Errorf("gradient = %g, want %g", got, want)
	}
	if tc.MaxTemp != 62 {
		t.Errorf("MaxTemp = %g", tc.MaxTemp)
	}
	if tc.TemporalStdDev(0) <= 0 {
		t.Error("temporal stddev core0 not positive")
	}
	if tc.MeanTemporalStdDev() <= 0 {
		t.Error("mean temporal stddev not positive")
	}
}

func TestTempCollectorBalancedVsUnbalanced(t *testing.T) {
	// A perfectly balanced trace must yield lower spatial stddev than an
	// unbalanced one — the sanity property behind Figures 7 and 9.
	bal := NewTempCollector(3)
	unbal := NewTempCollector(3)
	for i := 0; i < 100; i++ {
		bal.Sample([]float64{55, 55.5, 54.5})
		unbal.Sample([]float64{62, 54, 52})
	}
	if bal.MeanSpatialStdDev() >= unbal.MeanSpatialStdDev() {
		t.Errorf("balanced %g >= unbalanced %g", bal.MeanSpatialStdDev(), unbal.MeanSpatialStdDev())
	}
}

func TestMeanTemporalStdDevEmptyCollector(t *testing.T) {
	tc := NewTempCollector(0)
	if tc.MeanTemporalStdDev() != 0 {
		t.Error("empty collector temporal stddev != 0")
	}
}
