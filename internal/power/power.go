// Package power implements the component power models of the emulated
// MPSoC, anchored to the industrial 90 nm figures of the paper's Table 1:
//
//	RISC32-streaming (Conf1)   0.5 W max @ 500 MHz
//	RISC32-ARM11     (Conf2)   0.27 W max
//	DCache 8kB/2way            43 mW
//	ICache 8kB/DM              11 mW
//	Memory 32kB                15 mW
//
// Dynamic power follows the usual CMOS model P = a·C·V²·f with voltage
// scaled along the DVFS ladder (V ∝ f to first order), so active power
// scales roughly cubically with frequency. A temperature-dependent
// exponential leakage term models the sub-threshold component the paper
// cites as the reliability motivation for thermal balancing.
package power

import (
	"fmt"
	"math"
)

// Table 1 anchor figures (watts) at the reference frequency.
const (
	// RefFrequencyHz is the frequency the Table 1 figures refer to.
	RefFrequencyHz = 500e6

	// RISC32StreamingMaxW is Conf1: the streaming RISC32 core at 100 %
	// activity at RefFrequencyHz and nominal voltage.
	RISC32StreamingMaxW = 0.5
	// RISC32ARM11MaxW is Conf2: the ARM11-class RISC32 core.
	RISC32ARM11MaxW = 0.27
	// DCacheMaxW is the 8 kB 2-way data cache at full activity.
	DCacheMaxW = 0.043
	// ICacheMaxW is the 8 kB direct-mapped instruction cache.
	ICacheMaxW = 0.011
	// SharedMemMaxW is the 32 kB on-chip memory at full activity.
	SharedMemMaxW = 0.015
)

// CoreConfig selects between the two core configurations of Table 1.
type CoreConfig int

const (
	// Conf1Streaming is the RISC32-streaming configuration (0.5 W max).
	Conf1Streaming CoreConfig = iota
	// Conf2ARM11 is the RISC32-ARM11 configuration (0.27 W max).
	Conf2ARM11
)

// String names the configuration as in Table 1.
func (c CoreConfig) String() string {
	switch c {
	case Conf1Streaming:
		return "RISC32-streaming (Conf1)"
	case Conf2ARM11:
		return "RISC32-ARM11 (Conf2)"
	default:
		return fmt.Sprintf("CoreConfig(%d)", int(c))
	}
}

// MaxPowerW returns the Table 1 maximum power for the configuration.
func (c CoreConfig) MaxPowerW() float64 {
	if c == Conf2ARM11 {
		return RISC32ARM11MaxW
	}
	return RISC32StreamingMaxW
}

// Model computes block power from operating state. The zero value is not
// usable; construct with NewModel.
type Model struct {
	cfg CoreConfig

	// fmax is the top of the DVFS ladder in Hz.
	fmax float64
	// vmax, vmin bound the linear voltage/frequency ladder.
	vmax, vmin float64

	// idleFrac is the fraction of max dynamic power burnt by a clocked
	// but idle core (clock tree and static logic activity).
	idleFrac float64

	// leakRef is leakage power at tempRef for a core block, in watts.
	leakRef float64
	// leakBeta is the exponential temperature coefficient (1/K).
	leakBeta float64
	// tempRef is the leakage reference temperature in °C.
	tempRef float64
}

// Params configures a Model. Zero fields take defaults.
type Params struct {
	Config CoreConfig
	// FMaxHz is the maximum core frequency (default 533 MHz, the top
	// level of the paper's Table 2 ladder).
	FMaxHz float64
	// VMax, VMin bound the DVFS voltage ladder (defaults 1.2 V, 0.8 V,
	// typical for 90 nm).
	VMax, VMin float64
	// IdleFraction is idle power as a fraction of max dynamic power
	// (default 0.05).
	IdleFraction float64
	// LeakRefW is core leakage at LeakRefTempC (default 8 % of max power).
	LeakRefW float64
	// LeakBeta is the leakage exponential coefficient per kelvin
	// (default 0.017, roughly doubling every 40 °C).
	LeakBeta float64
	// LeakRefTempC is the leakage reference temperature (default 60 °C).
	LeakRefTempC float64
}

// DefaultFMaxHz is the top DVFS level used throughout the reproduction
// (Table 2 runs core 1 at 533 MHz).
const DefaultFMaxHz = 533e6

// NewModel builds a power model from params, applying defaults.
func NewModel(p Params) *Model {
	m := &Model{
		cfg:      p.Config,
		fmax:     p.FMaxHz,
		vmax:     p.VMax,
		vmin:     p.VMin,
		idleFrac: p.IdleFraction,
		leakRef:  p.LeakRefW,
		leakBeta: p.LeakBeta,
		tempRef:  p.LeakRefTempC,
	}
	if m.fmax <= 0 {
		m.fmax = DefaultFMaxHz
	}
	if m.vmax <= 0 {
		m.vmax = 1.2
	}
	if m.vmin <= 0 {
		m.vmin = 0.8
	}
	if m.idleFrac <= 0 {
		m.idleFrac = 0.05
	}
	if m.leakRef <= 0 {
		m.leakRef = 0.08 * m.cfg.MaxPowerW()
	}
	if m.leakBeta <= 0 {
		m.leakBeta = 0.017
	}
	if m.tempRef == 0 {
		m.tempRef = 60
	}
	return m
}

// Default returns the model used by the experiments: Conf1 streaming
// cores on the 533/266/133 MHz ladder.
func Default() *Model { return NewModel(Params{Config: Conf1Streaming}) }

// Voltage returns the supply voltage at frequency f on the linear ladder.
// Frequencies at or below zero return VMin (core stopped / clock gated).
func (m *Model) Voltage(fHz float64) float64 {
	if fHz <= 0 {
		return m.vmin
	}
	if fHz >= m.fmax {
		return m.vmax
	}
	return m.vmin + (m.vmax-m.vmin)*(fHz/m.fmax)
}

// scaleDyn returns the dynamic scaling factor (f/fref)·(V/Vref)² relative
// to the Table 1 reference operating point.
func (m *Model) scaleDyn(fHz float64) float64 {
	if fHz <= 0 {
		return 0
	}
	vRef := m.Voltage(RefFrequencyHz)
	v := m.Voltage(fHz)
	return (fHz / RefFrequencyHz) * (v * v) / (vRef * vRef)
}

// CoreDynamic returns the dynamic power of a core running at frequency
// fHz with the given utilization (busy fraction in [0,1]). A stopped core
// (fHz <= 0) consumes nothing; an idle clocked core consumes the idle
// fraction.
func (m *Model) CoreDynamic(fHz, utilization float64) float64 {
	if fHz <= 0 {
		return 0
	}
	u := clamp01(utilization)
	pmax := m.cfg.MaxPowerW() * m.scaleDyn(fHz)
	return pmax * (m.idleFrac + (1-m.idleFrac)*u)
}

// CoreLeakage returns the temperature-dependent leakage power of a core
// at die temperature tempC. Leakage flows whenever the core is powered,
// regardless of activity; a stopped (power-gated) core leaks a residual
// 10 % through always-on rails.
func (m *Model) CoreLeakage(tempC float64, powered bool) float64 {
	l := m.leakRef * math.Exp(m.leakBeta*(tempC-m.tempRef))
	if !powered {
		return 0.1 * l
	}
	return l
}

// Core returns total core power: dynamic + leakage.
func (m *Model) Core(fHz, utilization, tempC float64, powered bool) float64 {
	if !powered {
		return m.CoreLeakage(tempC, false)
	}
	return m.CoreDynamic(fHz, utilization) + m.CoreLeakage(tempC, true)
}

// ICache returns instruction-cache power at frequency fHz with the given
// access activity (fraction of cycles with an access).
func (m *Model) ICache(fHz, activity float64) float64 {
	return ICacheMaxW * m.scaleDyn(fHz) * clamp01(activity)
}

// DCache returns data-cache power at frequency fHz with the given access
// activity.
func (m *Model) DCache(fHz, activity float64) float64 {
	return DCacheMaxW * m.scaleDyn(fHz) * clamp01(activity)
}

// SharedMem returns shared-memory power for the given access activity.
// The shared memory runs on the bus clock, which does not scale with the
// core DVFS ladder, so only activity modulates it. A floor of 20 % models
// refresh/standby power.
func (m *Model) SharedMem(activity float64) float64 {
	const standby = 0.2
	return SharedMemMaxW * (standby + (1-standby)*clamp01(activity))
}

// FMaxHz returns the ladder maximum used by the model.
func (m *Model) FMaxHz() float64 { return m.fmax }

// Config returns the core configuration.
func (m *Model) Config() CoreConfig { return m.cfg }

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
