package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTable1Anchors(t *testing.T) {
	// The model must reproduce Table 1 exactly at the reference point:
	// full activity, 500 MHz, nominal voltage.
	m := Default()
	if got := m.CoreDynamic(RefFrequencyHz, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Conf1 core @500MHz full = %g W, want 0.5", got)
	}
	m2 := NewModel(Params{Config: Conf2ARM11})
	if got := m2.CoreDynamic(RefFrequencyHz, 1); math.Abs(got-0.27) > 1e-12 {
		t.Errorf("Conf2 core @500MHz full = %g W, want 0.27", got)
	}
	if got := m.DCache(RefFrequencyHz, 1); math.Abs(got-0.043) > 1e-12 {
		t.Errorf("DCache = %g W, want 0.043", got)
	}
	if got := m.ICache(RefFrequencyHz, 1); math.Abs(got-0.011) > 1e-12 {
		t.Errorf("ICache = %g W, want 0.011", got)
	}
	if got := m.SharedMem(1); math.Abs(got-0.015) > 1e-12 {
		t.Errorf("SharedMem full = %g W, want 0.015", got)
	}
}

func TestCoreConfigString(t *testing.T) {
	if Conf1Streaming.String() != "RISC32-streaming (Conf1)" {
		t.Error("Conf1 name wrong")
	}
	if Conf2ARM11.String() != "RISC32-ARM11 (Conf2)" {
		t.Error("Conf2 name wrong")
	}
	if CoreConfig(7).String() != "CoreConfig(7)" {
		t.Error("unknown config name wrong")
	}
	if Conf1Streaming.MaxPowerW() != 0.5 || Conf2ARM11.MaxPowerW() != 0.27 {
		t.Error("MaxPowerW anchors wrong")
	}
}

func TestVoltageLadder(t *testing.T) {
	m := Default()
	if got := m.Voltage(DefaultFMaxHz); got != 1.2 {
		t.Errorf("V(fmax) = %g, want 1.2", got)
	}
	if got := m.Voltage(0); got != 0.8 {
		t.Errorf("V(0) = %g, want 0.8 (vmin)", got)
	}
	if got := m.Voltage(2 * DefaultFMaxHz); got != 1.2 {
		t.Errorf("V above fmax = %g, want clamp at 1.2", got)
	}
	// Monotone non-decreasing in f.
	prev := -1.0
	for f := 0.0; f <= DefaultFMaxHz; f += DefaultFMaxHz / 16 {
		v := m.Voltage(f)
		if v < prev {
			t.Fatalf("voltage not monotone at f=%g: %g < %g", f, v, prev)
		}
		prev = v
	}
}

func TestDynamicScalesSuperlinearly(t *testing.T) {
	// Halving frequency must cut dynamic power by much more than half
	// because voltage drops too (the DVFS premise of the paper's Fig. 1).
	m := Default()
	full := m.CoreDynamic(DefaultFMaxHz, 1)
	half := m.CoreDynamic(DefaultFMaxHz/2, 1)
	if ratio := half / full; ratio >= 0.5 {
		t.Errorf("P(f/2)/P(f) = %g, want < 0.5 (voltage scaling)", ratio)
	}
	if ratio := half / full; ratio < 0.2 {
		t.Errorf("P(f/2)/P(f) = %g, implausibly low", ratio)
	}
}

func TestStoppedCoreConsumesNoDynamic(t *testing.T) {
	m := Default()
	if got := m.CoreDynamic(0, 1); got != 0 {
		t.Errorf("stopped core dynamic = %g, want 0", got)
	}
	if got := m.CoreDynamic(-1, 0.5); got != 0 {
		t.Errorf("negative frequency dynamic = %g, want 0", got)
	}
}

func TestIdleFloor(t *testing.T) {
	m := Default()
	idle := m.CoreDynamic(DefaultFMaxHz, 0)
	if idle <= 0 {
		t.Fatal("idle clocked core consumes nothing; clock tree missing")
	}
	busy := m.CoreDynamic(DefaultFMaxHz, 1)
	if idle >= busy {
		t.Fatalf("idle %g >= busy %g", idle, busy)
	}
	if frac := idle / busy; math.Abs(frac-0.05) > 1e-9 {
		t.Errorf("idle fraction = %g, want 0.05", frac)
	}
}

func TestLeakageGrowsWithTemperature(t *testing.T) {
	m := Default()
	l40 := m.CoreLeakage(40, true)
	l80 := m.CoreLeakage(80, true)
	if l80 <= l40 {
		t.Fatalf("leakage(80)=%g <= leakage(40)=%g", l80, l40)
	}
	// Default beta 0.017 => roughly doubles over 40 degrees.
	if ratio := l80 / l40; ratio < 1.6 || ratio > 2.4 {
		t.Errorf("leakage ratio over 40K = %g, want ~2", ratio)
	}
}

func TestLeakageGatedWhenUnpowered(t *testing.T) {
	m := Default()
	on := m.CoreLeakage(70, true)
	off := m.CoreLeakage(70, false)
	if off >= on {
		t.Fatalf("gated leakage %g >= powered leakage %g", off, on)
	}
	if math.Abs(off-0.1*on) > 1e-12 {
		t.Errorf("gated leakage = %g, want 10%% of %g", off, on)
	}
}

func TestCoreTotalComposition(t *testing.T) {
	m := Default()
	f, u, temp := DefaultFMaxHz, 0.65, 70.0
	want := m.CoreDynamic(f, u) + m.CoreLeakage(temp, true)
	if got := m.Core(f, u, temp, true); math.Abs(got-want) > 1e-15 {
		t.Errorf("Core = %g, want dyn+leak = %g", got, want)
	}
	if got := m.Core(f, u, temp, false); got != m.CoreLeakage(temp, false) {
		t.Errorf("unpowered Core = %g, want gated leakage only", got)
	}
}

func TestSharedMemStandbyFloor(t *testing.T) {
	m := Default()
	if got, want := m.SharedMem(0), 0.2*SharedMemMaxW; math.Abs(got-want) > 1e-15 {
		t.Errorf("SharedMem(0) = %g, want standby %g", got, want)
	}
	if m.SharedMem(0.5) <= m.SharedMem(0) {
		t.Error("SharedMem not increasing with activity")
	}
}

func TestDefaultsApplied(t *testing.T) {
	m := NewModel(Params{})
	if m.FMaxHz() != DefaultFMaxHz {
		t.Errorf("default fmax = %g", m.FMaxHz())
	}
	if m.Config() != Conf1Streaming {
		t.Errorf("default config = %v", m.Config())
	}
}

// Property: core dynamic power is monotone in utilization and frequency,
// and always within [0, Pmax·scale].
func TestCoreDynamicMonotoneProperty(t *testing.T) {
	m := Default()
	f := func(fu uint16, uu uint16) bool {
		fHz := float64(fu) / 65535 * DefaultFMaxHz
		u := float64(uu) / 65535
		p := m.CoreDynamic(fHz, u)
		if p < 0 {
			return false
		}
		// Monotone in utilization at fixed f.
		if u < 0.99 && m.CoreDynamic(fHz, u+0.01) < p-1e-12 {
			return false
		}
		// Monotone in frequency at fixed u.
		if fHz < 0.99*DefaultFMaxHz && m.CoreDynamic(fHz+0.01*DefaultFMaxHz, u) < p-1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: utilization is clamped, so out-of-range values cannot produce
// power above the max or below idle.
func TestUtilizationClampProperty(t *testing.T) {
	m := Default()
	f := func(u float64) bool {
		if math.IsNaN(u) || math.IsInf(u, 0) {
			return true
		}
		p := m.CoreDynamic(DefaultFMaxHz, u)
		lo := m.CoreDynamic(DefaultFMaxHz, 0)
		hi := m.CoreDynamic(DefaultFMaxHz, 1)
		return p >= lo-1e-12 && p <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The paper's Figure 1 premise: with DVFS, running work at a lower
// frequency/voltage consumes less energy even though it takes longer.
// Energy per unit work = P(f)/f must be monotone increasing in f.
func TestEnergyPerWorkFavorsLowFrequency(t *testing.T) {
	m := Default()
	prev := -1.0
	for _, f := range []float64{133e6, 266e6, 533e6} {
		// Energy per cycle at full utilization (dynamic only).
		epc := m.CoreDynamic(f, 1) / f
		if prev > 0 && epc <= prev {
			t.Fatalf("energy/cycle not increasing with f at %g", f)
		}
		prev = epc
	}
}
