package sched

import (
	"testing"
	"testing/quick"
)

func TestNewPanicsOnZeroCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestAssignAndLookup(t *testing.T) {
	s := New(2)
	if s.NumCores() != 2 {
		t.Fatalf("NumCores = %d", s.NumCores())
	}
	if err := s.Assign(10, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Assign(11, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Assign(12, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Assign(10, 5); err == nil {
		t.Error("out-of-range core accepted")
	}
	if s.CoreOf(10) != 0 || s.CoreOf(12) != 1 {
		t.Error("CoreOf wrong")
	}
	if s.CoreOf(99) != -1 {
		t.Error("unmapped task CoreOf != -1")
	}
	if got := s.TasksOn(0); len(got) != 2 || got[0] != 10 || got[1] != 11 {
		t.Errorf("TasksOn(0) = %v", got)
	}
	if s.NumTasksOn(1) != 1 {
		t.Errorf("NumTasksOn(1) = %d", s.NumTasksOn(1))
	}
}

func TestReassignMoves(t *testing.T) {
	s := New(2)
	s.Assign(1, 0)
	s.Assign(1, 1)
	if s.CoreOf(1) != 1 {
		t.Error("reassign did not move task")
	}
	if s.NumTasksOn(0) != 0 {
		t.Error("task left on old core")
	}
	// Redundant reassign is a no-op.
	s.Assign(1, 1)
	if s.NumTasksOn(1) != 1 {
		t.Error("redundant assign duplicated task")
	}
}

func TestRemove(t *testing.T) {
	s := New(1)
	s.Assign(1, 0)
	s.Assign(2, 0)
	s.Remove(1)
	if s.CoreOf(1) != -1 {
		t.Error("removed task still mapped")
	}
	if got := s.TasksOn(0); len(got) != 1 || got[0] != 2 {
		t.Errorf("TasksOn = %v", got)
	}
	s.Remove(99) // no-op must not panic
}

func TestPickNextRoundRobin(t *testing.T) {
	s := New(1)
	s.Assign(7, 0)
	s.Assign(8, 0)
	s.Assign(9, 0)
	all := func(int) bool { return true }
	got := []int{s.PickNext(0, all), s.PickNext(0, all), s.PickNext(0, all), s.PickNext(0, all)}
	want := []int{7, 8, 9, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RR sequence = %v, want %v", got, want)
		}
	}
}

func TestPickNextSkipsBlocked(t *testing.T) {
	s := New(1)
	s.Assign(1, 0)
	s.Assign(2, 0)
	only2 := func(ti int) bool { return ti == 2 }
	if got := s.PickNext(0, only2); got != 2 {
		t.Fatalf("PickNext = %d, want 2", got)
	}
	none := func(int) bool { return false }
	if got := s.PickNext(0, none); got != -1 {
		t.Fatalf("PickNext with none runnable = %d, want -1", got)
	}
	if got := s.PickNext(0, only2); got != 2 {
		t.Error("cursor corrupted by failed pick")
	}
}

func TestPickNextEmptyCore(t *testing.T) {
	s := New(1)
	if got := s.PickNext(0, func(int) bool { return true }); got != -1 {
		t.Errorf("PickNext on empty = %d", got)
	}
}

func TestCursorStableAcrossRemoval(t *testing.T) {
	s := New(1)
	s.Assign(1, 0)
	s.Assign(2, 0)
	s.Assign(3, 0)
	all := func(int) bool { return true }
	s.PickNext(0, all) // returns 1, cursor now at 2
	s.Remove(1)
	// Next pick must be 2 (cursor adjusted), not skip to 3.
	if got := s.PickNext(0, all); got != 2 {
		t.Errorf("after removal PickNext = %d, want 2", got)
	}
	if got := s.PickNext(0, all); got != 3 {
		t.Errorf("then = %d, want 3", got)
	}
}

func TestMappingCopy(t *testing.T) {
	s := New(2)
	s.Assign(1, 0)
	m := s.Mapping()
	m[1] = 1 // mutating the copy must not affect the scheduler
	if s.CoreOf(1) != 0 {
		t.Error("Mapping returned shared state")
	}
}

// Property: under arbitrary assign/remove sequences, every mapped task
// appears in exactly one run queue and CoreOf agrees with queue
// membership.
func TestMappingConsistencyProperty(t *testing.T) {
	type op struct {
		Task   uint8
		Core   uint8
		Remove bool
	}
	f := func(ops []op) bool {
		s := New(3)
		for _, o := range ops {
			ti := int(o.Task % 12)
			if o.Remove {
				s.Remove(ti)
			} else {
				s.Assign(ti, int(o.Core%3))
			}
		}
		seen := map[int]int{}
		for c := 0; c < 3; c++ {
			for _, ti := range s.TasksOn(c) {
				if _, dup := seen[ti]; dup {
					return false // task in two queues
				}
				seen[ti] = c
				if s.CoreOf(ti) != c {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: round-robin fairness — over k*n picks with all runnable,
// every task is picked exactly k times.
func TestRRFairnessProperty(t *testing.T) {
	f := func(nTasks, rounds uint8) bool {
		n := int(nTasks%6) + 1
		k := int(rounds%5) + 1
		s := New(1)
		for i := 0; i < n; i++ {
			s.Assign(i, 0)
		}
		counts := make([]int, n)
		for i := 0; i < k*n; i++ {
			ti := s.PickNext(0, func(int) bool { return true })
			if ti < 0 {
				return false
			}
			counts[ti]++
		}
		for _, c := range counts {
			if c != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOrderFromFollowsCursor(t *testing.T) {
	s := New(1)
	for _, ti := range []int{5, 7, 9} {
		if err := s.Assign(ti, 0); err != nil {
			t.Fatal(err)
		}
	}
	all := func(int) bool { return true }
	// Advance the cursor past 5: pick order becomes 7, 9, 5.
	if got := s.PickNext(0, all); got != 5 {
		t.Fatalf("first pick = %d", got)
	}
	got := s.OrderFrom(0, nil)
	want := []int{7, 9, 5}
	if len(got) != len(want) {
		t.Fatalf("OrderFrom = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OrderFrom = %v, want %v", got, want)
		}
	}
	// OrderFrom must not advance the cursor.
	if next := s.PickNext(0, all); next != 7 {
		t.Errorf("pick after OrderFrom = %d, want 7", next)
	}
}

// AdvancePast must leave the cursor exactly where a PickNext returning
// that task would have.
func TestAdvancePastMatchesPickNext(t *testing.T) {
	mk := func() *Scheduler {
		s := New(1)
		for _, ti := range []int{2, 4, 6, 8} {
			if err := s.Assign(ti, 0); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	all := func(int) bool { return true }
	for _, target := range []int{2, 4, 6, 8} {
		picked := mk()
		for picked.PickNext(0, all) != target {
		}
		jumped := mk()
		jumped.AdvancePast(0, target)
		for i := 0; i < 4; i++ {
			a, b := picked.PickNext(0, all), jumped.PickNext(0, all)
			if a != b {
				t.Fatalf("after target %d: pick %d diverged (%d vs %d)", target, i, a, b)
			}
		}
	}
}

func TestAdvancePastUnknownTaskPanics(t *testing.T) {
	s := New(1)
	if err := s.Assign(1, 0); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("AdvancePast(unmapped) did not panic")
		}
	}()
	s.AdvancePast(0, 99)
}
