// Package sched implements the per-core run queues of the MPOS: each
// core runs its own scheduler instance (the paper's platform runs one
// uClinux per core), with round-robin arbitration among the streaming
// tasks mapped there.
//
// The scheduler works on task indices (into the stream graph's task
// slice) so it carries no dependency on the task or stream packages.
package sched

import (
	"fmt"
	"sort"
)

// Scheduler maintains per-core round-robin run queues.
type Scheduler struct {
	// queues[c] lists task indices mapped to core c in RR order.
	queues [][]int
	// cursor[c] is the RR position for core c.
	cursor []int
	// coreOf maps a task index to its core (-1 when unmapped).
	coreOf map[int]int
}

// New creates a scheduler for n cores.
func New(n int) *Scheduler {
	if n < 1 {
		panic(fmt.Sprintf("sched: need at least one core, got %d", n))
	}
	return &Scheduler{
		queues: make([][]int, n),
		cursor: make([]int, n),
		coreOf: make(map[int]int),
	}
}

// NumCores returns the core count.
func (s *Scheduler) NumCores() int { return len(s.queues) }

// Assign places task ti on core c, removing it from any previous core.
func (s *Scheduler) Assign(ti, c int) error {
	if c < 0 || c >= len(s.queues) {
		return fmt.Errorf("sched: core %d out of range", c)
	}
	if prev, ok := s.coreOf[ti]; ok {
		if prev == c {
			return nil
		}
		s.removeFrom(ti, prev)
	}
	s.queues[c] = append(s.queues[c], ti)
	s.coreOf[ti] = c
	return nil
}

// Remove takes task ti off its core entirely (e.g. while frozen in a
// migration, the task sits in neither run queue).
func (s *Scheduler) Remove(ti int) {
	if c, ok := s.coreOf[ti]; ok {
		s.removeFrom(ti, c)
		delete(s.coreOf, ti)
	}
}

func (s *Scheduler) removeFrom(ti, c int) {
	q := s.queues[c]
	for i, v := range q {
		if v == ti {
			s.queues[c] = append(q[:i], q[i+1:]...)
			if s.cursor[c] > i {
				s.cursor[c]--
			}
			if len(s.queues[c]) > 0 {
				s.cursor[c] %= len(s.queues[c])
			} else {
				s.cursor[c] = 0
			}
			return
		}
	}
}

// CoreOf returns the core of task ti, or -1 when unmapped.
func (s *Scheduler) CoreOf(ti int) int {
	if c, ok := s.coreOf[ti]; ok {
		return c
	}
	return -1
}

// TasksOn returns the task indices mapped to core c, in a stable sorted
// order (for deterministic iteration by policies and reports).
func (s *Scheduler) TasksOn(c int) []int {
	out := append([]int(nil), s.queues[c]...)
	sort.Ints(out)
	return out
}

// NumTasksOn returns the run-queue length of core c.
func (s *Scheduler) NumTasksOn(c int) int { return len(s.queues[c]) }

// PickNext returns the next task on core c for which runnable returns
// true, advancing the round-robin cursor past it, or -1 when no mapped
// task is runnable. The cursor advance gives each runnable task a turn
// before any task gets a second one.
func (s *Scheduler) PickNext(c int, runnable func(ti int) bool) int {
	q := s.queues[c]
	n := len(q)
	if n == 0 {
		return -1
	}
	for k := 0; k < n; k++ {
		pos := (s.cursor[c] + k) % n
		ti := q[pos]
		if runnable(ti) {
			s.cursor[c] = (pos + 1) % n
			return ti
		}
	}
	return -1
}

// OrderFrom returns core c's run queue in pick order — starting at the
// round-robin cursor and wrapping — without advancing the cursor. The
// result is appended into dst (reset to length zero), so callers can
// reuse a scratch buffer across calls. The engine's event-horizon fast
// path uses this to predict which task each upcoming tick's PickNext
// will select.
func (s *Scheduler) OrderFrom(c int, dst []int) []int {
	dst = dst[:0]
	q := s.queues[c]
	cur := s.cursor[c]
	dst = append(dst, q[cur:]...)
	return append(dst, q[:cur]...)
}

// AdvancePast moves core c's round-robin cursor just past task ti,
// exactly as PickNext does when it picks ti. The engine's fast path
// uses it to leave the cursor where a sequence of picks ending in ti
// would have, without walking the picks one by one.
func (s *Scheduler) AdvancePast(c, ti int) {
	q := s.queues[c]
	for i, v := range q {
		if v == ti {
			s.cursor[c] = (i + 1) % len(q)
			return
		}
	}
	panic(fmt.Sprintf("sched: AdvancePast(%d) — task not on core %d", ti, c))
}

// Mapping returns a copy of the full task→core map.
func (s *Scheduler) Mapping() map[int]int {
	m := make(map[int]int, len(s.coreOf))
	for k, v := range s.coreOf {
		m[k] = v
	}
	return m
}
