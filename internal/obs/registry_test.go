package obs

import (
	"strings"
	"testing"
	"time"
)

// Golden test of the Prometheus text exposition format: families in
// registration order, HELP/TYPE headers, cumulative buckets with le
// labels, _sum/_count, label escaping, integer-vs-float rendering.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("thermbal_stage_duration_seconds", "Time spent per request stage.",
		[]float64{0.001, 0.01}, L("stage", "execute"))
	h2 := r.NewHistogram("thermbal_stage_duration_seconds", "Time spent per request stage.",
		[]float64{0.001, 0.01}, L("stage", "encode"))
	c := r.NewCounter("thermbal_requests_total", "Requests served.",
		L("endpoint", "run"), L("outcome", "hit"))
	r.NewGaugeFunc("thermbal_cache_entries", "Cached bodies.", func() float64 { return 7 })

	h.Observe(500 * time.Microsecond) // first bucket
	h.Observe(2 * time.Millisecond)   // second bucket
	h.Observe(3 * time.Second)        // +Inf bucket
	h2.Observe(500 * time.Microsecond)
	c.Add(41)
	c.Inc()

	const want = `# HELP thermbal_stage_duration_seconds Time spent per request stage.
# TYPE thermbal_stage_duration_seconds histogram
thermbal_stage_duration_seconds_bucket{stage="execute",le="0.001"} 1
thermbal_stage_duration_seconds_bucket{stage="execute",le="0.01"} 2
thermbal_stage_duration_seconds_bucket{stage="execute",le="+Inf"} 3
thermbal_stage_duration_seconds_sum{stage="execute"} 3.0025
thermbal_stage_duration_seconds_count{stage="execute"} 3
thermbal_stage_duration_seconds_bucket{stage="encode",le="0.001"} 1
thermbal_stage_duration_seconds_bucket{stage="encode",le="0.01"} 1
thermbal_stage_duration_seconds_bucket{stage="encode",le="+Inf"} 1
thermbal_stage_duration_seconds_sum{stage="encode"} 0.0005
thermbal_stage_duration_seconds_count{stage="encode"} 1
# HELP thermbal_requests_total Requests served.
# TYPE thermbal_requests_total counter
thermbal_requests_total{endpoint="run",outcome="hit"} 42
# HELP thermbal_cache_entries Cached bodies.
# TYPE thermbal_cache_entries gauge
thermbal_cache_entries 7
`
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("esc_total", "t", L("v", "a\"b\\c\nd"))
	c.Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Errorf("escaped label missing from:\n%s", sb.String())
	}
}

func TestHistogramsFilter(t *testing.T) {
	r := NewRegistry()
	a := r.NewHistogram("f_seconds", "t", DefBuckets, L("endpoint", "run"), L("outcome", "hit"))
	b := r.NewHistogram("f_seconds", "t", DefBuckets, L("endpoint", "run"), L("outcome", "miss"))
	r.NewHistogram("f_seconds", "t", DefBuckets, L("endpoint", "matrix"), L("outcome", "hit"))

	all := r.Histograms("f_seconds")
	if len(all) != 3 {
		t.Fatalf("unfiltered members = %d, want 3", len(all))
	}
	run := r.Histograms("f_seconds", L("endpoint", "run"))
	if len(run) != 2 || run[0] != a || run[1] != b {
		t.Fatalf("endpoint=run members = %d, want the 2 run histograms", len(run))
	}
	if got := r.Histograms("f_seconds", L("outcome", "miss")); len(got) != 1 || got[0] != b {
		t.Fatalf("outcome=miss filter returned %d members, want exactly b", len(got))
	}
	if got := r.Histograms("nope"); got != nil {
		t.Fatalf("unknown family returned %v", got)
	}
	names := r.FamilyNames()
	if len(names) != 1 || names[0] != "f_seconds" {
		t.Fatalf("FamilyNames = %v", names)
	}
}
