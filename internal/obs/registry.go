// Package obs is the service's zero-dependency observability layer:
// fixed-bucket latency histograms and counters behind a Registry that
// renders the Prometheus text exposition format, plus the flat
// per-request TimingRecord the service threads through every stage of
// a request (queue wait, coalesce wait, execute, encode, store append)
// and emits as an X-Timing header and an optional CSV timing log.
//
// The design constraint throughout is that recording must be cheap
// enough for the cached-request hot path: histogram buckets are fixed
// at registration so Observe is two atomic adds with no lock and no
// allocation, counters are single atomic adds, and TimingRecord is a
// flat value type that stamps with plain stores. Only registration
// (startup) and rendering (a /metrics scrape or /stats poll) take the
// registry lock.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric at registration.
// Labels are fixed for the metric's lifetime — the hot path never
// formats or hashes them; it holds a pointer to the pre-registered
// instrument.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing counter.
type Counter struct {
	labels []Label
	v      atomic.Uint64
}

// Add increments the counter by n. Lock-free and allocation-free.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// funcMetric is a gauge or counter whose value is read at scrape time
// (cache entry counts, uptime, job-state tallies — values some other
// structure already owns and should not be double-counted).
type funcMetric struct {
	labels []Label
	fn     func() float64
}

// family groups the metrics sharing one name: one HELP/TYPE header,
// one member per label set.
type family struct {
	name string
	help string
	kind string // "counter" | "gauge" | "histogram"
	// exactly one of these member lists is populated, matching kind
	hists    []*Histogram
	counters []*Counter
	funcs    []funcMetric
	// bounds are the shared bucket bounds of a histogram family; every
	// member registers with the same slice so label splits stay
	// mergeable for quantiles.
	bounds []float64
}

// Registry owns a set of metric families and renders them in the
// Prometheus text exposition format. Families and members render in
// registration order, so output is deterministic (golden-testable).
// Registration is for startup; it takes a lock and panics on misuse
// (conflicting re-registration, unsorted buckets) exactly like
// flag.Var does, because both indicate a programming error that
// should fail loudly at boot, not at scrape time.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func (r *Registry) family(name, help, kind string) *family {
	if r.byName == nil {
		r.byName = map[string]*family{}
	}
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

// NewHistogram registers a histogram under name with the given bucket
// upper bounds (seconds, strictly increasing). Members of one family
// must share the same bounds slice contents.
func (r *Registry) NewHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram " + name + " needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram " + name + " bounds must be strictly increasing")
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "histogram")
	if f.bounds == nil {
		f.bounds = bounds
	} else if !equalBounds(f.bounds, bounds) {
		panic("obs: histogram " + name + " re-registered with different buckets")
	}
	h := newHistogram(bounds, labels)
	f.hists = append(f.hists, h)
	return h
}

// NewCounter registers a counter.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "counter")
	c := &Counter{labels: labels}
	f.counters = append(f.counters, c)
	return c
}

// NewGaugeFunc registers a gauge whose value is fn(), read at scrape
// time. fn must be safe for concurrent calls.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "gauge")
	f.funcs = append(f.funcs, funcMetric{labels: labels, fn: fn})
}

// NewCounterFunc registers a counter whose value is fn(), read at
// scrape time — for monotone counts another structure already owns.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "counter")
	f.funcs = append(f.funcs, funcMetric{labels: labels, fn: fn})
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4): # HELP and # TYPE headers,
// cumulative _bucket series with an le label, _sum and _count for
// histograms. Values are point-in-time atomic loads; a scrape
// concurrent with observations sees each series at some real value.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	var buf []byte
	for _, f := range fams {
		buf = buf[:0]
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.help...)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.kind...)
		buf = append(buf, '\n')
		for _, h := range f.hists {
			buf = appendHistogram(buf, f.name, h)
		}
		for _, c := range f.counters {
			buf = appendSeries(buf, f.name, "", c.labels, Label{}, float64(c.Value()))
		}
		for _, fm := range f.funcs {
			buf = appendSeries(buf, f.name, "", fm.labels, Label{}, fm.fn())
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// appendHistogram renders one histogram member: cumulative buckets
// with le labels, then _sum and _count.
func appendHistogram(buf []byte, name string, h *Histogram) []byte {
	counts := h.snapshot()
	var cum uint64
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		buf = appendSeries(buf, name, "_bucket", h.labels, L("le", le), float64(cum))
	}
	buf = appendSeries(buf, name, "_sum", h.labels, Label{}, h.Sum())
	buf = appendSeries(buf, name, "_count", h.labels, Label{}, float64(cum))
	return buf
}

// appendSeries renders one `name_suffix{labels} value` line. extra is
// an optional trailing label (the bucket le); a zero Label is skipped.
func appendSeries(buf []byte, name, suffix string, labels []Label, extra Label, v float64) []byte {
	buf = append(buf, name...)
	buf = append(buf, suffix...)
	if len(labels) > 0 || extra.Name != "" {
		buf = append(buf, '{')
		first := true
		for _, l := range labels {
			if !first {
				buf = append(buf, ',')
			}
			first = false
			buf = appendLabel(buf, l)
		}
		if extra.Name != "" {
			if !first {
				buf = append(buf, ',')
			}
			buf = appendLabel(buf, extra)
		}
		buf = append(buf, '}')
	}
	buf = append(buf, ' ')
	buf = append(buf, formatFloat(v)...)
	buf = append(buf, '\n')
	return buf
}

func appendLabel(buf []byte, l Label) []byte {
	buf = append(buf, l.Name...)
	buf = append(buf, '=', '"')
	// Label values here are registry-owned identifiers (stage names,
	// outcomes); escape the format's three special characters anyway so
	// the renderer never emits an invalid line.
	for i := 0; i < len(l.Value); i++ {
		switch c := l.Value[i]; c {
		case '\\', '"':
			buf = append(buf, '\\', c)
		case '\n':
			buf = append(buf, '\\', 'n')
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}

// formatFloat renders a value the way Prometheus clients do: integers
// without a decimal point, everything else in shortest round-trip
// form.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Histograms returns the registered histogram members of the named
// family, filtered to those carrying every given label. /stats uses it
// to merge outcome-labelled members into one quantile.
func (r *Registry) Histograms(name string, match ...Label) []*Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		return nil
	}
	var out []*Histogram
	for _, h := range f.hists {
		if hasLabels(h.labels, match) {
			out = append(out, h)
		}
	}
	return out
}

func hasLabels(labels, match []Label) bool {
	for _, m := range match {
		found := false
		for _, l := range labels {
			if l == m {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// FamilyNames returns the registered family names, sorted — a test
// and debugging convenience.
func (r *Registry) FamilyNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for _, f := range r.families {
		names = append(names, f.name)
	}
	sort.Strings(names)
	return names
}
