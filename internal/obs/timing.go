package obs

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Stage indexes one timed stage of a request's life. The order is
// frozen: it is the X-Timing pair order and the CSV column order, so
// offline analysis can rely on position.
type Stage int

const (
	// StageQueue is time spent waiting for an execution slot (the
	// MaxSims admission semaphore) before the engine could start.
	StageQueue Stage = iota
	// StageCoalesce is time spent waiting on another caller's identical
	// in-flight execution instead of running one.
	StageCoalesce
	// StageExecute is the engine run itself.
	StageExecute
	// StageEncode is result-document encoding.
	StageEncode
	// StageStore is the durable-store append of the encoded body.
	StageStore
	// NumStages is the number of timed stages (array sizing).
	NumStages
)

// StageNames are the wire spellings, indexed by Stage.
var StageNames = [NumStages]string{"queue", "coalesce", "execute", "encode", "store"}

// TimingRecord is the flat per-request timing record threaded through
// the service: one duration per stage plus the request total, with the
// endpoint and cache outcome for labelling. It is a plain value type —
// stamping a stage is a field store, no locks, no allocation — sized
// to live on the handler's stack.
type TimingRecord struct {
	// Start is the wall-clock arrival of the request (CSV only; stage
	// math uses monotonic durations).
	Start time.Time
	// Endpoint is "run" or "matrix".
	Endpoint string
	// Outcome is the cache outcome: "hit", "store", "miss", "coalesced"
	// or "error".
	Outcome string
	// D holds the per-stage durations; stages that did not occur stay 0
	// (a cache hit has only Total).
	D [NumStages]time.Duration
	// Total is the whole request duration, decode to last byte handed
	// to the response writer.
	Total time.Duration
}

// micros renders a duration as integer microseconds (floor). Stage
// durations are reported in µs: ns is noise at engine-run scale and ms
// loses the cache-hit path entirely.
func micros(d time.Duration) int64 {
	if d < 0 {
		return 0
	}
	return d.Microseconds()
}

// AppendHeaderValue appends the X-Timing header value to buf: the
// fixed-order compact `stage=µs` pairs, comma-separated, ending with
// total — e.g. `queue=0,coalesce=0,execute=105432,encode=210,store=88,total=105844`.
// Appending into a caller-reused buffer keeps the hot path's only
// unavoidable allocation the final string conversion the header map
// needs.
func (r *TimingRecord) AppendHeaderValue(buf []byte) []byte {
	for s := Stage(0); s < NumStages; s++ {
		buf = append(buf, StageNames[s]...)
		buf = append(buf, '=')
		buf = strconv.AppendInt(buf, micros(r.D[s]), 10)
		buf = append(buf, ',')
	}
	buf = append(buf, "total="...)
	return strconv.AppendInt(buf, micros(r.Total), 10)
}

// ParseHeaderValue parses an X-Timing header value back into stage
// microseconds keyed by stage name (plus "total"). The smoke harness
// and tests use it to assert the header round-trips.
func ParseHeaderValue(v string) (map[string]int64, error) {
	out := map[string]int64{}
	for _, pair := range strings.Split(v, ",") {
		name, num, ok := strings.Cut(pair, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("obs: malformed X-Timing pair %q", pair)
		}
		n, err := strconv.ParseInt(num, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: malformed X-Timing pair %q: %w", pair, err)
		}
		out[name] = n
	}
	return out, nil
}

// CSVHeader is the column header of the timing log, matching
// AppendCSV's field order.
const CSVHeader = "start_unix_ns,endpoint,outcome,queue_us,coalesce_us,execute_us,encode_us,store_us,total_us"

// AppendCSV appends one CSV record (no trailing newline). The fields
// are all numeric or registry-owned identifiers, so no quoting is ever
// needed.
func (r *TimingRecord) AppendCSV(buf []byte) []byte {
	buf = strconv.AppendInt(buf, r.Start.UnixNano(), 10)
	buf = append(buf, ',')
	buf = append(buf, r.Endpoint...)
	buf = append(buf, ',')
	buf = append(buf, r.Outcome...)
	for s := Stage(0); s < NumStages; s++ {
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, micros(r.D[s]), 10)
	}
	buf = append(buf, ',')
	return strconv.AppendInt(buf, micros(r.Total), 10)
}
