package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// Observations landing exactly on, just under and just over each bound
// must land in the right bucket: bounds are inclusive upper bounds.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []float64{0.001, 0.01, 0.1}
	cases := []struct {
		name   string
		d      time.Duration
		bucket int
	}{
		{"zero", 0, 0},
		{"negative clamps to zero", -time.Second, 0},
		{"under first bound", 999 * time.Microsecond, 0},
		{"exactly first bound", time.Millisecond, 0},
		{"just over first bound", time.Millisecond + time.Nanosecond, 1},
		{"mid second bucket", 5 * time.Millisecond, 1},
		{"exactly second bound", 10 * time.Millisecond, 1},
		{"mid third bucket", 50 * time.Millisecond, 2},
		{"exactly last bound", 100 * time.Millisecond, 2},
		{"over last bound lands in +Inf", 101 * time.Millisecond, 3},
		{"far over last bound", time.Hour, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			h := r.NewHistogram("test_seconds", "t", bounds)
			h.Observe(tc.d)
			counts := h.snapshot()
			for i, c := range counts {
				want := uint64(0)
				if i == tc.bucket {
					want = 1
				}
				if c != want {
					t.Errorf("bucket %d count = %d, want %d (observation %v)", i, c, want, tc.d)
				}
			}
			if h.Count() != 1 {
				t.Errorf("Count = %d, want 1", h.Count())
			}
		})
	}
}

func TestHistogramSum(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_seconds", "t", DefBuckets)
	h.Observe(1500 * time.Millisecond)
	h.Observe(500 * time.Millisecond)
	if got := h.Sum(); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("Sum = %v, want 2.0", got)
	}
}

// Concurrent observers and scrapers must be race-free (run with
// -race): Observe is atomic adds, rendering and quantiles read with
// atomic loads.
func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_seconds", "t", DefBuckets)
	c := r.NewCounter("test_total", "t")
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(g*perG+i) * time.Microsecond)
				c.Inc()
			}
		}(g)
	}
	// Scrape and read quantiles while the observers run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sink discardWriter
			if err := r.WritePrometheus(&sink); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			h.Quantile(0.95)
		}
	}()
	wg.Wait()
	<-done
	if got, want := h.Count(), uint64(goroutines*perG); got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
	if got, want := c.Value(), uint64(goroutines*perG); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// Quantiles interpolate within the bucket the rank falls in.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	bounds := []float64{0.1, 0.2, 0.4}
	h := r.NewHistogram("test_seconds", "t", bounds)
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
	// 10 observations in (0.1, 0.2]: the median rank is 5 of 10 in that
	// bucket → lower + (0.1 width)*(5/10) = 0.15.
	for i := 0; i < 10; i++ {
		h.Observe(150 * time.Millisecond)
	}
	if q := h.Quantile(0.5); math.Abs(q-0.15) > 1e-9 {
		t.Errorf("p50 = %v, want 0.15", q)
	}
	// Everything beyond the last bound clamps to it.
	h2 := r.NewHistogram("test2_seconds", "t", bounds)
	for i := 0; i < 4; i++ {
		h2.Observe(time.Second)
	}
	if q := h2.Quantile(0.99); q != 0.4 {
		t.Errorf("+Inf-bucket p99 = %v, want clamp to 0.4", q)
	}
}

func TestMergedQuantile(t *testing.T) {
	r := NewRegistry()
	bounds := []float64{0.1, 0.2, 0.4}
	a := r.NewHistogram("m_seconds", "t", bounds, L("outcome", "hit"))
	b := r.NewHistogram("m_seconds", "t", bounds, L("outcome", "miss"))
	for i := 0; i < 5; i++ {
		a.Observe(50 * time.Millisecond) // first bucket
	}
	for i := 0; i < 5; i++ {
		b.Observe(300 * time.Millisecond) // third bucket
	}
	if got, want := MergedCount([]*Histogram{a, b}), uint64(10); got != want {
		t.Fatalf("MergedCount = %d, want %d", got, want)
	}
	// p95 rank 9.5 falls in the third bucket: 0.2 + 0.2*(4.5/5) = 0.38.
	if q := MergedQuantile([]*Histogram{a, b}, 0.95); math.Abs(q-0.38) > 1e-9 {
		t.Errorf("merged p95 = %v, want 0.38", q)
	}
	if q := MergedQuantile(nil, 0.5); q != 0 {
		t.Errorf("MergedQuantile(nil) = %v, want 0", q)
	}
}

// Observe and Counter.Add sit on the cached-request hot path: they
// must not allocate. Race instrumentation allocates, so the assertion
// is skipped under -race.
func TestObserveZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	r := NewRegistry()
	h := r.NewHistogram("test_seconds", "t", DefBuckets)
	c := r.NewCounter("test_total", "t")
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(3 * time.Millisecond)
		c.Inc()
	})
	if allocs != 0 {
		t.Errorf("Observe+Inc allocates %.1f objects per call, want 0", allocs)
	}
}

func TestRegistryPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.NewHistogram("h_seconds", "t", DefBuckets)
	r.NewCounter("c_total", "t")
	expectPanic("empty bounds", func() { r.NewHistogram("x_seconds", "t", nil) })
	expectPanic("unsorted bounds", func() { r.NewHistogram("y_seconds", "t", []float64{1, 1}) })
	expectPanic("kind conflict", func() { r.NewCounter("h_seconds", "t") })
	expectPanic("bucket conflict", func() { r.NewHistogram("h_seconds", "t", []float64{1, 2}) })
}
