package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency bucket upper bounds in seconds:
// 100 µs up through one minute in a 1-2.5-5 progression. They cover
// everything the service does — a cache hit is well under the first
// bound, a manycore sweep cell sits in the seconds range — while
// keeping the per-histogram footprint (one cache line of counts per
// few buckets) small enough to register dozens of them.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket latency histogram. The bucket bounds are
// frozen at registration, which is what makes concurrent observation
// lock-free: Observe is two atomic adds (a bucket count and the sum)
// with no allocation and no mutex, so it can sit on the cached-request
// hot path. Counts are per-bucket (not cumulative); rendering and
// quantile computation cumulate on read.
type Histogram struct {
	labels []Label
	// bounds are the inclusive upper bounds in seconds; observations
	// above the last bound land in the implicit +Inf bucket.
	bounds []float64
	// counts has len(bounds)+1 entries; the last is the +Inf bucket.
	counts []atomic.Uint64
	// sumNanos accumulates observed durations in integer nanoseconds —
	// atomically addable, and exact for any realistic uptime (2^63 ns
	// is ~292 years).
	sumNanos atomic.Int64
}

func newHistogram(bounds []float64, labels []Label) *Histogram {
	return &Histogram{
		labels: labels,
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one duration. Lock-free and allocation-free.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s := d.Seconds()
	// Linear scan: the bucket lists are short (≤ ~20) and the scan is
	// branch-predictable; a binary search saves nothing measurable and
	// costs mispredictions on the common small-latency observations.
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNanos.Add(int64(d))
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed durations in seconds.
func (h *Histogram) Sum() float64 {
	return time.Duration(h.sumNanos.Load()).Seconds()
}

// snapshot copies the per-bucket counts (still non-cumulative). The
// copy is not an atomic cut across buckets — concurrent observations
// may straddle it — but every individual count is a real value, which
// is all a scrape or quantile needs.
func (h *Histogram) snapshot() []uint64 {
	counts := make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts
}

// Quantile estimates the q-quantile (0 < q ≤ 1) in seconds from the
// bucket counts, Prometheus histogram_quantile style: find the bucket
// the rank falls in, interpolate linearly inside it. Observations in
// the +Inf bucket clamp to the last finite bound. Returns 0 when the
// histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	return quantileFromCounts(h.bounds, h.snapshot(), q)
}

// MergedQuantile estimates the q-quantile across several histograms
// with identical bucket bounds (e.g. the same stage split by outcome
// label). Histograms with differing bounds cannot be merged; callers
// register families with one shared bound slice.
func MergedQuantile(hs []*Histogram, q float64) float64 {
	if len(hs) == 0 {
		return 0
	}
	merged := make([]uint64, len(hs[0].counts))
	for _, h := range hs {
		for i, c := range h.snapshot() {
			merged[i] += c
		}
	}
	return quantileFromCounts(hs[0].bounds, merged, q)
}

// MergedCount sums the observation counts of several histograms.
func MergedCount(hs []*Histogram) uint64 {
	var n uint64
	for _, h := range hs {
		n += h.Count()
	}
	return n
}

func quantileFromCounts(bounds []float64, counts []uint64, q float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q <= 0 {
		q = math.SmallestNonzeroFloat64
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(bounds) {
			// +Inf bucket: no finite upper bound to interpolate toward.
			return bounds[len(bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = bounds[i-1]
		}
		upper := bounds[i]
		if c == 0 {
			return upper
		}
		inBucket := rank - float64(cum-c)
		return lower + (upper-lower)*(inBucket/float64(c))
	}
	return bounds[len(bounds)-1]
}
