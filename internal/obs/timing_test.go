package obs

import (
	"strings"
	"testing"
	"time"
)

func sampleRecord() TimingRecord {
	return TimingRecord{
		Start:    time.Unix(1700000000, 123),
		Endpoint: "run",
		Outcome:  "miss",
		D: [NumStages]time.Duration{
			StageQueue:    12 * time.Microsecond,
			StageCoalesce: 0,
			StageExecute:  105432 * time.Microsecond,
			StageEncode:   210 * time.Microsecond,
			StageStore:    88 * time.Microsecond,
		},
		Total: 105844 * time.Microsecond,
	}
}

func TestAppendHeaderValueRoundTrip(t *testing.T) {
	rec := sampleRecord()
	got := string(rec.AppendHeaderValue(nil))
	want := "queue=12,coalesce=0,execute=105432,encode=210,store=88,total=105844"
	if got != want {
		t.Fatalf("header = %q, want %q", got, want)
	}
	parsed, err := ParseHeaderValue(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != int(NumStages)+1 {
		t.Fatalf("parsed %d pairs, want %d", len(parsed), NumStages+1)
	}
	for s := Stage(0); s < NumStages; s++ {
		if parsed[StageNames[s]] != micros(rec.D[s]) {
			t.Errorf("stage %s = %d, want %d", StageNames[s], parsed[StageNames[s]], micros(rec.D[s]))
		}
	}
	if parsed["total"] != 105844 {
		t.Errorf("total = %d, want 105844", parsed["total"])
	}
}

func TestParseHeaderValueRejectsMalformed(t *testing.T) {
	for _, v := range []string{"", "queue", "=12", "queue=x", "queue=1,,total=2"} {
		if _, err := ParseHeaderValue(v); err == nil {
			t.Errorf("ParseHeaderValue(%q) accepted malformed input", v)
		}
	}
}

func TestAppendCSV(t *testing.T) {
	rec := sampleRecord()
	got := string(rec.AppendCSV(nil))
	fields := strings.Split(got, ",")
	header := strings.Split(CSVHeader, ",")
	if len(fields) != len(header) {
		t.Fatalf("record has %d fields, header names %d: %q", len(fields), len(header), got)
	}
	want := strings.Split("1700000000000000123,run,miss,12,0,105432,210,88,105844", ",")
	for i := range want {
		if fields[i] != want[i] {
			t.Errorf("field %s = %q, want %q", header[i], fields[i], want[i])
		}
	}
}

func TestCSVLogger(t *testing.T) {
	var sb strings.Builder
	l := NewCSVLogger(&sb, true)
	rec := sampleRecord()
	l.Log(&rec)
	rec.Outcome = "hit"
	l.Log(&rec)
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("log has %d lines, want header + 2 records:\n%s", len(lines), sb.String())
	}
	if lines[0] != CSVHeader {
		t.Errorf("header line = %q", lines[0])
	}
	if !strings.Contains(lines[2], ",hit,") {
		t.Errorf("second record %q missing hit outcome", lines[2])
	}

	// Appending to an existing file writes no header.
	var sb2 strings.Builder
	NewCSVLogger(&sb2, false).Log(&rec)
	if strings.Contains(sb2.String(), "start_unix_ns") {
		t.Errorf("append-mode logger wrote a header: %q", sb2.String())
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errWrite }

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "disk full" }

func TestCSVLoggerStickyError(t *testing.T) {
	l := NewCSVLogger(failWriter{}, true)
	rec := sampleRecord()
	l.Log(&rec) // must not panic; error is sticky
	if l.Err() == nil {
		t.Fatal("expected a sticky write error")
	}
}
