//go:build race

package obs

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates, so zero-allocation assertions are skipped
// under -race.
const raceEnabled = true
