package obs

import (
	"io"
	"sync"
)

// CSVLogger appends one CSV timing record per request to a writer
// (thermservd's -timing-log file). It is mutex-guarded — the log is an
// offline-analysis artifact, not a hot-path structure — and reuses one
// line buffer across records so steady-state logging allocates only
// when a record outgrows every previous one.
type CSVLogger struct {
	mu      sync.Mutex
	w       io.Writer
	buf     []byte
	err     error // first write error; logging degrades to a no-op
	dropped uint64
}

// NewCSVLogger wraps w. When header is true (a fresh file) the column
// header line is written first; pass false when appending to an
// existing log.
func NewCSVLogger(w io.Writer, header bool) *CSVLogger {
	l := &CSVLogger{w: w}
	if header {
		_, l.err = io.WriteString(w, CSVHeader+"\n")
	}
	return l
}

// Log appends one record. Write errors are sticky and silent: a full
// disk must degrade the timing log, never the request path.
func (l *CSVLogger) Log(rec *TimingRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		l.dropped++
		return
	}
	l.buf = rec.AppendCSV(l.buf[:0])
	l.buf = append(l.buf, '\n')
	if _, err := l.w.Write(l.buf); err != nil {
		l.err = err
		l.dropped++
	}
}

// Err returns the first write error, if any.
func (l *CSVLogger) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Dropped returns how many records were discarded because of the
// sticky write error (the failing record included).
func (l *CSVLogger) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}
