package loadgen

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// stubServer mimics thermservd's response surface: 200s with X-Cache
// and X-Timing headers, with optional scripted refusals.
func stubServer(t *testing.T, refuse func(n int) int) (*httptest.Server, func() (int, map[string]int)) {
	t.Helper()
	var (
		mu     sync.Mutex
		n      int
		bodies = map[string]int{}
	)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		mu.Lock()
		n++
		seq := n
		bodies[string(b)]++
		mu.Unlock()
		if refuse != nil {
			if code := refuse(seq); code != 0 {
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(code)
				return
			}
		}
		w.Header().Set("X-Cache", "hit")
		w.Header().Set("X-Timing", "queue=0,coalesce=0,execute=1200,encode=40,store=0,total=1300")
		w.Write([]byte(`{"ok":true}`))
	}))
	t.Cleanup(ts.Close)
	return ts, func() (int, map[string]int) {
		mu.Lock()
		defer mu.Unlock()
		copied := map[string]int{}
		for k, v := range bodies {
			copied[k] = v
		}
		return n, copied
	}
}

func TestRunProducesReport(t *testing.T) {
	// Every 10th request is shed, every 11th quota-denied.
	ts, counts := stubServer(t, func(n int) int {
		switch {
		case n%10 == 0:
			return 503
		case n%11 == 0:
			return 429
		}
		return 0
	})

	rep, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		RPS:      200,
		Warmup:   100 * time.Millisecond,
		Duration: 400 * time.Millisecond,
		Mix:      DefaultMix(),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Measured == 0 || rep.Sent < rep.Measured {
		t.Fatalf("sent %d / measured %d", rep.Sent, rep.Measured)
	}
	if rep.AchievedRPS <= 0 {
		t.Errorf("achieved rps = %g", rep.AchievedRPS)
	}
	run := rep.Endpoints["run"]
	if run == nil || run.Count == 0 {
		t.Fatalf("run endpoint report = %+v", run)
	}
	if run.Latency.P50Ms <= 0 || run.Latency.P99Ms < run.Latency.P50Ms {
		t.Errorf("run quantiles = %+v", run.Latency)
	}
	if run.Errors != 0 {
		t.Errorf("run errors = %d, want 0 (refusals are not errors)", run.Errors)
	}
	totalShed, totalQuota := 0, 0
	for _, ep := range rep.Endpoints {
		totalShed += ep.Shed
		totalQuota += ep.Quota
	}
	if totalShed == 0 || totalQuota == 0 {
		t.Errorf("shed %d / quota %d, want both > 0 from the scripted refusals", totalShed, totalQuota)
	}
	if rep.Stages["execute"] == nil || rep.Stages["execute"].P50Ms <= 0 {
		t.Errorf("stages = %+v, want execute quantiles from X-Timing", rep.Stages)
	}
	if rep.Outcomes["hit"] == 0 {
		t.Errorf("outcomes = %+v, want X-Cache hits counted", rep.Outcomes)
	}

	// The Zipf skew must actually repeat keys: far fewer distinct
	// bodies than requests.
	nReq, bodies := counts()
	if len(bodies) >= nReq/2 {
		t.Errorf("%d distinct bodies over %d requests — no key repetition", len(bodies), nReq)
	}

	// The JSON document round-trips under the schema gate.
	b, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReport(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.Measured != rep.Measured || back.SchemaVersion != SchemaVersion {
		t.Errorf("round-trip: measured %d version %d", back.Measured, back.SchemaVersion)
	}
	if !strings.HasPrefix(rep.Filename(), "LOAD_") || !strings.HasSuffix(rep.Filename(), ".json") {
		t.Errorf("filename = %q", rep.Filename())
	}
	if !strings.Contains(rep.Table(), "endpoint") {
		t.Errorf("table output missing header:\n%s", rep.Table())
	}
}

func TestDecodeReportRejectsUnknownSchema(t *testing.T) {
	if _, err := DecodeReport([]byte(`{"load_schema_version": 999}`)); err == nil {
		t.Fatal("unknown schema version accepted")
	}
}

func TestMixValidate(t *testing.T) {
	good := DefaultMix()
	if err := good.Validate(); err != nil {
		t.Fatalf("default mix invalid: %v", err)
	}
	bad := []Mix{
		{},
		{ZipfS: 1.2, ZipfKeys: 4, Entries: []MixEntry{{Weight: 0, Endpoint: "run", Scenario: "s", Policy: "p", MeasureS: 1, DeltaBase: 1}}},
		{ZipfS: 1.2, ZipfKeys: 4, Entries: []MixEntry{{Weight: 1, Endpoint: "nope", Scenario: "s", MeasureS: 1, DeltaBase: 1}}},
		{ZipfS: 1.2, ZipfKeys: 4, Entries: []MixEntry{{Weight: 1, Endpoint: "run", Scenario: "s", Policy: "p", MeasureS: 0, DeltaBase: 1}}},
		{ZipfS: 0.5, ZipfKeys: 4, Entries: []MixEntry{{Weight: 1, Endpoint: "run", Scenario: "s", Policy: "p", MeasureS: 1, DeltaBase: 1}}},
		{ZipfS: 1.2, ZipfKeys: 0, Entries: []MixEntry{{Weight: 1, Endpoint: "run", Scenario: "s", Policy: "p", MeasureS: 1, DeltaBase: 1}}},
		{ZipfS: 1.2, ZipfKeys: 4, Entries: []MixEntry{{Weight: 1, Endpoint: "matrix", Scenario: "s", MeasureS: 1, DeltaBase: 1}}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad mix %d accepted", i)
		}
	}
}

func TestQuantileExact(t *testing.T) {
	ds := make([]time.Duration, 100)
	for i := range ds {
		ds[i] = time.Duration(i+1) * time.Millisecond
	}
	q := quantilesOf(ds)
	if q.Count != 100 || q.P50Ms != 50 || q.P95Ms != 95 || q.P99Ms != 99 {
		t.Errorf("quantiles = %+v, want 50/95/99 over 1..100ms", q)
	}
	one := quantilesOf([]time.Duration{7 * time.Millisecond})
	if one.P50Ms != 7 || one.P99Ms != 7 {
		t.Errorf("single-sample quantiles = %+v", one)
	}
	if quantilesOf(nil).Count != 0 {
		t.Error("empty quantiles nonzero")
	}
}
