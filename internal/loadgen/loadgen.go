// Package loadgen is the open-loop load generator behind cmd/thermload:
// fixed-rate arrivals against a live thermservd, a declarative request
// mix with Zipf-skewed key repetition, and a schema-versioned report of
// what the service sustained (per-endpoint and per-stage latency
// quantiles, error/shed/quota rates, cache-outcome mix).
//
// The generator is deliberately open-loop: arrivals fire on a fixed
// schedule whether or not earlier requests have completed, so queueing
// delay shows up in the measured latency instead of being absorbed by
// client backpressure the way a closed loop (fixed worker count) hides
// it. The one concession is a bounded in-flight cap as a client-side
// safety valve; arrivals skipped at the cap are counted, never silently
// dropped.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"thermbal/internal/obs"
)

// MixEntry is one weighted request shape in the mix. The Zipf-drawn
// key index is added to DeltaBase, so the entry spans ZipfKeys distinct
// content addresses with skewed repetition — the skew is what exercises
// the cache and store tiers the way a real population of callers does.
type MixEntry struct {
	// Name labels the entry in reports; defaults to endpoint/scenario.
	Name string `json:"name,omitempty"`
	// Weight is the entry's relative share of arrivals (any positive
	// scale; weights are normalized).
	Weight float64 `json:"weight"`
	// Endpoint is "run" (sync POST /run) or "matrix" (sync POST
	// /matrix).
	Endpoint string `json:"endpoint"`
	Scenario string `json:"scenario"`
	// Policy names the policy for a run entry; Policies the sweep
	// columns for a matrix entry.
	Policy   string   `json:"policy,omitempty"`
	Policies []string `json:"policies,omitempty"`
	WarmupS  float64  `json:"warmup_s"`
	MeasureS float64  `json:"measure_s"`
	// DeltaBase is the smallest delta the entry requests; the key index
	// k in [0, ZipfKeys) yields delta = DeltaBase + k.
	DeltaBase int `json:"delta_base"`
}

func (e *MixEntry) label() string {
	if e.Name != "" {
		return e.Name
	}
	return e.Endpoint + "/" + e.Scenario
}

// Mix is the declarative request mix: weighted entries plus the Zipf
// key-repetition parameters shared by all of them.
type Mix struct {
	Entries []MixEntry `json:"entries"`
	// ZipfS is the Zipf skew exponent (> 1; larger = more repetition
	// concentrated on few keys). ZipfKeys is the distinct key-index
	// count per entry.
	ZipfS    float64 `json:"zipf_s"`
	ZipfKeys int     `json:"zipf_keys"`
}

// DefaultMix is the mix used when no -mix file is given: run-dominated
// traffic over the cheapest scenario with a small sweep component, the
// shape the OPERATIONS.md capacity numbers are quoted against.
func DefaultMix() Mix {
	return Mix{
		ZipfS:    1.2,
		ZipfKeys: 8,
		Entries: []MixEntry{
			{Name: "run-tb", Weight: 8, Endpoint: "run", Scenario: "sdr-radio", Policy: "tb", WarmupS: 0.3, MeasureS: 0.7, DeltaBase: 1},
			{Name: "run-eb", Weight: 1.5, Endpoint: "run", Scenario: "sdr-radio", Policy: "eb", WarmupS: 0.3, MeasureS: 0.7, DeltaBase: 1},
			{Name: "sweep", Weight: 0.5, Endpoint: "matrix", Scenario: "sdr-radio", Policies: []string{"eb", "tb"}, WarmupS: 0.3, MeasureS: 0.7, DeltaBase: 1},
		},
	}
}

// Validate rejects a mix the generator cannot run.
func (m *Mix) Validate() error {
	if len(m.Entries) == 0 {
		return fmt.Errorf("mix has no entries")
	}
	if m.ZipfS <= 1 {
		return fmt.Errorf("zipf_s = %g, want > 1", m.ZipfS)
	}
	if m.ZipfKeys < 1 {
		return fmt.Errorf("zipf_keys = %d, want >= 1", m.ZipfKeys)
	}
	total := 0.0
	for i := range m.Entries {
		e := &m.Entries[i]
		if e.Weight <= 0 {
			return fmt.Errorf("entry %s: weight %g, want > 0", e.label(), e.Weight)
		}
		switch e.Endpoint {
		case "run":
			if e.Policy == "" {
				return fmt.Errorf("entry %s: run entry needs a policy", e.label())
			}
		case "matrix":
			if len(e.Policies) == 0 {
				return fmt.Errorf("entry %s: matrix entry needs policies", e.label())
			}
		default:
			return fmt.Errorf("entry %s: endpoint %q, want run or matrix", e.label(), e.Endpoint)
		}
		if e.Scenario == "" {
			return fmt.Errorf("entry %s: scenario missing", e.label())
		}
		if e.WarmupS < 0 || e.MeasureS <= 0 {
			return fmt.Errorf("entry %s: warmup_s %g / measure_s %g", e.label(), e.WarmupS, e.MeasureS)
		}
		if e.DeltaBase < 1 {
			return fmt.Errorf("entry %s: delta_base %d, want >= 1", e.label(), e.DeltaBase)
		}
		total += e.Weight
	}
	if total <= 0 {
		return fmt.Errorf("mix weights sum to %g", total)
	}
	return nil
}

// body renders the entry's request body for key index k.
func (e *MixEntry) body(k int) string {
	delta := e.DeltaBase + k
	if e.Endpoint == "matrix" {
		quoted := make([]string, len(e.Policies))
		for i, p := range e.Policies {
			quoted[i] = fmt.Sprintf("%q", p)
		}
		return fmt.Sprintf(`{"scenarios":[%q],"policies":[%s],"delta":%d,"warmup_s":%g,"measure_s":%g}`,
			e.Scenario, strings.Join(quoted, ","), delta, e.WarmupS, e.MeasureS)
	}
	return fmt.Sprintf(`{"scenario":%q,"policy":%q,"delta":%d,"warmup_s":%g,"measure_s":%g}`,
		e.Scenario, e.Policy, delta, e.WarmupS, e.MeasureS)
}

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the target server ("http://host:port", no trailing
	// slash).
	BaseURL string
	// RPS is the open-loop arrival rate.
	RPS float64
	// Warmup arrivals are sent but excluded from the report; Duration
	// is the measurement window after it.
	Warmup   time.Duration
	Duration time.Duration
	Mix      Mix
	// Seed makes the arrival schedule's draws reproducible.
	Seed int64
	// MaxInflight caps concurrent outstanding requests (client-side
	// safety valve; 0 means 4× RPS, minimum 64). Arrivals skipped at
	// the cap are counted in Report.Dropped.
	MaxInflight int
	// Tenant, when set, stamps every request's X-Tenant header.
	Tenant string
	// Client overrides the HTTP client (tests); nil uses a dedicated
	// client with sane timeouts.
	Client *http.Client
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// sample is one completed request's measurement.
type sample struct {
	entry    string
	endpoint string
	status   int
	outcome  string // X-Cache
	d        time.Duration
	stages   map[string]int64 // X-Timing, µs
	err      error
	measured bool
}

// Run drives one open-loop load run to completion and returns its
// report. ctx cancellation stops the arrival schedule early; whatever
// was measured up to that point is still reported.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.RPS <= 0 {
		return nil, fmt.Errorf("rps = %g, want > 0", cfg.RPS)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("duration = %s, want > 0", cfg.Duration)
	}
	if err := cfg.Mix.Validate(); err != nil {
		return nil, fmt.Errorf("mix: %w", err)
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Minute}
	}
	maxInflight := cfg.MaxInflight
	if maxInflight <= 0 {
		maxInflight = int(4 * cfg.RPS)
		if maxInflight < 64 {
			maxInflight = 64
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.Mix.ZipfS, 1, uint64(cfg.Mix.ZipfKeys-1))
	cum := make([]float64, len(cfg.Mix.Entries))
	total := 0.0
	for i := range cfg.Mix.Entries {
		total += cfg.Mix.Entries[i].Weight
		cum[i] = total
	}
	pick := func() *MixEntry {
		x := rng.Float64() * total
		for i := range cum {
			if x < cum[i] {
				return &cfg.Mix.Entries[i]
			}
		}
		return &cfg.Mix.Entries[len(cum)-1]
	}

	var (
		mu       sync.Mutex
		samples  []sample
		wg       sync.WaitGroup
		dropped  atomic.Int64
		inflight = make(chan struct{}, maxInflight)
	)
	record := func(s sample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}

	interval := time.Duration(float64(time.Second) / cfg.RPS)
	start := time.Now()
	measureStart := start.Add(cfg.Warmup)
	end := measureStart.Add(cfg.Duration)
	cfg.logf("load: %g rps open-loop against %s (%s warmup + %s measured, %d-key zipf s=%g)",
		cfg.RPS, cfg.BaseURL, cfg.Warmup, cfg.Duration, cfg.Mix.ZipfKeys, cfg.Mix.ZipfS)

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	sent := 0
arrivals:
	for {
		var now time.Time
		select {
		case <-ctx.Done():
			break arrivals
		case now = <-ticker.C:
		}
		if now.After(end) {
			break
		}
		// Draws happen on the schedule goroutine (the rng is not
		// concurrency-safe); the request itself is detached so a slow
		// response never delays the next arrival.
		entry := pick()
		k := int(zipf.Uint64())
		measured := !now.Before(measureStart)
		select {
		case inflight <- struct{}{}:
		default:
			dropped.Add(1)
			continue
		}
		sent++
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-inflight }()
			record(oneRequest(client, cfg.BaseURL, cfg.Tenant, entry, k, measured))
		}()
	}
	wg.Wait()

	if n := dropped.Load(); n > 0 {
		cfg.logf("load: %d arrivals skipped at the %d-request in-flight cap (client-side bound, not a server shed)", n, maxInflight)
	}
	rep := buildReport(cfg, samples, sent, dropped.Load())
	return rep, nil
}

// oneRequest executes a single arrival and measures it.
func oneRequest(client *http.Client, base, tenant string, e *MixEntry, k int, measured bool) sample {
	s := sample{entry: e.label(), endpoint: e.Endpoint, measured: measured}
	req, err := http.NewRequest(http.MethodPost, base+"/"+e.Endpoint, strings.NewReader(e.body(k)))
	if err != nil {
		s.err = err
		return s
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		s.d = time.Since(t0)
		s.err = err
		return s
	}
	_, copyErr := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	s.d = time.Since(t0)
	if copyErr != nil {
		s.err = copyErr
		return s
	}
	s.status = resp.StatusCode
	s.outcome = resp.Header.Get("X-Cache")
	if v := resp.Header.Get("X-Timing"); v != "" {
		if pairs, err := obs.ParseHeaderValue(v); err == nil {
			s.stages = pairs
		}
	}
	return s
}

// quantile returns the exact order statistic for q in (0,1] from a
// sorted sample set.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.999999) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func quantilesOf(ds []time.Duration) Quantiles {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return Quantiles{
		Count: len(ds),
		P50Ms: ms(quantile(ds, 0.50)),
		P95Ms: ms(quantile(ds, 0.95)),
		P99Ms: ms(quantile(ds, 0.99)),
	}
}
