package loadgen

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// SchemaVersion versions the LOAD_<date>.json document. Bump it when a
// field changes meaning; cmd/loaddiff refuses to compare documents
// across versions.
const SchemaVersion = 1

// Quantiles is an exact latency summary (order statistics over the
// measured samples — unlike the /stats quantiles, these are not
// bucket-interpolated estimates).
type Quantiles struct {
	Count int     `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// EndpointReport is one endpoint's measured behavior.
type EndpointReport struct {
	Count int `json:"count"`
	// Shed counts 503s (cost budget or queue full), Quota 429s; both
	// are deliberate refusals, reported apart from Errors (transport
	// failures and unexpected statuses).
	Shed    int       `json:"shed"`
	Quota   int       `json:"quota"`
	Errors  int       `json:"errors"`
	Latency Quantiles `json:"latency"`
}

// Report is the LOAD_<date>.json document: the configured load, what
// was actually achieved, and the measured latency surfaces.
type Report struct {
	SchemaVersion int     `json:"load_schema_version"`
	Date          string  `json:"date"`
	TargetRPS     float64 `json:"target_rps"`
	// AchievedRPS is measured arrivals over the measurement window —
	// under saturation it can fall below TargetRPS when the in-flight
	// cap skips arrivals.
	AchievedRPS float64 `json:"achieved_rps"`
	WarmupS     float64 `json:"warmup_s"`
	MeasureS    float64 `json:"measure_s"`
	Mix         Mix     `json:"mix"`
	// Sent counts every dispatched request (warmup included); Measured
	// only those inside the measurement window; Dropped the arrivals
	// skipped at the client-side in-flight cap.
	Sent     int   `json:"sent"`
	Measured int   `json:"measured"`
	Dropped  int64 `json:"dropped"`
	// Endpoints and Entries split latency by endpoint and by mix entry;
	// Stages is server-reported per-stage time from X-Timing, so a slow
	// p99 can be attributed to queueing vs execution from the report
	// alone.
	Endpoints map[string]*EndpointReport `json:"endpoints"`
	Entries   map[string]*Quantiles      `json:"entries"`
	Stages    map[string]*Quantiles      `json:"stages"`
	// Outcomes counts X-Cache values over measured 200s — the
	// cache-tier mix the Zipf skew produced.
	Outcomes map[string]int `json:"outcomes"`
	// Status counts every measured response by HTTP status.
	Status map[string]int `json:"status"`
}

// buildReport aggregates the measured samples.
func buildReport(cfg Config, samples []sample, sent int, dropped int64) *Report {
	rep := &Report{
		SchemaVersion: SchemaVersion,
		Date:          time.Now().UTC().Format("2006-01-02"),
		TargetRPS:     cfg.RPS,
		WarmupS:       cfg.Warmup.Seconds(),
		MeasureS:      cfg.Duration.Seconds(),
		Mix:           cfg.Mix,
		Sent:          sent,
		Dropped:       dropped,
		Endpoints:     map[string]*EndpointReport{},
		Entries:       map[string]*Quantiles{},
		Stages:        map[string]*Quantiles{},
		Outcomes:      map[string]int{},
		Status:        map[string]int{},
	}
	epLat := map[string][]time.Duration{}
	entryLat := map[string][]time.Duration{}
	stageLat := map[string][]time.Duration{}
	for _, s := range samples {
		if !s.measured {
			continue
		}
		rep.Measured++
		ep := rep.Endpoints[s.endpoint]
		if ep == nil {
			ep = &EndpointReport{}
			rep.Endpoints[s.endpoint] = ep
		}
		ep.Count++
		switch {
		case s.err != nil:
			ep.Errors++
			rep.Status["transport_error"]++
			continue
		case s.status == 503:
			ep.Shed++
		case s.status == 429:
			ep.Quota++
		case s.status != 200:
			ep.Errors++
		}
		rep.Status[fmt.Sprintf("%d", s.status)]++
		if s.status != 200 {
			continue
		}
		epLat[s.endpoint] = append(epLat[s.endpoint], s.d)
		entryLat[s.entry] = append(entryLat[s.entry], s.d)
		if s.outcome != "" {
			rep.Outcomes[s.outcome]++
		}
		for stage, us := range s.stages {
			if stage == "total" || us == 0 {
				continue
			}
			stageLat[stage] = append(stageLat[stage], time.Duration(us)*time.Microsecond)
		}
	}
	if rep.MeasureS > 0 {
		rep.AchievedRPS = float64(rep.Measured) / rep.MeasureS
	}
	for epName, ds := range epLat {
		q := quantilesOf(ds)
		rep.Endpoints[epName].Latency = q
	}
	for name, ds := range entryLat {
		q := quantilesOf(ds)
		rep.Entries[name] = &q
	}
	for name, ds := range stageLat {
		q := quantilesOf(ds)
		rep.Stages[name] = &q
	}
	return rep
}

// Encode renders the report as the canonical indented JSON document.
func (r *Report) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeReport parses a LOAD_<date>.json document, rejecting unknown
// schema versions.
func DecodeReport(b []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, err
	}
	if r.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("load_schema_version %d, this tool understands %d", r.SchemaVersion, SchemaVersion)
	}
	return &r, nil
}

// Filename is the dated trajectory filename the report is committed
// under, LOAD_<date>.json next to the BENCH_<date>.json series.
func (r *Report) Filename() string {
	return "LOAD_" + r.Date + ".json"
}

// Table renders the human-readable summary.
func (r *Report) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "open-loop load: target %g rps, achieved %.1f rps over %gs (warmup %gs)\n",
		r.TargetRPS, r.AchievedRPS, r.MeasureS, r.WarmupS)
	fmt.Fprintf(&sb, "requests: %d sent, %d measured, %d dropped at the in-flight cap\n", r.Sent, r.Measured, r.Dropped)

	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "endpoint\tcount\tp50 ms\tp95 ms\tp99 ms\tshed\tquota\terrors")
	for _, name := range sortedKeys(r.Endpoints) {
		ep := r.Endpoints[name]
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.2f\t%.2f\t%d\t%d\t%d\n",
			name, ep.Count, ep.Latency.P50Ms, ep.Latency.P95Ms, ep.Latency.P99Ms, ep.Shed, ep.Quota, ep.Errors)
	}
	w.Flush()

	w = tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "stage\tobs\tp50 ms\tp95 ms\tp99 ms")
	for _, name := range sortedKeys(r.Stages) {
		q := r.Stages[name]
		fmt.Fprintf(w, "%s\t%d\t%.3f\t%.3f\t%.3f\n", name, q.Count, q.P50Ms, q.P95Ms, q.P99Ms)
	}
	w.Flush()

	if len(r.Outcomes) > 0 {
		parts := make([]string, 0, len(r.Outcomes))
		for _, name := range sortedKeys(r.Outcomes) {
			parts = append(parts, fmt.Sprintf("%s %d", name, r.Outcomes[name]))
		}
		fmt.Fprintf(&sb, "cache outcomes: %s\n", strings.Join(parts, ", "))
	}
	if len(r.Status) > 0 {
		parts := make([]string, 0, len(r.Status))
		for _, name := range sortedKeys(r.Status) {
			parts = append(parts, fmt.Sprintf("%s %d", name, r.Status[name]))
		}
		fmt.Fprintf(&sb, "status: %s\n", strings.Join(parts, ", "))
	}
	return sb.String()
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
