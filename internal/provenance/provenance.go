// Package provenance makes the result store tamper-evident. Every
// record appended to the store becomes a leaf — the record's key, the
// SHA-256 of its body, and the engine version that produced it — and
// each segment, once sealed (at rotation or compaction), gets a Merkle
// root over its leaves. Roots are hash-chained: each sealed root
// commits to its predecessor's chain value, so removing, reordering or
// rewriting any sealed segment breaks every chain value after it. The
// chain lives in a durable manifest next to the segments; pin the head
// chain value out of band and the entire log is verifiable offline.
//
// Hashing conventions follow RFC 6962 (Certificate Transparency):
// leaves and interior nodes are domain-separated (0x00 / 0x01
// prefixes) so a leaf can never be confused with a node, and trees
// over n > 1 leaves split at the largest power of two strictly below
// n, which keeps roots and inclusion proofs canonical for any leaf
// count without padding. Chain links use a third domain (0x02).
package provenance

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// HashSize is the size of every hash in the package (SHA-256).
const HashSize = sha256.Size

// Domain-separation prefixes.
const (
	leafPrefix  = 0x00
	nodePrefix  = 0x01
	chainPrefix = 0x02
)

// Leaf is one store record as seen by the provenance layer: the put or
// tombstone itself, not the live set — a segment seals the history it
// holds, superseded records included.
type Leaf struct {
	// Key is the record's content address (or journal key).
	Key string
	// BodyHash is SHA-256 of the record body; zero for tombstones.
	BodyHash [HashSize]byte
	// Deleted marks a tombstone record.
	Deleted bool
	// Version is the engine/schema version stamped into the record at
	// write time; empty for tombstones and for records written before
	// version stamping existed.
	Version string
}

// Hash returns the leaf hash: SHA-256 over
//
//	0x00 | u8 kind | u32 len(key) | key | u32 len(version) | version | bodyHash
//
// (kind 0 = put, 1 = tombstone; lengths little-endian). The layout is
// frozen: changing it silently invalidates every sealed root.
func (l Leaf) Hash() [HashSize]byte {
	h := sha256.New()
	var hdr [2]byte
	hdr[0] = leafPrefix
	if l.Deleted {
		hdr[1] = 1
	}
	h.Write(hdr[:])
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(l.Key)))
	h.Write(n[:])
	h.Write([]byte(l.Key))
	binary.LittleEndian.PutUint32(n[:], uint32(len(l.Version)))
	h.Write(n[:])
	h.Write([]byte(l.Version))
	h.Write(l.BodyHash[:])
	var out [HashSize]byte
	h.Sum(out[:0])
	return out
}

// nodeHash combines two subtree roots.
func nodeHash(left, right [HashSize]byte) [HashSize]byte {
	h := sha256.New()
	h.Write([]byte{nodePrefix})
	h.Write(left[:])
	h.Write(right[:])
	var out [HashSize]byte
	h.Sum(out[:0])
	return out
}

// splitPoint returns the largest power of two strictly less than n
// (n >= 2), the RFC 6962 tree split.
func splitPoint(n int) int {
	k := 1
	for k<<1 < n {
		k <<= 1
	}
	return k
}

// RootOf computes the Merkle root over the leaves in order. The root
// of a single leaf is its leaf hash; an empty tree has no defined root
// here because empty segments are never sealed.
func RootOf(leaves []Leaf) [HashSize]byte {
	hashes := make([][HashSize]byte, len(leaves))
	for i, l := range leaves {
		hashes[i] = l.Hash()
	}
	return rootOfHashes(hashes)
}

func rootOfHashes(hashes [][HashSize]byte) [HashSize]byte {
	switch len(hashes) {
	case 0:
		// RFC 6962 empty-tree root; unreachable through sealing.
		return sha256.Sum256(nil)
	case 1:
		return hashes[0]
	}
	k := splitPoint(len(hashes))
	return nodeHash(rootOfHashes(hashes[:k]), rootOfHashes(hashes[k:]))
}

// BuildProof returns the inclusion path for leaves[index]: the sibling
// subtree roots from the leaf level upward (the root of the subtree
// merged last is the last element).
func BuildProof(leaves []Leaf, index int) ([][HashSize]byte, error) {
	if index < 0 || index >= len(leaves) {
		return nil, fmt.Errorf("provenance: leaf index %d out of range [0,%d)", index, len(leaves))
	}
	hashes := make([][HashSize]byte, len(leaves))
	for i, l := range leaves {
		hashes[i] = l.Hash()
	}
	return proofOfHashes(hashes, index), nil
}

func proofOfHashes(hashes [][HashSize]byte, index int) [][HashSize]byte {
	if len(hashes) == 1 {
		return nil
	}
	k := splitPoint(len(hashes))
	if index < k {
		p := proofOfHashes(hashes[:k], index)
		return append(p, rootOfHashes(hashes[k:]))
	}
	p := proofOfHashes(hashes[k:], index-k)
	return append(p, rootOfHashes(hashes[:k]))
}

// RootFromProof recomputes the root implied by a leaf hash at index in
// a tree of size leaves, using the sibling path from BuildProof. It
// errors when the path length is inconsistent with (index, size).
func RootFromProof(leaf [HashSize]byte, index, size int, siblings [][HashSize]byte) ([HashSize]byte, error) {
	var zero [HashSize]byte
	if index < 0 || size < 1 || index >= size {
		return zero, fmt.Errorf("provenance: leaf index %d out of range for tree size %d", index, size)
	}
	if size == 1 {
		if len(siblings) != 0 {
			return zero, fmt.Errorf("provenance: %d sibling hashes left over", len(siblings))
		}
		return leaf, nil
	}
	if len(siblings) == 0 {
		return zero, fmt.Errorf("provenance: sibling path too short for tree size %d", size)
	}
	top := siblings[len(siblings)-1]
	rest := siblings[:len(siblings)-1]
	k := splitPoint(size)
	if index < k {
		sub, err := RootFromProof(leaf, index, k, rest)
		if err != nil {
			return zero, err
		}
		return nodeHash(sub, top), nil
	}
	sub, err := RootFromProof(leaf, index-k, size-k, rest)
	if err != nil {
		return zero, err
	}
	return nodeHash(top, sub), nil
}

// ChainHash links a sealed root onto the chain:
//
//	chain_i = SHA-256(0x02 | chain_{i-1} | root_i)
//
// with the genesis predecessor all zeroes.
func ChainHash(prev, root [HashSize]byte) [HashSize]byte {
	h := sha256.New()
	h.Write([]byte{chainPrefix})
	h.Write(prev[:])
	h.Write(root[:])
	var out [HashSize]byte
	h.Sum(out[:0])
	return out
}

// ProofLeaf is the leaf of a served proof, hex-encoded for the wire.
type ProofLeaf struct {
	Key        string `json:"key"`
	BodySHA256 string `json:"body_sha256"`
	Deleted    bool   `json:"deleted,omitempty"`
	Version    string `json:"engine_version"`
}

// Proof is a self-contained, offline-verifiable inclusion proof: the
// leaf, its position and sibling path within one sealed segment's
// tree, the sealed root, and the root's position and link values in
// the hash chain. Verify checks all the hash arithmetic; trusting the
// proof additionally requires the chain value to match a chain head
// known out of band (or the store's manifest, via VerifyDir).
type Proof struct {
	Leaf      ProofLeaf `json:"leaf"`
	Index     int       `json:"index"`
	TreeSize  int       `json:"tree_size"`
	Siblings  []string  `json:"siblings"`
	Root      string    `json:"root"`
	Segment   uint64    `json:"segment"`
	ChainPos  int       `json:"chain_pos"`
	PrevChain string    `json:"prev_chain"`
	Chain     string    `json:"chain"`
}

// Verify checks the proof's internal hash arithmetic: leaf hash +
// sibling path reproduce Root, and ChainHash(PrevChain, Root)
// reproduces Chain.
func (p Proof) Verify() error {
	var bodyHash [HashSize]byte
	if err := decodeHash(p.Leaf.BodySHA256, &bodyHash); err != nil {
		return fmt.Errorf("provenance: leaf body_sha256: %w", err)
	}
	leaf := Leaf{Key: p.Leaf.Key, BodyHash: bodyHash, Deleted: p.Leaf.Deleted, Version: p.Leaf.Version}
	siblings := make([][HashSize]byte, len(p.Siblings))
	for i, s := range p.Siblings {
		if err := decodeHash(s, &siblings[i]); err != nil {
			return fmt.Errorf("provenance: sibling %d: %w", i, err)
		}
	}
	root, err := RootFromProof(leaf.Hash(), p.Index, p.TreeSize, siblings)
	if err != nil {
		return err
	}
	var wantRoot, prev, chain [HashSize]byte
	if err := decodeHash(p.Root, &wantRoot); err != nil {
		return fmt.Errorf("provenance: root: %w", err)
	}
	if root != wantRoot {
		return fmt.Errorf("provenance: proof for key %s does not reproduce root %s (got %s)",
			p.Leaf.Key, p.Root, hex.EncodeToString(root[:]))
	}
	if err := decodeHash(p.PrevChain, &prev); err != nil {
		return fmt.Errorf("provenance: prev_chain: %w", err)
	}
	if err := decodeHash(p.Chain, &chain); err != nil {
		return fmt.Errorf("provenance: chain: %w", err)
	}
	if got := ChainHash(prev, wantRoot); got != chain {
		return fmt.Errorf("provenance: chain value %s does not commit to root %s at pos %d",
			p.Chain, p.Root, p.ChainPos)
	}
	return nil
}

// VerifyBody additionally checks that body is the exact bytes the
// proof's leaf commits to.
func (p Proof) VerifyBody(body []byte) error {
	if p.Leaf.Deleted {
		return fmt.Errorf("provenance: proof is for a tombstone, not a body")
	}
	sum := sha256.Sum256(body)
	if got := hex.EncodeToString(sum[:]); got != p.Leaf.BodySHA256 {
		return fmt.Errorf("provenance: body hashes to %s, proof leaf commits to %s", got, p.Leaf.BodySHA256)
	}
	return p.Verify()
}

// EncodeHash hex-encodes a hash for manifests and wire documents.
func EncodeHash(h [HashSize]byte) string { return hex.EncodeToString(h[:]) }

// DecodeHash parses a hex hash produced by EncodeHash.
func DecodeHash(s string) ([HashSize]byte, error) {
	var out [HashSize]byte
	err := decodeHash(s, &out)
	return out, err
}

func decodeHash(s string, out *[HashSize]byte) error {
	b, err := hex.DecodeString(s)
	if err != nil {
		return fmt.Errorf("bad hash %q: %w", s, err)
	}
	if len(b) != HashSize {
		return fmt.Errorf("bad hash %q: %d bytes, want %d", s, len(b), HashSize)
	}
	copy(out[:], b)
	return nil
}

// ZeroHash reports whether h is all zeroes (the genesis chain
// predecessor).
func ZeroHash(h [HashSize]byte) bool {
	var zero [HashSize]byte
	return bytes.Equal(h[:], zero[:])
}
