package provenance

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mkLeaves(n int) []Leaf {
	leaves := make([]Leaf, n)
	for i := range leaves {
		body := []byte(fmt.Sprintf("body-%d", i))
		leaves[i] = Leaf{
			Key:      fmt.Sprintf("key-%04d", i),
			BodyHash: sha256.Sum256(body),
			Version:  "engine/test",
		}
	}
	return leaves
}

func TestLeafHashDomainsAndFields(t *testing.T) {
	base := mkLeaves(1)[0]
	variants := []Leaf{
		{Key: base.Key + "x", BodyHash: base.BodyHash, Version: base.Version},
		{Key: base.Key, BodyHash: sha256.Sum256([]byte("other")), Version: base.Version},
		{Key: base.Key, BodyHash: base.BodyHash, Version: "engine/other"},
		{Key: base.Key, BodyHash: base.BodyHash, Version: base.Version, Deleted: true},
	}
	h := base.Hash()
	for i, v := range variants {
		if v.Hash() == h {
			t.Fatalf("variant %d hashes identically to base leaf", i)
		}
	}
	// A leaf hash must not collide with a node hash over the same bytes.
	if nodeHash(h, h) == base.Hash() {
		t.Fatal("leaf and node hashing are not domain-separated")
	}
}

func TestProofRoundTripAllSizes(t *testing.T) {
	for n := 1; n <= 33; n++ {
		leaves := mkLeaves(n)
		root := RootOf(leaves)
		for i := range leaves {
			sibs, err := BuildProof(leaves, i)
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			got, err := RootFromProof(leaves[i].Hash(), i, n, sibs)
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			if got != root {
				t.Fatalf("n=%d i=%d: proof does not reproduce root", n, i)
			}
		}
	}
}

func TestProofRejectsWrongLeaf(t *testing.T) {
	leaves := mkLeaves(7)
	root := RootOf(leaves)
	sibs, err := BuildProof(leaves, 3)
	if err != nil {
		t.Fatal(err)
	}
	tampered := leaves[3]
	tampered.BodyHash = sha256.Sum256([]byte("evil"))
	got, err := RootFromProof(tampered.Hash(), 3, 7, sibs)
	if err != nil {
		t.Fatal(err)
	}
	if got == root {
		t.Fatal("tampered leaf reproduced the root")
	}
	if _, err := RootFromProof(leaves[3].Hash(), 3, 7, sibs[:len(sibs)-1]); err == nil {
		t.Fatal("short sibling path accepted")
	}
	if _, err := BuildProof(leaves, 7); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestWireProofVerify(t *testing.T) {
	leaves := mkLeaves(5)
	root := RootOf(leaves)
	var prev [HashSize]byte
	chain := ChainHash(prev, root)
	sibs, err := BuildProof(leaves, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := Proof{
		Leaf:      WireLeaf(leaves[2]),
		Index:     2,
		TreeSize:  5,
		Root:      EncodeHash(root),
		PrevChain: EncodeHash(prev),
		Chain:     EncodeHash(chain),
	}
	for _, s := range sibs {
		p.Siblings = append(p.Siblings, EncodeHash(s))
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
	if err := p.VerifyBody([]byte("body-2")); err != nil {
		t.Fatalf("valid body rejected: %v", err)
	}
	if err := p.VerifyBody([]byte("body-3")); err == nil {
		t.Fatal("wrong body accepted")
	}
	bad := p
	bad.Chain = EncodeHash(ChainHash(chain, root))
	if err := bad.Verify(); err == nil {
		t.Fatal("broken chain link accepted")
	}
	bad = p
	bad.Index = 3
	if err := bad.Verify(); err == nil {
		t.Fatal("shifted index accepted")
	}
}

func TestManifestRoundTripAndChain(t *testing.T) {
	dir := t.TempDir()
	path := ManifestPath(dir)
	var prev [HashSize]byte
	var roots []SealedRoot
	for i := 0; i < 4; i++ {
		root := RootOf(mkLeaves(i + 1))
		chain := ChainHash(prev, root)
		e := SealedRoot{
			ChainPos:  i,
			Segment:   uint64(i + 1),
			Leaves:    i + 1,
			Root:      EncodeHash(root),
			PrevChain: EncodeHash(prev),
			Chain:     EncodeHash(chain),
			Version:   "engine/test",
		}
		if err := AppendRoot(path, e, false); err != nil {
			t.Fatal(err)
		}
		roots = append(roots, e)
		prev = chain
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("loaded %d entries, want 4", len(got))
	}
	if bad := VerifyChain(got); bad != -1 {
		t.Fatalf("VerifyChain flagged entry %d on a good chain", bad)
	}
	// Breaking one link is detected at that entry.
	got[2].Root = got[1].Root
	if bad := VerifyChain(got); bad != 2 {
		t.Fatalf("VerifyChain = %d, want 2", bad)
	}
	// Atomic rewrite round-trips.
	if err := WriteManifest(path, roots[1:], false); err != nil {
		t.Fatal(err)
	}
	got, err = LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].ChainPos != 1 {
		t.Fatalf("rewritten manifest = %+v", got)
	}
	if bad := VerifyChain(got); bad != -1 {
		t.Fatalf("VerifyChain flagged entry %d after rewrite", bad)
	}
	// A torn trailing append is dropped, earlier entries survive.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"chain_pos": 9, "seg`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err = LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("torn tail: loaded %d entries, want 3", len(got))
	}
	// Missing manifest is empty, not an error.
	got, err = LoadManifest(filepath.Join(dir, "absent.prov"))
	if err != nil || got != nil {
		t.Fatalf("missing manifest: %v, %v", got, err)
	}
}

func TestSidecarRoundTrip(t *testing.T) {
	dir := t.TempDir()
	leaves := mkLeaves(3)
	leaves[1].Deleted = true
	leaves[1].BodyHash = [HashSize]byte{}
	leaves[1].Version = ""
	sc := Sidecar{Segment: 7, Root: EncodeHash(RootOf(leaves))}
	for _, l := range leaves {
		sc.Leaves = append(sc.Leaves, WireLeaf(l))
	}
	if err := WriteSidecar(dir, sc, false); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadSidecar(dir, 7)
	if err != nil || !ok {
		t.Fatalf("LoadSidecar: ok=%v err=%v", ok, err)
	}
	if got.Root != sc.Root || len(got.Leaves) != 3 {
		t.Fatalf("sidecar round trip: %+v", got)
	}
	back := make([]Leaf, len(got.Leaves))
	for i, pl := range got.Leaves {
		l, err := SidecarLeaf(pl)
		if err != nil {
			t.Fatal(err)
		}
		back[i] = l
	}
	if EncodeHash(RootOf(back)) != sc.Root {
		t.Fatal("leaves did not survive the wire round trip")
	}
	if _, ok, err := LoadSidecar(dir, 8); ok || err != nil {
		t.Fatalf("missing sidecar: ok=%v err=%v", ok, err)
	}
}
