package provenance

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestName is the chain manifest's filename inside a store data
// directory: one JSON line per sealed root, in chain order.
const ManifestName = "manifest.prov"

// SealedRoot is one manifest entry: a segment's Merkle root and its
// link in the hash chain. PrevChain is recorded explicitly (rather
// than implied by the previous line) so a manifest rewritten after
// compaction can carry the chain across segments that no longer exist.
type SealedRoot struct {
	ChainPos  int    `json:"chain_pos"`
	Segment   uint64 `json:"segment"`
	Leaves    int    `json:"leaves"`
	Root      string `json:"root"`
	PrevChain string `json:"prev_chain"`
	Chain     string `json:"chain"`
	// Version is the writer's engine version at seal time (individual
	// leaves carry their own write-time versions).
	Version string `json:"engine_version,omitempty"`
}

// ManifestPath returns the manifest's path under a data directory.
func ManifestPath(dir string) string { return filepath.Join(dir, ManifestName) }

// LoadManifest reads the manifest's entries in file order. A missing
// file is an empty manifest, not an error. A malformed line ends the
// chain at that point: a torn trailing append heals silently, while
// garbling in the middle orphans the entries after it — which segment
// reconciliation and VerifyChain then surface as a break.
func LoadManifest(path string) ([]SealedRoot, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("provenance: %w", err)
	}
	defer f.Close()
	var (
		roots []SealedRoot
		sc    = bufio.NewScanner(f)
	)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e SealedRoot
		if err := json.Unmarshal(line, &e); err != nil {
			break
		}
		roots = append(roots, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("provenance: read %s: %w", path, err)
	}
	return roots, nil
}

// VerifyChain checks a manifest's internal consistency: chain
// positions are consecutive, each entry's PrevChain equals its
// predecessor's Chain, and each Chain equals
// ChainHash(PrevChain, Root). It returns the index of the first
// inconsistent entry, or -1 when the whole chain holds.
func VerifyChain(roots []SealedRoot) int {
	for i, e := range roots {
		var prev, root, chain [HashSize]byte
		if decodeHash(e.PrevChain, &prev) != nil ||
			decodeHash(e.Root, &root) != nil ||
			decodeHash(e.Chain, &chain) != nil {
			return i
		}
		if i > 0 {
			if e.ChainPos != roots[i-1].ChainPos+1 || e.PrevChain != roots[i-1].Chain {
				return i
			}
		}
		if ChainHash(prev, root) != chain {
			return i
		}
	}
	return -1
}

// AppendRoot appends one entry to the manifest, fsyncing when sync is
// set. Appends are a single small write, so a torn append leaves at
// worst one partial trailing line, which LoadManifest drops.
func AppendRoot(path string, e SealedRoot, sync bool) error {
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("provenance: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("provenance: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("provenance: append %s: %w", path, err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			return fmt.Errorf("provenance: sync %s: %w", path, err)
		}
	}
	return nil
}

// WriteManifest atomically replaces the manifest (temp file + rename),
// used when compaction rebuilds the sealed set wholesale.
func WriteManifest(path string, roots []SealedRoot, sync bool) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("provenance: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, e := range roots {
		line, err := json.Marshal(e)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("provenance: %w", err)
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("provenance: write %s: %w", tmp, err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("provenance: sync %s: %w", tmp, err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("provenance: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("provenance: rename %s: %w", tmp, err)
	}
	return nil
}

// Sidecar is a sealed segment's leaf listing (<segment>.mrk): enough
// to rebuild the tree, serve proofs, and — during verification —
// localize the first divergent record when a segment's recomputed
// root no longer matches the manifest.
type Sidecar struct {
	Segment uint64      `json:"segment"`
	Root    string      `json:"root"`
	Leaves  []ProofLeaf `json:"leaves"`
}

// SidecarPath returns segment id's sidecar path under a data
// directory (mirrors the %08d.seg naming).
func SidecarPath(dir string, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%08d.mrk", id))
}

// WriteSidecar atomically writes a segment's sidecar.
func WriteSidecar(dir string, sc Sidecar, sync bool) error {
	path := SidecarPath(dir, sc.Segment)
	data, err := json.Marshal(sc)
	if err != nil {
		return fmt.Errorf("provenance: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("provenance: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("provenance: write %s: %w", tmp, err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("provenance: sync %s: %w", tmp, err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("provenance: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("provenance: rename %s: %w", tmp, err)
	}
	return nil
}

// LoadSidecar reads segment id's sidecar; a missing file returns
// ok=false (sidecars are a localization aid, not the source of truth).
func LoadSidecar(dir string, id uint64) (Sidecar, bool, error) {
	var sc Sidecar
	data, err := os.ReadFile(SidecarPath(dir, id))
	if os.IsNotExist(err) {
		return sc, false, nil
	}
	if err != nil {
		return sc, false, fmt.Errorf("provenance: %w", err)
	}
	if err := json.Unmarshal(data, &sc); err != nil {
		return sc, false, fmt.Errorf("provenance: parse %s: %w", SidecarPath(dir, id), err)
	}
	return sc, true, nil
}

// SidecarLeaf converts a wire leaf back to its binary form.
func SidecarLeaf(pl ProofLeaf) (Leaf, error) {
	var l Leaf
	if err := decodeHash(pl.BodySHA256, &l.BodyHash); err != nil {
		return l, fmt.Errorf("provenance: leaf %s: %w", pl.Key, err)
	}
	l.Key, l.Deleted, l.Version = pl.Key, pl.Deleted, pl.Version
	return l, nil
}

// WireLeaf converts a binary leaf to its wire form.
func WireLeaf(l Leaf) ProofLeaf {
	return ProofLeaf{
		Key:        l.Key,
		BodySHA256: EncodeHash(l.BodyHash),
		Deleted:    l.Deleted,
		Version:    l.Version,
	}
}
