package sim_test

// Black-box tests of the engine's integer-tick clock and event-horizon
// fast path: split-run determinism across every registered scenario,
// drift-free long-run time, and bit-for-bit equality of the fast path
// against plain tick stepping. These live in package sim_test so they
// can use the scenario registry (which itself depends on sim).

import (
	"fmt"
	"math"
	"testing"

	_ "thermbal/internal/core" // registers the paper policy by name
	"thermbal/internal/migrate"
	"thermbal/internal/mpsoc"
	"thermbal/internal/policy"
	"thermbal/internal/scenario"
	"thermbal/internal/sim"
	"thermbal/internal/stream"
	"thermbal/internal/task"
	"thermbal/internal/thermal"
)

// fingerprint captures everything a run can observably produce; two
// fingerprints compare with == for bit-for-bit equality.
type fingerprint struct {
	now       float64
	ticks     int64
	temps     string // per-core temperatures, %x-formatted bits
	taskState string // per-task progress/frames/placement bits
	source    stream.Source
	sink      stream.Sink
	completed int
	bytes     float64
	freeze    float64
	misses    int64
	energy    float64
	switches  int
	migrLog   string
}

func snapshotRun(e *sim.Engine) fingerprint {
	fp := fingerprint{
		now:    e.Now(),
		ticks:  e.Ticks(),
		source: e.Graph().SourceStats(),
		sink:   e.Graph().SinkStats(),
	}
	for c := 0; c < e.Platform().NumCores(); c++ {
		fp.temps += fmt.Sprintf("%x,%x;", e.Platform().CoreTemp(c), e.Platform().Frequency(c))
	}
	for _, t := range e.Graph().Tasks() {
		fp.taskState += fmt.Sprintf("%s@%d:%x/%x/%d/%d;", t.Name, t.Core, t.Progress, t.BusyCycles, t.FramesCompleted, t.Migrations)
	}
	st := e.Migrations().Stats()
	fp.completed = st.Completed
	fp.bytes = st.BytesMoved
	fp.freeze = st.FreezeTime
	fp.misses = fp.sink.Misses
	fp.energy = e.Platform().TotalEnergyJ
	fp.switches = e.Platform().Gov.Switches()
	if rec := e.Recorder(); rec != nil {
		for _, ev := range rec.Events() {
			fp.migrLog += fmt.Sprintf("%x:%s:%s;", ev.Time, ev.Kind, ev.Text)
		}
	}
	return fp
}

// buildScenarioEngine instantiates a registered scenario under its
// default policy with the engine knobs given.
func buildScenarioEngine(t *testing.T, name string, cfg sim.Config) *sim.Engine {
	t.Helper()
	sc, err := scenario.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := sc.Instantiate(scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := policy.New(sc.DefaultPolicy, policy.Args{Delta: sc.DefaultDelta})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Modulate = inst.Modulate
	e, err := sim.New(cfg, inst.Platform, inst.Graph, pol)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// Split-run determinism: for every registered scenario, one Run(total)
// must be bit-for-bit identical to the same total split into 10 ms
// chunks — same temperatures, misses, migration log, task state.
func TestSplitRunDeterministicAcrossScenarios(t *testing.T) {
	for _, name := range scenario.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			const total, chunk = 2.5, 0.01
			const chunks = 250
			cfg := sim.Config{PolicyStartS: 0.5, MeasureStartS: 0.5, RecordTrace: true}
			one := buildScenarioEngine(t, name, cfg)
			if err := one.Run(total); err != nil {
				t.Fatal(err)
			}
			split := buildScenarioEngine(t, name, cfg)
			for i := 0; i < chunks; i++ {
				if err := split.Run(chunk); err != nil {
					t.Fatal(err)
				}
			}
			a, b := snapshotRun(one), snapshotRun(split)
			if a != b {
				t.Errorf("split run diverged:\n one:   %+v\n split: %+v", a, b)
			}
		})
	}
}

// The issue's headline case: Run(60) equals 6000 x Run(0.01) on the
// paper's benchmark, through warm-up, policy activation and migrations.
func TestSplitRunSixtySeconds(t *testing.T) {
	if testing.Short() {
		t.Skip("60 s simulation")
	}
	cfg := sim.Config{PolicyStartS: 12.5, MeasureStartS: 12.5, RecordTrace: true}
	one := buildScenarioEngine(t, scenario.DefaultName, cfg)
	if err := one.Run(60); err != nil {
		t.Fatal(err)
	}
	split := buildScenarioEngine(t, scenario.DefaultName, cfg)
	for i := 0; i < 6000; i++ {
		if err := split.Run(0.01); err != nil {
			t.Fatal(err)
		}
	}
	a, b := snapshotRun(one), snapshotRun(split)
	if a != b {
		t.Errorf("Run(60) != 6000 x Run(0.01):\n one:   %+v\n split: %+v", a, b)
	}
	if a.completed == 0 {
		t.Error("no migrations over 60 s; the comparison exercised nothing")
	}
}

// Fast path on vs off must be bit-for-bit identical on the paper
// scenarios (and the modulated one), including migrations and traces.
func TestFastPathBitForBit(t *testing.T) {
	cases := []struct {
		scenario string
		cfg      sim.Config
		dur      float64
	}{
		{"sdr-radio", sim.Config{PolicyStartS: 12.5, MeasureStartS: 12.5, RecordTrace: true}, 17},
		{"video-decoder", sim.Config{PolicyStartS: 5, MeasureStartS: 5, RecordTrace: true}, 12},
		{"bursty-sdr", sim.Config{PolicyStartS: 1, MeasureStartS: 1, RecordTrace: true}, 9},
		{"manycore-8", sim.Config{PolicyStartS: 1, MeasureStartS: 1, RecordTrace: true}, 4},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.scenario, func(t *testing.T) {
			fast := buildScenarioEngine(t, tc.scenario, tc.cfg)
			slowCfg := tc.cfg
			slowCfg.NoFastPath = true
			slow := buildScenarioEngine(t, tc.scenario, slowCfg)
			if err := fast.Run(tc.dur); err != nil {
				t.Fatal(err)
			}
			if err := slow.Run(tc.dur); err != nil {
				t.Fatal(err)
			}
			a, b := snapshotRun(fast), snapshotRun(slow)
			if a != b {
				t.Errorf("fast path diverged from tick stepping:\n fast: %+v\n slow: %+v", a, b)
			}
			ra, rb := fast.Summarize(), slow.Summarize()
			if ra != rb {
				t.Errorf("summaries differ:\n fast: %+v\n slow: %+v", ra, rb)
			}
		})
	}
}

// The recreation mechanism exercises the Restoring phase transition,
// which the event horizon must respect to the tick.
func TestFastPathBitForBitRecreation(t *testing.T) {
	cfg := sim.Config{PolicyStartS: 12.5, MeasureStartS: 12.5, Mechanism: migrate.Recreation, RecordTrace: true}
	fast := buildScenarioEngine(t, scenario.DefaultName, cfg)
	slowCfg := cfg
	slowCfg.NoFastPath = true
	slow := buildScenarioEngine(t, scenario.DefaultName, slowCfg)
	for _, e := range []*sim.Engine{fast, slow} {
		if err := e.Run(16); err != nil {
			t.Fatal(err)
		}
	}
	a, b := snapshotRun(fast), snapshotRun(slow)
	if a != b {
		t.Errorf("fast path diverged under task-recreation:\n fast: %+v\n slow: %+v", a, b)
	}
	if a.completed == 0 {
		t.Error("no recreation migrations; the Restoring phase was not exercised")
	}
}

// Re-entry alignment: two half-period runs must fire the sensor update
// at the same absolute tick as one full-period run (the seed restarted
// its step counter every Run call, desynchronising the cadence).
func TestRunReentrySensorAlignment(t *testing.T) {
	build := func() *sim.Engine {
		g := stream.MustBuildSDR(stream.SDRConfig{})
		return newEngine(t, g, sim.Config{RecordTrace: true})
	}
	one := build()
	if err := one.Run(0.010); err != nil {
		t.Fatal(err)
	}
	split := build()
	if err := split.Run(0.005); err != nil {
		t.Fatal(err)
	}
	if err := split.Run(0.005); err != nil {
		t.Fatal(err)
	}
	sa, sb := one.Recorder().Samples(), split.Recorder().Samples()
	if len(sa) != 1 || len(sb) != 1 {
		t.Fatalf("sample counts: one=%d split=%d, want 1 and 1", len(sa), len(sb))
	}
	if sa[0].Time != sb[0].Time {
		t.Errorf("sensor times diverged: %v vs %v", sa[0].Time, sb[0].Time)
	}
	if a, b := snapshotRun(one), snapshotRun(split); a != b {
		t.Errorf("re-entry diverged:\n one:   %+v\n split: %+v", a, b)
	}
}

// Drift regression: after >= 10^7 ticks the clock must still be exactly
// steps*tick — the seed's accumulating float clock had drifted by then.
func TestClockDriftFreeTenMillionTicks(t *testing.T) {
	g := stream.MustBuildSDR(stream.SDRConfig{})
	e := newEngine(t, g, sim.Config{SensorPeriodS: 0.1})
	const steps = 10_000_000
	const tick = 100e-6
	if err := e.Run(steps * tick); err != nil {
		t.Fatal(err)
	}
	if e.Ticks() != steps {
		t.Fatalf("ticks = %d, want %d", e.Ticks(), steps)
	}
	if want := float64(steps) * tick; e.Now() != want {
		t.Errorf("Now() = %x, want exactly %x (steps*tick)", e.Now(), want)
	}
	// The accumulated clock would be off by far more than one ulp here;
	// the derived clock is exact by construction.
	var acc float64
	for i := 0; i < 1000; i++ {
		acc += tick
	}
	if acc == 1000*tick {
		t.Log("note: accumulation happened to be exact over 1000 steps on this platform")
	}
}

// newEngine assembles an engine over the default 3-core platform with a
// quiet policy (no migrations), for clock-focused tests.
func newEngine(t *testing.T, g *stream.Graph, cfg sim.Config) *sim.Engine {
	t.Helper()
	plat, err := mpsoc.New(mpsoc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(cfg, plat, g, policy.EnergyBalance{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// The fast path must also hold when the policy stops and restarts cores
// (Stop&Go drives SetPowered through the engine's accounting flushes).
func TestFastPathBitForBitStopGo(t *testing.T) {
	build := func(noFast bool) *sim.Engine {
		sc, err := scenario.Lookup(scenario.DefaultName)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := sc.Instantiate(scenario.Options{Package: thermal.HighPerformance()})
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.Config{PolicyStartS: 2, MeasureStartS: 2, RecordTrace: true, NoFastPath: noFast}
		e, err := sim.New(cfg, inst.Platform, inst.Graph, policy.NewStopGo(3))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	fast, slow := build(false), build(true)
	for _, e := range []*sim.Engine{fast, slow} {
		if err := e.Run(8); err != nil {
			t.Fatal(err)
		}
	}
	a, b := snapshotRun(fast), snapshotRun(slow)
	if a != b {
		t.Errorf("fast path diverged under Stop&Go:\n fast: %+v\n slow: %+v", a, b)
	}
}

// Direct check that a long thermal-balance run matches the documented
// invariant Now() == Ticks()*TickS at every sensor boundary, and that
// migrated state stays consistent (guards the horizon's checkpoint
// bound).
func TestFastPathInvariantsUnderBalancing(t *testing.T) {
	e := buildScenarioEngine(t, scenario.DefaultName, sim.Config{PolicyStartS: 12.5, MeasureStartS: 12.5})
	for i := 0; i < 200; i++ {
		if err := e.Run(0.1); err != nil {
			t.Fatal(err)
		}
		if want := float64(e.Ticks()) * 100e-6; e.Now() != want {
			t.Fatalf("after %d chunks: Now() %x != Ticks()*tick %x", i+1, e.Now(), want)
		}
	}
	r := e.Summarize()
	if r.Migrations == 0 {
		t.Error("no migrations; balancing not exercised")
	}
	if math.Abs(r.MigratedBytes-float64(r.Migrations)*float64(task.DefaultStateBytes)) > 1 {
		t.Errorf("migrated bytes %g inconsistent with %d migrations", r.MigratedBytes, r.Migrations)
	}
}
