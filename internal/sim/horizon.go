package sim

import (
	"fmt"
	"math"
)

// The event-horizon fast path.
//
// Between discrete events the tick loop does strictly predictable work:
// every busy core hands its full tick budget to one round-robin task,
// idle and stopped cores only accrue accounting time, and the source,
// sink, bus and migration daemons are no-ops. horizonTicks computes how
// many upcoming ticks are guaranteed event-free; macroStep then replays
// exactly the arithmetic those ticks would have performed — the same
// Execute calls in the same round-robin order with the same budgets —
// while skipping the per-tick scheduler scans, firing checks, daemon
// polls and power-model evaluations. Results are therefore bit-for-bit
// identical with the fast path on or off (engine_test asserts this),
// and every tick that contains an event is still executed by the plain
// stepTick path.
//
// Events that terminate a horizon:
//   - a source frame emission (stream.Graph.NextSourceEmissionAt)
//   - a sink deadline, or playback starting (NextSinkDeadlineAt)
//   - the earliest possible frame completion on any core at current
//     frequencies and budgets (a frame boundary is also the migration
//     checkpoint, so freezes are covered by the same bound)
//   - a task that could begin a frame (queue state changes at BeginFrame)
//   - a migration phase transition (migrate.Manager.NextPhaseTransitionAt)
//   - the earliest possible bus transfer completion (bus.Bus.SafeTicks);
//     within that bound in-flight transfers advance by exact per-tick
//     replay (bus.Bus.AdvanceTicks), so migrations in their transfer
//     phase do not force the whole span back to plain ticking
//   - the sensor/policy boundary (capped by the caller)

// maxHorizon bounds ticksUntil results so later additions cannot
// overflow; any real horizon is far smaller (the sensor period caps it).
const maxHorizon = int64(1) << 40

// horizonTicks returns how many of the next ticks are guaranteed free
// of discrete events, at most maxSpan. Zero means the next tick must be
// executed by the plain path. As a side effect, a positive horizon
// leaves the ring scratch (ringFlat/ringOff) describing each core's
// round-robin allocation ring over the span.
func (e *Engine) horizonTicks(maxSpan int64) int64 {
	h := maxSpan
	// Bus transfers: advance by exact replay up to the earliest tick any
	// of them could complete.
	if e.plat.Bus.Active() > 0 {
		if s := e.plat.Bus.SafeTicks(e.cfg.TickS); s < h {
			h = s
		}
		if h <= 0 {
			return 0
		}
	}
	// Source emission: the first tick whose time reaches the schedule.
	if j := e.ticksUntilCached(&e.evSrc, e.graph.NextSourceEmissionAt()) - 1; j < h {
		h = j
	}
	// Sink deadline (or imminent playback start).
	if j := e.ticksUntilCached(&e.evSink, e.graph.NextSinkDeadlineAt()) - 1; j < h {
		h = j
	}
	// Migration restore completion (task-recreation only; transfers are
	// excluded by the gate above, checkpoints by the completion bound).
	if j := e.ticksUntilCached(&e.evMigr, e.migr.NextPhaseTransitionAt()) - 1; j < h {
		h = j
	}
	if h <= 0 {
		return 0
	}
	// Earliest possible frame completion per core, and any task that
	// would begin a frame (both change queue state, hence global).
	// The same pass records the allocation rings macroStep will replay,
	// so the run queues are only scanned once per fast-path group.
	n := e.plat.NumCores()
	e.ringFlat = e.ringFlat[:0]
	for c := 0; c < n; c++ {
		e.ringOff[c] = len(e.ringFlat)
		f := e.plat.Frequency(c)
		if f <= 0 {
			continue
		}
		budget := f * e.cfg.TickS
		if budget <= 1e-6 {
			continue // the tick loop would not execute anything either
		}
		e.orderBuf = e.sch.OrderFrom(c, e.orderBuf)
		// First pass: collect the allocatable tasks (the round-robin
		// ring, in pick order).
		for _, ti := range e.orderBuf {
			t := e.graph.Task(ti)
			if !t.Runnable() {
				continue
			}
			if t.InFlight {
				e.ringFlat = append(e.ringFlat, ti)
			} else if e.graph.CanFire(ti) {
				return 0 // BeginFrame due on the very next tick
			}
		}
		ring := e.ringFlat[e.ringOff[c]:]
		m := int64(len(ring))
		if m == 0 {
			continue // idle core: accounting only, no events
		}
		// Second pass: task at ring position p receives budget on ticks
		// p+1, p+1+m, ...; it certainly cannot complete during its first
		// floor(remaining/budget)-1 allocations (one whole allocation of
		// safety absorbs any rounding in Progress accumulation).
		for p, ti := range ring {
			safe := int64(e.graph.Task(ti).Remaining()/budget) - 1
			if safe < 0 {
				safe = 0
			}
			if hc := int64(p) + safe*m; hc < h {
				h = hc
				if h <= 0 {
					return 0
				}
			}
		}
	}
	e.ringOff[n] = len(e.ringFlat)
	return h
}

// evCache memoizes one ticksUntil call site. The threshold tick for a
// given event time is independent of the current tick (the predicate
// compares absolute tick times against `at`), so while the event time
// is unchanged the cached absolute tick answers every rescan with one
// subtraction — the horizon scan runs several times per sensor period
// against mostly-unchanged source/sink/migration schedules.
type evCache struct {
	at  float64
	abs int64 // first tick index whose time reaches at
}

// ticksUntilCached is ticksUntil memoized through c. The cached
// absolute tick stays valid until the event time changes; once the
// clock passes it the clamp to 1 reproduces ticksUntil's floor exactly.
func (e *Engine) ticksUntilCached(c *evCache, at float64) int64 {
	if math.IsInf(at, 1) {
		return maxHorizon
	}
	if math.IsInf(at, -1) {
		return 1
	}
	if at == c.at {
		j := c.abs - e.ticks
		if j < 1 {
			return 1
		}
		return j
	}
	j := e.ticksUntil(at)
	if j < maxHorizon {
		c.at, c.abs = at, e.ticks+j
	}
	return j
}

// ticksUntil returns the smallest j >= 1 such that the time of tick
// ticks+j reaches `at` under the engine's event predicate
// (now >= at-1e-12, the same slop the stream schedulers use). Infinite
// or never-due times return maxHorizon.
func (e *Engine) ticksUntil(at float64) int64 {
	if math.IsInf(at, 1) {
		return maxHorizon
	}
	if math.IsInf(at, -1) {
		return 1
	}
	tick := e.cfg.TickS
	j := int64((at-1e-12)/tick) - e.ticks
	if j < 1 {
		j = 1
	}
	if j > maxHorizon {
		j = maxHorizon
	}
	// Nudge to the exact boundary of the float predicate.
	for j > 1 && float64(e.ticks+j-1)*tick >= at-1e-12 {
		j--
	}
	for j < maxHorizon && float64(e.ticks+j)*tick < at-1e-12 {
		j++
	}
	return j
}

// macroStep advances span event-free ticks in one jump, replaying the
// exact budget allocations the plain loop would have made. It consumes
// the ring scratch the preceding horizonTicks call recorded.
//
// The replay batches per task rather than walking tick-by-tick: within
// the span every allocation deposits the same full budget, so each
// accumulator (a task's Progress/BusyCycles, the core's pending busy
// cycles) receives an identical sequence of identical additions no
// matter how the per-tick interleaving is grouped — the batched result
// is bit-for-bit the tick loop's. The round-robin cursor is then placed
// just past the span's final allocation, where PickNext would have
// left it.
func (e *Engine) macroStep(span int64) {
	tick := e.cfg.TickS
	n := e.plat.NumCores()
	for c := 0; c < n; c++ {
		e.pendTicks[c] += span
		ring := e.ringFlat[e.ringOff[c]:e.ringOff[c+1]]
		m := int64(len(ring))
		if m == 0 {
			continue
		}
		budget := e.plat.Frequency(c) * tick
		for p, ti := range ring {
			// Ring position p is allocated on ticks p+1, p+1+m, ...
			a := int64(0)
			if pi := int64(p); span > pi {
				a = (span-1-pi)/m + 1
			}
			t := e.graph.Task(ti)
			if e.spanExact {
				// Span-exact accounting (expm scheme): one exact
				// product replaces the a rounded additions of the
				// replay loop. See Task.ExecuteSpan.
				consumed, done := t.ExecuteSpan(budget, a)
				if done {
					panic(fmt.Sprintf("sim: fast path mispredicted completion of %q", t.Name))
				}
				e.pendBusy[c] += consumed
				continue
			}
			for j := int64(0); j < a; j++ {
				consumed, done := t.Execute(budget)
				if done {
					panic(fmt.Sprintf("sim: fast path mispredicted completion of %q", t.Name))
				}
				e.pendBusy[c] += consumed
			}
		}
		e.sch.AdvancePast(c, ring[(span-1)%m])
	}
	e.plat.Bus.AdvanceTicks(tick, span)
	e.ticks += span
	e.now = float64(e.ticks) * tick
}
