package sim

import (
	"fmt"
	"testing"

	"thermbal/internal/core"
	"thermbal/internal/floorplan"
	"thermbal/internal/mpsoc"
	"thermbal/internal/policy"
	"thermbal/internal/stream"
	"thermbal/internal/thermal"
)

// The SDR benchmark is one member of the streaming class; the engine and
// the balancing policy must work on generated workloads too.
func TestGeneratedWorkloadsUnderBalancing(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			g, err := stream.Generate(stream.GenConfig{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			policy.BalanceMapping(g.Tasks(), 3)
			plat, err := mpsoc.New(mpsoc.Config{Package: thermal.MobileEmbedded()})
			if err != nil {
				t.Fatal(err)
			}
			e, err := New(Config{PolicyStartS: 12.5, MeasureStartS: 12.5},
				plat, g, core.New(core.Params{Delta: 3}))
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Run(27.5); err != nil {
				t.Fatal(err)
			}
			r := e.Summarize()
			// Sanity: the workload streamed. Some generated graphs have a
			// single dominant task whose repeated migration drains the
			// queues (the paper sized its queues for the SDR loads), so
			// QoS is only bounded loosely here.
			if r.FramesConsumed < 500 {
				t.Errorf("only %d frames consumed", r.FramesConsumed)
			}
			if r.MissRatePct > 35 {
				t.Errorf("miss rate %.1f%%", r.MissRatePct)
			}
			// Temperatures stayed physical.
			if r.MaxTemp > 95 || r.MaxTemp < 30 {
				t.Errorf("max temp %.1f implausible", r.MaxTemp)
			}
		})
	}
}

// A generated workload heavy enough to need every core must still meet
// its deadlines with the balanced mapping and no policy.
func TestGeneratedWorkloadFeasibility(t *testing.T) {
	g, err := stream.Generate(stream.GenConfig{Seed: 9, TotalFSE: 1.8})
	if err != nil {
		t.Fatal(err)
	}
	load := policy.BalanceMapping(g.Tasks(), 3)
	for c, l := range load {
		if l > 1 {
			t.Skipf("core %d overcommitted (%.2f); seed picks a different split", c, l)
		}
	}
	plat, err := mpsoc.New(mpsoc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{}, plat, g, policy.EnergyBalance{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if misses := e.Graph().SinkStats().Misses; misses != 0 {
		t.Errorf("%d misses on a feasible mapping", misses)
	}
}

// Scalability: the engine runs an 8-core platform with a generated
// workload (the paper's framework "can be scaled to any number of cores
// sub-systems", Section 4).
func TestEightCorePlatform(t *testing.T) {
	g, err := stream.Generate(stream.GenConfig{Seed: 3, Stages: 6, MaxWidth: 4, TotalFSE: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	policy.BalanceMapping(g.Tasks(), 8)
	plat, err := mpsoc.New(mpsoc.Config{
		Floorplan: floorplan8(),
		Package:   thermal.MobileEmbedded(),
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{PolicyStartS: 5, MeasureStartS: 5},
		plat, g, core.New(core.Params{Delta: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(15); err != nil {
		t.Fatal(err)
	}
	r := e.Summarize()
	if r.FramesConsumed == 0 {
		t.Error("nothing streamed on 8 cores")
	}
	if r.MaxTemp > 95 {
		t.Errorf("max temp %.1f", r.MaxTemp)
	}
}

func floorplan8() *floorplan.Floorplan { return floorplan.StreamingMPSoC(8) }
