package sim

import (
	"math"
	"strings"
	"testing"

	"thermbal/internal/core"
	"thermbal/internal/mpsoc"
	"thermbal/internal/policy"
	"thermbal/internal/stream"
	"thermbal/internal/task"
	"thermbal/internal/thermal"
)

// newSDREngine builds the standard experiment stack.
func newSDREngine(t *testing.T, cfg Config, pkg thermal.Package, pol policy.Policy) *Engine {
	t.Helper()
	g := stream.MustBuildSDR(stream.SDRConfig{})
	plat, err := mpsoc.New(mpsoc.Config{Package: pkg})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(cfg, plat, g, pol)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRunRejectsNonPositiveDuration(t *testing.T) {
	e := newSDREngine(t, Config{}, thermal.MobileEmbedded(), nil)
	if err := e.Run(0); err == nil {
		t.Error("Run(0) accepted")
	}
	if err := e.Run(-1); err == nil {
		t.Error("Run(-1) accepted")
	}
}

func TestNewRejectsUnplacedTask(t *testing.T) {
	g := stream.MustBuildSDR(stream.SDRConfig{})
	lpf, _ := g.TaskIndex("LPF")
	g.Task(lpf).Core = 7 // off-platform
	plat, _ := mpsoc.New(mpsoc.Config{})
	if _, err := New(Config{}, plat, g, nil); err == nil {
		t.Error("engine accepted task on core 7 of a 3-core platform")
	}
}

// Table 2 check: after construction the DVFS governor must assign
// 533/266/266 MHz from the static mapping.
func TestInitialDVFSMatchesTable2(t *testing.T) {
	e := newSDREngine(t, Config{}, thermal.MobileEmbedded(), nil)
	want := []float64{533e6, 266e6, 266e6}
	for c, w := range want {
		if got := e.Platform().Frequency(c); got != w {
			t.Errorf("core%d frequency = %g, want %g", c+1, got, w)
		}
	}
}

// With no policy the pipeline must run without misses and the thermal
// gradient must develop toward ~9 °C within the 12.5 s warm-up
// (paper Section 5.2 narrative).
func TestWarmupGradientAndQoS(t *testing.T) {
	e := newSDREngine(t, Config{}, thermal.MobileEmbedded(), policy.EnergyBalance{})
	if err := e.Run(12.5); err != nil {
		t.Fatal(err)
	}
	snk := e.Graph().SinkStats()
	if snk.Misses != 0 {
		t.Errorf("misses during warm-up = %d", snk.Misses)
	}
	if snk.Consumed < 500 {
		t.Errorf("consumed %d frames in 12.5 s, want ≈600", snk.Consumed)
	}
	t1, t3 := e.Platform().CoreTemp(0), e.Platform().CoreTemp(2)
	if spread := t1 - t3; spread < 6 || spread > 13 {
		t.Errorf("warm-up spread = %.2f, want ≈9 (6..13)", spread)
	}
	// Utilizations must match Table 2 within tolerance; check through
	// energy/power plausibility instead: core1 hotter than others.
	if !(t1 > e.Platform().CoreTemp(1)) {
		t.Error("core1 not hottest after warm-up")
	}
}

// The headline result: enabling thermal balancing after warm-up
// balances the cores (paper: within ~1 s) without deadline misses at
// the operating threshold of 3 °C.
func TestThermalBalancingBalancesWithoutQoSLoss(t *testing.T) {
	bal := core.New(core.Params{Delta: 3})
	e := newSDREngine(t, Config{PolicyStartS: 12.5, MeasureStartS: 12.5}, thermal.MobileEmbedded(), bal)
	if err := e.Run(42.5); err != nil {
		t.Fatal(err)
	}
	r := e.Summarize()
	if r.DeadlineMisses != 0 {
		t.Errorf("misses at operating threshold = %d, want 0", r.DeadlineMisses)
	}
	if r.Migrations == 0 {
		t.Error("no migrations happened")
	}
	if r.MeanGradient > 5 {
		t.Errorf("balanced mean gradient = %.2f, want < 5 (unbalanced is ≈9)", r.MeanGradient)
	}
	if r.PooledStdDev <= 0 {
		t.Error("pooled stddev not positive")
	}
	// 64 KB per migration (the OS minimum allocation).
	wantBytes := float64(r.Migrations) * 64 * 1024
	if math.Abs(r.MigratedBytes-wantBytes) > 1 {
		t.Errorf("migrated bytes = %g, want %g (64 KB each)", r.MigratedBytes, wantBytes)
	}
}

// Balancing must beat the energy-balanced baseline on the combined
// temperature deviation metric (Figure 7's ordering).
func TestBalancerBeatsEnergyBalanceOnStdDev(t *testing.T) {
	cfg := Config{PolicyStartS: 12.5, MeasureStartS: 12.5}
	eb := newSDREngine(t, cfg, thermal.MobileEmbedded(), policy.EnergyBalance{})
	if err := eb.Run(32.5); err != nil {
		t.Fatal(err)
	}
	tb := newSDREngine(t, cfg, thermal.MobileEmbedded(), core.New(core.Params{Delta: 3}))
	if err := tb.Run(32.5); err != nil {
		t.Fatal(err)
	}
	rEB, rTB := eb.Summarize(), tb.Summarize()
	if rTB.PooledStdDev >= rEB.PooledStdDev {
		t.Errorf("thermal balance pooled std %.3f >= energy balance %.3f", rTB.PooledStdDev, rEB.PooledStdDev)
	}
	if rTB.SpatialStdDev >= rEB.SpatialStdDev {
		t.Errorf("thermal balance spatial std %.3f >= energy balance %.3f", rTB.SpatialStdDev, rEB.SpatialStdDev)
	}
}

// Stop&Go must control the hot core but at a massive QoS cost
// (Figures 8/10's ordering).
func TestStopGoTradesQoSForTemperature(t *testing.T) {
	cfg := Config{PolicyStartS: 12.5, MeasureStartS: 12.5}
	sg := newSDREngine(t, cfg, thermal.MobileEmbedded(), policy.NewStopGo(3))
	if err := sg.Run(32.5); err != nil {
		t.Fatal(err)
	}
	tb := newSDREngine(t, cfg, thermal.MobileEmbedded(), core.New(core.Params{Delta: 3}))
	if err := tb.Run(32.5); err != nil {
		t.Fatal(err)
	}
	rSG, rTB := sg.Summarize(), tb.Summarize()
	if rSG.DeadlineMisses < 100*max64(rTB.DeadlineMisses, 1) {
		t.Errorf("Stop&Go misses %d not dramatically above thermal balance %d",
			rSG.DeadlineMisses, rTB.DeadlineMisses)
	}
	if rSG.Migrations != 0 {
		t.Errorf("Stop&Go migrated %d tasks; it must not migrate", rSG.Migrations)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// The high-performance package must trigger migrations at a higher rate
// than the mobile package at equal threshold (Figure 11).
func TestHighPerfMigratesMoreOften(t *testing.T) {
	cfg := Config{PolicyStartS: 12.5, MeasureStartS: 12.5}
	mob := newSDREngine(t, cfg, thermal.MobileEmbedded(), core.New(core.Params{Delta: 3}))
	if err := mob.Run(42.5); err != nil {
		t.Fatal(err)
	}
	hp := newSDREngine(t, cfg, thermal.HighPerformance(), core.New(core.Params{Delta: 3}))
	if err := hp.Run(42.5); err != nil {
		t.Fatal(err)
	}
	rm, rh := mob.Summarize(), hp.Summarize()
	if rh.MigrationsPerSec <= rm.MigrationsPerSec {
		t.Errorf("high-perf rate %.2f/s <= mobile %.2f/s", rh.MigrationsPerSec, rm.MigrationsPerSec)
	}
}

// The paper narrative: balancing takes hold within about a second of
// enabling the policy (the die-level component equalises quickly; the
// package-level drift completes over the next couple of seconds).
func TestBalanceReachedQuickly(t *testing.T) {
	bal := core.New(core.Params{Delta: 3})
	e := newSDREngine(t, Config{PolicyStartS: 12.5, RecordTrace: true}, thermal.MobileEmbedded(), bal)
	if err := e.Run(17.0); err != nil {
		t.Fatal(err)
	}
	// Spread at policy-on, after ~1.5 s, and after ~4 s.
	var spreadAtOn, spread14, spread165 float64
	for _, s := range e.Recorder().Samples() {
		spread := maxf(s.Temp) - minf(s.Temp)
		if s.Time <= 12.51 {
			spreadAtOn = spread
		}
		if s.Time <= 14.0 {
			spread14 = spread
		}
		if s.Time <= 16.5 {
			spread165 = spread
		}
	}
	if spreadAtOn < 6 {
		t.Fatalf("spread at policy-on = %.2f, warm-up broken", spreadAtOn)
	}
	// Substantial progress within 1.5 s of activation...
	if spread14 > 0.8*spreadAtOn {
		t.Errorf("spread %.2f -> %.2f after 1.5 s; balancing too slow", spreadAtOn, spread14)
	}
	// ...and within the ±3 °C band (spread ≤ ~2·Delta) by 4 s.
	if spread165 > 6.5 {
		t.Errorf("spread %.2f after 4 s, want inside the ±3 band", spread165)
	}
}

func maxf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func minf(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Determinism: identical configurations produce identical results.
func TestRunsAreDeterministic(t *testing.T) {
	res := make([]Result, 2)
	for i := range res {
		e := newSDREngine(t, Config{PolicyStartS: 12.5, MeasureStartS: 12.5},
			thermal.MobileEmbedded(), core.New(core.Params{Delta: 2}))
		if err := e.Run(22.5); err != nil {
			t.Fatal(err)
		}
		res[i] = e.Summarize()
	}
	if res[0].PooledStdDev != res[1].PooledStdDev ||
		res[0].Migrations != res[1].Migrations ||
		res[0].DeadlineMisses != res[1].DeadlineMisses {
		t.Errorf("non-deterministic results: %+v vs %+v", res[0], res[1])
	}
}

// Overshoot tracking: during balancing the hot core exceeds the upper
// threshold only transiently (the paper reports < 400 ms per episode;
// over the whole run the total must stay bounded).
func TestOvershootBounded(t *testing.T) {
	bal := core.New(core.Params{Delta: 3})
	e := newSDREngine(t, Config{PolicyStartS: 12.5, MeasureStartS: 12.5}, thermal.MobileEmbedded(), bal)
	e.SetOvershootDelta(3)
	if err := e.Run(20.0); err != nil {
		t.Fatal(err)
	}
	r := e.Summarize()
	// 7.5 s of measurement; the hot core must be above mean+3 for only
	// a small fraction (the initial crossing plus re-trigger blips).
	if r.OverThresholdS > 2.0 {
		t.Errorf("time above upper threshold = %.2f s of 7.5 s", r.OverThresholdS)
	}
}

func TestTraceRecorderCapturesRun(t *testing.T) {
	e := newSDREngine(t, Config{PolicyStartS: 0.1, RecordTrace: true},
		thermal.MobileEmbedded(), core.New(core.Params{Delta: 2}))
	if err := e.Run(5.0); err != nil {
		t.Fatal(err)
	}
	rec := e.Recorder()
	if rec == nil {
		t.Fatal("no recorder despite RecordTrace")
	}
	if len(rec.Samples()) < 400 {
		t.Errorf("samples = %d, want ≈500 (10 ms period over 5 s)", len(rec.Samples()))
	}
	var sb strings.Builder
	if err := rec.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(sb.String(), "\n", 2)[0]
	if !strings.Contains(head, "temp1_c") || !strings.Contains(head, "freq3_mhz") {
		t.Errorf("CSV header = %q", head)
	}
	var eb strings.Builder
	if err := rec.WriteEventsCSV(&eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.String(), "policy-on") {
		t.Error("event log missing policy-on")
	}
}

// Frozen tasks must never execute: total frames processed by a task
// equals frames forwarded downstream even across migrations.
func TestFrameConservationAcrossMigrations(t *testing.T) {
	e := newSDREngine(t, Config{PolicyStartS: 12.5, MeasureStartS: 12.5},
		thermal.MobileEmbedded(), core.New(core.Params{Delta: 2}))
	if err := e.Run(30.0); err != nil {
		t.Fatal(err)
	}
	g := e.Graph()
	lpf, _ := g.TaskIndex("LPF")
	demod, _ := g.TaskIndex("DEMOD")
	sum, _ := g.TaskIndex("SUM")
	// Pipeline monotonicity: upstream stages complete at least as many
	// frames as downstream ones, and the difference is bounded by the
	// total in-flight buffering.
	fL := g.Task(lpf).FramesCompleted
	fD := g.Task(demod).FramesCompleted
	fS := g.Task(sum).FramesCompleted
	if fL < fD || fD < fS {
		t.Errorf("pipeline counts not monotone: LPF %d, DEMOD %d, SUM %d", fL, fD, fS)
	}
	maxBuffer := int64(g.NumQueues() * stream.DefaultQueueCap)
	if fL-fS > maxBuffer {
		t.Errorf("frames lost: LPF %d vs SUM %d exceeds buffering %d", fL, fS, maxBuffer)
	}
	// Consumed + in-queue = produced by SUM.
	snk := g.SinkStats()
	qOut, _ := g.QueueIndex("q:sum-sink")
	if got := snk.Consumed + int64(g.Queue(qOut).Len()); got != fS {
		t.Errorf("sink conservation: consumed+queued = %d, SUM produced %d", got, fS)
	}
}

// Energy accounting sanity: a hotter, faster core consumes more energy;
// total energy is positive and bounded by max power x time.
func TestEnergyAccounting(t *testing.T) {
	e := newSDREngine(t, Config{}, thermal.MobileEmbedded(), policy.EnergyBalance{})
	if err := e.Run(5.0); err != nil {
		t.Fatal(err)
	}
	total := e.Platform().TotalEnergyJ
	if total <= 0 {
		t.Fatal("no energy accounted")
	}
	// 3 cores + caches + memory at absolute max ≈ 2 W for 5 s = 10 J.
	if total > 10 {
		t.Errorf("energy %g J exceeds physical bound", total)
	}
}

// rogue is a policy that emits a malformed action once.
type rogue struct {
	act   policy.Action
	fired bool
}

func (r *rogue) Name() string { return "rogue" }

func (r *rogue) Decide(*policy.Snapshot) []policy.Action {
	if r.fired {
		return nil
	}
	r.fired = true
	return []policy.Action{r.act}
}

// The engine must reject malformed policy actions with an error instead
// of corrupting platform state or panicking.
func TestEngineRejectsMalformedActions(t *testing.T) {
	cases := []struct {
		name string
		act  policy.Action
	}{
		{"migrate unknown task", policy.Migrate{Task: 99, Dst: 1}},
		{"migrate negative task", policy.Migrate{Task: -1, Dst: 1}},
		{"migrate to unknown core", policy.Migrate{Task: 0, Dst: 9}},
		{"migrate to same core", policy.Migrate{Task: 0, Dst: 2}}, // LPF is on core 2
		{"stop unknown core", policy.StopCore{Core: 5}},
		{"start unknown core", policy.StartCore{Core: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := newSDREngine(t, Config{}, thermal.MobileEmbedded(), &rogue{act: tc.act})
			if err := e.Run(0.05); err == nil {
				t.Errorf("engine accepted %v", tc.act)
			}
		})
	}
}

// Frozen tasks must not execute: during an in-flight migration the
// migrating task's FramesCompleted stays constant.
func TestFrozenTaskDoesNotRun(t *testing.T) {
	e := newSDREngine(t, Config{PolicyStartS: 12.5}, thermal.MobileEmbedded(),
		core.New(core.Params{Delta: 3}))
	// Run to just past the first migration trigger.
	if err := e.Run(12.6); err != nil {
		t.Fatal(err)
	}
	var ti = -1
	for i := 0; i < e.Graph().NumTasks(); i++ {
		if _, pending := e.Migrations().Pending(i); pending {
			ti = i
			break
		}
	}
	if ti < 0 {
		t.Skip("no migration in flight at the probe instant")
	}
	tk := e.Graph().Task(ti)
	if tk.State != task.Frozen {
		// Still waiting for its checkpoint: run a little further.
		if err := e.Run(0.1); err != nil {
			t.Fatal(err)
		}
	}
	if tk.State == task.Frozen {
		before := tk.FramesCompleted
		if err := e.Run(0.02); err != nil {
			t.Fatal(err)
		}
		if tk.State == task.Frozen && tk.FramesCompleted != before {
			t.Errorf("frozen task %s completed frames", tk.Name)
		}
	}
}
