// Package sim is the thermal-aware emulation engine: the software
// equivalent of the paper's FPGA framework (Section 4). It advances a
// tick-accurate model of the MPSoC — per-core schedulers executing the
// streaming graph, the shared bus, the migration middleware — and
// couples it to the RC thermal model at the 10 ms sensor period, at
// which point the active management policy is consulted and its actions
// (migrations, core stop/start) are applied.
//
// Time is an integer tick counter (Now() is derived, never
// accumulated, so the clock cannot drift), and event-free stretches of
// the tick loop are jumped in macro-steps by the event-horizon fast
// path (see horizon.go) with bit-for-bit identical results.
package sim

import (
	"errors"
	"fmt"

	"thermbal/internal/metrics"
	"thermbal/internal/migrate"
	"thermbal/internal/mpsoc"
	"thermbal/internal/policy"
	"thermbal/internal/sched"
	"thermbal/internal/stream"
	"thermbal/internal/task"
	"thermbal/internal/thermal"
	"thermbal/internal/trace"
)

// Config parameterises a run.
type Config struct {
	// TickS is the execution tick (default 100 µs).
	TickS float64
	// SensorPeriodS is the thermal/sensor/policy period (default 10 ms,
	// the paper's monitoring rate).
	SensorPeriodS float64
	// PolicyStartS delays policy activation (the paper enables thermal
	// balancing after a 12.5 s warm-up). Default 0 (immediately).
	PolicyStartS float64
	// MeasureStartS delays metric collection (usually = PolicyStartS,
	// or later to exclude the balancing transient). Default 0.
	MeasureStartS float64
	// Mechanism selects the migration implementation (default
	// task-replication, the paper's platform choice).
	Mechanism migrate.Mechanism
	// RecordTrace enables the timeline recorder.
	RecordTrace bool
	// Thermal selects the RC-network integration scheme (zero value =
	// explicit Euler, the seed behavior).
	Thermal thermal.Config
	// Modulate, when non-nil, is invoked at every sensor update and may
	// change task FSE loads in place (bursty and phase-shifting
	// workloads). Returning true signals that loads changed: the engine
	// then rebinds per-frame work and re-evaluates DVFS on every core.
	// Tasks mid-frame finish at the old work amount and pick up the new
	// load at their next frame.
	Modulate Modulator
	// NoFastPath disables the event-horizon macro-stepping fast path and
	// forces plain tick-by-tick execution. Results are bit-for-bit
	// identical either way; the switch exists for A/B validation and for
	// isolating fast-path regressions.
	NoFastPath bool
}

// Modulator mutates task loads as a function of simulation time. It
// must be deterministic in now for reproducible runs.
type Modulator func(now float64, tasks []*task.Task) bool

func (c *Config) fill() {
	if c.TickS <= 0 {
		c.TickS = 100e-6
	}
	if c.SensorPeriodS <= 0 {
		c.SensorPeriodS = 10e-3
	}
}

// Engine couples platform, application and policy.
type Engine struct {
	cfg Config

	plat  *mpsoc.Platform
	graph *stream.Graph
	sch   *sched.Scheduler
	migr  *migrate.Manager
	pol   policy.Policy

	// ticks is the integer simulation clock: the number of execution
	// ticks advanced since construction. now is always derived as
	// float64(ticks)*TickS, never accumulated, so the clock carries no
	// floating-point drift regardless of run length, and consecutive Run
	// calls are bit-for-bit identical to one long run.
	ticks int64
	now   float64
	// sensorEvery is the sensor/policy period in ticks; sensor updates
	// fire at absolute tick multiples of it, so Run re-entry keeps the
	// sensor cadence aligned to absolute time.
	sensorEvery int64

	// Power accounting is deferred into constant-state spans: within a
	// sensor window the die temperatures are constant, and between DVFS /
	// power-state changes each core's frequency is too, so the affine
	// power model integrates exactly over the whole span. pendTicks is
	// integer so span lengths are identical whether the span was walked
	// tick-by-tick or jumped by the fast path.
	pendTicks       []int64   // per-core un-accounted ticks
	pendBusy        []float64 // per-core un-accounted busy cycles
	lastSharedFlush int64     // tick of the last shared-memory flush

	// spanExact enables batched span accounting in the fast path: a
	// task receiving a identical budget allocations over an event-free
	// span advances by the exact product a·budget instead of a rounded
	// sequential additions. It accompanies the expm thermal scheme —
	// exact in time, exact in accounting — and differs from the
	// tick-by-tick replay only in the last ULPs. The default Euler
	// configuration keeps the bit-for-bit sequential replay.
	spanExact bool

	// Memoized event-time → threshold-tick conversions for the horizon
	// scan (see evCache in horizon.go).
	evSrc, evSink, evMigr evCache

	// Fast-path scratch (reused across macro-steps). The horizon scan
	// records each core's allocation ring — its allocatable tasks in
	// pick order — as ringFlat[ringOff[c]:ringOff[c+1]], and macroStep
	// replays it without rescanning the run queues.
	runnableFn func(int) bool // the tick path's PickNext predicate
	orderBuf   []int
	ringFlat   []int
	ringOff    []int

	temps    *metrics.TempCollector
	rec      *trace.Recorder
	snapshot policy.Snapshot // reused across sensor periods

	// measuring window bookkeeping for rate metrics
	measureStartMisses   int64
	measureStartConsumed int64
	measureStartMigr     int
	measureStartBytes    float64
	measureStarted       bool
	measureStartTime     float64

	policyActive bool

	// workRatio[i] = CyclesPerFrame/FSE of task i at construction, so
	// modulated loads rebind to consistent per-frame work.
	workRatio []float64

	// overshoot tracking (the paper: the hot core exceeds the upper
	// threshold for <400 ms while balancing)
	overThresholdS float64
	deltaForOver   float64
}

// New builds an engine. The graph must be finalized and its tasks
// placed (Core >= 0).
func New(cfg Config, plat *mpsoc.Platform, g *stream.Graph, pol policy.Policy) (*Engine, error) {
	cfg.fill()
	if pol == nil {
		pol = policy.None{}
	}
	n := plat.NumCores()
	e := &Engine{
		cfg:       cfg,
		plat:      plat,
		graph:     g,
		sch:       sched.New(n),
		migr:      migrate.NewManager(plat.Bus, cfg.Mechanism),
		pol:       pol,
		temps:     metrics.NewTempCollector(n),
		pendTicks: make([]int64, n),
		pendBusy:  make([]float64, n),
		ringOff:   make([]int, n+1),
		spanExact: cfg.Thermal.Scheme == thermal.Expm,
	}
	e.runnableFn = func(ti int) bool {
		t := e.graph.Task(ti)
		if !t.Runnable() {
			return false
		}
		return t.InFlight || e.graph.CanFire(ti)
	}
	e.sensorEvery = int64(cfg.SensorPeriodS/cfg.TickS + 0.5)
	if e.sensorEvery < 1 {
		e.sensorEvery = 1
	}
	if cfg.RecordTrace {
		e.rec = trace.New(n, 0)
	}
	plat.Thermal.Net.SetIntegrator(thermal.NewIntegrator(cfg.Thermal))
	e.workRatio = make([]float64, g.NumTasks())
	for ti, t := range g.Tasks() {
		if t.Core < 0 || t.Core >= n {
			return nil, fmt.Errorf("sim: task %q placed on core %d (platform has %d)", t.Name, t.Core, n)
		}
		if err := e.sch.Assign(ti, t.Core); err != nil {
			return nil, err
		}
		if t.FSE > 0 {
			e.workRatio[ti] = t.CyclesPerFrame / t.FSE
		}
	}
	// Initial DVFS assignment from the static mapping.
	for c := 0; c < n; c++ {
		e.updateDVFS(c)
	}
	e.migr.OnComplete = e.onMigrationComplete
	e.snapshot = policy.Snapshot{
		Temp:    make([]float64, n),
		Freq:    make([]float64, n),
		Powered: make([]bool, n),
		Tasks:   make([]policy.TaskView, g.NumTasks()),
		LevelFor: func(fse float64) float64 {
			return plat.Gov.Ladder().LevelFor(fse)
		},
		EstimateFreeze: func(ti int) float64 {
			return e.migr.EstimateFreezeS(g.Task(ti), 1)
		},
	}
	return e, nil
}

// SetOvershootDelta enables tracking of time the hottest core spends
// above mean+delta (the paper's <400 ms overshoot observation).
func (e *Engine) SetOvershootDelta(delta float64) { e.deltaForOver = delta }

// Platform exposes the platform (read-mostly; tests adjust state).
func (e *Engine) Platform() *mpsoc.Platform { return e.plat }

// Graph exposes the streaming application.
func (e *Engine) Graph() *stream.Graph { return e.graph }

// Migrations exposes the middleware manager.
func (e *Engine) Migrations() *migrate.Manager { return e.migr }

// Scheduler exposes the per-core run queues.
func (e *Engine) Scheduler() *sched.Scheduler { return e.sch }

// Now returns the current simulation time: exactly Ticks()*TickS.
func (e *Engine) Now() float64 { return e.now }

// Ticks returns the integer tick count advanced since construction.
func (e *Engine) Ticks() int64 { return e.ticks }

// Recorder returns the trace recorder (nil unless RecordTrace).
func (e *Engine) Recorder() *trace.Recorder { return e.rec }

// TempMetrics returns the temperature collector (samples only accrue
// after MeasureStartS).
func (e *Engine) TempMetrics() *metrics.TempCollector { return e.temps }

// flushAccount settles core c's pending execution span into the power
// accounting. It must run before anything that changes the core's
// operating point (frequency, power state) or the die temperature, so
// every accounted span has constant state.
func (e *Engine) flushAccount(c int) {
	if e.pendTicks[c] == 0 {
		return
	}
	e.plat.AccountSpan(c, float64(e.pendTicks[c])*e.cfg.TickS, e.pendBusy[c])
	e.pendTicks[c] = 0
	e.pendBusy[c] = 0
}

// updateDVFS recomputes core c's level from its mapped, unfrozen tasks.
func (e *Engine) updateDVFS(c int) {
	e.flushAccount(c)
	if !e.plat.Powered(c) {
		return // stays at 0 until restart
	}
	var fse float64
	for _, ti := range e.sch.TasksOn(c) {
		t := e.graph.Task(ti)
		if t.State == task.Ready {
			fse += t.FSE
		}
	}
	e.plat.Gov.Update(c, fse)
}

// rebindWork syncs every task's per-frame work with its (possibly
// modulated) FSE. Tasks mid-frame keep the old amount until the frame
// completes; runCore rebinds them at that frame boundary.
func (e *Engine) rebindWork() {
	for ti, t := range e.graph.Tasks() {
		if t.InFlight {
			continue
		}
		if want := e.workRatio[ti] * t.FSE; t.CyclesPerFrame != want {
			t.CyclesPerFrame = want
		}
	}
}

// fseMapped sums FSE of all tasks whose home is core c, regardless of
// freeze state — used when restarting a stopped core.
func (e *Engine) fseMapped(c int) float64 {
	var fse float64
	for _, ti := range e.sch.TasksOn(c) {
		fse += e.graph.Task(ti).FSE
	}
	return fse
}

// onMigrationComplete rebinds the scheduler and DVFS after the
// middleware finishes a transfer.
func (e *Engine) onMigrationComplete(mg *migrate.Migration) {
	if err := e.sch.Assign(mg.TaskIdx, mg.Dst); err != nil {
		panic(fmt.Sprintf("sim: migration completion rebind: %v", err))
	}
	e.updateDVFS(mg.Src)
	e.updateDVFS(mg.Dst)
	if e.rec != nil {
		e.rec.AddEvent(e.now, "migrate-done", "%s core%d->core%d (%.0f KB, frozen %.1f ms)",
			mg.Task.Name, mg.Src+1, mg.Dst+1, mg.Bytes()/1024, mg.FreezeDuration()*1e3)
	}
}

// Run advances the simulation by duration seconds. The tick and sensor
// bookkeeping live on the Engine, so split runs are bit-for-bit
// identical to one long run: Run(0.005) twice fires the same sensor
// updates at the same absolute ticks as Run(0.010).
func (e *Engine) Run(duration float64) error {
	if duration <= 0 {
		return errors.New("sim: non-positive duration")
	}
	end := e.ticks + int64(duration/e.cfg.TickS+0.5)
	for e.ticks < end {
		if e.cfg.NoFastPath {
			e.stepTick(e.cfg.TickS)
		} else {
			e.advance(end)
		}
		if e.ticks%e.sensorEvery == 0 {
			if err := e.sensorUpdate(); err != nil {
				return err
			}
		}
	}
	return nil
}

// advance moves the clock forward by one fast-path group: a macro-step
// over the event-free horizon followed by the plain tick that contains
// the next event, so the horizon scan is amortized over the whole
// group. It never crosses a sensor boundary or the run end.
func (e *Engine) advance(end int64) {
	max := e.sensorEvery - e.ticks%e.sensorEvery // ticks to the boundary
	if remain := end - e.ticks; remain < max {
		max = remain
	}
	span := e.horizonTicks(max)
	if span <= 0 {
		e.stepTick(e.cfg.TickS)
		return
	}
	e.macroStep(span)
	if span < max {
		// The tick after an event-free horizon holds the next event;
		// execute it plainly before rescanning.
		e.stepTick(e.cfg.TickS)
	}
}

// stepTick advances one execution tick.
func (e *Engine) stepTick(tick float64) {
	e.ticks++
	e.now = float64(e.ticks) * tick
	e.graph.AdvanceSource(e.now)

	n := e.plat.NumCores()
	for c := 0; c < n; c++ {
		e.runCore(c, tick)
	}

	e.plat.Bus.Advance(tick)
	e.migr.Advance(e.now)

	e.graph.AdvanceSink(e.now)
}

// runCore executes up to one tick of work on core c.
func (e *Engine) runCore(c int, tick float64) {
	f := e.plat.Frequency(c)
	if f <= 0 {
		e.pendTicks[c]++
		return
	}
	budget := f * tick
	var busy float64
	for budget > 1e-6 {
		ti := e.sch.PickNext(c, e.runnableFn)
		if ti < 0 {
			break
		}
		t := e.graph.Task(ti)
		if !t.InFlight {
			if err := e.graph.BeginFrame(ti); err != nil {
				panic(fmt.Sprintf("sim: BeginFrame(%s): %v", t.Name, err))
			}
		}
		consumed, done := t.Execute(budget)
		budget -= consumed
		busy += consumed
		if done {
			e.graph.FinishFrame(ti)
			// Frame boundary: a task that was mid-frame when its load
			// was modulated picks up the new per-frame work here, even
			// if a saturated core keeps it in flight across every
			// sensor update.
			if e.cfg.Modulate != nil {
				if want := e.workRatio[ti] * t.FSE; t.CyclesPerFrame != want {
					t.CyclesPerFrame = want
				}
			}
			// Frame boundary = migration checkpoint (Section 3.2).
			froze, err := e.migr.AtCheckpoint(ti, e.now)
			if err != nil {
				panic(fmt.Sprintf("sim: checkpoint(%s): %v", t.Name, err))
			}
			if froze {
				// The frozen task leaves the run queue; its load no
				// longer drives this core's DVFS level.
				e.updateDVFS(c)
				if e.rec != nil {
					e.rec.AddEvent(e.now, "freeze", "%s frozen on core%d", t.Name, c+1)
				}
			}
		}
	}
	e.pendTicks[c]++
	e.pendBusy[c] += busy
}

// sensorUpdate flushes the power window into the thermal model, samples
// metrics, and runs the policy.
func (e *Engine) sensorUpdate() error {
	for c := 0; c < e.plat.NumCores(); c++ {
		e.flushAccount(c)
	}
	if e.ticks > e.lastSharedFlush {
		e.plat.AccountShared(float64(e.ticks-e.lastSharedFlush) * e.cfg.TickS)
		e.lastSharedFlush = e.ticks
	}
	if _, err := e.plat.FlushWindow(e.cfg.SensorPeriodS); err != nil {
		return err
	}

	// Load modulation: phase shifts and bursts change task FSE before
	// the snapshot is built, so both DVFS and the policy see the new
	// loads immediately.
	if e.cfg.Modulate != nil && e.cfg.Modulate(e.now, e.graph.Tasks()) {
		e.rebindWork()
		for c := 0; c < e.plat.NumCores(); c++ {
			e.updateDVFS(c)
		}
	}

	s := &e.snapshot
	s.Time = e.now
	var sumT, sumF float64
	for c := 0; c < e.plat.NumCores(); c++ {
		s.Temp[c] = e.plat.CoreTemp(c)
		s.Freq[c] = e.plat.Frequency(c)
		s.Powered[c] = e.plat.Powered(c)
		sumT += s.Temp[c]
		sumF += s.Freq[c]
	}
	s.MeanTemp = sumT / float64(e.plat.NumCores())
	s.MeanFreq = sumF / float64(e.plat.NumCores())
	for ti, t := range e.graph.Tasks() {
		_, migrating := e.migr.Pending(ti)
		s.Tasks[ti] = policy.TaskView{
			Index:      ti,
			Name:       t.Name,
			Core:       t.Core,
			FSE:        t.FSE,
			StateBytes: t.StateBytes,
			Migrating:  migrating,
		}
	}
	s.MigrationsPending = e.migr.NumPending()

	// Metrics.
	if e.now >= e.cfg.MeasureStartS {
		if !e.measureStarted {
			e.measureStarted = true
			e.measureStartTime = e.now
			e.measureStartMisses = e.graph.SinkStats().Misses
			e.measureStartConsumed = e.graph.SinkStats().Consumed
			st := e.migr.Stats()
			e.measureStartMigr = st.Completed
			e.measureStartBytes = st.BytesMoved
		}
		e.temps.Sample(s.Temp)
		if e.deltaForOver > 0 {
			for c := 0; c < e.plat.NumCores(); c++ {
				if s.Temp[c] > s.MeanTemp+e.deltaForOver {
					e.overThresholdS += e.cfg.SensorPeriodS
					break
				}
			}
		}
	}
	if e.rec != nil {
		e.rec.AddSample(trace.Sample{Time: e.now, Temp: s.Temp, Freq: s.Freq})
	}

	// Policy.
	if e.now >= e.cfg.PolicyStartS {
		if !e.policyActive {
			e.policyActive = true
			if e.rec != nil {
				e.rec.AddEvent(e.now, "policy-on", "policy %s active", e.pol.Name())
			}
		}
		for _, act := range e.pol.Decide(s) {
			if err := e.apply(act); err != nil {
				return err
			}
		}
	}
	return nil
}

// apply executes one policy action.
func (e *Engine) apply(act policy.Action) error {
	switch a := act.(type) {
	case policy.Migrate:
		if a.Task < 0 || a.Task >= e.graph.NumTasks() {
			return fmt.Errorf("sim: policy migrated unknown task %d", a.Task)
		}
		if a.Dst < 0 || a.Dst >= e.plat.NumCores() {
			return fmt.Errorf("sim: policy migrated task %d to unknown core %d", a.Task, a.Dst)
		}
		t := e.graph.Task(a.Task)
		if _, err := e.migr.Request(t, a.Task, a.Dst, e.now); err != nil {
			// Racing requests are filtered by the policy contract, so
			// surface real protocol errors.
			return fmt.Errorf("sim: %w", err)
		}
		if e.rec != nil {
			e.rec.AddEvent(e.now, "migrate-req", "%s core%d->core%d", t.Name, t.Core+1, a.Dst+1)
		}
	case policy.StopCore:
		if a.Core < 0 || a.Core >= e.plat.NumCores() {
			return fmt.Errorf("sim: policy stopped unknown core %d", a.Core)
		}
		e.flushAccount(a.Core)
		e.plat.SetPowered(a.Core, false, 0)
		if e.rec != nil {
			e.rec.AddEvent(e.now, "stop", "core%d stopped", a.Core+1)
		}
	case policy.StartCore:
		if a.Core < 0 || a.Core >= e.plat.NumCores() {
			return fmt.Errorf("sim: policy started unknown core %d", a.Core)
		}
		e.flushAccount(a.Core)
		e.plat.SetPowered(a.Core, true, e.fseMapped(a.Core))
		if e.rec != nil {
			e.rec.AddEvent(e.now, "start", "core%d restarted", a.Core+1)
		}
	default:
		return fmt.Errorf("sim: unknown action %T", act)
	}
	return nil
}

// Result summarises a finished run over the measurement window.
type Result struct {
	// PolicyName labels the run.
	PolicyName string
	// MeasuredS is the length of the measurement window.
	MeasuredS float64

	// PooledStdDev is the Figure 7/9 metric: the standard deviation
	// over all (core, time) samples — spatial and temporal deviation
	// combined (the paper studies both, Section 5).
	PooledStdDev float64
	// SpatialStdDev is the time-averaged across-core standard
	// deviation alone.
	SpatialStdDev float64
	// MeanGradient is the time-averaged hottest-coldest spread.
	MeanGradient float64
	// MeanTemporalStdDev averages per-core temporal deviation.
	MeanTemporalStdDev float64
	// MaxTemp is the hottest sample.
	MaxTemp float64

	// DeadlineMisses within the window (Figures 8/10).
	DeadlineMisses int64
	// FramesConsumed within the window.
	FramesConsumed int64
	// MissRatePct = misses / deadlines (%).
	MissRatePct float64

	// Migrations within the window; MigrationsPerSec is Figure 11.
	Migrations       int
	MigrationsPerSec float64
	// MigratedBytes within the window; BytesPerSec the paper quotes as
	// 192 KB/s at 3 migrations/s.
	MigratedBytes    float64
	BytesPerSec      float64
	MeanFreezeS      float64
	OverThresholdS   float64
	TotalEnergyJ     float64
	DVFSSwitches     int
	SourceDropped    int64
	MinQueueHeadroom int
}

// Summarize builds the Result for the measurement window ending now.
func (e *Engine) Summarize() Result {
	snk := e.graph.SinkStats()
	st := e.migr.Stats()
	measured := e.now - e.measureStartTime
	r := Result{
		PolicyName:         e.pol.Name(),
		MeasuredS:          measured,
		PooledStdDev:       e.temps.PooledStdDev(),
		SpatialStdDev:      e.temps.MeanSpatialStdDev(),
		MeanGradient:       e.temps.MeanGradient(),
		MeanTemporalStdDev: e.temps.MeanTemporalStdDev(),
		MaxTemp:            e.temps.MaxTemp,
		DeadlineMisses:     snk.Misses - e.measureStartMisses,
		FramesConsumed:     snk.Consumed - e.measureStartConsumed,
		Migrations:         st.Completed - e.measureStartMigr,
		MigratedBytes:      st.BytesMoved - e.measureStartBytes,
		OverThresholdS:     e.overThresholdS,
		TotalEnergyJ:       e.plat.TotalEnergyJ,
		DVFSSwitches:       e.plat.Gov.Switches(),
		SourceDropped:      e.graph.SourceStats().Dropped,
	}
	deadlines := r.DeadlineMisses + r.FramesConsumed
	if deadlines > 0 {
		r.MissRatePct = 100 * float64(r.DeadlineMisses) / float64(deadlines)
	}
	if measured > 0 {
		r.MigrationsPerSec = float64(r.Migrations) / measured
		r.BytesPerSec = r.MigratedBytes / measured
	}
	if st.Completed > 0 {
		r.MeanFreezeS = st.FreezeTime / float64(st.Completed)
	}
	return r
}
