package bus

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func newTest() *Bus {
	return New(Params{BandwidthBytesPerSec: 1000, PerTransferOverheadS: 0.01})
}

func TestStartRejectsBadSize(t *testing.T) {
	b := newTest()
	if _, err := b.Start("x", 0); !errors.Is(err, ErrBadSize) {
		t.Errorf("size 0 err = %v, want ErrBadSize", err)
	}
	if _, err := b.Start("x", -5); !errors.Is(err, ErrBadSize) {
		t.Errorf("negative size err = %v, want ErrBadSize", err)
	}
}

func TestSingleTransferLatency(t *testing.T) {
	b := newTest()
	tr, err := b.Start("solo", 500)
	if err != nil {
		t.Fatal(err)
	}
	// latency = overhead + size/bw = 0.01 + 0.5 = 0.51 s.
	b.Advance(0.50)
	if tr.Done() {
		t.Fatal("transfer finished early")
	}
	b.Advance(0.02)
	if !tr.Done() {
		t.Fatalf("transfer not done after full latency; remaining %g", tr.Remaining())
	}
	if b.Active() != 0 {
		t.Errorf("Active = %d after completion", b.Active())
	}
}

func TestLatencyEstimateMatchesSimulation(t *testing.T) {
	b := newTest()
	est := b.LatencyEstimate(500, 1)
	tr, _ := b.Start("solo", 500)
	var elapsed float64
	for !tr.Done() {
		b.Advance(0.001)
		elapsed += 0.001
	}
	if math.Abs(elapsed-est) > 0.005 {
		t.Errorf("simulated %g vs estimate %g", elapsed, est)
	}
}

func TestFairShareContention(t *testing.T) {
	// Two equal transfers must finish together and take ~twice as long
	// as one alone (plus overhead effects).
	b := newTest()
	t1, _ := b.Start("a", 500)
	t2, _ := b.Start("b", 500)
	var done1, done2 float64
	for el := 0.0; !(t1.Done() && t2.Done()) && el < 10; el += 0.001 {
		b.Advance(0.001)
		if t1.Done() && done1 == 0 {
			done1 = el
		}
		if t2.Done() && done2 == 0 {
			done2 = el
		}
	}
	if !t1.Done() || !t2.Done() {
		t.Fatal("transfers never completed")
	}
	if math.Abs(done1-done2) > 0.002 {
		t.Errorf("equal transfers finished at %g and %g, want together", done1, done2)
	}
	// Total work = 2*(500 + 10) bytes at 1000 B/s ≈ 1.02 s.
	if done1 < 0.95 || done1 > 1.1 {
		t.Errorf("contended completion at %g s, want ≈1.02", done1)
	}
}

func TestShorterTransferFinishesFirst(t *testing.T) {
	b := newTest()
	small, _ := b.Start("small", 100)
	big, _ := b.Start("big", 900)
	for i := 0; i < 10000 && !big.Done(); i++ {
		b.Advance(0.001)
		if big.Done() && !small.Done() {
			t.Fatal("big finished before small")
		}
	}
	if !small.Done() || !big.Done() {
		t.Fatal("transfers stuck")
	}
}

func TestAdvanceAcrossCompletionBoundary(t *testing.T) {
	// One giant Advance must process completions mid-interval and give
	// remaining bandwidth to survivors.
	b := newTest()
	small, _ := b.Start("small", 100)
	big, _ := b.Start("big", 900)
	b.Advance(5)
	if !small.Done() || !big.Done() {
		t.Fatal("transfers not finished after long advance")
	}
	// Work: both run at 500 B/s until small (110 incl. overhead) done at
	// t=0.22; big then has 910-110=800 left at 1000 B/s: total 1.02 s.
	if got := b.Utilization(5); math.Abs(got-1.02/5) > 0.01 {
		t.Errorf("utilization = %g, want ≈%g", got, 1.02/5)
	}
}

func TestProgressAndAccessors(t *testing.T) {
	b := newTest()
	tr, _ := b.Start("x", 990)
	if tr.Progress() != 0 {
		t.Errorf("initial progress = %g", tr.Progress())
	}
	if tr.Label() != "x" {
		t.Errorf("label = %q", tr.Label())
	}
	if tr.ID() != 0 {
		t.Errorf("id = %d", tr.ID())
	}
	b.Advance(0.5)
	if p := tr.Progress(); p <= 0 || p >= 1 {
		t.Errorf("mid progress = %g", p)
	}
	b.Advance(1)
	if tr.Progress() != 1 {
		t.Errorf("final progress = %g", tr.Progress())
	}
	if b.TransfersStarted() != 1 {
		t.Errorf("TransfersStarted = %d", b.TransfersStarted())
	}
	if b.BytesMoved() < 990 {
		t.Errorf("BytesMoved = %g", b.BytesMoved())
	}
}

func TestActiveLabelsSorted(t *testing.T) {
	b := newTest()
	b.Start("zeta", 100)
	b.Start("alpha", 100)
	got := b.ActiveLabels()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Errorf("ActiveLabels = %v", got)
	}
}

func TestDefaults(t *testing.T) {
	b := New(Params{})
	if b.Bandwidth() != DefaultBandwidth {
		t.Errorf("default bandwidth = %g", b.Bandwidth())
	}
	// Negative overhead clamps to zero.
	b2 := New(Params{PerTransferOverheadS: -1})
	if got := b2.LatencyEstimate(0.0001, 1); got > 1e-6 {
		t.Errorf("negative overhead not clamped: latency %g", got)
	}
}

func TestUtilizationBounds(t *testing.T) {
	b := newTest()
	if b.Utilization(0) != 0 {
		t.Error("Utilization(0) != 0")
	}
	b.Start("x", 10000)
	b.Advance(100)
	if u := b.Utilization(0.001); u != 1 {
		t.Errorf("utilization clamp = %g, want 1", u)
	}
}

func TestZeroAndNegativeAdvanceNoOp(t *testing.T) {
	b := newTest()
	tr, _ := b.Start("x", 100)
	b.Advance(0)
	b.Advance(-1)
	if tr.Progress() != 0 {
		t.Error("Advance(<=0) moved data")
	}
}

// Property: regardless of how an interval is subdivided, the same total
// amount of data moves (work conservation).
func TestWorkConservationProperty(t *testing.T) {
	f := func(chunks []uint8) bool {
		b1 := newTest()
		b2 := newTest()
		tr1, _ := b1.Start("a", 700)
		tr2, _ := b2.Start("a", 700)
		var total float64
		for _, c := range chunks {
			d := float64(c) / 256 * 0.05
			b1.Advance(d)
			total += d
		}
		b2.Advance(total)
		return math.Abs(tr1.Remaining()-tr2.Remaining()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: contention monotonicity — more competitors never shortens
// the estimated latency.
func TestLatencyEstimateMonotoneProperty(t *testing.T) {
	b := newTest()
	f := func(size uint16, n uint8) bool {
		s := float64(size) + 1
		k := int(n%8) + 1
		return b.LatencyEstimate(s, k+1) >= b.LatencyEstimate(s, k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// AdvanceTicks over a SafeTicks span must be bit-for-bit identical to
// the same number of sequential Advance(tick) calls — the contract the
// simulation fast path depends on.
func TestAdvanceTicksMatchesSequentialAdvance(t *testing.T) {
	const tick = 100e-6
	mk := func() (*Bus, *Transfer, *Transfer) {
		b := New(Params{})
		t1, err := b.Start("a", 64<<10)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := b.Start("b", 48<<10)
		if err != nil {
			t.Fatal(err)
		}
		return b, t1, t2
	}
	seq, s1, s2 := mk()
	fast, f1, f2 := mk()
	safe := fast.SafeTicks(tick)
	if safe <= 0 {
		t.Fatalf("SafeTicks = %d at transfer start", safe)
	}
	for i := int64(0); i < safe; i++ {
		seq.Advance(tick)
	}
	fast.AdvanceTicks(tick, safe)
	if s1.Done() || s2.Done() || f1.Done() || f2.Done() {
		t.Fatal("a transfer completed within the safe window")
	}
	if s1.Remaining() != f1.Remaining() || s2.Remaining() != f2.Remaining() {
		t.Errorf("remaining diverged: %x/%x vs %x/%x",
			s1.Remaining(), s2.Remaining(), f1.Remaining(), f2.Remaining())
	}
	if seq.BusySeconds() != fast.BusySeconds() || seq.BytesMoved() != fast.BytesMoved() {
		t.Errorf("accounting diverged: busy %x vs %x, moved %x vs %x",
			seq.BusySeconds(), fast.BusySeconds(), seq.BytesMoved(), fast.BytesMoved())
	}
	// Driving both to completion tick-by-tick must finish on the same tick.
	ticksSeq, ticksFast := 0, 0
	for !s1.Done() || !s2.Done() {
		seq.Advance(tick)
		ticksSeq++
	}
	for !f1.Done() || !f2.Done() {
		fast.Advance(tick)
		ticksFast++
	}
	if ticksSeq != ticksFast {
		t.Errorf("completion shifted: %d vs %d ticks after the safe window", ticksSeq, ticksFast)
	}
}

func TestSafeTicksIdleAndEdge(t *testing.T) {
	b := New(Params{})
	if b.SafeTicks(100e-6) < 1<<30 {
		t.Error("idle bus reported a near horizon")
	}
	b.AdvanceTicks(100e-6, 1000) // must be a no-op when idle
	if b.BusySeconds() != 0 {
		t.Error("AdvanceTicks accrued busy time on an idle bus")
	}
	tr, err := b.Start("tiny", 1)
	if err != nil {
		t.Fatal(err)
	}
	// A nearly-finished transfer must force plain stepping (0 safe ticks
	// once remaining is within one tick of completion).
	for b.SafeTicks(100e-6) > 0 {
		b.AdvanceTicks(100e-6, 1)
	}
	if tr.Done() {
		t.Fatal("transfer completed during safe replay")
	}
	b.Advance(100e-6 * 3)
	if !tr.Done() {
		t.Error("transfer did not complete after the safe window")
	}
}
