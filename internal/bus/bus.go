// Package bus models the shared on-chip interconnect of the MPSoC: a
// single arbitration domain through which all inter-processor traffic
// (message queues in shared memory, migration state transfers) flows.
//
// The model is bandwidth-based with fair-share contention: n concurrent
// transfers each progress at bandwidth/n. This is what produces the
// paper's Figure 2 effect, where the task-recreation migration curve has
// a steeper slope than task-replication: recreation moves more bytes
// (code reload on top of state), so its transfers overlap more traffic
// and see more contention.
package bus

import (
	"errors"
	"fmt"
	"sort"
)

// Transfer is an in-flight bulk transfer on the bus.
type Transfer struct {
	id        int
	label     string
	remaining float64 // bytes left to move
	total     float64
	done      bool
}

// ID returns the transfer's unique handle.
func (t *Transfer) ID() int { return t.id }

// Label returns the diagnostic label.
func (t *Transfer) Label() string { return t.label }

// Done reports whether the transfer has completed.
func (t *Transfer) Done() bool { return t.done }

// Remaining returns bytes still to move.
func (t *Transfer) Remaining() float64 { return t.remaining }

// Progress returns completion in [0,1].
func (t *Transfer) Progress() float64 {
	if t.total == 0 {
		return 1
	}
	return 1 - t.remaining/t.total
}

// Bus is a fair-share shared interconnect. It is advanced by the
// simulation clock via Advance and is not safe for concurrent use.
type Bus struct {
	bandwidth float64 // bytes/second aggregate
	overheadS float64 // fixed arbitration/setup latency charged per transfer

	next    int
	active  []*Transfer
	busyAcc float64 // accumulated busy seconds
	moved   float64 // total bytes moved
	started int
}

// Params configures a Bus.
type Params struct {
	// BandwidthBytesPerSec is the aggregate bus bandwidth. The default
	// models a 32-bit bus at 133 MHz with protocol efficiency ~0.6:
	// ~320 MB/s... but the paper's platform moves 64 KB in tens of
	// milliseconds through the migration middleware (sync + copy via
	// shared memory), so the *effective* default here is 4 MB/s.
	BandwidthBytesPerSec float64
	// PerTransferOverheadS is the fixed latency charged to each
	// transfer before data moves (arbitration, daemon synchronisation).
	PerTransferOverheadS float64
}

// DefaultBandwidth is the effective middleware copy bandwidth used by
// the experiments (bytes/second). Migration copies are daemon-mediated
// (suspend, PCB bookkeeping, copy through the shared memory buffer,
// resume), so the effective rate is far below raw bus bandwidth: a
// 64 KB context freezes its task for ~120 ms (6 audio frames). This
// calibration makes an 11-frame queue the minimum that sustains
// migration at the paper's operating threshold (Section 5.2), as the
// paper reports.
const DefaultBandwidth = 550 << 10

// DefaultOverhead is the fixed per-transfer overhead (daemon signalling
// plus arbitration) in seconds.
const DefaultOverhead = 2e-3

// New creates a bus. Zero params take defaults.
func New(p Params) *Bus {
	b := &Bus{
		bandwidth: p.BandwidthBytesPerSec,
		overheadS: p.PerTransferOverheadS,
	}
	if b.bandwidth <= 0 {
		b.bandwidth = DefaultBandwidth
	}
	if b.overheadS < 0 {
		b.overheadS = 0
	} else if b.overheadS == 0 {
		b.overheadS = DefaultOverhead
	}
	return b
}

// ErrBadSize is returned for non-positive transfer sizes.
var ErrBadSize = errors.New("bus: transfer size must be positive")

// Start enqueues a transfer of size bytes and returns its handle.
// The fixed overhead is charged as extra bytes at current bandwidth so
// that a transfer's latency is overhead + size/share.
func (b *Bus) Start(label string, size float64) (*Transfer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("%w (got %g)", ErrBadSize, size)
	}
	t := &Transfer{
		id:        b.next,
		label:     label,
		remaining: size + b.overheadS*b.bandwidth,
		total:     size + b.overheadS*b.bandwidth,
	}
	b.next++
	b.started++
	b.active = append(b.active, t)
	return t, nil
}

// Advance progresses all active transfers by dt seconds of bus time,
// sharing bandwidth equally among active transfers (fair round-robin
// arbitration). Completed transfers are marked Done and removed.
func (b *Bus) Advance(dt float64) {
	if dt <= 0 || len(b.active) == 0 {
		return
	}
	remainingDT := dt
	for remainingDT > 1e-15 && len(b.active) > 0 {
		n := float64(len(b.active))
		share := b.bandwidth / n
		// Find the first transfer to finish within remainingDT.
		minT := remainingDT
		for _, t := range b.active {
			if need := t.remaining / share; need < minT {
				minT = need
			}
		}
		for _, t := range b.active {
			t.remaining -= share * minT
			b.moved += share * minT
		}
		b.busyAcc += minT
		// Compact the active list.
		out := b.active[:0]
		for _, t := range b.active {
			if t.remaining <= 1e-9 {
				t.remaining = 0
				t.done = true
			} else {
				out = append(out, t)
			}
		}
		b.active = out
		remainingDT -= minT
	}
}

// Active returns the number of in-flight transfers.
func (b *Bus) Active() int { return len(b.active) }

// SafeTicks returns how many consecutive Advance(tick) calls are
// guaranteed to complete no transfer, for the simulation fast path. One
// whole tick of margin absorbs the per-tick rounding of the remaining
// counters. Returns a huge bound when the bus is idle.
func (b *Bus) SafeTicks(tick float64) int64 {
	if len(b.active) == 0 {
		return int64(1) << 40
	}
	share := b.bandwidth / float64(len(b.active))
	perTick := share * tick
	if perTick <= 0 {
		return 0
	}
	safe := int64(1) << 40
	for _, t := range b.active {
		if s := int64(t.remaining/perTick) - 1; s < safe {
			safe = s
		}
	}
	if safe < 0 {
		return 0
	}
	return safe
}

// AdvanceTicks replays k event-free ticks of bus time, performing
// exactly the arithmetic k sequential Advance(tick) calls would —
// bit-for-bit, including accumulation order — under the caller's
// guarantee (via SafeTicks) that no transfer completes and none starts.
func (b *Bus) AdvanceTicks(tick float64, k int64) {
	if len(b.active) == 0 || k <= 0 {
		return
	}
	share := b.bandwidth / float64(len(b.active))
	for ; k > 0; k-- {
		for _, t := range b.active {
			t.remaining -= share * tick
			b.moved += share * tick
		}
		b.busyAcc += tick
	}
}

// Bandwidth returns the aggregate bandwidth in bytes/second.
func (b *Bus) Bandwidth() float64 { return b.bandwidth }

// Utilization returns the fraction of elapsed seconds the bus was busy,
// given the total elapsed simulation time.
func (b *Bus) Utilization(elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := b.busyAcc / elapsed
	if u > 1 {
		u = 1
	}
	return u
}

// BusySeconds returns cumulative seconds the bus spent moving data.
func (b *Bus) BusySeconds() float64 { return b.busyAcc }

// BytesMoved returns total payload+overhead bytes moved so far.
func (b *Bus) BytesMoved() float64 { return b.moved }

// TransfersStarted returns the number of transfers ever started.
func (b *Bus) TransfersStarted() int { return b.started }

// LatencyEstimate returns the time a transfer of size bytes would take
// if it ran with the given number of concurrent competitors (including
// itself). Used by migration-cost estimators (paper Section 3.1: the
// policy filters requests on estimated cost).
func (b *Bus) LatencyEstimate(size float64, competitors int) float64 {
	if competitors < 1 {
		competitors = 1
	}
	share := b.bandwidth / float64(competitors)
	return b.overheadS + size/share
}

// ActiveLabels returns the labels of in-flight transfers, sorted, for
// diagnostics.
func (b *Bus) ActiveLabels() []string {
	out := make([]string, 0, len(b.active))
	for _, t := range b.active {
		out = append(out, t.label)
	}
	sort.Strings(out)
	return out
}
