package stream

import (
	"math"
	"testing"
)

func TestBuildVideoStructure(t *testing.T) {
	g, err := BuildVideo(SDRConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 6 {
		t.Fatalf("tasks = %d", g.NumTasks())
	}
	if g.NumQueues() != 8 {
		t.Fatalf("queues = %d", g.NumQueues())
	}
	for _, name := range VideoTaskNames {
		ti, ok := g.TaskIndex(name)
		if !ok {
			t.Fatalf("task %s missing", name)
		}
		if g.Task(ti).Core != VideoMapping[name] {
			t.Errorf("%s on core %d", name, g.Task(ti).Core)
		}
	}
	// The first-fit mapping is intentionally unbalanced but feasible:
	// core 1 carries the pipeline front at 533 MHz, core 3 idles.
	sum := map[int]float64{}
	for _, tk := range g.Tasks() {
		sum[tk.Core] += tk.FSE
	}
	if sum[0] <= 0.5 {
		t.Errorf("core1 FSE %.2f; mapping no longer unbalanced", sum[0])
	}
	if sum[0] > 1 {
		t.Errorf("core1 FSE %.2f infeasible", sum[0])
	}
	if math.Abs(sum[0]+sum[1]+sum[2]-1.26) > 1e-9 {
		t.Errorf("total FSE = %g", sum[0]+sum[1]+sum[2])
	}
}

func TestVideoFlowsEndToEnd(t *testing.T) {
	g, err := BuildVideo(SDRConfig{})
	if err != nil {
		t.Fatal(err)
	}
	idealRun(t, g, 3.0)
	if g.SinkStats().Misses != 0 {
		t.Errorf("%d misses on ideal CPU", g.SinkStats().Misses)
	}
	// 25 fps: ~75 frames in 3 s.
	if got := g.SinkStats().Consumed; got < 50 {
		t.Errorf("consumed %d frames", got)
	}
	mc, _ := g.TaskIndex("MC")
	if g.Task(mc).FramesCompleted == 0 {
		t.Error("MC never fired")
	}
}

func TestVideoSplitJoinSemantics(t *testing.T) {
	g, _ := BuildVideo(SDRConfig{})
	mc, _ := g.TaskIndex("MC")
	if got := len(g.Inputs(mc)); got != 2 {
		t.Errorf("MC inputs = %d, want 2 (join)", got)
	}
	iq, _ := g.TaskIndex("IQ")
	if got := len(g.Outputs(iq)); got != 2 {
		t.Errorf("IQ outputs = %d, want 2 (broadcast)", got)
	}
}
