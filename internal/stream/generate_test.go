package stream

import (
	"math"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(GenConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumTasks() != b.NumTasks() {
		t.Fatalf("task counts differ: %d vs %d", a.NumTasks(), b.NumTasks())
	}
	for i := 0; i < a.NumTasks(); i++ {
		if a.Task(i).Name != b.Task(i).Name || a.Task(i).FSE != b.Task(i).FSE {
			t.Errorf("task %d differs across same-seed generations", i)
		}
	}
	c, err := Generate(GenConfig{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := c.NumTasks() == a.NumTasks()
	if same {
		for i := 0; i < a.NumTasks(); i++ {
			if a.Task(i).FSE != c.Task(i).FSE {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestGenerateBudgetRespected(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g, err := Generate(GenConfig{Seed: seed, TotalFSE: 1.4})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, tk := range g.Tasks() {
			if tk.FSE <= 0 || tk.FSE > 1 {
				t.Errorf("seed %d: task %s FSE %g out of range", seed, tk.Name, tk.FSE)
			}
			if tk.CyclesPerFrame <= 0 {
				t.Errorf("seed %d: task %s has no work", seed, tk.Name)
			}
			sum += tk.FSE
		}
		if math.Abs(sum-1.4) > 0.02 {
			t.Errorf("seed %d: total FSE %g, want 1.4", seed, sum)
		}
	}
}

func TestGenerateRejectsTinyBudget(t *testing.T) {
	if _, err := Generate(GenConfig{Seed: 1, TotalFSE: 0.01}); err == nil {
		t.Error("accepted infeasible budget")
	}
}

// Generated graphs must stream end to end on an ideal processor with no
// misses and no drops, for many seeds.
func TestGeneratedGraphsFlow(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g, err := Generate(GenConfig{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		idealRun(t, g, 2.0)
		if got := g.SinkStats().Misses; got != 0 {
			t.Errorf("seed %d: %d misses on ideal CPU", seed, got)
		}
		if got := g.SourceStats().Dropped; got != 0 {
			t.Errorf("seed %d: %d source drops on ideal CPU", seed, got)
		}
		if g.SinkStats().Consumed < 50 {
			t.Errorf("seed %d: only %d frames consumed", seed, g.SinkStats().Consumed)
		}
	}
}

func TestGenerateStageStructure(t *testing.T) {
	g, err := Generate(GenConfig{Seed: 7, Stages: 5, MaxWidth: 3})
	if err != nil {
		t.Fatal(err)
	}
	// At least the 5 width-1 stage heads exist.
	if g.NumTasks() < 5 {
		t.Errorf("tasks = %d, want >= 5", g.NumTasks())
	}
	// All tasks unplaced until a mapping runs.
	for _, tk := range g.Tasks() {
		if tk.Core != -1 {
			t.Errorf("task %s pre-placed on core %d", tk.Name, tk.Core)
		}
	}
}
