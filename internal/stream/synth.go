package stream

import (
	"fmt"
	"math/rand"

	"thermbal/internal/task"
)

// This file provides the deterministic synthetic graph families behind
// the scenario registry: deep pipelines of parameterized depth and
// fan-out/fan-in graphs of parameterized width. Unlike Generate, which
// randomizes topology, these builders fix the topology and (optionally)
// seed only the load profile, so one scenario name always denotes one
// exact graph.

// PipelineConfig parameterises BuildPipeline.
type PipelineConfig struct {
	// Depth is the number of filter stages between source and sink
	// (>= 1).
	Depth int
	// TotalFSE is the load budget split across the stages (default
	// 0.35 per core-equivalent: 1.4 like the SDR total).
	TotalFSE float64
	// Seed, when non-zero, skews the per-stage load shares with a
	// seeded PRNG; zero gives every stage an equal share.
	Seed int64
	// QueueCap, FramePeriod, FMaxHz as in SDRConfig.
	QueueCap    int
	FramePeriod float64
	FMaxHz      float64
}

// BuildPipeline constructs a linear pipeline SRC → P1 → … → Pn → SINK.
// Deep pipelines stress the policy's freeze filtering: every stage is on
// the critical path, so a single long migration stalls the whole chain.
// Tasks are left unplaced (Core = -1); map them before simulation.
func BuildPipeline(cfg PipelineConfig) (*Graph, error) {
	if cfg.Depth < 1 {
		return nil, fmt.Errorf("stream: pipeline depth %d < 1", cfg.Depth)
	}
	if cfg.TotalFSE <= 0 {
		cfg.TotalFSE = 1.4
	}
	sc := SDRConfig{QueueCap: cfg.QueueCap, FramePeriod: cfg.FramePeriod, FMaxHz: cfg.FMaxHz}
	sc.fill()

	loads := loadShares(cfg.Depth, cfg.TotalFSE, cfg.Seed)
	g := NewGraph()
	prev, err := g.AddQueue("p:in", sc.QueueCap)
	if err != nil {
		return nil, err
	}
	head := prev
	for i := 0; i < cfg.Depth; i++ {
		t, err := task.New(fmt.Sprintf("P%d", i+1), loads[i])
		if err != nil {
			return nil, err
		}
		t.BindWork(sc.FMaxHz, sc.FramePeriod)
		out, err := g.AddQueue(fmt.Sprintf("p:%d-out", i+1), sc.QueueCap)
		if err != nil {
			return nil, err
		}
		if _, err := g.AddTask(t, []int{prev}, []int{out}); err != nil {
			return nil, err
		}
		prev = out
	}
	if err := g.SetSource(head, sc.FramePeriod); err != nil {
		return nil, err
	}
	if err := g.SetSink(prev, sc.FramePeriod, sc.SinkPrefill); err != nil {
		return nil, err
	}
	if err := g.Finalize(); err != nil {
		return nil, err
	}
	return g, nil
}

// FanConfig parameterises BuildFanOut.
type FanConfig struct {
	// Width is the number of parallel worker branches (>= 2).
	Width int
	// TotalFSE is the load budget: 10 % each to the split and join
	// stages, the rest shared by the workers (default 1.4).
	TotalFSE float64
	// Seed, when non-zero, skews the worker load shares; zero makes the
	// branches perfectly symmetric.
	Seed int64
	// QueueCap, FramePeriod, FMaxHz as in SDRConfig.
	QueueCap    int
	FramePeriod float64
	FMaxHz      float64
}

// BuildFanOut constructs SRC → SPLIT → {W1 … Wn} → JOIN → SINK: the
// split broadcasts each frame to every worker and the join needs one
// frame from each (the SDR's equalizer structure, widened). Wide
// fan-outs stress candidate selection: many same-load tasks make the
// pairing space large and symmetric. Tasks are left unplaced.
func BuildFanOut(cfg FanConfig) (*Graph, error) {
	if cfg.Width < 2 {
		return nil, fmt.Errorf("stream: fan-out width %d < 2", cfg.Width)
	}
	if cfg.TotalFSE <= 0 {
		cfg.TotalFSE = 1.4
	}
	sc := SDRConfig{QueueCap: cfg.QueueCap, FramePeriod: cfg.FramePeriod, FMaxHz: cfg.FMaxHz}
	sc.fill()

	edgeFSE := 0.10 * cfg.TotalFSE
	workerLoads := loadShares(cfg.Width, cfg.TotalFSE-2*edgeFSE, cfg.Seed)

	g := NewGraph()
	mkQ := func(name string) int {
		qi, err := g.AddQueue(name, sc.QueueCap)
		if err != nil {
			panic(err) // generated names cannot collide
		}
		return qi
	}
	qIn := mkQ("f:in")
	branchQ := make([]int, cfg.Width)
	joinQ := make([]int, cfg.Width)
	for i := range branchQ {
		branchQ[i] = mkQ(fmt.Sprintf("f:split-w%d", i+1))
		joinQ[i] = mkQ(fmt.Sprintf("f:w%d-join", i+1))
	}
	qOut := mkQ("f:out")

	mk := func(name string, fse float64, in, out []int) error {
		t, err := task.New(name, fse)
		if err != nil {
			return err
		}
		t.BindWork(sc.FMaxHz, sc.FramePeriod)
		_, err = g.AddTask(t, in, out)
		return err
	}
	if err := mk("SPLIT", edgeFSE, []int{qIn}, branchQ); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Width; i++ {
		if err := mk(fmt.Sprintf("W%d", i+1), workerLoads[i], []int{branchQ[i]}, []int{joinQ[i]}); err != nil {
			return nil, err
		}
	}
	if err := mk("JOIN", edgeFSE, joinQ, []int{qOut}); err != nil {
		return nil, err
	}

	if err := g.SetSource(qIn, sc.FramePeriod); err != nil {
		return nil, err
	}
	if err := g.SetSink(qOut, sc.FramePeriod, sc.SinkPrefill); err != nil {
		return nil, err
	}
	if err := g.Finalize(); err != nil {
		return nil, err
	}
	return g, nil
}

// loadShares splits budget across n tasks: equal shares when seed is 0,
// otherwise seeded random proportions with a 2 % floor per task. Each
// share is clamped to 1 (one core at fmax).
func loadShares(n int, budget float64, seed int64) []float64 {
	out := make([]float64, n)
	if seed == 0 {
		for i := range out {
			out[i] = min(budget/float64(n), 1)
		}
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	weights := make([]float64, n)
	var wsum float64
	for i := range weights {
		weights[i] = 0.05 + rng.Float64()
		wsum += weights[i]
	}
	const floor = 0.02
	avail := budget - floor*float64(n)
	if avail < 0 {
		avail = 0
	}
	for i, w := range weights {
		out[i] = min(floor+avail*w/wsum, 1)
	}
	return out
}
