// Package stream implements the streaming application model of the
// paper: a graph of tasks connected by bounded message queues in shared
// memory (Section 5.1). A real-time source paces frames in, tasks fire
// when every input queue holds a frame and every output queue has room,
// and a real-time sink drains frames on a deadline schedule — an empty
// sink queue at a deadline is a frame miss, the paper's QoS metric.
//
// The package also ships the paper's benchmark: the Software Defined FM
// Radio pipeline (LPF → DEMOD → BPF1..3 → Σ) with the Table 2 loads.
package stream

import (
	"fmt"
)

// Frame is one unit of streaming data (e.g. one audio frame).
type Frame struct {
	// ID is the sequence number assigned by the source.
	ID int64
	// Created is the simulation time the source emitted the frame.
	Created float64
}

// Queue is a bounded FIFO message queue between two pipeline stages,
// living in shared memory on the real platform.
type Queue struct {
	name string
	cap  int
	buf  []Frame

	// occupancy statistics
	pushes, pops int64
	occSum       float64 // sum of Len() sampled at each push/pop
	occSamples   int64
	maxOcc       int
	overruns     int64 // pushes rejected because the queue was full
}

// NewQueue creates a queue with the given capacity (must be positive).
func NewQueue(name string, capacity int) (*Queue, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("stream: queue %q capacity %d must be positive", name, capacity)
	}
	return &Queue{name: name, cap: capacity}, nil
}

// Name returns the queue name.
func (q *Queue) Name() string { return q.name }

// Cap returns the capacity.
func (q *Queue) Cap() int { return q.cap }

// Len returns the number of buffered frames.
func (q *Queue) Len() int { return len(q.buf) }

// Empty reports whether the queue holds no frames.
func (q *Queue) Empty() bool { return len(q.buf) == 0 }

// Full reports whether the queue is at capacity.
func (q *Queue) Full() bool { return len(q.buf) >= q.cap }

// Push appends a frame; it returns false (and counts an overrun) when
// the queue is full.
func (q *Queue) Push(f Frame) bool {
	if q.Full() {
		q.overruns++
		return false
	}
	q.buf = append(q.buf, f)
	q.pushes++
	q.sampleOcc()
	return true
}

// Pop removes and returns the oldest frame; ok is false when empty.
func (q *Queue) Pop() (f Frame, ok bool) {
	if len(q.buf) == 0 {
		return Frame{}, false
	}
	f = q.buf[0]
	// Shift rather than reslice to keep the backing array bounded.
	copy(q.buf, q.buf[1:])
	q.buf = q.buf[:len(q.buf)-1]
	q.pops++
	q.sampleOcc()
	return f, true
}

// Peek returns the oldest frame without removing it.
func (q *Queue) Peek() (f Frame, ok bool) {
	if len(q.buf) == 0 {
		return Frame{}, false
	}
	return q.buf[0], true
}

func (q *Queue) sampleOcc() {
	q.occSum += float64(len(q.buf))
	q.occSamples++
	if len(q.buf) > q.maxOcc {
		q.maxOcc = len(q.buf)
	}
}

// Stats summarises queue behaviour over a run.
type QueueStats struct {
	Name      string
	Cap       int
	Pushes    int64
	Pops      int64
	Overruns  int64
	MeanLevel float64
	MaxLevel  int
}

// Stats returns the queue statistics so far.
func (q *Queue) Stats() QueueStats {
	s := QueueStats{
		Name:     q.name,
		Cap:      q.cap,
		Pushes:   q.pushes,
		Pops:     q.pops,
		Overruns: q.overruns,
		MaxLevel: q.maxOcc,
	}
	if q.occSamples > 0 {
		s.MeanLevel = q.occSum / float64(q.occSamples)
	}
	return s
}

// Reset clears contents and statistics.
func (q *Queue) Reset() {
	q.buf = q.buf[:0]
	q.pushes, q.pops, q.overruns = 0, 0, 0
	q.occSum, q.occSamples = 0, 0
	q.maxOcc = 0
}
