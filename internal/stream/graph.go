package stream

import (
	"errors"
	"fmt"
	"math"

	"thermbal/internal/task"
)

// Graph is a streaming application: tasks wired by bounded queues, plus
// one paced source and one deadline-driven sink.
type Graph struct {
	queues []*Queue
	qIndex map[string]int

	tasks []*task.Task
	// inputs[i], outputs[i] are queue indices of task i.
	inputs  [][]int
	outputs [][]int
	tIndex  map[string]int

	source Source
	sink   Sink

	// pendingFrame tracks the frame identity each in-flight task
	// carries between BeginFrame and FinishFrame. Sized by Finalize.
	pendingFrame []Frame
}

// Source paces frames into the head queue at a fixed real-time rate
// (the digitalised PCM radio samples of the SDR benchmark). Emission
// times are derived as base + attempt*period rather than accumulated,
// so the schedule carries no floating-point drift over long runs.
type Source struct {
	queue   int
	period  float64
	base    float64 // time of emission 0, set when pacing starts
	next    int64   // emissions attempted so far (pushed or dropped)
	started bool

	// Emitted counts frames pushed; Dropped counts frames lost to a
	// full head queue (input overrun).
	Emitted int64
	Dropped int64
}

// nextEmissionAt is the scheduled time of the next emission attempt.
func (s *Source) nextEmissionAt() float64 {
	return s.base + float64(s.next)*s.period
}

// Sink drains the tail queue on a deadline schedule: one frame must be
// available every period once the prefill threshold has been reached
// (audio playback). A missing frame is a deadline miss — the paper's
// QoS degradation metric.
type Sink struct {
	queue   int
	period  float64
	prefill int
	playing bool
	base    float64 // time playback started; deadline k is base+(k+1)*period
	fired   int64   // deadlines elapsed since playback started

	// Consumed counts frames played; Misses counts deadlines with an
	// empty queue.
	Consumed int64
	Misses   int64
	// LatencySum accumulates (consume time - frame creation) for mean
	// pipeline latency.
	LatencySum float64
}

// nextDeadlineAt is the next deadline, derived from the deadline count
// so the schedule carries no floating-point drift.
func (k *Sink) nextDeadlineAt() float64 {
	return k.base + float64(k.fired+1)*k.period
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		qIndex: make(map[string]int),
		tIndex: make(map[string]int),
	}
}

// AddQueue creates and registers a queue, returning its index.
func (g *Graph) AddQueue(name string, capacity int) (int, error) {
	if _, dup := g.qIndex[name]; dup {
		return -1, fmt.Errorf("stream: duplicate queue %q", name)
	}
	q, err := NewQueue(name, capacity)
	if err != nil {
		return -1, err
	}
	g.qIndex[name] = len(g.queues)
	g.queues = append(g.queues, q)
	return len(g.queues) - 1, nil
}

// AddTask registers a task with its input and output queue indices.
// A task fires by consuming one frame from every input and, when the
// frame's work completes, producing one frame into every output.
func (g *Graph) AddTask(t *task.Task, inputs, outputs []int) (int, error) {
	if _, dup := g.tIndex[t.Name]; dup {
		return -1, fmt.Errorf("stream: duplicate task %q", t.Name)
	}
	for _, qi := range append(append([]int(nil), inputs...), outputs...) {
		if qi < 0 || qi >= len(g.queues) {
			return -1, fmt.Errorf("stream: task %q references unknown queue %d", t.Name, qi)
		}
	}
	if len(inputs) == 0 && len(outputs) == 0 {
		return -1, fmt.Errorf("stream: task %q is disconnected", t.Name)
	}
	g.tIndex[t.Name] = len(g.tasks)
	g.tasks = append(g.tasks, t)
	g.inputs = append(g.inputs, append([]int(nil), inputs...))
	g.outputs = append(g.outputs, append([]int(nil), outputs...))
	return len(g.tasks) - 1, nil
}

// SetSource attaches the paced source to queue qi with the given period.
func (g *Graph) SetSource(qi int, period float64) error {
	if qi < 0 || qi >= len(g.queues) {
		return fmt.Errorf("stream: source queue %d unknown", qi)
	}
	if period <= 0 {
		return errors.New("stream: source period must be positive")
	}
	g.source = Source{queue: qi, period: period}
	return nil
}

// SetSink attaches the deadline sink to queue qi. Playback starts once
// the queue first reaches prefill frames; after that one frame is due
// every period.
func (g *Graph) SetSink(qi int, period float64, prefill int) error {
	if qi < 0 || qi >= len(g.queues) {
		return fmt.Errorf("stream: sink queue %d unknown", qi)
	}
	if period <= 0 {
		return errors.New("stream: sink period must be positive")
	}
	if prefill < 1 {
		return errors.New("stream: sink prefill must be >= 1")
	}
	g.sink = Sink{queue: qi, period: period, prefill: prefill}
	return nil
}

// NumTasks returns the number of registered tasks.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// Task returns task i.
func (g *Graph) Task(i int) *task.Task { return g.tasks[i] }

// Tasks returns the underlying task slice (shared, not a copy).
func (g *Graph) Tasks() []*task.Task { return g.tasks }

// TaskIndex returns the index of the named task.
func (g *Graph) TaskIndex(name string) (int, bool) {
	i, ok := g.tIndex[name]
	return i, ok
}

// Queue returns queue i.
func (g *Graph) Queue(i int) *Queue { return g.queues[i] }

// NumQueues returns the queue count.
func (g *Graph) NumQueues() int { return len(g.queues) }

// QueueIndex returns the index of the named queue.
func (g *Graph) QueueIndex(name string) (int, bool) {
	i, ok := g.qIndex[name]
	return i, ok
}

// CanFire reports whether task i may begin a frame: every input queue
// non-empty and every output queue with room (space is reserved at fire
// time so a completed frame never blocks).
func (g *Graph) CanFire(i int) bool {
	if g.tasks[i].InFlight || !g.tasks[i].Runnable() {
		return false
	}
	for _, qi := range g.inputs[i] {
		if g.queues[qi].Empty() {
			return false
		}
	}
	for _, qi := range g.outputs[i] {
		if g.queues[qi].Full() {
			return false
		}
	}
	return true
}

// BeginFrame consumes one frame from every input of task i and starts
// the task's frame work. The caller must have checked CanFire.
func (g *Graph) BeginFrame(i int) error {
	if !g.CanFire(i) {
		return fmt.Errorf("stream: task %q cannot fire", g.tasks[i].Name)
	}
	var oldest Frame
	first := true
	for _, qi := range g.inputs[i] {
		f, ok := g.queues[qi].Pop()
		if !ok {
			// CanFire guaranteed non-empty; this is a graph bug.
			panic(fmt.Sprintf("stream: queue %q empty during BeginFrame", g.queues[qi].Name()))
		}
		if first || f.Created < oldest.Created {
			oldest = f
			first = false
		}
	}
	if err := g.tasks[i].StartFrame(); err != nil {
		return err
	}
	// Remember frame identity for propagation on completion.
	g.pendingFrame[i] = oldest
	return nil
}

// FinishFrame propagates task i's completed frame into every output
// queue. The engine calls it when Task.Execute reports completion.
func (g *Graph) FinishFrame(i int) {
	f := g.pendingFrame[i]
	for _, qi := range g.outputs[i] {
		if !g.queues[qi].Push(f) {
			// Space was reserved by CanFire at begin time, but another
			// producer sharing the queue may have raced us within the
			// tick; count as overrun (already counted by Push).
			continue
		}
	}
}

// Finalize validates the graph and sizes internal buffers. It must be
// called once wiring is complete, before execution.
func (g *Graph) Finalize() error {
	if len(g.tasks) == 0 {
		return errors.New("stream: no tasks")
	}
	if g.source.period == 0 {
		return errors.New("stream: no source attached")
	}
	if g.sink.period == 0 {
		return errors.New("stream: no sink attached")
	}
	// Every queue needs at least one producer (task output or source)
	// and one consumer (task input or sink).
	prod := make([]int, len(g.queues))
	cons := make([]int, len(g.queues))
	prod[g.source.queue]++
	cons[g.sink.queue]++
	for i := range g.tasks {
		for _, qi := range g.inputs[i] {
			cons[qi]++
		}
		for _, qi := range g.outputs[i] {
			prod[qi]++
		}
	}
	for qi, q := range g.queues {
		if prod[qi] == 0 {
			return fmt.Errorf("stream: queue %q has no producer", q.Name())
		}
		if cons[qi] == 0 {
			return fmt.Errorf("stream: queue %q has no consumer", q.Name())
		}
	}
	g.pendingFrame = make([]Frame, len(g.tasks))
	return nil
}

// AdvanceSource emits frames due by time now into the head queue.
func (g *Graph) AdvanceSource(now float64) {
	s := &g.source
	if !s.started {
		s.started = true
		s.base = now
	}
	for now >= s.nextEmissionAt()-1e-12 {
		f := Frame{ID: s.next, Created: s.nextEmissionAt()}
		if g.queues[s.queue].Push(f) {
			s.Emitted++
		} else {
			s.Dropped++
		}
		s.next++
	}
}

// AdvanceSink consumes frames due by time now and records misses.
func (g *Graph) AdvanceSink(now float64) {
	k := &g.sink
	q := g.queues[k.queue]
	if !k.playing {
		if q.Len() >= k.prefill {
			k.playing = true
			k.base = now
		}
		return
	}
	for now >= k.nextDeadlineAt()-1e-12 {
		if f, ok := q.Pop(); ok {
			k.Consumed++
			k.LatencySum += k.nextDeadlineAt() - f.Created
		} else {
			k.Misses++
		}
		k.fired++
	}
}

// NextSourceEmissionAt returns the absolute time of the next source
// emission, for the engine's event horizon. Before pacing has started
// the source emits on the very next advance, reported as -Inf.
func (g *Graph) NextSourceEmissionAt() float64 {
	if !g.source.started {
		return math.Inf(-1)
	}
	return g.source.nextEmissionAt()
}

// NextSinkDeadlineAt returns the absolute time of the next sink
// deadline. A sink still prefilling returns +Inf (its queue only
// changes at other events); a sink about to start playback returns
// -Inf (imminent).
func (g *Graph) NextSinkDeadlineAt() float64 {
	k := &g.sink
	if !k.playing {
		if g.queues[k.queue].Len() >= k.prefill {
			return math.Inf(-1)
		}
		return math.Inf(1)
	}
	return k.nextDeadlineAt()
}

// SourceStats returns a copy of the source counters.
func (g *Graph) SourceStats() Source { return g.source }

// SinkStats returns a copy of the sink counters.
func (g *Graph) SinkStats() Sink { return g.sink }

// ResetStreamState clears all queues, source/sink schedules and per-task
// runtime accounting, keeping the wiring (for back-to-back experiments).
func (g *Graph) ResetStreamState() {
	for _, q := range g.queues {
		q.Reset()
	}
	g.source.base, g.source.next, g.source.started = 0, 0, false
	g.source.Emitted, g.source.Dropped = 0, 0
	g.sink.playing, g.sink.base, g.sink.fired = false, 0, 0
	g.sink.Consumed, g.sink.Misses, g.sink.LatencySum = 0, 0, 0
	for i, t := range g.tasks {
		t.InFlight = false
		t.Progress = 0
		t.FramesCompleted = 0
		t.BusyCycles = 0
		t.State = task.Ready
		g.pendingFrame[i] = Frame{}
	}
}

// SourceConfig returns the attached source's queue index and period,
// for deriving a declarative spec from a built graph.
func (g *Graph) SourceConfig() (queue int, periodS float64) {
	return g.source.queue, g.source.period
}

// SinkConfig returns the attached sink's queue index, period and
// prefill threshold.
func (g *Graph) SinkConfig() (queue int, periodS float64, prefill int) {
	return g.sink.queue, g.sink.period, g.sink.prefill
}

// Inputs returns the input queue indices of task i (shared slice).
func (g *Graph) Inputs(i int) []int { return g.inputs[i] }

// Outputs returns the output queue indices of task i (shared slice).
func (g *Graph) Outputs(i int) []int { return g.outputs[i] }
