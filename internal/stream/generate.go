package stream

import (
	"fmt"
	"math/rand"

	"thermbal/internal/task"
)

// This file provides a synthetic streaming-workload generator. The SDR
// radio is the paper's benchmark, but it is "representative of a large
// class of streaming multimedia applications" (Section 5.1); the
// generator produces members of that class — split/join pipelines with
// randomized loads — so the policies can be exercised on workloads the
// paper never saw. Generation is fully seeded for reproducibility.

// GenConfig parameterises workload generation.
type GenConfig struct {
	// Seed drives the PRNG (same seed, same workload).
	Seed int64
	// Stages is the pipeline depth excluding source and sink
	// (default 4, like the SDR graph).
	Stages int
	// MaxWidth is the maximum parallel branches of a split stage
	// (default 3). Width 1 stages are plain pipeline filters.
	MaxWidth int
	// TotalFSE is the summed full-speed-equivalent load budget across
	// all generated tasks (default 1.4, the SDR total).
	TotalFSE float64
	// QueueCap is the inter-task queue capacity (default 11).
	QueueCap int
	// FramePeriod is the source/sink period (default 20 ms).
	FramePeriod float64
	// FMaxHz derives cycles/frame from FSE (default 533 MHz).
	FMaxHz float64
}

func (c *GenConfig) fill() {
	if c.Stages <= 0 {
		c.Stages = 4
	}
	if c.MaxWidth <= 0 {
		c.MaxWidth = 3
	}
	if c.TotalFSE <= 0 {
		c.TotalFSE = 1.4
	}
	if c.QueueCap <= 0 {
		c.QueueCap = DefaultQueueCap
	}
	if c.FramePeriod <= 0 {
		c.FramePeriod = DefaultFramePeriod
	}
	if c.FMaxHz <= 0 {
		c.FMaxHz = 533e6
	}
}

// Generate builds a randomized split/join streaming graph. Every stage
// is either a single filter or a parallel split whose branches are
// joined by the next stage's first task. Task loads partition the
// TotalFSE budget with random proportions (each task gets at least 2 %).
// Tasks are left unplaced (Core = -1); use a mapping helper or set
// placements before simulation.
func Generate(cfg GenConfig) (*Graph, error) {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := NewGraph()

	// Decide the stage widths first so load shares can be drawn for
	// every task at once.
	widths := make([]int, cfg.Stages)
	total := 0
	for i := range widths {
		// First and last stages are joins/sources of width 1 to keep
		// the graph a single-entry, single-exit pipeline.
		if i == 0 || i == cfg.Stages-1 {
			widths[i] = 1
		} else {
			widths[i] = 1 + rng.Intn(cfg.MaxWidth)
		}
		total += widths[i]
	}

	// Random load partition: draw positive weights, normalise to the
	// budget with a 2% floor per task.
	weights := make([]float64, total)
	var wsum float64
	for i := range weights {
		weights[i] = 0.05 + rng.Float64()
		wsum += weights[i]
	}
	floor := 0.02
	avail := cfg.TotalFSE - floor*float64(total)
	if avail <= 0 {
		return nil, fmt.Errorf("stream: TotalFSE %.2f too small for %d tasks", cfg.TotalFSE, total)
	}
	loads := make([]float64, total)
	for i, w := range weights {
		loads[i] = floor + avail*w/wsum
		if loads[i] > 1 {
			loads[i] = 1 // a single task cannot exceed one core at fmax
		}
	}

	qIn, err := g.AddQueue("gq:in", cfg.QueueCap)
	if err != nil {
		return nil, err
	}
	prevOut := []int{qIn} // queues feeding the current stage
	ti := 0
	for stage, width := range widths {
		stageOut := make([]int, 0, width)
		for br := 0; br < width; br++ {
			name := fmt.Sprintf("S%dT%d", stage+1, br+1)
			tk, err := task.New(name, loads[ti])
			if err != nil {
				return nil, err
			}
			tk.BindWork(cfg.FMaxHz, cfg.FramePeriod)
			// Inputs: the first task of a stage joins all previous
			// outputs; other branches tap a dedicated queue fed by a
			// broadcast from the previous stage's first task. To keep
			// wiring simple and rates consistent we use: stage joins
			// everything from the previous stage, then broadcasts to
			// its own branches via per-branch queues.
			var ins []int
			if br == 0 {
				ins = prevOut
			} else {
				qi, err := g.AddQueue(fmt.Sprintf("gq:s%d-br%d", stage+1, br+1), cfg.QueueCap)
				if err != nil {
					return nil, err
				}
				// The branch queue is fed by this stage's first task.
				first := len(g.tasks) - br // index of S<stage>T1
				g.outputs[first] = append(g.outputs[first], qi)
				ins = []int{qi}
			}
			qo, err := g.AddQueue(fmt.Sprintf("gq:s%dt%d-out", stage+1, br+1), cfg.QueueCap)
			if err != nil {
				return nil, err
			}
			if _, err := g.AddTask(tk, ins, []int{qo}); err != nil {
				return nil, err
			}
			stageOut = append(stageOut, qo)
			ti++
		}
		prevOut = stageOut
	}

	// Sink joins the last stage's outputs; if the last stage has width
	// one (guaranteed above) there is exactly one tail queue.
	if err := g.SetSource(qIn, cfg.FramePeriod); err != nil {
		return nil, err
	}
	if err := g.SetSink(prevOut[0], cfg.FramePeriod, (cfg.QueueCap+1)/2); err != nil {
		return nil, err
	}
	if err := g.Finalize(); err != nil {
		return nil, err
	}
	return g, nil
}
