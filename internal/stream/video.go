package stream

import "thermbal/internal/task"

// A second concrete benchmark from the streaming multimedia class the
// paper targets (Section 5.1 calls the SDR "representative of a large
// class of streaming multimedia applications"): a software video
// decoder pipeline in the style of an MPEG-2/H.263 decoder:
//
//	SRC → [VLD] → [IQ] → { [IDCT1], [IDCT2] } → [MC] → [OUT] → SINK
//
// Variable-length decoding (VLD) feeds inverse quantisation (IQ); the
// inverse DCT is data-parallel across two workers; motion compensation
// (MC) joins them and the output stage (OUT) colour-converts. Loads are
// representative of software decoders on 533 MHz-class RISC cores at
// 25 frames/s.
const (
	FSEVLD   = 0.22
	FSEIQ    = 0.10
	FSEIDCT1 = 0.26
	FSEIDCT2 = 0.26
	FSEMC    = 0.30
	FSEOut   = 0.12

	// VideoFramePeriod is 25 fps.
	VideoFramePeriod = 0.040
)

// VideoTaskNames lists the decoder tasks in pipeline order.
var VideoTaskNames = []string{"VLD", "IQ", "IDCT1", "IDCT2", "MC", "OUT"}

// VideoMapping is a first-fit-by-pipeline-order 3-core placement, the
// kind a developer writes before profiling: the front of the pipeline
// piles onto core 1 (FSE 0.78 → 533 MHz) while core 3 idles at 133 MHz
// (FSE 0.12). It is deliberately thermally unbalanced — the situation
// the balancing policy is for. Use policy.BalanceMapping for an
// energy-balanced placement instead.
var VideoMapping = map[string]int{
	"VLD":   0,
	"IDCT1": 0,
	"MC":    0,
	"IQ":    1,
	"IDCT2": 1,
	"OUT":   2,
}

// BuildVideo constructs the video decoder graph. The cfg fields have
// the same meaning as for BuildSDR; FramePeriod defaults to 40 ms.
func BuildVideo(cfg SDRConfig) (*Graph, error) {
	if cfg.FramePeriod <= 0 {
		cfg.FramePeriod = VideoFramePeriod
	}
	cfg.fill()
	g := NewGraph()

	mkQ := func(name string) int {
		qi, err := g.AddQueue(name, cfg.QueueCap)
		if err != nil {
			panic(err) // static names cannot collide
		}
		return qi
	}
	qIn := mkQ("v:src-vld")
	qVldIq := mkQ("v:vld-iq")
	qIqI1 := mkQ("v:iq-idct1")
	qIqI2 := mkQ("v:iq-idct2")
	qI1Mc := mkQ("v:idct1-mc")
	qI2Mc := mkQ("v:idct2-mc")
	qMcOut := mkQ("v:mc-out")
	qOut := mkQ("v:out-sink")

	mk := func(name string, fse float64, in, out []int) {
		t := task.MustNew(name, fse)
		t.BindWork(cfg.FMaxHz, cfg.FramePeriod)
		t.Core = VideoMapping[name]
		if _, err := g.AddTask(t, in, out); err != nil {
			panic(err)
		}
	}
	mk("VLD", FSEVLD, []int{qIn}, []int{qVldIq})
	mk("IQ", FSEIQ, []int{qVldIq}, []int{qIqI1, qIqI2})
	mk("IDCT1", FSEIDCT1, []int{qIqI1}, []int{qI1Mc})
	mk("IDCT2", FSEIDCT2, []int{qIqI2}, []int{qI2Mc})
	mk("MC", FSEMC, []int{qI1Mc, qI2Mc}, []int{qMcOut})
	mk("OUT", FSEOut, []int{qMcOut}, []int{qOut})

	if err := g.SetSource(qIn, cfg.FramePeriod); err != nil {
		return nil, err
	}
	if err := g.SetSink(qOut, cfg.FramePeriod, cfg.SinkPrefill); err != nil {
		return nil, err
	}
	if err := g.Finalize(); err != nil {
		return nil, err
	}
	return g, nil
}
