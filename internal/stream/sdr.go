package stream

import (
	"fmt"

	"thermbal/internal/task"
)

// The Software Defined FM Radio benchmark (paper Figure 6 and Table 2).
//
// Topology:
//
//	SRC → [LPF] → [DEMOD] → { [BPF1], [BPF2], [BPF3] } → [SUM] → SINK
//
// The demodulator broadcasts each frame to all three band-pass filters
// (parallel equalizer structure); the consumer Σ needs one frame from
// every BPF to produce an output frame.
//
// Table 2 gives per-task loads at the core's running frequency; the FSE
// values below are those loads rescaled to the 533 MHz maximum:
//
//	Core 1 (533 MHz): BPF1 36.7 %          → FSE 0.367
//	                  DEMOD 28.3 %         → FSE 0.283
//	Core 2 (266 MHz): BPF2 60.9 %          → FSE 0.304
//	                  Σ (SUM) 6.2 %        → FSE 0.031
//	Core 3 (266 MHz): BPF3 60.9 %          → FSE 0.304
//	                  LPF 18.8 %           → FSE 0.094
const (
	FSEBPF1  = 0.367
	FSEDemod = 0.283
	FSEBPF2  = 0.609 * 266.0 / 533.0
	FSESum   = 0.062 * 266.0 / 533.0
	FSEBPF3  = 0.609 * 266.0 / 533.0
	FSELPF   = 0.188 * 266.0 / 533.0
)

// DefaultFramePeriod is the SDR frame period: 20 ms (50 audio frames per
// second).
const DefaultFramePeriod = 0.020

// DefaultQueueCap is the default inter-task queue capacity in frames.
// The paper reports 11 frames as the minimum size that sustains
// migration without QoS impact (Section 5.2).
const DefaultQueueCap = 11

// SDRConfig parameterises the benchmark construction.
type SDRConfig struct {
	// QueueCap is the capacity of every inter-task queue (default 11).
	QueueCap int
	// FramePeriod is the source/sink period in seconds (default 20 ms).
	FramePeriod float64
	// FMaxHz is the maximum core frequency used to derive cycles per
	// frame from FSE loads (default 533 MHz).
	FMaxHz float64
	// SinkPrefill is the playback prefill in frames (default half the
	// queue capacity).
	SinkPrefill int
}

func (c *SDRConfig) fill() {
	if c.QueueCap <= 0 {
		c.QueueCap = DefaultQueueCap
	}
	if c.FramePeriod <= 0 {
		c.FramePeriod = DefaultFramePeriod
	}
	if c.FMaxHz <= 0 {
		c.FMaxHz = 533e6
	}
	if c.SinkPrefill <= 0 {
		c.SinkPrefill = (c.QueueCap + 1) / 2
	}
}

// SDRTaskNames lists the benchmark tasks in pipeline order.
var SDRTaskNames = []string{"LPF", "DEMOD", "BPF1", "BPF2", "BPF3", "SUM"}

// Table2Mapping is the paper's initial, statically energy-balanced
// placement (task name → 0-based core).
var Table2Mapping = map[string]int{
	"BPF1":  0,
	"DEMOD": 0,
	"BPF2":  1,
	"SUM":   1,
	"BPF3":  2,
	"LPF":   2,
}

// BuildSDR constructs the SDR graph with Table 2 loads and placement.
// It returns the finalized graph; tasks are reachable via graph lookup.
func BuildSDR(cfg SDRConfig) (*Graph, error) {
	cfg.fill()
	g := NewGraph()

	mkQ := func(name string) int {
		qi, err := g.AddQueue(name, cfg.QueueCap)
		if err != nil {
			panic(err) // static names cannot collide
		}
		return qi
	}
	qIn := mkQ("q:src-lpf")
	qLpfDemod := mkQ("q:lpf-demod")
	qDemodB1 := mkQ("q:demod-bpf1")
	qDemodB2 := mkQ("q:demod-bpf2")
	qDemodB3 := mkQ("q:demod-bpf3")
	qB1Sum := mkQ("q:bpf1-sum")
	qB2Sum := mkQ("q:bpf2-sum")
	qB3Sum := mkQ("q:bpf3-sum")
	qOut := mkQ("q:sum-sink")

	mk := func(name string, fse float64, in, out []int) *task.Task {
		t := task.MustNew(name, fse)
		t.BindWork(cfg.FMaxHz, cfg.FramePeriod)
		t.Core = Table2Mapping[name]
		if _, err := g.AddTask(t, in, out); err != nil {
			panic(err)
		}
		return t
	}
	mk("LPF", FSELPF, []int{qIn}, []int{qLpfDemod})
	mk("DEMOD", FSEDemod, []int{qLpfDemod}, []int{qDemodB1, qDemodB2, qDemodB3})
	mk("BPF1", FSEBPF1, []int{qDemodB1}, []int{qB1Sum})
	mk("BPF2", FSEBPF2, []int{qDemodB2}, []int{qB2Sum})
	mk("BPF3", FSEBPF3, []int{qDemodB3}, []int{qB3Sum})
	mk("SUM", FSESum, []int{qB1Sum, qB2Sum, qB3Sum}, []int{qOut})

	if err := g.SetSource(qIn, cfg.FramePeriod); err != nil {
		return nil, err
	}
	if err := g.SetSink(qOut, cfg.FramePeriod, cfg.SinkPrefill); err != nil {
		return nil, err
	}
	if err := g.Finalize(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustBuildSDR is BuildSDR panicking on error.
func MustBuildSDR(cfg SDRConfig) *Graph {
	g, err := BuildSDR(cfg)
	if err != nil {
		panic(fmt.Sprintf("stream: BuildSDR: %v", err))
	}
	return g
}

// PipelineDepth returns the number of stages from source to sink in the
// SDR graph (LPF, DEMOD, BPFx, SUM = 4).
const PipelineDepth = 4
