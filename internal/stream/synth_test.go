package stream

import (
	"math"
	"testing"
)

func TestBuildPipelineShape(t *testing.T) {
	g, err := BuildPipeline(PipelineConfig{Depth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 8 {
		t.Fatalf("depth 8 pipeline has %d tasks", g.NumTasks())
	}
	var total float64
	for _, tk := range g.Tasks() {
		if tk.Core != -1 {
			t.Errorf("task %s pre-placed on core %d", tk.Name, tk.Core)
		}
		total += tk.FSE
	}
	if math.Abs(total-1.4) > 1e-9 {
		t.Errorf("total FSE %g, want 1.4", total)
	}
	// Each stage has exactly one input and one output queue.
	for i := 0; i < g.NumTasks(); i++ {
		if len(g.Inputs(i)) != 1 || len(g.Outputs(i)) != 1 {
			t.Errorf("stage %d wiring %d-in %d-out, want 1-in 1-out", i, len(g.Inputs(i)), len(g.Outputs(i)))
		}
	}
}

func TestBuildPipelineBadDepth(t *testing.T) {
	if _, err := BuildPipeline(PipelineConfig{Depth: 0}); err == nil {
		t.Fatal("depth 0 accepted")
	}
}

func TestBuildFanOutShape(t *testing.T) {
	const w = 6
	g, err := BuildFanOut(FanConfig{Width: w})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != w+2 {
		t.Fatalf("width %d fan-out has %d tasks, want %d", w, g.NumTasks(), w+2)
	}
	split, ok := g.TaskIndex("SPLIT")
	if !ok {
		t.Fatal("no SPLIT task")
	}
	if len(g.Outputs(split)) != w {
		t.Errorf("SPLIT broadcasts to %d queues, want %d", len(g.Outputs(split)), w)
	}
	join, ok := g.TaskIndex("JOIN")
	if !ok {
		t.Fatal("no JOIN task")
	}
	if len(g.Inputs(join)) != w {
		t.Errorf("JOIN consumes %d queues, want %d", len(g.Inputs(join)), w)
	}
}

func TestBuildFanOutBadWidth(t *testing.T) {
	if _, err := BuildFanOut(FanConfig{Width: 1}); err == nil {
		t.Fatal("width 1 accepted")
	}
}

func TestSynthDeterministicFromSeed(t *testing.T) {
	build := func() *Graph {
		g, err := BuildPipeline(PipelineConfig{Depth: 8, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := build(), build()
	for i := range a.Tasks() {
		if a.Task(i).Name != b.Task(i).Name || a.Task(i).FSE != b.Task(i).FSE {
			t.Fatalf("seed 42 not deterministic at task %d: %s/%g vs %s/%g",
				i, a.Task(i).Name, a.Task(i).FSE, b.Task(i).Name, b.Task(i).FSE)
		}
	}
	g2, err := BuildPipeline(PipelineConfig{Depth: 8, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Tasks() {
		if a.Task(i).FSE != g2.Task(i).FSE {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical load profiles")
	}
}
