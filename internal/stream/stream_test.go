package stream

import (
	"math"
	"testing"
	"testing/quick"

	"thermbal/internal/task"
)

func TestQueueBasics(t *testing.T) {
	if _, err := NewQueue("bad", 0); err == nil {
		t.Error("zero capacity accepted")
	}
	q, err := NewQueue("q", 2)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name() != "q" || q.Cap() != 2 {
		t.Error("accessors wrong")
	}
	if !q.Empty() || q.Full() {
		t.Error("fresh queue state wrong")
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop on empty succeeded")
	}
	if _, ok := q.Peek(); ok {
		t.Error("Peek on empty succeeded")
	}
	if !q.Push(Frame{ID: 1}) || !q.Push(Frame{ID: 2}) {
		t.Fatal("pushes failed")
	}
	if q.Push(Frame{ID: 3}) {
		t.Error("push to full queue succeeded")
	}
	if q.Stats().Overruns != 1 {
		t.Errorf("overruns = %d", q.Stats().Overruns)
	}
	f, ok := q.Peek()
	if !ok || f.ID != 1 {
		t.Errorf("Peek = %v", f)
	}
	f, _ = q.Pop()
	g, _ := q.Pop()
	if f.ID != 1 || g.ID != 2 {
		t.Errorf("FIFO order violated: %d then %d", f.ID, g.ID)
	}
}

func TestQueueStatsAndReset(t *testing.T) {
	q, _ := NewQueue("q", 4)
	q.Push(Frame{ID: 0})
	q.Push(Frame{ID: 1})
	q.Pop()
	s := q.Stats()
	if s.Pushes != 2 || s.Pops != 1 || s.MaxLevel != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.MeanLevel <= 0 {
		t.Errorf("mean level = %g", s.MeanLevel)
	}
	q.Reset()
	s = q.Stats()
	if s.Pushes != 0 || s.Pops != 0 || s.MaxLevel != 0 || q.Len() != 0 {
		t.Errorf("reset incomplete: %+v", s)
	}
}

// Property: a queue never exceeds capacity and never reports negative
// length under arbitrary push/pop sequences.
func TestQueueInvariantProperty(t *testing.T) {
	f := func(ops []bool) bool {
		q, _ := NewQueue("p", 5)
		var id int64
		for _, push := range ops {
			if push {
				q.Push(Frame{ID: id})
				id++
			} else {
				q.Pop()
			}
			if q.Len() < 0 || q.Len() > q.Cap() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: FIFO — IDs pop in push order.
func TestQueueFIFOProperty(t *testing.T) {
	f := func(n uint8) bool {
		q, _ := NewQueue("p", 300)
		for i := int64(0); i <= int64(n); i++ {
			q.Push(Frame{ID: i})
		}
		for i := int64(0); i <= int64(n); i++ {
			f, ok := q.Pop()
			if !ok || f.ID != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGraphWiringErrors(t *testing.T) {
	g := NewGraph()
	if _, err := g.AddQueue("a", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddQueue("a", 2); err == nil {
		t.Error("duplicate queue accepted")
	}
	if _, err := g.AddQueue("bad", -1); err == nil {
		t.Error("bad capacity accepted")
	}
	tk := task.MustNew("t", 0.5)
	if _, err := g.AddTask(tk, []int{0}, []int{7}); err == nil {
		t.Error("unknown queue reference accepted")
	}
	if _, err := g.AddTask(tk, nil, nil); err == nil {
		t.Error("disconnected task accepted")
	}
	if _, err := g.AddTask(tk, []int{0}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddTask(task.MustNew("t", 0.1), []int{0}, nil); err == nil {
		t.Error("duplicate task accepted")
	}
	if err := g.SetSource(9, 0.1); err == nil {
		t.Error("bad source queue accepted")
	}
	if err := g.SetSource(0, 0); err == nil {
		t.Error("bad source period accepted")
	}
	if err := g.SetSink(9, 0.1, 1); err == nil {
		t.Error("bad sink queue accepted")
	}
	if err := g.SetSink(0, 0, 1); err == nil {
		t.Error("bad sink period accepted")
	}
	if err := g.SetSink(0, 0.1, 0); err == nil {
		t.Error("bad prefill accepted")
	}
}

func TestFinalizeValidation(t *testing.T) {
	// No tasks.
	g := NewGraph()
	if err := g.Finalize(); err == nil {
		t.Error("empty graph finalized")
	}
	// Queue with no consumer.
	g = NewGraph()
	q0, _ := g.AddQueue("in", 2)
	q1, _ := g.AddQueue("dangling", 2)
	g.AddTask(task.MustNew("t", 0.5), []int{q0}, []int{q1})
	g.SetSource(q0, 0.1)
	g.SetSink(q0, 0.1, 1) // sink on q0 leaves q1 without consumer
	if err := g.Finalize(); err == nil {
		t.Error("queue without consumer finalized")
	}
	// Missing source / sink.
	g = NewGraph()
	q0, _ = g.AddQueue("in", 2)
	g.AddTask(task.MustNew("t", 0.5), []int{q0}, nil)
	if err := g.Finalize(); err == nil {
		t.Error("missing source/sink finalized")
	}
}

func TestSDRBuilds(t *testing.T) {
	g := MustBuildSDR(SDRConfig{})
	if g.NumTasks() != 6 {
		t.Fatalf("SDR tasks = %d, want 6", g.NumTasks())
	}
	if g.NumQueues() != 9 {
		t.Fatalf("SDR queues = %d, want 9", g.NumQueues())
	}
	for _, name := range SDRTaskNames {
		i, ok := g.TaskIndex(name)
		if !ok {
			t.Fatalf("task %s missing", name)
		}
		tk := g.Task(i)
		if tk.Core != Table2Mapping[name] {
			t.Errorf("%s on core %d, want %d", name, tk.Core, Table2Mapping[name])
		}
		if tk.CyclesPerFrame <= 0 {
			t.Errorf("%s has no work bound", name)
		}
	}
	// Table 2 core loads: the per-core FSE sums must map to the paper's
	// frequencies (checked against 533/266/266 in the dvfs tests; here
	// verify the sums themselves).
	sum := map[int]float64{}
	for _, tk := range g.Tasks() {
		sum[tk.Core] += tk.FSE
	}
	if math.Abs(sum[0]-0.65) > 1e-9 {
		t.Errorf("core1 FSE = %g, want 0.65", sum[0])
	}
	if math.Abs(sum[1]-(FSEBPF2+FSESum)) > 1e-9 || sum[1] > 0.5 {
		t.Errorf("core2 FSE = %g, want %g (< 0.5 so 266 MHz fits)", sum[1], FSEBPF2+FSESum)
	}
	if math.Abs(sum[2]-(FSEBPF3+FSELPF)) > 1e-9 || sum[2] > 0.5 {
		t.Errorf("core3 FSE = %g", sum[2])
	}
}

// Drive the SDR graph with an ideal processor (unlimited cycles) and
// check end-to-end frame flow and zero misses.
func idealRun(t *testing.T, g *Graph, duration float64) {
	t.Helper()
	const tick = 0.001
	for now := 0.0; now < duration; now += tick {
		g.AdvanceSource(now)
		// Run every task to completion instantly (ideal CPU).
		for pass := 0; pass < 8; pass++ {
			fired := false
			for i := 0; i < g.NumTasks(); i++ {
				if g.CanFire(i) {
					if err := g.BeginFrame(i); err != nil {
						t.Fatal(err)
					}
					g.Task(i).Execute(math.Inf(1))
					g.FinishFrame(i)
					fired = true
				}
			}
			if !fired {
				break
			}
		}
		g.AdvanceSink(now)
	}
}

func TestSDREndToEndIdealProcessor(t *testing.T) {
	g := MustBuildSDR(SDRConfig{})
	idealRun(t, g, 3.0)
	src := g.SourceStats()
	snk := g.SinkStats()
	if src.Emitted < 140 {
		t.Errorf("source emitted %d frames in 3 s, want ≈150", src.Emitted)
	}
	if src.Dropped != 0 {
		t.Errorf("source dropped %d frames on ideal CPU", src.Dropped)
	}
	if snk.Misses != 0 {
		t.Errorf("%d misses on ideal CPU", snk.Misses)
	}
	if snk.Consumed < 100 {
		t.Errorf("sink consumed only %d frames", snk.Consumed)
	}
	// Every intermediate queue must have seen traffic.
	for qi := 0; qi < g.NumQueues(); qi++ {
		if g.Queue(qi).Stats().Pushes == 0 {
			t.Errorf("queue %s never received a frame", g.Queue(qi).Name())
		}
	}
}

func TestSinkMissesWhenPipelineFrozen(t *testing.T) {
	g := MustBuildSDR(SDRConfig{})
	idealRun(t, g, 1.0)
	pre := g.SinkStats().Misses
	if pre != 0 {
		t.Fatalf("unexpected misses in warmup: %d", pre)
	}
	// Freeze the whole pipeline (no task work) but keep the sink draining.
	start := 1.0
	for now := start; now < start+1.0; now += 0.001 {
		g.AdvanceSource(now)
		g.AdvanceSink(now)
	}
	misses := g.SinkStats().Misses
	if misses < 30 {
		t.Errorf("frozen pipeline produced only %d misses in 1 s, want ≈ 45+", misses)
	}
	// The head queue must have overrun (source kept pushing).
	headStats := g.Queue(0).Stats()
	if headStats.Overruns == 0 {
		t.Error("head queue never overran while pipeline frozen")
	}
}

func TestResetStreamState(t *testing.T) {
	g := MustBuildSDR(SDRConfig{})
	idealRun(t, g, 1.0)
	g.ResetStreamState()
	if g.SourceStats().Emitted != 0 || g.SinkStats().Consumed != 0 {
		t.Error("reset kept source/sink counters")
	}
	for qi := 0; qi < g.NumQueues(); qi++ {
		if g.Queue(qi).Len() != 0 {
			t.Errorf("queue %s not cleared", g.Queue(qi).Name())
		}
	}
	for _, tk := range g.Tasks() {
		if tk.FramesCompleted != 0 || tk.InFlight {
			t.Errorf("task %s kept state", tk.Name)
		}
	}
	// Graph is reusable after reset.
	idealRun(t, g, 1.0)
	if g.SinkStats().Misses != 0 {
		t.Error("misses after reset on ideal CPU")
	}
}

func TestBeginFrameRequiresFirable(t *testing.T) {
	g := MustBuildSDR(SDRConfig{})
	lpf, _ := g.TaskIndex("LPF")
	if g.CanFire(lpf) {
		t.Fatal("LPF firable with empty input")
	}
	if err := g.BeginFrame(lpf); err == nil {
		t.Error("BeginFrame on unfirable task succeeded")
	}
	// Frozen task cannot fire even with data.
	g.AdvanceSource(0)
	g.Task(lpf).State = task.Frozen
	if g.CanFire(lpf) {
		t.Error("frozen task firable")
	}
	g.Task(lpf).State = task.Ready
	if !g.CanFire(lpf) {
		t.Error("LPF not firable with input frame available")
	}
}

func TestSumRequiresAllThreeBPFs(t *testing.T) {
	g := MustBuildSDR(SDRConfig{})
	sum, _ := g.TaskIndex("SUM")
	// Push frames into only two of the three BPF output queues.
	q1, _ := g.QueueIndex("q:bpf1-sum")
	q2, _ := g.QueueIndex("q:bpf2-sum")
	g.Queue(q1).Push(Frame{ID: 1})
	g.Queue(q2).Push(Frame{ID: 1})
	if g.CanFire(sum) {
		t.Error("SUM fired with only 2 of 3 inputs")
	}
	q3, _ := g.QueueIndex("q:bpf3-sum")
	g.Queue(q3).Push(Frame{ID: 1})
	if !g.CanFire(sum) {
		t.Error("SUM not firable with all inputs present")
	}
	// Fire and check all three inputs consumed.
	if err := g.BeginFrame(sum); err != nil {
		t.Fatal(err)
	}
	if g.Queue(q1).Len() != 0 || g.Queue(q2).Len() != 0 || g.Queue(q3).Len() != 0 {
		t.Error("SUM did not consume one frame from each input")
	}
}

func TestSinkLatencyAccounting(t *testing.T) {
	g := MustBuildSDR(SDRConfig{})
	idealRun(t, g, 2.0)
	snk := g.SinkStats()
	if snk.Consumed == 0 {
		t.Fatal("no frames consumed")
	}
	mean := snk.LatencySum / float64(snk.Consumed)
	if mean <= 0 {
		t.Errorf("mean pipeline latency = %g, want positive", mean)
	}
	// With prefill 6 frames at 20 ms the latency is dominated by the
	// prefill delay; it must stay below the full pipeline worst case.
	if mean > 1.0 {
		t.Errorf("mean latency %g s implausibly high", mean)
	}
}

func TestInputsOutputsAccessors(t *testing.T) {
	g := MustBuildSDR(SDRConfig{})
	demod, _ := g.TaskIndex("DEMOD")
	if got := len(g.Outputs(demod)); got != 3 {
		t.Errorf("DEMOD outputs = %d, want 3 (broadcast)", got)
	}
	if got := len(g.Inputs(demod)); got != 1 {
		t.Errorf("DEMOD inputs = %d, want 1", got)
	}
	sum, _ := g.TaskIndex("SUM")
	if got := len(g.Inputs(sum)); got != 3 {
		t.Errorf("SUM inputs = %d, want 3 (join)", got)
	}
}

// The source/sink schedules are derived from counts, not accumulated, so
// after millions of periods the next event time is still exactly
// base + n*period (the accumulating form had drifted by whole frames).
func TestScheduleDriftFree(t *testing.T) {
	g := MustBuildSDR(SDRConfig{})
	const period = DefaultFramePeriod
	g.AdvanceSource(0) // starts the schedule, emits frame 0
	const n = 2_000_000
	// Jump far ahead: every due emission fires (the head queue overruns,
	// which only increments Dropped).
	g.AdvanceSource(float64(n) * period)
	src := g.SourceStats()
	attempts := src.Emitted + src.Dropped
	if attempts != n+1 {
		t.Fatalf("attempts = %d, want %d", attempts, n+1)
	}
	if got, want := g.NextSourceEmissionAt(), float64(n+1)*period; got != want {
		t.Errorf("NextSourceEmissionAt = %x, want exactly %x", got, want)
	}
}

func TestNextEventQueries(t *testing.T) {
	g := MustBuildSDR(SDRConfig{})
	if !math.IsInf(g.NextSourceEmissionAt(), -1) {
		t.Error("unstarted source not imminent")
	}
	if !math.IsInf(g.NextSinkDeadlineAt(), 1) {
		t.Error("prefilling sink reported a deadline")
	}
	g.AdvanceSource(0)
	if got, want := g.NextSourceEmissionAt(), DefaultFramePeriod; got != want {
		t.Errorf("next emission = %v, want %v", got, want)
	}
	// Fill the sink queue to the prefill threshold: playback is imminent.
	qi, ok := g.QueueIndex("q:sum-sink")
	if !ok {
		t.Fatal("sink queue missing")
	}
	for i := 0; g.Queue(qi).Len() < DefaultQueueCap/2+1; i++ {
		g.Queue(qi).Push(Frame{ID: int64(i)})
	}
	if !math.IsInf(g.NextSinkDeadlineAt(), -1) {
		t.Error("prefilled sink not imminent")
	}
	g.AdvanceSink(1.0) // playback starts at 1.0
	if got, want := g.NextSinkDeadlineAt(), 1.0+DefaultFramePeriod; got != want {
		t.Errorf("next deadline = %v, want %v", got, want)
	}
	// Consume one deadline; the next derives from the fired count.
	g.AdvanceSink(1.0 + DefaultFramePeriod)
	if got, want := g.NextSinkDeadlineAt(), 1.0+2*DefaultFramePeriod; got != want {
		t.Errorf("deadline after one fire = %v, want %v", got, want)
	}
}
