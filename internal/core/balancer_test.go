package core

import (
	"math"
	"testing"

	"thermbal/internal/policy"
)

// ladder mimics the 533/266/133 MHz governor for snapshots.
func ladder(fse float64) float64 {
	need := fse * 533e6
	for _, f := range []float64{133e6, 266e6, 533e6} {
		if f >= need-1e-3 {
			return f
		}
	}
	return 533e6
}

// table2Snapshot builds the paper's post-warmup state: core1 hot at
// 533 MHz with BPF1+DEMOD, cores 2/3 cooler at 266 MHz.
func table2Snapshot(now float64) *policy.Snapshot {
	tasks := []policy.TaskView{
		{Index: 0, Name: "LPF", Core: 2, FSE: 0.094, StateBytes: 64 << 10},
		{Index: 1, Name: "DEMOD", Core: 0, FSE: 0.283, StateBytes: 64 << 10},
		{Index: 2, Name: "BPF1", Core: 0, FSE: 0.367, StateBytes: 64 << 10},
		{Index: 3, Name: "BPF2", Core: 1, FSE: 0.304, StateBytes: 64 << 10},
		{Index: 4, Name: "BPF3", Core: 2, FSE: 0.304, StateBytes: 64 << 10},
		{Index: 5, Name: "SUM", Core: 1, FSE: 0.031, StateBytes: 64 << 10},
	}
	temp := []float64{62.3, 54.0, 52.2}
	freq := []float64{533e6, 266e6, 266e6}
	mean := (temp[0] + temp[1] + temp[2]) / 3
	meanF := (freq[0] + freq[1] + freq[2]) / 3
	return &policy.Snapshot{
		Time:     now,
		Temp:     temp,
		Freq:     freq,
		Powered:  []bool{true, true, true},
		MeanTemp: mean,
		MeanFreq: meanF,
		Tasks:    tasks,
		LevelFor: ladder,
	}
}

func TestNewDefaultsAndValidation(t *testing.T) {
	b := New(Params{Delta: 3})
	p := b.Params()
	if p.MinInterval != DefaultMinInterval || p.TopK != DefaultTopK || p.MaxFreezeS != DefaultMaxFreezeS {
		t.Errorf("defaults not applied: %+v", p)
	}
	if b.Name() != "thermal-balance" {
		t.Errorf("name = %q", b.Name())
	}
	defer func() {
		if recover() == nil {
			t.Error("New without Delta did not panic")
		}
	}()
	New(Params{})
}

func TestHotTriggerMigratesFromHotToColdest(t *testing.T) {
	b := New(Params{Delta: 3})
	s := table2Snapshot(20)
	acts := b.Decide(s)
	if len(acts) != 1 {
		t.Fatalf("actions = %v, want one migration", acts)
	}
	mg, ok := acts[0].(policy.Migrate)
	if !ok {
		t.Fatalf("action type %T", acts[0])
	}
	// Source must be the hot core 0; Eq. 1 picks the coldest target
	// (core 2: largest (t_tgt-mean)² divisor).
	if s.Tasks[taskByIndex(t, s, mg.Task)].Core != 0 {
		t.Errorf("migrated task from core %d, want 0", s.Tasks[mg.Task].Core)
	}
	if mg.Dst != 2 {
		t.Errorf("destination = %d, want 2 (coldest)", mg.Dst)
	}
	// DEMOD (FSE .283) gives lower post-move imbalance than BPF1.
	if s.Tasks[taskByIndex(t, s, mg.Task)].Name != "DEMOD" {
		t.Errorf("moved %s, want DEMOD", s.Tasks[mg.Task].Name)
	}
	hot, cold, _ := b.Triggers()
	if hot != 1 || cold != 0 {
		t.Errorf("triggers = (%d,%d)", hot, cold)
	}
}

func taskByIndex(t *testing.T, s *policy.Snapshot, idx int) int {
	t.Helper()
	for i, tv := range s.Tasks {
		if tv.Index == idx {
			return i
		}
	}
	t.Fatalf("task index %d not in snapshot", idx)
	return -1
}

func TestNoTriggerInsideBand(t *testing.T) {
	b := New(Params{Delta: 8}) // band wide enough to cover the spread
	if acts := b.Decide(table2Snapshot(20)); acts != nil {
		t.Errorf("actions inside band: %v", acts)
	}
}

func TestRateLimitBetweenMigrations(t *testing.T) {
	b := New(Params{Delta: 3, MinInterval: 1.0})
	if acts := b.Decide(table2Snapshot(10)); len(acts) != 1 {
		t.Fatal("first decision did not migrate")
	}
	if acts := b.Decide(table2Snapshot(10.5)); acts != nil {
		t.Errorf("second migration inside MinInterval: %v", acts)
	}
	if acts := b.Decide(table2Snapshot(11.1)); len(acts) != 1 {
		t.Error("migration after MinInterval suppressed")
	}
}

func TestNoActionWhileMigrationPending(t *testing.T) {
	b := New(Params{Delta: 3})
	s := table2Snapshot(10)
	s.MigrationsPending = 1
	if acts := b.Decide(s); acts != nil {
		t.Errorf("decided %v with migration pending", acts)
	}
}

func TestFrequencyConditionBlocksEqualFrequencies(t *testing.T) {
	b := New(Params{Delta: 3})
	s := table2Snapshot(10)
	// All cores at the same frequency: condition 2 fails everywhere.
	s.Freq = []float64{266e6, 266e6, 266e6}
	s.MeanFreq = 266e6
	if acts := b.Decide(s); acts != nil {
		t.Errorf("migration despite equal frequencies: %v", acts)
	}
}

func TestThermalConditionRequiresOpposition(t *testing.T) {
	b := New(Params{Delta: 3})
	s := table2Snapshot(10)
	// Raise every core above the would-be mean - impossible by
	// construction of a mean, so instead make cold cores sit exactly on
	// the mean: products are zero -> no candidate.
	s.Temp = []float64{62.3, 56.0, 56.0}
	s.MeanTemp = 56.0 // core1 still +6.3 above
	if acts := b.Decide(s); acts != nil {
		t.Errorf("migration without thermal opposition: %v", acts)
	}
}

func TestPowerConditionBlocksCostlyMove(t *testing.T) {
	b := New(Params{Delta: 3})
	s := table2Snapshot(10)
	// Make the cold target so loaded that any incoming task forces a
	// frequency rise without the source dropping: power would increase.
	for i := range s.Tasks {
		if s.Tasks[i].Core == 2 {
			s.Tasks[i].FSE = 0.45
		}
	}
	// Source core 0 keeps large tasks; removing one does not drop the
	// level (both remain > 0.5 total)... construct explicitly:
	s.Tasks[1].FSE = 0.40 // DEMOD
	s.Tasks[2].FSE = 0.45 // BPF1 -> core0 total 0.85; removing 0.40 leaves 0.45 -> still 533? 0.45*533=240 -> 266!
	// Removing DEMOD drops core0 to 266 but pushes core2 to
	// 0.45+0.45+0.40=1.3 -> 533: after = 266²+533² = before. Equality is
	// allowed, so tighten: make core2 already at 533 impossible...
	// Simpler: make the only movable task huge so the destination
	// saturates while the source stays at 533.
	s.Tasks[1].FSE = 0.08 // small DEMOD: removing it keeps core0 at 533
	s.Tasks[2].FSE = 0.60 // BPF1 dominates core0
	// Moving BPF1: core0 -> 0.08 => 133 MHz; core2 -> .45+.45+.6=1.5 => 533.
	// after = 133² + 533² < before = 533² + 266²? before=3.5e17, after=3.0e17: allowed!
	// Moving DEMOD: core0 stays 533 (0.60), core2 -> 0.98 => 533.
	// after = 533²+533² > before -> blocked.
	acts := b.Decide(s)
	if len(acts) != 1 {
		t.Fatalf("expected exactly the cheap move, got %v", acts)
	}
	mg := acts[0].(policy.Migrate)
	if s.Tasks[taskByIndex(t, s, mg.Task)].Name != "BPF1" {
		t.Errorf("moved %s; DEMOD move should be power-blocked", s.Tasks[taskByIndex(t, s, mg.Task)].Name)
	}
}

func TestColdTriggerPullsLoadFromHotCore(t *testing.T) {
	b := New(Params{Delta: 3})
	s := table2Snapshot(10)
	// Compress the top: cores 1/2 warm but inside the band, core 3 very
	// cold -> cold trigger; partner must be a core above the mean.
	s.Temp = []float64{53.0, 52.5, 45.0}
	s.MeanTemp = (53.0 + 52.5 + 45.0) / 3 // 50.17; band [47.17, 53.17]
	acts := b.Decide(s)
	if len(acts) != 1 {
		t.Fatalf("cold trigger produced %v", acts)
	}
	mg := acts[0].(policy.Migrate)
	if mg.Dst != 2 {
		t.Errorf("cold trigger destination = %d, want the cold core 2", mg.Dst)
	}
	src := s.Tasks[taskByIndex(t, s, mg.Task)].Core
	if s.Temp[src] <= s.MeanTemp {
		t.Errorf("cold trigger pulled from core %d below mean", src)
	}
	_, cold, _ := b.Triggers()
	if cold != 1 {
		t.Errorf("cold triggers = %d", cold)
	}
}

func TestFreezeCostFilter(t *testing.T) {
	b := New(Params{Delta: 3, MaxFreezeS: 0.010})
	s := table2Snapshot(10)
	s.EstimateFreeze = func(ti int) float64 { return 0.050 } // all too slow
	if acts := b.Decide(s); acts != nil {
		t.Errorf("cost filter did not reject: %v", acts)
	}
	_, _, filtered := b.Triggers()
	if filtered == 0 {
		t.Error("filter counter not incremented")
	}
	// Cheap migrations pass.
	b2 := New(Params{Delta: 3, MaxFreezeS: 0.10})
	s2 := table2Snapshot(10)
	s2.EstimateFreeze = func(ti int) float64 { return 0.050 }
	if acts := b2.Decide(s2); len(acts) != 1 {
		t.Error("affordable migration rejected")
	}
}

func TestMigratingTasksExcluded(t *testing.T) {
	b := New(Params{Delta: 3})
	s := table2Snapshot(10)
	for i := range s.Tasks {
		if s.Tasks[i].Core == 0 {
			s.Tasks[i].Migrating = true
		}
	}
	if acts := b.Decide(s); acts != nil {
		t.Errorf("migrated an already-migrating task: %v", acts)
	}
}

func TestUnpoweredCoresIgnored(t *testing.T) {
	b := New(Params{Delta: 3})
	s := table2Snapshot(10)
	s.Powered[0] = false // hot core is off: no trigger from it
	s.Freq[0] = 0
	// Mean unchanged for test purposes; core2/3 inside band.
	if acts := b.Decide(s); acts != nil {
		t.Errorf("actions involving unpowered core: %v", acts)
	}
}

func TestTopKLimitsCandidates(t *testing.T) {
	// With TopK=1 only the highest-load task (BPF1) is considered; its
	// move still satisfies the power condition, so it is chosen even
	// though DEMOD would balance better.
	b := New(Params{Delta: 3, TopK: 1})
	s := table2Snapshot(10)
	acts := b.Decide(s)
	if len(acts) != 1 {
		t.Fatalf("actions = %v", acts)
	}
	mg := acts[0].(policy.Migrate)
	if s.Tasks[taskByIndex(t, s, mg.Task)].Name != "BPF1" {
		t.Errorf("TopK=1 moved %s, want BPF1", s.Tasks[taskByIndex(t, s, mg.Task)].Name)
	}
}

func TestEquation1PrefersColderTarget(t *testing.T) {
	b := New(Params{Delta: 2})
	s := table2Snapshot(10)
	// Two valid cold targets; core2 colder than its Table 2 value.
	s.Temp = []float64{62.3, 50.0, 52.2}
	s.MeanTemp = (62.3 + 50.0 + 52.2) / 3
	acts := b.Decide(s)
	if len(acts) != 1 {
		t.Fatalf("actions = %v", acts)
	}
	if mg := acts[0].(policy.Migrate); mg.Dst != 1 {
		t.Errorf("dst = %d, want 1 (coldest => minimal Eq.1 cost)", mg.Dst)
	}
}

func TestDecideIsDeterministic(t *testing.T) {
	for i := 0; i < 20; i++ {
		b := New(Params{Delta: 3})
		acts := b.Decide(table2Snapshot(10))
		if len(acts) != 1 {
			t.Fatal("no action")
		}
		mg := acts[0].(policy.Migrate)
		if mg.Dst != 2 {
			t.Fatalf("iteration %d: dst %d", i, mg.Dst)
		}
	}
}

func TestActionStrings(t *testing.T) {
	if (policy.Migrate{Task: 1, Dst: 2}).String() == "" {
		t.Error("empty Migrate string")
	}
	if (policy.StopCore{Core: 1}).String() == "" || (policy.StartCore{Core: 1}).String() == "" {
		t.Error("empty stop/start strings")
	}
}

func TestSnapshotHelpers(t *testing.T) {
	s := table2Snapshot(0)
	if got := s.FSEOn(0); math.Abs(got-0.65) > 1e-9 {
		t.Errorf("FSEOn(0) = %g", got)
	}
	if got := len(s.TasksOn(1)); got != 2 {
		t.Errorf("TasksOn(1) = %d entries", got)
	}
	if s.NumCores() != 3 {
		t.Errorf("NumCores = %d", s.NumCores())
	}
}
