package core

import (
	"math"
	"math/rand"
	"testing"

	"thermbal/internal/policy"
)

// randomSnapshot builds a syntactically valid snapshot with randomized
// temperatures, frequencies and placements.
func randomSnapshot(rng *rand.Rand) *policy.Snapshot {
	n := 2 + rng.Intn(4) // 2..5 cores
	nt := 1 + rng.Intn(8)
	levels := []float64{133e6, 266e6, 533e6}
	s := &policy.Snapshot{
		Time:    rng.Float64() * 100,
		Temp:    make([]float64, n),
		Freq:    make([]float64, n),
		Powered: make([]bool, n),
		Tasks:   make([]policy.TaskView, nt),
		LevelFor: func(fse float64) float64 {
			need := fse * 533e6
			for _, f := range levels {
				if f >= need-1e-3 {
					return f
				}
			}
			return 533e6
		},
	}
	var sumT, sumF float64
	for c := 0; c < n; c++ {
		s.Temp[c] = 40 + rng.Float64()*40
		s.Freq[c] = levels[rng.Intn(len(levels))]
		s.Powered[c] = rng.Float64() > 0.1
		if !s.Powered[c] {
			s.Freq[c] = 0
		}
		sumT += s.Temp[c]
		sumF += s.Freq[c]
	}
	s.MeanTemp = sumT / float64(n)
	s.MeanFreq = sumF / float64(n)
	for i := 0; i < nt; i++ {
		s.Tasks[i] = policy.TaskView{
			Index:      i,
			Name:       string(rune('A' + i)),
			Core:       rng.Intn(n),
			FSE:        0.02 + rng.Float64()*0.6,
			StateBytes: 64 << 10,
			Migrating:  rng.Float64() < 0.15,
		}
	}
	if rng.Float64() < 0.2 {
		s.MigrationsPending = 1
	}
	return s
}

// Property: every action the balancer emits is well-formed and satisfies
// the paper's three conditions plus the never-while-pending invariant.
func TestBalancerActionsAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(20080310)) // DATE'08 week, fixed seed
	for trial := 0; trial < 5000; trial++ {
		s := randomSnapshot(rng)
		b := New(Params{Delta: 1 + rng.Float64()*5})
		acts := b.Decide(s)
		if len(acts) == 0 {
			continue
		}
		if s.MigrationsPending > 0 {
			t.Fatalf("trial %d: acted with migration pending", trial)
		}
		if len(acts) != 1 {
			t.Fatalf("trial %d: %d actions, want at most 1 (two processors at a time)", trial, len(acts))
		}
		mg, ok := acts[0].(policy.Migrate)
		if !ok {
			t.Fatalf("trial %d: unexpected action type %T", trial, acts[0])
		}
		if mg.Task < 0 || mg.Task >= len(s.Tasks) {
			t.Fatalf("trial %d: bogus task %d", trial, mg.Task)
		}
		tv := s.Tasks[mg.Task]
		if tv.Migrating {
			t.Fatalf("trial %d: selected already-migrating task", trial)
		}
		src := tv.Core
		dst := mg.Dst
		if dst < 0 || dst >= s.NumCores() || dst == src {
			t.Fatalf("trial %d: bogus destination %d (src %d)", trial, dst, src)
		}
		if !s.Powered[src] || !s.Powered[dst] {
			t.Fatalf("trial %d: involved unpowered core", trial)
		}
		mean := s.MeanTemp
		// Condition 1: thermal opposition, heat flowing downhill.
		if (s.Temp[src]-mean)*(s.Temp[dst]-mean) >= 0 || s.Temp[src] <= s.Temp[dst] {
			t.Fatalf("trial %d: thermal condition violated: src %.1f dst %.1f mean %.1f",
				trial, s.Temp[src], s.Temp[dst], mean)
		}
		// Condition 2: source fast, destination slow.
		if s.Freq[src] <= s.MeanFreq || s.Freq[dst] >= s.MeanFreq {
			t.Fatalf("trial %d: frequency condition violated: src %.0f dst %.0f mean %.0f",
				trial, s.Freq[src], s.Freq[dst], s.MeanFreq)
		}
		// Condition 3: power must not increase.
		before := s.Freq[src]*s.Freq[src] + s.Freq[dst]*s.Freq[dst]
		newSrc := s.LevelFor(s.FSEOn(src) - tv.FSE)
		newDst := s.LevelFor(s.FSEOn(dst) + tv.FSE)
		after := newSrc*newSrc + newDst*newDst
		if after > before+1e-3 {
			t.Fatalf("trial %d: power condition violated: before %g after %g", trial, before, after)
		}
		// The trigger actually existed: some core was out of band.
		out := false
		for c := 0; c < s.NumCores(); c++ {
			if s.Powered[c] && math.Abs(s.Temp[c]-mean) > b.Params().Delta {
				out = true
			}
		}
		if !out {
			t.Fatalf("trial %d: migrated while all cores in band", trial)
		}
	}
}

// Property: the balancer is pure modulo its rate-limit state — two fresh
// instances decide identically on the same snapshot.
func TestBalancerPureDecision(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		s := randomSnapshot(rng)
		a1 := New(Params{Delta: 3}).Decide(s)
		a2 := New(Params{Delta: 3}).Decide(s)
		if len(a1) != len(a2) {
			t.Fatalf("trial %d: decision count differs", trial)
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				t.Fatalf("trial %d: decisions differ: %v vs %v", trial, a1[i], a2[i])
			}
		}
	}
}
