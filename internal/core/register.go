package core

import (
	"fmt"

	"thermbal/internal/policy"
)

// The balancer registers itself with the policy registry so CLIs and
// experiments construct it by name; it cannot be registered from the
// policy package itself without an import cycle.
func init() {
	policy.Register(policy.Entry{
		Name:        "thermal-balance",
		Description: "the paper's migration-based thermal balancing (MiGra-style)",
		Aliases:     []string{"tb", "migra"},
	}, func(a policy.Args) (policy.Policy, error) {
		if a.Delta <= 0 {
			return nil, fmt.Errorf("core: thermal-balance requires a positive delta, got %g", a.Delta)
		}
		return New(Params{
			Delta:       a.Delta,
			MinInterval: a.MinInterval,
			TopK:        a.TopK,
			MaxFreezeS:  a.MaxFreezeS,
		}), nil
	})
}
