package core

import (
	"testing"

	"thermbal/internal/policy"
)

func TestThermalBalanceRegistered(t *testing.T) {
	for _, name := range []string{"thermal-balance", "tb", "migra"} {
		p, err := policy.New(name, policy.Args{Delta: 3, TopK: 2})
		if err != nil {
			t.Fatalf("policy.New(%q): %v", name, err)
		}
		b, ok := p.(*Balancer)
		if !ok {
			t.Fatalf("policy.New(%q) returned %T, want *Balancer", name, p)
		}
		if b.Params().Delta != 3 || b.Params().TopK != 2 {
			t.Errorf("params not threaded: %+v", b.Params())
		}
	}
	if _, err := policy.New("thermal-balance", policy.Args{}); err == nil {
		t.Fatal("thermal-balance with zero delta succeeded")
	}
}
