// Package core implements the paper's contribution: the migration-based
// thermal balancing policy (Section 3), a MiGra-inspired algorithm that
// keeps every core's temperature inside a band of ±Delta around the
// current mean chip temperature by exchanging tasks between a hot and a
// cold core.
//
// The algorithm has two phases (Section 3.1):
//
//  1. Candidate selection. A destination core is eligible to exchange
//     workload with the source only if all three conditions hold:
//
//     - thermal opposition: (t_src − t_mean)·(t_dst − t_mean) < 0
//     - frequency opposition: (f_src − f_mean)·(f_dst − f_mean) < 0
//     - no extra power: (f_src² + f_dst²)_before ≥ (f_src² + f_dst²)_after
//
//  2. Task-set selection. An exhaustive search over task subsets is
//     impractical, so only the few highest-load tasks are considered
//     (the effect of migrating a task on balance decreases with its
//     load). The final target minimises the Eq. 1 cost:
//
//     cost(tgt) = (Σ C_src,i + Σ C_tgt,j) / (t_tgt − t_mean)²
//
//     i.e. data moved times expected re-trigger frequency — a colder
//     target needs re-balancing later, so it divides the cost more.
//
// Migration costs are estimated through the middleware (MiGra's request
// filtering): a move whose predicted freeze time exceeds the QoS budget
// is rejected.
package core

import (
	"math"
	"sort"

	"thermbal/internal/policy"
)

// Defaults for Params.
const (
	// DefaultMinInterval throttles policy-issued migrations; the master
	// daemon evaluates the slave daemons' statistics on this period.
	DefaultMinInterval = 0.30
	// DefaultTopK bounds the task subset considered on each core.
	DefaultTopK = 3
	// DefaultMaxFreezeS is the QoS budget: migrations predicted to
	// freeze a task longer than this are filtered out.
	DefaultMaxFreezeS = 0.25
)

// Params configures the balancer.
type Params struct {
	// Delta is the half-width of the allowed temperature band around
	// the mean (°C). The paper sweeps 2..5 and operates at 3.
	Delta float64
	// MinInterval is the minimum time between issued migrations (s).
	MinInterval float64
	// TopK is the number of highest-load tasks considered per core.
	TopK int
	// MaxFreezeS rejects migrations whose estimated freeze exceeds it.
	MaxFreezeS float64
}

// Balancer is the thermal balancing policy. It carries trigger state
// (last issue time), so one instance drives one run.
type Balancer struct {
	p         Params
	lastIssue float64
	// counters for introspection
	hotTriggers, coldTriggers, filtered int
}

// New creates a balancer, applying defaults for zero fields. Delta must
// be positive.
func New(p Params) *Balancer {
	if p.Delta <= 0 {
		panic("core: Balancer requires a positive Delta")
	}
	if p.MinInterval <= 0 {
		p.MinInterval = DefaultMinInterval
	}
	if p.TopK <= 0 {
		p.TopK = DefaultTopK
	}
	if p.MaxFreezeS <= 0 {
		p.MaxFreezeS = DefaultMaxFreezeS
	}
	return &Balancer{p: p, lastIssue: math.Inf(-1)}
}

// Name implements policy.Policy.
func (b *Balancer) Name() string { return "thermal-balance" }

// Params returns the effective parameters.
func (b *Balancer) Params() Params { return b.p }

// Triggers returns how many hot- and cold-threshold crossings fired a
// pairing attempt, and how many moves the cost filter rejected.
func (b *Balancer) Triggers() (hot, cold, filtered int) {
	return b.hotTriggers, b.coldTriggers, b.filtered
}

// Decide implements policy.Policy.
func (b *Balancer) Decide(s *policy.Snapshot) []policy.Action {
	// One exchange at a time, between exactly two processors
	// (Section 3.1), and rate-limited by the daemon period.
	if s.MigrationsPending > 0 {
		return nil
	}
	if s.Time-b.lastIssue < b.p.MinInterval {
		return nil
	}

	mean := s.MeanTemp
	src, dstFixed, ok := b.trigger(s, mean)
	if !ok {
		return nil
	}

	best, ok := b.selectMove(s, mean, src, dstFixed)
	if !ok {
		return nil
	}
	b.lastIssue = s.Time
	return []policy.Action{policy.Migrate{Task: best.task, Dst: best.dst}}
}

// trigger finds the threshold crossing. For a hot trigger it returns
// (hotCore, -1); for a cold trigger (coldCore's partner is chosen later)
// it returns (-1, coldCore). ok is false when every core is in band.
func (b *Balancer) trigger(s *policy.Snapshot, mean float64) (src, dst int, ok bool) {
	hot, cold := -1, -1
	for c := 0; c < s.NumCores(); c++ {
		if !s.Powered[c] {
			continue
		}
		t := s.Temp[c]
		if t > mean+b.p.Delta && (hot < 0 || t > s.Temp[hot]) {
			hot = c
		}
		if t < mean-b.p.Delta && (cold < 0 || t < s.Temp[cold]) {
			cold = c
		}
	}
	switch {
	case hot >= 0:
		b.hotTriggers++
		return hot, -1, true
	case cold >= 0:
		b.coldTriggers++
		return -1, cold, true
	default:
		return -1, -1, false
	}
}

// move is a fully specified candidate migration.
type move struct {
	task int
	src  int
	dst  int
	cost float64 // Eq. 1 value
}

// selectMove enumerates eligible (pair, task) combinations and returns
// the Eq. 1 minimiser. When src < 0 the trigger was cold: dstFixed is
// the cold core and the partner (source of tasks) is searched among hot
// cores; otherwise src is the hot core and destinations are searched.
func (b *Balancer) selectMove(s *policy.Snapshot, mean float64, src, dstFixed int) (move, bool) {
	best := move{cost: math.Inf(1), task: -1}
	consider := func(from, to int) {
		if from == to || !s.Powered[from] || !s.Powered[to] {
			return
		}
		// Condition 1: thermal opposition — tasks flow from the side of
		// the mean the trigger core sits on to the opposite side.
		if (s.Temp[from]-mean)*(s.Temp[to]-mean) >= 0 {
			return
		}
		if s.Temp[from] <= s.Temp[to] {
			return // heat must flow downhill: source hotter than target
		}
		// Condition 2: frequency opposition. The source must be the
		// fast side: a core that is hot but already running slow is
		// glowing with residual heat, not generating it — shedding its
		// load would only thrash (its temperature falls by itself).
		if s.Freq[from] <= s.MeanFreq || s.Freq[to] >= s.MeanFreq {
			return
		}
		ti, bytes, ok := b.pickTask(s, from, to)
		if !ok {
			return
		}
		// Eq. 1: moved data over squared distance of the target from
		// the mean. The task set here is a single task from the source
		// side (Σ C_tgt is empty for a one-way move).
		d := s.Temp[to] - mean
		cost := bytes / (d * d)
		if cost < best.cost {
			best = move{task: ti, src: from, dst: to, cost: cost}
		}
	}
	if src >= 0 {
		for c := 0; c < s.NumCores(); c++ {
			consider(src, c)
		}
	} else {
		for c := 0; c < s.NumCores(); c++ {
			consider(c, dstFixed)
		}
	}
	return best, best.task >= 0
}

// pickTask chooses which task to move from core `from` to core `to`:
// among the TopK highest-load migratable tasks, the one whose move best
// equalises the two FSE loads, subject to the power condition and the
// freeze-cost filter.
func (b *Balancer) pickTask(s *policy.Snapshot, from, to int) (ti int, bytes float64, ok bool) {
	cands := make([]policy.TaskView, 0, 8)
	for _, tv := range s.Tasks {
		if tv.Core == from && !tv.Migrating {
			cands = append(cands, tv)
		}
	}
	if len(cands) == 0 {
		return -1, 0, false
	}
	// Highest loads first; stable tiebreak on index for determinism.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].FSE != cands[j].FSE {
			return cands[i].FSE > cands[j].FSE
		}
		return cands[i].Index < cands[j].Index
	})
	if len(cands) > b.p.TopK {
		cands = cands[:b.p.TopK]
	}

	loadFrom := s.FSEOn(from)
	loadTo := s.FSEOn(to)
	fBefore := sq(s.Freq[from]) + sq(s.Freq[to])

	// Note on selection: with DVFS a hot→cold move usually *swaps* the
	// load imbalance rather than shrinking it (the paper's Figure 1:
	// task B bounces between the cores and the time-averaged load
	// equalises), so we do not require each move to reduce the
	// instantaneous imbalance. Among admissible tasks we prefer the
	// lowest post-move power (condition 3 objective) and break ties on
	// the smallest post-move load imbalance.
	bestIdx, bestBytes := -1, 0.0
	bestPow, bestImb := math.Inf(1), math.Inf(1)
	for _, tv := range cands {
		newFrom := loadFrom - tv.FSE
		newTo := loadTo + tv.FSE
		// Condition 3: total switching power must not increase
		// (f² is the DVFS power proxy; V scales with f).
		fAfter := sq(s.LevelFor(newFrom)) + sq(s.LevelFor(newTo))
		if fAfter > fBefore+1e-6 {
			continue
		}
		// MiGra cost filter: predicted freeze within the QoS budget.
		if s.EstimateFreeze != nil && s.EstimateFreeze(tv.Index) > b.p.MaxFreezeS {
			b.filtered++
			continue
		}
		imb := math.Abs(newFrom - newTo)
		if fAfter < bestPow-1e-6 || (math.Abs(fAfter-bestPow) <= 1e-6 && imb < bestImb) {
			bestPow = fAfter
			bestImb = imb
			bestIdx = tv.Index
			bestBytes = tv.StateBytes
		}
	}
	if bestIdx < 0 {
		return -1, 0, false
	}
	return bestIdx, bestBytes, true
}

func sq(x float64) float64 { return x * x }

// Compile-time interface check.
var _ policy.Policy = (*Balancer)(nil)
