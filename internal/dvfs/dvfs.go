// Package dvfs implements the dynamic voltage/frequency scaling layer
// the paper's thermal balancing policy sits on top of (Section 3.1:
// "in our implementation MiGra lies on top of a DVFS policy; thus, the
// power consumption of a task is proportional to its load").
//
// Frequencies form a discrete ladder; the governor picks, per core, the
// lowest level whose capacity covers the sum of the full-speed-
// equivalent (FSE) loads of the tasks mapped there. With the paper's
// ladder {533, 266, 133} MHz this reproduces Table 2 exactly: core 1
// with 65 % FSE runs at 533 MHz, cores 2 and 3 at 266 MHz.
package dvfs

import (
	"errors"
	"fmt"
	"sort"
)

// Ladder is an ordered set of frequency levels in Hz (ascending).
type Ladder struct {
	levels []float64
}

// DefaultLevels is the experiment ladder: 533/266/133 MHz, matching the
// frequencies of the paper's Table 2 plus a deep-idle level.
var DefaultLevels = []float64{133e6, 266e6, 533e6}

// NewLadder builds a ladder from the given levels (any order, must be
// positive and distinct).
func NewLadder(levels []float64) (*Ladder, error) {
	if len(levels) == 0 {
		return nil, errors.New("dvfs: empty ladder")
	}
	ls := append([]float64(nil), levels...)
	sort.Float64s(ls)
	for i, f := range ls {
		if f <= 0 {
			return nil, fmt.Errorf("dvfs: non-positive frequency %g", f)
		}
		if i > 0 && ls[i] == ls[i-1] {
			return nil, fmt.Errorf("dvfs: duplicate frequency %g", f)
		}
	}
	return &Ladder{levels: ls}, nil
}

// Default returns the 533/266/133 MHz ladder.
func Default() *Ladder {
	l, err := NewLadder(DefaultLevels)
	if err != nil {
		panic(err) // static levels cannot fail
	}
	return l
}

// Levels returns the ascending frequency levels (a copy).
func (l *Ladder) Levels() []float64 {
	return append([]float64(nil), l.levels...)
}

// Max returns the top frequency (the FSE reference).
func (l *Ladder) Max() float64 { return l.levels[len(l.levels)-1] }

// Min returns the lowest frequency.
func (l *Ladder) Min() float64 { return l.levels[0] }

// NumLevels returns the ladder size.
func (l *Ladder) NumLevels() int { return len(l.levels) }

// LevelFor returns the lowest frequency f such that the total FSE load
// (fractions of the *maximum* frequency, summed over the core's tasks)
// fits: fseTotal*Max <= f. Loads above 1 saturate at Max.
//
// A small guard band (default 0) can be added by the governor to avoid
// running levels at 100 % utilisation.
func (l *Ladder) LevelFor(fseTotal float64) float64 {
	if fseTotal <= 0 {
		return l.Min()
	}
	need := fseTotal * l.Max()
	for _, f := range l.levels {
		if f >= need-1e-9 {
			return f
		}
	}
	return l.Max()
}

// UtilizationAt converts an FSE load into the utilisation the core sees
// when running at frequency f (1.0 = saturated).
func (l *Ladder) UtilizationAt(fse, f float64) float64 {
	if f <= 0 {
		return 0
	}
	return fse * l.Max() / f
}

// Governor assigns a frequency per core from the summed FSE loads.
// It also records level-switch counts (a DVFS transition has a small
// cost in reality; the statistic validates policies do not thrash).
type Governor struct {
	ladder *Ladder
	// GuardBand inflates loads before level selection, e.g. 0.05 keeps
	// 5 % headroom. The experiments use 0 (the paper's mapping runs
	// core 2 at ~80 % utilisation with no headroom).
	GuardBand float64

	freq     []float64
	switches int
}

// NewGovernor creates a governor for n cores, all starting at the
// minimum level.
func NewGovernor(ladder *Ladder, n int) *Governor {
	g := &Governor{ladder: ladder, freq: make([]float64, n)}
	for i := range g.freq {
		g.freq[i] = ladder.Min()
	}
	return g
}

// Ladder returns the governor's frequency ladder.
func (g *Governor) Ladder() *Ladder { return g.ladder }

// Frequency returns the current frequency of core c.
func (g *Governor) Frequency(c int) float64 { return g.freq[c] }

// Frequencies returns a copy of all per-core frequencies.
func (g *Governor) Frequencies() []float64 {
	return append([]float64(nil), g.freq...)
}

// Update recomputes the level of core c for the given total FSE load and
// returns the chosen frequency.
func (g *Governor) Update(c int, fseTotal float64) float64 {
	want := g.ladder.LevelFor(fseTotal * (1 + g.GuardBand))
	if want != g.freq[c] {
		g.freq[c] = want
		g.switches++
	}
	return want
}

// Set forces core c to frequency f (used by Stop&Go style policies that
// override the governor; f must be a ladder level or 0 for stopped).
func (g *Governor) Set(c int, f float64) error {
	if f == 0 {
		if g.freq[c] != 0 {
			g.freq[c] = 0
			g.switches++
		}
		return nil
	}
	for _, lv := range g.ladder.levels {
		if lv == f {
			if g.freq[c] != f {
				g.freq[c] = f
				g.switches++
			}
			return nil
		}
	}
	return fmt.Errorf("dvfs: %g Hz is not a ladder level", f)
}

// Switches returns the number of level transitions so far.
func (g *Governor) Switches() int { return g.switches }

// MeanFrequency returns the mean of the current per-core frequencies
// (the f_mean of the paper's second candidate condition).
func (g *Governor) MeanFrequency() float64 {
	if len(g.freq) == 0 {
		return 0
	}
	var s float64
	for _, f := range g.freq {
		s += f
	}
	return s / float64(len(g.freq))
}
