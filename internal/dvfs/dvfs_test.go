package dvfs

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewLadderValidation(t *testing.T) {
	if _, err := NewLadder(nil); err == nil {
		t.Error("empty ladder accepted")
	}
	if _, err := NewLadder([]float64{100e6, -1}); err == nil {
		t.Error("negative level accepted")
	}
	if _, err := NewLadder([]float64{100e6, 100e6}); err == nil {
		t.Error("duplicate level accepted")
	}
	l, err := NewLadder([]float64{533e6, 133e6, 266e6})
	if err != nil {
		t.Fatal(err)
	}
	lv := l.Levels()
	if lv[0] != 133e6 || lv[2] != 533e6 {
		t.Errorf("levels not sorted: %v", lv)
	}
}

func TestDefaultLadder(t *testing.T) {
	l := Default()
	if l.Max() != 533e6 {
		t.Errorf("Max = %g", l.Max())
	}
	if l.Min() != 133e6 {
		t.Errorf("Min = %g", l.Min())
	}
	if l.NumLevels() != 3 {
		t.Errorf("NumLevels = %d", l.NumLevels())
	}
}

// The ladder must reproduce the paper's Table 2 frequency assignment
// from the task FSE loads.
func TestTable2FrequencyAssignment(t *testing.T) {
	l := Default()
	// Core 1: BPF1 36.7% + DEMOD 28.3% at 533 MHz are already FSE.
	if got := l.LevelFor(0.367 + 0.283); got != 533e6 {
		t.Errorf("core1 level = %g, want 533 MHz", got)
	}
	// Core 2: BPF2 60.9% + SUM 6.2% at 266 MHz -> FSE halves.
	fse2 := (0.609 + 0.062) * 266.0 / 533.0
	if got := l.LevelFor(fse2); got != 266e6 {
		t.Errorf("core2 level = %g, want 266 MHz", got)
	}
	// Core 3: BPF3 60.9% + LPF 18.8% at 266 MHz.
	fse3 := (0.609 + 0.188) * 266.0 / 533.0
	if got := l.LevelFor(fse3); got != 266e6 {
		t.Errorf("core3 level = %g, want 266 MHz", got)
	}
}

func TestLevelForBoundaries(t *testing.T) {
	l := Default()
	if got := l.LevelFor(0); got != 133e6 {
		t.Errorf("LevelFor(0) = %g, want min", got)
	}
	if got := l.LevelFor(-0.5); got != 133e6 {
		t.Errorf("LevelFor(neg) = %g, want min", got)
	}
	if got := l.LevelFor(1.0); got != 533e6 {
		t.Errorf("LevelFor(1) = %g, want max", got)
	}
	if got := l.LevelFor(2.5); got != 533e6 {
		t.Errorf("LevelFor(overload) = %g, want max (saturate)", got)
	}
	// Exactly at a level boundary: 266/533 of full load fits 266 MHz.
	if got := l.LevelFor(266.0 / 533.0); got != 266e6 {
		t.Errorf("LevelFor(boundary) = %g, want 266 MHz", got)
	}
}

func TestUtilizationAt(t *testing.T) {
	l := Default()
	if got := l.UtilizationAt(0.5, 533e6); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("util at fmax = %g", got)
	}
	if got := l.UtilizationAt(0.25, 266.5e6); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("util at fmax/2 = %g", got)
	}
	if got := l.UtilizationAt(0.5, 0); got != 0 {
		t.Errorf("util at f=0 = %g", got)
	}
}

func TestGovernorUpdateAndSwitches(t *testing.T) {
	g := NewGovernor(Default(), 3)
	if g.Frequency(0) != 133e6 {
		t.Errorf("initial freq = %g", g.Frequency(0))
	}
	g.Update(0, 0.65)
	if g.Frequency(0) != 533e6 {
		t.Errorf("after update = %g", g.Frequency(0))
	}
	if g.Switches() != 1 {
		t.Errorf("switches = %d, want 1", g.Switches())
	}
	// Same load: no switch.
	g.Update(0, 0.65)
	if g.Switches() != 1 {
		t.Errorf("redundant update counted: %d", g.Switches())
	}
	fs := g.Frequencies()
	if len(fs) != 3 || fs[0] != 533e6 || fs[1] != 133e6 {
		t.Errorf("Frequencies = %v", fs)
	}
}

func TestGovernorGuardBand(t *testing.T) {
	g := NewGovernor(Default(), 1)
	g.GuardBand = 0.10
	// 0.47 FSE alone fits 266 MHz (0.47 < 0.499) but with 10% guard it
	// needs 0.517 -> 533 MHz.
	g.Update(0, 0.47)
	if g.Frequency(0) != 533e6 {
		t.Errorf("guard band ignored: %g", g.Frequency(0))
	}
}

func TestGovernorSet(t *testing.T) {
	g := NewGovernor(Default(), 2)
	if err := g.Set(0, 266e6); err != nil {
		t.Fatal(err)
	}
	if g.Frequency(0) != 266e6 {
		t.Error("Set did not apply")
	}
	if err := g.Set(0, 0); err != nil {
		t.Fatal(err)
	}
	if g.Frequency(0) != 0 {
		t.Error("Set(0) did not stop the core")
	}
	if err := g.Set(0, 123); err == nil {
		t.Error("Set accepted off-ladder frequency")
	}
	// Redundant stop does not count a switch.
	before := g.Switches()
	if err := g.Set(0, 0); err != nil {
		t.Fatal(err)
	}
	if g.Switches() != before {
		t.Error("redundant stop counted as switch")
	}
}

func TestMeanFrequency(t *testing.T) {
	g := NewGovernor(Default(), 3)
	g.Set(0, 533e6)
	g.Set(1, 266e6)
	g.Set(2, 266e6)
	want := (533e6 + 266e6 + 266e6) / 3
	if got := g.MeanFrequency(); math.Abs(got-want) > 1 {
		t.Errorf("MeanFrequency = %g, want %g", got, want)
	}
	empty := NewGovernor(Default(), 0)
	if empty.MeanFrequency() != 0 {
		t.Error("empty governor mean != 0")
	}
}

// Property: LevelFor always returns a ladder level with capacity for the
// load (unless saturated), and is monotone in the load.
func TestLevelForProperties(t *testing.T) {
	l := Default()
	f := func(a, b uint16) bool {
		la := float64(a) / 65535
		lb := float64(b) / 65535
		if la > lb {
			la, lb = lb, la
		}
		fa, fb := l.LevelFor(la), l.LevelFor(lb)
		if fa > fb {
			return false // monotonicity
		}
		// Capacity: chosen level covers the load unless saturated.
		if fa < la*l.Max()-1e-6 && fa != l.Max() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
