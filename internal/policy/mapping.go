package policy

import (
	"sort"

	"thermbal/internal/task"
)

// BalanceMapping computes an offline energy-balanced placement for an
// arbitrary task set: the longest-processing-time greedy heuristic
// assigns each task (largest FSE first) to the core with the lowest
// accumulated load. This generalises the paper's hand-made Table 2
// mapping to generated workloads; for the SDR loads it reproduces a
// placement with the same per-core totals.
//
// The mapping is written into each task's Core field and also returned
// as a per-core FSE summary.
func BalanceMapping(tasks []*task.Task, nCores int) []float64 {
	if nCores < 1 {
		panic("policy: BalanceMapping needs at least one core")
	}
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := tasks[order[a]], tasks[order[b]]
		if ta.FSE != tb.FSE {
			return ta.FSE > tb.FSE
		}
		return ta.Name < tb.Name // deterministic tiebreak
	})
	load := make([]float64, nCores)
	for _, ti := range order {
		best := 0
		for c := 1; c < nCores; c++ {
			if load[c] < load[best] {
				best = c
			}
		}
		tasks[ti].Core = best
		load[best] += tasks[ti].FSE
	}
	return load
}
