package policy

import (
	"testing"
)

func snap(temps []float64, powered []bool) *Snapshot {
	var mean float64
	for _, t := range temps {
		mean += t
	}
	mean /= float64(len(temps))
	freqs := make([]float64, len(temps))
	for i := range freqs {
		freqs[i] = 266e6
	}
	return &Snapshot{
		Temp:     temps,
		Freq:     freqs,
		Powered:  powered,
		MeanTemp: mean,
		MeanFreq: 266e6,
	}
}

func TestNoneAndEnergyBalanceDoNothing(t *testing.T) {
	s := snap([]float64{70, 50, 50}, []bool{true, true, true})
	if acts := (None{}).Decide(s); acts != nil {
		t.Errorf("None acted: %v", acts)
	}
	if acts := (EnergyBalance{}).Decide(s); acts != nil {
		t.Errorf("EnergyBalance acted: %v", acts)
	}
	if (None{}).Name() != "none" || (EnergyBalance{}).Name() != "energy-balance" {
		t.Error("names wrong")
	}
}

func TestStopGoStopsHotCore(t *testing.T) {
	p := NewStopGo(3)
	if p.Name() != "stop&go" {
		t.Errorf("name = %q", p.Name())
	}
	s := snap([]float64{62, 54, 52}, []bool{true, true, true})
	acts := p.Decide(s)
	if len(acts) != 1 {
		t.Fatalf("actions = %v", acts)
	}
	stop, ok := acts[0].(StopCore)
	if !ok || stop.Core != 0 {
		t.Fatalf("action = %v, want StopCore{0}", acts[0])
	}
}

func TestStopGoRestartUsesStopReference(t *testing.T) {
	p := NewStopGo(3)
	// Stop at mean 56: reference anchored there.
	s := snap([]float64{62, 54, 52}, []bool{true, true, true})
	p.Decide(s)

	// Whole chip cools together: the moving mean chases the core down,
	// but the anchored reference must still release it once it is 3
	// degrees below the stop-time mean (56 - 3 = 53).
	s2 := snap([]float64{54, 40, 40}, []bool{false, true, true})
	if acts := p.Decide(s2); len(acts) != 0 {
		t.Errorf("released at 54 > 53: %v", acts)
	}
	s3 := snap([]float64{52.9, 40, 40}, []bool{false, true, true})
	acts := p.Decide(s3)
	if len(acts) != 1 {
		t.Fatalf("not released at 52.9 < 53: %v", acts)
	}
	if start, ok := acts[0].(StartCore); !ok || start.Core != 0 {
		t.Fatalf("action = %v, want StartCore{0}", acts[0])
	}
	// Reference consumed: a second stop re-anchors.
	if _, tracked := p.stopRef[0]; tracked {
		t.Error("stop reference not cleared after restart")
	}
}

func TestStopGoInsideBandDoesNothing(t *testing.T) {
	p := NewStopGo(5)
	s := snap([]float64{58, 54, 52}, []bool{true, true, true})
	if acts := p.Decide(s); acts != nil {
		t.Errorf("acted inside band: %v", acts)
	}
}

func TestStopGoZeroValueUsable(t *testing.T) {
	// The zero value (no map) must not panic.
	var p StopGo
	p.Delta = 3
	s := snap([]float64{62, 54, 52}, []bool{true, true, true})
	if acts := p.Decide(s); len(acts) != 1 {
		t.Errorf("zero-value StopGo failed: %v", acts)
	}
}

func TestSnapshotAccessors(t *testing.T) {
	s := snap([]float64{60, 50}, []bool{true, true})
	s.Tasks = []TaskView{
		{Index: 0, Name: "a", Core: 0, FSE: 0.3},
		{Index: 1, Name: "b", Core: 1, FSE: 0.2},
		{Index: 2, Name: "c", Core: 0, FSE: 0.1},
	}
	if s.NumCores() != 2 {
		t.Errorf("NumCores = %d", s.NumCores())
	}
	if got := s.FSEOn(0); got != 0.4 {
		t.Errorf("FSEOn(0) = %g", got)
	}
	on0 := s.TasksOn(0)
	if len(on0) != 2 || on0[0].Name != "a" || on0[1].Name != "c" {
		t.Errorf("TasksOn(0) = %v", on0)
	}
}

func TestActionStringsNonEmpty(t *testing.T) {
	for _, a := range []Action{Migrate{Task: 1, Dst: 2}, StopCore{Core: 0}, StartCore{Core: 0}} {
		if a.String() == "" {
			t.Errorf("%T has empty String", a)
		}
	}
}
