package policy

import (
	"fmt"
	"sort"
	"sync"
)

// The policy registry maps names to constructors so policies are built
// from one place instead of string switches duplicated across the CLIs.
// Baseline policies register themselves below; the paper's thermal
// balancer registers from internal/core (it cannot live here without an
// import cycle), and external code — experiments, examples, future
// policies — may register its own implementations the same way.

// Args carries the tunables a policy constructor may consume. Policies
// ignore fields that do not apply to them (the energy-balance baseline
// takes no run-time parameters at all).
type Args struct {
	// Delta is the threshold distance from the mean temperature (°C).
	Delta float64
	// MinInterval is the minimum time between issued migrations (s).
	// Zero selects the policy's default.
	MinInterval float64
	// TopK bounds the per-core task subset a balancer considers.
	// Zero selects the policy's default.
	TopK int
	// MaxFreezeS is the QoS freeze budget for migrations (s).
	// Zero selects the policy's default.
	MaxFreezeS float64
}

// Factory constructs a fresh policy instance. Stateful policies must
// return a new value on every call so concurrent runs never share
// trigger state.
type Factory func(Args) (Policy, error)

// Entry describes one registered policy for discovery listings. It is
// also the JSON shape the simulation service's /policies endpoint
// serves, so the field names are wire-stable.
type Entry struct {
	// Name is the canonical registered name.
	Name string `json:"name"`
	// Description is a one-line summary for -list output.
	Description string `json:"description"`
	// Aliases are accepted alternative spellings.
	Aliases []string `json:"aliases,omitempty"`
}

var reg = struct {
	sync.RWMutex
	factories map[string]Factory
	entries   map[string]Entry
	aliases   map[string]string // alias -> canonical
}{
	factories: map[string]Factory{},
	entries:   map[string]Entry{},
	aliases:   map[string]string{},
}

// Register adds a named policy constructor. It panics on an empty name
// or a duplicate registration (both are programming errors caught at
// init time), matching the behavior of database/sql-style registries.
func Register(e Entry, f Factory) {
	if e.Name == "" {
		panic("policy: Register with empty name")
	}
	if f == nil {
		panic(fmt.Sprintf("policy: Register %q with nil factory", e.Name))
	}
	reg.Lock()
	defer reg.Unlock()
	if _, dup := reg.factories[e.Name]; dup {
		panic(fmt.Sprintf("policy: duplicate registration of %q", e.Name))
	}
	if canon, taken := reg.aliases[e.Name]; taken {
		panic(fmt.Sprintf("policy: name %q already aliased to %q", e.Name, canon))
	}
	for _, a := range e.Aliases {
		if _, dup := reg.factories[a]; dup {
			panic(fmt.Sprintf("policy: alias %q of %q collides with a registered name", a, e.Name))
		}
		if canon, dup := reg.aliases[a]; dup {
			panic(fmt.Sprintf("policy: alias %q of %q already aliased to %q", a, e.Name, canon))
		}
	}
	reg.factories[e.Name] = f
	reg.entries[e.Name] = e
	for _, a := range e.Aliases {
		reg.aliases[a] = e.Name
	}
}

// Canonical resolves a name or alias to the canonical registered name.
func Canonical(name string) (string, bool) {
	reg.RLock()
	defer reg.RUnlock()
	if _, ok := reg.factories[name]; ok {
		return name, true
	}
	if canon, ok := reg.aliases[name]; ok {
		return canon, true
	}
	return "", false
}

// Lookup returns the factory for a registered name or alias.
func Lookup(name string) (Factory, bool) {
	canon, ok := Canonical(name)
	if !ok {
		return nil, false
	}
	reg.RLock()
	defer reg.RUnlock()
	return reg.factories[canon], true
}

// New constructs a policy by name (canonical or alias). Unknown names
// report the registered alternatives.
func New(name string, a Args) (Policy, error) {
	f, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (registered: %v)", name, Names())
	}
	return f(a)
}

// Names returns the canonical registered names, sorted.
func Names() []string {
	reg.RLock()
	defer reg.RUnlock()
	out := make([]string, 0, len(reg.factories))
	for n := range reg.factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Entries returns the registered entries sorted by name, each with its
// aliases sorted, so listings and JSON encodings are deterministic.
func Entries() []Entry {
	reg.RLock()
	defer reg.RUnlock()
	out := make([]Entry, 0, len(reg.entries))
	for _, e := range reg.entries {
		e.Aliases = append([]string(nil), e.Aliases...)
		sort.Strings(e.Aliases)
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func init() {
	Register(Entry{
		Name:        "none",
		Description: "do nothing: pure DVFS on the static mapping",
	}, func(Args) (Policy, error) { return None{}, nil })
	Register(Entry{
		Name:        "energy-balance",
		Description: "static energy-balanced mapping + DVFS, no run-time actions",
		Aliases:     []string{"eb"},
	}, func(Args) (Policy, error) { return EnergyBalance{}, nil })
	Register(Entry{
		Name:        "stop-go",
		Description: "gate a core at mean+delta, restart at the stop-time mean-delta",
		Aliases:     []string{"stopgo", "stop&go", "sg"},
	}, func(a Args) (Policy, error) {
		if a.Delta <= 0 {
			return nil, fmt.Errorf("policy: stop-go requires a positive delta, got %g", a.Delta)
		}
		return NewStopGo(a.Delta), nil
	})
}
