package policy

import (
	"math"
	"testing"
	"testing/quick"

	"thermbal/internal/task"
)

func TestBalanceMappingSDRLoads(t *testing.T) {
	// The SDR task set: the greedy mapping must produce per-core totals
	// equivalent to the paper's Table 2 (0.65 / 0.335 / 0.398 within
	// permutation).
	tasks := []*task.Task{
		task.MustNew("BPF1", 0.367),
		task.MustNew("DEMOD", 0.283),
		task.MustNew("BPF2", 0.304),
		task.MustNew("SUM", 0.031),
		task.MustNew("BPF3", 0.304),
		task.MustNew("LPF", 0.094),
	}
	load := BalanceMapping(tasks, 3)
	if len(load) != 3 {
		t.Fatalf("loads = %v", load)
	}
	var total float64
	for _, l := range load {
		total += l
	}
	if math.Abs(total-1.383) > 1e-9 {
		t.Errorf("total = %g", total)
	}
	// Greedy LPT keeps the spread small: max-min below the largest task.
	max, min := load[0], load[0]
	for _, l := range load {
		max = math.Max(max, l)
		min = math.Min(min, l)
	}
	if max-min > 0.367 {
		t.Errorf("imbalance %g exceeds largest task", max-min)
	}
	// Every task placed on a valid core.
	for _, tk := range tasks {
		if tk.Core < 0 || tk.Core > 2 {
			t.Errorf("task %s on core %d", tk.Name, tk.Core)
		}
	}
}

func TestBalanceMappingSingleCore(t *testing.T) {
	tasks := []*task.Task{task.MustNew("a", 0.5), task.MustNew("b", 0.3)}
	load := BalanceMapping(tasks, 1)
	if math.Abs(load[0]-0.8) > 1e-12 {
		t.Errorf("load = %v", load)
	}
	if tasks[0].Core != 0 || tasks[1].Core != 0 {
		t.Error("not all tasks on core 0")
	}
}

func TestBalanceMappingPanicsOnZeroCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for 0 cores")
		}
	}()
	BalanceMapping(nil, 0)
}

func TestBalanceMappingDeterministic(t *testing.T) {
	mk := func() []*task.Task {
		return []*task.Task{
			task.MustNew("a", 0.3), task.MustNew("b", 0.3),
			task.MustNew("c", 0.2), task.MustNew("d", 0.2),
		}
	}
	t1, t2 := mk(), mk()
	BalanceMapping(t1, 2)
	BalanceMapping(t2, 2)
	for i := range t1 {
		if t1[i].Core != t2[i].Core {
			t.Fatal("mapping not deterministic (equal-FSE tiebreak unstable)")
		}
	}
}

// Property: greedy LPT never leaves a core empty while another core has
// two or more tasks whose smallest would fit better there (weak
// balance: max load <= min load + largest task FSE).
func TestBalanceMappingBoundProperty(t *testing.T) {
	f := func(raw []uint8, coresRaw uint8) bool {
		n := int(coresRaw%4) + 1
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 16 {
			raw = raw[:16]
		}
		tasks := make([]*task.Task, len(raw))
		var largest float64
		for i, r := range raw {
			fse := 0.01 + float64(r)/256*0.9
			tasks[i] = task.MustNew(string(rune('a'+i)), fse)
			if fse > largest {
				largest = fse
			}
		}
		load := BalanceMapping(tasks, n)
		max, min := load[0], load[0]
		for _, l := range load {
			max = math.Max(max, l)
			min = math.Min(min, l)
		}
		return max-min <= largest+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
