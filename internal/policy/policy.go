// Package policy defines the run-time management policy interface of
// the MPOS and the two baseline policies the paper compares against
// (Section 5.2): Energy-Balancing (static mapping + DVFS, no run-time
// actions) and the modified Stop&Go (shut a core at the upper threshold,
// restart at the lower one, no migration).
//
// The paper's own contribution — the migration-based thermal balancing
// policy — lives in internal/core and implements the same interface.
package policy

import "fmt"

// TaskView is the policy-visible state of one task (what the slave
// daemons publish into the shared statistics area, Section 3.2).
type TaskView struct {
	// Index is the task's index in the stream graph.
	Index int
	// Name is the task name.
	Name string
	// Core is the current placement.
	Core int
	// FSE is the full-speed-equivalent load.
	FSE float64
	// StateBytes is the migration payload (the C_i of Eq. 1).
	StateBytes float64
	// Migrating reports an in-flight migration for this task.
	Migrating bool
}

// Snapshot is the state a policy sees at each evaluation (every thermal
// sensor update, 10 ms).
type Snapshot struct {
	// Time is the simulation time in seconds.
	Time float64
	// Temp is the per-core temperature (°C).
	Temp []float64
	// Freq is the per-core frequency (Hz; 0 when stopped).
	Freq []float64
	// Powered is the per-core power gate state.
	Powered []bool
	// MeanTemp is the current average core temperature (the t_mean the
	// thresholds are anchored to).
	MeanTemp float64
	// MeanFreq is the average core frequency (the f_mean of the second
	// candidate condition).
	MeanFreq float64
	// Tasks lists all tasks in graph order.
	Tasks []TaskView
	// MigrationsPending is the number of in-flight migrations.
	MigrationsPending int

	// LevelFor maps a total FSE load to the DVFS frequency the governor
	// would choose (policies use it to predict post-migration power).
	LevelFor func(fse float64) float64
	// EstimateFreeze predicts the freeze seconds of migrating task ti.
	EstimateFreeze func(ti int) float64
}

// NumCores returns the core count of the snapshot.
func (s *Snapshot) NumCores() int { return len(s.Temp) }

// TasksOn returns views of the tasks on core c, in graph order.
func (s *Snapshot) TasksOn(c int) []TaskView {
	var out []TaskView
	for _, t := range s.Tasks {
		if t.Core == c {
			out = append(out, t)
		}
	}
	return out
}

// FSEOn returns the summed FSE load on core c.
func (s *Snapshot) FSEOn(c int) float64 {
	var sum float64
	for _, t := range s.Tasks {
		if t.Core == c {
			sum += t.FSE
		}
	}
	return sum
}

// Action is a policy decision applied by the engine.
type Action interface {
	fmt.Stringer
	isAction()
}

// Migrate moves task Task to core Dst (at its next checkpoint).
type Migrate struct {
	Task int
	Dst  int
}

func (Migrate) isAction() {}

// String describes the action.
func (a Migrate) String() string { return fmt.Sprintf("migrate task %d -> core %d", a.Task, a.Dst) }

// StopCore power-gates a core (Stop&Go panic action).
type StopCore struct{ Core int }

func (StopCore) isAction() {}

// String describes the action.
func (a StopCore) String() string { return fmt.Sprintf("stop core %d", a.Core) }

// StartCore restarts a stopped core.
type StartCore struct{ Core int }

func (StartCore) isAction() {}

// String describes the action.
func (a StartCore) String() string { return fmt.Sprintf("start core %d", a.Core) }

// Policy decides management actions from periodic snapshots.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Decide inspects the snapshot and returns actions (nil for none).
	Decide(s *Snapshot) []Action
}

// None is the do-nothing policy: pure DVFS on the static mapping.
type None struct{}

// Name implements Policy.
func (None) Name() string { return "none" }

// Decide implements Policy: no actions, ever.
func (None) Decide(*Snapshot) []Action { return nil }

// EnergyBalance is the energy-balancing baseline [Bellosa et al.]: the
// task mapping is chosen offline so per-core energy is balanced (the
// paper's Table 2 placement) and DVFS runs underneath; at run time the
// policy takes no action. It exists as a distinct type so reports can
// label the configuration.
type EnergyBalance struct{}

// Name implements Policy.
func (EnergyBalance) Name() string { return "energy-balance" }

// Decide implements Policy: the balancing already happened offline.
func (EnergyBalance) Decide(*Snapshot) []Action { return nil }

// StopGo is the modified Stop&Go baseline (paper Section 5.2): the
// original policy shuts a core down at a panic temperature and restarts
// it after a timeout; the modified version uses the thermal-balancing
// upper threshold (mean+Delta) as the panic threshold and restarts when
// the core cools to the lower threshold (mean-Delta).
//
// The mean is captured at the instant the core stops: once a core is
// gated off the whole pipeline may stall and every temperature falls
// together, so a moving mean would chase the cooling core downward and
// never release it. Anchoring the band at the stop-time mean gives the
// 2·Delta hysteresis the original timeout provided.
type StopGo struct {
	// Delta is the threshold distance from the mean temperature (°C).
	Delta float64

	// stopRef[c] is the mean temperature captured when core c stopped.
	stopRef map[int]float64
}

// NewStopGo creates the modified Stop&Go policy.
func NewStopGo(delta float64) *StopGo {
	return &StopGo{Delta: delta, stopRef: map[int]float64{}}
}

// Name implements Policy.
func (p *StopGo) Name() string { return "stop&go" }

// Decide implements Policy.
func (p *StopGo) Decide(s *Snapshot) []Action {
	if p.stopRef == nil {
		p.stopRef = map[int]float64{}
	}
	var acts []Action
	for c := 0; c < s.NumCores(); c++ {
		switch {
		case s.Powered[c] && s.Temp[c] > s.MeanTemp+p.Delta:
			acts = append(acts, StopCore{Core: c})
			p.stopRef[c] = s.MeanTemp
		case !s.Powered[c] && s.Temp[c] < p.stopRef[c]-p.Delta:
			acts = append(acts, StartCore{Core: c})
			delete(p.stopRef, c)
		}
	}
	return acts
}

// Compile-time interface checks.
var (
	_ Policy = None{}
	_ Policy = EnergyBalance{}
	_ Policy = (*StopGo)(nil)
)
