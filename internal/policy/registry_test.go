package policy

import (
	"strings"
	"testing"
)

func TestRegistryBaselines(t *testing.T) {
	for name, want := range map[string]string{
		"none":           "none",
		"energy-balance": "energy-balance",
		"eb":             "energy-balance",
		"stop-go":        "stop&go",
		"stopgo":         "stop&go",
		"stop&go":        "stop&go",
		"sg":             "stop&go",
	} {
		p, err := New(name, Args{Delta: 3})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Errorf("New(%q).Name() = %q, want %q", name, p.Name(), want)
		}
	}
}

func TestRegistryUnknown(t *testing.T) {
	_, err := New("no-such-policy", Args{})
	if err == nil {
		t.Fatal("New(no-such-policy) succeeded")
	}
	if !strings.Contains(err.Error(), "energy-balance") {
		t.Errorf("error %q does not list registered policies", err)
	}
}

func TestRegistryStopGoValidation(t *testing.T) {
	if _, err := New("stop-go", Args{}); err == nil {
		t.Fatal("stop-go with zero delta succeeded")
	}
}

func TestRegistryFreshInstances(t *testing.T) {
	a, err := New("stop-go", Args{Delta: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New("stop-go", Args{Delta: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.(*StopGo) == b.(*StopGo) {
		t.Fatal("factory returned a shared StopGo instance")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(Entry{Name: "none"}, func(Args) (Policy, error) { return None{}, nil })
}

func TestCanonical(t *testing.T) {
	if c, ok := Canonical("eb"); !ok || c != "energy-balance" {
		t.Fatalf("Canonical(eb) = %q, %v", c, ok)
	}
	if _, ok := Canonical("bogus"); ok {
		t.Fatal("Canonical(bogus) resolved")
	}
}
