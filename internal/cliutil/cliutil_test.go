package cliutil

import (
	"sort"
	"strings"
	"testing"

	"thermbal/internal/experiment"
)

// TestResolvePolicyAllCLISpellings covers every policy spelling the
// three CLIs historically accepted, now resolved through the registry.
func TestResolvePolicyAllCLISpellings(t *testing.T) {
	for spelling, want := range map[string]string{
		"energy-balance":  "energy-balance",
		"eb":              "energy-balance",
		"stop-go":         "stop-go",
		"stopgo":          "stop-go",
		"stop&go":         "stop-go",
		"sg":              "stop-go",
		"thermal-balance": "thermal-balance",
		"tb":              "thermal-balance",
		"migra":           "thermal-balance",
		"none":            "none",
	} {
		got, err := ResolvePolicy(spelling)
		if err != nil {
			t.Fatalf("ResolvePolicy(%q): %v", spelling, err)
		}
		if got != want {
			t.Errorf("ResolvePolicy(%q) = %q, want %q", spelling, got, want)
		}
	}
	if _, err := ResolvePolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestResolvePolicies(t *testing.T) {
	all, err := ResolvePolicies("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 3 {
		t.Fatalf("'all' expanded to %v, want >= 3 policies", all)
	}
	list, err := ResolvePolicies("tb, eb, thermal-balance")
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0] != "thermal-balance" || list[1] != "energy-balance" {
		t.Errorf("ResolvePolicies dedup/order wrong: %v", list)
	}
}

func TestResolveScenario(t *testing.T) {
	sc, err := ResolveScenario("")
	if err != nil || sc.Name != "sdr-radio" {
		t.Fatalf("empty scenario resolved to %q, err %v; want sdr-radio", sc.Name, err)
	}
	if _, err := ResolveScenario("pipeline-d8"); err != nil {
		t.Errorf("pipeline-d8: %v", err)
	}
	if _, err := ResolveScenario("bogus"); err == nil {
		t.Fatal("bogus scenario accepted")
	}
	names, err := ResolveScenarios("all")
	if err != nil || len(names) < 6 {
		t.Fatalf("ResolveScenarios(all) = %v, %v; want >= 6 names", names, err)
	}
}

func TestParsePackage(t *testing.T) {
	for spelling, want := range map[string]experiment.PackageSel{
		"mobile":           experiment.Mobile,
		"embedded":         experiment.Mobile,
		"highperf":         experiment.HighPerf,
		"high-performance": experiment.HighPerf,
		"hp":               experiment.HighPerf,
	} {
		got, err := ParsePackage(spelling)
		if err != nil || got != want {
			t.Errorf("ParsePackage(%q) = %v, %v; want %v", spelling, got, err, want)
		}
	}
	if _, err := ParsePackage("bogus"); err == nil {
		t.Fatal("bogus package accepted")
	}
}

func TestParseDeltas(t *testing.T) {
	ds, err := ParseDeltas("2, 3.5,4")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 || ds[0] != 2 || ds[1] != 3.5 || ds[2] != 4 {
		t.Errorf("ParseDeltas = %v", ds)
	}
	if ds, err := ParseDeltas(""); err != nil || ds != nil {
		t.Errorf("ParseDeltas(\"\") = %v, %v", ds, err)
	}
	if _, err := ParseDeltas("2,x"); err == nil {
		t.Fatal("bad delta accepted")
	}
}

func TestListText(t *testing.T) {
	out := ListText()
	for _, want := range []string{
		"sdr-radio", "video-decoder", "pipeline-d8", "fanout-w4",
		"bursty-sdr", "manycore-32", "thermal-balance", "stop-go", "energy-balance",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ListText missing %q", want)
		}
	}
}

// TestSuggest covers the did-you-mean helper directly.
func TestSuggest(t *testing.T) {
	known := []string{"sdr-radio", "video-decoder", "pipeline-d8", "pipeline-d16"}
	for name, want := range map[string]string{
		"sdr-raido":    "sdr-radio",   // transposition
		"pipeline-d9":  "pipeline-d8", // substitution
		"video-decode": "video-decoder",
		"zzzz":         "", // nothing plausible
	} {
		if got := Suggest(name, known); got != want {
			t.Errorf("Suggest(%q) = %q, want %q", name, got, want)
		}
	}
	// Ties resolve to the lexicographically first candidate.
	if got := Suggest("pipeline-d", []string{"pipeline-dz", "pipeline-da"}); got != "pipeline-da" {
		t.Errorf("tie broke to %q, want pipeline-da", got)
	}
}

// TestUnknownNameErrors checks the full error shape: a did-you-mean
// suggestion when plausible, always the sorted known-name list.
func TestUnknownNameErrors(t *testing.T) {
	_, err := ResolveScenario("sdr-raido")
	if err == nil || !strings.Contains(err.Error(), `did you mean "sdr-radio"?`) {
		t.Errorf("scenario typo error = %v", err)
	}
	if err != nil && !strings.Contains(err.Error(), "known scenarios:") {
		t.Errorf("scenario error missing catalogue: %v", err)
	}
	// The catalogue must be sorted.
	if err != nil {
		listing := err.Error()[strings.Index(err.Error(), "known scenarios:"):]
		names := strings.Split(strings.TrimSuffix(strings.TrimPrefix(listing, "known scenarios: "), ")"), ", ")
		if !sort.StringsAreSorted(names) {
			t.Errorf("catalogue not sorted: %v", names)
		}
	}

	// Alias typos suggest the canonical name.
	_, err = ResolvePolicy("migr")
	if err == nil || !strings.Contains(err.Error(), `did you mean "thermal-balance"?`) {
		t.Errorf("policy alias typo error = %v", err)
	}
	_, err = ResolvePolicy("qqqq")
	if err == nil || strings.Contains(err.Error(), "did you mean") {
		t.Errorf("far-off policy still suggested: %v", err)
	}
	if err != nil && !strings.Contains(err.Error(), "known policies:") {
		t.Errorf("policy error missing list: %v", err)
	}

	// The comma-list resolvers inherit the suggestion.
	_, err = ResolveScenarios("sdr-radio,video-decodr")
	if err == nil || !strings.Contains(err.Error(), `did you mean "video-decoder"?`) {
		t.Errorf("ResolveScenarios typo error = %v", err)
	}
}
