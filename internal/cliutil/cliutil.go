// Package cliutil is the shared flag-parsing layer of the three CLIs
// (thermsim, sweep, figures): scenario and policy resolution against
// the registries, package and delta parsing, and the -list discovery
// output. Keeping it in one place means every binary accepts the same
// spellings and prints the same catalogue — and the parsing is testable
// without driving main().
package cliutil

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	_ "thermbal/internal/core" // register the thermal-balance policy
	"thermbal/internal/experiment"
	"thermbal/internal/policy"
	"thermbal/internal/scenario"
	"thermbal/internal/thermal"
)

// ResolveScenario resolves a -scenario flag value to a registered
// scenario. An empty value selects the paper's SDR benchmark.
func ResolveScenario(name string) (scenario.Scenario, error) {
	if name == "" {
		name = scenario.DefaultName
	}
	return scenario.Lookup(name)
}

// ResolvePolicy resolves a -policy flag value (canonical name or alias)
// to the canonical registered name.
func ResolvePolicy(name string) (string, error) {
	canon, ok := policy.Canonical(name)
	if !ok {
		return "", fmt.Errorf("unknown policy %q (registered: %s)", name, strings.Join(policy.Names(), ", "))
	}
	return canon, nil
}

// ResolvePolicies expands a -policy flag value into canonical names:
// "all" selects every registered policy, otherwise a comma-separated
// list of names or aliases is resolved (duplicates collapse).
func ResolvePolicies(spec string) ([]string, error) {
	if spec == "all" {
		return policy.Names(), nil
	}
	var out []string
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		canon, err := ResolvePolicy(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if !seen[canon] {
			seen[canon] = true
			out = append(out, canon)
		}
	}
	return out, nil
}

// ResolveScenarios expands a -scenario flag value: "all" selects every
// registered scenario, otherwise a comma-separated list of names.
func ResolveScenarios(spec string) ([]string, error) {
	if spec == "all" {
		return scenario.Names(), nil
	}
	var out []string
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		sc, err := ResolveScenario(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if !seen[sc.Name] {
			seen[sc.Name] = true
			out = append(out, sc.Name)
		}
	}
	return out, nil
}

// ParsePackage resolves a -package flag value.
func ParsePackage(name string) (experiment.PackageSel, error) {
	switch name {
	case "mobile", "embedded", "mobile-embedded":
		return experiment.Mobile, nil
	case "highperf", "high-performance", "hp":
		return experiment.HighPerf, nil
	default:
		return experiment.Mobile, fmt.Errorf("unknown package %q (mobile | highperf)", name)
	}
}

// ParseIntegrator resolves a -integrator flag value.
func ParseIntegrator(name string) (thermal.Config, error) {
	scheme, err := thermal.ParseScheme(name)
	if err != nil {
		return thermal.Config{}, err
	}
	return thermal.Config{Scheme: scheme}, nil
}

// ParseDeltas parses a comma-separated -deltas flag value; empty input
// returns nil (caller applies its default sweep).
func ParseDeltas(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad delta %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// ListText renders the -list discovery output: the scenario catalogue
// and the policy registry.
func ListText() string {
	var b strings.Builder
	b.WriteString("Registered scenarios:\n")
	fmt.Fprintf(&b, "  %-14s %-6s %-6s %-38s %s\n", "name", "cores", "tasks", "topology", "description")
	for _, s := range scenario.All() {
		fmt.Fprintf(&b, "  %-14s %-6d %-6d %-38s %s\n", s.Name, s.Cores, s.Tasks, s.Topology, s.Description)
	}
	b.WriteString("\nRegistered policies:\n")
	entries := policy.Entries()
	for _, e := range entries {
		alias := ""
		if len(e.Aliases) > 0 {
			a := append([]string(nil), e.Aliases...)
			sort.Strings(a)
			alias = " (aliases: " + strings.Join(a, ", ") + ")"
		}
		fmt.Fprintf(&b, "  %-16s %s%s\n", e.Name, e.Description, alias)
	}
	return b.String()
}
