// Package cliutil is the shared flag-parsing layer of the three CLIs
// (thermsim, sweep, figures): scenario and policy resolution against
// the registries, package and delta parsing, and the -list discovery
// output. Keeping it in one place means every binary accepts the same
// spellings and prints the same catalogue — and the parsing is testable
// without driving main().
package cliutil

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	_ "thermbal/internal/core" // register the thermal-balance policy
	"thermbal/internal/experiment"
	"thermbal/internal/policy"
	"thermbal/internal/scenario"
	"thermbal/internal/thermal"
)

// Suggest returns the candidate closest to name in edit distance, or
// "" when nothing is close enough to be a plausible typo. The
// threshold scales with the input length so short names only match
// near-exact spellings. Ties go to the lexicographically first
// candidate, keeping the suggestion deterministic.
func Suggest(name string, candidates []string) string {
	max := 1 + len(name)/4
	best, bestDist := "", max+1
	sorted := append([]string(nil), candidates...)
	sort.Strings(sorted)
	for _, c := range sorted {
		if d := editDistance(name, c); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// unknownNameError builds the error for an unresolvable name: the
// did-you-mean suggestion when one was found ("" for none), always
// followed by the sorted known-name list.
func unknownNameError(kind, name, suggestion string, known []string) error {
	plural := kind + "s"
	if strings.HasSuffix(kind, "y") {
		plural = strings.TrimSuffix(kind, "y") + "ies"
	}
	sorted := append([]string(nil), known...)
	sort.Strings(sorted)
	if suggestion != "" {
		return fmt.Errorf("unknown %s %q (did you mean %q?; known %s: %s)",
			kind, name, suggestion, plural, strings.Join(sorted, ", "))
	}
	return fmt.Errorf("unknown %s %q (known %s: %s)",
		kind, name, plural, strings.Join(sorted, ", "))
}

// ResolveScenario resolves a -scenario flag value to a registered
// scenario. An empty value selects the paper's SDR benchmark; unknown
// names get a did-you-mean suggestion plus the full catalogue — unless
// the name is an existing file path, in which case the user almost
// certainly meant -scenario-file and a Levenshtein suggestion would
// only mislead.
func ResolveScenario(name string) (scenario.Scenario, error) {
	if name == "" {
		name = scenario.DefaultName
	}
	sc, err := scenario.Lookup(name)
	if err != nil {
		if fi, statErr := os.Stat(name); statErr == nil && !fi.IsDir() {
			return scenario.Scenario{}, fmt.Errorf("unknown scenario %q names an existing file — pass spec files with -scenario-file", name)
		}
		return scenario.Scenario{}, unknownNameError("scenario", name, Suggest(name, scenario.Names()), scenario.Names())
	}
	return sc, nil
}

// LoadSpec reads and strictly decodes a scenario spec file: unknown
// fields, trailing data and validation failures are all errors, so a
// typo'd key can never silently select a default. The returned spec is
// normalized (defaults explicit).
func LoadSpec(path string) (scenario.Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return scenario.Spec{}, fmt.Errorf("scenario spec: %w", err)
	}
	var sp scenario.Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return scenario.Spec{}, fmt.Errorf("scenario spec %s: %w", path, err)
	}
	if dec.More() {
		return scenario.Spec{}, fmt.Errorf("scenario spec %s: trailing data after JSON document", path)
	}
	n, err := sp.Normalize()
	if err != nil {
		return scenario.Spec{}, fmt.Errorf("scenario spec %s: %w", path, err)
	}
	return n, nil
}

// ResolveScenarioArg resolves the -scenario / -scenario-file flag pair
// every CLI shares: exactly one source wins, a file loads and compiles
// through the spec path, a name resolves through the registry. The
// returned spec is non-nil exactly when a file was given.
func ResolveScenarioArg(name, file string) (scenario.Scenario, *scenario.Spec, error) {
	if file == "" {
		sc, err := ResolveScenario(name)
		return sc, nil, err
	}
	if name != "" {
		return scenario.Scenario{}, nil, fmt.Errorf("-scenario and -scenario-file are mutually exclusive")
	}
	sp, err := LoadSpec(file)
	if err != nil {
		return scenario.Scenario{}, nil, err
	}
	sc, err := scenario.FromSpec(sp)
	if err != nil {
		return scenario.Scenario{}, nil, err
	}
	return sc, &sp, nil
}

// SpecJSON renders a scenario's declarative spec as indented JSON (for
// -dump-spec). Scenarios without a spec form report an error naming
// the scenario.
func SpecJSON(sc scenario.Scenario) ([]byte, error) {
	if sc.Spec == nil {
		return nil, fmt.Errorf("scenario %q has no declarative spec", sc.Name)
	}
	out, err := json.MarshalIndent(sc.Spec, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ResolvePolicy resolves a -policy flag value (canonical name or alias)
// to the canonical registered name. Unknown names get a did-you-mean
// suggestion (matched against canonical names and aliases, reported as
// the canonical name) plus the registered-name list.
func ResolvePolicy(name string) (string, error) {
	canon, ok := policy.Canonical(name)
	if !ok {
		spellings := policy.Names()
		for _, e := range policy.Entries() {
			spellings = append(spellings, e.Aliases...)
		}
		s := Suggest(name, spellings)
		if c, ok := policy.Canonical(s); ok {
			s = c
		}
		return "", unknownNameError("policy", name, s, policy.Names())
	}
	return canon, nil
}

// ResolvePolicies expands a -policy flag value into canonical names:
// "all" selects every registered policy, otherwise a comma-separated
// list of names or aliases is resolved (duplicates collapse).
func ResolvePolicies(spec string) ([]string, error) {
	if spec == "all" {
		return policy.Names(), nil
	}
	var out []string
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		canon, err := ResolvePolicy(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if !seen[canon] {
			seen[canon] = true
			out = append(out, canon)
		}
	}
	return out, nil
}

// ResolveScenarios expands a -scenario flag value: "all" selects every
// registered scenario, otherwise a comma-separated list of names.
func ResolveScenarios(spec string) ([]string, error) {
	if spec == "all" {
		return scenario.Names(), nil
	}
	var out []string
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		sc, err := ResolveScenario(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if !seen[sc.Name] {
			seen[sc.Name] = true
			out = append(out, sc.Name)
		}
	}
	return out, nil
}

// ParsePackage resolves a -package flag value.
func ParsePackage(name string) (experiment.PackageSel, error) {
	switch name {
	case "mobile", "embedded", "mobile-embedded":
		return experiment.Mobile, nil
	case "highperf", "high-performance", "hp":
		return experiment.HighPerf, nil
	default:
		return experiment.Mobile, fmt.Errorf("unknown package %q (mobile | highperf)", name)
	}
}

// ParseIntegrator resolves a -integrator flag value.
func ParseIntegrator(name string) (thermal.Config, error) {
	scheme, err := thermal.ParseScheme(name)
	if err != nil {
		return thermal.Config{}, err
	}
	return thermal.Config{Scheme: scheme}, nil
}

// ParseDeltas parses a comma-separated -deltas flag value; empty input
// returns nil (caller applies its default sweep).
func ParseDeltas(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad delta %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// ListText renders the -list discovery output: the scenario catalogue
// and the policy registry.
func ListText() string {
	var b strings.Builder
	b.WriteString("Registered scenarios:\n")
	fmt.Fprintf(&b, "  %-14s %-6s %-6s %-38s %s\n", "name", "cores", "tasks", "topology", "description")
	for _, s := range scenario.All() {
		fmt.Fprintf(&b, "  %-14s %-6d %-6d %-38s %s\n", s.Name, s.Cores, s.Tasks, s.Topology, s.Description)
	}
	b.WriteString("\nRegistered policies:\n")
	entries := policy.Entries()
	for _, e := range entries {
		alias := ""
		if len(e.Aliases) > 0 {
			a := append([]string(nil), e.Aliases...)
			sort.Strings(a)
			alias = " (aliases: " + strings.Join(a, ", ") + ")"
		}
		fmt.Fprintf(&b, "  %-16s %s%s\n", e.Name, e.Description, alias)
	}
	return b.String()
}
