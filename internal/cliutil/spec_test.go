package cliutil

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"thermbal/internal/scenario"
)

// writeSpecFile dumps a builtin's spec to a temp file and returns the
// path.
func writeSpecFile(t *testing.T, name string) string {
	t.Helper()
	sc, err := scenario.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(sc.Spec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name+".json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestResolveScenarioFilePathHint: passing a file path to -scenario
// gets a pointer to -scenario-file, not a Levenshtein guess at the
// catalogue.
func TestResolveScenarioFilePathHint(t *testing.T) {
	path := writeSpecFile(t, "sdr-radio")
	_, err := ResolveScenario(path)
	if err == nil {
		t.Fatal("file path resolved as a scenario name")
	}
	if !strings.Contains(err.Error(), "-scenario-file") {
		t.Errorf("no -scenario-file hint: %v", err)
	}
	if strings.Contains(err.Error(), "did you mean") {
		t.Errorf("file path still got a name suggestion: %v", err)
	}
	// A directory is not a spec file; fall back to the normal
	// did-you-mean path.
	if _, err := ResolveScenario(t.TempDir()); err == nil ||
		strings.Contains(err.Error(), "-scenario-file") {
		t.Errorf("directory triggered the file hint: %v", err)
	}
}

func TestLoadSpec(t *testing.T) {
	path := writeSpecFile(t, "sdr-radio")
	sp, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if name, ok := scenario.BuiltinNameForSpec(sp); !ok || name != "sdr-radio" {
		t.Errorf("loaded spec resolves to %q, %v", name, ok)
	}
	if sp.Graph.QueueCap != 11 {
		t.Errorf("loaded spec not normalized: queue_cap %d", sp.Graph.QueueCap)
	}

	writeCase := func(content string) string {
		p := filepath.Join(t.TempDir(), "case.json")
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := LoadSpec(writeCase(`{"grpah":{}}`)); err == nil ||
		!strings.Contains(err.Error(), "grpah") {
		t.Errorf("unknown field not rejected: %v", err)
	}
	if _, err := LoadSpec(writeCase(`{} {}`)); err == nil ||
		!strings.Contains(err.Error(), "trailing data") {
		t.Errorf("trailing data not rejected: %v", err)
	}
	if _, err := LoadSpec(writeCase(`{}`)); err == nil ||
		!strings.Contains(err.Error(), "at least one") {
		t.Errorf("empty spec not validated: %v", err)
	}
	if _, err := LoadSpec(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file not an error")
	}
}

func TestResolveScenarioArg(t *testing.T) {
	// Name only.
	sc, sp, err := ResolveScenarioArg("video-decoder", "")
	if err != nil || sp != nil || sc.Name != "video-decoder" {
		t.Errorf("name resolution: %v, spec %v, name %q", err, sp, sc.Name)
	}
	// Empty both: the default scenario.
	sc, sp, err = ResolveScenarioArg("", "")
	if err != nil || sp != nil || sc.Name != scenario.DefaultName {
		t.Errorf("default resolution: %v, spec %v, name %q", err, sp, sc.Name)
	}
	// File only: loads through the spec path.
	path := writeSpecFile(t, "sdr-radio")
	sc, sp, err = ResolveScenarioArg("", path)
	if err != nil || sp == nil {
		t.Fatalf("file resolution: %v, spec %v", err, sp)
	}
	if sc.Name != "sdr-radio" {
		t.Errorf("file scenario name %q", sc.Name)
	}
	// Both: mutually exclusive.
	if _, _, err := ResolveScenarioArg("sdr-radio", path); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("both flags accepted: %v", err)
	}
}

// TestSpecJSONRoundTrip: -dump-spec output loads back to the same
// content identity.
func TestSpecJSONRoundTrip(t *testing.T) {
	for _, s := range scenario.All() {
		out, err := SpecJSON(s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		p := filepath.Join(t.TempDir(), s.Name+".json")
		if err := os.WriteFile(p, out, 0o644); err != nil {
			t.Fatal(err)
		}
		sp, err := LoadSpec(p)
		if err != nil {
			t.Fatalf("%s: reload: %v", s.Name, err)
		}
		if sp.Hash() != s.Spec.Hash() {
			t.Errorf("%s: dump/load changed the spec hash", s.Name)
		}
	}
	if _, err := SpecJSON(scenario.Scenario{Name: "bare"}); err == nil {
		t.Error("SpecJSON without a spec did not error")
	}
}
