package migrate

import (
	"errors"
	"math"
	"testing"

	"thermbal/internal/bus"
	"thermbal/internal/task"
)

func newEnv(mech Mechanism) (*bus.Bus, *Manager, *task.Task) {
	b := bus.New(bus.Params{BandwidthBytesPerSec: 1 << 20, PerTransferOverheadS: 0.002})
	m := NewManager(b, mech)
	t := task.MustNew("BPF1", 0.367)
	t.BindWork(533e6, 0.02)
	t.Core = 0
	return b, m, t
}

// drive advances bus and manager together until the migration completes
// or the step budget runs out; returns elapsed seconds.
func drive(b *bus.Bus, m *Manager, mg *Migration, start float64) float64 {
	const h = 1e-3
	now := start
	for i := 0; i < 100000 && mg.Phase != Done; i++ {
		b.Advance(h)
		now += h
		m.Advance(now)
	}
	return now - start
}

func TestRequestValidation(t *testing.T) {
	_, m, tk := newEnv(Replication)
	if _, err := m.Request(tk, 0, 0, 1.0); !errors.Is(err, ErrSamePlace) {
		t.Errorf("same-core request err = %v", err)
	}
	if _, err := m.Request(tk, 0, 1, 1.0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Request(tk, 0, 2, 1.0); !errors.Is(err, ErrBusy) {
		t.Errorf("double request err = %v", err)
	}
	s := m.Stats()
	if s.Requested != 1 || s.Rejected != 2 {
		t.Errorf("stats = %+v", s)
	}
	if m.NumPending() != 1 {
		t.Errorf("NumPending = %d", m.NumPending())
	}
}

func TestReplicationLifecycle(t *testing.T) {
	b, m, tk := newEnv(Replication)
	mg, err := m.Request(tk, 0, 2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if mg.Phase != WaitCheckpoint {
		t.Fatalf("phase = %v", mg.Phase)
	}
	// Before the checkpoint the task keeps running.
	if !tk.Runnable() {
		t.Error("task not runnable while waiting for checkpoint")
	}
	froze, err := m.AtCheckpoint(0, 1.5)
	if err != nil || !froze {
		t.Fatalf("AtCheckpoint = (%v,%v)", froze, err)
	}
	if tk.Runnable() {
		t.Error("task runnable while transferring")
	}
	if mg.Phase != Transferring {
		t.Fatalf("phase = %v", mg.Phase)
	}
	var completed *Migration
	m.OnComplete = func(x *Migration) { completed = x }
	elapsed := drive(b, m, mg, 1.5)
	if mg.Phase != Done {
		t.Fatal("migration never completed")
	}
	if completed != mg {
		t.Error("OnComplete not invoked")
	}
	if tk.Core != 2 || !tk.Runnable() {
		t.Errorf("after migration: core %d, state %v", tk.Core, tk.State)
	}
	if tk.Migrations != 1 {
		t.Errorf("task migration count = %d", tk.Migrations)
	}
	// 64 KB at 1 MB/s ≈ 64 ms (+2 ms overhead).
	if elapsed < 0.05 || elapsed > 0.09 {
		t.Errorf("replication freeze = %g s, want ≈0.066", elapsed)
	}
	s := m.Stats()
	if s.Completed != 1 || s.BytesMoved != task.DefaultStateBytes {
		t.Errorf("stats = %+v", s)
	}
	if s.PerTask["BPF1"] != 1 {
		t.Errorf("per-task count = %v", s.PerTask)
	}
	if s.WaitTime != 0.5 {
		t.Errorf("wait time = %g, want 0.5", s.WaitTime)
	}
	if m.NumPending() != 0 {
		t.Error("pending not cleared")
	}
}

func TestRecreationSlowerThanReplication(t *testing.T) {
	bR, mR, tkR := newEnv(Replication)
	bC, mC, tkC := newEnv(Recreation)

	mgR, _ := mR.Request(tkR, 0, 1, 0)
	mR.AtCheckpoint(0, 0)
	dR := drive(bR, mR, mgR, 0)

	mgC, _ := mC.Request(tkC, 0, 1, 0)
	mC.AtCheckpoint(0, 0)
	dC := drive(bC, mC, mgC, 0)

	if dC <= dR {
		t.Errorf("recreation (%g s) not slower than replication (%g s)", dC, dR)
	}
	// The gap must include at least the restore overhead.
	if dC-dR < mC.RestoreOverheadS*0.9 {
		t.Errorf("recreation gap %g below restore overhead %g", dC-dR, mC.RestoreOverheadS)
	}
	// Stats count state+code bytes for recreation.
	if got := mC.Stats().BytesMoved; got != task.DefaultStateBytes+task.DefaultCodeBytes {
		t.Errorf("recreation bytes = %g", got)
	}
}

func TestCheckpointWithoutPendingIsNoop(t *testing.T) {
	_, m, tk := newEnv(Replication)
	froze, err := m.AtCheckpoint(0, 1.0)
	if err != nil || froze {
		t.Errorf("AtCheckpoint no-op = (%v,%v)", froze, err)
	}
	_ = tk
}

func TestCheckpointMidFrameRejected(t *testing.T) {
	_, m, tk := newEnv(Replication)
	m.Request(tk, 0, 1, 0)
	tk.StartFrame() // task mid-frame: freeze must fail
	if _, err := m.AtCheckpoint(0, 0.1); err == nil {
		t.Error("mid-frame freeze accepted")
	}
}

func TestSecondCheckpointWhileTransferring(t *testing.T) {
	_, m, tk := newEnv(Replication)
	mg, _ := m.Request(tk, 0, 1, 0)
	m.AtCheckpoint(0, 0)
	froze, err := m.AtCheckpoint(0, 0.01)
	if err != nil || froze {
		t.Errorf("second checkpoint = (%v,%v), want no-op", froze, err)
	}
	if mg.Phase != Transferring {
		t.Errorf("phase = %v", mg.Phase)
	}
}

func TestEstimateMatchesActualFreeze(t *testing.T) {
	b, m, tk := newEnv(Replication)
	est := m.EstimateFreezeS(tk, 1)
	mg, _ := m.Request(tk, 0, 1, 0)
	m.AtCheckpoint(0, 0)
	actual := drive(b, m, mg, 0)
	if diff := actual - est; diff < -0.005 || diff > 0.005 {
		t.Errorf("estimate %g vs actual %g", est, actual)
	}
}

func TestFreezeStatsAccumulate(t *testing.T) {
	b, m, tk := newEnv(Replication)
	for i := 0; i < 3; i++ {
		dst := (tk.Core + 1) % 3
		mg, err := m.Request(tk, 0, dst, 0)
		if err != nil {
			t.Fatal(err)
		}
		m.AtCheckpoint(0, 0)
		drive(b, m, mg, 0)
	}
	s := m.Stats()
	if s.Completed != 3 {
		t.Fatalf("completed = %d", s.Completed)
	}
	if s.FreezeTime <= 0 || s.MaxFreeze <= 0 || s.FreezeTime < s.MaxFreeze {
		t.Errorf("freeze stats inconsistent: %+v", s)
	}
	if s.BytesMoved != 3*task.DefaultStateBytes {
		t.Errorf("bytes moved = %g", s.BytesMoved)
	}
}

func TestCostCyclesScalesWithSize(t *testing.T) {
	_, m, _ := newEnv(Replication)
	_, mc, _ := newEnv(Recreation)
	small := task.MustNew("small", 0.1)
	small.StateBytes = 16 << 10
	small.CodeBytes = 16 << 10
	big := task.MustNew("big", 0.1)
	big.StateBytes = 512 << 10
	big.CodeBytes = 512 << 10

	const f = 533e6
	cs := m.CostCycles(small, f)
	cb := m.CostCycles(big, f)
	if cb <= cs {
		t.Errorf("cost not increasing with size: %g vs %g", cs, cb)
	}
	// Figure 2 shape: at equal size, recreation costs more (offset) and
	// grows faster (slope).
	rs := mc.CostCycles(small, f)
	rb := mc.CostCycles(big, f)
	if rs <= cs || rb <= cb {
		t.Error("recreation not above replication")
	}
	slopeRepl := (cb - cs) / (512 - 16)
	slopeRecr := (rb - rs) / (512 - 16)
	if slopeRecr <= slopeRepl {
		t.Errorf("recreation slope %g not steeper than replication %g", slopeRecr, slopeRepl)
	}
}

func TestMechanismAndPhaseStrings(t *testing.T) {
	if Replication.String() != "task-replication" || Recreation.String() != "task-recreation" {
		t.Error("mechanism names wrong")
	}
	if Mechanism(5).String() != "Mechanism(5)" {
		t.Error("unknown mechanism name")
	}
	names := map[Phase]string{
		WaitCheckpoint: "wait-checkpoint",
		Transferring:   "transferring",
		Restoring:      "restoring",
		Done:           "done",
		Phase(9):       "Phase(9)",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("Phase %d name = %q, want %q", p, p.String(), want)
		}
	}
}

func TestPendingLookup(t *testing.T) {
	_, m, tk := newEnv(Replication)
	if _, ok := m.Pending(0); ok {
		t.Error("phantom pending")
	}
	mg, _ := m.Request(tk, 0, 1, 0)
	got, ok := m.Pending(0)
	if !ok || got != mg {
		t.Error("Pending lookup failed")
	}
}

func TestTransitQueries(t *testing.T) {
	b, m, tk := newEnv(Recreation)
	if m.NumTransferring() != 0 {
		t.Fatal("transferring before any request")
	}
	if !math.IsInf(m.NextPhaseTransitionAt(), 1) {
		t.Fatal("phase transition scheduled before any request")
	}
	mg, err := m.Request(tk, 0, 1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// WaitCheckpoint: still nothing in transit, no self-timed transition.
	if m.NumTransferring() != 0 || !math.IsInf(m.NextPhaseTransitionAt(), 1) {
		t.Errorf("wait-checkpoint: transferring=%d nextAt=%v", m.NumTransferring(), m.NextPhaseTransitionAt())
	}
	if _, err := m.AtCheckpoint(0, 1.5); err != nil {
		t.Fatal(err)
	}
	if m.NumTransferring() != 1 {
		t.Errorf("transferring = %d after freeze", m.NumTransferring())
	}
	// Drive until the transfer finishes; recreation then enters
	// Restoring with a self-timed end the query must report.
	const h = 1e-3
	now := 1.5
	for i := 0; i < 100000 && mg.Phase == Transferring; i++ {
		b.Advance(h)
		now += h
		m.Advance(now)
	}
	if mg.Phase != Restoring {
		t.Fatalf("phase = %v after transfer", mg.Phase)
	}
	if m.NumTransferring() != 0 {
		t.Errorf("transferring = %d during restore", m.NumTransferring())
	}
	at := m.NextPhaseTransitionAt()
	if math.IsInf(at, 1) || at < now || at > now+2*m.RestoreOverheadS {
		t.Errorf("NextPhaseTransitionAt = %v, want within (%v, %v]", at, now, now+m.RestoreOverheadS)
	}
	m.Advance(at)
	if mg.Phase != Done {
		t.Errorf("phase = %v at restore end", mg.Phase)
	}
	if !math.IsInf(m.NextPhaseTransitionAt(), 1) {
		t.Error("phase transition still scheduled after completion")
	}
}
