// Package migrate implements the task-migration middleware of the
// paper's MPOS (Section 3.2): a master daemon that arbitrates migration
// requests, per-core slave daemons, checkpoint-based freezing, and the
// two migration mechanisms:
//
//   - task-replication: a suspended replica of each task exists in every
//     local OS, so only the live context (64 KB, the minimum OS
//     allocation) crosses the shared bus;
//   - task-recreation: the process is killed and re-created via
//     fork/exec on the destination, which additionally reloads the code
//     image from the filesystem and pays an allocation overhead — the
//     offset and steeper slope of the paper's Figure 2.
//
// Migration is only permitted at user-defined checkpoints, which the
// streaming library places at frame boundaries.
package migrate

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"thermbal/internal/bus"
	"thermbal/internal/task"
)

// Mechanism selects the migration implementation.
type Mechanism int

const (
	// Replication is the task-replication mechanism (default: the
	// paper's MicroBlaze platform cannot run PIC code, so recreation is
	// unavailable there).
	Replication Mechanism = iota
	// Recreation is the fork/exec task-recreation mechanism.
	Recreation
)

// String names the mechanism.
func (m Mechanism) String() string {
	switch m {
	case Replication:
		return "task-replication"
	case Recreation:
		return "task-recreation"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

// Phase is the state of one migration.
type Phase int

const (
	// WaitCheckpoint: requested, task still running toward its next
	// frame boundary.
	WaitCheckpoint Phase = iota
	// Transferring: task frozen, context crossing the shared bus.
	Transferring
	// Restoring: transfer done; destination OS re-creating the process
	// (recreation only; replication resumes immediately).
	Restoring
	// Done: task resumed on the destination core.
	Done
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case WaitCheckpoint:
		return "wait-checkpoint"
	case Transferring:
		return "transferring"
	case Restoring:
		return "restoring"
	case Done:
		return "done"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Migration tracks one in-flight task move.
type Migration struct {
	Task     *task.Task
	TaskIdx  int
	Src, Dst int
	Phase    Phase

	RequestedAt float64
	FrozenAt    float64
	CompletedAt float64

	transfer   *bus.Transfer
	reload     *bus.Transfer // recreation only: concurrent code reload
	restoreEnd float64
	bytes      float64
}

// Bytes returns the payload size this migration moves across the bus.
func (m *Migration) Bytes() float64 { return m.bytes }

// FreezeDuration returns how long the task was frozen (valid once Done).
func (m *Migration) FreezeDuration() float64 { return m.CompletedAt - m.FrozenAt }

// Stats aggregates migration activity for the experiment reports
// (paper metrics ii: average quantity of migrated data and number of
// migrated tasks).
type Stats struct {
	Requested   int
	Completed   int
	Rejected    int
	BytesMoved  float64
	FreezeTime  float64 // summed task-frozen seconds
	MaxFreeze   float64
	WaitTime    float64 // summed request→checkpoint seconds
	PerTask     map[string]int
	LastTrigger float64
}

// Manager is the master daemon: it owns pending migrations and drives
// them through the checkpoint/transfer/restore protocol.
type Manager struct {
	bus  *bus.Bus
	mech Mechanism

	// RestoreOverheadS is the fixed fork/exec+allocation time charged
	// by the recreation mechanism after the transfer completes.
	RestoreOverheadS float64

	pending map[int]*Migration // task index -> active migration
	stats   Stats

	// OnComplete, when non-nil, is invoked as each migration finishes
	// (the engine rebinds the scheduler and DVFS there).
	OnComplete func(*Migration)
}

// DefaultRestoreOverheadS models the fork/exec + dynamic-loading cost of
// task recreation (the Figure 2 curve offset).
const DefaultRestoreOverheadS = 15e-3

// NewManager creates a migration manager over the given bus.
func NewManager(b *bus.Bus, mech Mechanism) *Manager {
	return &Manager{
		bus:              b,
		mech:             mech,
		RestoreOverheadS: DefaultRestoreOverheadS,
		pending:          map[int]*Migration{},
		stats:            Stats{PerTask: map[string]int{}},
	}
}

// Mechanism returns the configured mechanism.
func (m *Manager) Mechanism() Mechanism { return m.mech }

// ErrBusy is returned when the task already has a migration in flight.
var ErrBusy = errors.New("migrate: task already migrating")

// ErrSamePlace is returned when source and destination coincide.
var ErrSamePlace = errors.New("migrate: source and destination are the same core")

// Request asks the master daemon to move task ti to dst. The task keeps
// running until its next checkpoint.
func (m *Manager) Request(t *task.Task, ti, dst int, now float64) (*Migration, error) {
	if _, busy := m.pending[ti]; busy {
		m.stats.Rejected++
		return nil, ErrBusy
	}
	if t.Core == dst {
		m.stats.Rejected++
		return nil, ErrSamePlace
	}
	mg := &Migration{
		Task:        t,
		TaskIdx:     ti,
		Src:         t.Core,
		Dst:         dst,
		Phase:       WaitCheckpoint,
		RequestedAt: now,
	}
	m.pending[ti] = mg
	m.stats.Requested++
	m.stats.LastTrigger = now
	return mg, nil
}

// Pending returns the active migration for task ti, if any.
func (m *Manager) Pending(ti int) (*Migration, bool) {
	mg, ok := m.pending[ti]
	return mg, ok
}

// NumPending returns the count of in-flight migrations.
func (m *Manager) NumPending() int { return len(m.pending) }

// NumTransferring counts migrations whose context is currently crossing
// the shared bus. Their phase advances only on bus completion, which
// the engine's event horizon bounds through bus.Bus.SafeTicks; the
// count itself is a diagnostic for tests and tooling.
func (m *Manager) NumTransferring() int {
	n := 0
	for _, mg := range m.pending {
		if mg.Phase == Transferring {
			n++
		}
	}
	return n
}

// NextPhaseTransitionAt returns the earliest absolute time at which a
// pending migration changes phase independently of frame-boundary and
// bus events: the end of the earliest restore window (task-recreation's
// fork/exec overhead). +Inf when no such self-timed transition is
// scheduled — WaitCheckpoint advances only at checkpoints and
// Transferring only on bus completion, both of which the engine's
// event horizon already bounds.
func (m *Manager) NextPhaseTransitionAt() float64 {
	if len(m.pending) == 0 {
		// Fast exit for the common no-migration-in-flight case: the
		// event-horizon scan calls this every span, and even an empty
		// map iteration costs a runtime call.
		return math.Inf(1)
	}
	at := math.Inf(1)
	for _, mg := range m.pending {
		if mg.Phase == Restoring && mg.restoreEnd < at {
			at = mg.restoreEnd
		}
	}
	return at
}

// AtCheckpoint notifies the middleware that task ti reached a frame
// boundary at time now. If a migration is waiting, the task freezes and
// its context transfer starts. Returns true when a freeze happened.
func (m *Manager) AtCheckpoint(ti int, now float64) (bool, error) {
	mg, ok := m.pending[ti]
	if !ok || mg.Phase != WaitCheckpoint {
		return false, nil
	}
	if err := mg.Task.Freeze(); err != nil {
		return false, fmt.Errorf("migrate: %w", err)
	}
	mg.Phase = Transferring
	mg.FrozenAt = now
	m.stats.WaitTime += now - mg.RequestedAt
	mg.bytes = mg.Task.MigrationBytes(m.mech == Recreation)
	// The context copy moves the live state through shared memory.
	tr, err := m.bus.Start("migr:"+mg.Task.Name, mg.Task.StateBytes)
	if err != nil {
		return false, err
	}
	mg.transfer = tr
	if m.mech == Recreation {
		// The code image is reloaded from the filesystem through the
		// same bus, concurrently with the context copy: a second
		// transfer that adds contention (Figure 2's steeper recreation
		// slope).
		rl, err := m.bus.Start("reload:"+mg.Task.Name, mg.Task.CodeBytes)
		if err != nil {
			return false, err
		}
		mg.reload = rl
	}
	return true, nil
}

// Advance progresses in-flight migrations to time now. The engine must
// advance the bus separately (it owns bus time). Iteration is in task-
// index order so completion side effects are deterministic.
func (m *Manager) Advance(now float64) {
	if len(m.pending) == 0 {
		return
	}
	keys := make([]int, 0, len(m.pending))
	for ti := range m.pending {
		keys = append(keys, ti)
	}
	sort.Ints(keys)
	for _, ti := range keys {
		mg := m.pending[ti]
		switch mg.Phase {
		case Transferring:
			if mg.transfer.Done() && (mg.reload == nil || mg.reload.Done()) {
				if m.mech == Recreation {
					mg.Phase = Restoring
					mg.restoreEnd = now + m.RestoreOverheadS
				} else {
					m.complete(ti, mg, now)
				}
			}
		case Restoring:
			if now >= mg.restoreEnd {
				m.complete(ti, mg, now)
			}
		}
	}
}

func (m *Manager) complete(ti int, mg *Migration, now float64) {
	mg.Phase = Done
	mg.CompletedAt = now
	mg.Task.Unfreeze(mg.Dst)
	delete(m.pending, ti)

	m.stats.Completed++
	m.stats.BytesMoved += mg.bytes
	fr := mg.FreezeDuration()
	m.stats.FreezeTime += fr
	if fr > m.stats.MaxFreeze {
		m.stats.MaxFreeze = fr
	}
	m.stats.PerTask[mg.Task.Name]++
	if m.OnComplete != nil {
		m.OnComplete(mg)
	}
}

// Stats returns a copy of the aggregate statistics.
func (m *Manager) Stats() Stats {
	s := m.stats
	s.PerTask = make(map[string]int, len(m.stats.PerTask))
	for k, v := range m.stats.PerTask {
		s.PerTask[k] = v
	}
	return s
}

// EstimateFreezeS predicts the freeze time of migrating t with the
// current mechanism, assuming `competitors` concurrent bus transfers.
// The balancing policy uses this to filter requests by cost.
func (m *Manager) EstimateFreezeS(t *task.Task, competitors int) float64 {
	bytes := t.MigrationBytes(m.mech == Recreation)
	lat := m.bus.LatencyEstimate(bytes, competitors)
	if m.mech == Recreation {
		lat += m.RestoreOverheadS
	}
	return lat
}

// CostCycles converts a migration's cost into processor cycles at the
// given frequency — the unit of the paper's Figure 2.
func (m *Manager) CostCycles(t *task.Task, fHz float64) float64 {
	comp := 1
	if m.mech == Recreation {
		comp = 2 // context copy and code reload contend
	}
	return m.EstimateFreezeS(t, comp) * fHz
}
