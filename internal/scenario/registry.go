package scenario

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultName is the scenario an empty selection resolves to: the
// paper's benchmark.
const DefaultName = "sdr-radio"

var reg = struct {
	sync.RWMutex
	scenarios map[string]Scenario
	// bySpec maps a scenario's canonical spec hash to its name, so an
	// inline spec identical to a builtin resolves to the same content
	// address the named request would.
	bySpec map[string]string
}{scenarios: map[string]Scenario{}, bySpec: map[string]string{}}

// Register adds a scenario to the registry. It panics on an empty or
// duplicate name — registration happens at init time, so both are
// programming errors.
func Register(s Scenario) {
	if s.Name == "" {
		panic("scenario: Register with empty name")
	}
	if s.Build == nil {
		panic(fmt.Sprintf("scenario: Register %q with nil builder", s.Name))
	}
	reg.Lock()
	defer reg.Unlock()
	if _, dup := reg.scenarios[s.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", s.Name))
	}
	reg.scenarios[s.Name] = s
	if s.Spec != nil {
		if h := s.Spec.Hash(); reg.bySpec[h] == "" {
			reg.bySpec[h] = s.Name
		}
	}
}

// BuiltinNameForSpec reports the registered scenario whose canonical
// spec equals sp, if any. Callers use it to collapse an inline spec
// onto the equivalent named request so both share one content address.
func BuiltinNameForSpec(sp Spec) (string, bool) {
	n, err := sp.Normalize()
	if err != nil {
		return "", false
	}
	reg.RLock()
	defer reg.RUnlock()
	name, ok := reg.bySpec[n.Hash()]
	return name, ok
}

// Lookup returns the named scenario. Unknown names report the
// registered alternatives.
func Lookup(name string) (Scenario, error) {
	reg.RLock()
	defer reg.RUnlock()
	s, ok := reg.scenarios[name]
	if !ok {
		return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (registered: %v)", name, namesLocked())
	}
	return s, nil
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	reg.RLock()
	defer reg.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(reg.scenarios))
	for n := range reg.scenarios {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Info is the JSON-able catalogue entry for one scenario, served by
// the simulation service's /scenarios endpoint and stable on the wire.
// WarmupS/MeasureS of 0 mean "the paper defaults" (chosen by the
// experiment layer).
type Info struct {
	Name          string  `json:"name"`
	Description   string  `json:"description"`
	Topology      string  `json:"topology"`
	Cores         int     `json:"cores"`
	Tasks         int     `json:"tasks"`
	WarmupS       float64 `json:"warmup_s"`
	MeasureS      float64 `json:"measure_s"`
	DefaultPolicy string  `json:"default_policy"`
	DefaultDelta  float64 `json:"default_delta"`
	// SpecVersion is the declarative spec schema version the scenario
	// exports (0 when the scenario has no spec form), so clients can
	// feature-detect the spec path before requesting ?spec=1.
	SpecVersion int `json:"spec_version,omitempty"`
}

// Info returns the catalogue entry for the scenario.
func (s Scenario) Info() Info {
	info := Info{
		Name:          s.Name,
		Description:   s.Description,
		Topology:      s.Topology,
		Cores:         s.Cores,
		Tasks:         s.Tasks,
		WarmupS:       s.WarmupS,
		MeasureS:      s.MeasureS,
		DefaultPolicy: s.DefaultPolicy,
		DefaultDelta:  s.DefaultDelta,
	}
	if s.Spec != nil {
		info.SpecVersion = s.Spec.SpecVersion
	}
	return info
}

// Infos returns the catalogue entries of every registered scenario,
// sorted by name.
func Infos() []Info {
	all := All()
	out := make([]Info, len(all))
	for i, s := range all {
		out[i] = s.Info()
	}
	return out
}

// All returns every registered scenario sorted by name.
func All() []Scenario {
	reg.RLock()
	defer reg.RUnlock()
	out := make([]Scenario, 0, len(reg.scenarios))
	for _, s := range reg.scenarios {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
