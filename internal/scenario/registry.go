package scenario

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultName is the scenario an empty selection resolves to: the
// paper's benchmark.
const DefaultName = "sdr-radio"

var reg = struct {
	sync.RWMutex
	scenarios map[string]Scenario
}{scenarios: map[string]Scenario{}}

// Register adds a scenario to the registry. It panics on an empty or
// duplicate name — registration happens at init time, so both are
// programming errors.
func Register(s Scenario) {
	if s.Name == "" {
		panic("scenario: Register with empty name")
	}
	if s.Build == nil {
		panic(fmt.Sprintf("scenario: Register %q with nil builder", s.Name))
	}
	reg.Lock()
	defer reg.Unlock()
	if _, dup := reg.scenarios[s.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", s.Name))
	}
	reg.scenarios[s.Name] = s
}

// Lookup returns the named scenario. Unknown names report the
// registered alternatives.
func Lookup(name string) (Scenario, error) {
	reg.RLock()
	defer reg.RUnlock()
	s, ok := reg.scenarios[name]
	if !ok {
		return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (registered: %v)", name, namesLocked())
	}
	return s, nil
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	reg.RLock()
	defer reg.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(reg.scenarios))
	for n := range reg.scenarios {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Info is the JSON-able catalogue entry for one scenario, served by
// the simulation service's /scenarios endpoint and stable on the wire.
// WarmupS/MeasureS of 0 mean "the paper defaults" (chosen by the
// experiment layer).
type Info struct {
	Name          string  `json:"name"`
	Description   string  `json:"description"`
	Topology      string  `json:"topology"`
	Cores         int     `json:"cores"`
	Tasks         int     `json:"tasks"`
	WarmupS       float64 `json:"warmup_s"`
	MeasureS      float64 `json:"measure_s"`
	DefaultPolicy string  `json:"default_policy"`
	DefaultDelta  float64 `json:"default_delta"`
}

// Info returns the catalogue entry for the scenario.
func (s Scenario) Info() Info {
	return Info{
		Name:          s.Name,
		Description:   s.Description,
		Topology:      s.Topology,
		Cores:         s.Cores,
		Tasks:         s.Tasks,
		WarmupS:       s.WarmupS,
		MeasureS:      s.MeasureS,
		DefaultPolicy: s.DefaultPolicy,
		DefaultDelta:  s.DefaultDelta,
	}
}

// Infos returns the catalogue entries of every registered scenario,
// sorted by name.
func Infos() []Info {
	all := All()
	out := make([]Info, len(all))
	for i, s := range all {
		out[i] = s.Info()
	}
	return out
}

// All returns every registered scenario sorted by name.
func All() []Scenario {
	reg.RLock()
	defer reg.RUnlock()
	out := make([]Scenario, 0, len(reg.scenarios))
	for _, s := range reg.scenarios {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
