package scenario

import (
	"fmt"

	"thermbal/internal/dvfs"
	"thermbal/internal/floorplan"
	"thermbal/internal/mpsoc"
	"thermbal/internal/policy"
	"thermbal/internal/power"
	"thermbal/internal/sim"
	"thermbal/internal/stream"
	"thermbal/internal/task"
)

// Compile is the one compiler every scenario goes through — built-ins,
// inline service specs, spec files and generated workloads alike. It
// normalizes (and thereby validates) the spec, replays the graph in
// declaration order, assembles the platform and attaches the modulator.
// Equal specs compile to identical instances; a builtin's spec compiles
// bit-for-bit to what its pre-spec Go builder constructed.
func Compile(sp Spec, o Options) (*Instance, error) {
	n, err := sp.Normalize()
	if err != nil {
		return nil, err
	}

	g := stream.NewGraph()
	// Queue capacity resolution: an explicit per-queue cap always
	// wins; defaultable queues take the run's override, else the
	// graph-level default.
	effCap := func(q QueueSpec) int {
		if q.Cap > 0 {
			return q.Cap
		}
		if o.QueueCap > 0 {
			return o.QueueCap
		}
		return n.Graph.QueueCap
	}
	for _, q := range n.Graph.Queues {
		if _, err := g.AddQueue(q.Name, effCap(q)); err != nil {
			return nil, err
		}
	}
	qidx := func(name string) int {
		i, ok := g.QueueIndex(name)
		if !ok {
			// Normalize guarantees every edge resolves.
			panic(fmt.Sprintf("scenario: compiled queue %q missing", name))
		}
		return i
	}
	for _, ts := range n.Graph.Tasks {
		t, err := task.New(ts.Name, ts.FSE)
		if err != nil {
			return nil, err
		}
		t.BindWork(n.Graph.FMaxHz, n.Graph.FramePeriodS)
		if ts.StateBytes > 0 {
			t.StateBytes = ts.StateBytes
		}
		if ts.CodeBytes > 0 {
			t.CodeBytes = ts.CodeBytes
		}
		if ts.Core != nil {
			t.Core = *ts.Core
		}
		ins := make([]int, len(ts.Inputs))
		for i, q := range ts.Inputs {
			ins[i] = qidx(q)
		}
		outs := make([]int, len(ts.Outputs))
		for i, q := range ts.Outputs {
			outs[i] = qidx(q)
		}
		if _, err := g.AddTask(t, ins, outs); err != nil {
			return nil, err
		}
	}
	if err := g.SetSource(qidx(n.Graph.Source.Queue), n.Graph.Source.PeriodS); err != nil {
		return nil, err
	}
	prefill := n.Graph.Sink.Prefill
	if prefill == 0 {
		// Half the sink queue's effective capacity, so the playback
		// threshold follows queue-capacity overrides like the Go
		// builders' did.
		si := qidx(n.Graph.Sink.Queue)
		prefill = (g.Queue(si).Cap() + 1) / 2
	}
	if err := g.SetSink(qidx(n.Graph.Sink.Queue), n.Graph.Sink.PeriodS, prefill); err != nil {
		return nil, err
	}
	if err := g.Finalize(); err != nil {
		return nil, err
	}
	if n.Graph.Placement == PlacementBalanced {
		policy.BalanceMapping(g.Tasks(), n.Platform.Cores)
	}

	plat, err := compilePlatform(n.Platform, o)
	if err != nil {
		return nil, err
	}
	var mod sim.Modulator
	if n.Modulation != nil {
		mod = phaseShiftModulator(g, n.Modulation.PeriodS, n.Modulation.Hi, n.Modulation.Lo)
	}
	return &Instance{Graph: g, Platform: plat, Modulate: mod}, nil
}

// compilePlatform assembles the MPSoC a normalized platform spec
// selects.
func compilePlatform(p PlatformSpec, o Options) (*mpsoc.Platform, error) {
	cfg := mpsoc.Config{Package: o.pkg()}
	switch {
	case len(p.Tiles) > 0:
		runs := make([]floorplan.TileRun, len(p.Tiles))
		for i, t := range p.Tiles {
			runs[i] = floorplan.TileRun{Count: t.Count, Scale: t.Scale}
		}
		fp, err := floorplan.HeteroMPSoC(runs)
		if err != nil {
			return nil, err
		}
		cfg.Floorplan = fp
	case p.Cores != 3:
		// 3-core scenarios keep the nil default (the paper's Figure 5
		// die); larger platforms tile the same geometry.
		cfg.Floorplan = floorplan.StreamingMPSoC(p.Cores)
	}
	if p.AmbientC != nil {
		cfg.Package.AmbientC = *p.AmbientC
	}
	if p.Power != nil {
		pw := power.Params{
			IdleFraction: p.Power.IdleFraction,
			LeakRefW:     p.Power.LeakRefW,
			LeakBeta:     p.Power.LeakBeta,
			LeakRefTempC: p.Power.LeakRefTempC,
			VMax:         p.Power.VMaxV,
			VMin:         p.Power.VMinV,
		}
		if p.Power.Config == "conf2" {
			pw.Config = power.Conf2ARM11
		}
		cfg.PowerParams = pw
	}
	if len(p.LadderMHz) > 0 {
		levels := make([]float64, len(p.LadderMHz))
		for i, f := range p.LadderMHz {
			levels[i] = f * 1e6
		}
		ladder, err := dvfs.NewLadder(levels)
		if err != nil {
			return nil, err
		}
		cfg.Ladder = ladder
	}
	return mpsoc.New(cfg)
}

// FromSpec synthesizes an unregistered Scenario from a spec: catalogue
// fields from the spec's labels (builtin-style fallbacks for the
// defaults a bare run needs), Build wired to Compile. It is how spec
// files, inline service specs and generated specs enter the same code
// paths as registered scenarios.
func FromSpec(sp Spec) (Scenario, error) {
	n, err := sp.Normalize()
	if err != nil {
		return Scenario{}, err
	}
	s := Scenario{
		Name:          n.Name,
		Description:   n.Description,
		Topology:      fmt.Sprintf("spec: %d tasks, %d queues, %d cores", len(n.Graph.Tasks), len(n.Graph.Queues), n.Platform.Cores),
		Cores:         n.Platform.Cores,
		Tasks:         len(n.Graph.Tasks),
		WarmupS:       n.WarmupS,
		MeasureS:      n.MeasureS,
		DefaultPolicy: n.DefaultPolicy,
		DefaultDelta:  n.DefaultDelta,
		Spec:          &n,
		Build: func(o Options) (*Instance, error) {
			return Compile(n, o)
		},
	}
	if s.Name == "" {
		s.Name = "custom-spec"
	}
	if s.DefaultPolicy == "" {
		s.DefaultPolicy = "thermal-balance"
	}
	if s.DefaultDelta == 0 {
		s.DefaultDelta = 3
	}
	return s, nil
}
