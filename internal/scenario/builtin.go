package scenario

import (
	"fmt"

	"thermbal/internal/floorplan"
	"thermbal/internal/mpsoc"
	"thermbal/internal/policy"
	"thermbal/internal/sim"
	"thermbal/internal/stream"
	"thermbal/internal/task"
)

// graphBuilder produces the stream graph (and optional load modulator)
// of one scenario.
type graphBuilder func(o Options) (*stream.Graph, sim.Modulator, error)

// registerBuiltin wires a graph builder into a full scenario: platform
// assembly from the tiled floorplan, optional energy-balanced placement
// for graphs the paper gives no hand mapping for, and a task count for
// the catalogue.
func registerBuiltin(s Scenario, gb graphBuilder, balance bool) {
	cores := s.Cores
	s.Build = func(o Options) (*Instance, error) {
		g, mod, err := gb(o)
		if err != nil {
			return nil, err
		}
		if balance {
			policy.BalanceMapping(g.Tasks(), cores)
		}
		var fp *floorplan.Floorplan
		if cores != 3 {
			// 3-core scenarios keep the nil default (the paper's
			// Figure 5 die); larger platforms tile the same geometry.
			fp = floorplan.StreamingMPSoC(cores)
		}
		plat, err := mpsoc.New(mpsoc.Config{Floorplan: fp, Package: o.pkg()})
		if err != nil {
			return nil, err
		}
		return &Instance{Graph: g, Platform: plat, Modulate: mod}, nil
	}
	g, _, err := gb(Options{})
	if err != nil {
		// A builtin that cannot build under default options is a
		// programming error; failing at init beats a tasks-0 catalogue
		// entry that only errors at run time.
		panic(fmt.Sprintf("scenario: builtin %q does not build: %v", s.Name, err))
	}
	s.Tasks = g.NumTasks()
	Register(s)
}

// Bursty modulation constants: every burstPeriodS the hot and cold task
// groups swap, scaling their base loads by burstHi / burstLo. The mean
// load stays near the baseline while its spatial distribution shifts —
// the phase changes the paper's static mapping cannot follow.
const (
	burstPeriodS = 4.0
	burstHi      = 1.35
	burstLo      = 0.65
)

// phaseShiftModulator alternates the loads of even- and odd-indexed
// tasks around their construction-time baselines.
func phaseShiftModulator(g *stream.Graph) sim.Modulator {
	base := make([]float64, g.NumTasks())
	for i, t := range g.Tasks() {
		base[i] = t.FSE
	}
	last := -1
	return func(now float64, tasks []*task.Task) bool {
		phase := int(now/burstPeriodS) % 2
		if phase == last {
			return false
		}
		last = phase
		for i, t := range tasks {
			f := burstLo
			if (i%2 == 0) == (phase == 0) {
				f = burstHi
			}
			t.FSE = min(base[i]*f, 1)
		}
		return true
	}
}

func init() {
	// The two paper workloads, with their hand mappings.
	registerBuiltin(Scenario{
		Name:          DefaultName,
		Description:   "the paper's Software Defined FM Radio (Figure 6, Table 2 mapping)",
		Topology:      "pipeline with 3-way equalizer split",
		Cores:         3,
		DefaultPolicy: "thermal-balance",
		DefaultDelta:  3,
	}, func(o Options) (*stream.Graph, sim.Modulator, error) {
		g, err := stream.BuildSDR(stream.SDRConfig{QueueCap: o.QueueCap})
		return g, nil, err
	}, false)

	registerBuiltin(Scenario{
		Name:          "video-decoder",
		Description:   "software video decoder pipeline, deliberately unbalanced first-fit mapping",
		Topology:      "pipeline with 2-way IDCT split",
		Cores:         3,
		DefaultPolicy: "thermal-balance",
		DefaultDelta:  3,
	}, func(o Options) (*stream.Graph, sim.Modulator, error) {
		g, err := stream.BuildVideo(stream.SDRConfig{QueueCap: o.QueueCap})
		return g, nil, err
	}, false)

	// Deep pipelines: every stage sits on the critical path, so freeze
	// filtering decides whether migrations are affordable at all.
	for _, depth := range []int{4, 8, 16} {
		depth := depth
		registerBuiltin(Scenario{
			Name:          fmt.Sprintf("pipeline-d%d", depth),
			Description:   fmt.Sprintf("deep linear pipeline, %d seeded-load stages on the critical path", depth),
			Topology:      fmt.Sprintf("pipeline depth %d", depth),
			Cores:         3,
			DefaultPolicy: "thermal-balance",
			DefaultDelta:  3,
			Seed:          int64(depth),
		}, func(o Options) (*stream.Graph, sim.Modulator, error) {
			g, err := stream.BuildPipeline(stream.PipelineConfig{
				Depth: depth, Seed: int64(depth), QueueCap: o.QueueCap,
			})
			return g, nil, err
		}, true)
	}

	// Fan-out/fan-in: many same-shape workers make the pairing space
	// large; w4 is perfectly symmetric, w8 has a seeded skew.
	for _, fc := range []struct {
		width int
		seed  int64
		desc  string
	}{
		{4, 0, "symmetric 4-way fan-out/fan-in, degenerate pairing space"},
		{8, 88, "skewed 8-way fan-out/fan-in with seeded worker loads"},
	} {
		fc := fc
		registerBuiltin(Scenario{
			Name:          fmt.Sprintf("fanout-w%d", fc.width),
			Description:   fc.desc,
			Topology:      fmt.Sprintf("split/join width %d", fc.width),
			Cores:         3,
			DefaultPolicy: "thermal-balance",
			DefaultDelta:  3,
			Seed:          fc.seed,
		}, func(o Options) (*stream.Graph, sim.Modulator, error) {
			g, err := stream.BuildFanOut(stream.FanConfig{
				Width: fc.width, Seed: fc.seed, QueueCap: o.QueueCap,
			})
			return g, nil, err
		}, true)
	}

	// Bursty phase-shifting load on the SDR graph: the hot spot moves
	// between task groups every few seconds, so a static mapping is
	// wrong half the time by construction.
	registerBuiltin(Scenario{
		Name:          "bursty-sdr",
		Description:   "SDR graph with phase-shifting load (hot/cold task groups swap every 4 s)",
		Topology:      "SDR pipeline, FSE modulated over time",
		Cores:         3,
		DefaultPolicy: "thermal-balance",
		DefaultDelta:  3,
	}, func(o Options) (*stream.Graph, sim.Modulator, error) {
		g, err := stream.BuildSDR(stream.SDRConfig{QueueCap: o.QueueCap})
		if err != nil {
			return nil, nil, err
		}
		return g, phaseShiftModulator(g), nil
	}, false)

	// Many-core scaling: generated workloads on platforms built by
	// tiling the MPSoC floorplan, ~0.45 FSE budget per core. Shorter
	// default windows keep the full matrix tractable.
	for _, n := range []int{8, 16, 32, 64, 128, 256} {
		n := n
		registerBuiltin(Scenario{
			Name:          fmt.Sprintf("manycore-%d", n),
			Description:   fmt.Sprintf("seeded split/join workload on a %d-core tiled die", n),
			Topology:      fmt.Sprintf("generated split/join, %d cores", n),
			Cores:         n,
			WarmupS:       5,
			MeasureS:      10,
			DefaultPolicy: "thermal-balance",
			DefaultDelta:  2,
			Seed:          int64(n),
		}, func(o Options) (*stream.Graph, sim.Modulator, error) {
			g, err := stream.Generate(stream.GenConfig{
				Seed:     int64(n),
				Stages:   n/2 + 4,
				MaxWidth: 3,
				TotalFSE: 0.45 * float64(n),
				QueueCap: o.QueueCap,
			})
			return g, nil, err
		}, true)
	}
}
