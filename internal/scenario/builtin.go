package scenario

import (
	"fmt"

	"thermbal/internal/sim"
	"thermbal/internal/stream"
	"thermbal/internal/task"
)

// builtinDef pairs one catalogue scenario with the legacy Go graph
// builder it originated from and the construction constants needed to
// lift that build into a declarative spec. Registration derives the
// spec from a default-options build and wires Build to Compile, so
// every builtin runs through the same compiler as inline and file
// specs; the builder itself stays around as the reference the
// bit-for-bit equivalence test replays.
type builtinDef struct {
	sc   Scenario
	meta builtinMeta
	gb   func(o Options) (*stream.Graph, error)
}

// Bursty modulation constants: every burstPeriodS the hot and cold task
// groups swap, scaling their base loads by burstHi / burstLo. The mean
// load stays near the baseline while its spatial distribution shifts —
// the phase changes the paper's static mapping cannot follow.
const (
	burstPeriodS = 4.0
	burstHi      = 1.35
	burstLo      = 0.65
)

// phaseShiftModulator alternates the loads of even- and odd-indexed
// tasks around their construction-time baselines: every periodS the
// groups swap, scaling by hi / lo.
func phaseShiftModulator(g *stream.Graph, periodS, hi, lo float64) sim.Modulator {
	base := make([]float64, g.NumTasks())
	for i, t := range g.Tasks() {
		base[i] = t.FSE
	}
	last := -1
	return func(now float64, tasks []*task.Task) bool {
		phase := int(now/periodS) % 2
		if phase == last {
			return false
		}
		last = phase
		for i, t := range tasks {
			f := lo
			if (i%2 == 0) == (phase == 0) {
				f = hi
			}
			t.FSE = min(base[i]*f, 1)
		}
		return true
	}
}

// builtinDefs returns the full catalogue definition table. It is a
// function rather than a package variable so the equivalence test can
// obtain fresh closures without sharing state with the registry.
func builtinDefs() []builtinDef {
	defs := []builtinDef{
		// The two paper workloads, with their hand mappings.
		{
			sc: Scenario{
				Name:          DefaultName,
				Description:   "the paper's Software Defined FM Radio (Figure 6, Table 2 mapping)",
				Topology:      "pipeline with 3-way equalizer split",
				Cores:         3,
				DefaultPolicy: "thermal-balance",
				DefaultDelta:  3,
			},
			meta: builtinMeta{
				framePeriodS: stream.DefaultFramePeriod,
				fmaxHz:       533e6,
				queueCap:     stream.DefaultQueueCap,
				cores:        3,
			},
			gb: func(o Options) (*stream.Graph, error) {
				return stream.BuildSDR(stream.SDRConfig{QueueCap: o.QueueCap})
			},
		},
		{
			sc: Scenario{
				Name:          "video-decoder",
				Description:   "software video decoder pipeline, deliberately unbalanced first-fit mapping",
				Topology:      "pipeline with 2-way IDCT split",
				Cores:         3,
				DefaultPolicy: "thermal-balance",
				DefaultDelta:  3,
			},
			meta: builtinMeta{
				framePeriodS: stream.VideoFramePeriod,
				fmaxHz:       533e6,
				queueCap:     stream.DefaultQueueCap,
				cores:        3,
			},
			gb: func(o Options) (*stream.Graph, error) {
				return stream.BuildVideo(stream.SDRConfig{QueueCap: o.QueueCap})
			},
		},
		// Bursty phase-shifting load on the SDR graph: the hot spot
		// moves between task groups every few seconds, so a static
		// mapping is wrong half the time by construction.
		{
			sc: Scenario{
				Name:          "bursty-sdr",
				Description:   "SDR graph with phase-shifting load (hot/cold task groups swap every 4 s)",
				Topology:      "SDR pipeline, FSE modulated over time",
				Cores:         3,
				DefaultPolicy: "thermal-balance",
				DefaultDelta:  3,
			},
			meta: builtinMeta{
				framePeriodS: stream.DefaultFramePeriod,
				fmaxHz:       533e6,
				queueCap:     stream.DefaultQueueCap,
				cores:        3,
				modulation:   &ModulationSpec{Kind: ModPhaseShift},
			},
			gb: func(o Options) (*stream.Graph, error) {
				return stream.BuildSDR(stream.SDRConfig{QueueCap: o.QueueCap})
			},
		},
	}

	// Deep pipelines: every stage sits on the critical path, so freeze
	// filtering decides whether migrations are affordable at all.
	for _, depth := range []int{4, 8, 16} {
		depth := depth
		defs = append(defs, builtinDef{
			sc: Scenario{
				Name:          fmt.Sprintf("pipeline-d%d", depth),
				Description:   fmt.Sprintf("deep linear pipeline, %d seeded-load stages on the critical path", depth),
				Topology:      fmt.Sprintf("pipeline depth %d", depth),
				Cores:         3,
				DefaultPolicy: "thermal-balance",
				DefaultDelta:  3,
				Seed:          int64(depth),
			},
			meta: builtinMeta{
				framePeriodS: stream.DefaultFramePeriod,
				fmaxHz:       533e6,
				queueCap:     stream.DefaultQueueCap,
				cores:        3,
				balanced:     true,
			},
			gb: func(o Options) (*stream.Graph, error) {
				return stream.BuildPipeline(stream.PipelineConfig{
					Depth: depth, Seed: int64(depth), QueueCap: o.QueueCap,
				})
			},
		})
	}

	// Fan-out/fan-in: many same-shape workers make the pairing space
	// large; w4 is perfectly symmetric, w8 has a seeded skew.
	for _, fc := range []struct {
		width int
		seed  int64
		desc  string
	}{
		{4, 0, "symmetric 4-way fan-out/fan-in, degenerate pairing space"},
		{8, 88, "skewed 8-way fan-out/fan-in with seeded worker loads"},
	} {
		fc := fc
		defs = append(defs, builtinDef{
			sc: Scenario{
				Name:          fmt.Sprintf("fanout-w%d", fc.width),
				Description:   fc.desc,
				Topology:      fmt.Sprintf("split/join width %d", fc.width),
				Cores:         3,
				DefaultPolicy: "thermal-balance",
				DefaultDelta:  3,
				Seed:          fc.seed,
			},
			meta: builtinMeta{
				framePeriodS: stream.DefaultFramePeriod,
				fmaxHz:       533e6,
				queueCap:     stream.DefaultQueueCap,
				cores:        3,
				balanced:     true,
			},
			gb: func(o Options) (*stream.Graph, error) {
				return stream.BuildFanOut(stream.FanConfig{
					Width: fc.width, Seed: fc.seed, QueueCap: o.QueueCap,
				})
			},
		})
	}

	// Many-core scaling: generated workloads on platforms built by
	// tiling the MPSoC floorplan, ~0.45 FSE budget per core. Shorter
	// default windows keep the full matrix tractable.
	for _, n := range []int{8, 16, 32, 64, 128, 256} {
		n := n
		defs = append(defs, builtinDef{
			sc: Scenario{
				Name:          fmt.Sprintf("manycore-%d", n),
				Description:   fmt.Sprintf("seeded split/join workload on a %d-core tiled die", n),
				Topology:      fmt.Sprintf("generated split/join, %d cores", n),
				Cores:         n,
				WarmupS:       5,
				MeasureS:      10,
				DefaultPolicy: "thermal-balance",
				DefaultDelta:  2,
				Seed:          int64(n),
			},
			meta: builtinMeta{
				framePeriodS: stream.DefaultFramePeriod,
				fmaxHz:       533e6,
				queueCap:     stream.DefaultQueueCap,
				cores:        n,
				balanced:     true,
			},
			gb: func(o Options) (*stream.Graph, error) {
				return stream.Generate(stream.GenConfig{
					Seed:     int64(n),
					Stages:   n/2 + 4,
					MaxWidth: 3,
					TotalFSE: 0.45 * float64(n),
					QueueCap: o.QueueCap,
				})
			},
		})
	}
	return defs
}

// registerBuiltin lifts a definition's default-options build into a
// normalized spec, wires Build to compile that spec, and registers the
// result. Failing at init beats a catalogue entry that only errors at
// run time.
func registerBuiltin(d builtinDef) {
	g, err := d.gb(Options{})
	if err != nil {
		panic(fmt.Sprintf("scenario: builtin %q does not build: %v", d.sc.Name, err))
	}
	sp, err := deriveSpec(g, d.meta)
	if err != nil {
		panic(fmt.Sprintf("scenario: builtin %q: %v", d.sc.Name, err))
	}
	sp.Name = d.sc.Name
	sp.Description = d.sc.Description
	sp.WarmupS = d.sc.WarmupS
	sp.MeasureS = d.sc.MeasureS
	sp.DefaultPolicy = d.sc.DefaultPolicy
	sp.DefaultDelta = d.sc.DefaultDelta
	n, err := sp.Normalize()
	if err != nil {
		panic(fmt.Sprintf("scenario: builtin %q spec invalid: %v", d.sc.Name, err))
	}
	s := d.sc
	s.Tasks = g.NumTasks()
	s.Spec = &n
	s.Build = func(o Options) (*Instance, error) {
		return Compile(n, o)
	}
	Register(s)
}

func init() {
	for _, d := range builtinDefs() {
		registerBuiltin(d)
	}
}
