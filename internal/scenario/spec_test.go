package scenario

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
)

// validMinimalSpec is a hand-written two-task pipeline that exercises
// every defaulting path: no frame period, no fmax, no queue cap, no
// platform, no phases.
func validMinimalSpec() Spec {
	c0, c1 := 0, 1
	return Spec{
		Name: "mini",
		Graph: GraphSpec{
			Queues: []QueueSpec{{Name: "in"}, {Name: "mid"}, {Name: "out"}},
			Tasks: []TaskSpec{
				{Name: "a", FSE: 0.5, Inputs: []string{"in"}, Outputs: []string{"mid"}, Core: &c0},
				{Name: "b", FSE: 0.4, Inputs: []string{"mid"}, Outputs: []string{"out"}, Core: &c1},
			},
			Source: SourceSpec{Queue: "in"},
			Sink:   SinkSpec{Queue: "out"},
		},
	}
}

// requireProblem normalizes sp, demands failure, and checks one of the
// reported problems matches the path and message fragment.
func requireProblem(t *testing.T, sp Spec, path, msgFrag string) {
	t.Helper()
	_, err := sp.Normalize()
	if err == nil {
		t.Fatalf("Normalize accepted a spec that should fail at %s (%s)", path, msgFrag)
	}
	var se *SpecError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T, not *SpecError: %v", err, err)
	}
	for _, p := range se.Problems {
		if p.Path == path && strings.Contains(p.Msg, msgFrag) {
			return
		}
	}
	t.Fatalf("no problem at %q containing %q; got %v", path, msgFrag, se.Problems)
}

func TestNormalizeDefaults(t *testing.T) {
	n, err := validMinimalSpec().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.SpecVersion != SpecVersionV1 {
		t.Errorf("spec version %d", n.SpecVersion)
	}
	if n.Graph.FramePeriodS != 0.020 || n.Graph.FMaxHz != 533e6 || n.Graph.QueueCap != 11 {
		t.Errorf("graph defaults: period %g fmax %g cap %d",
			n.Graph.FramePeriodS, n.Graph.FMaxHz, n.Graph.QueueCap)
	}
	if n.Graph.Placement != PlacementExplicit {
		t.Errorf("placement %q", n.Graph.Placement)
	}
	if n.Graph.Source.PeriodS != 0.020 || n.Graph.Sink.PeriodS != 0.020 {
		t.Errorf("endpoint periods %g / %g", n.Graph.Source.PeriodS, n.Graph.Sink.PeriodS)
	}
	if n.Platform.Cores != 3 {
		t.Errorf("default cores %d", n.Platform.Cores)
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	specs := map[string]Spec{"minimal": validMinimalSpec(), "generated": Generate(7)}
	for _, s := range All() {
		specs["builtin/"+s.Name] = *s.Spec
	}
	for name, sp := range specs {
		once, err := sp.Normalize()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		twice, err := once.Normalize()
		if err != nil {
			t.Fatalf("%s: renormalize: %v", name, err)
		}
		if !reflect.DeepEqual(once, twice) {
			t.Errorf("%s: Normalize is not idempotent:\nonce:  %+v\ntwice: %+v", name, once, twice)
		}
	}
}

// TestNormalizePure: normalizing must not mutate the input spec, even
// through shared slice backing arrays (tiles get scales filled, ladders
// get sorted).
func TestNormalizePure(t *testing.T) {
	sp := validMinimalSpec()
	sp.Platform.Tiles = []TileSpec{{Count: 1}, {Count: 2, Scale: 0.5}}
	sp.Platform.LadderMHz = []float64{533, 133, 266}
	before := Spec{}
	b, _ := sp.Normalize() // warm anything lazily cached
	_ = b
	beforeTiles := append([]TileSpec(nil), sp.Platform.Tiles...)
	beforeLadder := append([]float64(nil), sp.Platform.LadderMHz...)
	before = sp
	if _, err := sp.Normalize(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sp, before) ||
		!reflect.DeepEqual(sp.Platform.Tiles, beforeTiles) ||
		!reflect.DeepEqual(sp.Platform.LadderMHz, beforeLadder) {
		t.Fatalf("Normalize mutated its input: %+v", sp)
	}
}

func TestValidateRejections(t *testing.T) {
	mut := func(f func(*Spec)) Spec {
		sp := validMinimalSpec()
		f(&sp)
		return sp
	}
	neg := -1

	cases := []struct {
		name    string
		sp      Spec
		path    string
		msgFrag string
	}{
		{"future version", mut(func(s *Spec) { s.SpecVersion = 2 }), "spec_version", "unsupported"},
		{"negative warmup", mut(func(s *Spec) { s.WarmupS = -1 }), "warmup_s", "non-negative"},
		{"nan measure", mut(func(s *Spec) { s.MeasureS = math.NaN() }), "measure_s", "finite"},
		{"negative delta", mut(func(s *Spec) { s.DefaultDelta = -2 }), "default_delta", "non-negative"},
		{"no queues", mut(func(s *Spec) { s.Graph.Queues = nil }), "graph.queues", "at least one"},
		{"no tasks", mut(func(s *Spec) { s.Graph.Tasks = nil }), "graph.tasks", "at least one"},
		{"dup queue", mut(func(s *Spec) { s.Graph.Queues[1].Name = "in" }), "graph.queues[1].name", "duplicate"},
		{"dup task", mut(func(s *Spec) { s.Graph.Tasks[1].Name = "a" }), "graph.tasks[1].name", "duplicate"},
		{"fse zero", mut(func(s *Spec) { s.Graph.Tasks[0].FSE = 0 }), "graph.tasks[0].fse", "outside (0, 1]"},
		{"fse over one", mut(func(s *Spec) { s.Graph.Tasks[0].FSE = 1.5 }), "graph.tasks[0].fse", "outside (0, 1]"},
		{"fse nan", mut(func(s *Spec) { s.Graph.Tasks[0].FSE = math.NaN() }), "graph.tasks[0].fse", "outside"},
		{"inf frame period", mut(func(s *Spec) { s.Graph.FramePeriodS = math.Inf(1) }), "graph.frame_period_s", "finite"},
		{"negative frame period", mut(func(s *Spec) { s.Graph.FramePeriodS = -0.02 }), "graph.frame_period_s", "outside"},
		{"dangling input", mut(func(s *Spec) { s.Graph.Tasks[0].Inputs[0] = "ghost" }), "graph.tasks[0].inputs[0]", "dangling edge"},
		{"dangling output", mut(func(s *Spec) { s.Graph.Tasks[1].Outputs[0] = "ghost" }), "graph.tasks[1].outputs[0]", "dangling edge"},
		{"unknown source queue", mut(func(s *Spec) { s.Graph.Source.Queue = "ghost" }), "graph.source.queue", "unknown queue"},
		{"missing sink queue", mut(func(s *Spec) { s.Graph.Sink.Queue = "" }), "graph.sink.queue", "required"},
		{"unknown placement", mut(func(s *Spec) { s.Graph.Placement = "random" }), "graph.placement", "unknown placement"},
		{"balanced with core", mut(func(s *Spec) { s.Graph.Placement = PlacementBalanced }), "graph.tasks[0].core", "balanced placement"},
		{"explicit without core", mut(func(s *Spec) { s.Graph.Tasks[0].Core = nil }), "graph.tasks[0].core", "requires a core"},
		{"negative core", mut(func(s *Spec) { s.Graph.Tasks[0].Core = &neg }), "graph.tasks[0].core", "negative"},
		{"queue cap huge", mut(func(s *Spec) { s.Graph.QueueCap = maxQueueCap + 1 }), "graph.queue_cap", "outside"},
		{"per-queue cap negative", mut(func(s *Spec) { s.Graph.Queues[0].Cap = -3 }), "graph.queues[0].cap", "outside"},
		{"state bytes huge", mut(func(s *Spec) { s.Graph.Tasks[0].StateBytes = 2 * maxTaskBytes }), "graph.tasks[0].state_bytes", "outside"},
		{"cores over limit", mut(func(s *Spec) { s.Platform.Cores = maxSpecCores + 1 }), "platform.cores", "outside"},
		{"tile sum mismatch", mut(func(s *Spec) {
			s.Platform.Cores = 5
			s.Platform.Tiles = []TileSpec{{Count: 2}, {Count: 2}}
		}), "platform.cores", "does not match"},
		{"tile scale absurd", mut(func(s *Spec) { s.Platform.Tiles = []TileSpec{{Count: 3, Scale: 100}} }), "platform.tiles[0].scale", "outside"},
		{"ambient nonphysical", mut(func(s *Spec) { a := 500.0; s.Platform.AmbientC = &a }), "platform.ambient_c", "outside"},
		{"ladder duplicate", mut(func(s *Spec) { s.Platform.LadderMHz = []float64{133, 266, 266} }), "platform.ladder_mhz[2]", "duplicate"},
		{"ladder nan", mut(func(s *Spec) { s.Platform.LadderMHz = []float64{math.NaN()} }), "platform.ladder_mhz[0]", "finite"},
		{"power config unknown", mut(func(s *Spec) { s.Platform.Power = &PowerSpec{Config: "conf9"} }), "platform.power.config", "unknown core config"},
		{"power vmin over vmax", mut(func(s *Spec) { s.Platform.Power = &PowerSpec{VMaxV: 1.0, VMinV: 1.2} }), "platform.power.vmin_v", "exceeds vmax_v"},
		{"modulation unknown kind", mut(func(s *Spec) { s.Modulation = &ModulationSpec{Kind: "square"} }), "modulation.kind", "unknown modulation"},
		{"modulation lo over hi", mut(func(s *Spec) { s.Modulation = &ModulationSpec{Kind: ModPhaseShift, Hi: 0.5, Lo: 0.9} }), "modulation.lo", "exceeds hi"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			requireProblem(t, tc.sp, tc.path, tc.msgFrag)
		})
	}
}

// TestValidateCycle: a task graph where t0 -> q -> t1 -> q' -> t0 must
// be rejected as a cycle, not hang the bounded-queue engine.
func TestValidateCycle(t *testing.T) {
	c0, c1 := 0, 1
	sp := Spec{
		Graph: GraphSpec{
			Queues: []QueueSpec{{Name: "in"}, {Name: "ab"}, {Name: "ba"}, {Name: "out"}},
			Tasks: []TaskSpec{
				{Name: "a", FSE: 0.3, Inputs: []string{"in", "ba"}, Outputs: []string{"ab"}, Core: &c0},
				{Name: "b", FSE: 0.3, Inputs: []string{"ab"}, Outputs: []string{"ba", "out"}, Core: &c1},
			},
			Source: SourceSpec{Queue: "in"},
			Sink:   SinkSpec{Queue: "out"},
		},
	}
	_, err := sp.Normalize()
	if err == nil {
		t.Fatal("cyclic graph accepted")
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("error does not mention the cycle: %v", err)
	}
	// Self-loop: a task consuming its own output directly.
	sp2 := validMinimalSpec()
	sp2.Graph.Tasks[0].Inputs = append(sp2.Graph.Tasks[0].Inputs, "mid")
	if err := sp2.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("self-loop not rejected as cycle: %v", err)
	}
}

// TestValidateCollectsAllProblems: validation reports every problem in
// one pass, in deterministic order, not just the first.
func TestValidateCollectsAllProblems(t *testing.T) {
	sp := validMinimalSpec()
	sp.Graph.Tasks[0].FSE = 7
	sp.Graph.Tasks[1].FSE = -1
	sp.Platform.Cores = -4
	_, err := sp.Normalize()
	var se *SpecError
	if !errors.As(err, &se) {
		t.Fatalf("expected *SpecError, got %v", err)
	}
	if len(se.Problems) != 3 {
		t.Fatalf("expected 3 problems, got %d: %v", len(se.Problems), se.Problems)
	}
	// Deterministic: same spec, same error string.
	_, err2 := sp.Normalize()
	if err.Error() != err2.Error() {
		t.Fatalf("validation error unstable:\n%v\n%v", err, err2)
	}
}

// TestCanonicalBytesStability: the canonical serialization is label-free
// and insensitive to spelled-out defaults — every spelling of the same
// workload yields identical bytes and the same hash.
func TestCanonicalBytesStability(t *testing.T) {
	base := validMinimalSpec()
	want, err := base.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}

	// Same workload, different labels and explicit defaults.
	alt := validMinimalSpec()
	alt.Name = "renamed"
	alt.Description = "entirely different prose"
	alt.WarmupS = 99
	alt.MeasureS = 7
	alt.DefaultPolicy = "greedy-remap"
	alt.DefaultDelta = 5
	alt.Graph.FramePeriodS = 0.020
	alt.Graph.FMaxHz = 533e6
	alt.Graph.QueueCap = 11
	alt.Graph.Placement = PlacementExplicit
	alt.Graph.Source.PeriodS = 0.020
	alt.Graph.Sink.PeriodS = 0.020
	alt.Platform.Cores = 3
	got, err := alt.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("canonical bytes differ for equivalent spellings:\n%s\n%s", want, got)
	}
	if base.Hash() != alt.Hash() {
		t.Fatal("equivalent spellings hash apart")
	}

	// A semantic change must change the bytes.
	sem := validMinimalSpec()
	sem.Graph.Tasks[0].FSE = 0.51
	semBytes, err := sem.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(want, semBytes) {
		t.Fatal("semantic change did not change canonical bytes")
	}

	// Ladder order is canonicalized.
	l1, l2 := validMinimalSpec(), validMinimalSpec()
	l1.Platform.LadderMHz = []float64{133, 266, 533}
	l2.Platform.LadderMHz = []float64{533, 133, 266}
	if l1.Hash() != l2.Hash() {
		t.Fatal("ladder order changed the hash")
	}
}

// TestHashPanicsOnInvalid: Hash is documented to panic when handed an
// invalid spec — callers validate first.
func TestHashPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Hash of an invalid spec did not panic")
		}
	}()
	Spec{}.Hash()
}
