// Package scenario makes the evaluated workload a first-class,
// enumerable axis. The paper evaluates its policy on exactly two
// streaming applications and one 3-core platform; conclusions drawn on
// one topology often invert on another with the same aggregate
// statistics, so this package maps names to self-contained scenarios —
// stream graph + platform + duration + default policy — and registers
// the two paper workloads alongside synthetic families: deep pipelines,
// fan-out/fan-in graphs, bursty phase-shifting load, and many-core
// platforms built by tiling the MPSoC floorplan.
//
// Scenario construction is deterministic: instantiating the same name
// twice yields identical graphs (seeded generation, fixed topology), so
// experiment results are reproducible and comparable across runs.
package scenario

import (
	"fmt"

	"thermbal/internal/mpsoc"
	"thermbal/internal/sim"
	"thermbal/internal/stream"
	"thermbal/internal/thermal"
)

// Options carries the per-run knobs a caller may override; zero values
// select the scenario's defaults.
type Options struct {
	// QueueCap overrides the inter-task queue capacity in frames.
	QueueCap int
	// Package selects the thermal package (zero value: mobile-embedded).
	Package thermal.Package
}

// Instance is one instantiated scenario, ready for the simulation
// engine.
type Instance struct {
	// Graph is the finalized stream graph with all tasks placed.
	Graph *stream.Graph
	// Platform is the assembled MPSoC.
	Platform *mpsoc.Platform
	// Modulate is the load modulator, nil for constant-load scenarios.
	Modulate sim.Modulator
}

// Scenario is a named, self-contained experiment setup.
type Scenario struct {
	// Name is the registry key ("sdr-radio", "pipeline-d8", ...).
	Name string
	// Description is a one-line summary for -list output.
	Description string
	// Topology is a short structural label ("pipeline depth 8").
	Topology string
	// Cores is the platform size.
	Cores int
	// Tasks is the task count of the built graph.
	Tasks int
	// WarmupS and MeasureS are scenario default phases; zero means the
	// paper defaults (12.5 s / 30 s) chosen by the experiment layer.
	WarmupS  float64
	MeasureS float64
	// DefaultPolicy names the policy a bare run uses.
	DefaultPolicy string
	// DefaultDelta is the threshold a bare run uses (°C).
	DefaultDelta float64
	// Seed drives generated load profiles (0 for fixed topologies).
	Seed int64

	// Spec is the declarative form of the scenario, when it has one.
	// Every builtin does (their Build compiles it); it is what
	// /scenarios?spec=1 exports and what BuiltinNameForSpec indexes.
	Spec *Spec

	// Build instantiates the scenario.
	Build func(o Options) (*Instance, error)
}

// Instantiate builds the scenario with the given options.
func (s Scenario) Instantiate(o Options) (*Instance, error) {
	if s.Build == nil {
		return nil, fmt.Errorf("scenario: %q has no builder", s.Name)
	}
	inst, err := s.Build(o)
	if err != nil {
		return nil, fmt.Errorf("scenario: build %q: %w", s.Name, err)
	}
	return inst, nil
}

func (o Options) pkg() thermal.Package {
	if o.Package.Name == "" {
		return thermal.MobileEmbedded()
	}
	return o.Package
}
