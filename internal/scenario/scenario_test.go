package scenario

import (
	"strings"
	"testing"

	_ "thermbal/internal/core" // register thermal-balance
	"thermbal/internal/policy"
	"thermbal/internal/sim"
)

func TestBuiltinCatalogue(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("only %d scenarios registered: %v", len(names), names)
	}
	for _, want := range []string{
		"sdr-radio", "video-decoder", "pipeline-d8", "fanout-w4", "bursty-sdr", "manycore-8",
	} {
		if _, err := Lookup(want); err != nil {
			t.Errorf("Lookup(%q): %v", want, err)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	_, err := Lookup("no-such-scenario")
	if err == nil {
		t.Fatal("Lookup(no-such-scenario) succeeded")
	}
	if !strings.Contains(err.Error(), "sdr-radio") {
		t.Errorf("error %q does not list registered scenarios", err)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(Scenario{Name: "sdr-radio", Build: func(Options) (*Instance, error) { return nil, nil }})
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty-name registration did not panic")
		}
	}()
	Register(Scenario{Build: func(Options) (*Instance, error) { return nil, nil }})
}

// TestDeterministicConstruction instantiates every scenario twice and
// requires identical task sets: names, loads and placements. Generated
// families must be functions of their seed only.
func TestDeterministicConstruction(t *testing.T) {
	for _, s := range All() {
		a, err := s.Instantiate(Options{})
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		b, err := s.Instantiate(Options{})
		if err != nil {
			t.Fatalf("%s (second build): %v", s.Name, err)
		}
		if a.Graph.NumTasks() != b.Graph.NumTasks() {
			t.Fatalf("%s: task counts differ: %d vs %d", s.Name, a.Graph.NumTasks(), b.Graph.NumTasks())
		}
		if s.Tasks != a.Graph.NumTasks() {
			t.Errorf("%s: catalogue says %d tasks, built %d", s.Name, s.Tasks, a.Graph.NumTasks())
		}
		for i := 0; i < a.Graph.NumTasks(); i++ {
			ta, tb := a.Graph.Task(i), b.Graph.Task(i)
			if ta.Name != tb.Name || ta.FSE != tb.FSE || ta.Core != tb.Core {
				t.Fatalf("%s: task %d differs: %s/%g/core%d vs %s/%g/core%d",
					s.Name, i, ta.Name, ta.FSE, ta.Core, tb.Name, tb.FSE, tb.Core)
			}
		}
		if a.Platform.NumCores() != s.Cores {
			t.Errorf("%s: platform has %d cores, catalogue says %d", s.Name, a.Platform.NumCores(), s.Cores)
		}
	}
}

// TestAllScenariosPlacedAndRunnable checks every scenario's tasks are
// placed on valid cores and its default policy resolves in the policy
// registry.
func TestAllScenariosPlacedAndRunnable(t *testing.T) {
	for _, s := range All() {
		inst, err := s.Instantiate(Options{})
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		for _, tk := range inst.Graph.Tasks() {
			if tk.Core < 0 || tk.Core >= s.Cores {
				t.Errorf("%s: task %s on core %d (platform has %d)", s.Name, tk.Name, tk.Core, s.Cores)
			}
		}
		if _, err := policy.New(s.DefaultPolicy, policy.Args{Delta: s.DefaultDelta}); err != nil {
			t.Errorf("%s: default policy: %v", s.Name, err)
		}
	}
}

// TestBurstyModulatorShiftsLoad runs the bursty scenario briefly and
// checks the modulator actually moves load between task groups.
func TestBurstyModulatorShiftsLoad(t *testing.T) {
	s, err := Lookup("bursty-sdr")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Instantiate(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Modulate == nil {
		t.Fatal("bursty-sdr has no modulator")
	}
	base := make([]float64, inst.Graph.NumTasks())
	for i, tk := range inst.Graph.Tasks() {
		base[i] = tk.FSE
	}
	if !inst.Modulate(0, inst.Graph.Tasks()) {
		t.Fatal("first modulator call reported no change")
	}
	phase0 := make([]float64, len(base))
	for i, tk := range inst.Graph.Tasks() {
		phase0[i] = tk.FSE
	}
	if inst.Modulate(1.0, inst.Graph.Tasks()) {
		t.Error("mid-phase call reported a change")
	}
	if !inst.Modulate(burstPeriodS+0.01, inst.Graph.Tasks()) {
		t.Fatal("phase flip not reported")
	}
	flipped := false
	for i, tk := range inst.Graph.Tasks() {
		if tk.FSE != phase0[i] {
			flipped = true
		}
		if tk.FSE > 1 {
			t.Errorf("task %d modulated FSE %g > 1", i, tk.FSE)
		}
	}
	if !flipped {
		t.Fatal("phase flip left every load unchanged")
	}
}

// TestScenarioEndToEnd drives a short simulation through a synthetic
// scenario with its default policy, modulator included.
func TestScenarioEndToEnd(t *testing.T) {
	for _, name := range []string{"pipeline-d8", "fanout-w4", "bursty-sdr"} {
		s, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := s.Instantiate(Options{})
		if err != nil {
			t.Fatal(err)
		}
		pol, err := policy.New(s.DefaultPolicy, policy.Args{Delta: s.DefaultDelta})
		if err != nil {
			t.Fatal(err)
		}
		e, err := sim.New(sim.Config{
			PolicyStartS:  1,
			MeasureStartS: 1,
			Modulate:      inst.Modulate,
		}, inst.Platform, inst.Graph, pol)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := e.Run(3); err != nil {
			t.Fatalf("%s: run: %v", name, err)
		}
		res := e.Summarize()
		if res.FramesConsumed == 0 {
			t.Errorf("%s: no frames consumed in 3 s", name)
		}
	}
}
