package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"thermbal/internal/stream"
)

// This file defines the declarative scenario description: a versioned,
// JSON-able Spec that fully determines a workload — task graph with
// rates, deadlines and loads; platform and floorplan selection
// (including asymmetric big.LITTLE-style core tiles and the ambient
// profile); load modulation; power coefficients. Built-in scenarios are
// registered as specs compiled by Compile, a service request may carry
// one inline, and Generate derives one from a seed — all three enter
// the simulator through the same path and the same content-address
// scheme.

// SpecVersionV1 is the current (and only) scenario spec schema version.
const SpecVersionV1 = 1

// Spec is the declarative form of a scenario. The zero value of every
// optional field selects a documented default, so a minimal spec is
// just a graph; Normalize makes the execution-relevant defaults
// explicit and validates everything.
type Spec struct {
	// SpecVersion is the schema version (0 is read as the current
	// version, 1).
	SpecVersion int `json:"spec_version,omitempty"`
	// Name labels the scenario ("sdr-radio" for the builtin, free-form
	// for custom specs). It is not part of the content identity.
	Name string `json:"name,omitempty"`
	// Description is a one-line summary for catalogues.
	Description string `json:"description,omitempty"`

	// Graph is the streaming task graph.
	Graph GraphSpec `json:"graph"`
	// Platform selects the die and its electrical/thermal parameters.
	Platform PlatformSpec `json:"platform"`
	// Modulation, when present, varies task loads over time.
	Modulation *ModulationSpec `json:"modulation,omitempty"`

	// WarmupS and MeasureS are the scenario's default phases; zero
	// means the paper defaults (12.5 s / 30 s). Like Name they are
	// request defaults, not part of the content identity — a run's
	// resolved phases are keyed explicitly.
	WarmupS  float64 `json:"warmup_s,omitempty"`
	MeasureS float64 `json:"measure_s,omitempty"`
	// DefaultPolicy and DefaultDelta are the policy/threshold a bare
	// run of this scenario uses (defaults "thermal-balance" / 3 °C).
	DefaultPolicy string  `json:"default_policy,omitempty"`
	DefaultDelta  float64 `json:"default_delta,omitempty"`
}

// GraphSpec is the task graph: named bounded queues, tasks wired to
// them by name, one paced source and one deadline sink. Queue and task
// order is semantic — it fixes the engine's scheduling indices — so
// both lists are ordered, not sets.
type GraphSpec struct {
	// FramePeriodS is the frame period tasks' work is derived from
	// (default 0.02 s, the SDR rate).
	FramePeriodS float64 `json:"frame_period_s,omitempty"`
	// FMaxHz converts FSE loads to cycles per frame (default 533 MHz).
	FMaxHz float64 `json:"fmax_hz,omitempty"`
	// QueueCap is the default capacity of queues that set none
	// (default 11 frames, the paper's minimum sustainable size). A
	// run's queue-capacity override replaces this default but never an
	// explicit per-queue cap.
	QueueCap int `json:"queue_cap,omitempty"`
	// Placement is "explicit" (every task names its core; default) or
	// "balanced" (cores assigned by the deterministic energy-balancing
	// placement).
	Placement string `json:"placement,omitempty"`

	Queues []QueueSpec `json:"queues"`
	Tasks  []TaskSpec  `json:"tasks"`
	Source SourceSpec  `json:"source"`
	Sink   SinkSpec    `json:"sink"`
}

// QueueSpec declares one bounded queue.
type QueueSpec struct {
	Name string `json:"name"`
	// Cap overrides the graph-level default capacity when positive.
	Cap int `json:"cap,omitempty"`
}

// TaskSpec declares one task.
type TaskSpec struct {
	Name string `json:"name"`
	// FSE is the full-speed-equivalent load in (0, 1].
	FSE float64 `json:"fse"`
	// Inputs and Outputs name the queues the task consumes from and
	// produces into. A task fires when every input holds a frame and
	// every output has room.
	Inputs  []string `json:"inputs,omitempty"`
	Outputs []string `json:"outputs,omitempty"`
	// Core is the 0-based placement; required under explicit
	// placement, forbidden under balanced.
	Core *int `json:"core,omitempty"`
	// StateBytes / CodeBytes override the migration payload and
	// program image sizes when positive (defaults 64 KiB / 48 KiB).
	StateBytes float64 `json:"state_bytes,omitempty"`
	CodeBytes  float64 `json:"code_bytes,omitempty"`
}

// SourceSpec paces frames into one queue at a fixed real-time rate.
type SourceSpec struct {
	Queue string `json:"queue"`
	// PeriodS defaults to the graph frame period.
	PeriodS float64 `json:"period_s,omitempty"`
}

// SinkSpec drains one queue on a deadline schedule.
type SinkSpec struct {
	Queue string `json:"queue"`
	// PeriodS defaults to the graph frame period.
	PeriodS float64 `json:"period_s,omitempty"`
	// Prefill is the playback threshold in frames; 0 derives half the
	// sink queue's effective capacity, so it follows queue-capacity
	// overrides.
	Prefill int `json:"prefill,omitempty"`
}

// PlatformSpec selects the die and its parameters.
type PlatformSpec struct {
	// Cores is the core count (default 3, the paper's die; with Tiles
	// it must equal the summed tile counts, or be 0 to derive it).
	Cores int `json:"cores,omitempty"`
	// Tiles, when present, build an asymmetric (big.LITTLE-style) die:
	// runs of identically scaled core tiles in a row under a shared
	// memory strip. Empty tiles reuse the homogeneous tiled die.
	Tiles []TileSpec `json:"tiles,omitempty"`
	// AmbientC overrides the package ambient temperature (°C).
	AmbientC *float64 `json:"ambient_c,omitempty"`
	// LadderMHz overrides the DVFS frequency ladder (default
	// 133/266/533 MHz). Levels are kept sorted ascending.
	LadderMHz []float64 `json:"ladder_mhz,omitempty"`
	// Power overrides the core power model coefficients.
	Power *PowerSpec `json:"power,omitempty"`
}

// TileSpec is one run of identically scaled core tiles.
type TileSpec struct {
	// Count is the number of tiles in this run.
	Count int `json:"count"`
	// Scale multiplies the tile geometry (1 = the paper's 2.0x1.4 mm
	// tile; >1 is a "big" core with more silicon and thermal mass,
	// <1 a "LITTLE" one). Default 1.
	Scale float64 `json:"scale,omitempty"`
}

// PowerSpec overrides core power-model coefficients; zero fields keep
// the model defaults.
type PowerSpec struct {
	// Config is "conf1" (RISC32-streaming, default) or "conf2"
	// (RISC32-ARM11).
	Config string `json:"config,omitempty"`
	// IdleFraction is idle power as a fraction of max dynamic power.
	IdleFraction float64 `json:"idle_fraction,omitempty"`
	// LeakRefW, LeakBeta, LeakRefTempC parameterize the exponential
	// leakage model.
	LeakRefW     float64 `json:"leak_ref_w,omitempty"`
	LeakBeta     float64 `json:"leak_beta,omitempty"`
	LeakRefTempC float64 `json:"leak_ref_temp_c,omitempty"`
	// VMaxV / VMinV bound the DVFS voltage ladder.
	VMaxV float64 `json:"vmax_v,omitempty"`
	VMinV float64 `json:"vmin_v,omitempty"`
}

// ModulationSpec varies task loads over time.
type ModulationSpec struct {
	// Kind is the modulation scheme; "phase-shift" is the only one:
	// even- and odd-indexed tasks alternate between Hi and Lo load
	// factors every PeriodS.
	Kind string `json:"kind"`
	// PeriodS is the phase length (default 4 s).
	PeriodS float64 `json:"period_s,omitempty"`
	// Hi and Lo scale the construction-time loads of the hot and cold
	// groups (defaults 1.35 / 0.65).
	Hi float64 `json:"hi,omitempty"`
	Lo float64 `json:"lo,omitempty"`
}

// Placement values.
const (
	PlacementExplicit = "explicit"
	PlacementBalanced = "balanced"
)

// ModPhaseShift is the phase-shift modulation kind.
const ModPhaseShift = "phase-shift"

// Structural and physical bounds enforced by validation. They are
// generous for experiments but reject the nonphysical and the
// absurd-resource cases a content-addressed service must not execute.
const (
	maxSpecTasks  = 4096
	maxSpecQueues = 16384
	maxSpecCores  = 1024
	maxQueueCap   = 1 << 16
	maxNameLen    = 128
	maxTaskBytes  = 1 << 30 // 1 GiB state/code payload
)

// Problem locates one invalid spec field.
type Problem struct {
	// Path is the JSON-ish location ("graph.tasks[3].fse").
	Path string `json:"path"`
	// Msg says what is wrong with it.
	Msg string `json:"msg"`
}

// SpecError is the structured validation failure: every problem found,
// in a deterministic order.
type SpecError struct {
	Problems []Problem
}

// Error lists every problem.
func (e *SpecError) Error() string {
	parts := make([]string, len(e.Problems))
	for i, p := range e.Problems {
		parts[i] = p.Path + ": " + p.Msg
	}
	return "scenario spec invalid: " + strings.Join(parts, "; ")
}

// specCheck accumulates validation problems.
type specCheck struct {
	problems []Problem
}

func (c *specCheck) addf(path, format string, args ...any) {
	c.problems = append(c.problems, Problem{Path: path, Msg: fmt.Sprintf(format, args...)})
}

// finite rejects NaN and infinities — nonphysical everywhere a float
// appears in a spec.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func (c *specCheck) num(path string, v, lo, hi float64) bool {
	if !finite(v) {
		c.addf(path, "must be a finite number")
		return false
	}
	if v < lo || v > hi {
		c.addf(path, "%g outside [%g, %g]", v, lo, hi)
		return false
	}
	return true
}

// Normalize validates sp and returns its normalized form: every
// execution-relevant default made explicit, ladder levels sorted,
// version pinned. Request-level defaults (name, phases, default
// policy/delta) pass through untouched — they are resolved per run,
// not part of the spec's content identity. Normalize is idempotent:
// normalizing a normalized spec returns it unchanged.
func (sp Spec) Normalize() (Spec, error) {
	c := &specCheck{}
	n := sp

	if n.SpecVersion == 0 {
		n.SpecVersion = SpecVersionV1
	}
	if n.SpecVersion != SpecVersionV1 {
		c.addf("spec_version", "unsupported version %d (this build speaks %d)", n.SpecVersion, SpecVersionV1)
		return Spec{}, &SpecError{Problems: c.problems}
	}
	if len(n.Name) > maxNameLen {
		c.addf("name", "longer than %d bytes", maxNameLen)
	}
	if n.WarmupS < 0 || !finite(n.WarmupS) {
		c.addf("warmup_s", "must be a finite non-negative duration")
	}
	if n.MeasureS < 0 || !finite(n.MeasureS) {
		c.addf("measure_s", "must be a finite non-negative duration")
	}
	if n.DefaultDelta < 0 || !finite(n.DefaultDelta) {
		c.addf("default_delta", "must be a finite non-negative threshold")
	}

	n.Graph = normalizeGraph(c, n.Graph)
	n.Platform = normalizePlatform(c, n.Platform)
	if n.Modulation != nil {
		m := normalizeModulation(c, *n.Modulation)
		n.Modulation = &m
	}

	if len(c.problems) > 0 {
		return Spec{}, &SpecError{Problems: c.problems}
	}
	return n, nil
}

func normalizeGraph(c *specCheck, g GraphSpec) GraphSpec {
	if g.FramePeriodS == 0 {
		g.FramePeriodS = stream.DefaultFramePeriod
	}
	c.num("graph.frame_period_s", g.FramePeriodS, 1e-6, 10)
	if g.FMaxHz == 0 {
		g.FMaxHz = 533e6
	}
	c.num("graph.fmax_hz", g.FMaxHz, 1e6, 1e11)
	if g.QueueCap == 0 {
		g.QueueCap = stream.DefaultQueueCap
	}
	if g.QueueCap < 1 || g.QueueCap > maxQueueCap {
		c.addf("graph.queue_cap", "%d outside [1, %d]", g.QueueCap, maxQueueCap)
	}
	if g.Placement == "" {
		g.Placement = PlacementExplicit
	}
	if g.Placement != PlacementExplicit && g.Placement != PlacementBalanced {
		c.addf("graph.placement", "unknown placement %q (%s | %s)", g.Placement, PlacementExplicit, PlacementBalanced)
	}

	if len(g.Queues) == 0 {
		c.addf("graph.queues", "at least one queue is required")
	}
	if len(g.Queues) > maxSpecQueues {
		c.addf("graph.queues", "%d queues exceed the limit of %d", len(g.Queues), maxSpecQueues)
		return g
	}
	if len(g.Tasks) == 0 {
		c.addf("graph.tasks", "at least one task is required")
	}
	if len(g.Tasks) > maxSpecTasks {
		c.addf("graph.tasks", "%d tasks exceed the limit of %d", len(g.Tasks), maxSpecTasks)
		return g
	}

	qIndex := make(map[string]int, len(g.Queues))
	for i, q := range g.Queues {
		path := fmt.Sprintf("graph.queues[%d]", i)
		if q.Name == "" || len(q.Name) > maxNameLen {
			c.addf(path+".name", "must be 1..%d bytes", maxNameLen)
			continue
		}
		if _, dup := qIndex[q.Name]; dup {
			c.addf(path+".name", "duplicate queue %q", q.Name)
			continue
		}
		qIndex[q.Name] = i
		if q.Cap < 0 || q.Cap > maxQueueCap {
			c.addf(path+".cap", "%d outside [0, %d]", q.Cap, maxQueueCap)
		}
	}

	// Producer/consumer coverage per queue, then task wiring. The
	// source produces into its queue, the sink consumes from its.
	prod := make(map[string]int, len(g.Queues))
	cons := make(map[string]int, len(g.Queues))
	tIndex := make(map[string]int, len(g.Tasks))
	// edges feed the cycle check: producer task -> consumer task.
	producersOf := make(map[string][]int) // queue name -> producing task indices
	for i, t := range g.Tasks {
		path := fmt.Sprintf("graph.tasks[%d]", i)
		if t.Name == "" || len(t.Name) > maxNameLen {
			c.addf(path+".name", "must be 1..%d bytes", maxNameLen)
		} else if _, dup := tIndex[t.Name]; dup {
			c.addf(path+".name", "duplicate task %q", t.Name)
		} else {
			tIndex[t.Name] = i
		}
		if !finite(t.FSE) || t.FSE <= 0 || t.FSE > 1 {
			c.addf(path+".fse", "load %g outside (0, 1]", t.FSE)
		}
		if len(t.Inputs) == 0 && len(t.Outputs) == 0 {
			c.addf(path, "task %q is disconnected (no inputs or outputs)", t.Name)
		}
		for j, q := range t.Inputs {
			if _, ok := qIndex[q]; !ok {
				c.addf(fmt.Sprintf("%s.inputs[%d]", path, j), "dangling edge: unknown queue %q", q)
				continue
			}
			cons[q]++
		}
		for j, q := range t.Outputs {
			if _, ok := qIndex[q]; !ok {
				c.addf(fmt.Sprintf("%s.outputs[%d]", path, j), "dangling edge: unknown queue %q", q)
				continue
			}
			prod[q]++
			producersOf[q] = append(producersOf[q], i)
		}
		switch g.Placement {
		case PlacementBalanced:
			if t.Core != nil {
				c.addf(path+".core", "balanced placement assigns cores; remove the explicit core")
			}
		case PlacementExplicit:
			if t.Core == nil {
				c.addf(path+".core", "explicit placement requires a core for task %q", t.Name)
			} else if *t.Core < 0 {
				c.addf(path+".core", "core %d is negative", *t.Core)
			}
		}
		if !finite(t.StateBytes) || t.StateBytes < 0 || t.StateBytes > maxTaskBytes {
			c.addf(path+".state_bytes", "%g outside [0, %d]", t.StateBytes, maxTaskBytes)
		}
		if !finite(t.CodeBytes) || t.CodeBytes < 0 || t.CodeBytes > maxTaskBytes {
			c.addf(path+".code_bytes", "%g outside [0, %d]", t.CodeBytes, maxTaskBytes)
		}
	}

	if g.Source.Queue == "" {
		c.addf("graph.source.queue", "a source queue is required")
	} else if _, ok := qIndex[g.Source.Queue]; !ok {
		c.addf("graph.source.queue", "unknown queue %q", g.Source.Queue)
	} else {
		prod[g.Source.Queue]++
	}
	if g.Source.PeriodS == 0 {
		g.Source.PeriodS = g.FramePeriodS
	}
	c.num("graph.source.period_s", g.Source.PeriodS, 1e-6, 10)

	if g.Sink.Queue == "" {
		c.addf("graph.sink.queue", "a sink queue is required")
	} else if _, ok := qIndex[g.Sink.Queue]; !ok {
		c.addf("graph.sink.queue", "unknown queue %q", g.Sink.Queue)
	} else {
		cons[g.Sink.Queue]++
	}
	if g.Sink.PeriodS == 0 {
		g.Sink.PeriodS = g.FramePeriodS
	}
	c.num("graph.sink.period_s", g.Sink.PeriodS, 1e-6, 10)
	if g.Sink.Prefill < 0 || g.Sink.Prefill > maxQueueCap {
		c.addf("graph.sink.prefill", "%d outside [0, %d]", g.Sink.Prefill, maxQueueCap)
	}

	for i, q := range g.Queues {
		if q.Name == "" {
			continue
		}
		path := fmt.Sprintf("graph.queues[%d]", i)
		if prod[q.Name] == 0 {
			c.addf(path, "queue %q has no producer", q.Name)
		}
		if cons[q.Name] == 0 {
			c.addf(path, "queue %q has no consumer", q.Name)
		}
	}

	checkAcyclic(c, g, producersOf)
	return g
}

// checkAcyclic rejects cyclic task graphs: a task that (transitively)
// consumes its own output deadlocks the bounded-queue engine, so cycles
// are a spec error, not a runtime hang.
func checkAcyclic(c *specCheck, g GraphSpec, producersOf map[string][]int) {
	const (
		unseen = 0
		onPath = 1
		done   = 2
	)
	state := make([]int8, len(g.Tasks))
	// Iterative DFS over "producer precedes consumer" edges, walked
	// backwards from each task to its producers.
	var cycleAt = -1
	var visit func(i int)
	visit = func(i int) {
		if cycleAt >= 0 || state[i] != unseen {
			return
		}
		state[i] = onPath
		for _, q := range g.Tasks[i].Inputs {
			for _, p := range producersOf[q] {
				if state[p] == onPath {
					cycleAt = p
					return
				}
				visit(p)
				if cycleAt >= 0 {
					return
				}
			}
		}
		state[i] = done
	}
	for i := range g.Tasks {
		visit(i)
		if cycleAt >= 0 {
			c.addf(fmt.Sprintf("graph.tasks[%d]", cycleAt),
				"cycle: task %q transitively consumes its own output", g.Tasks[cycleAt].Name)
			return
		}
	}
}

func normalizePlatform(c *specCheck, p PlatformSpec) PlatformSpec {
	if len(p.Tiles) > 0 {
		// Copy before filling scales: the input spec's slice must not
		// be mutated through the shared backing array.
		p.Tiles = append([]TileSpec(nil), p.Tiles...)
		sum := 0
		for i, t := range p.Tiles {
			path := fmt.Sprintf("platform.tiles[%d]", i)
			if t.Count < 1 || t.Count > maxSpecCores {
				c.addf(path+".count", "%d outside [1, %d]", t.Count, maxSpecCores)
				continue
			}
			if t.Scale == 0 {
				p.Tiles[i].Scale = 1
			} else {
				c.num(path+".scale", t.Scale, 0.25, 4)
			}
			sum += t.Count
		}
		if p.Cores == 0 {
			p.Cores = sum
		} else if p.Cores != sum {
			c.addf("platform.cores", "%d does not match the %d summed tile counts", p.Cores, sum)
		}
	}
	if p.Cores == 0 {
		p.Cores = 3
	}
	if p.Cores < 1 || p.Cores > maxSpecCores {
		c.addf("platform.cores", "%d outside [1, %d]", p.Cores, maxSpecCores)
	}
	if p.AmbientC != nil {
		c.num("platform.ambient_c", *p.AmbientC, -55, 125)
	}
	if len(p.LadderMHz) > 0 {
		if len(p.LadderMHz) > 16 {
			c.addf("platform.ladder_mhz", "%d levels exceed the limit of 16", len(p.LadderMHz))
		}
		ls := append([]float64(nil), p.LadderMHz...)
		sort.Float64s(ls)
		p.LadderMHz = ls
		for i, f := range ls {
			path := fmt.Sprintf("platform.ladder_mhz[%d]", i)
			if !c.num(path, f, 1, 1e5) {
				continue
			}
			if i > 0 && f == ls[i-1] {
				c.addf(path, "duplicate frequency %g MHz", f)
			}
		}
	}
	if p.Power != nil {
		pw := *p.Power
		if pw.Config == "" {
			pw.Config = "conf1"
		}
		if pw.Config != "conf1" && pw.Config != "conf2" {
			c.addf("platform.power.config", "unknown core config %q (conf1 | conf2)", pw.Config)
		}
		c.num("platform.power.idle_fraction", pw.IdleFraction, 0, 1)
		c.num("platform.power.leak_ref_w", pw.LeakRefW, 0, 100)
		c.num("platform.power.leak_beta", pw.LeakBeta, 0, 0.5)
		c.num("platform.power.leak_ref_temp_c", pw.LeakRefTempC, 0, 150)
		c.num("platform.power.vmax_v", pw.VMaxV, 0, 5)
		c.num("platform.power.vmin_v", pw.VMinV, 0, 5)
		if pw.VMaxV > 0 && pw.VMinV > 0 && pw.VMinV > pw.VMaxV {
			c.addf("platform.power.vmin_v", "%g exceeds vmax_v %g", pw.VMinV, pw.VMaxV)
		}
		p.Power = &pw
	}
	return p
}

func normalizeModulation(c *specCheck, m ModulationSpec) ModulationSpec {
	if m.Kind != ModPhaseShift {
		c.addf("modulation.kind", "unknown modulation %q (%s)", m.Kind, ModPhaseShift)
	}
	if m.PeriodS == 0 {
		m.PeriodS = burstPeriodS
	}
	c.num("modulation.period_s", m.PeriodS, 1e-3, 3600)
	if m.Hi == 0 {
		m.Hi = burstHi
	}
	if m.Lo == 0 {
		m.Lo = burstLo
	}
	c.num("modulation.hi", m.Hi, 1e-3, 100)
	c.num("modulation.lo", m.Lo, 1e-3, 100)
	if finite(m.Hi) && finite(m.Lo) && m.Lo > m.Hi {
		c.addf("modulation.lo", "%g exceeds hi %g", m.Lo, m.Hi)
	}
	return m
}

// Validate checks sp without returning the normalized form.
func (sp Spec) Validate() error {
	_, err := sp.Normalize()
	return err
}

// canonicalSpec is the frozen canonical-serialization view: only the
// semantic fields, in this exact declaration order. It feeds the
// SHA-256 content address, so its layout must never change — additions
// require a new spec version. Name, description, default policy/delta
// and default phases are excluded: they are labels and request
// defaults, resolved into the run key itself, so two specs that mean
// the same workload coalesce regardless of labelling.
type canonicalSpec struct {
	SpecVersion int             `json:"spec_version"`
	Graph       GraphSpec       `json:"graph"`
	Platform    PlatformSpec    `json:"platform"`
	Modulation  *ModulationSpec `json:"modulation,omitempty"`
}

// CanonicalBytes returns the frozen fixed-order canonical serialization
// of the spec's semantic content: normalized defaults, declaration-order
// fields, shortest round-trip numbers (encoding/json over structs is
// deterministic — no maps are involved).
func (sp Spec) CanonicalBytes() ([]byte, error) {
	n, err := sp.Normalize()
	if err != nil {
		return nil, err
	}
	return json.Marshal(canonicalSpec{
		SpecVersion: n.SpecVersion,
		Graph:       n.Graph,
		Platform:    n.Platform,
		Modulation:  n.Modulation,
	})
}

// Hash returns the SHA-256 hex of the canonical serialization — the
// spec's content identity, shared by every spelling that normalizes to
// the same workload. It panics on an invalid spec; callers validate
// (or Normalize) first.
func (sp Spec) Hash() string {
	b, err := sp.CanonicalBytes()
	if err != nil {
		panic(fmt.Sprintf("scenario: Hash of invalid spec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
