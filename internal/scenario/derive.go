package scenario

import (
	"fmt"
	"math/rand"

	"thermbal/internal/stream"
	"thermbal/internal/task"
)

// builtinMeta carries the construction constants a Go graph builder
// used, so deriveSpec can lift its output into a spec without
// reverse-engineering floats (recomputing FMaxHz from CyclesPerFrame
// could be a ulp off, and bit-for-bit recompilation depends on the
// exact constants).
type builtinMeta struct {
	framePeriodS float64
	fmaxHz       float64
	queueCap     int // the builder's default capacity
	cores        int
	balanced     bool
	modulation   *ModulationSpec
}

// deriveSpec lifts a built stream graph into the declarative spec that
// compiles back to it exactly: queues and tasks in registration order
// (order is semantic — it fixes the engine's scheduling indices),
// defaultable values recorded as defaults so run-time overrides keep
// working, everything else verbatim.
func deriveSpec(g *stream.Graph, m builtinMeta) (Spec, error) {
	sp := Spec{SpecVersion: SpecVersionV1}
	gs := &sp.Graph
	gs.FramePeriodS = m.framePeriodS
	gs.FMaxHz = m.fmaxHz
	gs.QueueCap = m.queueCap
	gs.Placement = PlacementExplicit
	if m.balanced {
		gs.Placement = PlacementBalanced
	}

	for qi := 0; qi < g.NumQueues(); qi++ {
		q := g.Queue(qi)
		qs := QueueSpec{Name: q.Name()}
		if q.Cap() != m.queueCap {
			qs.Cap = q.Cap()
		}
		gs.Queues = append(gs.Queues, qs)
	}
	for ti, t := range g.Tasks() {
		ts := TaskSpec{Name: t.Name, FSE: t.FSE}
		// The compiler re-binds work from the recorded constants; a
		// mismatch here means the builder used others.
		if want := t.FSE * m.fmaxHz * m.framePeriodS; want != t.CyclesPerFrame {
			return Spec{}, fmt.Errorf("scenario: task %q work %g does not derive from fmax %g x period %g",
				t.Name, t.CyclesPerFrame, m.fmaxHz, m.framePeriodS)
		}
		for _, qi := range g.Inputs(ti) {
			ts.Inputs = append(ts.Inputs, g.Queue(qi).Name())
		}
		for _, qi := range g.Outputs(ti) {
			ts.Outputs = append(ts.Outputs, g.Queue(qi).Name())
		}
		if t.StateBytes != task.DefaultStateBytes {
			ts.StateBytes = t.StateBytes
		}
		if t.CodeBytes != task.DefaultCodeBytes {
			ts.CodeBytes = t.CodeBytes
		}
		if !m.balanced {
			core := t.Core
			ts.Core = &core
		}
		gs.Tasks = append(gs.Tasks, ts)
	}

	srcQ, srcPeriod := g.SourceConfig()
	gs.Source = SourceSpec{Queue: g.Queue(srcQ).Name(), PeriodS: srcPeriod}
	sinkQ, sinkPeriod, prefill := g.SinkConfig()
	gs.Sink = SinkSpec{Queue: g.Queue(sinkQ).Name(), PeriodS: sinkPeriod}
	if prefill != (g.Queue(sinkQ).Cap()+1)/2 {
		// Anything but the half-capacity default is recorded verbatim;
		// the default stays derived so it follows capacity overrides.
		gs.Sink.Prefill = prefill
	}

	sp.Platform = PlatformSpec{Cores: m.cores}
	sp.Modulation = m.modulation
	return sp, nil
}

// Generate returns the deterministic scenario spec for a seed: a
// split/join streaming workload with seeded widths and loads on a
// tiled die sized to the seed's draw. The spec — and therefore its
// content address — is a pure function of the seed, so generated
// workloads cache, persist and coalesce like built-ins.
func Generate(seed int64) Spec {
	rng := rand.New(rand.NewSource(seed))
	cores := 4 << rng.Intn(3) // 4, 8 or 16
	stages := cores/2 + 2 + rng.Intn(3)
	maxWidth := 2 + rng.Intn(2)
	totalFSE := (0.30 + 0.25*rng.Float64()) * float64(cores)
	g, err := stream.Generate(stream.GenConfig{
		Seed:     seed,
		Stages:   stages,
		MaxWidth: maxWidth,
		TotalFSE: totalFSE,
	})
	if err != nil {
		// The parameter ranges above always satisfy the generator's
		// load floor; a failure is a programming error.
		panic(fmt.Sprintf("scenario: Generate(%d): %v", seed, err))
	}
	sp, err := deriveSpec(g, builtinMeta{
		framePeriodS: stream.DefaultFramePeriod,
		fmaxHz:       533e6,
		queueCap:     stream.DefaultQueueCap,
		cores:        cores,
		balanced:     true,
	})
	if err != nil {
		panic(fmt.Sprintf("scenario: Generate(%d): %v", seed, err))
	}
	sp.Name = fmt.Sprintf("gen-%d", seed)
	sp.Description = fmt.Sprintf("seeded split/join workload (seed %d) on a %d-core tiled die", seed, cores)
	sp.WarmupS = 5
	sp.MeasureS = 10
	sp.DefaultPolicy = "thermal-balance"
	sp.DefaultDelta = 2
	n, err := sp.Normalize()
	if err != nil {
		panic(fmt.Sprintf("scenario: Generate(%d): %v", seed, err))
	}
	return n
}
