package scenario

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzSpecValidate fuzzes the declarative-spec front door: arbitrary
// JSON in, and the contract is
//
//   - never panic (validation, canonicalization, compilation);
//   - reject ⇒ the error is deterministic (same bytes, same message);
//   - accept ⇒ canonicalization is stable and the spec round-trips
//     through JSON byte-for-byte, so the content address is a function
//     of the workload alone.
//
// Run the smoke via `make fuzz-smoke` (20 s), or longer locally with
// `go test ./internal/scenario -fuzz=FuzzSpecValidate`.
func FuzzSpecValidate(f *testing.F) {
	// Seed corpus: every builtin's exported spec, a generated spec, a
	// minimal valid spec, and representative invalid shapes so the
	// mutator starts near both sides of the accept/reject boundary.
	for _, s := range All() {
		b, err := json.Marshal(s.Spec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	gen := Generate(3)
	if b, err := json.Marshal(gen); err == nil {
		f.Add(b)
	}
	if b, err := json.Marshal(validMinimalSpec()); err == nil {
		f.Add(b)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"graph":{"queues":[{"name":"q"}],"tasks":[{"name":"t","fse":2,"inputs":["q"],"core":0}],"source":{"queue":"q"},"sink":{"queue":"q"}}}`))
	f.Add([]byte(`{"spec_version":99}`))
	f.Add([]byte(`{"graph":{"queues":[{"name":"a"},{"name":"b"}],"tasks":[{"name":"x","fse":0.5,"inputs":["a","b"],"outputs":["b"],"core":0}],"source":{"queue":"a"},"sink":{"queue":"b"}}}`))
	f.Add([]byte(`{"platform":{"cores":2,"tiles":[{"count":1,"scale":2},{"count":1}]},"graph":{"queues":[{"name":"a"},{"name":"b"}],"tasks":[{"name":"x","fse":0.5,"inputs":["a"],"outputs":["b"],"core":1}],"source":{"queue":"a"},"sink":{"queue":"b"}}}`))
	f.Add([]byte(`{"modulation":{"kind":"phase-shift"},"graph":{"placement":"balanced","queues":[{"name":"a"},{"name":"b"}],"tasks":[{"name":"x","fse":0.5,"inputs":["a"],"outputs":["b"]}],"source":{"queue":"a"},"sink":{"queue":"b"}}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var sp Spec
		if err := json.Unmarshal(data, &sp); err != nil {
			return // not a spec-shaped document; nothing to validate
		}

		n, err := sp.Normalize()
		if err != nil {
			// Reject ⇒ stable, structured error.
			if _, ok := err.(*SpecError); !ok {
				t.Fatalf("validation error is %T, not *SpecError: %v", err, err)
			}
			_, err2 := sp.Normalize()
			if err2 == nil || err.Error() != err2.Error() {
				t.Fatalf("validation verdict unstable:\nfirst:  %v\nsecond: %v", err, err2)
			}
			return
		}

		// Accept ⇒ canonicalization is stable...
		c1, err := sp.CanonicalBytes()
		if err != nil {
			t.Fatalf("accepted spec fails CanonicalBytes: %v", err)
		}
		c2, err := n.CanonicalBytes()
		if err != nil {
			t.Fatalf("normalized spec fails CanonicalBytes: %v", err)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatalf("canonical bytes differ before/after normalization:\n%s\n%s", c1, c2)
		}

		// ...and the normalized form round-trips through JSON with the
		// same identity.
		enc, err := json.Marshal(n)
		if err != nil {
			t.Fatalf("marshal normalized: %v", err)
		}
		var back Spec
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatalf("round-trip decode: %v", err)
		}
		c3, err := back.CanonicalBytes()
		if err != nil {
			t.Fatalf("round-tripped spec invalid: %v", err)
		}
		if !bytes.Equal(c1, c3) {
			t.Fatalf("round trip changed canonical bytes:\n%s\n%s", c1, c3)
		}

		// Compilation must not panic. Skip the pathological sizes the
		// validator legitimately accepts (they are slow, not wrong).
		if n.Platform.Cores > 64 || len(n.Graph.Tasks) > 256 {
			return
		}
		if _, err := Compile(n, Options{}); err != nil {
			// Compile may reject what static validation cannot see
			// (e.g. a core index beyond the die) — but only with an
			// error, never a panic.
			return
		}
	})
}
