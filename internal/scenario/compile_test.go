package scenario

import (
	"math"
	"reflect"
	"testing"

	"thermbal/internal/floorplan"
	"thermbal/internal/mpsoc"
	"thermbal/internal/policy"
	"thermbal/internal/sim"
	"thermbal/internal/stream"
)

// legacyInstance replays what registerBuiltin did before the spec
// refactor: build the graph with the legacy Go builder, balance when
// the paper gives no hand mapping, tile the floorplan for non-3-core
// platforms, attach the modulator. It is the reference the compiled
// spec must match bit for bit.
func legacyInstance(t *testing.T, d builtinDef, o Options) *Instance {
	t.Helper()
	g, err := d.gb(o)
	if err != nil {
		t.Fatalf("%s: legacy build: %v", d.sc.Name, err)
	}
	if d.meta.balanced {
		policy.BalanceMapping(g.Tasks(), d.meta.cores)
	}
	var fp *floorplan.Floorplan
	if d.meta.cores != 3 {
		fp = floorplan.StreamingMPSoC(d.meta.cores)
	}
	plat, err := mpsoc.New(mpsoc.Config{Floorplan: fp, Package: o.pkg()})
	if err != nil {
		t.Fatalf("%s: legacy platform: %v", d.sc.Name, err)
	}
	var mod sim.Modulator
	if d.meta.modulation != nil {
		mod = phaseShiftModulator(g, burstPeriodS, burstHi, burstLo)
	}
	return &Instance{Graph: g, Platform: plat, Modulate: mod}
}

// requireGraphsIdentical compares two stream graphs exactly: queue
// names and capacities, task fields down to the float bits of
// CyclesPerFrame, wiring indices, and source/sink configuration.
func requireGraphsIdentical(t *testing.T, name string, want, got *stream.Graph) {
	t.Helper()
	if want.NumQueues() != got.NumQueues() {
		t.Fatalf("%s: queue count %d != %d", name, got.NumQueues(), want.NumQueues())
	}
	for qi := 0; qi < want.NumQueues(); qi++ {
		wq, gq := want.Queue(qi), got.Queue(qi)
		if wq.Name() != gq.Name() || wq.Cap() != gq.Cap() {
			t.Fatalf("%s: queue %d: got %s/cap%d, want %s/cap%d",
				name, qi, gq.Name(), gq.Cap(), wq.Name(), wq.Cap())
		}
	}
	if want.NumTasks() != got.NumTasks() {
		t.Fatalf("%s: task count %d != %d", name, got.NumTasks(), want.NumTasks())
	}
	for ti := 0; ti < want.NumTasks(); ti++ {
		wt, gt := want.Task(ti), got.Task(ti)
		if wt.Name != gt.Name {
			t.Fatalf("%s: task %d name %q != %q", name, ti, gt.Name, wt.Name)
		}
		if math.Float64bits(wt.FSE) != math.Float64bits(gt.FSE) {
			t.Fatalf("%s: task %s FSE bits differ: %x != %x", name, wt.Name,
				math.Float64bits(gt.FSE), math.Float64bits(wt.FSE))
		}
		if math.Float64bits(wt.CyclesPerFrame) != math.Float64bits(gt.CyclesPerFrame) {
			t.Fatalf("%s: task %s CyclesPerFrame bits differ: %x != %x", name, wt.Name,
				math.Float64bits(gt.CyclesPerFrame), math.Float64bits(wt.CyclesPerFrame))
		}
		if wt.StateBytes != gt.StateBytes || wt.CodeBytes != gt.CodeBytes {
			t.Fatalf("%s: task %s bytes differ: state %g/%g code %g/%g",
				name, wt.Name, gt.StateBytes, wt.StateBytes, gt.CodeBytes, wt.CodeBytes)
		}
		if wt.Core != gt.Core {
			t.Fatalf("%s: task %s core %d != %d", name, wt.Name, gt.Core, wt.Core)
		}
		if !reflect.DeepEqual(want.Inputs(ti), got.Inputs(ti)) {
			t.Fatalf("%s: task %s inputs %v != %v", name, wt.Name, got.Inputs(ti), want.Inputs(ti))
		}
		if !reflect.DeepEqual(want.Outputs(ti), got.Outputs(ti)) {
			t.Fatalf("%s: task %s outputs %v != %v", name, wt.Name, got.Outputs(ti), want.Outputs(ti))
		}
	}
	wsq, wsp := want.SourceConfig()
	gsq, gsp := got.SourceConfig()
	if wsq != gsq || math.Float64bits(wsp) != math.Float64bits(gsp) {
		t.Fatalf("%s: source %d/%g != %d/%g", name, gsq, gsp, wsq, wsp)
	}
	wkq, wkp, wkf := want.SinkConfig()
	gkq, gkp, gkf := got.SinkConfig()
	if wkq != gkq || math.Float64bits(wkp) != math.Float64bits(gkp) || wkf != gkf {
		t.Fatalf("%s: sink %d/%g/%d != %d/%g/%d", name, gkq, gkp, gkf, wkq, wkp, wkf)
	}
}

// TestBuiltinSpecsCompileBitForBit proves the tentpole invariant: every
// builtin compiled through its derived spec reconstructs exactly the
// graph the pre-refactor Go builder produced — under default options
// and under a queue-capacity override.
func TestBuiltinSpecsCompileBitForBit(t *testing.T) {
	for _, d := range builtinDefs() {
		d := d
		t.Run(d.sc.Name, func(t *testing.T) {
			sc, err := Lookup(d.sc.Name)
			if err != nil {
				t.Fatal(err)
			}
			if sc.Spec == nil {
				t.Fatal("builtin has no spec")
			}
			for _, o := range []Options{{}, {QueueCap: 5}} {
				legacy := legacyInstance(t, d, o)
				compiled, err := sc.Instantiate(o)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				requireGraphsIdentical(t, d.sc.Name, legacy.Graph, compiled.Graph)
				if legacy.Platform.NumCores() != compiled.Platform.NumCores() {
					t.Fatalf("platform cores %d != %d",
						compiled.Platform.NumCores(), legacy.Platform.NumCores())
				}
				if (legacy.Modulate == nil) != (compiled.Modulate == nil) {
					t.Fatalf("modulator presence differs: legacy %v, compiled %v",
						legacy.Modulate != nil, compiled.Modulate != nil)
				}
			}
		})
	}
}

// TestBuiltinSpecsRunBitForBit runs a subset of builtins end to end
// through both construction paths and requires identical summaries —
// every metric, bit for bit. Identical graphs plus identical platforms
// must produce identical trajectories; this catches any divergence the
// structural comparison cannot see (platform assembly, modulators).
func TestBuiltinSpecsRunBitForBit(t *testing.T) {
	subset := map[string]bool{
		"sdr-radio": true, "video-decoder": true, "bursty-sdr": true,
		"pipeline-d8": true, "fanout-w8": true, "manycore-8": true,
	}
	for _, d := range builtinDefs() {
		if !subset[d.sc.Name] {
			continue
		}
		d := d
		t.Run(d.sc.Name, func(t *testing.T) {
			sc, err := Lookup(d.sc.Name)
			if err != nil {
				t.Fatal(err)
			}
			run := func(inst *Instance) sim.Result {
				t.Helper()
				pol, err := policy.New(d.sc.DefaultPolicy, policy.Args{Delta: d.sc.DefaultDelta})
				if err != nil {
					t.Fatal(err)
				}
				e, err := sim.New(sim.Config{
					PolicyStartS:  1,
					MeasureStartS: 1,
					Modulate:      inst.Modulate,
				}, inst.Platform, inst.Graph, pol)
				if err != nil {
					t.Fatal(err)
				}
				if err := e.Run(3); err != nil {
					t.Fatal(err)
				}
				return e.Summarize()
			}
			legacy := run(legacyInstance(t, d, Options{}))
			compiled, err := sc.Instantiate(Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := run(compiled)
			if !reflect.DeepEqual(legacy, got) {
				t.Fatalf("summaries differ:\nlegacy:   %+v\ncompiled: %+v", legacy, got)
			}
		})
	}
}

// TestBuiltinNameForSpec checks the spec-hash index both ways: every
// builtin's exported spec resolves to its own name, and a perturbed
// spec does not resolve at all.
func TestBuiltinNameForSpec(t *testing.T) {
	for _, s := range All() {
		if s.Spec == nil {
			t.Fatalf("%s: no spec", s.Name)
		}
		name, ok := BuiltinNameForSpec(*s.Spec)
		if !ok || name != s.Name {
			t.Errorf("%s: BuiltinNameForSpec = %q, %v", s.Name, name, ok)
		}
		// Labels are not part of the identity: renaming still matches.
		renamed := *s.Spec
		renamed.Name = "something-else"
		if name, ok := BuiltinNameForSpec(renamed); !ok || name != s.Name {
			t.Errorf("%s: renamed spec did not match: %q, %v", s.Name, name, ok)
		}
	}
	sc, _ := Lookup(DefaultName)
	perturbed := *sc.Spec
	perturbed.Graph.Tasks = append([]TaskSpec(nil), perturbed.Graph.Tasks...)
	perturbed.Graph.Tasks[0].FSE *= 1.5
	if name, ok := BuiltinNameForSpec(perturbed); ok {
		t.Errorf("perturbed spec matched %q", name)
	}
}

// TestGenerateDeterministicAndCompilable: same seed, same spec, same
// hash; different seeds differ; the result compiles and simulates.
func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(42), Generate(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Generate(42) is not deterministic")
	}
	if a.Hash() != b.Hash() {
		t.Fatal("equal generated specs hash apart")
	}
	c := Generate(43)
	if a.Hash() == c.Hash() {
		t.Fatal("different seeds produced identical specs")
	}
	inst, err := Compile(a, Options{})
	if err != nil {
		t.Fatalf("generated spec does not compile: %v", err)
	}
	if inst.Graph.NumTasks() == 0 {
		t.Fatal("generated graph is empty")
	}
	sc, err := FromSpec(a)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "gen-42" {
		t.Fatalf("generated scenario name %q", sc.Name)
	}
}

// TestCompileHeteroTiles compiles a spec with asymmetric core tiles and
// checks the die came out heterogeneous.
func TestCompileHeteroTiles(t *testing.T) {
	sc, _ := Lookup(DefaultName)
	sp := *sc.Spec
	sp.Platform = PlatformSpec{
		Cores: 3,
		Tiles: []TileSpec{{Count: 1, Scale: 1.5}, {Count: 2, Scale: 1}},
	}
	inst, err := Compile(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Platform.NumCores() != 3 {
		t.Fatalf("hetero platform has %d cores", inst.Platform.NumCores())
	}
	// The scaled tile must differ thermally from the homogeneous die —
	// identical hashes would mean the tiles were ignored.
	if h, ok := BuiltinNameForSpec(sp); ok {
		t.Fatalf("hetero spec unexpectedly matched builtin %q", h)
	}
}
