// Package experiment reproduces every table and figure of the paper's
// evaluation (Section 5). Each experiment has a typed runner returning
// the data series plus a formatter that prints rows shaped like the
// paper's; cmd/figures and the root benchmarks call these.
package experiment

import (
	"context"
	"fmt"
	"strings"

	"thermbal/internal/bus"
	"thermbal/internal/core"
	"thermbal/internal/dvfs"
	"thermbal/internal/migrate"
	"thermbal/internal/policy"
	"thermbal/internal/power"
	"thermbal/internal/scenario"
	"thermbal/internal/sim"
	"thermbal/internal/stream"
	"thermbal/internal/task"
	"thermbal/internal/thermal"
)

// PackageSel selects the thermal package (paper Section 4).
type PackageSel int

const (
	// Mobile is the mobile-embedded package (slow dynamics).
	Mobile PackageSel = iota
	// HighPerf is the high-performance package (6x faster).
	HighPerf
)

// String names the selection.
func (p PackageSel) String() string {
	if p == HighPerf {
		return "high-performance"
	}
	return "mobile-embedded"
}

// Package returns the thermal parameters.
func (p PackageSel) Package() thermal.Package {
	if p == HighPerf {
		return thermal.HighPerformance()
	}
	return thermal.MobileEmbedded()
}

// PolicySel selects one of the three compared policies (Section 5.2).
type PolicySel int

const (
	// EnergyBalance is the static energy-balancing baseline.
	EnergyBalance PolicySel = iota
	// StopGo is the modified Stop&Go baseline.
	StopGo
	// ThermalBalance is the paper's migration-based policy.
	ThermalBalance
)

// String names the policy.
func (p PolicySel) String() string {
	switch p {
	case StopGo:
		return "stop&go"
	case ThermalBalance:
		return "thermal-balance"
	default:
		return "energy-balance"
	}
}

// Defaults shared by the sweep experiments.
const (
	// DefaultWarmupS is the paper's first execution phase (12.5 s).
	DefaultWarmupS = 12.5
	// DefaultMeasureS is the measurement window after the policy
	// engages.
	DefaultMeasureS = 30.0
)

// Deltas is the paper's threshold sweep: distance of the upper/lower
// thresholds from the mean temperature, in °C.
var Deltas = []float64{2, 3, 4, 5}

// Phases resolves a run's warmup/measure phases: explicit values where
// positive, else the scenario's defaults, else the paper's. The one
// cascade shared by Run, the service's request canonicalization (the
// cache identity) and the sync-endpoint simulated-time bounds — so
// what is keyed, what is bounded and what executes can never diverge.
func Phases(sc scenario.Scenario, warmupS, measureS float64) (float64, float64) {
	if warmupS <= 0 {
		if sc.WarmupS > 0 {
			warmupS = sc.WarmupS
		} else {
			warmupS = DefaultWarmupS
		}
	}
	if measureS <= 0 {
		if sc.MeasureS > 0 {
			measureS = sc.MeasureS
		} else {
			measureS = DefaultMeasureS
		}
	}
	return warmupS, measureS
}

// RunConfig fully describes one simulation run.
type RunConfig struct {
	Policy    PolicySel
	Delta     float64 // threshold for StopGo/ThermalBalance
	Package   PackageSel
	WarmupS   float64 // default DefaultWarmupS (or the scenario's)
	MeasureS  float64 // default DefaultMeasureS (or the scenario's)
	Mechanism migrate.Mechanism
	QueueCap  int // default stream.DefaultQueueCap
	Trace     bool
	// Thermal selects the RC-network integration scheme (zero value =
	// explicit Euler).
	Thermal thermal.Config

	// Scenario names a registered scenario; empty selects "sdr-radio",
	// the paper's benchmark (preserving pre-registry behavior).
	Scenario string
	// Spec, when non-nil, is a declarative scenario compiled in place of
	// a registry lookup. Mutually exclusive with Scenario.
	Spec *scenario.Spec
	// PolicyName, when non-empty, constructs the policy by name through
	// the policy registry and takes precedence over Policy. It accepts
	// any registered name or alias ("stop-go", "tb", ...).
	PolicyName string

	// Balancer knobs (ThermalBalance only; zero = policy defaults).
	// Used by the ablation studies.
	MinInterval float64
	TopK        int
	MaxFreezeS  float64

	// NoFastPath disables the engine's event-horizon fast path (results
	// are bit-for-bit identical either way; used for A/B validation).
	NoFastPath bool
}

func (rc *RunConfig) fill() {
	if rc.WarmupS <= 0 {
		rc.WarmupS = DefaultWarmupS
	}
	if rc.MeasureS <= 0 {
		rc.MeasureS = DefaultMeasureS
	}
	if rc.QueueCap <= 0 {
		rc.QueueCap = stream.DefaultQueueCap
	}
}

func (rc RunConfig) buildPolicy() (policy.Policy, error) {
	if rc.PolicyName != "" {
		return policy.New(rc.PolicyName, policy.Args{
			Delta:       rc.Delta,
			MinInterval: rc.MinInterval,
			TopK:        rc.TopK,
			MaxFreezeS:  rc.MaxFreezeS,
		})
	}
	// The PolicySel path predates the registry and constructs directly;
	// its semantics (StopGo accepts any delta) are kept bit-for-bit.
	switch rc.Policy {
	case StopGo:
		return policy.NewStopGo(rc.Delta), nil
	case ThermalBalance:
		return core.New(core.Params{
			Delta:       rc.Delta,
			MinInterval: rc.MinInterval,
			TopK:        rc.TopK,
			MaxFreezeS:  rc.MaxFreezeS,
		}), nil
	default:
		return policy.EnergyBalance{}, nil
	}
}

// Run executes one configuration and returns its summary. The engine is
// also returned for callers needing traces or raw state.
func Run(rc RunConfig) (sim.Result, *sim.Engine, error) {
	if rc.Delta < 0 {
		return sim.Result{}, nil, fmt.Errorf("experiment: negative threshold delta %g", rc.Delta)
	}
	var sc scenario.Scenario
	var err error
	if rc.Spec != nil {
		if rc.Scenario != "" {
			return sim.Result{}, nil, fmt.Errorf("experiment: Scenario %q and Spec are mutually exclusive", rc.Scenario)
		}
		sc, err = scenario.FromSpec(*rc.Spec)
	} else {
		scName := rc.Scenario
		if scName == "" {
			scName = scenario.DefaultName
		}
		sc, err = scenario.Lookup(scName)
	}
	if err != nil {
		return sim.Result{}, nil, err
	}
	// Scenario-specific default phases (many-core scenarios use shorter
	// windows); the paper defaults apply where the scenario sets none.
	rc.WarmupS, rc.MeasureS = Phases(sc, rc.WarmupS, rc.MeasureS)
	rc.fill()
	inst, err := sc.Instantiate(scenario.Options{
		QueueCap: rc.QueueCap,
		Package:  rc.Package.Package(),
	})
	if err != nil {
		return sim.Result{}, nil, err
	}
	pol, err := rc.buildPolicy()
	if err != nil {
		return sim.Result{}, nil, err
	}
	e, err := sim.New(sim.Config{
		PolicyStartS:  rc.WarmupS,
		MeasureStartS: rc.WarmupS,
		Mechanism:     rc.Mechanism,
		RecordTrace:   rc.Trace,
		Thermal:       rc.Thermal,
		Modulate:      inst.Modulate,
		NoFastPath:    rc.NoFastPath,
	}, inst.Platform, inst.Graph, pol)
	if err != nil {
		return sim.Result{}, nil, err
	}
	if rc.Delta > 0 {
		e.SetOvershootDelta(rc.Delta)
	}
	if err := e.Run(rc.WarmupS + rc.MeasureS); err != nil {
		return sim.Result{}, nil, err
	}
	return e.Summarize(), e, nil
}

// ---------------------------------------------------------------------
// Table 1 — component power in 0.09 µm CMOS.

// Table1Row is one component entry.
type Table1Row struct {
	Component string
	MaxPowerW float64
}

// Table1 returns the component power table the models are anchored to.
func Table1() []Table1Row {
	return []Table1Row{
		{"RISC32-streaming (Conf1)", power.RISC32StreamingMaxW},
		{"RISC32-ARM11 (Conf2)", power.RISC32ARM11MaxW},
		{"DCache 8kB/2way", power.DCacheMaxW},
		{"ICache 8kB/DM", power.ICacheMaxW},
		{"Memory 32kB", power.SharedMemMaxW},
	}
}

// FormatTable1 renders the table like the paper's.
func FormatTable1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Power of components in 0.09 um CMOS (Max. Power @ 500 MHz)\n")
	for _, r := range Table1() {
		fmt.Fprintf(&b, "  %-26s %6.3f W\n", r.Component, r.MaxPowerW)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Table 2 — application mapping.

// Table2Row is one (core, task) entry with the load at the core's
// running frequency.
type Table2Row struct {
	Core    int
	FreqMHz float64
	Task    string
	LoadPct float64
}

// Table2 derives the static energy-balanced mapping: task placement
// from the benchmark definition, frequencies from the DVFS ladder.
func Table2() ([]Table2Row, error) {
	return Table2With(context.Background(), Options{})
}

// Table2With is Table2 with the per-core derivations spread across
// opt's worker pool.
func Table2With(ctx context.Context, opt Options) ([]Table2Row, error) {
	g, err := stream.BuildSDR(stream.SDRConfig{})
	if err != nil {
		return nil, err
	}
	ladder := dvfs.Default()
	// Per-core FSE sums -> frequency.
	const nCores = 3
	freqByCore := make([]float64, nCores)
	if err := opt.ForEach(ctx, nCores, func(_ context.Context, c int) error {
		freqByCore[c] = ladder.LevelFor(task.TotalFSE(task.OnCore(g.Tasks(), c)))
		return nil
	}); err != nil {
		return nil, err
	}
	freq := map[int]float64{}
	for c, f := range freqByCore {
		freq[c] = f
	}
	var rows []Table2Row
	// Paper order: core 1 (BPF1, DEMOD), core 2 (BPF2, SUM),
	// core 3 (BPF3, LPF).
	order := []string{"BPF1", "DEMOD", "BPF2", "SUM", "BPF3", "LPF"}
	for _, name := range order {
		ti, ok := g.TaskIndex(name)
		if !ok {
			return nil, fmt.Errorf("experiment: task %s missing", name)
		}
		t := g.Task(ti)
		rows = append(rows, Table2Row{
			Core:    t.Core + 1,
			FreqMHz: freq[t.Core] / 1e6,
			Task:    name,
			LoadPct: 100 * ladder.UtilizationAt(t.FSE, freq[t.Core]),
		})
	}
	return rows, nil
}

// FormatTable2 renders the mapping like the paper's Table 2.
func FormatTable2() (string, error) {
	rows, err := Table2()
	if err != nil {
		return "", err
	}
	return FormatTable2Rows(rows), nil
}

// FormatTable2Rows renders pre-computed mapping rows like the paper's
// Table 2.
func FormatTable2Rows(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: Application mapping\n")
	b.WriteString("  Core / freq.        Task    Load [%]\n")
	last := -1
	for _, r := range rows {
		label := ""
		if r.Core != last {
			label = fmt.Sprintf("Core %d (%d MHz)", r.Core, int(r.FreqMHz))
			last = r.Core
		}
		fmt.Fprintf(&b, "  %-18s  %-6s  %5.1f\n", label, r.Task, r.LoadPct)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 2 — migration cost vs task size for the two mechanisms.

// Fig2Row is one (size, mechanism) cost point.
type Fig2Row struct {
	TaskSizeKB  int
	Replication float64 // cost in processor cycles at 533 MHz
	Recreation  float64
}

// Fig2Sizes is the default task-size sweep.
var Fig2Sizes = []int{16, 32, 64, 128, 256, 384, 512}

// Fig2 measures, by direct simulation of the middleware and bus, the
// migration cost in processor cycles as a function of task size.
func Fig2(sizesKB []int) ([]Fig2Row, error) {
	return Fig2With(context.Background(), Options{}, sizesKB)
}

// measureMigrationCost simulates one migration of a sizeKB task on a
// private bus and returns its freeze duration in processor cycles.
func measureMigrationCost(mech migrate.Mechanism, sizeKB int) (float64, error) {
	const fHz = 533e6
	b := bus.New(bus.Params{})
	m := migrate.NewManager(b, mech)
	t := task.MustNew("probe", 0.3)
	t.StateBytes = float64(sizeKB << 10)
	t.CodeBytes = float64(sizeKB << 10) // image scales with task size
	t.Core = 0
	mg, err := m.Request(t, 0, 1, 0)
	if err != nil {
		return 0, err
	}
	if _, err := m.AtCheckpoint(0, 0); err != nil {
		return 0, err
	}
	// now is derived from the step count rather than accumulated, so the
	// probe clock cannot drift over the 10^7-step budget.
	const h = 1e-4
	for i := 0; i < 10_000_000 && mg.Phase != migrate.Done; i++ {
		b.Advance(h)
		m.Advance(float64(i+1) * h)
	}
	if mg.Phase != migrate.Done {
		return 0, fmt.Errorf("experiment: migration of %d KB never finished", sizeKB)
	}
	return mg.FreezeDuration() * fHz, nil
}

// Fig2With is Fig2 with every (size, mechanism) probe run across opt's
// worker pool. Each probe builds its own bus and middleware, so results
// match the serial order exactly.
func Fig2With(ctx context.Context, opt Options, sizesKB []int) ([]Fig2Row, error) {
	if len(sizesKB) == 0 {
		sizesKB = Fig2Sizes
	}
	type probe struct {
		sizeKB int
		mech   migrate.Mechanism
	}
	probes := make([]probe, 0, 2*len(sizesKB))
	for _, kb := range sizesKB {
		probes = append(probes, probe{kb, migrate.Replication}, probe{kb, migrate.Recreation})
	}
	costs, err := collect(ctx, opt.Runner, probes, func(_ context.Context, p probe) (float64, error) {
		return measureMigrationCost(p.mech, p.sizeKB)
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig2Row, 0, len(sizesKB))
	for i, kb := range sizesKB {
		rows = append(rows, Fig2Row{TaskSizeKB: kb, Replication: costs[2*i], Recreation: costs[2*i+1]})
	}
	return rows, nil
}

// FormatFig2 renders the cost curves.
func FormatFig2(rows []Fig2Row) string {
	var b strings.Builder
	b.WriteString("Figure 2: Migration cost (Mcycles @533 MHz) vs task size\n")
	b.WriteString("  size_KB   task-replication   task-recreation\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %7d   %16.2f   %15.2f\n", r.TaskSizeKB, r.Replication/1e6, r.Recreation/1e6)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figures 7-11 — the threshold sweeps.

// SweepPoint is one (policy, delta) outcome.
type SweepPoint struct {
	Policy PolicySel
	Delta  float64
	Result sim.Result
}

// Sweep runs the three policies across the threshold values for one
// package. EnergyBalance has no threshold, so it runs once and its
// result is replicated across the delta axis (the paper plots it as a
// flat reference line).
func Sweep(pkg PackageSel, deltas []float64) ([]SweepPoint, error) {
	return SweepWith(context.Background(), Options{}, pkg, deltas)
}

// SweepWith is Sweep with the runs spread across opt's worker pool.
// Point order and values are identical for any worker count.
func SweepWith(ctx context.Context, opt Options, pkg PackageSel, deltas []float64) ([]SweepPoint, error) {
	if len(deltas) == 0 {
		deltas = Deltas
	}
	policies := []PolicySel{StopGo, ThermalBalance}
	cfgs := make([]RunConfig, 0, 1+len(policies)*len(deltas))
	cfgs = append(cfgs, RunConfig{Policy: EnergyBalance, Package: pkg, Thermal: opt.Thermal, Scenario: opt.Scenario, Spec: opt.Spec})
	for _, pol := range policies {
		for _, d := range deltas {
			cfgs = append(cfgs, RunConfig{Policy: pol, Delta: d, Package: pkg, Thermal: opt.Thermal, Scenario: opt.Scenario, Spec: opt.Spec})
		}
	}
	results, err := RunAll(ctx, opt.Runner, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, 0, (1+len(policies))*len(deltas))
	for _, d := range deltas {
		out = append(out, SweepPoint{Policy: EnergyBalance, Delta: d, Result: results[0]})
	}
	i := 1
	for _, pol := range policies {
		for _, d := range deltas {
			out = append(out, SweepPoint{Policy: pol, Delta: d, Result: results[i]})
			i++
		}
	}
	return out, nil
}

// series extracts, for each policy, the metric across deltas.
func series(points []SweepPoint, deltas []float64, metric func(sim.Result) float64) map[PolicySel][]float64 {
	out := map[PolicySel][]float64{}
	for _, pol := range []PolicySel{EnergyBalance, StopGo, ThermalBalance} {
		vals := make([]float64, len(deltas))
		for i, d := range deltas {
			for _, p := range points {
				if p.Policy == pol && p.Delta == d {
					vals[i] = metric(p.Result)
				}
			}
		}
		out[pol] = vals
	}
	return out
}

// FormatStdDevFigure renders Figures 7 (mobile) / 9 (high-perf):
// temperature standard deviation vs threshold. Both the pooled
// (space+time, the headline) and the purely spatial columns are shown
// because the paper's Section 5 metric covers spatial and temporal
// variance.
func FormatStdDevFigure(fig string, pkg PackageSel, points []SweepPoint, deltas []float64) string {
	if len(deltas) == 0 {
		deltas = Deltas
	}
	pooled := series(points, deltas, func(r sim.Result) float64 { return r.PooledStdDev })
	spatial := series(points, deltas, func(r sim.Result) float64 { return r.SpatialStdDev })
	var b strings.Builder
	fmt.Fprintf(&b, "%s: Temperature standard deviation [°C] vs threshold (%s)\n", fig, pkg)
	b.WriteString("  delta   energy-balance      stop&go             thermal-balance\n")
	b.WriteString("          pooled  spatial     pooled  spatial     pooled  spatial\n")
	for i, d := range deltas {
		fmt.Fprintf(&b, "  %5.0f   %6.3f  %7.3f     %6.3f  %7.3f     %6.3f  %7.3f\n", d,
			pooled[EnergyBalance][i], spatial[EnergyBalance][i],
			pooled[StopGo][i], spatial[StopGo][i],
			pooled[ThermalBalance][i], spatial[ThermalBalance][i])
	}
	return b.String()
}

// FormatMissFigure renders Figures 8 (mobile) / 10 (high-perf):
// deadline misses vs threshold.
func FormatMissFigure(fig string, pkg PackageSel, points []SweepPoint, deltas []float64) string {
	if len(deltas) == 0 {
		deltas = Deltas
	}
	misses := series(points, deltas, func(r sim.Result) float64 { return float64(r.DeadlineMisses) })
	rate := series(points, deltas, func(r sim.Result) float64 { return r.MissRatePct })
	var b strings.Builder
	fmt.Fprintf(&b, "%s: Deadline misses vs threshold (%s, %gs window)\n", fig, pkg, DefaultMeasureS)
	b.WriteString("  delta   energy-balance     stop&go            thermal-balance\n")
	b.WriteString("          misses  rate%      misses  rate%      misses  rate%\n")
	for i, d := range deltas {
		fmt.Fprintf(&b, "  %5.0f   %6.0f  %5.2f      %6.0f  %5.2f      %6.0f  %5.2f\n", d,
			misses[EnergyBalance][i], rate[EnergyBalance][i],
			misses[StopGo][i], rate[StopGo][i],
			misses[ThermalBalance][i], rate[ThermalBalance][i])
	}
	return b.String()
}

// Fig11Point is one (package, delta) migration-rate sample.
type Fig11Point struct {
	Package PackageSel
	Delta   float64
	PerSec  float64
	KBps    float64
}

// Fig11 extracts the thermal-balance migration rates for both packages
// from pre-computed sweeps.
func Fig11(mobile, highperf []SweepPoint, deltas []float64) []Fig11Point {
	if len(deltas) == 0 {
		deltas = Deltas
	}
	var out []Fig11Point
	for _, set := range []struct {
		pkg    PackageSel
		points []SweepPoint
	}{{Mobile, mobile}, {HighPerf, highperf}} {
		rates := series(set.points, deltas, func(r sim.Result) float64 { return r.MigrationsPerSec })
		kbps := series(set.points, deltas, func(r sim.Result) float64 { return r.BytesPerSec / 1024 })
		for i, d := range deltas {
			out = append(out, Fig11Point{
				Package: set.pkg,
				Delta:   d,
				PerSec:  rates[ThermalBalance][i],
				KBps:    kbps[ThermalBalance][i],
			})
		}
	}
	return out
}

// FormatFig11 renders the migrations-per-second figure.
func FormatFig11(points []Fig11Point) string {
	var b strings.Builder
	b.WriteString("Figure 11: Migrations per second (thermal-balance) for both systems\n")
	b.WriteString("  delta   mobile (mig/s, KB/s)   high-perf (mig/s, KB/s)\n")
	byKey := map[string]Fig11Point{}
	deltaSet := map[float64]bool{}
	for _, p := range points {
		byKey[fmt.Sprintf("%v-%g", p.Package, p.Delta)] = p
		deltaSet[p.Delta] = true
	}
	for _, d := range Deltas {
		if !deltaSet[d] {
			continue
		}
		m := byKey[fmt.Sprintf("%v-%g", Mobile, d)]
		h := byKey[fmt.Sprintf("%v-%g", HighPerf, d)]
		fmt.Fprintf(&b, "  %5.0f   %6.2f  %8.1f       %6.2f  %8.1f\n", d, m.PerSec, m.KBps, h.PerSec, h.KBps)
	}
	return b.String()
}
