package experiment

import (
	"context"
	"fmt"
	"strings"

	"thermbal/internal/core"
	"thermbal/internal/floorplan"
	"thermbal/internal/mpsoc"
	"thermbal/internal/policy"
	"thermbal/internal/sim"
	"thermbal/internal/stream"
	"thermbal/internal/thermal"
)

// Scalability study: the paper's framework "can be scaled to any number
// of cores sub-systems" (Section 4). This experiment runs generated
// streaming workloads on platforms of growing size under the balancing
// policy, confirming the policy keeps working as the pairing space
// grows.

// ScaleRow is one platform-size outcome.
type ScaleRow struct {
	Cores          int
	Tasks          int
	PooledStdDev   float64
	BaselineStdDev float64 // energy-balance reference on the same workload
	DeadlineMisses int64
	Migrations     int
}

// Scale runs the study for the given core counts (default 2,4,8).
func Scale(coreCounts []int, seed int64) ([]ScaleRow, error) {
	return ScaleWith(context.Background(), Options{}, coreCounts, seed)
}

// ScaleWith is Scale with the (platform size × policy) runs spread
// across opt's worker pool. Every run regenerates its workload from the
// seed, so results are independent of scheduling.
func ScaleWith(ctx context.Context, opt Options, coreCounts []int, seed int64) ([]ScaleRow, error) {
	if len(coreCounts) == 0 {
		coreCounts = []int{2, 4, 8}
	}
	genFor := func(n int) stream.GenConfig {
		// Budget ~0.45 FSE per core so the greedy mapping is feasible
		// at mid-ladder frequencies, leaving thermal contrast.
		return stream.GenConfig{
			Seed:     seed,
			Stages:   n + 2,
			MaxWidth: 3,
			TotalFSE: 0.45 * float64(n),
		}
	}
	runOne := func(n int, pol policy.Policy) (sim.Result, error) {
		g, err := stream.Generate(genFor(n))
		if err != nil {
			return sim.Result{}, err
		}
		policy.BalanceMapping(g.Tasks(), n)
		plat, err := mpsoc.New(mpsoc.Config{
			Floorplan: floorplanFor(n),
			Package:   thermal.MobileEmbedded(),
		})
		if err != nil {
			return sim.Result{}, err
		}
		e, err := sim.New(sim.Config{
			PolicyStartS:  DefaultWarmupS,
			MeasureStartS: DefaultWarmupS,
			Thermal:       opt.Thermal,
		}, plat, g, pol)
		if err != nil {
			return sim.Result{}, err
		}
		if err := e.Run(DefaultWarmupS + 20); err != nil {
			return sim.Result{}, err
		}
		return e.Summarize(), nil
	}
	// Two runs per platform size: even indices the energy-balance
	// baseline, odd the balancing policy. Policies are constructed
	// inside each run so no state crosses workers.
	type outcome struct{ base, bal sim.Result }
	outs := make([]outcome, len(coreCounts))
	if err := opt.ForEach(ctx, 2*len(coreCounts), func(_ context.Context, i int) error {
		n := coreCounts[i/2]
		if i%2 == 0 {
			r, err := runOne(n, policy.EnergyBalance{})
			if err != nil {
				return fmt.Errorf("experiment: scale n=%d baseline: %w", n, err)
			}
			outs[i/2].base = r
			return nil
		}
		r, err := runOne(n, core.New(core.Params{Delta: 2}))
		if err != nil {
			return fmt.Errorf("experiment: scale n=%d balanced: %w", n, err)
		}
		outs[i/2].bal = r
		return nil
	}); err != nil {
		return nil, err
	}
	rows := make([]ScaleRow, 0, len(coreCounts))
	for i, n := range coreCounts {
		g, err := stream.Generate(genFor(n))
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScaleRow{
			Cores:          n,
			Tasks:          g.NumTasks(),
			PooledStdDev:   outs[i].bal.PooledStdDev,
			BaselineStdDev: outs[i].base.PooledStdDev,
			DeadlineMisses: outs[i].bal.DeadlineMisses,
			Migrations:     outs[i].bal.Migrations,
		})
	}
	return rows, nil
}

func floorplanFor(n int) *floorplan.Floorplan {
	return floorplan.StreamingMPSoC(n)
}

// FormatScale renders the study.
func FormatScale(rows []ScaleRow) string {
	var b strings.Builder
	b.WriteString("Scalability: generated workloads under thermal balancing (±2 °C, 20 s)\n")
	b.WriteString("  cores  tasks   std[°C]  baseline-std  misses  migrations\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %5d  %5d   %7.3f  %12.3f  %6d  %10d\n",
			r.Cores, r.Tasks, r.PooledStdDev, r.BaselineStdDev, r.DeadlineMisses, r.Migrations)
	}
	return b.String()
}
