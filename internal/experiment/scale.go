package experiment

import (
	"fmt"
	"strings"

	"thermbal/internal/core"
	"thermbal/internal/floorplan"
	"thermbal/internal/mpsoc"
	"thermbal/internal/policy"
	"thermbal/internal/sim"
	"thermbal/internal/stream"
	"thermbal/internal/thermal"
)

// Scalability study: the paper's framework "can be scaled to any number
// of cores sub-systems" (Section 4). This experiment runs generated
// streaming workloads on platforms of growing size under the balancing
// policy, confirming the policy keeps working as the pairing space
// grows.

// ScaleRow is one platform-size outcome.
type ScaleRow struct {
	Cores          int
	Tasks          int
	PooledStdDev   float64
	BaselineStdDev float64 // energy-balance reference on the same workload
	DeadlineMisses int64
	Migrations     int
}

// Scale runs the study for the given core counts (default 2,4,8).
func Scale(coreCounts []int, seed int64) ([]ScaleRow, error) {
	if len(coreCounts) == 0 {
		coreCounts = []int{2, 4, 8}
	}
	rows := make([]ScaleRow, 0, len(coreCounts))
	for _, n := range coreCounts {
		// Budget ~0.45 FSE per core so the greedy mapping is feasible
		// at mid-ladder frequencies, leaving thermal contrast.
		gen := stream.GenConfig{
			Seed:     seed,
			Stages:   n + 2,
			MaxWidth: 3,
			TotalFSE: 0.45 * float64(n),
		}
		runOne := func(pol policy.Policy) (sim.Result, error) {
			g, err := stream.Generate(gen)
			if err != nil {
				return sim.Result{}, err
			}
			policy.BalanceMapping(g.Tasks(), n)
			plat, err := mpsoc.New(mpsoc.Config{
				Floorplan: floorplanFor(n),
				Package:   thermal.MobileEmbedded(),
			})
			if err != nil {
				return sim.Result{}, err
			}
			e, err := sim.New(sim.Config{PolicyStartS: DefaultWarmupS, MeasureStartS: DefaultWarmupS},
				plat, g, pol)
			if err != nil {
				return sim.Result{}, err
			}
			if err := e.Run(DefaultWarmupS + 20); err != nil {
				return sim.Result{}, err
			}
			return e.Summarize(), nil
		}
		base, err := runOne(policy.EnergyBalance{})
		if err != nil {
			return nil, fmt.Errorf("experiment: scale n=%d baseline: %w", n, err)
		}
		bal, err := runOne(core.New(core.Params{Delta: 2}))
		if err != nil {
			return nil, fmt.Errorf("experiment: scale n=%d balanced: %w", n, err)
		}
		g, err := stream.Generate(gen)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScaleRow{
			Cores:          n,
			Tasks:          g.NumTasks(),
			PooledStdDev:   bal.PooledStdDev,
			BaselineStdDev: base.PooledStdDev,
			DeadlineMisses: bal.DeadlineMisses,
			Migrations:     bal.Migrations,
		})
	}
	return rows, nil
}

func floorplanFor(n int) *floorplan.Floorplan {
	return floorplan.StreamingMPSoC(n)
}

// FormatScale renders the study.
func FormatScale(rows []ScaleRow) string {
	var b strings.Builder
	b.WriteString("Scalability: generated workloads under thermal balancing (±2 °C, 20 s)\n")
	b.WriteString("  cores  tasks   std[°C]  baseline-std  misses  migrations\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %5d  %5d   %7.3f  %12.3f  %6d  %10d\n",
			r.Cores, r.Tasks, r.PooledStdDev, r.BaselineStdDev, r.DeadlineMisses, r.Migrations)
	}
	return b.String()
}
