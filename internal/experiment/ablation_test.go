package experiment

import (
	"strings"
	"testing"
)

func TestAblateQueueCapReproducesMinimum(t *testing.T) {
	rows, err := AblateQueueCap([]int{5, 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	small, full := rows[0], rows[1]
	if small.DeadlineMisses <= full.DeadlineMisses {
		t.Errorf("5-frame queue misses %d <= 11-frame %d", small.DeadlineMisses, full.DeadlineMisses)
	}
	if full.DeadlineMisses != 0 {
		t.Errorf("11-frame queue missed %d deadlines at the operating point", full.DeadlineMisses)
	}
}

func TestAblateMechanismShape(t *testing.T) {
	rows, err := AblateMechanism()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	repl, recr := rows[0], rows[1]
	if recr.MeanFreezeMs <= repl.MeanFreezeMs {
		t.Errorf("recreation freeze %.1f ms <= replication %.1f ms", recr.MeanFreezeMs, repl.MeanFreezeMs)
	}
}

func TestAblateDaemonPeriodMonotoneRate(t *testing.T) {
	rows, err := AblateDaemonPeriod([]float64{0.1, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].PerSec < rows[1].PerSec {
		t.Errorf("shorter daemon period gives lower rate: %.2f vs %.2f", rows[0].PerSec, rows[1].PerSec)
	}
}

func TestAblateCostFilterTightBudgetBlocksMigrations(t *testing.T) {
	rows, err := AblateCostFilter([]float64{0.01, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	tight, loose := rows[0], rows[1]
	if tight.Migrations != 0 {
		t.Errorf("tight budget admitted %d migrations", tight.Migrations)
	}
	if loose.Migrations == 0 {
		t.Error("loose budget blocked everything")
	}
	// Without migrations the policy degenerates to DVFS: deviation must
	// be worse than with balancing.
	if tight.PooledStdDev <= loose.PooledStdDev {
		t.Errorf("no-migration std %.3f <= balanced %.3f", tight.PooledStdDev, loose.PooledStdDev)
	}
}

func TestAblateTopKRuns(t *testing.T) {
	rows, err := AblateTopK([]int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Migrations == 0 {
			t.Errorf("%s: no migrations", r.Label)
		}
	}
}

func TestFormatAblation(t *testing.T) {
	out := FormatAblation("Title", []AblationRow{{Label: "x", PooledStdDev: 1.5}})
	if !strings.Contains(out, "Title") || !strings.Contains(out, "1.500") {
		t.Errorf("format:\n%s", out)
	}
}

func TestScaleStudy(t *testing.T) {
	rows, err := Scale([]int{2, 4}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Tasks == 0 {
			t.Errorf("n=%d: no tasks", r.Cores)
		}
		// Balancing must not be worse than the static baseline.
		if r.PooledStdDev > r.BaselineStdDev+0.2 {
			t.Errorf("n=%d: balanced std %.3f above baseline %.3f", r.Cores, r.PooledStdDev, r.BaselineStdDev)
		}
	}
	if !strings.Contains(FormatScale(rows), "Scalability") {
		t.Error("FormatScale broken")
	}
}
