package experiment

import (
	"thermbal/internal/metrics"
	"thermbal/internal/sim"
)

// The versioned JSON result schema. One run summary has one wire shape,
// shared by every consumer — the simulation service's /run and /matrix
// responses, async job results, and `thermsim -json` — so a cached
// service response, a fresh run, and the CLI all emit byte-identical
// documents for the same configuration. Field names are stable:
// breaking changes (renames, removals, semantic changes) require
// bumping SchemaVersion; purely additive fields do not.

// SchemaVersion is the current version of the JSON result schema.
const SchemaVersion = 1

// EngineVersion names the engine build + schema that produced a
// result document. The store stamps it into every record at write
// time, and provenance proofs carry it back out, so a proof attests
// not just that bytes are intact but which engine computed them. Bump
// the leading component when the engine's numerical behavior changes
// (integrator semantics, scenario compilation); the schema suffix
// tracks SchemaVersion.
const EngineVersion = "thermbal-engine/1+schema1"

// QoSSummary is the deadline/throughput block (Figures 8/10).
type QoSSummary struct {
	// DeadlineMisses within the measurement window.
	DeadlineMisses int64 `json:"deadline_misses"`
	// FramesConsumed by the sink within the window.
	FramesConsumed int64 `json:"frames_consumed"`
	// MissRatePct = misses / deadlines, percent.
	MissRatePct float64 `json:"miss_rate_pct"`
	// SourceDropped counts frames the source dropped on full queues.
	SourceDropped int64 `json:"source_dropped"`
	// MinQueueHeadroom is the smallest spare queue capacity seen.
	MinQueueHeadroom int `json:"min_queue_headroom"`
}

// MigrationSummary is the migration-overhead block (Figure 11).
type MigrationSummary struct {
	// Count of completed migrations within the window.
	Count int `json:"count"`
	// PerSec is Figure 11's migrations-per-second rate.
	PerSec float64 `json:"per_sec"`
	// Bytes moved by migrations within the window.
	Bytes float64 `json:"bytes"`
	// BytesPerSec is the paper's KB/s overhead figure, in bytes.
	BytesPerSec float64 `json:"bytes_per_sec"`
	// MeanFreezeS is the mean per-migration task freeze, seconds.
	MeanFreezeS float64 `json:"mean_freeze_s"`
}

// PowerSummary is the energy/actuation block.
type PowerSummary struct {
	// TotalEnergyJ is the platform energy over the whole run.
	TotalEnergyJ float64 `json:"total_energy_j"`
	// DVFSSwitches counts frequency changes.
	DVFSSwitches int `json:"dvfs_switches"`
	// OverThresholdS is the total time any core spent above
	// mean+delta.
	OverThresholdS float64 `json:"over_threshold_s"`
}

// Summary is the versioned JSON view of one run's sim.Result: the
// paper's Section 5 statistics grouped into wire-stable blocks.
type Summary struct {
	// Policy is the canonical name of the policy that ran.
	Policy string `json:"policy"`
	// MeasuredS is the length of the measurement window, seconds.
	MeasuredS float64 `json:"measured_s"`
	// Temperature is the spatial/temporal variance block.
	Temperature metrics.TempSummary `json:"temperature"`
	// QoS is the deadline-miss block.
	QoS QoSSummary `json:"qos"`
	// Migration is the migration-overhead block.
	Migration MigrationSummary `json:"migration"`
	// Power is the energy/actuation block.
	Power PowerSummary `json:"power"`
}

// Summarize builds the schema view of a run result.
func Summarize(r sim.Result) Summary {
	return Summary{
		Policy:    r.PolicyName,
		MeasuredS: r.MeasuredS,
		Temperature: metrics.TempSummary{
			PooledStdDevC:   r.PooledStdDev,
			SpatialStdDevC:  r.SpatialStdDev,
			TemporalStdDevC: r.MeanTemporalStdDev,
			MeanGradientC:   r.MeanGradient,
			MaxC:            r.MaxTemp,
		},
		QoS: QoSSummary{
			DeadlineMisses:   r.DeadlineMisses,
			FramesConsumed:   r.FramesConsumed,
			MissRatePct:      r.MissRatePct,
			SourceDropped:    r.SourceDropped,
			MinQueueHeadroom: r.MinQueueHeadroom,
		},
		Migration: MigrationSummary{
			Count:       r.Migrations,
			PerSec:      r.MigrationsPerSec,
			Bytes:       r.MigratedBytes,
			BytesPerSec: r.BytesPerSec,
			MeanFreezeS: r.MeanFreezeS,
		},
		Power: PowerSummary{
			TotalEnergyJ:   r.TotalEnergyJ,
			DVFSSwitches:   r.DVFSSwitches,
			OverThresholdS: r.OverThresholdS,
		},
	}
}
