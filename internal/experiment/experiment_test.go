package experiment

import (
	"math"
	"strings"
	"testing"

	"thermbal/internal/sim"
)

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	want := map[string]float64{
		"RISC32-streaming (Conf1)": 0.5,
		"RISC32-ARM11 (Conf2)":     0.27,
		"DCache 8kB/2way":          0.043,
		"ICache 8kB/DM":            0.011,
		"Memory 32kB":              0.015,
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if w, ok := want[r.Component]; !ok || math.Abs(r.MaxPowerW-w) > 1e-12 {
			t.Errorf("%s = %g, want %g", r.Component, r.MaxPowerW, want[r.Component])
		}
	}
	if !strings.Contains(FormatTable1(), "RISC32-streaming") {
		t.Error("FormatTable1 missing component")
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Table 2, within rounding of the FSE conversion.
	want := []Table2Row{
		{Core: 1, FreqMHz: 533, Task: "BPF1", LoadPct: 36.7},
		{Core: 1, FreqMHz: 533, Task: "DEMOD", LoadPct: 28.3},
		{Core: 2, FreqMHz: 266, Task: "BPF2", LoadPct: 60.9},
		{Core: 2, FreqMHz: 266, Task: "SUM", LoadPct: 6.2},
		{Core: 3, FreqMHz: 266, Task: "BPF3", LoadPct: 60.9},
		{Core: 3, FreqMHz: 266, Task: "LPF", LoadPct: 18.8},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(rows), len(want))
	}
	for i, w := range want {
		g := rows[i]
		if g.Core != w.Core || g.Task != w.Task || g.FreqMHz != w.FreqMHz {
			t.Errorf("row %d = %+v, want %+v", i, g, w)
		}
		if math.Abs(g.LoadPct-w.LoadPct) > 0.2 {
			t.Errorf("%s load = %.1f%%, want %.1f%%", w.Task, g.LoadPct, w.LoadPct)
		}
	}
	out, err := FormatTable2()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Core 1 (533 MHz)") || !strings.Contains(out, "Core 3 (266 MHz)") {
		t.Errorf("FormatTable2:\n%s", out)
	}
}

func TestFig2Shape(t *testing.T) {
	rows, err := Fig2([]int{16, 64, 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		// Recreation costs more at every size (the Figure 2 offset).
		if r.Recreation <= r.Replication {
			t.Errorf("size %d: recreation %.0f <= replication %.0f", r.TaskSizeKB, r.Recreation, r.Replication)
		}
		// Both monotone increasing in size.
		if i > 0 {
			if r.Replication <= rows[i-1].Replication || r.Recreation <= rows[i-1].Recreation {
				t.Errorf("cost not increasing at size %d", r.TaskSizeKB)
			}
		}
	}
	// Recreation has the steeper slope (bus contention from the code
	// reload, paper Section 3.2).
	slopeRepl := (rows[2].Replication - rows[0].Replication) / (256 - 16)
	slopeRecr := (rows[2].Recreation - rows[0].Recreation) / (256 - 16)
	if slopeRecr <= slopeRepl {
		t.Errorf("recreation slope %.0f <= replication slope %.0f", slopeRecr, slopeRepl)
	}
	if !strings.Contains(FormatFig2(rows), "task-replication") {
		t.Error("FormatFig2 missing header")
	}
}

// Short-window smoke version of the sweeps: shapes must hold even with
// a 10 s measurement (full windows run in the benchmarks / cmd).
func shortSweep(t *testing.T, pkg PackageSel) []SweepPoint {
	t.Helper()
	var out []SweepPoint
	deltas := []float64{2, 4}
	ebRes, _, err := Run(RunConfig{Policy: EnergyBalance, Package: pkg, MeasureS: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deltas {
		out = append(out, SweepPoint{Policy: EnergyBalance, Delta: d, Result: ebRes})
	}
	for _, pol := range []PolicySel{StopGo, ThermalBalance} {
		for _, d := range deltas {
			r, _, err := Run(RunConfig{Policy: pol, Delta: d, Package: pkg, MeasureS: 10})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, SweepPoint{Policy: pol, Delta: d, Result: r})
		}
	}
	return out
}

func TestSweepShapesMobile(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	deltas := []float64{2, 4}
	points := shortSweep(t, Mobile)
	pooled := series(points, deltas, func(r sim.Result) float64 { return r.PooledStdDev })
	misses := series(points, deltas, func(r sim.Result) float64 { return float64(r.DeadlineMisses) })
	// Figure 7 ordering: thermal balance lowest deviation.
	for i := range deltas {
		if !(pooled[ThermalBalance][i] < pooled[EnergyBalance][i]) {
			t.Errorf("delta %g: TB pooled %.3f !< EB %.3f", deltas[i], pooled[ThermalBalance][i], pooled[EnergyBalance][i])
		}
		if !(pooled[ThermalBalance][i] < pooled[StopGo][i]) {
			t.Errorf("delta %g: TB pooled %.3f !< S&G %.3f", deltas[i], pooled[ThermalBalance][i], pooled[StopGo][i])
		}
	}
	// Figure 8: S&G misses far above TB.
	for i := range deltas {
		if misses[StopGo][i] < 50*math.Max(misses[ThermalBalance][i], 1) {
			t.Errorf("delta %g: S&G misses %.0f not >> TB %.0f", deltas[i], misses[StopGo][i], misses[ThermalBalance][i])
		}
	}
	// Figure 11: rate declines with threshold.
	rates := series(points, deltas, func(r sim.Result) float64 { return r.MigrationsPerSec })
	if !(rates[ThermalBalance][0] > rates[ThermalBalance][1]) {
		t.Errorf("migration rate not declining: %v", rates[ThermalBalance])
	}
	// Formatters render.
	if !strings.Contains(FormatStdDevFigure("Figure 7", Mobile, points, deltas), "thermal-balance") {
		t.Error("FormatStdDevFigure broken")
	}
	if !strings.Contains(FormatMissFigure("Figure 8", Mobile, points, deltas), "misses") {
		t.Error("FormatMissFigure broken")
	}
}

func TestFig11HighPerfAboveMobile(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	deltas := []float64{3}
	run := func(pkg PackageSel) []SweepPoint {
		r, _, err := Run(RunConfig{Policy: ThermalBalance, Delta: 3, Package: pkg, MeasureS: 15})
		if err != nil {
			t.Fatal(err)
		}
		return []SweepPoint{{Policy: ThermalBalance, Delta: 3, Result: r}}
	}
	mob := run(Mobile)
	hp := run(HighPerf)
	pts := Fig11(mob, hp, deltas)
	var mRate, hRate float64
	for _, p := range pts {
		if p.Package == Mobile {
			mRate = p.PerSec
		} else {
			hRate = p.PerSec
		}
	}
	if hRate <= mRate {
		t.Errorf("high-perf %.2f/s <= mobile %.2f/s", hRate, mRate)
	}
	if !strings.Contains(FormatFig11(pts), "Figure 11") {
		t.Error("FormatFig11 broken")
	}
}

func TestRunConfigDefaults(t *testing.T) {
	rc := RunConfig{}
	rc.fill()
	if rc.WarmupS != DefaultWarmupS || rc.MeasureS != DefaultMeasureS || rc.QueueCap != 11 {
		t.Errorf("defaults = %+v", rc)
	}
}

func TestSelectorsString(t *testing.T) {
	if Mobile.String() != "mobile-embedded" || HighPerf.String() != "high-performance" {
		t.Error("package names")
	}
	if EnergyBalance.String() != "energy-balance" || StopGo.String() != "stop&go" || ThermalBalance.String() != "thermal-balance" {
		t.Error("policy names")
	}
}
