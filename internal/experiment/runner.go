package experiment

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"thermbal/internal/scenario"
	"thermbal/internal/sim"
	"thermbal/internal/thermal"
)

// Runner executes independent experiment runs across a bounded worker
// pool. The zero value is ready to use and sizes the pool to
// runtime.GOMAXPROCS(0). Runs are constructed deterministically per
// index and results are collected in input order, so the outcome is
// identical for any worker count.
type Runner struct {
	// Workers bounds the pool; <= 0 selects GOMAXPROCS.
	Workers int
}

func (r Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach invokes fn(ctx, i) for every i in [0, n) across the pool and
// waits for completion. The first error (lowest index when several fail
// concurrently) cancels the context handed to the remaining calls and
// is returned; tasks not yet started are skipped. With no task error,
// the parent context's error is returned if it was cancelled mid-run.
func (r Runner) ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := r.workers()
	if w > n {
		w = n
	}
	ctx, cancel := context.WithCancel(ctx)
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex
		errIdx  = -1
		firstEr error
	)
	next.Store(-1)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := fn(ctx, i); err != nil {
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, firstEr = i, err
					}
					mu.Unlock()
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	parentErr := ctx.Err()
	cancel()
	if firstEr != nil {
		return firstEr
	}
	return parentErr
}

// collect maps every input through fn in parallel, preserving order.
func collect[T, R any](ctx context.Context, r Runner, in []T, fn func(context.Context, T) (R, error)) ([]R, error) {
	out := make([]R, len(in))
	err := r.ForEach(ctx, len(in), func(ctx context.Context, i int) error {
		v, err := fn(ctx, in[i])
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunAll executes every configuration across the pool and returns the
// summaries in input order. Each run builds its own platform, graph and
// policy, so results are independent of scheduling and worker count.
func RunAll(ctx context.Context, r Runner, cfgs []RunConfig) ([]sim.Result, error) {
	return collect(ctx, r, cfgs, func(ctx context.Context, rc RunConfig) (sim.Result, error) {
		if err := ctx.Err(); err != nil {
			return sim.Result{}, err
		}
		res, _, err := Run(rc)
		return res, err
	})
}

// Options bundles the knobs shared by the multi-run experiment helpers:
// the worker pool, the thermal integrator and the scenario applied to
// every run.
type Options struct {
	Runner
	// Thermal selects the integration scheme for each run's RC network
	// (zero value = explicit Euler).
	Thermal thermal.Config
	// Scenario names the registered scenario the sweep-style helpers
	// (SweepWith and the comparison runs built on RunAll) simulate;
	// empty = "sdr-radio", the paper's benchmark. Paper-specific
	// artifacts — Table2, Fig2, the ablations and the scale study —
	// are defined on their own workloads and ignore this field.
	Scenario string
	// Spec, when non-nil, is the declarative scenario the sweep-style
	// helpers compile in place of a registry lookup. Mutually exclusive
	// with Scenario; ignored by the same paper-specific artifacts.
	Spec *scenario.Spec
}
