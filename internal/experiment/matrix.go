package experiment

import (
	"context"
	"fmt"
	"strings"

	"thermbal/internal/migrate"
	"thermbal/internal/policy"
	"thermbal/internal/scenario"
	"thermbal/internal/sim"
)

// The cross-product harness: scenarios × policies on the parallel
// Runner, so one command produces a head-to-head table across the whole
// matrix instead of one paper workload at a time.

// MatrixConfig selects the axes of a cross-product run.
type MatrixConfig struct {
	// Scenarios lists registered scenario names (empty = all).
	Scenarios []string
	// Policies lists registered policy names or aliases (empty = all).
	Policies []string
	// Delta is the threshold for threshold-driven policies; zero uses
	// each scenario's default.
	Delta float64
	// Package selects the thermal package for every cell.
	Package PackageSel
	// WarmupS / MeasureS override the scenario defaults when positive.
	WarmupS  float64
	MeasureS float64
	// QueueCap overrides the queue capacity when positive.
	QueueCap int
	// Mechanism selects the migration implementation for every cell
	// (default task-replication).
	Mechanism migrate.Mechanism
}

// MatrixCell is one (scenario, policy) outcome.
type MatrixCell struct {
	Scenario string
	Policy   string // canonical policy name
	Result   sim.Result
}

// Matrix runs the cross product serially; see MatrixWith.
func Matrix(mc MatrixConfig) ([]MatrixCell, error) {
	return MatrixWith(context.Background(), Options{}, mc)
}

// MatrixWith runs every (scenario, policy) pair across opt's worker
// pool and returns the cells scenario-major in input order. Unknown
// names fail before any simulation starts.
func MatrixWith(ctx context.Context, opt Options, mc MatrixConfig) ([]MatrixCell, error) {
	scNames := mc.Scenarios
	if len(scNames) == 0 {
		scNames = scenario.Names()
	}
	polNames := mc.Policies
	if len(polNames) == 0 {
		polNames = policy.Names()
	}
	type cellCfg struct {
		sc  scenario.Scenario
		pol string
	}
	cells := make([]cellCfg, 0, len(scNames)*len(polNames))
	for _, sn := range scNames {
		sc, err := scenario.Lookup(sn)
		if err != nil {
			return nil, err
		}
		for _, pn := range polNames {
			canon, ok := policy.Canonical(pn)
			if !ok {
				return nil, fmt.Errorf("experiment: unknown policy %q (registered: %v)", pn, policy.Names())
			}
			cells = append(cells, cellCfg{sc: sc, pol: canon})
		}
	}
	cfgs := make([]RunConfig, len(cells))
	for i, c := range cells {
		delta := mc.Delta
		if delta <= 0 {
			delta = c.sc.DefaultDelta
		}
		cfgs[i] = RunConfig{
			Scenario:   c.sc.Name,
			PolicyName: c.pol,
			Delta:      delta,
			Package:    mc.Package,
			WarmupS:    mc.WarmupS,
			MeasureS:   mc.MeasureS,
			QueueCap:   mc.QueueCap,
			Mechanism:  mc.Mechanism,
			Thermal:    opt.Thermal,
		}
	}
	results, err := RunAll(ctx, opt.Runner, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]MatrixCell, len(cells))
	for i, c := range cells {
		out[i] = MatrixCell{Scenario: c.sc.Name, Policy: c.pol, Result: results[i]}
	}
	return out, nil
}

// FormatMatrix renders the head-to-head table, grouped by scenario.
func FormatMatrix(cells []MatrixCell) string {
	var b strings.Builder
	b.WriteString("Scenario x policy matrix\n")
	b.WriteString("  scenario         policy           std[°C]  spatial  misses  rate%    migr  energy[J]\n")
	last := ""
	for _, c := range cells {
		label := ""
		if c.Scenario != last {
			label = c.Scenario
			last = c.Scenario
		}
		r := c.Result
		fmt.Fprintf(&b, "  %-16s %-16s %7.3f  %7.3f  %6d  %5.2f  %6d  %9.3f\n",
			label, c.Policy, r.PooledStdDev, r.SpatialStdDev,
			r.DeadlineMisses, r.MissRatePct, r.Migrations, r.TotalEnergyJ)
	}
	return b.String()
}
