package experiment

import (
	"context"
	"strings"
	"testing"
)

func TestMatrixSmall(t *testing.T) {
	cells, err := MatrixWith(context.Background(), Options{}, MatrixConfig{
		Scenarios: []string{"sdr-radio", "fanout-w4"},
		Policies:  []string{"energy-balance", "tb"},
		Delta:     3,
		WarmupS:   1,
		MeasureS:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	want := []struct{ sc, pol string }{
		{"sdr-radio", "energy-balance"},
		{"sdr-radio", "thermal-balance"},
		{"fanout-w4", "energy-balance"},
		{"fanout-w4", "thermal-balance"},
	}
	for i, w := range want {
		if cells[i].Scenario != w.sc || cells[i].Policy != w.pol {
			t.Errorf("cell %d = (%s, %s), want (%s, %s)",
				i, cells[i].Scenario, cells[i].Policy, w.sc, w.pol)
		}
		if cells[i].Result.FramesConsumed == 0 {
			t.Errorf("cell %d consumed no frames", i)
		}
	}
	out := FormatMatrix(cells)
	for _, s := range []string{"sdr-radio", "fanout-w4", "thermal-balance"} {
		if !strings.Contains(out, s) {
			t.Errorf("formatted matrix missing %q:\n%s", s, out)
		}
	}
}

func TestMatrixUnknownAxes(t *testing.T) {
	if _, err := Matrix(MatrixConfig{Scenarios: []string{"bogus"}}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := Matrix(MatrixConfig{
		Scenarios: []string{"sdr-radio"}, Policies: []string{"bogus"},
	}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestRunByNameMatchesSel verifies the registry path produces the same
// result as the legacy PolicySel path for the paper workload: the
// scenario+name rewiring must keep paper outputs bit-for-bit identical.
func TestRunByNameMatchesSel(t *testing.T) {
	legacy, _, err := Run(RunConfig{Policy: ThermalBalance, Delta: 3, WarmupS: 2, MeasureS: 3})
	if err != nil {
		t.Fatal(err)
	}
	byName, _, err := Run(RunConfig{
		Scenario: "sdr-radio", PolicyName: "thermal-balance", Delta: 3, WarmupS: 2, MeasureS: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if legacy != byName {
		t.Fatalf("registry path diverged from PolicySel path:\nlegacy: %+v\nbyName: %+v", legacy, byName)
	}
}

func TestRunUnknownScenario(t *testing.T) {
	if _, _, err := Run(RunConfig{Scenario: "bogus"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestRunUnknownPolicyName(t *testing.T) {
	if _, _, err := Run(RunConfig{PolicyName: "bogus", WarmupS: 1, MeasureS: 1}); err == nil {
		t.Fatal("unknown policy name accepted")
	}
}
