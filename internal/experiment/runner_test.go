package experiment

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"thermbal/internal/thermal"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		out := make([]int, 50)
		err := Runner{Workers: workers}.ForEach(context.Background(), len(out), func(_ context.Context, i int) error {
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := (Runner{}).ForEach(context.Background(), 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForEachCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var executed atomic.Int32
	err := Runner{Workers: 1}.ForEach(ctx, 100, func(_ context.Context, i int) error {
		executed.Add(1)
		if i == 3 {
			cancel() // external cancellation mid-run
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := executed.Load(); n < 4 || n >= 100 {
		t.Fatalf("executed %d tasks; cancellation did not stop the sweep", n)
	}
}

func TestForEachErrorPropagation(t *testing.T) {
	sentinel := errors.New("run 5 exploded")
	var executed atomic.Int32
	err := Runner{Workers: 1}.ForEach(context.Background(), 100, func(_ context.Context, i int) error {
		executed.Add(1)
		if i == 5 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if n := executed.Load(); n != 6 {
		t.Fatalf("executed %d tasks after error with 1 worker, want 6", n)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	early := errors.New("early")
	late := errors.New("late")
	// Serial execution: index 2 fails first and must win even though
	// index 7 would also fail.
	err := Runner{Workers: 1}.ForEach(context.Background(), 10, func(_ context.Context, i int) error {
		switch i {
		case 2:
			return early
		case 7:
			return late
		}
		return nil
	})
	if !errors.Is(err, early) {
		t.Fatalf("err = %v, want the lowest-index error", err)
	}
}

func TestRunAllPropagatesRunError(t *testing.T) {
	cfgs := []RunConfig{
		{Policy: EnergyBalance, Package: Mobile, Delta: -1}, // invalid: fails fast
	}
	_, err := RunAll(context.Background(), Runner{Workers: 2}, cfgs)
	if err == nil {
		t.Fatal("RunAll accepted a failing run")
	}
}

// The acceptance gate of the parallel refactor: identical results for
// any worker count. Short windows keep the test fast; the runs still
// exercise migration, Stop&Go gating and both packages.
func TestRunAllDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs")
	}
	cfgs := []RunConfig{
		{Policy: EnergyBalance, Package: Mobile, WarmupS: 1, MeasureS: 2},
		{Policy: StopGo, Delta: 2, Package: Mobile, WarmupS: 1, MeasureS: 2},
		{Policy: ThermalBalance, Delta: 3, Package: Mobile, WarmupS: 1, MeasureS: 2},
		{Policy: ThermalBalance, Delta: 3, Package: HighPerf, WarmupS: 1, MeasureS: 2},
	}
	serial, err := RunAll(context.Background(), Runner{Workers: 1}, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunAll(context.Background(), Runner{Workers: 8}, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("results differ across worker counts:\n serial: %+v\n parallel: %+v", serial, parallel)
	}
}

func TestTable2DeterministicAcrossWorkerCounts(t *testing.T) {
	one, err := Table2With(context.Background(), Options{Runner: Runner{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Table2With(context.Background(), Options{Runner: Runner{Workers: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, many) {
		t.Fatalf("Table2 differs across worker counts:\n%v\n%v", one, many)
	}
}

func TestFig2DeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("migration simulation")
	}
	sizes := []int{16, 64}
	one, err := Fig2With(context.Background(), Options{Runner: Runner{Workers: 1}}, sizes)
	if err != nil {
		t.Fatal(err)
	}
	many, err := Fig2With(context.Background(), Options{Runner: Runner{Workers: 4}}, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, many) {
		t.Fatalf("Fig2 differs across worker counts:\n%v\n%v", one, many)
	}
}

// The integrator option must reach the runs: RK4 results differ from
// Euler's only within integration tolerance, so the headline metric
// stays close while the scheme actually switches.
func TestOptionsThermalReachesRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs")
	}
	base := RunConfig{Policy: EnergyBalance, Package: Mobile, WarmupS: 1, MeasureS: 1}
	euler, _, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	rc := base
	rc.Thermal = thermal.Config{Scheme: thermal.RK4}
	rk4, _, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if euler.PooledStdDev == 0 && rk4.PooledStdDev == 0 {
		t.Skip("degenerate window")
	}
	if d := euler.PooledStdDev - rk4.PooledStdDev; d > 0.05 || d < -0.05 {
		t.Errorf("euler std %.4f vs rk4 std %.4f — schemes diverge beyond tolerance", euler.PooledStdDev, rk4.PooledStdDev)
	}
}
