package experiment

import (
	"fmt"
	"strings"

	"thermbal/internal/migrate"
)

// Ablation studies for the design choices of the balancing policy
// (DESIGN.md): the master-daemon period that rate-limits migrations,
// the TopK task-subset bound of the paper's Section 3.1 approximation,
// the MiGra freeze-cost filter, the migration mechanism, and the
// inter-task queue sizing. Each returns rows plus a formatter.

// AblationRow is one configuration outcome.
type AblationRow struct {
	Label          string
	PooledStdDev   float64
	DeadlineMisses int64
	Migrations     int
	PerSec         float64
	MeanFreezeMs   float64
}

func ablRow(label string, rc RunConfig) (AblationRow, error) {
	res, _, err := Run(rc)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Label:          label,
		PooledStdDev:   res.PooledStdDev,
		DeadlineMisses: res.DeadlineMisses,
		Migrations:     res.Migrations,
		PerSec:         res.MigrationsPerSec,
		MeanFreezeMs:   res.MeanFreezeS * 1e3,
	}, nil
}

// FormatAblation renders rows as a titled table.
func FormatAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	b.WriteString("  config                 std[°C]  misses  migr   mig/s  freeze[ms]\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-22s %7.3f  %6d  %4d  %6.2f  %9.1f\n",
			r.Label, r.PooledStdDev, r.DeadlineMisses, r.Migrations, r.PerSec, r.MeanFreezeMs)
	}
	return b.String()
}

// AblateDaemonPeriod varies the master-daemon evaluation period (the
// migration rate limiter) at the operating threshold. Shorter periods
// chase the temperature faster but multiply migrations.
func AblateDaemonPeriod(periods []float64) ([]AblationRow, error) {
	if len(periods) == 0 {
		periods = []float64{0.05, 0.1, 0.3, 1.0, 3.0}
	}
	rows := make([]AblationRow, 0, len(periods))
	for _, p := range periods {
		r, err := ablRow(fmt.Sprintf("period=%.2fs", p), RunConfig{
			Policy: ThermalBalance, Delta: 3, Package: Mobile, MinInterval: p,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// AblateTopK varies the number of highest-load tasks the selection
// phase considers (the paper's Section 3.1 approximation: "limit the
// number of tasks to be considered only to the few tasks having the
// highest load").
func AblateTopK(ks []int) ([]AblationRow, error) {
	if len(ks) == 0 {
		ks = []int{1, 2, 3, 6}
	}
	rows := make([]AblationRow, 0, len(ks))
	for _, k := range ks {
		r, err := ablRow(fmt.Sprintf("topK=%d", k), RunConfig{
			Policy: ThermalBalance, Delta: 3, Package: Mobile, TopK: k,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// AblateCostFilter varies the MiGra freeze-time budget. A very tight
// budget filters every migration (the policy degenerates to DVFS), a
// loose one admits everything.
func AblateCostFilter(budgets []float64) ([]AblationRow, error) {
	if len(budgets) == 0 {
		budgets = []float64{0.05, 0.15, 0.25, 1.0}
	}
	rows := make([]AblationRow, 0, len(budgets))
	for _, bud := range budgets {
		r, err := ablRow(fmt.Sprintf("maxFreeze=%.0fms", bud*1e3), RunConfig{
			Policy: ThermalBalance, Delta: 3, Package: Mobile, MaxFreezeS: bud,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// AblateMechanism compares task-replication against task-recreation at
// the operating point (paper Section 3.2: replication trades memory for
// speed).
func AblateMechanism() ([]AblationRow, error) {
	var rows []AblationRow
	for _, m := range []migrate.Mechanism{migrate.Replication, migrate.Recreation} {
		r, err := ablRow(m.String(), RunConfig{
			Policy: ThermalBalance, Delta: 3, Package: Mobile, Mechanism: m,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// AblateQueueCap reproduces the queue-sizing observation (Section 5.2:
// "the minimum queue size to sustain migration in our experiments was
// 11 frames").
func AblateQueueCap(caps []int) ([]AblationRow, error) {
	if len(caps) == 0 {
		caps = []int{3, 5, 8, 11, 16}
	}
	rows := make([]AblationRow, 0, len(caps))
	for _, c := range caps {
		r, err := ablRow(fmt.Sprintf("queue=%d frames", c), RunConfig{
			Policy: ThermalBalance, Delta: 3, Package: Mobile, QueueCap: c,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// AllAblations runs every ablation and renders them.
func AllAblations() (string, error) {
	var b strings.Builder
	type study struct {
		title string
		run   func() ([]AblationRow, error)
	}
	studies := []study{
		{"Ablation A1: master-daemon period (thermal-balance, ±3 °C, mobile)",
			func() ([]AblationRow, error) { return AblateDaemonPeriod(nil) }},
		{"Ablation A2: task-subset bound TopK",
			func() ([]AblationRow, error) { return AblateTopK(nil) }},
		{"Ablation A3: MiGra freeze-cost budget",
			func() ([]AblationRow, error) { return AblateCostFilter(nil) }},
		{"Ablation A4: migration mechanism",
			AblateMechanism},
		{"Ablation A5: queue capacity (paper: 11-frame minimum)",
			func() ([]AblationRow, error) { return AblateQueueCap(nil) }},
	}
	for i, st := range studies {
		rows, err := st.run()
		if err != nil {
			return "", err
		}
		b.WriteString(FormatAblation(st.title, rows))
		if i < len(studies)-1 {
			b.WriteByte('\n')
		}
	}
	return b.String(), nil
}
