package experiment

import (
	"context"
	"fmt"
	"strings"

	"thermbal/internal/migrate"
)

// Ablation studies for the design choices of the balancing policy
// (DESIGN.md): the master-daemon period that rate-limits migrations,
// the TopK task-subset bound of the paper's Section 3.1 approximation,
// the MiGra freeze-cost filter, the migration mechanism, and the
// inter-task queue sizing. Each returns rows plus a formatter.

// AblationRow is one configuration outcome.
type AblationRow struct {
	Label          string
	PooledStdDev   float64
	DeadlineMisses int64
	Migrations     int
	PerSec         float64
	MeanFreezeMs   float64
}

func ablRow(label string, rc RunConfig) (AblationRow, error) {
	res, _, err := Run(rc)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Label:          label,
		PooledStdDev:   res.PooledStdDev,
		DeadlineMisses: res.DeadlineMisses,
		Migrations:     res.Migrations,
		PerSec:         res.MigrationsPerSec,
		MeanFreezeMs:   res.MeanFreezeS * 1e3,
	}, nil
}

// ablSpec is one labelled configuration of an ablation study.
type ablSpec struct {
	label string
	rc    RunConfig
}

// ablRows runs every spec across opt's worker pool, preserving order.
func ablRows(ctx context.Context, opt Options, specs []ablSpec) ([]AblationRow, error) {
	return collect(ctx, opt.Runner, specs, func(_ context.Context, s ablSpec) (AblationRow, error) {
		s.rc.Thermal = opt.Thermal
		return ablRow(s.label, s.rc)
	})
}

// FormatAblation renders rows as a titled table.
func FormatAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	b.WriteString("  config                 std[°C]  misses  migr   mig/s  freeze[ms]\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-22s %7.3f  %6d  %4d  %6.2f  %9.1f\n",
			r.Label, r.PooledStdDev, r.DeadlineMisses, r.Migrations, r.PerSec, r.MeanFreezeMs)
	}
	return b.String()
}

// AblateDaemonPeriod varies the master-daemon evaluation period (the
// migration rate limiter) at the operating threshold. Shorter periods
// chase the temperature faster but multiply migrations.
func AblateDaemonPeriod(periods []float64) ([]AblationRow, error) {
	return AblateDaemonPeriodWith(context.Background(), Options{}, periods)
}

// AblateDaemonPeriodWith is AblateDaemonPeriod on opt's worker pool.
func AblateDaemonPeriodWith(ctx context.Context, opt Options, periods []float64) ([]AblationRow, error) {
	if len(periods) == 0 {
		periods = []float64{0.05, 0.1, 0.3, 1.0, 3.0}
	}
	specs := make([]ablSpec, 0, len(periods))
	for _, p := range periods {
		specs = append(specs, ablSpec{fmt.Sprintf("period=%.2fs", p), RunConfig{
			Policy: ThermalBalance, Delta: 3, Package: Mobile, MinInterval: p,
		}})
	}
	return ablRows(ctx, opt, specs)
}

// AblateTopK varies the number of highest-load tasks the selection
// phase considers (the paper's Section 3.1 approximation: "limit the
// number of tasks to be considered only to the few tasks having the
// highest load").
func AblateTopK(ks []int) ([]AblationRow, error) {
	return AblateTopKWith(context.Background(), Options{}, ks)
}

// AblateTopKWith is AblateTopK on opt's worker pool.
func AblateTopKWith(ctx context.Context, opt Options, ks []int) ([]AblationRow, error) {
	if len(ks) == 0 {
		ks = []int{1, 2, 3, 6}
	}
	specs := make([]ablSpec, 0, len(ks))
	for _, k := range ks {
		specs = append(specs, ablSpec{fmt.Sprintf("topK=%d", k), RunConfig{
			Policy: ThermalBalance, Delta: 3, Package: Mobile, TopK: k,
		}})
	}
	return ablRows(ctx, opt, specs)
}

// AblateCostFilter varies the MiGra freeze-time budget. A very tight
// budget filters every migration (the policy degenerates to DVFS), a
// loose one admits everything.
func AblateCostFilter(budgets []float64) ([]AblationRow, error) {
	return AblateCostFilterWith(context.Background(), Options{}, budgets)
}

// AblateCostFilterWith is AblateCostFilter on opt's worker pool.
func AblateCostFilterWith(ctx context.Context, opt Options, budgets []float64) ([]AblationRow, error) {
	if len(budgets) == 0 {
		budgets = []float64{0.05, 0.15, 0.25, 1.0}
	}
	specs := make([]ablSpec, 0, len(budgets))
	for _, bud := range budgets {
		specs = append(specs, ablSpec{fmt.Sprintf("maxFreeze=%.0fms", bud*1e3), RunConfig{
			Policy: ThermalBalance, Delta: 3, Package: Mobile, MaxFreezeS: bud,
		}})
	}
	return ablRows(ctx, opt, specs)
}

// AblateMechanism compares task-replication against task-recreation at
// the operating point (paper Section 3.2: replication trades memory for
// speed).
func AblateMechanism() ([]AblationRow, error) {
	return AblateMechanismWith(context.Background(), Options{})
}

// AblateMechanismWith is AblateMechanism on opt's worker pool.
func AblateMechanismWith(ctx context.Context, opt Options) ([]AblationRow, error) {
	var specs []ablSpec
	for _, m := range []migrate.Mechanism{migrate.Replication, migrate.Recreation} {
		specs = append(specs, ablSpec{m.String(), RunConfig{
			Policy: ThermalBalance, Delta: 3, Package: Mobile, Mechanism: m,
		}})
	}
	return ablRows(ctx, opt, specs)
}

// AblateQueueCap reproduces the queue-sizing observation (Section 5.2:
// "the minimum queue size to sustain migration in our experiments was
// 11 frames").
func AblateQueueCap(caps []int) ([]AblationRow, error) {
	return AblateQueueCapWith(context.Background(), Options{}, caps)
}

// AblateQueueCapWith is AblateQueueCap on opt's worker pool.
func AblateQueueCapWith(ctx context.Context, opt Options, caps []int) ([]AblationRow, error) {
	if len(caps) == 0 {
		caps = []int{3, 5, 8, 11, 16}
	}
	specs := make([]ablSpec, 0, len(caps))
	for _, c := range caps {
		specs = append(specs, ablSpec{fmt.Sprintf("queue=%d frames", c), RunConfig{
			Policy: ThermalBalance, Delta: 3, Package: Mobile, QueueCap: c,
		}})
	}
	return ablRows(ctx, opt, specs)
}

// AllAblations runs every ablation and renders them.
func AllAblations() (string, error) {
	return AllAblationsWith(context.Background(), Options{})
}

// AllAblationsWith is AllAblations with each study's configurations run
// across opt's worker pool (studies render in fixed order).
func AllAblationsWith(ctx context.Context, opt Options) (string, error) {
	var b strings.Builder
	type study struct {
		title string
		run   func() ([]AblationRow, error)
	}
	studies := []study{
		{"Ablation A1: master-daemon period (thermal-balance, ±3 °C, mobile)",
			func() ([]AblationRow, error) { return AblateDaemonPeriodWith(ctx, opt, nil) }},
		{"Ablation A2: task-subset bound TopK",
			func() ([]AblationRow, error) { return AblateTopKWith(ctx, opt, nil) }},
		{"Ablation A3: MiGra freeze-cost budget",
			func() ([]AblationRow, error) { return AblateCostFilterWith(ctx, opt, nil) }},
		{"Ablation A4: migration mechanism",
			func() ([]AblationRow, error) { return AblateMechanismWith(ctx, opt) }},
		{"Ablation A5: queue capacity (paper: 11-frame minimum)",
			func() ([]AblationRow, error) { return AblateQueueCapWith(ctx, opt, nil) }},
	}
	for i, st := range studies {
		rows, err := st.run()
		if err != nil {
			return "", err
		}
		b.WriteString(FormatAblation(st.title, rows))
		if i < len(studies)-1 {
			b.WriteByte('\n')
		}
	}
	return b.String(), nil
}
