// Package benchparse converts the standard `go test -bench` text output
// into machine-readable records, so benchmark results can be written as
// JSON and tracked across commits (cmd/bench2json, `make bench-json`).
package benchparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name including the -cpu suffix
	// ("BenchmarkStep/euler-8").
	Name string `json:"name"`
	// Iterations is the b.N the line reports.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline metric.
	NsPerOp float64 `json:"ns_per_op"`
	// Extra holds any additional unit pairs (B/op, allocs/op, custom
	// b.ReportMetric units), keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Parse reads `go test -bench` output and returns the benchmark lines
// in order. Non-benchmark lines (package headers, PASS, ok) are
// ignored. A benchmark line has the shape:
//
//	BenchmarkName-8   	     100	  11222333 ns/op	  456 B/op	 7 allocs/op
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // "Benchmark..." prose, not a result line
		}
		res := Result{Name: fields[0], Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchparse: bad value %q in %q", fields[i], line)
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				res.NsPerOp = v
				continue
			}
			if res.Extra == nil {
				res.Extra = map[string]float64{}
			}
			res.Extra[unit] = v
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
