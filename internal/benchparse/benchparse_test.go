package benchparse

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: thermbal
cpu: AMD EPYC
BenchmarkSweepSerial-8   	       3	 312456789 ns/op
BenchmarkSweepParallel-8 	       3	  98765432 ns/op	     128 B/op	       2 allocs/op
BenchmarkStep/euler-8    	     100	     11222 ns/op	     3.5 substeps
PASS
ok  	thermbal	1.234s
`

func TestParse(t *testing.T) {
	got, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(got), got)
	}
	if got[0].Name != "BenchmarkSweepSerial-8" || got[0].Iterations != 3 || got[0].NsPerOp != 312456789 {
		t.Errorf("first result wrong: %+v", got[0])
	}
	if got[1].Extra["B/op"] != 128 || got[1].Extra["allocs/op"] != 2 {
		t.Errorf("extra units not parsed: %+v", got[1])
	}
	if got[2].Name != "BenchmarkStep/euler-8" || got[2].Extra["substeps"] != 3.5 {
		t.Errorf("sub-benchmark wrong: %+v", got[2])
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	got, err := Parse(strings.NewReader("BenchmarkFoo has no numbers\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("noise parsed as results: %+v", got)
	}
}

func TestParseBadValue(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkX-8 10 abc ns/op\n")); err == nil {
		t.Fatal("bad value accepted")
	}
}
