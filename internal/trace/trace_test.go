package trace

import (
	"strings"
	"testing"
)

func TestRecorderSamplesAndCSV(t *testing.T) {
	r := New(2, 0)
	r.AddSample(Sample{Time: 0.01, Temp: []float64{50, 40}, Freq: []float64{533e6, 266e6}})
	r.AddSample(Sample{Time: 0.02, Temp: []float64{51, 41}, Freq: []float64{533e6, 266e6}, Power: []float64{0.4, 0.1}})
	if len(r.Samples()) != 2 {
		t.Fatalf("samples = %d", len(r.Samples()))
	}
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "time_s,temp1_c,temp2_c,freq1_mhz,freq2_mhz") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "50.000") || !strings.Contains(lines[1], "533") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestSampleCopySemantics(t *testing.T) {
	r := New(1, 0)
	temp := []float64{50}
	r.AddSample(Sample{Time: 0, Temp: temp, Freq: []float64{1}})
	temp[0] = 99 // mutating caller data must not affect the record
	if r.Samples()[0].Temp[0] != 50 {
		t.Error("recorder shared caller slice")
	}
}

func TestSampleCap(t *testing.T) {
	r := New(1, 3)
	for i := 0; i < 5; i++ {
		r.AddSample(Sample{Time: float64(i), Temp: []float64{1}, Freq: []float64{1}})
	}
	if len(r.Samples()) != 3 {
		t.Errorf("samples = %d, want cap 3", len(r.Samples()))
	}
	if r.Dropped() != 2 {
		t.Errorf("dropped = %d", r.Dropped())
	}
}

func TestEventsCSV(t *testing.T) {
	r := New(1, 0)
	r.AddEvent(1.5, "migrate", "task %s moved", "BPF1")
	var sb strings.Builder
	if err := r.WriteEventsCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "1.5000,migrate") || !strings.Contains(out, "BPF1") {
		t.Errorf("events CSV = %q", out)
	}
	if len(r.Events()) != 1 {
		t.Errorf("events = %d", len(r.Events()))
	}
}

func TestShortRowsPadded(t *testing.T) {
	r := New(3, 0)
	r.AddSample(Sample{Time: 0, Temp: []float64{50}, Freq: []float64{1e6}})
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	row := strings.Split(strings.TrimSpace(sb.String()), "\n")[1]
	if got := strings.Count(row, ","); got != 6 {
		t.Errorf("row has %d commas, want 6 (time + 3 temps + 3 freqs): %q", got, row)
	}
}

func TestParseCSVRoundTrip(t *testing.T) {
	r := New(2, 0)
	r.AddSample(Sample{Time: 0.01, Temp: []float64{50.5, 40.25}, Freq: []float64{533e6, 266e6}})
	r.AddSample(Sample{Time: 0.02, Temp: []float64{51, 41}, Freq: []float64{266e6, 266e6}})
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ParseCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("samples = %d", len(got))
	}
	if got[0].Temp[0] != 50.5 || got[0].Temp[1] != 40.25 {
		t.Errorf("temps = %v", got[0].Temp)
	}
	if got[0].Freq[0] != 533e6 {
		t.Errorf("freq = %g", got[0].Freq[0])
	}
	if got[1].Time != 0.02 {
		t.Errorf("time = %g", got[1].Time)
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus,header\n",
		"time_s,temp1_c,weird\n",
		"time_s,temp1_c,freq1_mhz\n1.0,55\n",
		"time_s,temp1_c,freq1_mhz\n1.0,x,533\n",
	}
	for _, in := range cases {
		if _, err := ParseCSV(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

// AddEvent must honor the MaxEvents cap and count drops, mirroring the
// sample cap (unbounded event growth leaked memory on long runs under
// thrashing policies).
func TestEventCap(t *testing.T) {
	r := New(1, 4)
	r.SetMaxEvents(3)
	for i := 0; i < 10; i++ {
		r.AddEvent(float64(i), "migrate-req", "event %d", i)
	}
	if len(r.Events()) != 3 {
		t.Errorf("events buffered = %d, want 3", len(r.Events()))
	}
	if r.DroppedEvents() != 7 {
		t.Errorf("dropped events = %d, want 7", r.DroppedEvents())
	}
	if r.Events()[2].Text != "event 2" {
		t.Errorf("kept wrong events: last = %q", r.Events()[2].Text)
	}
	// Samples are unaffected by the event cap.
	r.AddSample(Sample{Time: 1, Temp: []float64{40}, Freq: []float64{1}})
	if len(r.Samples()) != 1 || r.Dropped() != 0 {
		t.Errorf("samples %d dropped %d", len(r.Samples()), r.Dropped())
	}
}

func TestEventCapDefaults(t *testing.T) {
	r := New(1, 0)
	r.AddEvent(0, "k", "x")
	if len(r.Events()) != 1 {
		t.Fatal("default-capped recorder rejected first event")
	}
	r.SetMaxEvents(0) // restores the default
	for i := 0; i < 10; i++ {
		r.AddEvent(float64(i), "k", "y")
	}
	if r.DroppedEvents() != 0 {
		t.Errorf("dropped %d under default cap", r.DroppedEvents())
	}
}
