// Package trace records simulation timelines (temperatures, frequencies,
// events) and renders them as CSV — the reproduction's equivalent of the
// paper's UART statistics extraction (Section 4).
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync/atomic"
)

// Process-wide drop totals across every recorder, alive or discarded.
// Recorders are per-engine and usually short-lived, so their own
// Dropped counters vanish with them; these survive for /metrics.
var (
	totalDroppedSamples atomic.Int64
	totalDroppedEvents  atomic.Int64
)

// TotalDroppedSamples returns the process-wide count of samples
// discarded at recorder caps.
func TotalDroppedSamples() int64 { return totalDroppedSamples.Load() }

// TotalDroppedEvents returns the process-wide count of events
// discarded at recorder caps.
func TotalDroppedEvents() int64 { return totalDroppedEvents.Load() }

// Sample is one row of the periodic timeline.
type Sample struct {
	Time  float64
	Temp  []float64 // per-core °C
	Freq  []float64 // per-core Hz
	Power []float64 // per-core W (optional; may be nil)
}

// Event is a discrete occurrence (migration, stop, start, miss burst).
type Event struct {
	Time float64
	Kind string
	Text string
}

// Recorder buffers samples and events. The zero value records nothing;
// construct with New. MaxSamples and MaxEvents caps guard memory on
// long runs — a thrashing policy can emit events far faster than the
// sensor period, so both buffers are bounded.
type Recorder struct {
	cores         int
	samples       []Sample
	events        []Event
	maxSamples    int
	maxEvents     int
	dropped       int
	droppedEvents int
}

// DefaultMaxSamples bounds the sample buffer (at the 10 ms sensor period
// this is ~55 minutes of simulated time).
const DefaultMaxSamples = 1 << 18

// DefaultMaxEvents bounds the event buffer. Events are far rarer than
// samples in a healthy run (a few per second of simulated time during
// balancing), so a smaller default still covers hours; a policy that
// thrashes hits the cap instead of exhausting memory.
const DefaultMaxEvents = 1 << 16

// New creates a recorder for n cores. maxSamples <= 0 takes the
// default; the event cap starts at DefaultMaxEvents (SetMaxEvents
// overrides it).
func New(n, maxSamples int) *Recorder {
	if maxSamples <= 0 {
		maxSamples = DefaultMaxSamples
	}
	return &Recorder{cores: n, maxSamples: maxSamples, maxEvents: DefaultMaxEvents}
}

// SetMaxEvents overrides the event-buffer cap (non-positive restores
// the default).
func (r *Recorder) SetMaxEvents(max int) {
	if max <= 0 {
		max = DefaultMaxEvents
	}
	r.maxEvents = max
}

// AddSample appends a timeline row (copying the slices).
func (r *Recorder) AddSample(s Sample) {
	if len(r.samples) >= r.maxSamples {
		r.dropped++
		totalDroppedSamples.Add(1)
		return
	}
	cp := Sample{Time: s.Time}
	cp.Temp = append([]float64(nil), s.Temp...)
	cp.Freq = append([]float64(nil), s.Freq...)
	if s.Power != nil {
		cp.Power = append([]float64(nil), s.Power...)
	}
	r.samples = append(r.samples, cp)
}

// AddEvent appends a discrete event, mirroring AddSample's cap: events
// beyond MaxEvents are counted as dropped instead of buffered.
func (r *Recorder) AddEvent(t float64, kind, format string, args ...any) {
	if len(r.events) >= r.maxEvents {
		r.droppedEvents++
		totalDroppedEvents.Add(1)
		return
	}
	r.events = append(r.events, Event{Time: t, Kind: kind, Text: fmt.Sprintf(format, args...)})
}

// Samples returns the recorded timeline (shared slice; treat as
// read-only).
func (r *Recorder) Samples() []Sample { return r.samples }

// Events returns the recorded events (shared slice; treat as read-only).
func (r *Recorder) Events() []Event { return r.events }

// Dropped returns how many samples were discarded at the cap.
func (r *Recorder) Dropped() int { return r.dropped }

// DroppedEvents returns how many events were discarded at the cap.
func (r *Recorder) DroppedEvents() int { return r.droppedEvents }

// WriteCSV renders the timeline: time, temp per core, freq (MHz) per
// core, and power per core when recorded.
func (r *Recorder) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("time_s")
	for c := 0; c < r.cores; c++ {
		fmt.Fprintf(&b, ",temp%d_c", c+1)
	}
	for c := 0; c < r.cores; c++ {
		fmt.Fprintf(&b, ",freq%d_mhz", c+1)
	}
	hasPower := len(r.samples) > 0 && r.samples[0].Power != nil
	if hasPower {
		for c := 0; c < r.cores; c++ {
			fmt.Fprintf(&b, ",power%d_w", c+1)
		}
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for _, s := range r.samples {
		b.Reset()
		b.WriteString(strconv.FormatFloat(s.Time, 'f', 4, 64))
		for c := 0; c < r.cores; c++ {
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(at(s.Temp, c), 'f', 3, 64))
		}
		for c := 0; c < r.cores; c++ {
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(at(s.Freq, c)/1e6, 'f', 0, 64))
		}
		if hasPower {
			for c := 0; c < r.cores; c++ {
				b.WriteByte(',')
				b.WriteString(strconv.FormatFloat(at(s.Power, c), 'f', 4, 64))
			}
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteEventsCSV renders the event log as time,kind,text rows.
func (r *Recorder) WriteEventsCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "time_s,kind,text\n"); err != nil {
		return err
	}
	for _, e := range r.events {
		line := fmt.Sprintf("%.4f,%s,%q\n", e.Time, e.Kind, e.Text)
		if _, err := io.WriteString(w, line); err != nil {
			return err
		}
	}
	return nil
}

// ParseCSV reads a timeline previously written by WriteCSV, returning
// the samples. Power columns are restored when present.
func ParseCSV(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, errors.New("trace: empty CSV")
	}
	header := strings.Split(strings.TrimSpace(sc.Text()), ",")
	if len(header) < 2 || header[0] != "time_s" {
		return nil, fmt.Errorf("trace: unexpected header %q", sc.Text())
	}
	var nTemp, nFreq, nPower int
	for _, h := range header[1:] {
		switch {
		case strings.HasPrefix(h, "temp"):
			nTemp++
		case strings.HasPrefix(h, "freq"):
			nFreq++
		case strings.HasPrefix(h, "power"):
			nPower++
		default:
			return nil, fmt.Errorf("trace: unknown column %q", h)
		}
	}
	var out []Sample
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Split(strings.TrimSpace(sc.Text()), ",")
		if len(fields) != 1+nTemp+nFreq+nPower {
			return nil, fmt.Errorf("trace: line %d has %d fields, want %d", line, len(fields), 1+nTemp+nFreq+nPower)
		}
		vals := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", line, err)
			}
			vals[i] = v
		}
		s := Sample{Time: vals[0]}
		s.Temp = vals[1 : 1+nTemp]
		s.Freq = make([]float64, nFreq)
		for i := 0; i < nFreq; i++ {
			s.Freq[i] = vals[1+nTemp+i] * 1e6 // stored as MHz
		}
		if nPower > 0 {
			s.Power = vals[1+nTemp+nFreq:]
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func at(xs []float64, i int) float64 {
	if i < len(xs) {
		return xs[i]
	}
	return 0
}
