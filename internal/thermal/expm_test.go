package thermal

import (
	"math"
	"testing"

	"thermbal/internal/floorplan"
)

// expmModel builds the 3-core model on the given package with dense
// propagation forced for every span (crossover disabled).
func expmModel(t *testing.T, pkg Package) *Model {
	t.Helper()
	m, err := NewModel(floorplan.Default3Core(), pkg)
	if err != nil {
		t.Fatal(err)
	}
	m.Net.SetIntegrator(NewIntegrator(Config{Scheme: Expm, ExpmMinSubsteps: 1}))
	return m
}

// testPower returns a deterministic non-uniform power vector for n
// nodes: a few watts on the first nodes (the block nodes of the 3-core
// model), nothing elsewhere — matching the shape FlushWindow produces.
func testPower(n int) []float64 {
	p := make([]float64, n)
	for i := 0; i < n && i < 7; i++ {
		p[i] = 0.5 - 0.05*float64(i)
	}
	return p
}

// richardsonEuler integrates the network's ODE with explicit Euler at
// fixed steps h, h/2 and h/4 and returns the doubly
// Richardson-extrapolated trajectory after `total` seconds, starting
// from the network's current state. Euler's global error expands in
// powers of h; the first extrapolation 2·T_{h/2} − T_h cancels the
// O(h) term, the second level cancels O(h²), leaving a reference well
// below a 1e-6 budget at steps any plain Euler run could never afford.
func richardsonEuler(v View, start []float64, total, h float64, power []float64) []float64 {
	// Snap h so it divides the total exactly: every grid must integrate
	// the same span or the extrapolation compares different end times.
	steps := int(math.Ceil(total / h))
	h = total / float64(steps)
	run := func(steps int) []float64 {
		h := total / float64(steps)
		temps := append([]float64(nil), start...)
		d := make([]float64, len(start))
		for s := 0; s < steps; s++ {
			v.Deriv(temps, power, d)
			for i := range temps {
				temps[i] += h * d[i]
			}
		}
		return temps
	}
	full := run(steps)
	half := run(2 * steps)
	quarter := run(4 * steps)
	out := make([]float64, len(full))
	for i := range out {
		r1 := 2*half[i] - full[i]    // O(h²)
		r2 := 2*quarter[i] - half[i] // O((h/2)²)
		out[i] = (4*r2 - r1) / 3     // O(h³)
	}
	return out
}

// Exactness against Euler-at-tiny-dt: one second of 10 ms sensor
// windows from ambient (the sharpest transient) must agree with the
// Richardson-extrapolated tiny-step Euler reference within 1e-6 °C on
// both packages.
func TestExpmMatchesTinyStepEuler(t *testing.T) {
	for _, tc := range []struct {
		name string
		pkg  Package
	}{
		{"mobile", MobileEmbedded()},
		{"highperf", HighPerformance()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := expmModel(t, tc.pkg)
			n := m.Net.NumNodes()
			power := testPower(n)
			start := m.Net.Temperatures(nil)
			const window, windows = 0.01, 100
			for w := 0; w < windows; w++ {
				if err := m.Net.Step(window, power); err != nil {
					t.Fatal(err)
				}
			}
			ref := richardsonEuler(m.Net.View(), start, window*windows, m.Net.MaxStableStep()/200, power)
			var worst float64
			for i := 0; i < n; i++ {
				if d := math.Abs(m.Net.Temperature(i) - ref[i]); d > worst {
					worst = d
				}
			}
			if worst > 1e-6 {
				t.Errorf("max |expm - tiny-step Euler| = %.3g °C, want <= 1e-6", worst)
			}
		})
	}
}

// The t→∞ limit: propagating one enormous exact span must land on the
// linear solver's steady state.
func TestExpmReachesSteadyState(t *testing.T) {
	for _, tc := range []struct {
		name string
		pkg  Package
	}{
		{"mobile", MobileEmbedded()},
		{"highperf", HighPerformance()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := expmModel(t, tc.pkg)
			power := testPower(m.Net.NumNodes())
			want, err := m.Net.SteadyState(power)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Net.Step(1e5, power); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if d := math.Abs(m.Net.Temperature(i) - want[i]); d > 1e-7 {
					t.Errorf("node %d: |T(1e5 s) - steady| = %.3g °C", i, d)
				}
			}
		})
	}
}

// Memo-cache exactness: a repeated span length never rebuilds the
// propagator, and repeating the same span from the same state yields
// bit-identical trajectories across two fresh integrators.
func TestExpmMemoCacheExact(t *testing.T) {
	m1 := expmModel(t, HighPerformance())
	m2 := expmModel(t, HighPerformance())
	power := testPower(m1.Net.NumNodes())
	const spans = 200
	for s := 0; s < spans; s++ {
		if err := m1.Net.Step(0.01, power); err != nil {
			t.Fatal(err)
		}
		if err := m2.Net.Step(0.01, power); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, entries, evictions, ok := ExpmStats(m1.Net.Integrator())
	if !ok {
		t.Fatal("ExpmStats: not an expm integrator")
	}
	if misses != 1 || hits != spans-1 || entries != 1 || evictions != 0 {
		t.Errorf("cache stats = %d hits, %d misses, %d entries, %d evictions; want %d/1/1/0",
			hits, misses, entries, evictions, spans-1)
	}
	for i := 0; i < m1.Net.NumNodes(); i++ {
		if m1.Net.Temperature(i) != m2.Net.Temperature(i) {
			t.Fatalf("node %d: trajectories diverged between identical integrators: %v vs %v",
				i, m1.Net.Temperature(i), m2.Net.Temperature(i))
		}
	}
}

// The FIFO eviction bound: sweeping more distinct span lengths than
// the cache holds must evict rather than grow.
func TestExpmCacheEviction(t *testing.T) {
	m := expmModel(t, HighPerformance())
	power := testPower(m.Net.NumNodes())
	for i := 0; i < expmCacheCap+8; i++ {
		if err := m.Net.Step(0.01+0.001*float64(i), power); err != nil {
			t.Fatal(err)
		}
	}
	_, misses, entries, evictions, _ := ExpmStats(m.Net.Integrator())
	if entries > expmCacheCap {
		t.Errorf("cache grew to %d entries, cap %d", entries, expmCacheCap)
	}
	if evictions != 8 || misses != expmCacheCap+8 {
		t.Errorf("misses=%d evictions=%d, want %d/8", misses, evictions, expmCacheCap+8)
	}
}

// Below the crossover the integrator must delegate to the embedded
// Euler fallback bit-for-bit: a span that explicit Euler covers in a
// couple of substeps, on an integrator whose threshold keeps dense
// propagation out of reach.
func TestExpmFallbackIsEulerBitForBit(t *testing.T) {
	m1, err := NewModel(floorplan.Default3Core(), MobileEmbedded())
	if err != nil {
		t.Fatal(err)
	}
	m1.Net.SetIntegrator(NewIntegrator(Config{Scheme: Expm, ExpmMinSubsteps: 1 << 30}))
	m2, err := NewModel(floorplan.Default3Core(), MobileEmbedded())
	if err != nil {
		t.Fatal(err)
	}
	power := testPower(m1.Net.NumNodes())
	for s := 0; s < 100; s++ {
		if err := m1.Net.Step(0.01, power); err != nil {
			t.Fatal(err)
		}
		if err := m2.Net.Step(0.01, power); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < m1.Net.NumNodes(); i++ {
		if m1.Net.Temperature(i) != m2.Net.Temperature(i) {
			t.Fatalf("node %d: fallback diverged from Euler: %v vs %v",
				i, m1.Net.Temperature(i), m2.Net.Temperature(i))
		}
	}
}

// The hot loop must not allocate once the propagator is cached. Race
// instrumentation allocates, so the assertion is skipped under -race.
func TestExpmStepZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	m := expmModel(t, HighPerformance())
	power := testPower(m.Net.NumNodes())
	// Prime the cache.
	if err := m.Net.Step(0.01, power); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := m.Net.Step(0.01, power); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("cache-hit Step allocates %.1f objects per call, want 0", allocs)
	}
}

// The adaptive RK4 controller shares the zero-allocation requirement:
// its scratch (including the shared first stage) is reused across
// substeps and Advance calls.
func TestAdaptiveRK4StepZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	m, err := NewModel(floorplan.Default3Core(), HighPerformance())
	if err != nil {
		t.Fatal(err)
	}
	m.Net.SetIntegrator(NewIntegrator(Config{Scheme: RK4Adaptive}))
	power := testPower(m.Net.NumNodes())
	if err := m.Net.Step(0.01, power); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := m.Net.Step(0.01, power); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("adaptive RK4 Step allocates %.1f objects per call, want 0", allocs)
	}
}

// The shared build cache must hand two integrators of identical
// systems one propagator without a second build, and distinct systems
// must never share (the high-performance package scales the mobile
// one, so its propagators differ).
func TestExpmSharedBuildCache(t *testing.T) {
	mA := expmModel(t, MobileEmbedded())
	mB := expmModel(t, MobileEmbedded())
	mC := expmModel(t, HighPerformance())
	power := testPower(mA.Net.NumNodes())
	for _, m := range []*Model{mA, mB, mC} {
		if err := m.Net.Step(0.01, power); err != nil {
			t.Fatal(err)
		}
	}
	igA := mA.Net.Integrator().(*expmIntegrator)
	igB := mB.Net.Integrator().(*expmIntegrator)
	igC := mC.Net.Integrator().(*expmIntegrator)
	pA, pB, pC := igA.propagator(0.01), igB.propagator(0.01), igC.propagator(0.01)
	if pA != pB {
		t.Error("identical systems did not share one cached propagator")
	}
	if pA == pC {
		t.Error("distinct packages shared a propagator")
	}
}
