// Package thermal implements a lumped-RC thermal model of an MPSoC die
// and its package, equivalent to the block-level HotSpot model the
// paper's emulation framework uses on the host PC.
//
// Every floorplan block becomes a silicon node; each silicon node has a
// vertical conduction path through a per-block package node down to a
// common board/sink node, which convects to ambient. Lateral heat
// spreading between adjacent blocks is proportional to the length of
// their shared edge (Fourier conduction through the die cross-section).
//
// Two Package presets reproduce the paper's two evaluation targets: a
// mobile-embedded package with slow, seconds-scale dynamics, and a
// high-performance package whose temperature variations are 6x faster
// (paper Section 4).
package thermal

import (
	"errors"
	"fmt"
	"math"
)

// Node is one thermal capacitance in the RC network.
type Node struct {
	// Name identifies the node ("core1", "pkg:core1", "board", ...).
	Name string
	// Capacitance is the heat capacity in J/K.
	Capacitance float64
	// AmbientG is the direct conductance to ambient in W/K (0 for
	// internal nodes).
	AmbientG float64
}

// edge is a conductance between two nodes.
type edge struct {
	a, b int
	g    float64 // W/K
}

// Network is an RC thermal network with fixed topology and mutable state
// (node temperatures). It is not safe for concurrent use.
type Network struct {
	nodes []Node
	edges []edge
	// adj[i] lists (neighbor, conductance) pairs for node i.
	adj [][]Adj

	// temp is the current temperature of each node in °C.
	temp []float64
	// ambient temperature in °C.
	ambient float64

	// sumG[i] caches the total conductance out of node i (edges +
	// ambient), used for the stability bound.
	sumG []float64
	// maxStep caches the largest stable explicit-Euler step.
	maxStep float64

	// integ advances the state; explicit Euler unless SetIntegrator.
	integ Integrator
}

// Adj is one (neighbor, conductance) entry of a node's adjacency list.
type Adj struct {
	// Node is the neighbor's index.
	Node int
	// G is the conductance to that neighbor in W/K.
	G float64
}

// Builder incrementally assembles a Network.
type Builder struct {
	nodes []Node
	edges []edge
	index map[string]int
	err   error
}

// NewBuilder returns an empty network builder.
func NewBuilder() *Builder {
	return &Builder{index: make(map[string]int)}
}

// AddNode adds a node and returns its index. Errors are deferred to Build.
func (b *Builder) AddNode(name string, capacitance, ambientG float64) int {
	if b.err != nil {
		return -1
	}
	if name == "" {
		b.err = errors.New("thermal: empty node name")
		return -1
	}
	if _, dup := b.index[name]; dup {
		b.err = fmt.Errorf("thermal: duplicate node %q", name)
		return -1
	}
	if capacitance <= 0 {
		b.err = fmt.Errorf("thermal: node %q has non-positive capacitance %g", name, capacitance)
		return -1
	}
	if ambientG < 0 {
		b.err = fmt.Errorf("thermal: node %q has negative ambient conductance", name)
		return -1
	}
	b.index[name] = len(b.nodes)
	b.nodes = append(b.nodes, Node{Name: name, Capacitance: capacitance, AmbientG: ambientG})
	return len(b.nodes) - 1
}

// Connect adds a conductance g (W/K) between nodes a and b.
func (b *Builder) Connect(a, bn int, g float64) {
	if b.err != nil {
		return
	}
	if a < 0 || a >= len(b.nodes) || bn < 0 || bn >= len(b.nodes) {
		b.err = fmt.Errorf("thermal: connect out of range (%d,%d)", a, bn)
		return
	}
	if a == bn {
		b.err = fmt.Errorf("thermal: self-connection on node %d", a)
		return
	}
	if g <= 0 {
		b.err = fmt.Errorf("thermal: non-positive conductance %g between %d and %d", g, a, bn)
		return
	}
	b.edges = append(b.edges, edge{a: a, b: bn, g: g})
}

// Build finalizes the network with all nodes at the given ambient
// temperature.
func (b *Builder) Build(ambientC float64) (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.nodes) == 0 {
		return nil, errors.New("thermal: no nodes")
	}
	n := &Network{
		nodes:   append([]Node(nil), b.nodes...),
		edges:   append([]edge(nil), b.edges...),
		ambient: ambientC,
		temp:    make([]float64, len(b.nodes)),
		sumG:    make([]float64, len(b.nodes)),
		adj:     make([][]Adj, len(b.nodes)),
		integ:   newEuler(),
	}
	for i := range n.temp {
		n.temp[i] = ambientC
		n.sumG[i] = n.nodes[i].AmbientG
	}
	for _, e := range n.edges {
		n.adj[e.a] = append(n.adj[e.a], Adj{Node: e.b, G: e.g})
		n.adj[e.b] = append(n.adj[e.b], Adj{Node: e.a, G: e.g})
		n.sumG[e.a] += e.g
		n.sumG[e.b] += e.g
	}
	// Largest stable explicit-Euler step: dt < min_i C_i / sumG_i.
	// Use half that for a comfortable margin.
	n.maxStep = math.Inf(1)
	for i := range n.nodes {
		if n.sumG[i] <= 0 {
			continue // isolated node: any step is stable
		}
		if s := n.nodes[i].Capacitance / n.sumG[i]; s < n.maxStep {
			n.maxStep = s
		}
	}
	n.maxStep *= 0.5
	if math.IsInf(n.maxStep, 1) {
		return nil, errors.New("thermal: network has no conductances")
	}
	return n, nil
}

// NumNodes returns the node count.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NodeName returns the name of node i.
func (n *Network) NodeName(i int) string { return n.nodes[i].Name }

// Temperature returns the current temperature of node i in °C.
func (n *Network) Temperature(i int) float64 { return n.temp[i] }

// Temperatures copies all node temperatures into dst (allocating if nil).
func (n *Network) Temperatures(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(n.temp))
	}
	copy(dst, n.temp)
	return dst
}

// SetTemperature overrides the temperature of node i (initialisation and
// testing).
func (n *Network) SetTemperature(i int, tC float64) { n.temp[i] = tC }

// SetAllTemperatures sets every node to tC.
func (n *Network) SetAllTemperatures(tC float64) {
	for i := range n.temp {
		n.temp[i] = tC
	}
}

// Ambient returns the ambient temperature in °C.
func (n *Network) Ambient() float64 { return n.ambient }

// MaxStableStep returns the largest explicit-Euler step that is stable
// on this network (half the min C_i/ΣG_i bound). The default integrator
// substeps at exactly this size; wider-stability schemes may exceed it.
func (n *Network) MaxStableStep() float64 { return n.maxStep }

// View returns a read-only sparse description of the network (nodes,
// adjacency, capacitances) for integrators. The view stays valid for the
// network's lifetime; the topology it describes never changes.
func (n *Network) View() View { return View{n: n} }

// SetIntegrator replaces the time-integration scheme. A nil argument is
// ignored. Integrators carry scratch state and must not be shared
// between networks stepped concurrently.
func (n *Network) SetIntegrator(ig Integrator) {
	if ig != nil {
		n.integ = ig
	}
}

// Integrator returns the active integration scheme.
func (n *Network) Integrator() Integrator { return n.integ }

// StepsPerInterval returns how many internal substeps the active
// integrator takes to cover dt seconds (fixed-step schemes; for adaptive
// schemes this is the count at their stability-bounded maximum step,
// i.e. a lower bound).
func (n *Network) StepsPerInterval(dt float64) int {
	if dt <= 0 {
		return 0
	}
	steps := int(math.Ceil(dt / n.integ.MaxStep(n.View())))
	if steps < 1 {
		steps = 1 // unconditionally stable schemes (expm) cover dt in one step
	}
	return steps
}

// Step advances the network by dt seconds with the given per-node power
// injection (watts; len(power) must equal NumNodes, missing entries are
// an error). The integrator substeps internally to remain numerically
// stable, so dt may be arbitrarily large.
func (n *Network) Step(dt float64, power []float64) error {
	if len(power) != len(n.nodes) {
		return fmt.Errorf("thermal: power vector has %d entries, want %d", len(power), len(n.nodes))
	}
	if dt < 0 {
		return fmt.Errorf("thermal: negative step %g", dt)
	}
	n.integ.Advance(n.View(), n.temp, dt, power)
	return nil
}

// SteadyState solves for the equilibrium temperatures under the given
// constant power vector, without disturbing the current state. The
// network must be connected to ambient (directly or transitively) for a
// solution to exist.
func (n *Network) SteadyState(power []float64) ([]float64, error) {
	if len(power) != len(n.nodes) {
		return nil, fmt.Errorf("thermal: power vector has %d entries, want %d", len(power), len(n.nodes))
	}
	// Assemble G·T = P + Gamb·Tamb and solve by Gaussian elimination
	// with partial pivoting. N is small (tens of nodes).
	nn := len(n.nodes)
	a := make([][]float64, nn)
	for i := range a {
		a[i] = make([]float64, nn+1)
	}
	for i := 0; i < nn; i++ {
		diag := n.nodes[i].AmbientG
		for _, adj := range n.adj[i] {
			diag += adj.G
			a[i][adj.Node] -= adj.G
		}
		a[i][i] += diag
		a[i][nn] = power[i] + n.nodes[i].AmbientG*n.ambient
	}
	sol, err := solveLinear(a)
	if err != nil {
		return nil, fmt.Errorf("thermal: steady state: %w", err)
	}
	return sol, nil
}

// SettleToSteadyState sets the current temperatures to the equilibrium
// for the given power vector.
func (n *Network) SettleToSteadyState(power []float64) error {
	sol, err := n.SteadyState(power)
	if err != nil {
		return err
	}
	copy(n.temp, sol)
	return nil
}

// solveLinear solves the augmented system a (n rows of n+1 columns)
// in place, returning the solution vector.
func solveLinear(a [][]float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-18 {
			return nil, errors.New("singular conductance matrix (node not connected to ambient?)")
		}
		a[col], a[piv] = a[piv], a[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := a[r][n]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}

// TotalHeatContent returns sum_i C_i·(T_i - ambient), the stored thermal
// energy relative to ambient in joules. Useful for conservation checks.
func (n *Network) TotalHeatContent() float64 {
	var e float64
	for i, nd := range n.nodes {
		e += nd.Capacitance * (n.temp[i] - n.ambient)
	}
	return e
}

// AmbientOutflow returns the instantaneous heat flow to ambient in watts
// at the current temperatures.
func (n *Network) AmbientOutflow() float64 {
	var q float64
	for i, nd := range n.nodes {
		q += nd.AmbientG * (n.temp[i] - n.ambient)
	}
	return q
}
