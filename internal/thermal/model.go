package thermal

import (
	"fmt"
	"math"

	"thermbal/internal/floorplan"
)

// Package groups the physical constants of a die/package/board stack.
// The two presets reproduce the paper's two evaluation targets.
type Package struct {
	// Name labels the package in reports.
	Name string

	// DieThicknessM is the silicon thickness in metres.
	DieThicknessM float64
	// SiConductivityWmK is silicon thermal conductivity, W/(m·K).
	SiConductivityWmK float64
	// SiVolHeatCap is silicon volumetric heat capacity, J/(m³·K).
	SiVolHeatCap float64

	// DieToPkgUnitAreaR is the vertical die→package thermal resistance
	// per unit area, K·m²/W (smaller area ⇒ larger resistance).
	DieToPkgUnitAreaR float64
	// PkgUnitAreaC is the package heat capacity per unit die area,
	// J/(K·m²). This dominates the seconds-scale dynamics.
	PkgUnitAreaC float64
	// PkgLateralGPerM is lateral conductance per metre of shared block
	// edge at the package layer, W/(K·m).
	PkgLateralGPerM float64
	// PkgToBoardUnitAreaR is the package→board resistance per unit
	// area, K·m²/W.
	PkgToBoardUnitAreaR float64

	// BoardC is the board/sink lump heat capacity, J/K.
	BoardC float64
	// BoardToAmbientR is the board→ambient convection resistance, K/W.
	BoardToAmbientR float64

	// AmbientC is the ambient temperature, °C.
	AmbientC float64

	// CapScale scales every capacitance; 1 for the mobile package,
	// 1/6 for the high-performance package whose temperature
	// variations are six times faster (paper Section 4).
	CapScale float64
}

// MobileEmbedded returns the package derived from real-life streaming
// SoCs for mobile embedded targets: a ~10 °C swing takes a few seconds
// to develop (paper Section 4, [6]).
func MobileEmbedded() Package {
	return Package{
		Name:                "mobile-embedded",
		DieThicknessM:       0.35e-3,
		SiConductivityWmK:   30,
		SiVolHeatCap:        1.75e6,
		DieToPkgUnitAreaR:   3.0e-5,
		PkgUnitAreaC:        1.0e4,
		PkgLateralGPerM:     1.5,
		PkgToBoardUnitAreaR: 7.0e-5,
		BoardC:              0.05,
		BoardToAmbientR:     30,
		AmbientC:            25,
		CapScale:            1,
	}
}

// HighPerformance returns the package modelling highly variant
// (high-performance) SoCs, whose temperature variations are 6x faster
// than the mobile package (paper Sections 4 and 5). Steady-state
// resistances are identical; only the thermal masses shrink.
func HighPerformance() Package {
	p := MobileEmbedded()
	p.Name = "high-performance"
	p.CapScale = 1.0 / 6.0
	return p
}

// SpeedupVs returns how much faster this package's dynamics are compared
// to other (ratio of capacitance scales).
func (p Package) SpeedupVs(other Package) float64 {
	return other.CapScale / p.CapScale
}

// Model couples a floorplan to an RC network and maps block indices to
// silicon node indices.
type Model struct {
	// Net is the underlying RC network. Callers step it via the Model
	// helpers so power vectors stay aligned.
	Net *Network
	// FP is the source floorplan.
	FP *floorplan.Floorplan

	pkg       Package
	blockNode []int // floorplan block index -> silicon node index
	powerBuf  []float64
}

// NewModel builds the RC network for the floorplan under the given
// package and initialises all temperatures to ambient.
func NewModel(fp *floorplan.Floorplan, pkg Package) (*Model, error) {
	if pkg.CapScale <= 0 {
		return nil, fmt.Errorf("thermal: package %q has non-positive CapScale", pkg.Name)
	}
	b := NewBuilder()
	nBlocks := len(fp.Blocks)
	blockNode := make([]int, nBlocks)
	pkgNode := make([]int, nBlocks)

	// Silicon layer: one node per block.
	for i, blk := range fp.Blocks {
		c := pkg.SiVolHeatCap * blk.Area() * pkg.DieThicknessM * pkg.CapScale
		blockNode[i] = b.AddNode(blk.Name, c, 0)
	}
	// Package layer: one node per block, vertical path from silicon.
	for i, blk := range fp.Blocks {
		c := pkg.PkgUnitAreaC * blk.Area() * pkg.CapScale
		pkgNode[i] = b.AddNode("pkg:"+blk.Name, c, 0)
		gVert := blk.Area() / pkg.DieToPkgUnitAreaR
		b.Connect(blockNode[i], pkgNode[i], gVert)
	}
	// Board lump with convection to ambient.
	board := b.AddNode("board", pkg.BoardC*pkg.CapScale, 1/pkg.BoardToAmbientR)
	for i, blk := range fp.Blocks {
		gDown := blk.Area() / pkg.PkgToBoardUnitAreaR
		b.Connect(pkgNode[i], board, gDown)
	}
	// Lateral conduction: silicon (Fourier through die cross-section)
	// and package layer (per shared-edge metre).
	for _, adj := range fp.Adjacencies {
		gSi := pkg.SiConductivityWmK * pkg.DieThicknessM * adj.SharedEdge / adj.Distance
		b.Connect(blockNode[adj.A], blockNode[adj.B], gSi)
		gPkg := pkg.PkgLateralGPerM * adj.SharedEdge
		b.Connect(pkgNode[adj.A], pkgNode[adj.B], gPkg)
	}

	net, err := b.Build(pkg.AmbientC)
	if err != nil {
		return nil, err
	}
	return &Model{
		Net:       net,
		FP:        fp,
		pkg:       pkg,
		blockNode: blockNode,
		powerBuf:  make([]float64, net.NumNodes()),
	}, nil
}

// Package returns the package parameters the model was built with.
func (m *Model) Package() Package { return m.pkg }

// BlockNode returns the network node index of floorplan block i.
func (m *Model) BlockNode(i int) int { return m.blockNode[i] }

// BlockTemp returns the current temperature of floorplan block i in °C.
func (m *Model) BlockTemp(i int) float64 {
	return m.Net.Temperature(m.blockNode[i])
}

// CoreTemp returns the temperature of the core block with the given
// 0-based core ID, or NaN if no such core exists.
func (m *Model) CoreTemp(coreID int) float64 {
	for i, blk := range m.FP.Blocks {
		if blk.Kind == floorplan.KindCore && blk.CoreID == coreID {
			return m.BlockTemp(i)
		}
	}
	return math.NaN()
}

// powerVector expands per-block power into the full node-length vector
// (package and board nodes dissipate nothing themselves).
func (m *Model) powerVector(blockPower []float64) ([]float64, error) {
	if len(blockPower) != len(m.FP.Blocks) {
		return nil, fmt.Errorf("thermal: blockPower has %d entries, want %d", len(blockPower), len(m.FP.Blocks))
	}
	for i := range m.powerBuf {
		m.powerBuf[i] = 0
	}
	for i, p := range blockPower {
		m.powerBuf[m.blockNode[i]] = p
	}
	return m.powerBuf, nil
}

// Step advances the model by dt seconds under the given per-floorplan-
// block power (watts).
func (m *Model) Step(dt float64, blockPower []float64) error {
	pv, err := m.powerVector(blockPower)
	if err != nil {
		return err
	}
	return m.Net.Step(dt, pv)
}

// SteadyState returns the equilibrium temperature of every floorplan
// block under constant blockPower.
func (m *Model) SteadyState(blockPower []float64) ([]float64, error) {
	pv, err := m.powerVector(blockPower)
	if err != nil {
		return nil, err
	}
	full, err := m.Net.SteadyState(pv)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(m.FP.Blocks))
	for i := range out {
		out[i] = full[m.blockNode[i]]
	}
	return out, nil
}

// Settle jumps the model to the steady state for blockPower.
func (m *Model) Settle(blockPower []float64) error {
	pv, err := m.powerVector(blockPower)
	if err != nil {
		return err
	}
	return m.Net.SettleToSteadyState(pv)
}
