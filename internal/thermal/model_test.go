package thermal

import (
	"math"
	"testing"

	"thermbal/internal/floorplan"
)

// table2Power builds a per-block power vector approximating the paper's
// initial energy-balanced mapping (Table 2): core 1 at 533 MHz / 65 %
// load, cores 2 and 3 at 266 MHz / ~67 and ~80 % load. Values here are
// the raw watts the power model produces for that operating point.
func table2Power(fp *floorplan.Floorplan) []float64 {
	p := make([]float64, len(fp.Blocks))
	set := func(name string, w float64) {
		i, ok := fp.Index(name)
		if !ok {
			panic("missing block " + name)
		}
		p[i] = w
	}
	set("core1", 0.38)
	set("icache1", 0.007)
	set("dcache1", 0.028)
	set("core2", 0.075)
	set("icache2", 0.002)
	set("dcache2", 0.009)
	set("core3", 0.075)
	set("icache3", 0.002)
	set("dcache3", 0.009)
	set("sharedmem", 0.006)
	return p
}

func newMobileModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(floorplan.Default3Core(), MobileEmbedded())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModelRejectsBadPackage(t *testing.T) {
	pkg := MobileEmbedded()
	pkg.CapScale = 0
	if _, err := NewModel(floorplan.Default3Core(), pkg); err == nil {
		t.Error("NewModel accepted zero CapScale")
	}
}

func TestModelStartsAtAmbient(t *testing.T) {
	m := newMobileModel(t)
	for i := range m.FP.Blocks {
		if got := m.BlockTemp(i); got != 25 {
			t.Errorf("block %s starts at %g, want ambient 25", m.FP.Blocks[i].Name, got)
		}
	}
}

// The key calibration check: under the Table 2 power distribution the
// steady-state spread between the hottest core (core 1) and the coolest
// (core 3) must be roughly the 10 °C the paper reports, and core 2 must
// sit between them (warmer than core 3 because it neighbours core 1).
func TestTable2SteadyGradient(t *testing.T) {
	m := newMobileModel(t)
	if err := m.Settle(table2Power(m.FP)); err != nil {
		t.Fatal(err)
	}
	t1 := m.CoreTemp(0)
	t2 := m.CoreTemp(1)
	t3 := m.CoreTemp(2)
	t.Logf("steady temps: core1=%.2f core2=%.2f core3=%.2f", t1, t2, t3)
	if !(t1 > t2 && t2 > t3) {
		t.Fatalf("ordering wrong: %.2f, %.2f, %.2f (want core1 > core2 > core3)", t1, t2, t3)
	}
	spread := t1 - t3
	if spread < 7 || spread > 13 {
		t.Errorf("core1-core3 spread = %.2f °C, want ≈10 (7..13)", spread)
	}
	// Absolute operating point must be physically sensible for a
	// mobile SoC: above ambient, below thermal-runaway territory.
	for id := 0; id < 3; id++ {
		temp := m.CoreTemp(id)
		if temp < 35 || temp > 95 {
			t.Errorf("core%d steady = %.2f °C, outside plausible 35..95", id+1, temp)
		}
	}
}

// The mobile package must take seconds to develop the gradient (the
// paper: ~10 degrees requires a few seconds; temperatures stable well
// within the 12.5 s warm-up).
func TestMobileWarmupTimescale(t *testing.T) {
	m := newMobileModel(t)
	p := table2Power(m.FP)
	ss, err := m.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	ci, _ := m.FP.Index("core1")
	target := ss[ci]

	// After 1 s the core must still be far from steady state...
	if err := m.Step(1.0, p); err != nil {
		t.Fatal(err)
	}
	rise1 := m.BlockTemp(ci) - 25
	total := target - 25
	if rise1 > 0.8*total {
		t.Errorf("after 1 s core1 already at %.0f%% of final rise; mobile package too fast", 100*rise1/total)
	}
	// ...but by 12.5 s it must be essentially settled (paper: stable
	// after the 12.5 s first execution phase).
	if err := m.Step(11.5, p); err != nil {
		t.Fatal(err)
	}
	rise125 := m.BlockTemp(ci) - 25
	if rise125 < 0.9*total {
		t.Errorf("after 12.5 s core1 at %.0f%% of final rise, want ≥90%%", 100*rise125/total)
	}
}

// The high-performance package must be ~6x faster than mobile: compare
// the time to reach half the final rise.
func TestHighPerformanceSixTimesFaster(t *testing.T) {
	fp := floorplan.Default3Core()
	mob, err := NewModel(fp, MobileEmbedded())
	if err != nil {
		t.Fatal(err)
	}
	hp, err := NewModel(fp, HighPerformance())
	if err != nil {
		t.Fatal(err)
	}
	if got := HighPerformance().SpeedupVs(MobileEmbedded()); math.Abs(got-6) > 1e-9 {
		t.Fatalf("SpeedupVs = %g, want 6", got)
	}
	p := table2Power(fp)
	ci, _ := fp.Index("core1")
	ss, err := mob.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	half := 25 + (ss[ci]-25)/2

	halfTime := func(m *Model) float64 {
		const h = 0.005
		for tm := 0.0; tm < 60; tm += h {
			if m.BlockTemp(ci) >= half {
				return tm
			}
			if err := m.Step(h, p); err != nil {
				t.Fatal(err)
			}
		}
		t.Fatal("never reached half rise")
		return 0
	}
	tMob := halfTime(mob)
	tHP := halfTime(hp)
	ratio := tMob / tHP
	t.Logf("half-rise: mobile %.3f s, high-perf %.3f s, ratio %.2f", tMob, tHP, ratio)
	if ratio < 5 || ratio > 7 {
		t.Errorf("speed ratio = %.2f, want ≈6", ratio)
	}
}

// Same resistances, scaled capacitances: the two packages must agree on
// steady state exactly.
func TestPackagesShareSteadyState(t *testing.T) {
	fp := floorplan.Default3Core()
	mob, _ := NewModel(fp, MobileEmbedded())
	hp, _ := NewModel(fp, HighPerformance())
	p := table2Power(fp)
	s1, err := mob.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := hp.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		if math.Abs(s1[i]-s2[i]) > 1e-6 {
			t.Errorf("block %s: mobile %.4f vs high-perf %.4f", fp.Blocks[i].Name, s1[i], s2[i])
		}
	}
}

func TestCoreTempUnknownCore(t *testing.T) {
	m := newMobileModel(t)
	if got := m.CoreTemp(99); !math.IsNaN(got) {
		t.Errorf("CoreTemp(99) = %g, want NaN", got)
	}
}

func TestModelStepRejectsWrongLength(t *testing.T) {
	m := newMobileModel(t)
	if err := m.Step(0.01, []float64{1}); err == nil {
		t.Error("Step accepted short power vector")
	}
	if _, err := m.SteadyState([]float64{1}); err == nil {
		t.Error("SteadyState accepted short power vector")
	}
	if err := m.Settle([]float64{1}); err == nil {
		t.Error("Settle accepted short power vector")
	}
}

// Swapping the power of core1 and core3 must mirror the gradient: the
// floorplan is symmetric under reflection, so |t1-t3| is preserved with
// roles exchanged.
func TestGradientMirrorSymmetry(t *testing.T) {
	m := newMobileModel(t)
	p := table2Power(m.FP)
	if err := m.Settle(p); err != nil {
		t.Fatal(err)
	}
	d1 := m.CoreTemp(0) - m.CoreTemp(2)

	// Mirror the power assignment.
	q := make([]float64, len(p))
	copy(q, p)
	swap := func(a, b string) {
		ia, _ := m.FP.Index(a)
		ib, _ := m.FP.Index(b)
		q[ia], q[ib] = q[ib], q[ia]
	}
	swap("core1", "core3")
	swap("icache1", "icache3")
	swap("dcache1", "dcache3")
	if err := m.Settle(q); err != nil {
		t.Fatal(err)
	}
	d2 := m.CoreTemp(2) - m.CoreTemp(0)
	if d1 <= 0 || d2 <= 0 {
		t.Fatalf("mirrored ordering broken: d1=%.3f d2=%.3f", d1, d2)
	}
	// The cache columns sit to the right of every core, so the
	// floorplan is only approximately mirror-symmetric; allow 40%.
	if diff := math.Abs(d1 - d2); diff > 0.4*math.Max(d1, d2) {
		t.Errorf("mirrored gradients differ too much: %.3f vs %.3f", d1, d2)
	}
}

func TestUniformPowerNearlyUniformTemps(t *testing.T) {
	m := newMobileModel(t)
	p := make([]float64, len(m.FP.Blocks))
	for i, blk := range m.FP.Blocks {
		// Equal power density everywhere.
		p[i] = 20 * blk.Area() / m.FP.TotalArea() * 0.5
	}
	if err := m.Settle(p); err != nil {
		t.Fatal(err)
	}
	t1, t3 := m.CoreTemp(0), m.CoreTemp(2)
	if math.Abs(t1-t3) > 0.5 {
		t.Errorf("uniform power density gives %.2f vs %.2f core spread", t1, t3)
	}
}
