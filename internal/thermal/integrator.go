package thermal

import "fmt"

// Scheme names a time-integration scheme for the RC network.
type Scheme int

const (
	// Euler is the explicit forward-Euler scheme, stable for steps up to
	// min C_i/ΣG_i (the network caches half that as a margin). The
	// default, and the seed behavior bit-for-bit.
	Euler Scheme = iota
	// RK4 is the classical fourth-order Runge-Kutta scheme. Its
	// stability interval on the negative real axis extends to |hλ| ≤
	// 2.785 versus Euler's 2, so it covers a sensor period in ~1.39x
	// fewer substeps at far higher accuracy per step.
	RK4
	// RK4Adaptive is RK4 under a step-doubling error controller: each
	// step is compared against two half steps and the size adjusted to
	// hold the per-step error under Config.Tol, never exceeding the RK4
	// stability bound.
	RK4Adaptive
	// Expm is exact dense propagation: T' = A·T + B·P + b with
	// A = e^{H·dt} precomputed per distinct span length by
	// scaling-and-squaring and memoized, so one matvec pair replaces
	// the whole substep loop with zero truncation error. Spans below a
	// cost crossover substep via the Euler fallback (see expm.go).
	Expm
)

// String names the scheme as accepted by ParseScheme.
func (s Scheme) String() string {
	switch s {
	case RK4:
		return "rk4"
	case RK4Adaptive:
		return "rk4-adaptive"
	case Expm:
		return "expm"
	default:
		return "euler"
	}
}

// ParseScheme parses a scheme name (as printed by String, plus common
// short forms).
func ParseScheme(name string) (Scheme, error) {
	switch name {
	case "euler", "":
		return Euler, nil
	case "rk4":
		return RK4, nil
	case "rk4-adaptive", "rk4a", "adaptive":
		return RK4Adaptive, nil
	case "expm", "exp", "exact":
		return Expm, nil
	}
	return Euler, fmt.Errorf("thermal: unknown integrator %q (want euler, rk4, rk4-adaptive or expm)", name)
}

// Config selects and tunes the integration scheme. The zero value is the
// default explicit Euler.
type Config struct {
	// Scheme selects the integrator.
	Scheme Scheme
	// Tol is the per-substep absolute error tolerance in °C for adaptive
	// schemes (default 1e-6). Ignored by fixed-step schemes.
	Tol float64
	// ExpmMinSubsteps tunes the Expm scheme's crossover: spans that
	// explicit Euler would cover in fewer substeps than this fall back
	// to Euler substepping (dense propagation costs 2n² multiply-adds
	// regardless of span length, so very short spans and very large
	// networks are cheaper to substep). 0 selects an automatic
	// cost-model threshold from the network size; 1 forces dense
	// propagation for every span. Ignored by other schemes.
	ExpmMinSubsteps int
}

// Integrator advances the temperature state of an RC network. An
// integrator may keep scratch buffers and controller state between
// calls, so one instance must not be shared across networks that step
// concurrently.
type Integrator interface {
	// Name identifies the scheme in reports.
	Name() string
	// MaxStep returns the largest single substep the scheme takes on the
	// network described by v (its stability bound).
	MaxStep(v View) float64
	// Advance integrates temps (in place, °C) forward by dt seconds
	// under the constant per-node power injection, substepping as
	// needed. dt is non-negative and len(temps) == len(power) ==
	// v.NumNodes(); the Network validates before delegating.
	Advance(v View, temps []float64, dt float64, power []float64)
}

// NewIntegrator builds the integrator described by cfg.
func NewIntegrator(cfg Config) Integrator {
	switch cfg.Scheme {
	case RK4:
		return newRK4()
	case RK4Adaptive:
		return newAdaptiveRK4(cfg.Tol)
	case Expm:
		return newExpm(cfg.ExpmMinSubsteps)
	default:
		return newEuler()
	}
}

// View is a read-only sparse description of a Network: node count,
// capacitances, adjacency and the cached stability data. It is the only
// surface integrators see, so new schemes need no Network changes.
type View struct {
	n *Network
}

// NumNodes returns the node count.
func (v View) NumNodes() int { return len(v.n.nodes) }

// Capacitance returns the heat capacity of node i in J/K.
func (v View) Capacitance(i int) float64 { return v.n.nodes[i].Capacitance }

// AmbientG returns node i's direct conductance to ambient in W/K.
func (v View) AmbientG(i int) float64 { return v.n.nodes[i].AmbientG }

// Ambient returns the ambient temperature in °C.
func (v View) Ambient() float64 { return v.n.ambient }

// SumG returns the total conductance out of node i (edges + ambient).
func (v View) SumG(i int) float64 { return v.n.sumG[i] }

// Neighbors returns node i's adjacency list. The slice is shared with
// the network and must not be modified.
func (v View) Neighbors(i int) []Adj { return v.n.adj[i] }

// EulerMaxStep returns the cached stable explicit-Euler step (half of
// min C_i/ΣG_i). Stability bounds of other schemes scale from it.
func (v View) EulerMaxStep() float64 { return v.n.maxStep }

// Deriv evaluates dT/dt at the given temperatures and power injection,
// writing the result into dst. All schemes share this evaluation so
// their right-hand side is identical (and Euler's matches the seed
// implementation operation for operation).
func (v View) Deriv(temps, power, dst []float64) {
	n := v.n
	for i := range n.nodes {
		q := power[i]
		ti := temps[i]
		for _, a := range n.adj[i] {
			q += a.G * (temps[a.Node] - ti)
		}
		q += n.nodes[i].AmbientG * (n.ambient - ti)
		dst[i] = q / n.nodes[i].Capacitance
	}
}
