package thermal

import "math"

// rk4StepScale is how much further RK4's stability region reaches along
// the negative real axis than Euler's: |hλ| ≤ 2.785 versus 2. Scaling
// the network's cached Euler bound by it keeps the same safety margin
// while covering each sensor period in fewer substeps.
const rk4StepScale = 2.785 / 2.0

// rk4Integrator is the classical fourth-order Runge-Kutta scheme with a
// fixed, stability-bounded step.
type rk4Integrator struct {
	k1, k2, k3, k4, tmp []float64
}

func newRK4() *rk4Integrator { return &rk4Integrator{} }

func (r *rk4Integrator) Name() string { return RK4.String() }

func (r *rk4Integrator) MaxStep(v View) float64 { return rk4StepScale * v.EulerMaxStep() }

func (r *rk4Integrator) ensure(n int) {
	r.k1 = growScratch(r.k1, n)
	r.k2 = growScratch(r.k2, n)
	r.k3 = growScratch(r.k3, n)
	r.k4 = growScratch(r.k4, n)
	r.tmp = growScratch(r.tmp, n)
}

// step performs one RK4 step of size h on temps in place.
func (r *rk4Integrator) step(v View, temps []float64, h float64, power []float64) {
	v.Deriv(temps, power, r.k1)
	r.stepWithK1(v, temps, h, power, r.k1)
}

// stepWithK1 is step with the first stage supplied by the caller. The
// step-doubling controller evaluates the full step and the first half
// step from the same state, so their k1 stages are bitwise identical
// and one evaluation serves both. k1 is read only.
func (r *rk4Integrator) stepWithK1(v View, temps []float64, h float64, power, k1 []float64) {
	for i := range temps {
		r.tmp[i] = temps[i] + 0.5*h*k1[i]
	}
	v.Deriv(r.tmp, power, r.k2)
	for i := range temps {
		r.tmp[i] = temps[i] + 0.5*h*r.k2[i]
	}
	v.Deriv(r.tmp, power, r.k3)
	for i := range temps {
		r.tmp[i] = temps[i] + h*r.k3[i]
	}
	v.Deriv(r.tmp, power, r.k4)
	for i := range temps {
		temps[i] += h / 6 * (k1[i] + 2*r.k2[i] + 2*r.k3[i] + r.k4[i])
	}
}

func (r *rk4Integrator) Advance(v View, temps []float64, dt float64, power []float64) {
	r.ensure(v.NumNodes())
	max := r.MaxStep(v)
	for dt > 0 {
		h := dt
		if h > max {
			h = max
		}
		r.step(v, temps, h, power)
		dt -= h
	}
}

// DefaultAdaptiveTol is the per-substep error tolerance (°C) when
// Config.Tol is unset.
const DefaultAdaptiveTol = 1e-6

// adaptiveRK4 wraps RK4 in a step-doubling controller: each candidate
// step of size h is checked against two steps of h/2; the Richardson
// estimate |T_h - T_{h/2}|/15 of the local error decides acceptance and
// the next step size. The step never exceeds the RK4 stability bound, so
// the controller spends its freedom shrinking steps during transients
// and riding the bound at steady state.
type adaptiveRK4 struct {
	inner      rk4Integrator
	tol        float64
	h          float64 // carried between Advance calls
	full, half []float64
	// k1 holds the shared first stage of each full/half step pair (the
	// controller's own buffer, so the inner integrator's scratch stays
	// free for the remaining stages).
	k1 []float64
}

func newAdaptiveRK4(tol float64) *adaptiveRK4 {
	if tol <= 0 {
		tol = DefaultAdaptiveTol
	}
	return &adaptiveRK4{tol: tol}
}

func (a *adaptiveRK4) Name() string { return RK4Adaptive.String() }

func (a *adaptiveRK4) MaxStep(v View) float64 { return a.inner.MaxStep(v) }

func (a *adaptiveRK4) Advance(v View, temps []float64, dt float64, power []float64) {
	n := v.NumNodes()
	a.inner.ensure(n)
	a.full = growScratch(a.full, n)
	a.half = growScratch(a.half, n)
	a.k1 = growScratch(a.k1, n)
	cap := a.inner.MaxStep(v)
	minStep := cap / 1024
	if a.h <= 0 || a.h > cap {
		a.h = cap
	}
	for dt > 0 {
		h := a.h
		// The final sliver of the interval is an artifact of the
		// caller's dt, not of the dynamics: when accepted it must not
		// feed the controller, or the carried step would collapse to
		// the remainder (and then restart near minStep every call).
		sliver := h > dt
		if sliver {
			h = dt
		}
		// The full step and the first half step start from the same
		// state, so they share one first-stage evaluation (bitwise
		// identical to evaluating it twice).
		v.Deriv(temps, power, a.k1)
		copy(a.full, temps)
		a.inner.stepWithK1(v, a.full, h, power, a.k1)
		copy(a.half, temps)
		a.inner.stepWithK1(v, a.half, h/2, power, a.k1)
		a.inner.step(v, a.half, h/2, power)
		var err float64
		for i := range a.full {
			if d := math.Abs(a.full[i] - a.half[i]); d > err {
				err = d
			}
		}
		err /= 15 // Richardson estimate for a 4th-order pair
		if err <= a.tol || h <= minStep {
			// Accept the finer solution.
			copy(temps, a.half)
			dt -= h
			if sliver {
				continue
			}
		}
		// Standard 5th-order controller update, clamped to keep the
		// step inside [minStep, stability bound]. When the error is so
		// far below tolerance that the growth clamp applies regardless
		// (0.9·(tol/err)^0.2 ≥ 4 ⇔ tol/err ≥ (4/0.9)^5 ≈ 1733), skip
		// the Pow — at steady state every substep lands here, and the
		// transcendental call dominates the controller's own cost.
		fac := 4.0
		if err > 0 && err*2048 > a.tol {
			fac = 0.9 * math.Pow(a.tol/err, 0.2)
			fac = math.Min(4, math.Max(0.2, fac))
		}
		a.h = math.Min(cap, math.Max(minStep, h*fac))
	}
}
