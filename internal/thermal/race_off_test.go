//go:build !race

package thermal

const raceEnabled = false
