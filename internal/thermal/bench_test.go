package thermal

import (
	"testing"

	"thermbal/internal/floorplan"
)

// benchModel builds the 3-core model on the high-performance package —
// the worst case for the stability bound (1/6 the thermal mass) and the
// configuration the integrator refactor targets.
func benchModel(b *testing.B, scheme Scheme) *Model {
	b.Helper()
	m, err := NewModel(floorplan.Default3Core(), HighPerformance())
	if err != nil {
		b.Fatal(err)
	}
	m.Net.SetIntegrator(NewIntegrator(Config{Scheme: scheme}))
	return m
}

// benchSteadyStepping drives one simulated second of 10 ms sensor
// periods under constant power near steady state, the hot path of every
// experiment run.
func benchSteadyStepping(b *testing.B, scheme Scheme) {
	m := benchModel(b, scheme)
	power := make([]float64, len(m.FP.Blocks))
	power[0], power[1], power[2] = 0.5, 0.4, 0.3
	if err := m.Settle(power); err != nil {
		b.Fatal(err)
	}
	// Prime per-scheme one-time state (scratch buffers, the expm
	// propagator build) so the measured loop is the steady-state path
	// even at -benchtime 1x, where the single iteration would otherwise
	// absorb the setup cost and allocations.
	if err := m.Step(10e-3, power); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < 100; s++ { // 1 simulated second
			if err := m.Step(10e-3, power); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(m.Net.StepsPerInterval(10e-3)), "substeps/period")
}

// BenchmarkStepEulerHighPerf measures explicit Euler on the
// high-performance package (the seed scheme).
func BenchmarkStepEulerHighPerf(b *testing.B) { benchSteadyStepping(b, Euler) }

// BenchmarkStepRK4HighPerf measures RK4, which covers each sensor
// period in ~1.39x fewer substeps.
func BenchmarkStepRK4HighPerf(b *testing.B) { benchSteadyStepping(b, RK4) }

// BenchmarkStepRK4AdaptiveHighPerf measures the step-doubling adaptive
// controller, which rides the stability bound at steady state.
func BenchmarkStepRK4AdaptiveHighPerf(b *testing.B) { benchSteadyStepping(b, RK4Adaptive) }

// BenchmarkStepExpmHighPerf measures exact dense propagation: after the
// first step builds the memoized propagator, every period is one matvec
// pair with zero allocations.
func BenchmarkStepExpmHighPerf(b *testing.B) { benchSteadyStepping(b, Expm) }
