package thermal

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// twoNode builds a minimal network: one heated node coupled to one node
// that convects to ambient.
func twoNode(t *testing.T) *Network {
	t.Helper()
	b := NewBuilder()
	a := b.AddNode("die", 0.01, 0)
	s := b.AddNode("sink", 0.1, 0.05) // R=20 K/W to ambient
	b.Connect(a, s, 0.1)              // R=10 K/W
	n, err := b.Build(25)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder)
		want  string
	}{
		{"empty name", func(b *Builder) { b.AddNode("", 1, 0) }, "empty node name"},
		{"duplicate", func(b *Builder) { b.AddNode("x", 1, 0); b.AddNode("x", 1, 0) }, "duplicate"},
		{"bad capacitance", func(b *Builder) { b.AddNode("x", 0, 0) }, "capacitance"},
		{"negative ambientG", func(b *Builder) { b.AddNode("x", 1, -1) }, "ambient"},
		{"connect range", func(b *Builder) { b.AddNode("x", 1, 0.1); b.Connect(0, 5, 1) }, "out of range"},
		{"self connect", func(b *Builder) { b.AddNode("x", 1, 0.1); b.Connect(0, 0, 1) }, "self-connection"},
		{"bad conductance", func(b *Builder) {
			b.AddNode("x", 1, 0.1)
			b.AddNode("y", 1, 0)
			b.Connect(0, 1, 0)
		}, "non-positive conductance"},
		{"no nodes", func(b *Builder) {}, "no nodes"},
		{"no conductances", func(b *Builder) { b.AddNode("x", 1, 0) }, "no conductances"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder()
			tc.build(b)
			_, err := b.Build(25)
			if err == nil {
				t.Fatalf("Build succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestBuilderErrorSticks(t *testing.T) {
	b := NewBuilder()
	if idx := b.AddNode("", 1, 0); idx != -1 {
		t.Errorf("AddNode after error returned %d, want -1", idx)
	}
	if idx := b.AddNode("ok", 1, 0.1); idx != -1 {
		t.Errorf("AddNode after sticky error returned %d, want -1", idx)
	}
	if _, err := b.Build(25); err == nil {
		t.Error("Build ignored sticky error")
	}
}

func TestInitialTemperatureIsAmbient(t *testing.T) {
	n := twoNode(t)
	for i := 0; i < n.NumNodes(); i++ {
		if n.Temperature(i) != 25 {
			t.Errorf("node %d initial temp = %g, want ambient 25", i, n.Temperature(i))
		}
	}
	if n.Ambient() != 25 {
		t.Errorf("Ambient = %g", n.Ambient())
	}
}

func TestZeroPowerStaysAtAmbient(t *testing.T) {
	n := twoNode(t)
	if err := n.Step(100, []float64{0, 0}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n.NumNodes(); i++ {
		if math.Abs(n.Temperature(i)-25) > 1e-9 {
			t.Errorf("node %d drifted to %g with zero power", i, n.Temperature(i))
		}
	}
}

func TestSteadyStateMatchesHandComputation(t *testing.T) {
	// die --R=10-- sink --R=20-- ambient, 1 W into die:
	// sink = 25 + 1*20 = 45, die = 45 + 1*10 = 55.
	n := twoNode(t)
	ss, err := n.SteadyState([]float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ss[0]-55) > 1e-9 {
		t.Errorf("die steady = %g, want 55", ss[0])
	}
	if math.Abs(ss[1]-45) > 1e-9 {
		t.Errorf("sink steady = %g, want 45", ss[1])
	}
}

func TestStepConvergesToSteadyState(t *testing.T) {
	n := twoNode(t)
	p := []float64{1, 0}
	want, err := n.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	// Integrate long enough: dominant tau = 0.1*20 = 2 s; 60 s >> 5 tau.
	if err := n.Step(60, p); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(n.Temperature(i)-want[i]) > 0.01 {
			t.Errorf("node %d = %g after long run, steady state %g", i, n.Temperature(i), want[i])
		}
	}
}

func TestSettleToSteadyState(t *testing.T) {
	n := twoNode(t)
	if err := n.SettleToSteadyState([]float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(n.Temperature(0)-55) > 1e-9 {
		t.Errorf("settle die = %g, want 55", n.Temperature(0))
	}
}

func TestStepRejectsBadInputs(t *testing.T) {
	n := twoNode(t)
	if err := n.Step(1, []float64{0}); err == nil {
		t.Error("short power vector accepted")
	}
	if err := n.Step(-1, []float64{0, 0}); err == nil {
		t.Error("negative dt accepted")
	}
	if _, err := n.SteadyState([]float64{0}); err == nil {
		t.Error("SteadyState accepted short power vector")
	}
}

func TestSteadyStateSingularWithoutAmbientPath(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode("a", 1, 0)
	c := b.AddNode("b", 1, 0)
	b.Connect(a, c, 1)
	n, err := b.Build(25)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.SteadyState([]float64{1, 0}); err == nil {
		t.Error("SteadyState solved a floating network")
	}
}

func TestStabilityUnderLargeSteps(t *testing.T) {
	// A single huge step must substep internally and land at the same
	// temperature as many small steps, within integration tolerance,
	// and must never oscillate unstably.
	n1 := twoNode(t)
	n2 := twoNode(t)
	p := []float64{2, 0}
	if err := n1.Step(10, p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if err := n2.Step(0.001, p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n1.NumNodes(); i++ {
		d := math.Abs(n1.Temperature(i) - n2.Temperature(i))
		if d > 0.05 {
			t.Errorf("node %d: large-step %g vs small-step %g (diff %g)", i, n1.Temperature(i), n2.Temperature(i), d)
		}
		if n1.Temperature(i) > 200 || math.IsNaN(n1.Temperature(i)) {
			t.Errorf("node %d unstable: %g", i, n1.Temperature(i))
		}
	}
}

func TestMaxStableStepPositive(t *testing.T) {
	n := twoNode(t)
	if n.MaxStableStep() <= 0 {
		t.Errorf("MaxStableStep = %g", n.MaxStableStep())
	}
}

// Energy conservation: over one step, stored heat change equals
// (power in - ambient outflow) integrated. Checked with tiny steps where
// Euler error is negligible.
func TestEnergyBalance(t *testing.T) {
	n := twoNode(t)
	p := []float64{1.5, 0.25}
	const h = 1e-4
	var injected, leaked float64
	for i := 0; i < 20000; i++ {
		leaked += n.AmbientOutflow() * h
		if err := n.Step(h, p); err != nil {
			t.Fatal(err)
		}
		injected += (p[0] + p[1]) * h
	}
	stored := n.TotalHeatContent()
	if diff := math.Abs(stored - (injected - leaked)); diff > 0.02*injected {
		t.Errorf("energy imbalance: stored %g, injected-leaked %g", stored, injected-leaked)
	}
}

// Property: superposition holds at steady state (the network is linear):
// T(p1+p2) - Tamb == (T(p1)-Tamb) + (T(p2)-Tamb).
func TestSteadyStateSuperpositionProperty(t *testing.T) {
	n := twoNode(t)
	f := func(a, b uint8) bool {
		p1 := []float64{float64(a) / 64, 0}
		p2 := []float64{0, float64(b) / 64}
		sum := []float64{p1[0], p2[1]}
		s1, err1 := n.SteadyState(p1)
		s2, err2 := n.SteadyState(p2)
		s12, err3 := n.SteadyState(sum)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		for i := range s12 {
			lhs := s12[i] - 25
			rhs := (s1[i] - 25) + (s2[i] - 25)
			if math.Abs(lhs-rhs) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: more power never lowers any steady-state temperature
// (monotonicity of the resistive network).
func TestSteadyStateMonotonicityProperty(t *testing.T) {
	n := twoNode(t)
	f := func(a uint8, extra uint8) bool {
		base := float64(a) / 100
		s1, err1 := n.SteadyState([]float64{base, 0})
		s2, err2 := n.SteadyState([]float64{base + float64(extra)/100, 0})
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range s1 {
			if s2[i] < s1[i]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNodeAccessors(t *testing.T) {
	n := twoNode(t)
	if n.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", n.NumNodes())
	}
	if n.NodeName(0) != "die" || n.NodeName(1) != "sink" {
		t.Errorf("node names = %q, %q", n.NodeName(0), n.NodeName(1))
	}
	n.SetTemperature(0, 80)
	if n.Temperature(0) != 80 {
		t.Error("SetTemperature did not stick")
	}
	n.SetAllTemperatures(30)
	if n.Temperature(0) != 30 || n.Temperature(1) != 30 {
		t.Error("SetAllTemperatures did not stick")
	}
	buf := n.Temperatures(nil)
	if len(buf) != 2 || buf[0] != 30 {
		t.Errorf("Temperatures = %v", buf)
	}
	reuse := make([]float64, 2)
	if got := n.Temperatures(reuse); &got[0] != &reuse[0] {
		t.Error("Temperatures did not reuse caller buffer")
	}
}

// Analytic validation: a single RC node has the exact solution
// T(t) = Tamb + P·R·(1 - exp(-t/RC)). The integrator must track it.
func TestSingleNodeMatchesAnalyticSolution(t *testing.T) {
	const (
		r    = 25.0 // K/W
		c    = 0.04 // J/K
		p    = 0.5  // W
		amb  = 25.0
		tau  = r * c // 1 s
		tEnd = 3.0
	)
	b := NewBuilder()
	b.AddNode("node", c, 1/r)
	n, err := b.Build(amb)
	if err != nil {
		t.Fatal(err)
	}
	pw := []float64{p}
	for tm := 0.0; tm < tEnd; tm += 0.01 {
		if err := n.Step(0.01, pw); err != nil {
			t.Fatal(err)
		}
		want := amb + p*r*(1-math.Exp(-(tm+0.01)/tau))
		if diff := math.Abs(n.Temperature(0) - want); diff > 0.05 {
			t.Fatalf("t=%.2f: simulated %.4f vs analytic %.4f (diff %.4f)", tm, n.Temperature(0), want, diff)
		}
	}
	// And the cool-down branch.
	start := n.Temperature(0)
	zero := []float64{0}
	for tm := 0.0; tm < tEnd; tm += 0.01 {
		if err := n.Step(0.01, zero); err != nil {
			t.Fatal(err)
		}
		want := amb + (start-amb)*math.Exp(-(tm+0.01)/tau)
		if diff := math.Abs(n.Temperature(0) - want); diff > 0.05 {
			t.Fatalf("cooldown t=%.2f: %.4f vs %.4f", tm, n.Temperature(0), want)
		}
	}
}
